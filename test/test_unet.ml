(* Tests for the U-Net core: descriptor rings, segments, the mux, endpoint
   lifecycle and protection, resource limits, back-pressure, upcalls,
   kernel emulation, direct access, and end-to-end latency calibration. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- Ring ---------------------------------------------------------- *)

let test_ring_basic () =
  let r = Unet.Ring.create ~capacity:3 in
  checkb "empty" true (Unet.Ring.is_empty r);
  checkb "push" true (Unet.Ring.push r 1);
  checkb "push" true (Unet.Ring.push r 2);
  checkb "push" true (Unet.Ring.push r 3);
  checkb "full" true (Unet.Ring.is_full r);
  checkb "push on full fails" false (Unet.Ring.push r 4);
  checkb "pop fifo" true (Unet.Ring.pop r = Some 1);
  checkb "peek" true (Unet.Ring.peek r = Some 2);
  checkb "after peek pop" true (Unet.Ring.pop r = Some 2);
  checkb "push after wrap" true (Unet.Ring.push r 5);
  checkb "pop" true (Unet.Ring.pop r = Some 3);
  checkb "pop" true (Unet.Ring.pop r = Some 5);
  checkb "drained" true (Unet.Ring.pop r = None)

let prop_ring_model =
  QCheck.Test.make ~name:"ring behaves like a bounded FIFO queue" ~count:200
    QCheck.(list (option (int_range 0 100)))
    (fun ops ->
      (* Some v = push v, None = pop; compare against a list model *)
      let r = Unet.Ring.create ~capacity:4 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let expect = List.length !model < 4 in
              let got = Unet.Ring.push r v in
              if got then model := !model @ [ v ];
              got = expect
          | None -> (
              match (!model, Unet.Ring.pop r) with
              | [], None -> true
              | x :: rest, Some y when x = y ->
                  model := rest;
                  true
              | _ -> false))
        ops
      && Unet.Ring.length r = List.length !model)

let test_ring_clear () =
  let r = Unet.Ring.create ~capacity:2 in
  ignore (Unet.Ring.push r 1);
  Unet.Ring.clear r;
  checkb "cleared" true (Unet.Ring.is_empty r)

(* --- Segment ------------------------------------------------------- *)

let test_segment_rw () =
  let s = Unet.Segment.create ~size:128 in
  Unet.Segment.write s ~off:10 ~src:(Bytes.of_string "hello") ~src_pos:0 ~len:5;
  check Alcotest.string "read back" "hello"
    (Bytes.to_string (Unet.Segment.read s ~off:10 ~len:5))

let test_segment_bounds () =
  let s = Unet.Segment.create ~size:64 in
  checkb "in bounds" true (Result.is_ok (Unet.Segment.check_range s ~off:0 ~len:64));
  checkb "overflow" true (Result.is_error (Unet.Segment.check_range s ~off:60 ~len:5));
  checkb "negative" true (Result.is_error (Unet.Segment.check_range s ~off:(-1) ~len:1))

let test_allocator () =
  let s = Unet.Segment.create ~size:1024 in
  let a = Unet.Segment.Allocator.create s ~block:256 in
  checki "4 blocks" 4 (Unet.Segment.Allocator.free_count a);
  let b1 = Option.get (Unet.Segment.Allocator.alloc a) in
  let _ = Option.get (Unet.Segment.Allocator.alloc a) in
  let _ = Option.get (Unet.Segment.Allocator.alloc a) in
  let _ = Option.get (Unet.Segment.Allocator.alloc a) in
  checkb "exhausted" true (Unet.Segment.Allocator.alloc a = None);
  Unet.Segment.Allocator.free a b1;
  checkb "reusable" true (Unet.Segment.Allocator.alloc a = Some b1)

let test_allocator_double_free () =
  let s = Unet.Segment.create ~size:512 in
  let a = Unet.Segment.Allocator.create s ~block:256 in
  let b = Option.get (Unet.Segment.Allocator.alloc a) in
  Unet.Segment.Allocator.free a b;
  checkb "double free rejected" true
    (try
       Unet.Segment.Allocator.free a b;
       false
     with Invalid_argument _ -> true)

let prop_allocator_model =
  QCheck.Test.make ~name:"allocator: blocks unique, never double-handed"
    ~count:100
    QCheck.(list (option unit))
    (fun ops ->
      (* Some () = alloc, None = free the oldest outstanding block *)
      let seg = Unet.Segment.create ~size:2048 in
      let a = Unet.Segment.Allocator.create seg ~block:256 in
      let held = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some () -> (
              match Unet.Segment.Allocator.alloc a with
              | Some b ->
                  (* a handed-out block must not already be held *)
                  let fresh = not (List.mem b !held) in
                  held := b :: !held;
                  fresh
              | None -> List.length !held = 8 (* only fails when exhausted *))
          | None -> (
              match List.rev !held with
              | [] -> true
              | oldest :: _ ->
                  held := List.filter (fun x -> x <> oldest) !held;
                  Unet.Segment.Allocator.free a oldest;
                  true))
        ops
      && Unet.Segment.Allocator.free_count a = 8 - List.length !held)

(* --- Mux (unit level) ---------------------------------------------- *)

let mk_ep sim ~free_slots ~rx_slots =
  let ep =
    Unet.Endpoint.create ~sim ~id:0 ~host:0 ~seg_size:4096 ~tx_slots:4
      ~rx_slots ~free_slots ~emulated:false ~direct_access:false
  in
  ep

let test_mux_register_lookup () =
  let sim = Sim.create () in
  let mux = Unet.Mux.create () in
  let ep = mk_ep sim ~free_slots:4 ~rx_slots:4 in
  Unet.Mux.register mux ~rx_vci:32 ep ~chan:7;
  checkb "lookup hits" true
    (match Unet.Mux.lookup mux ~rx_vci:32 with
    | Some (e, 7) -> e == ep
    | _ -> false);
  checkb "duplicate tag rejected" true
    (try
       Unet.Mux.register mux ~rx_vci:32 ep ~chan:8;
       false
     with Invalid_argument _ -> true);
  Unet.Mux.unregister mux ~rx_vci:32;
  checkb "gone" true (Unet.Mux.lookup mux ~rx_vci:32 = None)

let test_mux_deliver_inline () =
  let sim = Sim.create () in
  let mux = Unet.Mux.create () in
  let ep = mk_ep sim ~free_slots:4 ~rx_slots:4 in
  Unet.Mux.register mux ~rx_vci:32 ep ~chan:7;
  (match Unet.Mux.deliver mux ~rx_vci:32 (Buf.of_string "hi") with
  | Some (_, 7, Unet.Mux.Delivered_inline) -> ()
  | _ -> Alcotest.fail "expected inline delivery");
  match Unet.Ring.pop ep.rx_ring with
  | Some { Unet.Desc.src_chan = 7; rx_payload = Unet.Desc.Inline b; _ } ->
      check Alcotest.string "payload" "hi"
        (Bytes.to_string (Buf.to_bytes ~layer:"test" b))
  | _ -> Alcotest.fail "bad rx descriptor"

let test_mux_deliver_buffers () =
  let sim = Sim.create () in
  let mux = Unet.Mux.create () in
  let ep = mk_ep sim ~free_slots:4 ~rx_slots:4 in
  ignore (Unet.Ring.push ep.free_ring (0, 64));
  ignore (Unet.Ring.push ep.free_ring (64, 64));
  Unet.Mux.register mux ~rx_vci:32 ep ~chan:1;
  let data = Bytes.init 100 Char.chr in
  (match Unet.Mux.deliver mux ~rx_vci:32 (Buf.of_bytes data) with
  | Some (_, _, Unet.Mux.Delivered_buffers bufs) ->
      checki "two buffers used" 2 (List.length bufs);
      checki "lengths cover the message" 100
        (List.fold_left (fun a (_, l) -> a + l) 0 bufs)
  | _ -> Alcotest.fail "expected buffered delivery");
  (* the data must actually be in the segment *)
  check Alcotest.bytes "segment contents"
    (Bytes.sub data 0 64)
    (Unet.Segment.read ep.segment ~off:0 ~len:64)

let test_mux_drop_no_free_buffer () =
  let sim = Sim.create () in
  let mux = Unet.Mux.create () in
  let ep = mk_ep sim ~free_slots:4 ~rx_slots:4 in
  Unet.Mux.register mux ~rx_vci:32 ep ~chan:1;
  (match Unet.Mux.deliver mux ~rx_vci:32 (Buf.alloc 100) with
  | Some (_, _, Unet.Mux.Dropped_no_free_buffer) -> ()
  | _ -> Alcotest.fail "expected drop");
  checki "drop counted" 1 ep.drops_no_free_buffer

let test_mux_drop_rx_full () =
  let sim = Sim.create () in
  let mux = Unet.Mux.create () in
  let ep = mk_ep sim ~free_slots:4 ~rx_slots:1 in
  Unet.Mux.register mux ~rx_vci:32 ep ~chan:1;
  ignore (Unet.Mux.deliver mux ~rx_vci:32 (Buf.of_string "a"));
  (match Unet.Mux.deliver mux ~rx_vci:32 (Buf.of_string "b") with
  | Some (_, _, Unet.Mux.Dropped_rx_full) -> ()
  | _ -> Alcotest.fail "expected rx-full drop");
  checki "drop counted" 1 ep.drops_rx_full

let test_mux_unknown_tag () =
  let mux = Unet.Mux.create () in
  checkb "unknown tag" true
    (Unet.Mux.deliver mux ~rx_vci:9 (Buf.alloc 1) = None);
  checki "counted" 1 (Unet.Mux.unknown_tag_drops mux)

(* --- endpoint lifecycle, protection, limits -------------------------- *)

let with_pair f =
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  f c n0 n1

let test_endpoint_limit () =
  with_pair (fun _ n0 _ ->
      let results =
        List.init 17 (fun _ ->
            Unet.create_endpoint n0.unet ~seg_size:1024 ())
      in
      let ok = List.filter Result.is_ok results in
      checki "SBA-200 limit of 16 endpoints" 16 (List.length ok);
      checkb "17th rejected" true
        (match List.nth results 16 with
        | Error Unet.Too_many_endpoints -> true
        | _ -> false))

let test_emulated_bypasses_limit () =
  with_pair (fun _ n0 _ ->
      List.iter
        (fun r -> checkb "real ok" true (Result.is_ok r))
        (List.init 16 (fun _ -> Unet.create_endpoint n0.unet ~seg_size:1024 ()));
      checkb "emulated endpoints don't consume NI slots" true
        (Result.is_ok (Unet.create_endpoint n0.unet ~emulated:true ~seg_size:1024 ())))

let test_segment_too_large () =
  with_pair (fun _ n0 _ ->
      checkb "oversized segment rejected" true
        (match Unet.create_endpoint n0.unet ~seg_size:(64 * 1024 * 1024) () with
        | Error Unet.Segment_too_large -> true
        | _ -> false))

let test_pinned_exhaustion () =
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 in
  let nic = Option.get n0.i960 in
  let u =
    Unet.create ~cpu:n0.cpu ~net:c.net ~host:0 ~pinned_capacity:100_000
      (Ni.I960_nic.backend nic)
  in
  checkb "first fits" true (Result.is_ok (Unet.create_endpoint u ~seg_size:50_000 ()));
  checkb "second exhausts pinned memory" true
    (match Unet.create_endpoint u ~seg_size:50_000 () with
    | Error Unet.Pinned_exhausted -> true
    | _ -> false)

let test_destroy_releases () =
  with_pair (fun _ n0 _ ->
      let before = Host.Pinned.used (Unet.pinned n0.unet) in
      let ep = Result.get_ok (Unet.create_endpoint n0.unet ~seg_size:4096 ()) in
      checkb "pinned grew" true (Host.Pinned.used (Unet.pinned n0.unet) > before);
      Unet.destroy_endpoint n0.unet ep;
      checki "pinned restored" before (Host.Pinned.used (Unet.pinned n0.unet));
      checki "endpoint gone" 0 (Unet.endpoint_count n0.unet))

let test_send_protection () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      ignore
        (Proc.spawn c.sim (fun () ->
             (* unknown channel *)
             (match
                Unet.send n0.unet ep0
                  (Unet.Desc.tx ~chan:999 (Unet.Desc.Inline (Buf.alloc 4)))
              with
             | Error Unet.Bad_channel -> ()
             | _ -> Alcotest.fail "expected Bad_channel");
             (* buffer outside the segment *)
             (match
                Unet.send n0.unet ep0
                  (Unet.Desc.tx ~chan:ch0
                     (Unet.Desc.Buffers [ (1_000_000, 100) ]))
              with
             | Error (Unet.Bad_buffer _) -> ()
             | _ -> Alcotest.fail "expected Bad_buffer");
             (* inline too large *)
             match
               Unet.send n0.unet ep0
                 (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 41)))
             with
             | Error Unet.Inline_too_large -> ()
             | _ -> Alcotest.fail "expected Inline_too_large"));
      Sim.run c.sim)

let test_send_backpressure () =
  with_pair (fun c n0 n1 ->
      let ep0 =
        Result.get_ok
          (Unet.create_endpoint n0.unet ~tx_slots:1 ~seg_size:4096 ())
      in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      ignore
        (Proc.spawn c.sim (fun () ->
             let payload = Unet.Desc.Inline (Buf.alloc 4) in
             (* the NI picks up the first descriptor immediately; the second
                parks in the 1-slot ring; the third bounces *)
             checkb "1st accepted" true
               (Result.is_ok (Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload)));
             checkb "2nd queued" true
               (Result.is_ok (Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload)));
             match Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload) with
             | Error Unet.Queue_full -> ()
             | _ -> Alcotest.fail "expected back-pressure"));
      Sim.run c.sim)

let test_free_buffer_validation () =
  with_pair (fun _ n0 _ ->
      let ep = Result.get_ok (Unet.create_endpoint n0.unet ~seg_size:4096 ()) in
      checkb "bad range rejected" true
        (match Unet.provide_free_buffer n0.unet ep ~off:4000 ~len:1000 with
        | Error (Unet.Bad_buffer _) -> true
        | _ -> false))

(* --- end-to-end data path, upcalls, calibration ---------------------- *)

let ping ~c ~n0 ~n1 ~ep0 ~ep1 ~ch0 size =
  ignore n1;
  let got = ref None in
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         ignore
           (Unet.send n0.Cluster.unet ep0
              (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc size))))));
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         got := Some (Unet.recv n1.Cluster.unet ep1)));
  Sim.run c.Cluster.sim;
  !got

let test_end_to_end_delivery () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      ignore ch1;
      match ping ~c ~n0 ~n1 ~ep0 ~ep1 ~ch0 16 with
      | Some { Unet.Desc.src_chan; rx_payload = Unet.Desc.Inline b; _ } ->
          checki "source channel reported" ch1 src_chan;
          checki "length" 16 (Buf.length b)
      | _ -> Alcotest.fail "no delivery")

let test_data_integrity_large () =
  with_pair (fun c n0 n1 ->
      let ep0, a0 = Cluster.simple_endpoint n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      let data = Bytes.init 3000 (fun i -> Char.chr (i mod 251)) in
      let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
      Unet.Segment.write ep0.segment ~off ~src:data ~src_pos:0 ~len:3000;
      let got = ref None in
      ignore
        (Proc.spawn c.sim (fun () ->
             ignore
               (Unet.send n0.unet ep0
                  (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 3000) ])))));
      ignore (Proc.spawn c.sim (fun () -> got := Some (Unet.recv n1.unet ep1)));
      Sim.run c.sim;
      match !got with
      | Some { Unet.Desc.rx_payload = Unet.Desc.Buffers bufs; _ } ->
          let out = Bytes.create 3000 in
          let pos = ref 0 in
          List.iter
            (fun (o, l) ->
              Unet.Segment.blit_out ep1.segment ~off:o ~dst:out ~dst_pos:!pos ~len:l;
              pos := !pos + l)
            bufs;
          check Alcotest.bytes "payload intact across the fabric" data out
      | _ -> Alcotest.fail "no delivery")

let test_upcall_nonempty_edge () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      let fired = ref 0 in
      Unet.set_upcall n1.unet ep1 Unet.Endpoint.Rx_nonempty (fun () -> incr fired);
      ignore
        (Proc.spawn c.sim (fun () ->
             for _ = 1 to 3 do
               ignore
                 (Unet.send n0.unet ep0
                    (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 4))));
               Proc.sleep c.sim ~time:(Sim.us 5)
             done));
      Sim.run c.sim;
      (* all three arrive without the queue being drained: only the first
         empty->nonempty transition fires *)
      checki "edge-triggered" 1 !fired)

let test_upcall_disable_enable () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      let fired = ref 0 in
      Unet.set_upcall n1.unet ep1 Unet.Endpoint.Rx_nonempty (fun () -> incr fired);
      Unet.disable_upcalls n1.unet ep1;
      ignore
        (Proc.spawn c.sim (fun () ->
             ignore
               (Unet.send n0.unet ep0
                  (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 4))))));
      Sim.run c.sim;
      checki "masked during the critical section" 0 !fired;
      Unet.enable_upcalls n1.unet ep1;
      checki "fires on re-enable with pending messages" 1 !fired)

let test_upcall_almost_full () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint n0 in
      let ep1 =
        Result.get_ok (Unet.create_endpoint n1.unet ~rx_slots:4 ~seg_size:4096 ())
      in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      let fired = ref 0 in
      Unet.set_upcall n1.unet ep1 Unet.Endpoint.Rx_almost_full (fun () -> incr fired);
      ignore
        (Proc.spawn c.sim (fun () ->
             for _ = 1 to 3 do
               ignore
                 (Unet.send n0.unet ep0
                    (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 4))))
             done));
      Sim.run c.sim;
      checkb "fires as the queue approaches capacity" true (!fired >= 1))

let measure_rtt ?(emulated = false) ?(nic = Cluster.Sba200_unet) ~size iters =
  let c = Cluster.create ~nic () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, _ = Cluster.simple_endpoint ~emulated n0 in
  let ep1, _ = Cluster.simple_endpoint ~emulated n1 in
  let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let payload = Unet.Desc.Inline (Buf.alloc size) in
  ignore
    (Proc.spawn c.sim (fun () ->
         let rec loop () =
           let d = Unet.recv n1.unet ep1 in
           ignore (Unet.send n1.unet ep1 (Unet.Desc.tx ~chan:ch1 d.rx_payload));
           loop ()
         in
         loop ()));
  let sum = ref 0. in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to iters do
           let t0 = Sim.now c.sim in
           ignore (Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload));
           ignore (Unet.recv n0.unet ep0);
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0)
         done));
  Sim.run ~until:(Sim.sec 5) c.sim;
  !sum /. float_of_int iters

let test_single_cell_rtt_calibration () =
  let rtt = measure_rtt ~size:16 20 in
  checkb (Printf.sprintf "single-cell RTT %.1f us within 10%% of 65" rtt) true
    (Float.abs (rtt -. 65.) <= 6.5)

let test_emulated_endpoint_slower () =
  let fast = measure_rtt ~size:16 10 in
  let slow = measure_rtt ~emulated:true ~size:16 10 in
  checkb
    (Printf.sprintf "kernel emulation costs (%.1f vs %.1f us)" slow fast)
    true
    (slow > fast +. 30.)

let test_fore_firmware_slower () =
  let unet = measure_rtt ~size:16 10 in
  let fore = measure_rtt ~nic:Cluster.Sba200_fore ~size:16 10 in
  checkb
    (Printf.sprintf "Fore firmware RTT %.0f us ~ 160 (U-Net: %.0f)" fore unet)
    true
    (fore > 140. && fore < 185. && unet < 70.)

(* --- direct-access U-Net -------------------------------------------- *)

let test_direct_access_deposit () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint ~direct_access:true n0 in
      let ep1, _ = Cluster.simple_endpoint ~direct_access:true n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      let data = Buf.of_string "deposited-directly" in
      ignore
        (Proc.spawn c.sim (fun () ->
             ignore
               (Unet.send n0.unet ep0
                  (Unet.Desc.tx ~dest_offset:512 ~chan:ch0
                     (Unet.Desc.Inline data)))));
      let got = ref None in
      ignore (Proc.spawn c.sim (fun () -> got := Some (Unet.recv n1.unet ep1)));
      Sim.run c.sim;
      (* data is at the sender-specified offset in the receiver's segment *)
      check Alcotest.bytes "at offset 512"
        (Buf.to_bytes ~layer:"test" data)
        (Unet.Segment.read ep1.segment ~off:512 ~len:(Buf.length data));
      match !got with
      | Some { Unet.Desc.rx_payload = Unet.Desc.Buffers [ (512, len) ]; _ } ->
          checki "notification points at the deposit" (Buf.length data) len
      | _ -> Alcotest.fail "expected a direct-access notification")

let test_direct_access_bad_offset () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint ~direct_access:true n0 in
      let ep1, _ =
        Cluster.simple_endpoint ~direct_access:true ~seg_size:4096 ~free_buffers:0
          n1
      in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      ignore
        (Proc.spawn c.sim (fun () ->
             ignore
               (Unet.send n0.unet ep0
                  (Unet.Desc.tx ~dest_offset:100_000 ~chan:ch0
                     (Unet.Desc.Inline (Buf.of_string "x"))))));
      Sim.run c.sim;
      checki "nothing delivered" 0 ep1.rx_delivered)

let test_direct_mismatch_rejected () =
  with_pair (fun _ n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint ~direct_access:true n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      checkb "direct/base connection rejected" true
        (try
           ignore (Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1));
           false
         with Invalid_argument _ -> true))

let test_dest_offset_requires_direct () =
  with_pair (fun c n0 n1 ->
      let ep0, _ = Cluster.simple_endpoint n0 in
      let ep1, _ = Cluster.simple_endpoint n1 in
      let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
      ignore
        (Proc.spawn c.sim (fun () ->
             match
               Unet.send n0.unet ep0
                 (Unet.Desc.tx ~dest_offset:64 ~chan:ch0
                    (Unet.Desc.Inline (Buf.of_string "x")))
             with
             | Error Unet.Not_direct_access -> ()
             | _ -> Alcotest.fail "expected Not_direct_access"));
      Sim.run c.sim)

(* --- kernel multiplexing of emulated endpoints (§3.5) ----------------- *)

let test_kemu_single_real_endpoint () =
  (* many emulated endpoints, each connected, must consume exactly one real
     endpoint (the kernel's) on the host *)
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let mk_emu n =
    List.init n (fun _ ->
        fst
          (Cluster.simple_endpoint ~emulated:true ~seg_size:65_536
             ~free_buffers:8 n0))
  in
  let emus = mk_emu 5 in
  let remotes =
    List.map (fun _ -> fst (Cluster.simple_endpoint n1)) emus
  in
  List.iter2
    (fun e r -> ignore (Unet.connect_pair (n0.unet, e) (n1.unet, r)))
    emus remotes;
  (* 5 emulated endpoints + the kernel's one real endpoint *)
  checki "host 0 has 6 endpoints total" 6 (Unet.endpoint_count n0.unet);
  checkb "the kernel endpoint exists and is real" true
    (match Unet.kernel_endpoint n0.unet with
    | Some kep -> not kep.emulated
    | None -> false);
  (* the NI still has 15 real slots free: a 16th real endpoint succeeds
     15 more times, then fails *)
  let more =
    List.init 16 (fun _ -> Unet.create_endpoint n0.unet ~seg_size:1024 ())
  in
  checki "15 more real endpoints fit" 15
    (List.length (List.filter Result.is_ok more))

let test_kemu_traffic_roundtrip () =
  (* emulated <-> real across hosts, with data big enough to stage through
     kernel buffers in both directions *)
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, a0 = Cluster.simple_endpoint ~emulated:true n0 in
  let ep1, _ = Cluster.simple_endpoint n1 in
  let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let data = Bytes.init 6_000 (fun i -> Char.chr ((i * 17) mod 256)) in
  let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  Unet.Segment.write ep0.segment ~off ~src:data ~src_pos:0 ~len:4_160;
  let off2, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  Unet.Segment.write ep0.segment ~off:off2 ~src:data ~src_pos:4_160
    ~len:(6_000 - 4_160);
  ignore
    (Proc.spawn c.sim (fun () ->
         match
           Unet.send n0.unet ep0
             (Unet.Desc.tx ~chan:ch0
                (Unet.Desc.Buffers [ (off, 4_160); (off2, 6_000 - 4_160) ]))
         with
         | Ok () -> ()
         | Error e -> Fmt.failwith "%a" Unet.pp_error e));
  (* echo it back so the emulated receive path is exercised too *)
  let got_back = ref None in
  ignore
    (Proc.spawn c.sim (fun () ->
         let d = Unet.recv n1.unet ep1 in
         ignore (Unet.send n1.unet ep1 (Unet.Desc.tx ~chan:ch1 d.rx_payload))));
  ignore
    (Proc.spawn c.sim (fun () -> got_back := Some (Unet.recv n0.unet ep0)));
  Sim.run c.sim;
  match !got_back with
  | Some { Unet.Desc.rx_payload = Unet.Desc.Buffers bufs; _ } ->
      let out = Bytes.create 6_000 in
      let pos = ref 0 in
      List.iter
        (fun (o, l) ->
          Unet.Segment.blit_out ep0.segment ~off:o ~dst:out ~dst_pos:!pos ~len:l;
          pos := !pos + l)
        bufs;
      check Alcotest.bytes "data intact through four staging copies" data out
  | _ -> Alcotest.fail "no echo arrived"

let test_kemu_emulated_to_emulated () =
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, _ = Cluster.simple_endpoint ~emulated:true n0 in
  let ep1, _ = Cluster.simple_endpoint ~emulated:true n1 in
  let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let got = ref None in
  ignore
    (Proc.spawn c.sim (fun () ->
         ignore
           (Unet.send n0.unet ep0
              (Unet.Desc.tx ~chan:ch0
                 (Unet.Desc.Inline (Buf.of_string "via-two-kernels"))))));
  ignore (Proc.spawn c.sim (fun () -> got := Some (Unet.recv n1.unet ep1)));
  Sim.run c.sim;
  match !got with
  | Some { Unet.Desc.rx_payload = Unet.Desc.Inline b; _ } ->
      check Alcotest.string "payload" "via-two-kernels"
        (Bytes.to_string (Buf.to_bytes ~layer:"test" b))
  | _ -> Alcotest.fail "nothing delivered"

let test_kemu_demux_two_endpoints () =
  (* two emulated endpoints on one host, distinct channels: the kernel must
     demultiplex arriving traffic back to the right one *)
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let e_a, _ = Cluster.simple_endpoint ~emulated:true n0 in
  let e_b, _ = Cluster.simple_endpoint ~emulated:true n0 in
  let r, _ = Cluster.simple_endpoint n1 in
  let _, ch_ra = Unet.connect_pair (n0.unet, e_a) (n1.unet, r) in
  let _, ch_rb = Unet.connect_pair (n0.unet, e_b) (n1.unet, r) in
  ignore
    (Proc.spawn c.sim (fun () ->
         ignore
           (Unet.send n1.unet r
              (Unet.Desc.tx ~chan:ch_ra (Unet.Desc.Inline (Buf.of_string "A"))));
         ignore
           (Unet.send n1.unet r
              (Unet.Desc.tx ~chan:ch_rb (Unet.Desc.Inline (Buf.of_string "B"))))));
  let at_a = ref "" and at_b = ref "" in
  ignore
    (Proc.spawn c.sim (fun () ->
         (match (Unet.recv n0.unet e_a).rx_payload with
         | Unet.Desc.Inline b -> at_a := Bytes.to_string (Buf.to_bytes ~layer:"test" b)
         | _ -> ())));
  ignore
    (Proc.spawn c.sim (fun () ->
         (match (Unet.recv n0.unet e_b).rx_payload with
         | Unet.Desc.Inline b -> at_b := Bytes.to_string (Buf.to_bytes ~layer:"test" b)
         | _ -> ())));
  Sim.run c.sim;
  check Alcotest.string "endpoint A got A" "A" !at_a;
  check Alcotest.string "endpoint B got B" "B" !at_b

(* --- loss behaviour -------------------------------------------------- *)

let test_cell_loss_discards_whole_messages () =
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, a0 = Cluster.simple_endpoint n0 in
  let ep1, _ = Cluster.simple_endpoint ~free_buffers:60 ~rx_slots:256 n1 in
  let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  Atm.Link.set_loss (Atm.Network.uplink c.net ~host:0) (Rng.create 42) ~p:0.05;
  let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 100 do
           (match
              Unet.send n0.unet ep0
                (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 2000) ]))
            with
           | Ok () -> ()
           | Error Unet.Queue_full -> Proc.sleep c.sim ~time:(Sim.us 50)
           | Error e -> Fmt.failwith "%a" Unet.pp_error e);
           Proc.sleep c.sim ~time:(Sim.us 200)
         done));
  Sim.run ~until:(Sim.sec 2) c.sim;
  let nic1 = Option.get n1.i960 in
  checkb "reassembly errors recorded" true
    (Ni.I960_nic.reassembly_errors nic1 > 0);
  checkb "some messages lost" true (ep1.rx_delivered < 100);
  checkb "most messages still arrive" true (ep1.rx_delivered > 10)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "unet"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basic;
          qt prop_ring_model;
          Alcotest.test_case "clear" `Quick test_ring_clear;
        ] );
      ( "segment",
        [
          Alcotest.test_case "read/write" `Quick test_segment_rw;
          Alcotest.test_case "bounds" `Quick test_segment_bounds;
          Alcotest.test_case "allocator" `Quick test_allocator;
          Alcotest.test_case "double free" `Quick test_allocator_double_free;
          qt prop_allocator_model;
        ] );
      ( "mux",
        [
          Alcotest.test_case "register/lookup" `Quick test_mux_register_lookup;
          Alcotest.test_case "inline delivery" `Quick test_mux_deliver_inline;
          Alcotest.test_case "buffered delivery" `Quick test_mux_deliver_buffers;
          Alcotest.test_case "no-free-buffer drop" `Quick test_mux_drop_no_free_buffer;
          Alcotest.test_case "rx-full drop" `Quick test_mux_drop_rx_full;
          Alcotest.test_case "unknown tag" `Quick test_mux_unknown_tag;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "NI endpoint limit" `Quick test_endpoint_limit;
          Alcotest.test_case "emulated bypass" `Quick test_emulated_bypasses_limit;
          Alcotest.test_case "segment size limit" `Quick test_segment_too_large;
          Alcotest.test_case "pinned exhaustion" `Quick test_pinned_exhaustion;
          Alcotest.test_case "destroy releases" `Quick test_destroy_releases;
          Alcotest.test_case "send protection" `Quick test_send_protection;
          Alcotest.test_case "back-pressure" `Quick test_send_backpressure;
          Alcotest.test_case "free buffer validation" `Quick test_free_buffer_validation;
        ] );
      ( "datapath",
        [
          Alcotest.test_case "end-to-end delivery" `Quick test_end_to_end_delivery;
          Alcotest.test_case "large message integrity" `Quick test_data_integrity_large;
          Alcotest.test_case "upcall nonempty edge" `Quick test_upcall_nonempty_edge;
          Alcotest.test_case "upcall mask/unmask" `Quick test_upcall_disable_enable;
          Alcotest.test_case "upcall almost-full" `Quick test_upcall_almost_full;
          Alcotest.test_case "single-cell RTT 65us" `Quick test_single_cell_rtt_calibration;
          Alcotest.test_case "kernel emulation slower" `Quick test_emulated_endpoint_slower;
          Alcotest.test_case "Fore firmware ~160us" `Quick test_fore_firmware_slower;
        ] );
      ( "direct-access",
        [
          Alcotest.test_case "deposit at offset" `Quick test_direct_access_deposit;
          Alcotest.test_case "bad offset dropped" `Quick test_direct_access_bad_offset;
          Alcotest.test_case "direct/base mismatch" `Quick test_direct_mismatch_rejected;
          Alcotest.test_case "offset needs direct" `Quick test_dest_offset_requires_direct;
        ] );
      ( "kernel-mux",
        [
          Alcotest.test_case "one real endpoint" `Quick test_kemu_single_real_endpoint;
          Alcotest.test_case "traffic roundtrip" `Quick test_kemu_traffic_roundtrip;
          Alcotest.test_case "emulated to emulated" `Quick test_kemu_emulated_to_emulated;
          Alcotest.test_case "demux two endpoints" `Quick test_kemu_demux_two_endpoints;
        ] );
      ( "loss",
        [
          Alcotest.test_case "cell loss discards PDUs" `Quick
            test_cell_loss_discards_whole_messages;
        ] );
    ]
