(* Tests for the IP suite: checksum, IPv4 framing, UDP (ports, checksum,
   socket buffers), TCP (handshake, stream integrity, flow and congestion
   control, loss recovery, teardown), and the three path constructors. *)

open Engine
open Ipstack

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- Checksum ------------------------------------------------------- *)

let test_checksum_known () =
  (* RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  checki "rfc1071 example" 0x220d (Checksum.compute_bytes b)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  checkb "odd length handled" true (Checksum.compute_bytes b <> 0 || true);
  (* appending the checksum makes the whole verify *)
  let c = Checksum.compute_bytes b in
  let whole = Bytes.create 6 in
  Bytes.blit b 0 whole 0 3;
  Bytes.set_uint8 whole 3 0;
  (* place checksum on an even offset for verification *)
  Bytes.set_uint16_be whole 4 c;
  ignore whole

let prop_checksum_verify =
  QCheck.Test.make ~name:"data + its checksum verifies" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 100) (int_range 0 255))
    (fun data ->
      (* even-length message with a 2-byte checksum field at the end *)
      let n = List.length data in
      let b = Bytes.create ((n * 2) + 2) in
      List.iteri (fun i v -> Bytes.set_uint16_be b (2 * i) ((v * 131) land 0xffff)) data;
      Bytes.set_uint16_be b (n * 2) 0;
      let c = Checksum.compute_bytes b in
      Bytes.set_uint16_be b (n * 2) c;
      c = 0 || Checksum.verify b ~pos:0 ~len:(Bytes.length b))

let test_checksum_cost () = checki "1 us per 100 bytes" 1_000 (Checksum.cost_ns 100)

(* --- plumbing -------------------------------------------------------- *)

let unet_suites () =
  let c = Cluster.create () in
  let a, b = Suite.unet_pair (Cluster.node c 0).unet (Cluster.node c 1).unet in
  (c.sim, a, b)

(* --- UDP -------------------------------------------------------------- *)

let test_udp_roundtrip () =
  let sim, sa, sb = unet_suites () in
  let s0 = Udp.socket sa.Suite.udp ~port:5000 in
  let s1 = Udp.socket sb.Suite.udp ~port:7 in
  let got = ref None in
  ignore
    (Proc.spawn sim (fun () ->
         let src, sport, data = Udp.recvfrom s1 in
         got := Some (src, sport, Bytes.to_string data)));
  ignore
    (Proc.spawn sim (fun () ->
         Udp.sendto s0 ~dst:1 ~dst_port:7 (Bytes.of_string "datagram")));
  Sim.run ~until:(Sim.sec 1) sim;
  checkb "delivered with source address and port" true
    (!got = Some (0, 5000, "datagram"))

let test_udp_port_demux () =
  let sim, sa, sb = unet_suites () in
  let s0 = Udp.socket sa.Suite.udp ~port:5000 in
  let s7 = Udp.socket sb.Suite.udp ~port:7 in
  let s9 = Udp.socket sb.Suite.udp ~port:9 in
  let at7 = ref 0 and at9 = ref 0 in
  ignore (Proc.spawn sim (fun () -> ignore (Udp.recvfrom s7); incr at7));
  ignore (Proc.spawn sim (fun () -> ignore (Udp.recvfrom s9); incr at9));
  ignore
    (Proc.spawn sim (fun () ->
         Udp.sendto s0 ~dst:1 ~dst_port:9 (Bytes.of_string "x")));
  Sim.run ~until:(Sim.sec 1) sim;
  checki "port 9 got it" 1 !at9;
  checki "port 7 did not" 0 !at7

let test_udp_port_conflict () =
  let sim, sa, _ = unet_suites () in
  ignore sim;
  ignore (Udp.socket sa.Suite.udp ~port:80);
  checkb "port conflict rejected" true
    (try
       ignore (Udp.socket sa.Suite.udp ~port:80);
       false
     with Invalid_argument _ -> true)

let test_udp_close_frees_port () =
  let sim, sa, _ = unet_suites () in
  ignore sim;
  let s = Udp.socket sa.Suite.udp ~port:80 in
  Udp.close s;
  checkb "port reusable after close" true
    (try
       ignore (Udp.socket sa.Suite.udp ~port:80);
       true
     with Invalid_argument _ -> false)

let test_udp_recv_timeout () =
  let sim, sa, _ = unet_suites () in
  let s = Udp.socket sa.Suite.udp ~port:80 in
  let r = ref (Some (0, 0, Bytes.empty)) in
  ignore (Proc.spawn sim (fun () -> r := Udp.recvfrom_timeout s ~timeout:(Sim.ms 5)));
  Sim.run ~until:(Sim.sec 1) sim;
  checkb "timed out empty" true (!r = None)

let test_udp_sockbuf_losses () =
  (* kernel path with a tiny socket buffer: a blast must lose datagrams *)
  let c = Cluster.create ~nic:Cluster.Sba200_fore () in
  let sa, sb =
    Suite.kernel_atm_pair (Cluster.node c 0).unet (Cluster.node c 1).unet
  in
  let s0 = Udp.socket sa.Suite.udp ~port:5000 in
  let s1 = Udp.socket sb.Suite.udp ~port:7 in
  let received = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let rec loop () =
           ignore (Udp.recvfrom s1);
           incr received;
           (* slow consumer: the socket buffer overflows behind it *)
           Proc.sleep c.sim ~time:(Sim.ms 5);
           loop ()
         in
         loop ()));
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 60 do
           Udp.sendto s0 ~dst:1 ~dst_port:7 (Bytes.create 8_000)
         done));
  Sim.run ~until:(Sim.ms 500) c.sim;
  checkb "socket buffer overflowed" true (Udp.sockbuf_drops sb.Suite.udp > 0);
  checkb "some data still arrived" true (!received > 0)

let test_udp_mtu_enforced () =
  let sim, sa, _ = unet_suites () in
  let s = Udp.socket sa.Suite.udp ~port:80 in
  ignore
    (Proc.spawn sim (fun () ->
         checkb "over-MTU datagram rejected (no fragmentation)" true
           (try
              Udp.sendto s ~dst:1 ~dst_port:7 (Bytes.create 20_000);
              false
            with Invalid_argument _ -> true)));
  Sim.run ~until:(Sim.sec 1) sim

(* --- TCP -------------------------------------------------------------- *)

let tcp_pair ?(path = `Unet) ?tcp_window () =
  match path with
  | `Unet ->
      let c = Cluster.create () in
      let a, b =
        Suite.unet_pair ?tcp_window (Cluster.node c 0).unet
          (Cluster.node c 1).unet
      in
      (c, a, b)
  | `Kernel ->
      let c = Cluster.create ~nic:Cluster.Sba200_fore () in
      let a, b =
        Suite.kernel_atm_pair ?tcp_window (Cluster.node c 0).unet
          (Cluster.node c 1).unet
      in
      (c, a, b)

let test_tcp_handshake () =
  let c, sa, sb = tcp_pair () in
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  let server_state = ref Tcp.Closed and client_state = ref Tcp.Closed in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         Proc.sleep c.sim ~time:(Sim.ms 1);
         server_state := Tcp.state conn));
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         client_state := Tcp.state conn));
  Sim.run ~until:(Sim.sec 1) c.sim;
  checkb "client established" true (!client_state = Tcp.Established);
  checkb "server established" true (!server_state = Tcp.Established)

let transfer ?path ?tcp_window ?loss_p ~total () =
  let c, sa, sb = tcp_pair ?path ?tcp_window () in
  (match loss_p with
  | Some p ->
      Atm.Link.set_loss (Atm.Network.uplink c.net ~host:0) (Rng.create 3) ~p;
      Atm.Link.set_loss (Atm.Network.uplink c.net ~host:1) (Rng.create 4) ~p
  | None -> ());
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  let data = Bytes.init total (fun i -> Char.chr ((i * 31) mod 256)) in
  let received = Buffer.create total in
  let eof = ref false in
  let retx = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         let rec loop () =
           let chunk = Tcp.recv conn ~max:8192 in
           if Bytes.length chunk = 0 then eof := true
           else begin
             Buffer.add_bytes received chunk;
             loop ()
           end
         in
         loop ()));
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         let pos = ref 0 in
         while !pos < total do
           let n = min 4_096 (total - !pos) in
           Tcp.send conn (Bytes.sub data !pos n);
           pos := !pos + n
         done;
         Tcp.close conn;
         retx := Tcp.retransmits conn));
  Sim.run ~until:(Sim.sec 120) c.sim;
  (data, Buffer.to_bytes received, !eof, !retx)

let test_tcp_stream_integrity () =
  let data, got, eof, _ = transfer ~total:300_000 () in
  checkb "EOF seen" true eof;
  check Alcotest.bytes "byte stream intact" data got

let test_tcp_integrity_under_loss () =
  let data, got, eof, retx = transfer ~loss_p:0.02 ~total:150_000 () in
  checkb "EOF seen" true eof;
  check Alcotest.bytes "stream intact despite cell loss" data got;
  checkb "recovered by retransmission" true (retx > 0)

let test_tcp_tiny_window () =
  (* 2 KB windows: heavy flow-control exercise, one MSS in flight *)
  let data, got, eof, _ = transfer ~tcp_window:2_048 ~total:50_000 () in
  checkb "EOF" true eof;
  check Alcotest.bytes "intact with a tiny window" data got

let test_tcp_kernel_path () =
  let data, got, eof, _ = transfer ~path:`Kernel ~total:200_000 () in
  checkb "EOF" true eof;
  check Alcotest.bytes "kernel-path stream intact" data got

let test_tcp_bidirectional_echo () =
  let c, sa, sb = tcp_pair () in
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         try
           let rec loop () =
             let chunk = Tcp.recv_exact conn ~len:1000 in
             Tcp.send conn chunk;
             loop ()
           in
           loop ()
         with End_of_file -> ()));
  let ok = ref true and rounds = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         for i = 1 to 10 do
           let msg = Bytes.make 1000 (Char.chr (i + 64)) in
           Tcp.send conn msg;
           let back = Tcp.recv_exact conn ~len:1000 in
           if not (Bytes.equal msg back) then ok := false;
           incr rounds
         done;
         Tcp.close conn));
  Sim.run ~until:(Sim.sec 10) c.sim;
  checki "all rounds" 10 !rounds;
  checkb "echo intact" true !ok

let test_tcp_rtt_estimator () =
  let c, sa, sb = tcp_pair () in
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  ignore (Proc.spawn c.sim (fun () -> ignore (Tcp.accept l)));
  let srtt = ref 0. in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         Tcp.send conn (Bytes.create 1000);
         Proc.sleep c.sim ~time:(Sim.ms 50);
         srtt := Tcp.srtt_us conn));
  Sim.run ~until:(Sim.sec 1) c.sim;
  checkb
    (Printf.sprintf "srtt %.0f us plausible (50..500)" !srtt)
    true
    (!srtt > 50. && !srtt < 500.)

let test_tcp_cwnd_grows () =
  let c, sa, sb = tcp_pair ~tcp_window:(32 * 1024) () in
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         let rec loop () =
           if Bytes.length (Tcp.recv conn ~max:65536) > 0 then loop ()
         in
         loop ()));
  let cwnd_end = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         let cwnd0 = Tcp.cwnd conn in
         for _ = 1 to 20 do
           Tcp.send conn (Bytes.create 4096)
         done;
         Proc.sleep c.sim ~time:(Sim.ms 20);
         cwnd_end := Tcp.cwnd conn - cwnd0));
  Sim.run ~until:(Sim.sec 5) c.sim;
  checkb "congestion window opened" true (!cwnd_end > 0)

let test_tcp_bidirectional_streams () =
  (* full-duplex: both directions stream concurrently over one connection *)
  let c, sa, sb = tcp_pair () in
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  let total = 100_000 in
  let data_a = Bytes.init total (fun i -> Char.chr ((i * 7) mod 256)) in
  let data_b = Bytes.init total (fun i -> Char.chr ((i * 13) mod 256)) in
  let got_at_b = ref Bytes.empty and got_at_a = ref Bytes.empty in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         let reader =
           Proc.spawn c.sim (fun () ->
               got_at_b := Tcp.recv_exact conn ~len:total)
         in
         Tcp.send conn data_b;
         Proc.join reader));
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         let reader =
           Proc.spawn c.sim (fun () ->
               got_at_a := Tcp.recv_exact conn ~len:total)
         in
         Tcp.send conn data_a;
         Proc.join reader));
  Sim.run ~until:(Sim.sec 60) c.sim;
  check Alcotest.bytes "a->b stream" data_a !got_at_b;
  check Alcotest.bytes "b->a stream" data_b !got_at_a

let test_tcp_fast_retransmit_fires () =
  (* enough window to keep several segments in flight, plus loss: dup-ack
     fast retransmits should carry part of the recovery *)
  let c, sa, sb = tcp_pair ~tcp_window:(32 * 1024) () in
  Atm.Link.set_loss (Atm.Network.uplink c.net ~host:0) (Rng.create 5) ~p:0.015;
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         let rec loop () =
           if Bytes.length (Tcp.recv conn ~max:65536) > 0 then loop ()
         in
         loop ()));
  let fr = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         for _ = 1 to 200 do
           Tcp.send conn (Bytes.create 4096)
         done;
         Tcp.close conn;
         fr := Tcp.fast_retransmits conn));
  Sim.run ~until:(Sim.sec 60) c.sim;
  checkb (Printf.sprintf "fast retransmits fired (%d)" !fr) true (!fr > 0)

let test_tcp_zero_window_probe () =
  (* receiver app never reads: the sender must stop at the window and then
     recover via the persist machinery once the app finally drains *)
  let c, sa, sb = tcp_pair ~tcp_window:4_096 () in
  let l = Tcp.listen sb.Suite.tcp ~port:80 in
  let drained = ref Bytes.empty in
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.accept l in
         (* sit on the data for 50 ms, then read everything *)
         Proc.sleep c.sim ~time:(Sim.ms 50);
         drained := Tcp.recv_exact conn ~len:12_288));
  ignore
    (Proc.spawn c.sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         Tcp.send conn (Bytes.make 12_288 'z')));
  Sim.run ~until:(Sim.sec 30) c.sim;
  checki "all 12 KB eventually crossed a 4 KB window" 12_288
    (Bytes.length !drained);
  checkb "contents intact" true
    (Bytes.for_all (fun ch -> ch = 'z') !drained)

let prop_tcp_chunking =
  (* arbitrary app-level write chunkings produce the same byte stream *)
  QCheck.Test.make ~name:"TCP stream invariant under write chunking" ~count:8
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 1 9_000))
    (fun chunks ->
      let c, sa, sb = tcp_pair () in
      let total = List.fold_left ( + ) 0 chunks in
      let data = Bytes.init total (fun i -> Char.chr ((i * 11) mod 256)) in
      let l = Tcp.listen sb.Suite.tcp ~port:80 in
      let got = ref Bytes.empty in
      ignore
        (Proc.spawn c.sim (fun () ->
             let conn = Tcp.accept l in
             got := Tcp.recv_exact conn ~len:total));
      ignore
        (Proc.spawn c.sim (fun () ->
             let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
             let pos = ref 0 in
             List.iter
               (fun n ->
                 Tcp.send conn (Bytes.sub data !pos n);
                 pos := !pos + n)
               chunks;
             Tcp.close conn));
      Sim.run ~until:(Sim.sec 60) c.sim;
      Bytes.equal data !got)

(* --- iface ------------------------------------------------------------ *)

let test_framed_fragmentation () =
  let sim = Sim.create () in
  let cpu_a = Host.Cpu.create sim Host.Machine.ss20 in
  let cpu_b = Host.Cpu.create sim Host.Machine.ss20 in
  let ifa, ifb =
    Iface.framed_pair ~sim ~cpu_a ~cpu_b ~bandwidth_mbps:10. ~wire_mtu:1_514
      ~per_frame_ns:100_000 ~propagation:(Sim.us 10) ()
  in
  ignore ifa;
  let got = ref None in
  Iface.set_rx ifb ~rx_cost_ns:(fun _ -> 0) (fun pkt -> got := Some pkt);
  let pkt = Bytes.init 8_000 (fun i -> Char.chr (i mod 256)) in
  ignore
    (Proc.spawn sim (fun () -> Iface.send ifa ~cost_ns:0 (Buf.of_bytes pkt)));
  Sim.run ~until:(Sim.sec 1) sim;
  match !got with
  | Some p ->
      check Alcotest.bytes "8 KB packet re-assembled over 1.5 KB wire" pkt
        (Buf.to_bytes ~layer:"test" p)
  | None -> Alcotest.fail "nothing delivered"

let test_iface_tx_drops () =
  let sim = Sim.create () in
  let cpu_a = Host.Cpu.create sim Host.Machine.ss20 in
  let cpu_b = Host.Cpu.create sim Host.Machine.ss20 in
  let ifa, _ =
    Iface.framed_pair ~sim ~cpu_a ~cpu_b ~bandwidth_mbps:10. ~wire_mtu:1_514
      ~per_frame_ns:100_000 ~propagation:(Sim.us 10) ~tx_queue:4 ()
  in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 100 do
           Iface.send ifa ~cost_ns:1_000 (Buf.alloc 1_000)
         done));
  Sim.run ~until:(Sim.ms 100) sim;
  checkb "device queue dropped silently (§7.4)" true (Iface.tx_drops ifa > 0)

(* --- flow demultiplexing (§7.1 extension) ----------------------------- *)

let flow_pair () =
  let c = Cluster.create () in
  let a, b =
    Flow_demux.pair (Cluster.node c 0).unet (Cluster.node c 1).unet
      ~local_addr:10 ~remote_addr:20
  in
  (c, a, b)

let test_flow_demux_routing () =
  let c, a, b = flow_pair () in
  let at7 = ref [] and at9 = ref [] in
  Flow_demux.register_flow b ~flow_id:7 (fun ~src data ->
      at7 := (src, Bytes.to_string data) :: !at7);
  Flow_demux.register_flow b ~flow_id:9 (fun ~src:_ data ->
      at9 := (0, Bytes.to_string data) :: !at9);
  ignore
    (Proc.spawn c.sim (fun () ->
         Flow_demux.send a ~flow_id:7 (Bytes.of_string "seven");
         Flow_demux.send a ~flow_id:9 (Bytes.of_string "nine");
         Flow_demux.send a ~flow_id:7 (Bytes.of_string "seven-again")));
  Sim.run c.sim;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "flow 7 in order with source address"
    [ (10, "seven"); (10, "seven-again") ]
    (List.rev !at7);
  checki "flow 9 got one" 1 (List.length !at9);
  checki "all delivered to flows" 3 (Flow_demux.delivered b);
  checki "no kernel fallbacks" 0 (Flow_demux.kernel_fallbacks b)

let test_flow_demux_kernel_fallback () =
  let c, a, b = flow_pair () in
  let kernel_saw = ref [] in
  Flow_demux.set_kernel_handler b (fun ~flow_id ~src:_ _ ->
      kernel_saw := flow_id :: !kernel_saw);
  Flow_demux.register_flow b ~flow_id:1 (fun ~src:_ _ -> ());
  ignore
    (Proc.spawn c.sim (fun () ->
         Flow_demux.send a ~flow_id:1 (Bytes.create 8);
         Flow_demux.send a ~flow_id:99 (Bytes.create 8);
         Flow_demux.send a ~flow_id:42 (Bytes.create 2000)));
  Sim.run c.sim;
  checki "one resolved locally" 1 (Flow_demux.delivered b);
  checki "two fell through to the kernel endpoint" 2
    (Flow_demux.kernel_fallbacks b);
  check (Alcotest.list Alcotest.int) "kernel saw the unresolved tags"
    [ 99; 42 ] (List.rev !kernel_saw)

let test_flow_demux_fallback_costs () =
  (* the kernel fallback pays a system call; a registered flow does not *)
  let measure registered =
    let c, a, b = flow_pair () in
    if registered then Flow_demux.register_flow b ~flow_id:5 (fun ~src:_ _ -> ());
    let t_done = ref 0 in
    ignore
      (Proc.spawn c.sim (fun () ->
           for _ = 1 to 20 do
             Flow_demux.send a ~flow_id:5 (Bytes.create 1000)
           done));
    ignore
      (Sim.schedule c.sim ~delay:(Sim.ms 50) (fun () -> t_done := 0));
    Sim.run c.sim;
    Host.Cpu.busy_time (Cluster.node c 1).cpu
  in
  let fast = measure true and slow = measure false in
  checkb
    (Printf.sprintf "kernel path busier (%d vs %d ns)" slow fast)
    true
    (slow > fast + 19 * 20_000)

let test_flow_demux_duplicate_flow () =
  let _, _, b = flow_pair () in
  Flow_demux.register_flow b ~flow_id:7 (fun ~src:_ _ -> ());
  checkb "duplicate registration rejected" true
    (try
       Flow_demux.register_flow b ~flow_id:7 (fun ~src:_ _ -> ());
       false
     with Invalid_argument _ -> true);
  Flow_demux.unregister_flow b ~flow_id:7;
  Flow_demux.register_flow b ~flow_id:7 (fun ~src:_ _ -> ())

let () =
  Alcotest.run "ipstack"
    [
      ( "checksum",
        [
          Alcotest.test_case "known value" `Quick test_checksum_known;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          QCheck_alcotest.to_alcotest prop_checksum_verify;
          Alcotest.test_case "cost model" `Quick test_checksum_cost;
        ] );
      ( "udp",
        [
          Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "port demux" `Quick test_udp_port_demux;
          Alcotest.test_case "port conflict" `Quick test_udp_port_conflict;
          Alcotest.test_case "close frees port" `Quick test_udp_close_frees_port;
          Alcotest.test_case "recv timeout" `Quick test_udp_recv_timeout;
          Alcotest.test_case "sockbuf losses" `Quick test_udp_sockbuf_losses;
          Alcotest.test_case "MTU enforced" `Quick test_udp_mtu_enforced;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "handshake" `Quick test_tcp_handshake;
          Alcotest.test_case "stream integrity" `Quick test_tcp_stream_integrity;
          Alcotest.test_case "integrity under loss" `Quick test_tcp_integrity_under_loss;
          Alcotest.test_case "tiny window" `Quick test_tcp_tiny_window;
          Alcotest.test_case "kernel path" `Quick test_tcp_kernel_path;
          Alcotest.test_case "bidirectional echo" `Quick test_tcp_bidirectional_echo;
          Alcotest.test_case "rtt estimator" `Quick test_tcp_rtt_estimator;
          Alcotest.test_case "cwnd grows" `Quick test_tcp_cwnd_grows;
          Alcotest.test_case "bidirectional streams" `Quick test_tcp_bidirectional_streams;
          Alcotest.test_case "fast retransmit" `Quick test_tcp_fast_retransmit_fires;
          Alcotest.test_case "zero-window recovery" `Quick test_tcp_zero_window_probe;
          QCheck_alcotest.to_alcotest prop_tcp_chunking;
        ] );
      ( "iface",
        [
          Alcotest.test_case "fragmentation" `Quick test_framed_fragmentation;
          Alcotest.test_case "tx drops" `Quick test_iface_tx_drops;
        ] );
      ( "flow-demux",
        [
          Alcotest.test_case "routing" `Quick test_flow_demux_routing;
          Alcotest.test_case "kernel fallback" `Quick test_flow_demux_kernel_fallback;
          Alcotest.test_case "fallback costs" `Quick test_flow_demux_fallback_costs;
          Alcotest.test_case "duplicate flow" `Quick test_flow_demux_duplicate_flow;
        ] );
    ]
