(* Tests for the ATM substrate: cells, CRC-32, AAL5 SAR, links, the switch
   and the cluster topology. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let mk_payload n = Bytes.init n (fun i -> Char.chr ((i * 7) mod 256))
let mk_buf n = Buf.of_bytes (mk_payload n)
let buf_bytes b = Buf.to_bytes ~layer:"test" b

(* --- Cell ---------------------------------------------------------- *)

let test_cell_sizes () =
  checki "header" 5 Atm.Cell.header_size;
  checki "payload" 48 Atm.Cell.payload_size;
  checki "wire" 53 Atm.Cell.on_wire_size

let test_cell_make () =
  let c = Atm.Cell.make ~vci:42 ~eop:true (Buf.alloc 48) in
  checki "vci" 42 c.Atm.Cell.vci;
  checkb "eop" true c.Atm.Cell.eop;
  let c' = Atm.Cell.with_vci c 7 in
  checki "relabel" 7 c'.Atm.Cell.vci;
  checki "original untouched" 42 c.Atm.Cell.vci

let test_cell_bad_payload () =
  checkb "wrong size rejected" true
    (try
       ignore (Atm.Cell.make ~vci:1 ~eop:false (Buf.alloc 47));
       false
     with Invalid_argument _ -> true);
  checkb "negative vci rejected" true
    (try
       ignore (Atm.Cell.make ~vci:(-1) ~eop:false (Buf.alloc 48));
       false
     with Invalid_argument _ -> true)

(* --- Crc32 --------------------------------------------------------- *)

let test_crc_known_vector () =
  let crc = Atm.Crc32.digest_bytes (Bytes.of_string "123456789") in
  check Alcotest.int32 "check value" 0xCBF43926l crc

let test_crc_empty () =
  check Alcotest.int32 "empty" 0l (Atm.Crc32.digest_bytes Bytes.empty)

let test_crc_chaining () =
  let b = mk_payload 100 in
  let whole = Atm.Crc32.digest b ~pos:0 ~len:100 in
  let first = Atm.Crc32.digest b ~pos:0 ~len:60 in
  let chained = Atm.Crc32.digest ~crc:first b ~pos:60 ~len:40 in
  check Alcotest.int32 "incremental = whole" whole chained

let prop_crc_detects_single_bit_flips =
  QCheck.Test.make ~name:"crc changes under a bit flip" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 0 4000))
    (fun (len, flip) ->
      let b = mk_payload len in
      let crc0 = Atm.Crc32.digest_bytes b in
      let bit = flip mod (len * 8) in
      Bytes.set b (bit / 8)
        (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
      Atm.Crc32.digest_bytes b <> crc0)

(* --- Aal5 ---------------------------------------------------------- *)

let test_cells_for () =
  checki "empty payload still needs a cell" 1 (Atm.Aal5.cells_for 0);
  checki "40 bytes fit one cell" 1 (Atm.Aal5.cells_for 40);
  checki "41 bytes need two" 2 (Atm.Aal5.cells_for 41);
  checki "88 fit two" 2 (Atm.Aal5.cells_for 88);
  checki "89 need three" 3 (Atm.Aal5.cells_for 89)

let test_segment_structure () =
  let cells = Atm.Aal5.segment ~vci:9 (mk_buf 100) in
  checki "cell count" (Atm.Aal5.cells_for 100) (List.length cells);
  List.iteri
    (fun i c ->
      checki "vci carried" 9 c.Atm.Cell.vci;
      checkb "eop only on last" (i = List.length cells - 1) c.Atm.Cell.eop)
    cells

let reassemble cells =
  let r = Atm.Aal5.Reassembler.create () in
  List.fold_left
    (fun acc c -> match Atm.Aal5.Reassembler.push r c with Some x -> Some x | None -> acc)
    None cells

let test_roundtrip_simple () =
  let data = mk_payload 333 in
  match reassemble (Atm.Aal5.segment ~vci:1 (Buf.of_bytes data)) with
  | Some (Ok got) -> check Alcotest.bytes "payload intact" data (buf_bytes got)
  | _ -> Alcotest.fail "reassembly failed"

let prop_aal5_roundtrip =
  QCheck.Test.make ~name:"AAL5 segment/reassemble round-trips" ~count:200
    QCheck.(int_range 0 5_000)
    (fun len ->
      let data = mk_payload len in
      match reassemble (Atm.Aal5.segment ~vci:3 (Buf.of_bytes data)) with
      | Some (Ok got) -> Buf.equal_bytes got data
      | _ -> false)

let test_corruption_detected () =
  let cells = Atm.Aal5.segment ~vci:1 (mk_buf 200) in
  let corrupted =
    List.mapi
      (fun i (c : Atm.Cell.t) ->
        if i = 1 then begin
          let p = buf_bytes c.payload in
          Bytes.set p 10 (Char.chr (Char.code (Bytes.get p 10) lxor 0xff));
          Atm.Cell.make ~vci:c.vci ~eop:c.eop (Buf.of_bytes p)
        end
        else c)
      cells
  in
  match reassemble corrupted with
  | Some (Error Atm.Aal5.Crc_mismatch) -> ()
  | _ -> Alcotest.fail "corruption not detected"

let test_lost_cell_detected () =
  let cells = Atm.Aal5.segment ~vci:1 (mk_buf 200) in
  (* drop the middle cell: the PDU must be rejected at EOP *)
  let cells = List.filteri (fun i _ -> i <> 1) cells in
  (match reassemble cells with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "lost cell not detected"
  | None -> Alcotest.fail "no EOP result");
  ()

let test_reassembler_error_count () =
  let r = Atm.Aal5.Reassembler.create () in
  let cells = Atm.Aal5.segment ~vci:1 (mk_buf 100) in
  let cells = List.filteri (fun i _ -> i <> 0) cells in
  List.iter (fun c -> ignore (Atm.Aal5.Reassembler.push r c)) cells;
  checki "error counted" 1 (Atm.Aal5.Reassembler.errors r);
  (* a subsequent healthy PDU goes through *)
  (match
     List.fold_left
       (fun acc c ->
         match Atm.Aal5.Reassembler.push r c with Some x -> Some x | None -> acc)
       None
       (Atm.Aal5.segment ~vci:1 (mk_buf 50))
   with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "recovery after error failed")

let test_interleaved_vcis () =
  (* one reassembler per VCI, as the NI keeps them: cells of two PDUs on
     different VCIs interleave on the wire without corrupting either *)
  let r1 = Atm.Aal5.Reassembler.create () in
  let r2 = Atm.Aal5.Reassembler.create () in
  let d1 = mk_payload 200 and d2 = Bytes.init 150 (fun i -> Char.chr ((i * 3) mod 256)) in
  let c1 = Atm.Aal5.segment ~vci:1 (Buf.of_bytes d1)
  and c2 = Atm.Aal5.segment ~vci:2 (Buf.of_bytes d2) in
  let out1 = ref None and out2 = ref None in
  let rec interleave a b =
    match (a, b) with
    | [], [] -> ()
    | x :: rest, ys ->
        (match Atm.Aal5.Reassembler.push r1 x with
        | Some (Ok p) -> out1 := Some p
        | _ -> ());
        interleave2 rest ys
    | [], y :: rest ->
        (match Atm.Aal5.Reassembler.push r2 y with
        | Some (Ok p) -> out2 := Some p
        | _ -> ());
        interleave [] rest
  and interleave2 a b =
    match b with
    | y :: rest ->
        (match Atm.Aal5.Reassembler.push r2 y with
        | Some (Ok p) -> out2 := Some p
        | _ -> ());
        interleave a rest
    | [] -> interleave a []
  in
  interleave c1 c2;
  (match !out1 with
  | Some p -> check Alcotest.bytes "vci 1 intact" d1 (buf_bytes p)
  | None -> Alcotest.fail "vci 1 incomplete");
  match !out2 with
  | Some p -> check Alcotest.bytes "vci 2 intact" d2 (buf_bytes p)
  | None -> Alcotest.fail "vci 2 incomplete"

let test_pdu_wire_bytes () =
  checki "one-cell pdu" 53 (Atm.Aal5.pdu_wire_bytes 40);
  checki "two-cell pdu" 106 (Atm.Aal5.pdu_wire_bytes 41)

(* --- Link ---------------------------------------------------------- *)

let mk_link ?queue_capacity sim =
  Atm.Link.create sim ?queue_capacity ~bandwidth_mbps:140.
    ~propagation:(Sim.ns 500) ()

let one_cell vci = Atm.Cell.make ~vci ~eop:true (Buf.alloc 48)

let test_link_cell_time () =
  let sim = Sim.create () in
  let l = mk_link sim in
  checki "53 bytes at 140 Mbit/s" 3_029 (Atm.Link.cell_time l)

let test_link_delivery_time () =
  let sim = Sim.create () in
  let l = mk_link sim in
  let at = ref 0 in
  Atm.Link.set_receiver l (fun _ -> at := Sim.now sim);
  ignore (Atm.Link.send l (one_cell 1));
  Sim.run sim;
  checki "serialization + propagation" 3_529 !at

let test_link_fifo_and_serialization () =
  let sim = Sim.create () in
  let l = mk_link sim in
  let arrivals = ref [] in
  Atm.Link.set_receiver l (fun c ->
      arrivals := (c.Atm.Cell.vci, Sim.now sim) :: !arrivals);
  for i = 1 to 3 do
    ignore (Atm.Link.send l (one_cell i))
  done;
  Sim.run sim;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "in order, spaced by the cell time"
    [ (1, 3_529); (2, 6_558); (3, 9_587) ]
    (List.rev !arrivals)

let test_link_queue_overflow () =
  let sim = Sim.create () in
  let l = mk_link ~queue_capacity:2 sim in
  Atm.Link.set_receiver l (fun _ -> ());
  (* one transmitting + two queued fit; the fourth drops *)
  checkb "1" true (Atm.Link.send l (one_cell 1));
  checkb "2" true (Atm.Link.send l (one_cell 2));
  checkb "3" true (Atm.Link.send l (one_cell 3));
  checkb "4 dropped" false (Atm.Link.send l (one_cell 4));
  checki "drop counted" 1 (Atm.Link.cells_dropped l);
  Sim.run sim;
  checki "three sent" 3 (Atm.Link.cells_sent l)

let test_link_loss_injection () =
  let sim = Sim.create () in
  let l = mk_link sim in
  let got = ref 0 in
  Atm.Link.set_receiver l (fun _ -> incr got);
  Atm.Link.set_loss l (Rng.create 1) ~p:1.0;
  for _ = 1 to 10 do
    ignore (Atm.Link.send l (one_cell 1))
  done;
  Sim.run sim;
  checki "all lost" 0 !got;
  checki "losses counted" 10 (Atm.Link.cells_dropped l)

(* --- Switch -------------------------------------------------------- *)

let test_switch_routing () =
  let sim = Sim.create () in
  let sw = Atm.Switch.create sim ~ports:2 ~transit:(Sim.us 2) () in
  let out = mk_link sim in
  let got = ref [] in
  Atm.Link.set_receiver out (fun c -> got := c.Atm.Cell.vci :: !got);
  Atm.Switch.attach_output sw ~port:1 out;
  Atm.Switch.add_route sw ~in_port:0 ~in_vci:40 ~out_port:1 ~out_vci:77;
  Atm.Switch.input sw ~port:0 (one_cell 40);
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "relabelled and delivered" [ 77 ] !got;
  checki "routed count" 1 (Atm.Switch.cells_routed sw)

let test_switch_unroutable () =
  let sim = Sim.create () in
  let sw = Atm.Switch.create sim ~ports:2 ~transit:(Sim.us 2) () in
  Atm.Switch.input sw ~port:0 (one_cell 99);
  Sim.run sim;
  checki "unroutable counted" 1 (Atm.Switch.unroutable sw)

let test_switch_route_conflict () =
  let sim = Sim.create () in
  let sw = Atm.Switch.create sim ~ports:2 ~transit:(Sim.us 2) () in
  Atm.Switch.add_route sw ~in_port:0 ~in_vci:40 ~out_port:1 ~out_vci:1;
  checkb "duplicate route rejected" true
    (try
       Atm.Switch.add_route sw ~in_port:0 ~in_vci:40 ~out_port:1 ~out_vci:2;
       false
     with Invalid_argument _ -> true)

let test_switch_remove_route () =
  let sim = Sim.create () in
  let sw = Atm.Switch.create sim ~ports:2 ~transit:(Sim.us 2) () in
  let out = mk_link sim in
  Atm.Link.set_receiver out (fun _ -> ());
  Atm.Switch.attach_output sw ~port:1 out;
  Atm.Switch.add_route sw ~in_port:0 ~in_vci:40 ~out_port:1 ~out_vci:77;
  Atm.Switch.remove_route sw ~in_port:0 ~in_vci:40;
  Atm.Switch.input sw ~port:0 (one_cell 40);
  Sim.run sim;
  checki "dropped after removal" 1 (Atm.Switch.unroutable sw)

let test_switch_queue_overflow () =
  let sim = Sim.create () in
  let sw =
    Atm.Switch.create sim ~ports:2 ~transit:(Sim.us 2) ~output_queue_capacity:1 ()
  in
  let out = mk_link sim in
  Atm.Link.set_receiver out (fun _ -> ());
  Atm.Switch.attach_output sw ~port:1 out;
  Atm.Switch.add_route sw ~in_port:0 ~in_vci:40 ~out_port:1 ~out_vci:40;
  for _ = 1 to 10 do
    Atm.Switch.input sw ~port:0 (one_cell 40)
  done;
  Sim.run sim;
  checkb "drops under burst" true (Atm.Switch.cells_dropped sw > 0)

(* --- Network ------------------------------------------------------- *)

let test_network_end_to_end () =
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:3 Atm.Network.default_config in
  let conn = Atm.Network.connect net ~a:0 ~b:2 in
  let at2 = ref [] and at0 = ref [] in
  Atm.Network.attach_rx net ~host:2 (fun c -> at2 := c.Atm.Cell.vci :: !at2);
  Atm.Network.attach_rx net ~host:0 (fun c -> at0 := c.Atm.Cell.vci :: !at0);
  Atm.Network.attach_rx net ~host:1 (fun _ -> Alcotest.fail "wrong host");
  checkb "a->b send" true
    (Atm.Network.send net ~host:0 (one_cell conn.side_a.tx_vci));
  checkb "b->a send" true
    (Atm.Network.send net ~host:2 (one_cell conn.side_b.tx_vci));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "arrived at b with b's rx vci"
    [ conn.side_b.rx_vci ] !at2;
  check (Alcotest.list Alcotest.int) "arrived at a with a's rx vci"
    [ conn.side_a.rx_vci ] !at0

let test_network_vcis_distinct () =
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:4 Atm.Network.default_config in
  let c1 = Atm.Network.connect net ~a:0 ~b:1 in
  let c2 = Atm.Network.connect net ~a:0 ~b:2 in
  let c3 = Atm.Network.connect net ~a:3 ~b:1 in
  checkb "tx vcis on host 0 differ" true (c1.side_a.tx_vci <> c2.side_a.tx_vci);
  checkb "rx vcis on host 1 differ" true (c1.side_b.rx_vci <> c3.side_b.rx_vci)

let test_network_disconnect () =
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:2 Atm.Network.default_config in
  let conn = Atm.Network.connect net ~a:0 ~b:1 in
  let got = ref 0 in
  Atm.Network.attach_rx net ~host:1 (fun _ -> incr got);
  Atm.Network.disconnect net conn;
  ignore (Atm.Network.send net ~host:0 (one_cell conn.side_a.tx_vci));
  Sim.run sim;
  checki "nothing delivered" 0 !got

let test_network_self_connect_rejected () =
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:2 Atm.Network.default_config in
  checkb "self connect rejected" true
    (try
       ignore (Atm.Network.connect net ~a:1 ~b:1);
       false
     with Invalid_argument _ -> true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "atm"
    [
      ( "cell",
        [
          Alcotest.test_case "sizes" `Quick test_cell_sizes;
          Alcotest.test_case "make / relabel" `Quick test_cell_make;
          Alcotest.test_case "validation" `Quick test_cell_bad_payload;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc_known_vector;
          Alcotest.test_case "empty" `Quick test_crc_empty;
          Alcotest.test_case "chaining" `Quick test_crc_chaining;
          qt prop_crc_detects_single_bit_flips;
        ] );
      ( "aal5",
        [
          Alcotest.test_case "cells_for" `Quick test_cells_for;
          Alcotest.test_case "segment structure" `Quick test_segment_structure;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_simple;
          qt prop_aal5_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
          Alcotest.test_case "lost cell detected" `Quick test_lost_cell_detected;
          Alcotest.test_case "error count + recovery" `Quick test_reassembler_error_count;
          Alcotest.test_case "interleaved VCIs" `Quick test_interleaved_vcis;
          Alcotest.test_case "wire bytes sawtooth" `Quick test_pdu_wire_bytes;
        ] );
      ( "link",
        [
          Alcotest.test_case "cell time" `Quick test_link_cell_time;
          Alcotest.test_case "delivery time" `Quick test_link_delivery_time;
          Alcotest.test_case "fifo + serialization" `Quick test_link_fifo_and_serialization;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "loss injection" `Quick test_link_loss_injection;
        ] );
      ( "switch",
        [
          Alcotest.test_case "routing" `Quick test_switch_routing;
          Alcotest.test_case "unroutable" `Quick test_switch_unroutable;
          Alcotest.test_case "route conflict" `Quick test_switch_route_conflict;
          Alcotest.test_case "remove route" `Quick test_switch_remove_route;
          Alcotest.test_case "queue overflow" `Quick test_switch_queue_overflow;
        ] );
      ( "network",
        [
          Alcotest.test_case "end to end" `Quick test_network_end_to_end;
          Alcotest.test_case "vcis distinct" `Quick test_network_vcis_distinct;
          Alcotest.test_case "disconnect" `Quick test_network_disconnect;
          Alcotest.test_case "self connect" `Quick test_network_self_connect_rejected;
        ] );
    ]
