(* Tests for the wall-clock self-profiler, the event-queue introspection
   and the direction-aware bench gates: the root-inclusive-equals-elapsed
   wall invariant over a real experiment, allocation attribution without
   double counting across nested frames, --profile/--selfprof
   composition through one push/pop site, event-kind windows, queue
   lifecycle counters and histograms, the queue-depth probe, the
   enginebench snapshot schema, and benchdiff's gating rules. *)

open Engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let with_selfprof f =
  Selfprof.start ();
  Fun.protect
    ~finally:(fun () ->
      Selfprof.stop ();
      Selfprof.clear ())
    f

(* --- wall attribution ------------------------------------------------- *)

(* Exclusive wall times over all stacks must sum to elapsed wall time:
   every transition charges the interval since the previous one to
   exactly one node, and the synthetic [engine] root absorbs event-loop
   and idle time. Checked over a real experiment run, within 1%. *)
let test_wall_folded_sum () =
  match Experiments.Registry.find "fig3" with
  | None -> Alcotest.fail "fig3 experiment missing"
  | Some e ->
      Selfprof.start ();
      ignore (e.run ~quick:true);
      Selfprof.stop ();
      let el = Selfprof.elapsed_wall_ns () in
      checkb "wall time elapsed" true (el > 0);
      let sum =
        List.fold_left (fun acc (_, self) -> acc + self) 0 (Selfprof.stacks ())
      in
      let drift = abs (sum - el) in
      if float_of_int drift > 0.01 *. float_of_int el then
        Alcotest.failf "folded sum %d vs elapsed %d (drift %d ns > 1%%)" sum el
          drift;
      checki "no unmatched exits counted as frames" 0
        (List.length
           (List.filter (fun (path, _) -> path = []) (Selfprof.stacks ())));
      Selfprof.clear ()

(* Allocation deltas are charged at transitions, so a nested frame's
   words never also land in its parent: allocate a known number of words
   in each of two nested frames and check each frame got (about) its own
   share and only that. *)
let test_alloc_no_double_count () =
  (* drain the minor heap first: a minor collection mid-interval adds an
     accounting jump to whichever frame it lands in, which is honest
     attribution but not what this test pins down *)
  Gc.full_major ();
  with_selfprof @@ fun () ->
  let keep = ref [] in
  Selfprof.enter "outer";
  keep := Array.make 100_000 0. :: !keep;
  Selfprof.enter "inner";
  keep := Array.make 200_000 0. :: !keep;
  Selfprof.exit_frame ();
  Selfprof.exit_frame ();
  ignore (Sys.opaque_identity !keep);
  let alloc = Selfprof.alloc_stacks () in
  let words path =
    match List.assoc_opt path alloc with Some w -> w | None -> 0
  in
  let outer = words [ "engine"; "outer" ]
  and inner = words [ "engine"; "outer"; "inner" ] in
  if not (outer >= 100_000 && outer < 160_000) then
    Alcotest.failf "outer charged %d words, expected ~100k" outer;
  if not (inner >= 200_000 && inner < 260_000) then
    Alcotest.failf "inner charged %d words, expected ~200k" inner

(* One Profile.push feeds both profilers: with both enabled, a frame
   shows up in the virtual-time stacks (with its charge) and in the
   wall-time tree (as a node), from a single instrumentation site. *)
let test_compose_with_profile () =
  Profile.start ();
  Selfprof.start ();
  Fun.protect ~finally:(fun () ->
      Selfprof.stop ();
      Selfprof.clear ();
      Profile.stop ();
      Profile.clear ())
  @@ fun () ->
  Profile.push "shared";
  Profile.charge 11;
  Profile.pop ();
  checkb "virtual profiler saw the frame" true
    (List.assoc_opt [ "host0"; "shared" ] (Profile.stacks ()) = Some 11);
  checkb "wall profiler saw the same frame" true
    (List.mem_assoc [ "engine"; "shared" ] (Selfprof.stacks ()))

(* Event windows: a labeled event runs under its ev:<label> kind node,
   frames pushed inside nest under it, and a frame left open by the
   thunk is rewound (counted) instead of absorbing later events. *)
let test_event_windows () =
  with_selfprof @@ fun () ->
  let sim = Sim.create () in
  ignore
    (Sim.schedule ~label:"widget" sim ~delay:0 (fun () ->
         Profile.push "work";
         Profile.pop ()));
  ignore (Sim.schedule ~label:"leaky" sim ~delay:1 (fun () -> Profile.push "open"));
  Sim.run sim;
  let paths = List.map fst (Selfprof.stacks ()) in
  checkb "kind node created" true (List.mem [ "engine"; "ev:widget" ] paths);
  checkb "inner frame nests under the kind" true
    (List.exists (fun p -> p = [ "engine"; "ev:widget"; "work" ]) paths
    || not (List.mem [ "engine"; "work" ] paths));
  checki "dangling frame rewound and counted" 1 (Selfprof.dangling ());
  let kinds = List.map (fun (l, _, _, _) -> l) (Selfprof.kind_summaries ()) in
  checkb "per-kind summaries accumulated" true
    (List.mem "widget" kinds && List.mem "leaky" kinds)

(* --- queue introspection ---------------------------------------------- *)

let test_queue_counters () =
  let fired0 = Sim.events_fired () and cancelled0 = Sim.events_cancelled () in
  let sim = Sim.create () in
  let h = Sim.schedule sim ~delay:5 (fun () -> ()) in
  ignore (Sim.schedule sim ~delay:1 (fun () -> ()));
  ignore (Sim.schedule sim ~delay:2 (fun () -> ()));
  Sim.cancel h;
  Sim.cancel h;
  (* double cancel counts once *)
  Sim.run sim;
  checki "fired" 2 (Sim.events_fired () - fired0);
  checki "cancelled" 1 (Sim.events_cancelled () - cancelled0);
  checkb "tombstone ratio in [0,1]" true
    (Sim.tombstone_ratio () >= 0. && Sim.tombstone_ratio () <= 1.)

let test_queue_histograms () =
  with_selfprof @@ fun () ->
  let sim = Sim.create () in
  (* three events at one timestamp -> a batch of 3; a cancelled event
     ahead of them -> at least one pop skips a tombstone *)
  let h = Sim.schedule sim ~delay:1 (fun () -> ()) in
  Sim.cancel h;
  for _ = 1 to 3 do
    ignore (Sim.schedule sim ~delay:2 (fun () -> ()))
  done;
  Sim.run sim;
  checkb "pop-cost histogram populated" true (Selfprof.pop_cost_hist () <> []);
  checkb "some pop paid for the tombstone" true (Selfprof.pop_cost_mean () > 0.);
  checkb "batch of 3 observed" true
    (List.exists (fun (n, _) -> n >= 3) (Selfprof.batch_size_hist ()));
  checkb "mean batch >= 1" true (Selfprof.batch_size_mean () >= 1.)

let test_queue_depth_probe () =
  Timeseries.clear ();
  Timeseries.start ();
  Fun.protect ~finally:(fun () ->
      Timeseries.stop ();
      Timeseries.clear ())
  @@ fun () ->
  Timeseries.set_interval (Sim.us 10);
  let sim = Sim.create () in
  for i = 1 to 40 do
    ignore (Sim.schedule sim ~delay:(Sim.us (5 * i)) (fun () -> ()))
  done;
  Sim.run sim;
  match
    List.find_opt
      (fun (s : Timeseries.series) -> s.s_name = "sim_queue_depth")
      (Timeseries.series ())
  with
  | None -> Alcotest.fail "sim_queue_depth probe never sampled"
  | Some s ->
      checkb "at least 10 depth samples over 200 us" true
        (List.length s.s_points >= 10);
      checkb "depth decreases as the queue drains" true
        (match (s.s_points, List.rev s.s_points) with
        | (_, first) :: _, (_, last) :: _ -> last <= first
        | _ -> false)

(* --- enginebench snapshot schema -------------------------------------- *)

let test_enginebench_schema () =
  let samples = Experiments.Enginebench.measure ~quick:true in
  checki "four workloads" 4 (List.length samples);
  List.iter
    (fun (s : Experiments.Enginebench.sample) ->
      checkb (s.s_workload ^ " fired events") true (s.s_events > 0);
      checkb (s.s_workload ^ " took wall time") true (s.s_wall_ns > 0);
      checkb (s.s_workload ^ " allocated") true (s.s_alloc_words > 0.))
    samples;
  let j = Experiments.Enginebench.snapshot_json ~quick:true samples in
  checkb "named" true (Json.member "name" j = Some (Json.Str "engine-throughput"));
  List.iter
    (fun (s : Experiments.Enginebench.sample) ->
      List.iter
        (fun suffix ->
          let key = s.s_workload ^ suffix in
          checkb (key ^ " present") true
            (Option.is_some (Benchgate.numeric key j)))
        [
          "_events_fired";
          "_events_per_pdu";
          "_mb_per_sec";
          "_events_per_sec_wall";
          "_us_per_event";
          "_alloc_words_per_event";
          "_latency_p50_ns";
          "_latency_p99_ns";
          "_latency_p999_ns";
        ])
    samples;
  checki "one gate per metric" 36 (List.length (Benchgate.gates_of_json j))

(* --- direction-aware gating ------------------------------------------- *)

let snap gates values =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Num v)) values
    @ [ ("gates", Benchgate.gates_json gates) ])

let test_gate_directions () =
  let open Benchgate in
  let lower = { g_tolerance = 0.2; g_direction = Lower_is_better } in
  let higher = { g_tolerance = 0.2; g_direction = Higher_is_better } in
  let both = { g_tolerance = 0.2; g_direction = Both } in
  checkb "lower: regression flagged" true
    (violates lower ~baseline:100. ~current:130.);
  checkb "lower: improvement passes however large" false
    (violates lower ~baseline:100. ~current:10.);
  checkb "higher: regression flagged" true
    (violates higher ~baseline:100. ~current:70.);
  checkb "higher: improvement passes however large" false
    (violates higher ~baseline:100. ~current:1000.);
  checkb "both: flagged either way" true
    (violates both ~baseline:100. ~current:130.
    && violates both ~baseline:100. ~current:70.);
  checkb "within tolerance passes" false
    (violates lower ~baseline:100. ~current:110.)

let test_diff_gated () =
  let gates =
    [
      ("us_per_event", Benchgate.{ g_tolerance = 0.5; g_direction = Lower_is_better });
      ("events_per_sec", Benchgate.{ g_tolerance = 0.5; g_direction = Higher_is_better });
    ]
  in
  let baseline = snap gates [ ("us_per_event", 2.0); ("events_per_sec", 1e6) ] in
  let improved = snap gates [ ("us_per_event", 0.5); ("events_per_sec", 4e6) ] in
  let regressed = snap gates [ ("us_per_event", 4.0); ("events_per_sec", 1e6) ] in
  checkb "improvement produces no flags" true
    (Benchgate.diff ~tolerance:0.1 baseline improved = []);
  checkb "regression is flagged" true
    (Benchgate.diff ~tolerance:0.1 baseline regressed <> []);
  (* the baseline's gates govern even if the current snapshot carries
     different (e.g. loosened) gates *)
  let loosened =
    snap
      [ ("us_per_event", Benchgate.{ g_tolerance = 99.; g_direction = Both }) ]
      [ ("us_per_event", 4.0); ("events_per_sec", 1e6) ]
  in
  checkb "baseline's copy of the gates wins" true
    (Benchgate.diff ~tolerance:0.1 baseline loosened <> [])

let test_diff_missing_metric () =
  let gates =
    [ ("us_per_event", Benchgate.{ g_tolerance = 0.5; g_direction = Lower_is_better }) ]
  in
  let baseline = snap gates [ ("us_per_event", 2.0) ] in
  let missing = snap gates [] in
  checkb "gated metric missing from current is flagged" true
    (Benchgate.diff ~tolerance:0.1 baseline missing <> [])

let () =
  Alcotest.run "selfprof"
    [
      ( "wall",
        [
          Alcotest.test_case "folded sum = elapsed (fig3)" `Quick
            test_wall_folded_sum;
          Alcotest.test_case "alloc not double-counted" `Quick
            test_alloc_no_double_count;
          Alcotest.test_case "composes with --profile" `Quick
            test_compose_with_profile;
          Alcotest.test_case "event kind windows" `Quick test_event_windows;
        ] );
      ( "queue",
        [
          Alcotest.test_case "lifecycle counters" `Quick test_queue_counters;
          Alcotest.test_case "pop-cost and batch histograms" `Quick
            test_queue_histograms;
          Alcotest.test_case "depth probe cadence" `Quick test_queue_depth_probe;
        ] );
      ( "bench",
        [
          Alcotest.test_case "enginebench snapshot schema" `Quick
            test_enginebench_schema;
          Alcotest.test_case "gate directions" `Quick test_gate_directions;
          Alcotest.test_case "diff obeys baseline gates" `Quick test_diff_gated;
          Alcotest.test_case "missing gated metric flagged" `Quick
            test_diff_missing_metric;
        ] );
    ]
