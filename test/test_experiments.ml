(* Reproduction tests: every table and figure of the paper's evaluation is
   re-run (at reduced iteration counts) and its qualitative claims are
   asserted — orderings, crossovers, saturation points, and values within
   tolerance bands of the paper's numbers. *)

let experiment_case (e : Experiments.Registry.experiment) =
  Alcotest.test_case e.name `Slow (fun () ->
      let results = (e.run ~quick:true).Experiments.Registry.o_checks in
      Alcotest.(check bool)
        (Fmt.str "%s: %a" e.name
           Fmt.(list ~sep:comma (pair ~sep:(any "=") string bool))
           results)
        true
        (List.for_all snd results))

let () =
  Alcotest.run "experiments"
    [
      ( "paper-claims",
        List.map experiment_case Experiments.Registry.all );
    ]
