(* Multi-stage fabrics (DESIGN.md §16): Clos elaboration, per-hop VCI
   remapping, wire order across stages, the multi-stage train fast path's
   flags-off invisibility, fault-site coverage on non-uniform port counts,
   and the undeliverable / VCI-exhaustion failure modes. *)

open Engine

let clos2 = Atm.Network.Clos { pods = 2; spine = 2; hosts_per_pod = 2 }

(* A payload stamping [seq] in its first byte. *)
let seq_payload seq =
  Buf.of_string (String.init Atm.Cell.payload_size (fun i ->
      if i = 0 then Char.chr (seq land 0xff) else '\x00'))

(* --- elaboration and routing ----------------------------------------- *)

let clos_shape () =
  let sim = Sim.create () in
  let net = Atm.Network.create_topo sim ~topology:clos2 Atm.Network.default_config in
  Alcotest.(check int) "hosts" 4 (Atm.Network.host_count net);
  Alcotest.(check int) "switches" 4 (Atm.Network.switch_count net);
  (* leaves have host + spine ports, spines one port per pod *)
  Alcotest.(check int) "leaf ports" 4
    (Atm.Switch.ports (Atm.Network.switch_at net 0));
  Alcotest.(check int) "spine ports" 2
    (Atm.Switch.ports (Atm.Network.switch_at net 2));
  Alcotest.(check int) "host 3 on leaf 1" 1 (Atm.Network.host_switch net ~host:3)

(* Cross-pod cells arrive relabelled to the receiver-side VCI, having been
   remapped at every stage (uplink VCI -> trunk VCI -> downlink VCI). *)
let clos_delivery () =
  let sim = Sim.create () in
  let net = Atm.Network.create_topo sim ~topology:clos2 Atm.Network.default_config in
  let conn = Atm.Network.connect net ~a:0 ~b:3 in
  let got = ref [] in
  Atm.Network.attach_rx net ~host:3 (fun cell ->
      got := (cell.Atm.Cell.vci, Buf.get_uint8 cell.Atm.Cell.payload 0) :: !got);
  Atm.Network.attach_rx net ~host:0 (fun _ -> ());
  let n = 5 in
  for i = 0 to n - 1 do
    let cell =
      Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:(i = n - 1)
        (seq_payload i)
    in
    Alcotest.(check bool) "accepted" true (Atm.Network.send net ~host:0 cell)
  done;
  Sim.run ~until:(Sim.ms 1) sim;
  let got = List.rev !got in
  Alcotest.(check int) "all delivered" n (List.length got);
  List.iteri
    (fun i (vci, seq) ->
      Alcotest.(check int) "relabelled to rx VCI"
        conn.Atm.Network.side_b.rx_vci vci;
      Alcotest.(check int) "in order" i seq)
    got;
  (* the route really crossed a spine: each cell was forwarded by three
     stages (leaf 0, one spine, leaf 1) *)
  let routed =
    List.init 4 (fun i -> Atm.Switch.cells_routed (Atm.Network.switch_at net i))
  in
  Alcotest.(check int) "3 forwards per cell" (3 * n)
    (List.fold_left ( + ) 0 routed);
  Alcotest.(check bool) "exactly one spine used" true
    (List.sort compare [ List.nth routed 2; List.nth routed 3 ] = [ 0; n ])

(* --- wire order across stages (QCheck) -------------------------------- *)

(* No cell of a PDU may overtake a predecessor anywhere in the fabric:
   receivers see sequence numbers strictly in send order, whatever the
   pacing. Random per-cell send gaps exercise queue buildup at each hop. *)
let prop_wire_order =
  QCheck.Test.make ~count:30 ~name:"no cell overtakes a predecessor"
    QCheck.(pair (1 -- 60) (list_of_size Gen.(1 -- 40) (0 -- 3)))
    (fun (cells, gaps) ->
      let sim = Sim.create () in
      let net =
        Atm.Network.create_topo sim ~topology:clos2 Atm.Network.default_config
      in
      let conn = Atm.Network.connect net ~a:0 ~b:3 in
      let got = ref [] in
      Atm.Network.attach_rx net ~host:3 (fun cell ->
          got := Buf.get_uint8 cell.Atm.Cell.payload 0 :: !got);
      let slot = Atm.Link.cell_time (Atm.Network.uplink net ~host:0) in
      let gap i =
        match List.nth_opt gaps (i mod max 1 (List.length gaps)) with
        | Some g -> g * slot
        | None -> 0
      in
      let t = ref 0 in
      for i = 0 to cells - 1 do
        (* at least a cell slot apart so the bounded host FIFO never
           overflows; the random extra gap varies switch-queue depth *)
        t := !t + slot + gap i;
        let vci = conn.Atm.Network.side_a.tx_vci in
        Sim.schedule_drop_at sim !t (fun () ->
            ignore
              (Atm.Network.send net ~host:0
                 (Atm.Cell.make ~vci ~eop:false (seq_payload i))
                : bool))
      done;
      Sim.run ~until:(Sim.ms 10) sim;
      List.rev !got = List.init cells (fun i -> i land 0xff))

(* --- multi-stage train fast path: flags-off invisibility -------------- *)

let strip_event_counters dump =
  String.split_on_char '\n' dump
  |> List.filter (fun line ->
         not
           (String.length line >= 16
           && String.sub line 0 16 = "sim_events_total"))
  |> String.concat "\n"

let both_modes f =
  let run forced =
    Metrics.reset ();
    Trainmode.force_per_cell forced;
    let fired0 = Sim.events_fired () in
    (try f ()
     with e ->
       Trainmode.force_per_cell false;
       raise e);
    Trainmode.force_per_cell false;
    Metrics.flush ();
    ( strip_event_counters (Metrics.to_prometheus_string ()),
      Sim.events_fired () - fired0 )
  in
  let train = run false in
  let percell = run true in
  (train, percell)

(* fig3-style round trips between cross-pod hosts: every PDU crosses three
   stages in each direction, and the analytic trains must reproduce the
   per-cell reference byte-for-byte. *)
let clos_differential_rtt () =
  let (train_dump, _), (percell_dump, _) =
    both_modes (fun () ->
        ignore
          (Experiments.Common.raw_rtt ~iters:20 ~size:1024 ~topology:clos2
             ~pair:(0, 3) ()
            : float))
  in
  Alcotest.(check string) "clos rtt: metrics train = per-cell" percell_dump
    train_dump

let clos_differential_bandwidth () =
  let (train_dump, train_fired), (percell_dump, percell_fired) =
    both_modes (fun () ->
        ignore
          (Experiments.Common.raw_bandwidth ~count:30 ~size:5056
             ~topology:clos2 ~pair:(0, 3) ()
            : float))
  in
  Alcotest.(check string) "clos bandwidth: metrics train = per-cell"
    percell_dump train_dump;
  (* and the fast path really engaged across the multi-hop route *)
  Alcotest.(check bool)
    (Printf.sprintf "3x fewer events (train %d vs per-cell %d)" train_fired
       percell_fired)
    true
    (train_fired * 3 <= percell_fired)

(* --- fault sites on non-uniform port counts (regression) -------------- *)

(* apply_fault's Switch arm used to iterate hosts, not the switch's own
   port count: on a Clos whose spines have fewer ports than the cluster
   has hosts it raised, and leaf trunk ports got no injector at all. *)
let fault_covers_fabric () =
  Metrics.reset ();
  let sim = Sim.create () in
  let net = Atm.Network.create_topo sim ~topology:clos2 Atm.Network.default_config in
  let spec = { Fault.none with loss = 1.0; sites = [ Fault.Switch ] } in
  Atm.Network.apply_fault net spec;
  let conn = Atm.Network.connect net ~a:0 ~b:3 in
  Atm.Network.attach_rx net ~host:3 (fun _ ->
      Alcotest.fail "cell crossed a loss=1.0 switch site");
  ignore
    (Atm.Network.send net ~host:0
       (Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:true
          (seq_payload 0))
      : bool);
  Sim.run ~until:(Sim.ms 1) sim;
  Metrics.flush ();
  (* host 0 -> 3 picks spine (0 + 3) mod 2 = 1, so leaf 0's trunk port
     toward spine 1 is port hosts_per_pod + 1 = 3 — a port index the old
     host-count loop happened to cover only by coincidence, now labelled
     per stage *)
  let dropped =
    match
      Metrics.counter_value "fault_injected_total"
        [ ("kind", "drop"); ("site", "switch.0.port.3") ]
    with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "dropped at the stage-labelled trunk port" 1 dropped

(* single-switch fabrics keep the historical site labels *)
let fault_single_switch_labels () =
  Metrics.reset ();
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:2 Atm.Network.default_config in
  let spec = { Fault.none with loss = 1.0; sites = [ Fault.Switch ] } in
  Atm.Network.apply_fault net spec;
  let conn = Atm.Network.connect net ~a:0 ~b:1 in
  Atm.Network.attach_rx net ~host:1 (fun _ -> ());
  ignore
    (Atm.Network.send net ~host:0
       (Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:true
          (seq_payload 0))
      : bool);
  Sim.run ~until:(Sim.ms 1) sim;
  Metrics.flush ();
  let dropped =
    match
      Metrics.counter_value "fault_injected_total"
        [ ("kind", "drop"); ("site", "switch.port.1") ]
    with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "historical switch.port.<p> label" 1 dropped

(* --- undeliverable cells are counted, not silently discarded ---------- *)

let undeliverable_counted () =
  (* fully-wired runs must not even create the family (checked first:
     Metrics.reset keeps registrations, so the lazy creation below would
     leak into this half) *)
  Metrics.reset ();
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:2 Atm.Network.default_config in
  let conn = Atm.Network.connect net ~a:0 ~b:1 in
  Atm.Network.attach_rx net ~host:1 (fun _ -> ());
  ignore
    (Atm.Network.send net ~host:0
       (Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:true
          (seq_payload 0))
      : bool);
  Sim.run ~until:(Sim.ms 1) sim;
  Metrics.flush ();
  Alcotest.(check bool) "family absent when every host is wired" true
    (Metrics.counter_value "atm_fabric_undeliverable_total" [ ("host", "1") ]
    = None);
  Metrics.reset ();
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:2 Atm.Network.default_config in
  let conn = Atm.Network.connect net ~a:0 ~b:1 in
  (* host 1 never attaches an NI *)
  for i = 0 to 2 do
    ignore
      (Atm.Network.send net ~host:0
         (Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:(i = 2)
            (seq_payload i))
        : bool)
  done;
  Sim.run ~until:(Sim.ms 1) sim;
  Metrics.flush ();
  let n =
    match
      Metrics.counter_value "atm_fabric_undeliverable_total"
        [ ("host", "1") ]
    with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "undeliverable cells counted" 3 n

(* --- VCI allocators refuse past the 16-bit ceiling (regression) ------- *)

let vci_ceiling () =
  let sim = Sim.create () in
  let net = Atm.Network.create sim ~hosts:2 Atm.Network.default_config in
  (* 32..65535 leaves 65504 tx VCIs per host; each connect takes one *)
  let raised = ref false in
  (try
     for _ = 1 to 70_000 do
       ignore (Atm.Network.connect net ~a:0 ~b:1 : Atm.Network.conn)
     done
   with Invalid_argument msg ->
     raised := true;
     Alcotest.(check bool) "message names the VCI space" true
       (String.length msg >= 7
       && String.sub msg 0 7 = "Network"));
  Alcotest.(check bool) "allocator raised instead of aliasing" true !raised

let () =
  Alcotest.run "fabric"
    [
      ( "clos",
        [
          Alcotest.test_case "elaboration shape" `Quick clos_shape;
          Alcotest.test_case "cross-pod delivery + VCI remap" `Quick
            clos_delivery;
          QCheck_alcotest.to_alcotest prop_wire_order;
        ] );
      ( "train",
        [
          Alcotest.test_case "clos rtt differential" `Slow
            clos_differential_rtt;
          Alcotest.test_case "clos bandwidth differential" `Slow
            clos_differential_bandwidth;
        ] );
      ( "faults",
        [
          Alcotest.test_case "sites cover non-uniform ports" `Quick
            fault_covers_fabric;
          Alcotest.test_case "single-switch labels unchanged" `Quick
            fault_single_switch_labels;
        ] );
      ( "edges",
        [
          Alcotest.test_case "undeliverable cells counted" `Quick
            undeliverable_counted;
          Alcotest.test_case "VCI ceiling raises" `Quick vci_ceiling;
        ] );
    ]
