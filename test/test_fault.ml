(* Tests for the deterministic fault-injection layer and the bugs it
   exposed: spec parsing, per-site stream determinism, honest Bernoulli
   frequencies, the timer-driven UAM retransmission (a stalled sender now
   recovers; a dead peer no longer livelocks the simulation), accounted
   receive-path drops, AAL5 discard accounting, and end-to-end payload
   integrity of go-back-N and TCP under injected faults. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let counter name labels =
  Option.value ~default:0 (Metrics.counter_value name labels)

(* --- spec parsing --------------------------------------------------- *)

let test_parse_ok () =
  match Fault.parse "loss=0.01,seed=7,at=up+switch" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      checki "seed" 7 s.Fault.seed;
      check (Alcotest.float 1e-9) "loss" 0.01 s.Fault.loss;
      checkb "sites" true (s.Fault.sites = [ Fault.Link_up; Fault.Switch ])

let test_parse_aliases () =
  (match Fault.parse "p=0.5,at=link" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check (Alcotest.float 1e-9) "p aliases loss" 0.5 s.Fault.loss;
      checkb "link = up+down" true
        (s.Fault.sites = [ Fault.Link_up; Fault.Link_down ]));
  match Fault.parse "burst_loss=0.9" with
  | Error e -> Alcotest.fail e
  | Ok s -> (
      match s.Fault.burst with
      | Some b -> check (Alcotest.float 1e-9) "burst loss" 0.9 b.Fault.burst_loss
      | None -> Alcotest.fail "burst_loss should enable the burst model")

let test_parse_errors () =
  let bad str =
    match Fault.parse str with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" str
  in
  bad "bogus=1";
  bad "loss=2";
  bad "loss=nope";
  bad "at=moon";
  bad "reorder_span=0";
  bad "loss"

(* --- per-site stream determinism ------------------------------------ *)

let rich_spec =
  match
    Fault.parse
      "seed=99,loss=0.05,corrupt=0.05,dup=0.05,reorder=0.1,reorder_span=4,\
       burst_enter=0.05,burst_exit=0.2,burst_loss=0.8"
  with
  | Ok s -> s
  | Error e -> failwith e

let decisions spec site n =
  let f = Fault.create ~site spec in
  List.init n (fun _ -> Fault.decide f)

let test_decide_deterministic () =
  let a = decisions rich_spec "link.up.0" 2_000 in
  let b = decisions rich_spec "link.up.0" 2_000 in
  checkb "same spec + same site replays identically" true (a = b);
  let other = decisions rich_spec "link.up.1" 2_000 in
  checkb "distinct sites draw independent streams" true (a <> other);
  let non_pass = List.filter (fun d -> d <> Fault.Pass) a in
  checkb "the rich spec actually injects" true (List.length non_pass > 50)

let test_ni_draws_deterministic () =
  let spec =
    match Fault.parse "seed=3,dma_stall=0.2,dma_stall_ns=5000,rx_overrun=0.1,at=ni" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let seq site =
    let f = Fault.create ~site spec in
    List.init 500 (fun _ -> (Fault.dma_stall f, Fault.rx_overrun f))
  in
  checkb "NI draws replay from the seed" true (seq "ni.0" = seq "ni.0");
  checkb "stalls take the configured value" true
    (List.exists (fun (s, _) -> s = 5_000) (seq "ni.0"))

let test_bernoulli_frequency () =
  let spec = { Fault.none with Fault.loss = 0.1 } in
  let f = Fault.create ~site:"freq" spec in
  let n = 50_000 in
  let drops = ref 0 in
  for _ = 1 to n do
    if Fault.decide f = Fault.Drop then incr drops
  done;
  (* mean 5000, sd ~67: a 5-sigma band is deterministic for a fixed seed
     anyway, but keeps the test honest if the generator changes *)
  checkb "drop frequency near the configured probability" true
    (abs (!drops - (n / 10)) < 340);
  checki "injector counted every drop" !drops (Fault.injected f)

(* --- UAM: timer-driven retransmission ------------------------------- *)

let uam_pair ?config () =
  let c = Cluster.create () in
  let a0 = Uam.create ?config (Cluster.node c 0).Cluster.unet ~rank:0 ~nodes:2 in
  let a1 = Uam.create ?config (Cluster.node c 1).Cluster.unet ~rank:1 ~nodes:2 in
  Uam.connect a0 a1;
  (c, a0, a1)

let serve c am =
  ignore
    (Proc.spawn c.Cluster.sim (fun () -> Uam.poll_until am (fun () -> false)))

(* The stalled-retransmit bug: a sender that queues a message and never
   polls again used to retransmit only from inside the recv polling loops,
   so a lost message was lost forever. The timeout is now a scheduled Sim
   event: the message must arrive with no sender-side polling at all. *)
let test_stalled_sender_recovers () =
  let config = { Uam.default_config with rto = Sim.ms 2 } in
  let c, a0, a1 = uam_pair ~config () in
  let up = Atm.Network.uplink c.Cluster.net ~host:0 in
  (* lose everything for the first millisecond, then heal the link *)
  Atm.Link.set_loss up (Rng.create 5) ~p:1.0;
  ignore
    (Sim.schedule c.Cluster.sim ~delay:(Sim.ms 1) (fun () ->
         Atm.Link.set_loss up (Rng.create 5) ~p:0.0));
  let got = ref 0 in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr got);
  serve c a1;
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ();
         (* fire and forget: the sender never polls again *)
         Proc.sleep c.Cluster.sim ~time:(Sim.ms 100)));
  Sim.run ~until:(Sim.sec 2) c.Cluster.sim;
  checki "request delivered without sender polling" 1 !got;
  checkb "delivery came from a timer-driven retransmission" true
    (Uam.retransmissions a0 >= 1)

(* Exponential backoff gives up after [max_timeouts] consecutive unanswered
   timeouts: against a black-hole peer the timer must stop re-arming (or an
   unbounded [Sim.run] would never return) after exactly 6 retries. *)
let test_backoff_gives_up () =
  let config =
    { Uam.default_config with rto = Sim.ms 1; rto_max = Sim.ms 8 }
  in
  let c, a0, a1 = uam_pair ~config () in
  ignore a1;
  Atm.Link.set_loss (Atm.Network.uplink c.Cluster.net ~host:0) (Rng.create 5)
    ~p:1.0;
  ignore
    (Proc.spawn c.Cluster.sim (fun () -> Uam.request a0 ~dst:1 ~handler:1 ()));
  Sim.run ~until:(Sim.sec 30) c.Cluster.sim;
  checki "exactly max_timeouts timer retransmissions" 6
    (Uam.retransmissions a0);
  checki "the event queue drained (no timer livelock)" 0
    (Sim.pending c.Cluster.sim)

(* --- flight recorder / stall watchdog ------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let with_recorder ~deadline f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "unetsim-pm-test" in
  Recorder.start ~dir ~deadline ();
  Fun.protect ~finally:(fun () -> Recorder.stop ()) f

(* A black-holed sender past the give-up point must fire the watchdog
   exactly once, and the bundle must hold the stalled endpoint's rings. *)
let test_watchdog_black_hole () =
  with_recorder ~deadline:(Sim.ms 200) @@ fun () ->
  let config =
    { Uam.default_config with rto = Sim.ms 1; rto_max = Sim.ms 8 }
  in
  let c, a0, a1 = uam_pair ~config () in
  ignore a1;
  Atm.Link.set_loss (Atm.Network.uplink c.Cluster.net ~host:0) (Rng.create 5)
    ~p:1.0;
  ignore
    (Proc.spawn c.Cluster.sim (fun () -> Uam.request a0 ~dst:1 ~handler:1 ()));
  Sim.run ~until:(Sim.sec 5) c.Cluster.sim;
  checki "exactly one post-mortem" 1 (Recorder.trigger_count ());
  (match Recorder.last_trigger () with
  | None -> Alcotest.fail "trigger fired but left no info"
  | Some tr ->
      checkb "reason names the stalled flow" true
        (contains tr.Recorder.tr_reason "flow uam.0->1"));
  match List.assoc_opt "snapshots" (Recorder.last_bundle ()) with
  | Some (Json.Obj kvs) ->
      let has_rings = function
        | Json.Obj fields ->
            List.mem_assoc "tx_ring" fields
            && List.mem_assoc "rx_ring" fields
            && List.mem_assoc "free_ring" fields
        | _ -> false
      in
      checkb "bundle snapshots the sender's endpoint rings" true
        (List.exists
           (fun (k, v) -> contains k "unet.host0" && has_rings v)
           kvs)
  | _ -> Alcotest.fail "bundle carries no snapshots object"

(* The benign end-of-run shape — the last message was delivered but its
   ack is still pending when the run ends — must NOT trigger: delivery on
   the flow after the pending epoch began exonerates it. *)
let test_watchdog_clean_run () =
  with_recorder ~deadline:(Sim.ms 200) @@ fun () ->
  let config = { Uam.default_config with rto = Sim.ms 1 } in
  let c, a0, a1 = uam_pair ~config () in
  let got = ref 0 in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr got);
  serve c a1;
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ();
         Uam.poll_until a0 (fun () -> !got >= 1)));
  Sim.run ~until:(Sim.sec 5) c.Cluster.sim;
  checki "request arrived" 1 !got;
  checki "no post-mortem on a clean run" 0 (Recorder.trigger_count ())

(* Retransmissions mint child spans of the original message, so a retried
   transfer stays one connected trace. *)
let test_retransmit_parentage () =
  Span.start ();
  Fun.protect ~finally:(fun () ->
      Span.stop ();
      Span.clear ())
  @@ fun () ->
  let config = { Uam.default_config with rto = Sim.ms 2 } in
  let c, a0, a1 = uam_pair ~config () in
  Atm.Link.set_loss (Atm.Network.uplink c.Cluster.net ~host:0) (Rng.create 9)
    ~p:0.2;
  let got = ref 0 in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr got);
  serve c a1;
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         for i = 1 to 20 do
           Uam.request a0 ~dst:1 ~handler:1 ();
           Uam.poll_until a0 (fun () -> !got >= i)
         done));
  Sim.run ~until:(Sim.sec 10) c.Cluster.sim;
  checkb "messages went through despite loss" true (!got >= 20);
  let retries =
    List.filter (fun (s : Span.span) -> s.name = "uam_retx") (Span.spans ())
  in
  checkb "lossy run minted retransmission spans" true (retries <> []);
  checkb "every retransmission span has a parent" true
    (List.for_all (fun (s : Span.span) -> s.parent <> None) retries)

(* --- accounted receive-path drops ----------------------------------- *)

let test_rx_full_counted () =
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, _ = Cluster.simple_endpoint n0 in
  let ep1, _ = Cluster.simple_endpoint ~rx_slots:4 n1 in
  let ch0, _ = Unet.connect_pair (n0.Cluster.unet, ep0) (n1.Cluster.unet, ep1) in
  let before = counter "unet_rx_dropped_total" [ ("reason", "rx_full") ] in
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         for _ = 1 to 12 do
           match
             Unet.send n0.Cluster.unet ep0
               (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 16)))
           with
           | Ok () -> ()
           | Error Unet.Queue_full -> Proc.sleep c.Cluster.sim ~time:(Sim.us 50)
           | Error e -> Fmt.failwith "send: %a" Unet.pp_error e
         done));
  (* the receiver never polls: the 4-slot rx ring must overflow *)
  Sim.run ~until:(Sim.sec 1) c.Cluster.sim;
  checkb "rx-ring overflow counted in unet_rx_dropped_total" true
    (counter "unet_rx_dropped_total" [ ("reason", "rx_full") ] > before)

let test_unknown_channel_counted () =
  let m = Unet.Mux.create () in
  let before = counter "unet_rx_dropped_total" [ ("reason", "unknown_channel") ] in
  checkb "unknown tag rejected" true
    (Unet.Mux.deliver m ~rx_vci:77 (Buf.of_string "stray") = None);
  checki "unknown channel counted in unet_rx_dropped_total" (before + 1)
    (counter "unet_rx_dropped_total" [ ("reason", "unknown_channel") ])

(* --- AAL5 discard accounting and state reset ------------------------ *)

let test_aal5_discard_metrics () =
  let r = Atm.Aal5.Reassembler.create () in
  let payload = Buf.of_bytes (Bytes.init 200 (fun i -> Char.chr (i land 0xff))) in
  let before = counter "aal5_pdus_discarded_total" [ ("reason", "crc_mismatch") ] in
  (* drop the first cell: the PDU completes short and fails its CRC *)
  (match Atm.Aal5.segment ~vci:1 payload with
  | _ :: rest ->
      List.iter (fun c -> ignore (Atm.Aal5.Reassembler.push r c)) rest
  | [] -> assert false);
  checki "crc discard counted" (before + 1)
    (counter "aal5_pdus_discarded_total" [ ("reason", "crc_mismatch") ]);
  checki "error counter advanced" 1 (Atm.Aal5.Reassembler.errors r);
  (* per-VCI state was reset: the next healthy PDU reassembles cleanly *)
  let out = ref None in
  List.iter
    (fun c ->
      match Atm.Aal5.Reassembler.push r c with
      | Some (Ok b) -> out := Some b
      | Some (Error e) -> Alcotest.failf "unexpected error %a" Atm.Aal5.pp_error e
      | None -> ())
    (Atm.Aal5.segment ~vci:1 payload);
  match !out with
  | Some b ->
      check Alcotest.bytes "healthy PDU intact after discard"
        (Buf.to_bytes ~layer:"test" payload)
        (Buf.to_bytes ~layer:"test" b)
  | None -> Alcotest.fail "healthy PDU did not complete"

let test_aal5_too_long_counted () =
  let r = Atm.Aal5.Reassembler.create () in
  let before = counter "aal5_pdus_discarded_total" [ ("reason", "too_long") ] in
  let cell =
    match Atm.Aal5.segment ~vci:1 (Buf.alloc 100) with
    | first :: _ -> { first with Atm.Cell.eop = false }
    | [] -> assert false
  in
  let errored = ref false in
  (* never send EOP: the reassembler must cap the PDU, not grow forever *)
  for _ = 1 to 1_400 do
    match Atm.Aal5.Reassembler.push r cell with
    | Some (Error Atm.Aal5.Too_long) -> errored := true
    | _ -> ()
  done;
  checkb "oversize PDU discarded" true !errored;
  checkb "too_long discard counted" true
    (counter "aal5_pdus_discarded_total" [ ("reason", "too_long") ] > before)

(* --- end-to-end integrity under injected faults --------------------- *)

let with_fault spec f =
  (match Fault.parse spec with
  | Ok s -> Fault.configure (Some s)
  | Error e -> failwith e);
  Fun.protect ~finally:(fun () -> Fault.configure None) f

(* go-back-N survives duplication and bounded reordering: duplicates are
   dropped by the sequence check, gaps recovered by the sender's timeout *)
let test_uam_store_dup_reorder () =
  (* an 88-cell chunk PDU survives per-cell perturbation p with
     probability (1-p)^88, so keep the rates low enough that whole
     chunks still get through and recovery converges *)
  with_fault "seed=11,dup=0.01,reorder=0.01,reorder_span=2,at=up" @@ fun () ->
  let config =
    { Uam.default_config with rto = Sim.ms 2; rto_max = Sim.ms 16 }
  in
  let c, a0, a1 = uam_pair ~config () in
  let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
  let total = 32 * 1024 in
  let region = Bytes.make total '\000' in
  Uam.Xfer.register_region x1 ~id:1 region;
  let data = Bytes.init total (fun i -> Char.chr ((i * 37 + 5) land 0xff)) in
  serve c a1;
  let done_ = ref false in
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         Uam.Xfer.store_sync x0 ~dst:1 ~region:1 ~offset:0 data;
         done_ := true));
  Sim.run ~until:(Sim.sec 30) c.Cluster.sim;
  checkb "store completed under dup+reorder" true !done_;
  check Alcotest.bytes "payload byte-identical" data region;
  checkb "receiver discarded duplicate or out-of-order arrivals" true
    (Uam.duplicates_dropped a1 > 0)

let test_tcp_intact_under_loss rate () =
  with_fault (Printf.sprintf "seed=42,loss=%g,at=up" rate) @@ fun () ->
  let c = Cluster.create () in
  let open Ipstack in
  let ifa, ifb =
    Iface.unet_pair ~mtu:9_188 (Cluster.node c 0).Cluster.unet
      (Cluster.node c 1).Cluster.unet
  in
  let cfg = { (Tcp.unet_config ~window:(32 * 1024) ()) with mss = 2_048 } in
  let sa = Tcp.attach (Ipv4.attach ifa ~addr:0) cfg in
  let sb = Tcp.attach (Ipv4.attach ifb ~addr:1) cfg in
  let total = 128 * 1024 in
  let data = Bytes.init total (fun i -> Char.chr ((i * 61 + 3) land 0xff)) in
  let rx = Buffer.create total in
  let listener = Tcp.listen sb ~port:80 in
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         let conn = Tcp.accept listener in
         let rec loop () =
           let chunk = Tcp.recv conn ~max:65536 in
           if Bytes.length chunk > 0 then begin
             Buffer.add_bytes rx chunk;
             loop ()
           end
         in
         loop ()));
  ignore
    (Proc.spawn c.Cluster.sim (fun () ->
         let conn = Tcp.connect sa ~dst:1 ~dst_port:80 () in
         let off = ref 0 in
         while !off < total do
           let len = min 8_192 (total - !off) in
           Tcp.send conn (Bytes.sub data !off len);
           off := !off + len
         done;
         Tcp.close conn));
  Sim.run ~until:(Sim.sec 120) c.Cluster.sim;
  checki "every byte delivered" total (Buffer.length rx);
  checkb "TCP payload byte-identical under loss" true
    (String.equal (Buffer.contents rx) (Bytes.to_string data))

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parse ok" `Quick test_parse_ok;
          Alcotest.test_case "parse aliases" `Quick test_parse_aliases;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "decide replays from seed" `Quick
            test_decide_deterministic;
          Alcotest.test_case "NI draws replay from seed" `Quick
            test_ni_draws_deterministic;
          Alcotest.test_case "honest Bernoulli frequency" `Quick
            test_bernoulli_frequency;
        ] );
      ( "uam-timer",
        [
          Alcotest.test_case "stalled sender recovers" `Quick
            test_stalled_sender_recovers;
          Alcotest.test_case "backoff gives up against a black hole" `Quick
            test_backoff_gives_up;
          Alcotest.test_case "retransmissions are child spans" `Quick
            test_retransmit_parentage;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "black-holed sender fires one post-mortem"
            `Quick test_watchdog_black_hole;
          Alcotest.test_case "clean run never triggers" `Quick
            test_watchdog_clean_run;
        ] );
      ( "rx-drops",
        [
          Alcotest.test_case "rx-ring overflow counted" `Quick
            test_rx_full_counted;
          Alcotest.test_case "unknown channel counted" `Quick
            test_unknown_channel_counted;
        ] );
      ( "aal5",
        [
          Alcotest.test_case "crc discard counted, state reset" `Quick
            test_aal5_discard_metrics;
          Alcotest.test_case "oversize PDU counted" `Quick
            test_aal5_too_long_counted;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "store under dup+reorder" `Quick
            test_uam_store_dup_reorder;
          Alcotest.test_case "TCP intact at 0.1% loss" `Quick
            (test_tcp_intact_under_loss 0.001);
          Alcotest.test_case "TCP intact at 1% loss" `Quick
            (test_tcp_intact_under_loss 0.01);
        ] );
    ]
