(* Fast-path-compatible telemetry (DESIGN.md §15): the deterministic PDU
   sampler, the latency sketch, and the guarantee that train-granular
   observers neither pin the per-cell slow path nor change what they
   report. *)

open Engine

let checkb name expected got = Alcotest.(check bool) name expected got
let checki name expected got = Alcotest.(check int) name expected got

(* --- deterministic 1-in-N sampling ------------------------------------ *)

let sampled_set ~n ~seed count =
  List.filter (Sample.decide ~seed ~n) (List.init count Fun.id)

let sampler_pure () =
  (* membership is a pure function of (seed, n, index) *)
  Alcotest.(check (list int))
    "same seed, same set"
    (sampled_set ~n:64 ~seed:0x5eed 4096)
    (sampled_set ~n:64 ~seed:0x5eed 4096);
  checkb "different seeds give different sets" false
    (sampled_set ~n:64 ~seed:1 4096 = sampled_set ~n:64 ~seed:2 4096);
  (* density: 4096 indices at 1-in-64 should select about 64 *)
  let k = List.length (sampled_set ~n:64 ~seed:0x5eed 4096) in
  checkb (Printf.sprintf "1-in-64 density sane (%d of 4096)" k) true
    (k >= 24 && k <= 160)

let sampler_stream () =
  Sample.configure ~n:16 ~seed:42;
  let want = List.init 1000 (Sample.decide ~seed:42 ~n:16) in
  let got = List.init 1000 (fun _ -> Sample.next_pdu ()) in
  Alcotest.(check (list bool)) "next_pdu = decide over the index stream" want
    got;
  checki "offered counts every PDU" 1000 (Sample.offered ());
  checki "sampled counts the hits"
    (List.length (List.filter Fun.id want))
    (Sample.sampled ());
  (* reset restarts the index: the stream replays identically *)
  Sample.reset ();
  let again = List.init 1000 (fun _ -> Sample.next_pdu ()) in
  Alcotest.(check (list bool)) "reset replays the same set" want again;
  Sample.configure ~n:0 ~seed:0

(* The sampled set must be the same whether the unsampled PDUs ride
   trains or the forced per-cell path: the NI offers every descriptor to
   the sampler before choosing a path, so the index stream is
   mode-independent. *)
let sampler_cross_mode () =
  let run forced =
    Metrics.reset ();
    Trainmode.force_per_cell forced;
    Sample.configure ~n:8 ~seed:7;
    (try
       ignore
         (Experiments.Common.raw_bandwidth ~count:40 ~size:5056 () : float)
     with e ->
       Trainmode.force_per_cell false;
       raise e);
    Trainmode.force_per_cell false;
    let r = (Sample.offered (), Sample.sampled ()) in
    Sample.configure ~n:0 ~seed:0;
    r
  in
  let t_off, t_hit = run false in
  let p_off, p_hit = run true in
  checki "same PDUs offered across modes" t_off p_off;
  checki "same PDUs sampled across modes" t_hit p_hit;
  checki "every descriptor offered exactly once" 40 t_off;
  checkb (Printf.sprintf "sampling engaged (%d of %d)" t_hit t_off) true
    (t_hit > 0)

(* --- latency sketch --------------------------------------------------- *)

let sketch_bounds () =
  let s = Metrics.Sketch.create () in
  let n = 20_000 in
  (* a deterministic right-skewed distribution spanning ~7 decades *)
  let vals = Array.init n (fun i -> exp (float_of_int i /. 1234.)) in
  Array.iter (Metrics.Sketch.observe s) vals;
  let sorted = Array.copy vals in
  Array.sort compare sorted;
  let exact q =
    sorted.(max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  checki "count is exact" n (Metrics.Sketch.count s);
  Alcotest.(check (float 1e-6)) "max is exact" sorted.(n - 1)
    (Metrics.Sketch.max s);
  let tol = (Metrics.Sketch.alpha s *. 1.1) +. 1e-9 in
  List.iter
    (fun q ->
      let want = exact q and got = Metrics.Sketch.quantile s q in
      checkb
        (Printf.sprintf "p%g within %.1f%% (want %g got %g)" (q *. 100.)
           (tol *. 100.) want got)
        true
        (Float.abs (got -. want) <= tol *. want))
    [ 0.5; 0.9; 0.99; 0.999 ];
  Metrics.Sketch.clear s;
  checki "clear empties" 0 (Metrics.Sketch.count s);
  checkb "quantile of empty sketch raises" true
    (try
       ignore (Metrics.Sketch.quantile s 0.5 : float);
       false
     with _ -> true)

(* --- span milestones: train-granular = per-cell ----------------------- *)

let all_marks =
  Span.
    [
      Doorbell;
      Nic_tx;
      Injected;
      Link_tx;
      Switch_in;
      Switch_out;
      Rx_cell;
      Demuxed;
      Popped;
      Dispatched;
      Dropped;
    ]

(* Everything observable about a span except its allocation-order ids,
   which differ between two runs in the same process. *)
let span_fingerprint () =
  Span.spans ()
  |> List.map (fun (s : Span.span) ->
         Printf.sprintf "%s host=%d minted=%d %s" s.Span.name s.Span.host
           s.Span.minted
           (String.concat ","
              (List.map
                 (fun m ->
                   match Span.mark_time s m with
                   | Some t -> Printf.sprintf "%s=%d" (Span.mark_name m) t
                   | None -> Span.mark_name m ^ "=-")
                 all_marks)))
  |> String.concat "\n"

(* With sampling on, sampled PDUs take the per-cell path (real marks) and
   the rest ride trains (marks synthesized from plan records): the whole
   span dump must still be byte-identical to the forced per-cell run,
   where every mark is stamped by a real event. *)
let spans_identical_across_modes () =
  let run forced =
    Metrics.reset ();
    Span.clear ();
    Span.start ();
    Trainmode.force_per_cell forced;
    Sample.configure ~n:3 ~seed:0x5eed;
    (try ignore (Experiments.Common.raw_rtt ~iters:20 ~size:1024 () : float)
     with e ->
       Trainmode.force_per_cell false;
       raise e);
    Trainmode.force_per_cell false;
    Sample.configure ~n:0 ~seed:0;
    let fp = span_fingerprint () in
    Span.stop ();
    Span.clear ();
    fp
  in
  let train = run false in
  let percell = run true in
  checkb "spans were collected" true (String.length train > 0);
  Alcotest.(check string) "span milestones train = per-cell" percell train

(* --- observers keep the fast path engaged ----------------------------- *)

let observers_stay_fast () =
  let events f =
    Metrics.reset ();
    let fired0 = Sim.events_fired () in
    f ();
    Sim.events_fired () - fired0
  in
  let workload () =
    ignore (Experiments.Common.raw_bandwidth ~count:30 ~size:5056 () : float)
  in
  let base = events workload in
  Trace.start ();
  Timeseries.start ();
  Span.start ();
  let observed =
    try events workload
    with e ->
      Trace.stop ();
      Timeseries.stop ();
      Span.stop ();
      raise e
  in
  Alcotest.(check (list string))
    "train-granular observers pin nothing" [] (Trainmode.pinned ());
  Trace.stop ();
  Trace.clear ();
  Timeseries.stop ();
  Span.stop ();
  Span.clear ();
  checkb
    (Printf.sprintf "trace+timeseries+spans stay within 2x (%d vs %d events)"
       observed base)
    true
    (observed <= 2 * base)

(* --- timeseries ring-drop counter ------------------------------------- *)

let timeseries_drop_counter () =
  Metrics.reset ();
  Timeseries.clear ();
  Timeseries.set_interval 10;
  Timeseries.start ();
  Timeseries.register "obs_test_probe" [] (fun () -> 1.);
  (* one sample per boundary; 9000 boundaries into an 8192-point ring *)
  for i = 1 to 9000 do
    Timeseries.on_event (i * 10)
  done;
  Timeseries.stop ();
  let dropped =
    Metrics.counter_value "timeseries_points_dropped_total"
      [ ("series", "obs_test_probe") ]
  in
  checki "overwritten points counted" (9000 - 8192)
    (Option.value ~default:0 dropped);
  (match Timeseries.series () with
  | [ s ] -> checki "series drop count matches" (9000 - 8192) s.s_dropped
  | l -> Alcotest.failf "expected one series, got %d" (List.length l));
  Timeseries.clear ();
  Timeseries.set_interval 10_000

(* --- pinning observers are named -------------------------------------- *)

let pinned_gauge () =
  Metrics.reset ();
  Trace.start ();
  Trace.set_granularity Granularity.Per_cell;
  checkb "per-cell trace pins the slow path" false (Trainmode.active ());
  checkb "trace named as the culprit" true
    (List.mem "trace" (Trainmode.pinned ()));
  let dump = Metrics.to_prometheus_string () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  checkb "trainmode_pinned{observer=trace} gauge set" true
    (contains dump "trainmode_pinned" && contains dump "observer=\"trace\"");
  Trace.set_granularity Granularity.Per_train;
  checkb "back to train granularity, fast path re-engages" true
    (Trainmode.active ());
  Trace.stop ();
  Trace.clear ()

let () =
  Alcotest.run "observe"
    [
      ( "sampler",
        [
          Alcotest.test_case "pure membership" `Quick sampler_pure;
          Alcotest.test_case "stream matches decide" `Quick sampler_stream;
          Alcotest.test_case "mode-independent" `Slow sampler_cross_mode;
        ] );
      ( "sketch",
        [ Alcotest.test_case "quantile error bounds" `Quick sketch_bounds ] );
      ( "spans",
        [
          Alcotest.test_case "train = per-cell with sampling" `Slow
            spans_identical_across_modes;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "observers do not pin" `Slow observers_stay_fast;
          Alcotest.test_case "ring drops counted" `Quick
            timeseries_drop_counter;
          Alcotest.test_case "pinning observer named" `Quick pinned_gauge;
        ] );
    ]
