(* Tests for Engine.Span: causal context propagation across the stack.
   A UAM round trip must produce one connected span tree; a forced
   go-back-N retransmit must appear as a child retry span of the original,
   never a new root; AAL5 cells of one PDU all carry the PDU's context;
   and phase deltas telescope to the span's journey time. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let pair () =
  let c = Cluster.create () in
  let a0 = Uam.create (Cluster.node c 0).unet ~rank:0 ~nodes:2 in
  let a1 = Uam.create (Cluster.node c 1).unet ~rank:1 ~nodes:2 in
  Uam.connect a0 a1;
  (c, a0, a1)

let serve c am =
  ignore (Proc.spawn c.Cluster.sim (fun () -> Uam.poll_until am (fun () -> false)))

let run_roundtrip () =
  let c, a0, a1 = pair () in
  let replied = ref false in
  Uam.register_handler a1 1 (fun am ~src:_ tk ~args:_ ~payload ->
      Uam.reply am (Option.get tk) ~handler:2 ~payload ());
  Uam.register_handler a0 2 (fun _ ~src:_ _ ~args:_ ~payload:_ ->
      replied := true);
  serve c a1;
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ~payload:(Buf.of_string "ping") ();
         Uam.poll_until a0 (fun () -> !replied)));
  Sim.run ~until:(Sim.sec 1) c.sim;
  checkb "round trip completed" true !replied

let spans_named name =
  List.filter (fun (s : Span.span) -> s.name = name) (Span.spans ())

let test_roundtrip_one_tree () =
  Span.start ();
  run_roundtrip ();
  let reqs = spans_named "uam_req" in
  checki "one request span" 1 (List.length reqs);
  let req = List.hd reqs in
  checkb "the request is a root" true (req.parent = None);
  let in_trace =
    List.filter
      (fun (s : Span.span) -> s.trace_id = req.trace_id)
      (Span.spans ())
  in
  checkb "reply and acks joined the request's trace" true
    (List.exists (fun (s : Span.span) -> s.name = "uam_rep") in_trace);
  List.iter
    (fun (s : Span.span) ->
      checkb
        (Printf.sprintf "span %s#%d has a parent" s.name s.id)
        true
        (s.id = req.id || s.parent <> None))
    in_trace;
  (* the request crossed the whole data path *)
  List.iter
    (fun m ->
      checkb
        (Printf.sprintf "request marked %s" (Span.mark_name m))
        true
        (Span.mark_time req m <> None))
    [ Span.Doorbell; Span.Injected; Span.Demuxed; Span.Popped; Span.Dispatched ];
  Span.stop ();
  Span.clear ()

let test_phases_telescope () =
  Span.start ();
  run_roundtrip ();
  let spans = Span.spans () in
  checkb "spans recorded" true (spans <> []);
  List.iter
    (fun (s : Span.span) ->
      match Span.journey s with
      | None -> ()
      | Some j ->
          checki
            (Printf.sprintf "phases of %s#%d sum to its journey" s.name s.id)
            j
            (List.fold_left (fun a (_, d) -> a + d) 0 (Span.phases s)))
    spans;
  Span.stop ();
  Span.clear ()

(* drop every uplink cell from host 0 until the virtual time where loss is
   lifted: the first transmission is lost, the ack never comes, and UAM's
   go-back-N timer resends the request *)
let test_retransmit_is_child_not_root () =
  Span.start ();
  let c, a0, a1 = pair () in
  let replied = ref false in
  Uam.register_handler a1 1 (fun am ~src:_ tk ~args:_ ~payload ->
      Uam.reply am (Option.get tk) ~handler:2 ~payload ());
  Uam.register_handler a0 2 (fun _ ~src:_ _ ~args:_ ~payload:_ ->
      replied := true);
  serve c a1;
  let up0 = Atm.Network.uplink c.net ~host:0 in
  Atm.Link.set_loss up0 (Rng.create 1) ~p:1.0;
  ignore
    (Sim.schedule c.sim ~delay:(Sim.ms 5) (fun () ->
         Atm.Link.set_loss up0 (Rng.create 1) ~p:0.0));
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ~payload:(Buf.of_string "ping") ();
         Uam.poll_until a0 (fun () -> !replied)));
  Sim.run ~until:(Sim.sec 2) c.sim;
  checkb "round trip completed after loss lifted" true !replied;
  checkb "retransmissions happened" true (Uam.retransmissions a0 > 0);
  let reqs = spans_named "uam_req" in
  checki "still exactly one request root" 1 (List.length reqs);
  let req = List.hd reqs in
  let retries = spans_named "uam_retx" in
  checkb "retry spans minted" true (retries <> []);
  List.iter
    (fun (s : Span.span) ->
      checkb "retry is not a root" true (s.parent <> None);
      checki "retry stays in the original trace" req.trace_id s.trace_id)
    retries;
  Span.stop ();
  Span.clear ()

let test_aal5_cells_inherit_pdu_ctx () =
  Span.start ();
  let ctx = Span.root "pdu" in
  let cells = Atm.Aal5.segment ~ctx ~vci:5 (Buf.alloc 200) in
  checkb "multi-cell PDU" true (List.length cells > 1);
  List.iter
    (fun (cell : Atm.Cell.t) ->
      checkb "cell carries the PDU's context" true (cell.ctx = Some ctx))
    cells;
  let r = Atm.Aal5.Reassembler.create () in
  let out =
    List.filter_map
      (fun c ->
        match Atm.Aal5.Reassembler.push r c with
        | Some (Ok payload) -> Some payload
        | _ -> None)
      cells
  in
  checki "PDU reassembled" 1 (List.length out);
  checkb "receiver recovers the context from the EOP cell" true
    (Atm.Aal5.Reassembler.last_ctx r = Some ctx);
  Span.stop ();
  Span.clear ()

let test_disabled_store_stays_empty () =
  Span.stop ();
  Span.clear ();
  let ctx = Span.root "ignored" in
  Span.mark (Some ctx) Span.Doorbell;
  checki "minting while disabled retains nothing" 0 (Span.count ());
  run_roundtrip ();
  checki "a full run while disabled retains nothing" 0 (Span.count ())

let () =
  Alcotest.run "span"
    [
      ( "propagation",
        [
          Alcotest.test_case "round trip is one connected tree" `Quick
            test_roundtrip_one_tree;
          Alcotest.test_case "phases telescope to journey" `Quick
            test_phases_telescope;
          Alcotest.test_case "go-back-N retry is a child span" `Quick
            test_retransmit_is_child_not_root;
          Alcotest.test_case "AAL5 cells inherit the PDU context" `Quick
            test_aal5_cells_inherit_pdu_ctx;
          Alcotest.test_case "disabled store stays empty" `Quick
            test_disabled_store_stays_empty;
        ] );
    ]
