(* Tests for U-Net Active Messages: request/reply semantics, windowed flow
   control, go-back-N reliability under injected cell loss, and the bulk
   transfer layer. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let pair ?config () =
  let c = Cluster.create () in
  let a0 = Uam.create ?config (Cluster.node c 0).unet ~rank:0 ~nodes:2 in
  let a1 = Uam.create ?config (Cluster.node c 1).unet ~rank:1 ~nodes:2 in
  Uam.connect a0 a1;
  (c, a0, a1)

let serve c am = ignore (Proc.spawn c.Cluster.sim (fun () -> Uam.poll_until am (fun () -> false)))

let test_request_reply_roundtrip () =
  let c, a0, a1 = pair () in
  let got_args = ref [||] and got_payload = ref Bytes.empty in
  let replied = ref false in
  Uam.register_handler a1 1 (fun am ~src tk ~args ~payload ->
      checki "source rank" 0 src;
      got_args := args;
      got_payload := Buf.to_bytes ~layer:"test" payload;
      Uam.reply am (Option.get tk) ~handler:2 ~args:[| 9 |]
        ~payload:(Buf.of_string "pong") ());
  Uam.register_handler a0 2 (fun _ ~src tk ~args ~payload ->
      checki "reply source" 1 src;
      checkb "replies carry no token" true (tk = None);
      checki "reply arg" 9 args.(0);
      check Alcotest.string "reply payload" "pong"
        (Bytes.to_string (Buf.to_bytes ~layer:"test" payload));
      replied := true);
  serve c a1;
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ~args:[| 1; 2; 3; 4 |]
           ~payload:(Buf.of_string "ping") ();
         Uam.poll_until a0 (fun () -> !replied)));
  Sim.run ~until:(Sim.sec 1) c.sim;
  checkb "reply processed" true !replied;
  check (Alcotest.array Alcotest.int) "args" [| 1; 2; 3; 4 |] !got_args;
  check Alcotest.string "payload" "ping" (Bytes.to_string !got_payload)

let test_reply_twice_rejected () =
  let c, a0, a1 = pair () in
  let second = ref None in
  Uam.register_handler a1 1 (fun am ~src:_ tk ~args:_ ~payload:_ ->
      let tk = Option.get tk in
      Uam.reply am tk ~handler:2 ();
      second := Some (try Uam.reply am tk ~handler:2 (); false with Invalid_argument _ -> true));
  Uam.register_handler a0 2 (fun _ ~src:_ _ ~args:_ ~payload:_ -> ());
  serve c a1;
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ();
         Uam.poll_until a0 (fun () -> !second <> None)));
  Sim.run ~until:(Sim.sec 1) c.sim;
  checkb "second reply rejected" true (!second = Some true)

let test_request_unconnected () =
  let c = Cluster.create ~hosts:3 () in
  let a0 = Uam.create (Cluster.node c 0).unet ~rank:0 ~nodes:3 in
  let _a1 = Uam.create (Cluster.node c 1).unet ~rank:1 ~nodes:3 in
  ignore
    (Proc.spawn c.sim (fun () ->
         checkb "unconnected peer rejected" true
           (try
              Uam.request a0 ~dst:2 ~handler:1 ();
              false
            with Invalid_argument _ -> true)));
  Sim.run c.sim

let test_oversized_payload_rejected () =
  let c, a0, _a1 = pair () in
  ignore
    (Proc.spawn c.sim (fun () ->
         checkb "payload above the buffer size rejected" true
           (try
              Uam.request a0 ~dst:1 ~handler:1 ~payload:(Buf.alloc 5_000) ();
              false
            with Invalid_argument _ -> true)));
  Sim.run c.sim

let test_window_bounds_outstanding () =
  (* the peer never polls: after w unacknowledged requests the sender must
     block in the window check *)
  let c, a0, _a1 = pair () in
  Uam.register_handler a0 2 (fun _ ~src:_ _ ~args:_ ~payload:_ -> ());
  let sent = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 20 do
           Uam.request a0 ~dst:1 ~handler:1 ();
           incr sent
         done));
  (* bounded run: the blocked sender keeps retransmitting, never advances *)
  Sim.run ~until:(Sim.ms 100) c.sim;
  checki "exactly w requests escaped" (Uam.default_config.Uam.window) !sent

let test_flush_and_barrier_ready () =
  let c, a0, a1 = pair () in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> ());
  serve c a1;
  let flushed = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.request a0 ~dst:1 ~handler:1 ();
         checkb "not yet acknowledged" false (Uam.barrier_ready a0 ~dst:1);
         Uam.flush a0;
         checkb "acknowledged after flush" true (Uam.barrier_ready a0 ~dst:1);
         flushed := true));
  Sim.run ~until:(Sim.sec 1) c.sim;
  checkb "flush completed" true !flushed

(* reliability: random cell loss on every link; all requests must arrive
   exactly once, in order *)
let test_reliable_in_order_under_loss () =
  let config = { Uam.default_config with rto = Sim.ms 2 } in
  let c, a0, a1 = pair ~config () in
  let rng = Rng.create 11 in
  Atm.Link.set_loss (Atm.Network.uplink c.net ~host:0) rng ~p:0.08;
  Atm.Link.set_loss (Atm.Network.uplink c.net ~host:1) (Rng.split rng) ~p:0.08;
  let received = ref [] in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args ~payload:_ ->
      received := args.(0) :: !received);
  serve c a1;
  let n = 150 in
  let done_ = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         for i = 1 to n do
           Uam.request a0 ~dst:1 ~handler:1 ~args:[| i |] ()
         done;
         Uam.flush a0;
         done_ := true));
  Sim.run ~until:(Sim.sec 20) c.sim;
  checkb "sender finished" true !done_;
  check
    (Alcotest.list Alcotest.int)
    "exactly once, in order"
    (List.init n (fun i -> i + 1))
    (List.rev !received);
  checkb "loss actually happened (retransmissions)" true
    (Uam.retransmissions a0 > 0)

let test_duplicates_dropped_under_loss () =
  let config = { Uam.default_config with rto = Sim.ms 2 } in
  let c, a0, a1 = pair ~config () in
  (* lose acks: host1 -> host0 *)
  Atm.Link.set_loss (Atm.Network.uplink c.net ~host:1) (Rng.create 4) ~p:0.3;
  let count = ref 0 in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr count);
  serve c a1;
  ignore
    (Proc.spawn c.sim (fun () ->
         for i = 1 to 30 do
           Uam.request a0 ~dst:1 ~handler:1 ~args:[| i |] ()
         done;
         Uam.flush a0));
  Sim.run ~until:(Sim.sec 20) c.sim;
  checki "handler ran exactly once per request" 30 !count;
  checkb "duplicates were seen and dropped" true (Uam.duplicates_dropped a1 > 0)

(* --- Xfer ----------------------------------------------------------- *)

let xfer_pair () =
  let c, a0, a1 = pair () in
  let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
  (c, a0, a1, x0, x1)

let test_store_roundtrip () =
  let c, _a0, a1, x0, x1 = xfer_pair () in
  let region = Bytes.create 10_000 in
  Uam.Xfer.register_region x1 ~id:3 region;
  let data = Bytes.init 9_000 (fun i -> Char.chr (i mod 251)) in
  serve c a1;
  let done_ = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.Xfer.store_sync x0 ~dst:1 ~region:3 ~offset:500 data;
         done_ := true));
  Sim.run ~until:(Sim.sec 5) c.sim;
  checkb "completed" true !done_;
  check Alcotest.bytes "multi-chunk store landed at the offset" data
    (Bytes.sub region 500 9_000)

let test_get_roundtrip () =
  let c, _a0, a1, x0, x1 = xfer_pair () in
  let region = Bytes.init 10_000 (fun i -> Char.chr ((i * 13) mod 256)) in
  Uam.Xfer.register_region x1 ~id:3 region;
  serve c a1;
  let got = ref Bytes.empty in
  ignore
    (Proc.spawn c.sim (fun () ->
         got := Uam.Xfer.get x0 ~dst:1 ~region:3 ~offset:100 ~len:9_000));
  Sim.run ~until:(Sim.sec 5) c.sim;
  check Alcotest.bytes "multi-chunk get" (Bytes.sub region 100 9_000) !got

let test_get_async_overlap () =
  let c, _a0, a1, x0, x1 = xfer_pair () in
  let region = Bytes.init 8_192 (fun i -> Char.chr (i mod 256)) in
  Uam.Xfer.register_region x1 ~id:3 region;
  serve c a1;
  let ok = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         let h1 = Uam.Xfer.get_async x0 ~dst:1 ~region:3 ~offset:0 ~len:4_000 in
         let h2 = Uam.Xfer.get_async x0 ~dst:1 ~region:3 ~offset:4_000 ~len:4_000 in
         let b1 = Uam.Xfer.await x0 h1 in
         let b2 = Uam.Xfer.await x0 h2 in
         ok :=
           Bytes.equal b1 (Bytes.sub region 0 4_000)
           && Bytes.equal b2 (Bytes.sub region 4_000 4_000)));
  Sim.run ~until:(Sim.sec 5) c.sim;
  checkb "overlapped gets both correct" true !ok

let test_unknown_region () =
  let c, _a0, _a1, x0, _x1 = xfer_pair () in
  ignore
    (Proc.spawn c.sim (fun () ->
         checkb "local region lookup fails loudly" true
           (try
              ignore (Uam.Xfer.region x0 ~id:99);
              false
            with Invalid_argument _ -> true)));
  Sim.run c.sim

let test_store_under_loss () =
  (* 5% cell loss on ~88-cell chunks leaves each go-back-N attempt ≈1%
     likely to land, so cap the exponential backoff low to keep the
     many retries inside the 30 s horizon *)
  let config =
    { Uam.default_config with rto = Sim.ms 2; rto_max = Sim.ms 10 }
  in
  let c = Cluster.create () in
  let a0 = Uam.create ~config (Cluster.node c 0).unet ~rank:0 ~nodes:2 in
  let a1 = Uam.create ~config (Cluster.node c 1).unet ~rank:1 ~nodes:2 in
  Uam.connect a0 a1;
  let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
  Atm.Link.set_loss (Atm.Network.uplink c.net ~host:0) (Rng.create 9) ~p:0.05;
  let region = Bytes.create 20_000 in
  Uam.Xfer.register_region x1 ~id:3 region;
  let data = Bytes.init 20_000 (fun i -> Char.chr ((i * 7) mod 256)) in
  serve c a1;
  let done_ = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         Uam.Xfer.store_sync x0 ~dst:1 ~region:3 ~offset:0 data;
         done_ := true));
  Sim.run ~until:(Sim.sec 30) c.sim;
  checkb "completed despite loss" true !done_;
  check Alcotest.bytes "data intact despite loss" data region;
  checkb "recovery used retransmissions" true (Uam.retransmissions a0 > 0)

let test_uam_single_cell_rtt () =
  (* the 71 us headline: single-cell requests with a small payload *)
  let c, a0, a1 = pair () in
  Uam.register_handler a1 1 (fun am ~src:_ tk ~args:_ ~payload ->
      Uam.reply am (Option.get tk) ~handler:2 ~payload ());
  let got = ref 0 in
  Uam.register_handler a0 2 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr got);
  serve c a1;
  let sum = ref 0. in
  let iters = 20 in
  ignore
    (Proc.spawn c.sim (fun () ->
         for i = 1 to iters do
           let t0 = Sim.now c.sim in
           Uam.request a0 ~dst:1 ~handler:1 ~payload:(Buf.alloc 16) ();
           Uam.poll_until a0 (fun () -> !got >= i);
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0)
         done));
  Sim.run ~until:(Sim.sec 2) c.sim;
  let rtt = !sum /. float_of_int iters in
  checkb
    (Printf.sprintf "UAM single-cell RTT %.1f us within 10%% of 71" rtt)
    true
    (Float.abs (rtt -. 71.) <= 7.1)

let prop_uam_payload_roundtrip =
  (* arbitrary payload sizes (inline and buffered paths) cross intact *)
  QCheck.Test.make ~name:"UAM payloads of any size arrive intact" ~count:12
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 0 4_160))
    (fun sizes ->
      let c, a0, a1 = pair () in
      let received = ref [] in
      Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload ->
          received := Buf.to_bytes ~layer:"test" payload :: !received);
      serve c a1;
      let sent = List.map (fun n -> Bytes.init n (fun i -> Char.chr ((i * 3) mod 256))) sizes in
      ignore
        (Proc.spawn c.sim (fun () ->
             List.iter
               (fun p ->
                 Uam.request a0 ~dst:1 ~handler:1 ~payload:(Buf.of_bytes p) ())
               sent;
             Uam.flush a0));
      Sim.run ~until:(Sim.sec 10) c.sim;
      List.length !received = List.length sent
      && List.for_all2 Bytes.equal sent (List.rev !received))

let test_bidirectional_requests () =
  (* both sides fire requests at each other concurrently; handlers on each
     side must run exactly once per request with no interference *)
  let c, a0, a1 = pair () in
  let at0 = ref 0 and at1 = ref 0 in
  Uam.register_handler a0 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr at0);
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args:_ ~payload:_ -> incr at1);
  let n = 50 in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to n do
           Uam.request a0 ~dst:1 ~handler:1 ()
         done;
         Uam.flush a0;
         Uam.poll_until a0 (fun () -> !at0 >= n)));
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to n do
           Uam.request a1 ~dst:0 ~handler:1 ()
         done;
         Uam.flush a1;
         Uam.poll_until a1 (fun () -> !at1 >= n)));
  Sim.run ~until:(Sim.sec 10) c.sim;
  checki "all delivered to node 1" n !at1;
  checki "all delivered to node 0" n !at0

let test_eight_node_all_to_all () =
  let c = Cluster.create ~hosts:8 () in
  let ams =
    Array.init 8 (fun r -> Uam.create (Cluster.node c r).unet ~rank:r ~nodes:8)
  in
  Uam.connect_all ams;
  let counts = Array.make 8 0 in
  Array.iteri
    (fun me am ->
      Uam.register_handler am 1 (fun _ ~src:_ _ ~args:_ ~payload:_ ->
          counts.(me) <- counts.(me) + 1))
    ams;
  Array.iteri
    (fun me am ->
      ignore
        (Proc.spawn c.sim (fun () ->
             for dst = 0 to 7 do
               if dst <> me then
                 for _ = 1 to 5 do
                   Uam.request am ~dst ~handler:1 ()
                 done
             done;
             Uam.flush am;
             (* keep serving peers until everyone is done *)
             Uam.poll_until am (fun () -> counts.(me) >= 35))))
    ams;
  Sim.run ~until:(Sim.sec 30) c.sim;
  Array.iteri
    (fun i n -> checki (Printf.sprintf "node %d got 35" i) 35 n)
    counts

let test_sequence_wraparound () =
  (* push the 16-bit sequence space past its wrap: ordering and
     exactly-once delivery must survive 0xffff -> 0 *)
  let c, a0, a1 = pair () in
  let n = 70_000 in
  let received = ref 0 and in_order = ref true and expect = ref 0 in
  Uam.register_handler a1 1 (fun _ ~src:_ _ ~args ~payload:_ ->
      if args.(0) <> !expect land 0xFFFFF then in_order := false;
      incr expect;
      incr received);
  serve c a1;
  ignore
    (Proc.spawn c.sim (fun () ->
         for i = 0 to n - 1 do
           Uam.request a0 ~dst:1 ~handler:1 ~args:[| i land 0xFFFFF |] ()
         done;
         Uam.flush a0));
  Sim.run ~until:(Sim.sec 60) c.sim;
  checki "all delivered across the wrap" n !received;
  checkb "strictly in order" true !in_order;
  checki "no duplicates" 0 (Uam.duplicates_dropped a1)

let () =
  Alcotest.run "uam"
    [
      ( "request-reply",
        [
          Alcotest.test_case "roundtrip" `Quick test_request_reply_roundtrip;
          Alcotest.test_case "reply twice rejected" `Quick test_reply_twice_rejected;
          Alcotest.test_case "unconnected peer" `Quick test_request_unconnected;
          Alcotest.test_case "oversized payload" `Quick test_oversized_payload_rejected;
        ] );
      ( "flow-control",
        [
          Alcotest.test_case "window bounds outstanding" `Quick test_window_bounds_outstanding;
          Alcotest.test_case "flush / barrier_ready" `Quick test_flush_and_barrier_ready;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "in-order exactly-once under loss" `Quick
            test_reliable_in_order_under_loss;
          Alcotest.test_case "duplicates dropped" `Quick test_duplicates_dropped_under_loss;
        ] );
      ( "xfer",
        [
          Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "get roundtrip" `Quick test_get_roundtrip;
          Alcotest.test_case "async gets overlap" `Quick test_get_async_overlap;
          Alcotest.test_case "unknown region" `Quick test_unknown_region;
          Alcotest.test_case "store under loss" `Quick test_store_under_loss;
        ] );
      ( "calibration",
        [ Alcotest.test_case "71 us single-cell RTT" `Quick test_uam_single_cell_rtt ] );
      ( "stress",
        [
          QCheck_alcotest.to_alcotest prop_uam_payload_roundtrip;
          Alcotest.test_case "bidirectional requests" `Quick test_bidirectional_requests;
          Alcotest.test_case "8-node all-to-all" `Quick test_eight_node_all_to_all;
          Alcotest.test_case "16-bit sequence wraparound" `Slow test_sequence_wraparound;
        ] );
    ]
