(* Tests for the virtual-time attribution profiler and the timeseries
   sampler: frame nesting and charge attribution, disabled no-ops,
   underflow accounting, the per-host root-inclusive-equals-elapsed
   invariant over real experiment runs, event-driven sampling cadence,
   high-water folding into metrics gauges, and the gauge_fn bridge. *)

open Engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let with_profile f =
  Profile.start ();
  Fun.protect
    ~finally:(fun () ->
      Profile.stop ();
      Profile.clear ())
    f

(* --- frame mechanics ------------------------------------------------- *)

let test_nesting () =
  with_profile @@ fun () ->
  Profile.push "a";
  Profile.charge 10;
  Profile.push "b";
  Profile.charge ~frames:[ "x" ] 5;
  Profile.pop ();
  Profile.pop ();
  checki "stack balanced" 0 (Profile.depth ~host:0);
  checki "no unmatched pops" 0 (Profile.unmatched_pops ());
  let s = Profile.stacks () in
  checkb "charge lands in the open frame" true
    (List.assoc_opt [ "host0"; "a" ] s = Some 10);
  checkb "extra frames descend from the top" true
    (List.assoc_opt [ "host0"; "a"; "b"; "x" ] s = Some 5)

let test_charge_root () =
  with_profile @@ fun () ->
  Profile.push ~host:3 "app";
  (* device time must not nest under the open application frame *)
  Profile.charge_root ~host:3 ~frames:[ "ni"; "dev" ] 7;
  Profile.pop ~host:3 ();
  let s = Profile.stacks () in
  checkb "charge_root ignores the stack" true
    (List.assoc_opt [ "host3"; "ni"; "dev" ] s = Some 7);
  checkb "nothing under the app frame" true
    (List.assoc_opt [ "host3"; "app"; "ni"; "dev" ] s = None)

let test_disabled_noop () =
  Profile.stop ();
  Profile.clear ();
  Profile.push "z";
  Profile.charge 100;
  Profile.pop ();
  Profile.pop ();
  checkb "nothing recorded while disabled" true (Profile.stacks () = []);
  checki "pops while disabled are not underflows" 0 (Profile.unmatched_pops ())

let test_underflow_counted () =
  with_profile @@ fun () ->
  Profile.pop ();
  Profile.pop ();
  checki "underflows counted, never raised" 2 (Profile.unmatched_pops ())

(* --- the root-inclusive invariant over real runs ---------------------- *)

(* Per host the exclusive times over all stacks must sum to the elapsed
   virtual time: the synthetic root absorbs idle/unattributed time, so the
   root's inclusive time is the run's virtual duration by construction. *)
let balanced_run name () =
  match Experiments.Registry.find name with
  | None -> Alcotest.failf "unknown experiment %s" name
  | Some e ->
      with_profile @@ fun () ->
      ignore (e.run ~quick:true);
      let hosts = Profile.hosts () in
      checkb "profiled at least one host" true (hosts <> []);
      List.iter
        (fun h ->
          checki (Printf.sprintf "host %d stack balanced" h) 0
            (Profile.depth ~host:h))
        hosts;
      checki "no unmatched pops" 0 (Profile.unmatched_pops ());
      let el = Profile.elapsed () in
      checkb "virtual time elapsed" true (el > 0);
      let sums = Hashtbl.create 8 in
      List.iter
        (fun (path, self) ->
          match path with
          | root :: _ ->
              Hashtbl.replace sums root
                ((Option.value ~default:0 (Hashtbl.find_opt sums root)) + self)
          | [] -> ())
        (Profile.stacks ());
      checkb "every host produced stacks" true (Hashtbl.length sums > 0);
      Hashtbl.iter
        (fun root sum ->
          checki (Printf.sprintf "%s root inclusive = elapsed" root) el sum)
        sums

(* --- timeseries sampling --------------------------------------------- *)

let with_timeseries f =
  Timeseries.clear ();
  Timeseries.start ();
  Fun.protect
    ~finally:(fun () ->
      Timeseries.stop ();
      Timeseries.clear ())
    f

let find_series name =
  List.find_opt
    (fun (s : Timeseries.series) -> s.s_name = name)
    (Timeseries.series ())

let test_event_driven_sampling () =
  with_timeseries @@ fun () ->
  Timeseries.set_interval (Sim.us 10);
  let sim = Sim.create () in
  let v = ref 0. in
  (* registered after Sim.create, so the probe is current-generation *)
  Timeseries.register "ts_test_probe" [] (fun () -> !v);
  for i = 1 to 40 do
    ignore
      (Sim.schedule sim ~delay:(Sim.us (5 * i)) (fun () -> v := float_of_int i))
  done;
  Sim.run sim;
  match find_series "ts_test_probe" with
  | None -> Alcotest.fail "probe never sampled"
  | Some s ->
      checkb "at least 10 samples over 200 us" true
        (List.length s.s_points >= 10);
      (* at most one sample per interval crossing: consecutive sample
         times differ by at least the interval. The very first sample is
         taken immediately on the first event, so start from the second. *)
      let rec spaced = function
        | (t1, _) :: ((t2, _) :: _ as rest) ->
            t2 - t1 >= Sim.us 10 && spaced rest
        | _ -> true
      in
      checkb "samples spaced by >= interval" true
        (match s.s_points with [] -> false | _ :: rest -> spaced rest)

let prom_gauge_value name =
  let prefix = name ^ " " in
  Metrics.to_prometheus_string ()
  |> String.split_on_char '\n'
  |> List.find_map (fun line ->
         if
           String.length line > String.length prefix
           && String.sub line 0 (String.length prefix) = prefix
         then
           float_of_string_opt
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix))
         else None)

let test_high_water_gauge () =
  with_timeseries @@ fun () ->
  Timeseries.set_interval (Sim.us 10);
  let sim = Sim.create () in
  let v = ref 1. in
  Timeseries.register "ts_test_hw_probe" [] (fun () -> !v);
  ignore (Sim.schedule sim ~delay:(Sim.us 15) (fun () -> v := 42.));
  ignore (Sim.schedule sim ~delay:(Sim.us 25) (fun () -> v := 5.));
  ignore (Sim.schedule sim ~delay:(Sim.us 45) (fun () -> ()));
  Sim.run sim;
  match prom_gauge_value "ts_test_hw_probe_hw" with
  | None -> Alcotest.fail "no high-water gauge registered"
  | Some hw -> checkb "peak value folded via set_max" true (hw >= 42.)

let test_gauge_fn_bridge () =
  with_timeseries @@ fun () ->
  Timeseries.set_interval (Sim.us 10);
  let sim = Sim.create () in
  let v = ref 7. in
  (* one registration, two consumers: dump-time metrics gauge AND a
     continuously sampled probe *)
  Metrics.gauge_fn ~help:"bridge test" "ts_test_bridge_gauge" [] (fun () ->
      !v);
  ignore (Sim.schedule sim ~delay:(Sim.us 15) (fun () -> v := 9.));
  ignore (Sim.schedule sim ~delay:(Sim.us 25) (fun () -> ()));
  Sim.run sim;
  match find_series "ts_test_bridge_gauge" with
  | None -> Alcotest.fail "gauge_fn registration was not bridged"
  | Some s -> checkb "bridged gauge sampled" true (s.s_points <> [])

let () =
  Alcotest.run "profile"
    [
      ( "frames",
        [
          Alcotest.test_case "push/charge/pop nesting" `Quick test_nesting;
          Alcotest.test_case "charge_root skips the stack" `Quick
            test_charge_root;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "underflow counted" `Quick test_underflow_counted;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "fig3: root inclusive = elapsed" `Quick
            (balanced_run "fig3");
          Alcotest.test_case "fig5: root inclusive = elapsed" `Quick
            (balanced_run "fig5");
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "event-driven sampling cadence" `Quick
            test_event_driven_sampling;
          Alcotest.test_case "high-water folds into a gauge" `Quick
            test_high_water_gauge;
          Alcotest.test_case "gauge_fn bridge" `Quick test_gauge_fn_bridge;
        ] );
    ]
