(* Differential properties of the cell-train fast path (DESIGN.md §14):
   with flags off the fast path must be invisible — every metric the
   simulator exposes is byte-identical whether PDUs ride analytic trains
   or the per-cell reference path. Only the engine's own event-accounting
   counters may differ (fewer events is the point). *)

open Engine

(* sim_events_total{outcome=...} is the one family the fast path is
   allowed (expected) to change. *)
let strip_event_counters dump =
  String.split_on_char '\n' dump
  |> List.filter (fun line ->
         not (String.length line >= 16 && String.sub line 0 16 = "sim_events_total"))
  |> String.concat "\n"

(* Run [f] once per mode from a clean registry and return each mode's
   stripped Prometheus dump plus the events it fired. *)
let both_modes f =
  let run forced =
    Metrics.reset ();
    Trainmode.force_per_cell forced;
    let fired0 = Sim.events_fired () in
    (try f ()
     with e ->
       Trainmode.force_per_cell false;
       raise e);
    Trainmode.force_per_cell false;
    Metrics.flush ();
    (strip_event_counters (Metrics.to_prometheus_string ()),
     Sim.events_fired () - fired0)
  in
  let train = run false in
  let percell = run true in
  (train, percell)

let check_identical name f =
  let (train_dump, _), (percell_dump, _) = both_modes f in
  Alcotest.(check string) (name ^ ": metrics train = per-cell") percell_dump
    train_dump

(* --- flags-off equivalence on the paper's workload shapes ------------- *)

let fig4_style () =
  check_identical "fig4max raw bandwidth" (fun () ->
      ignore (Experiments.Common.raw_bandwidth ~count:30 ~size:5056 () : float))

let fig3_style () =
  check_identical "fig3 raw round-trip" (fun () ->
      ignore (Experiments.Common.raw_rtt ~iters:20 ~size:1024 () : float))

let store_style () =
  check_identical "uam store bandwidth" (fun () ->
      ignore
        (Experiments.Common.uam_store_bandwidth ~count:20 ~size:4096 ()
          : float))

(* The fast path must actually engage on the PDU-heavy shape, not be
   vacuously equivalent because nothing ever trained. *)
let fast_path_engages () =
  let (_, train_fired), (_, percell_fired) =
    both_modes (fun () ->
        ignore (Experiments.Common.raw_bandwidth ~count:30 ~size:5056 () : float))
  in
  Alcotest.(check bool)
    (Printf.sprintf "3x fewer events (train %d vs per-cell %d)" train_fired
       percell_fired)
    true
    (train_fired * 3 <= percell_fired)

(* --- property: equivalence holds across the size sweep ---------------- *)

let prop_sizes =
  QCheck.Test.make ~count:6 ~name:"train = per-cell across PDU sizes"
    QCheck.(map (fun n -> 40 + (n mod 5017)) small_nat)
    (fun size ->
      let (train_dump, _), (percell_dump, _) =
        both_modes (fun () ->
            ignore
              (Experiments.Common.raw_bandwidth ~count:10 ~size () : float))
      in
      train_dump = percell_dump)

(* --- lazy expansion under a mid-topology fault ------------------------ *)

(* One lossy uplink forces that host onto the per-cell path; other hosts
   keep training. Build the fig4 flow twice across a 4-host cluster: the
   0 -> 1 flow is clean, the 2 -> 3 flow crosses the faulty uplink. *)
let faulty_pair_run () =
  let c = Cluster.create ~hosts:4 () in
  let spec = { Fault.none with loss = 0.02; sites = [] } in
  Atm.Link.set_fault
    (Atm.Network.uplink c.Cluster.net ~host:2)
    (Fault.create ~site:"test.up.2" spec);
  let send_flow src dst count =
    let n_src = Cluster.node c src and n_dst = Cluster.node c dst in
    let ep_s, a_s = Cluster.simple_endpoint ~free_buffers:4 n_src in
    let ep_d, _ =
      Cluster.simple_endpoint ~free_buffers:56 ~rx_slots:128 n_dst
    in
    let ch, _ = Unet.connect_pair (n_src.unet, ep_s) (n_dst.unet, ep_d) in
    let payload = Experiments.Common.payload_of_size a_s 5056 in
    ignore
      (Proc.spawn ~name:"sink" c.sim (fun () ->
           (* the lossy flow drops PDUs: drain whatever arrives *)
           while true do
             let d = Unet.recv n_dst.unet ep_d in
             Experiments.Common.return_buffers n_dst ep_d d
           done));
    ignore
      (Proc.spawn ~name:"source" c.sim (fun () ->
           let sent = ref 0 in
           while !sent < count do
             match Unet.send n_src.unet ep_s (Unet.Desc.tx ~chan:ch payload) with
             | Ok () -> incr sent
             | Error Unet.Queue_full -> Proc.sleep c.sim ~time:(Sim.us 5)
             | Error e -> Fmt.failwith "source: %a" Unet.pp_error e
           done))
  in
  send_flow 0 1 30;
  send_flow 2 3 30;
  Sim.run ~until:(Sim.ms 50) c.sim

let fault_expansion () =
  let (train_dump, train_fired), (percell_dump, percell_fired) =
    both_modes faulty_pair_run
  in
  (* expansion is exact: same deliveries, same drops, same everything *)
  Alcotest.(check string) "faulty run: metrics train = per-cell" percell_dump
    train_dump;
  (* the injector really fired on the faulty uplink... *)
  Metrics.reset ();
  Trainmode.force_per_cell false;
  faulty_pair_run ();
  let dropped =
    match
      Metrics.counter_value "fault_injected_total"
        [ ("kind", "drop"); ("site", "test.up.2") ]
    with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "fault injected drops (%d)" dropped)
    true (dropped > 0);
  (* ...while the clean 0 -> 1 flow kept training: expansion stayed local
     to the affected link. The lossy flow runs per-cell in both modes, so
     it contributes the same events to each side; the clean flow training
     must collapse the train total well below the per-cell total. *)
  Alcotest.(check bool)
    (Printf.sprintf "clean flow still trains (train %d vs per-cell %d)"
       train_fired percell_fired)
    true
    (train_fired * 3 <= percell_fired * 2)

let () =
  Alcotest.run "train"
    [
      ( "differential",
        [
          Alcotest.test_case "fig4-style bandwidth" `Slow fig4_style;
          Alcotest.test_case "fig3-style rtt" `Slow fig3_style;
          Alcotest.test_case "uam store" `Slow store_style;
          Alcotest.test_case "fast path engages" `Slow fast_path_engages;
          QCheck_alcotest.to_alcotest prop_sizes;
        ] );
      ( "fault-expansion",
        [ Alcotest.test_case "lossy uplink expands locally" `Slow
            fault_expansion ] );
    ]
