(* Tests for the network-interface models: the i960-style NIC engine's
   transmit pump and flow control, the per-NI cost division, the SBA-100's
   host-side path, and the calibration relationships among the three NIs. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let mk_pair ?(nic = Cluster.Sba200_unet) ?nic_config ?net_config () =
  let c = Cluster.create ?net_config ~nic ?nic_config () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let emulated = nic = Cluster.Sba100 in
  let ep0, a0 = Cluster.simple_endpoint ~emulated n0 in
  let ep1, _ = Cluster.simple_endpoint ~emulated ~free_buffers:60 ~rx_slots:256 n1 in
  let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  (c, n0, n1, ep0, ep1, a0, ch0, ch1)

(* --- PDU counting --------------------------------------------------- *)

let test_pdu_counters () =
  let c, n0, n1, ep0, _, _, ch0, _ = mk_pair () in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 5 do
           ignore
             (Unet.send n0.unet ep0
                (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 8))))
         done));
  Sim.run c.sim;
  checki "sender counted 5 PDUs" 5 (Ni.I960_nic.pdus_sent (Option.get n0.i960));
  checki "receiver counted 5 PDUs" 5
    (Ni.I960_nic.pdus_received (Option.get n1.i960));
  checki "no reassembly errors" 0
    (Ni.I960_nic.reassembly_errors (Option.get n1.i960))

(* --- i960 utilization ----------------------------------------------- *)

let test_i960_busy_accounting () =
  let c, n0, n1, ep0, _, a0, ch0, _ = mk_pair () in
  let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  ignore
    (Proc.spawn c.sim (fun () ->
         ignore
           (Unet.send n0.unet ep0
              (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 4000) ])))));
  Sim.run c.sim;
  let tx_busy = Sync.Server.busy_time (Ni.I960_nic.server (Option.get n0.i960)) in
  let rx_busy = Sync.Server.busy_time (Ni.I960_nic.server (Option.get n1.i960)) in
  (* 4000 B = 84 cells: tx = fixed 20us + 84 * 1.8us ~ 171us *)
  checkb (Printf.sprintf "tx i960 busy %d ns ~ 171 us" tx_busy) true
    (tx_busy > 160_000 && tx_busy < 185_000);
  (* rx = 84 * 1.8 + multi fixed 20us ~ 171us *)
  checkb (Printf.sprintf "rx i960 busy %d ns ~ 171 us" rx_busy) true
    (rx_busy > 160_000 && rx_busy < 185_000)

(* --- output-FIFO flow control ---------------------------------------- *)

let test_tx_fifo_stall_no_loss () =
  (* a tiny NI output FIFO forces the i960 to stall and retry; no cells may
     be lost even for messages much larger than the FIFO *)
  let net_config =
    { Atm.Network.default_config with host_tx_fifo = 8 }
  in
  let c, n0, n1, ep0, ep1, a0, ch0, _ = mk_pair ~net_config () in
  ignore n1;
  let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  let data = Bytes.init 4000 (fun i -> Char.chr (i mod 256)) in
  Unet.Segment.write ep0.segment ~off ~src:data ~src_pos:0 ~len:4000;
  let got = ref None in
  ignore
    (Proc.spawn c.sim (fun () ->
         ignore
           (Unet.send n0.unet ep0
              (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 4000) ])))));
  ignore (Proc.spawn c.sim (fun () -> got := Some (Unet.recv n1.unet ep1)));
  Sim.run c.sim;
  match !got with
  | Some { Unet.Desc.rx_payload = Unet.Desc.Buffers bufs; _ } ->
      let out = Bytes.create 4000 in
      let pos = ref 0 in
      List.iter
        (fun (o, l) ->
          Unet.Segment.blit_out ep1.segment ~off:o ~dst:out ~dst_pos:!pos ~len:l;
          pos := !pos + l)
        bufs;
      check Alcotest.bytes "84-cell message intact through an 8-cell FIFO" data out
  | _ -> Alcotest.fail "message lost under FIFO back-pressure"

(* --- descriptor ordering ---------------------------------------------- *)

let test_message_order_preserved () =
  let c, n0, n1, ep0, ep1, a0, ch0, _ = mk_pair () in
  (* interleave small (fast-path) and large (buffer-path) messages on one
     endpoint: arrival order must match send order (one VCI, FIFO fabric) *)
  let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  ignore
    (Proc.spawn c.sim (fun () ->
         for i = 1 to 6 do
           let desc =
             if i mod 2 = 1 then begin
               let b = Bytes.create 4 in
               Bytes.set_uint16_be b 0 i;
               Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.of_bytes b))
             end
             else begin
               Unet.Segment.write ep0.segment ~off
                 ~src:(Bytes.make 2 (Char.chr i))
                 ~src_pos:0 ~len:2;
               (* mark the sequence in the first byte *)
               let b = Bytes.create 500 in
               Bytes.set_uint16_be b 0 i;
               Unet.Segment.write ep0.segment ~off ~src:b ~src_pos:0 ~len:500;
               Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 500) ])
             end
           in
           (match Unet.send n0.unet ep0 desc with
           | Ok () -> ()
           | Error e -> Fmt.failwith "%a" Unet.pp_error e);
           (* the shared staging buffer forces us to wait for injection *)
           Proc.sleep c.sim ~time:(Sim.us 100)
         done));
  let seen = ref [] in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 6 do
           let d = Unet.recv n1.unet ep1 in
           let seq =
             match d.rx_payload with
             | Unet.Desc.Inline b -> Buf.get_uint16_be b 0
             | Unet.Desc.Buffers ((off, _) :: _) ->
                 Bytes.get_uint16_be (Unet.Segment.read ep1.segment ~off ~len:2) 0
             | Unet.Desc.Buffers [] -> -1
           in
           seen := seq :: !seen
         done));
  Sim.run c.sim;
  check (Alcotest.list Alcotest.int) "arrival order = send order"
    [ 1; 2; 3; 4; 5; 6 ] (List.rev !seen)

(* --- calibration relationships ---------------------------------------- *)

let rtt_of nic =
  let c, n0, n1, ep0, ep1, _, ch0, ch1 = mk_pair ~nic () in
  ignore
    (Proc.spawn c.sim (fun () ->
         let rec loop () =
           let d = Unet.recv n1.unet ep1 in
           ignore (Unet.send n1.unet ep1 (Unet.Desc.tx ~chan:ch1 d.rx_payload));
           loop ()
         in
         loop ()));
  let sum = ref 0. in
  let iters = 10 in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to iters do
           let t0 = Sim.now c.sim in
           ignore
             (Unet.send n0.unet ep0
                (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 16))));
           ignore (Unet.recv n0.unet ep0);
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0)
         done));
  Sim.run ~until:(Sim.sec 2) c.sim;
  !sum /. float_of_int iters

let test_three_ni_ordering () =
  let unet = rtt_of Cluster.Sba200_unet in
  let sba100 = rtt_of Cluster.Sba100 in
  let fore = rtt_of Cluster.Sba200_fore in
  (* the paper's §4.2.1 irony: the simpler, cheaper SBA-100 beats Fore's
     SBA-200 firmware by ~2.5x; the U-Net firmware beats both *)
  checkb (Printf.sprintf "U-Net %.0f < SBA-100 %.0f < Fore %.0f" unet sba100 fore)
    true
    (unet < sba100 && sba100 < fore);
  checkb "SBA-100 ~ 66 us" true (Float.abs (sba100 -. 66.) < 8.);
  checkb "Fore ~ 160 us" true (Float.abs (fore -. 160.) < 20.)

(* --- SBA-100 specifics -------------------------------------------------- *)

let test_sba100_requires_emulated () =
  let c = Cluster.create ~nic:Cluster.Sba100 () in
  let n0 = Cluster.node c 0 in
  checkb "regular endpoints rejected (no NI resources)" true
    (match Unet.create_endpoint n0.unet ~seg_size:4096 () with
    | Error Unet.Too_many_endpoints -> true
    | _ -> false);
  checkb "emulated endpoints accepted" true
    (Result.is_ok (Unet.create_endpoint n0.unet ~emulated:true ~seg_size:4096 ()))

let test_sba100_sender_pays () =
  (* on the SBA-100 the sending process itself pays the per-cell software
     cost: a 1 KB send occupies the sender's CPU for ~150 us *)
  let c, n0, n1, ep0, _, a0, ch0, _ = mk_pair ~nic:Cluster.Sba100 () in
  ignore n1;
  let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
  let elapsed = ref 0 in
  ignore
    (Proc.spawn c.sim (fun () ->
         let t0 = Sim.now c.sim in
         ignore
           (Unet.send n0.unet ep0
              (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 1024) ])));
         elapsed := Sim.now c.sim - t0));
  Sim.run c.sim;
  (* 22 cells * 7.06 us + fixed costs: the send call itself is the cost *)
  checkb
    (Printf.sprintf "send occupied the caller for %.0f us" (Sim.to_us !elapsed))
    true
    (!elapsed > 140_000 && !elapsed < 190_000)

let test_sba100_stats () =
  let c, n0, n1, ep0, _, _, ch0, _ = mk_pair ~nic:Cluster.Sba100 () in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 3 do
           ignore
             (Unet.send n0.unet ep0
                (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Inline (Buf.alloc 8))))
         done));
  Sim.run c.sim;
  checki "sent" 3 (Ni.Sba100.pdus_sent (Option.get n0.sba100));
  checki "received" 3 (Ni.Sba100.pdus_received (Option.get n1.sba100))

(* --- copy accounting ----------------------------------------------------- *)

let nic_copies layers =
  List.fold_left
    (fun acc l ->
      acc
      + Option.value ~default:0
          (Metrics.counter_value "buf_copies_total" [ ("layer", l) ]))
    0 layers

let test_copy_counts_sba100_vs_sba200 () =
  (* the same workload — 10 multi-cell (1000-byte) messages — on both NIs:
     the SBA-100 PIOs every cell while the i960 DMAs whole PDUs, so the
     SBA-200 must show strictly fewer counted data-path copies *)
  let run nic layers =
    let before = nic_copies layers in
    let c, n0, n1, ep0, ep1, a0, ch0, _ = mk_pair ~nic () in
    let off, _ = Option.get (Unet.Segment.Allocator.alloc a0) in
    ignore
      (Proc.spawn c.sim (fun () ->
           for _ = 1 to 10 do
             Unet.Segment.write ep0.segment ~off ~src:(Bytes.create 1000)
               ~src_pos:0 ~len:1000;
             (match
                Unet.send n0.unet ep0
                  (Unet.Desc.tx ~chan:ch0 (Unet.Desc.Buffers [ (off, 1000) ]))
              with
             | Ok () -> ()
             | Error e -> Fmt.failwith "%a" Unet.pp_error e);
             Proc.sleep c.sim ~time:(Sim.ms 1)
           done));
    ignore
      (Proc.spawn c.sim (fun () ->
           for _ = 1 to 10 do
             ignore (Unet.recv n1.unet ep1)
           done));
    Sim.run ~until:(Sim.sec 2) c.sim;
    nic_copies layers - before
  in
  let sba100 =
    run Cluster.Sba100 [ "sba100_tx_pio"; "sba100_rx_pio"; "sba100_rx" ]
  in
  let sba200 = run Cluster.Sba200_unet [ "sba200_tx_dma"; "sba200_rx" ] in
  checkb "sba100 counted copies non-zero" true (sba100 > 0);
  checkb "sba200 counted copies non-zero" true (sba200 > 0);
  checkb
    (Printf.sprintf "sba200 %d < sba100 %d (per-PDU DMA vs per-cell PIO)"
       sba200 sba100)
    true (sba200 < sba100)

(* --- firmware configuration sanity -------------------------------------- *)

let test_config_access () =
  let cfg = Ni.Sba200.default_config in
  checkb "fast path on in the U-Net firmware" true
    cfg.Ni.I960_nic.single_cell_optimization;
  checkb "fast path off in Fore's firmware" false
    Ni.Fore_firmware.default_config.Ni.I960_nic.single_cell_optimization;
  checkb "U-Net per-cell cost below the 3.03 us wire time" true
    (cfg.Ni.I960_nic.tx_per_cell_ns < 3_029);
  checkb "Fore per-cell cost above the wire time (i960-bound)" true
    (Ni.Fore_firmware.default_config.Ni.I960_nic.tx_per_cell_ns > 3_029)

let () =
  Alcotest.run "ni"
    [
      ( "i960-nic",
        [
          Alcotest.test_case "pdu counters" `Quick test_pdu_counters;
          Alcotest.test_case "i960 busy accounting" `Quick test_i960_busy_accounting;
          Alcotest.test_case "FIFO stall, no loss" `Quick test_tx_fifo_stall_no_loss;
          Alcotest.test_case "message order" `Quick test_message_order_preserved;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "U-Net < SBA-100 < Fore" `Quick test_three_ni_ordering;
        ] );
      ( "sba100",
        [
          Alcotest.test_case "emulated only" `Quick test_sba100_requires_emulated;
          Alcotest.test_case "sender pays" `Quick test_sba100_sender_pays;
          Alcotest.test_case "stats" `Quick test_sba100_stats;
        ] );
      ( "copy-accounting",
        [
          Alcotest.test_case "SBA-200 copies < SBA-100" `Quick
            test_copy_counts_sba100_vs_sba200;
        ] );
      ( "configs",
        [ Alcotest.test_case "firmware parameters" `Quick test_config_access ] );
    ]
