(* Tests for Engine.Pcapng: byte-exact golden block layout (Section
   Header, Interface Description with if_name/if_tsresol options,
   Enhanced Packet) and monotone virtual timestamps over a fig3-sized
   simulated run. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* the writer is little-endian throughout *)
let golden =
  String.concat ""
    [
      (* Section Header Block: type, len 28, byte-order magic, v1.0,
         section length -1, trailing len *)
      "\x0a\x0d\x0d\x0a";
      "\x1c\x00\x00\x00";
      "\x4d\x3c\x2b\x1a";
      "\x01\x00";
      "\x00\x00";
      "\xff\xff\xff\xff\xff\xff\xff\xff";
      "\x1c\x00\x00\x00";
      (* Interface Description Block: len 40, LINKTYPE_SUNATM (123),
         snaplen 0, if_name "atm0", if_tsresol 9 (ns), end of options *)
      "\x01\x00\x00\x00";
      "\x28\x00\x00\x00";
      "\x7b\x00";
      "\x00\x00";
      "\x00\x00\x00\x00";
      "\x02\x00\x04\x00atm0";
      "\x09\x00\x01\x00\x09\x00\x00\x00";
      "\x00\x00\x00\x00";
      "\x28\x00\x00\x00";
      (* Enhanced Packet Block: len 36, iface 0, 64-bit ns timestamp
         split hi/lo, captured = original = 4, "ping", trailing len *)
      "\x06\x00\x00\x00";
      "\x24\x00\x00\x00";
      "\x00\x00\x00\x00";
      "\x04\x03\x02\x01";
      "\x08\x07\x06\x05";
      "\x04\x00\x00\x00";
      "\x04\x00\x00\x00";
      "ping";
      "\x24\x00\x00\x00";
    ]

let test_golden_layout () =
  Pcapng.start ();
  Pcapng.attach_clock (fun () -> 0x0102030405060708);
  let ifc = Pcapng.iface ~name:"atm0" ~linktype:Pcapng.linktype_sunatm in
  checki "first interface gets id 0" 0 ifc;
  Pcapng.capture ~iface:ifc "ping";
  let got = Pcapng.to_string () in
  checki "capture length" (String.length golden) (String.length got);
  check Alcotest.string "byte-exact block layout" golden got;
  Pcapng.stop ();
  Pcapng.clear ()

let test_iface_idempotent () =
  Pcapng.start ();
  let a = Pcapng.iface ~name:"atm0" ~linktype:Pcapng.linktype_sunatm in
  let b = Pcapng.iface ~name:"eth0" ~linktype:Pcapng.linktype_ethernet in
  let a' = Pcapng.iface ~name:"atm0" ~linktype:Pcapng.linktype_sunatm in
  checki "same (name, linktype) is one interface" a a';
  checkb "distinct interfaces get distinct ids" true (a <> b);
  Pcapng.stop ();
  Pcapng.clear ()

let test_disabled_captures_nothing () =
  Pcapng.stop ();
  Pcapng.clear ();
  let ifc = Pcapng.iface ~name:"atm0" ~linktype:Pcapng.linktype_sunatm in
  Pcapng.capture ~iface:ifc "dropped";
  checki "no packets while disabled" 0 (Pcapng.packet_count ());
  Pcapng.clear ()

(* a fig3-sized run: multi-cell raw round trips plus UAM round trips, all
   captured; virtual timestamps must be monotone in capture order *)
let test_monotone_timestamps_over_run () =
  Pcapng.start ();
  ignore (Experiments.Common.raw_rtt ~iters:5 ~size:1024 ());
  ignore (Experiments.Common.uam_rtt ~iters:5 ~size:16 ());
  checkb "cells were captured" true (Pcapng.packet_count () > 100);
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  (* each experiment restarts the virtual clock, but within itself the
     capture order must follow virtual time; check per-run segments *)
  let times = Pcapng.packet_times () in
  let segments =
    List.fold_left
      (fun segs t ->
        match segs with
        | (last :: _ as seg) :: rest when t >= last -> (t :: seg) :: rest
        | _ -> [ t ] :: segs)
      [] times
  in
  checkb "timestamps are monotone within each run" true
    (List.length segments <= 2
    && List.for_all (fun seg -> monotone (List.rev seg)) segments);
  (* and the serialized file stays parseable: every block length is
     self-consistent *)
  let s = Pcapng.to_string () in
  let u32 off =
    Char.code s.[off]
    lor (Char.code s.[off + 1] lsl 8)
    lor (Char.code s.[off + 2] lsl 16)
    lor (Char.code s.[off + 3] lsl 24)
  in
  let rec walk off n =
    if off >= String.length s then n
    else
      let len = u32 (off + 4) in
      checki "trailing length matches leading" len (u32 (off + len - 4));
      walk (off + len) (n + 1)
  in
  let blocks = walk 0 0 in
  checki "one block per packet plus SHB and IDBs" blocks
    (Pcapng.packet_count () + 3);
  Pcapng.stop ();
  Pcapng.clear ()

let () =
  Alcotest.run "pcap"
    [
      ( "pcapng",
        [
          Alcotest.test_case "golden byte layout" `Quick test_golden_layout;
          Alcotest.test_case "interface registry idempotent" `Quick
            test_iface_idempotent;
          Alcotest.test_case "disabled captures nothing" `Quick
            test_disabled_captures_nothing;
          Alcotest.test_case "monotone timestamps over a fig3-sized run"
            `Quick test_monotone_timestamps_over_run;
        ] );
    ]
