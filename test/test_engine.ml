(* Tests for the discrete-event engine: event queue, processes,
   synchronization primitives, RNG and statistics. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- Sim ---------------------------------------------------------- *)

let test_event_ordering () =
  let sim = Sim.create () in
  let order = ref [] in
  ignore (Sim.schedule sim ~delay:30 (fun () -> order := 3 :: !order));
  ignore (Sim.schedule sim ~delay:10 (fun () -> order := 1 :: !order));
  ignore (Sim.schedule sim ~delay:20 (fun () -> order := 2 :: !order));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "events fire in time order" [ 1; 2; 3 ]
    (List.rev !order)

let test_fifo_same_time () =
  let sim = Sim.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:10 (fun () -> order := i :: !order))
  done;
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "same-instant events are FIFO"
    [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0 in
  ignore (Sim.schedule sim ~delay:42 (fun () -> seen := Sim.now sim));
  Sim.run sim;
  checki "clock equals the event time inside the handler" 42 !seen;
  checki "clock stays at the last event" 42 (Sim.now sim)

let test_schedule_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:10 (fun () -> ()));
  Sim.run sim;
  Alcotest.check_raises "scheduling in the past raises"
    (Invalid_argument "Sim.schedule_at: time 5 is in the past (now 10)")
    (fun () -> ignore (Sim.schedule_at sim 5 (fun () -> ())))

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay raises"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1) (fun () -> ())))

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:10 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  checkb "cancelled event does not fire" false !fired;
  Sim.cancel h (* double cancel is a no-op *)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore (Sim.schedule sim ~delay:10 (fun () -> fired := 10 :: !fired));
  ignore (Sim.schedule sim ~delay:100 (fun () -> fired := 100 :: !fired));
  Sim.run ~until:50 sim;
  check (Alcotest.list Alcotest.int) "only events before the limit" [ 10 ] !fired;
  checki "clock moved to the limit" 50 (Sim.now sim);
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "remaining events run later" [ 100; 10 ]
    !fired

let test_pending () =
  let sim = Sim.create () in
  checki "empty initially" 0 (Sim.pending sim);
  let h = Sim.schedule sim ~delay:5 (fun () -> ()) in
  ignore (Sim.schedule sim ~delay:6 (fun () -> ()));
  checki "two pending" 2 (Sim.pending sim);
  Sim.cancel h;
  Sim.run sim;
  checki "none after run" 0 (Sim.pending sim)

let test_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1 (fun () -> ()));
  checkb "step fires one" true (Sim.step sim);
  checkb "no more events" false (Sim.step sim)

let test_time_units () =
  checki "us" 1_000 (Sim.us 1);
  checki "ms" 1_000_000 (Sim.ms 1);
  checki "sec" 1_000_000_000 (Sim.sec 1);
  check (Alcotest.float 1e-9) "to_us" 1.5 (Sim.to_us 1_500);
  checki "of_us_f rounds" 1_500 (Sim.of_us_f 1.5)

let prop_heap_ordering =
  QCheck.Test.make ~name:"events always fire in nondecreasing time order"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 10_000))
    (fun delays ->
      let sim = Sim.create () in
      let times = ref [] in
      List.iter
        (fun d -> ignore (Sim.schedule sim ~delay:d (fun () -> times := Sim.now sim :: !times)))
        delays;
      Sim.run sim;
      let fired = List.rev !times in
      List.sort compare fired = fired && List.length fired = List.length delays)

(* --- Proc --------------------------------------------------------- *)

let test_spawn_runs () =
  let sim = Sim.create () in
  let ran = ref false in
  let p = Proc.spawn sim (fun () -> ran := true) in
  Sim.run sim;
  checkb "body ran" true !ran;
  checkb "state done" true (Proc.state p = Proc.Done)

let test_sleep_advances_time () =
  let sim = Sim.create () in
  let t = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         Proc.sleep sim ~time:100;
         Proc.sleep sim ~time:50;
         t := Sim.now sim));
  Sim.run sim;
  checki "slept 150 total" 150 !t

let test_join () =
  let sim = Sim.create () in
  let order = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         let child =
           Proc.spawn sim (fun () ->
               Proc.sleep sim ~time:10;
               order := "child" :: !order)
         in
         Proc.join child;
         order := "parent" :: !order));
  Sim.run sim;
  check
    (Alcotest.list Alcotest.string)
    "join waits for the child" [ "child"; "parent" ] (List.rev !order)

exception Boom

let test_join_reraises () =
  let sim = Sim.create () in
  let caught = ref false in
  ignore
    (Proc.spawn sim (fun () ->
         let child = Proc.spawn sim (fun () -> raise Boom) in
         Proc.sleep sim ~time:1;
         try Proc.join child with Boom -> caught := true));
  Sim.run sim;
  checkb "exception crossed join" true !caught

let test_failed_state () =
  let sim = Sim.create () in
  let p = Proc.spawn sim (fun () -> raise Boom) in
  Sim.run sim;
  checkb "failed" true (match Proc.state p with Proc.Failed Boom -> true | _ -> false)

let test_run_to_completion () =
  let sim = Sim.create () in
  let v =
    Proc.run_to_completion sim (fun () ->
        Proc.sleep sim ~time:5;
        42)
  in
  checki "returns the value" 42 v

let test_run_to_completion_deadlock () =
  let sim = Sim.create () in
  let deadlocked =
    try
      ignore
        (Proc.run_to_completion sim (fun () ->
             Proc.suspend (fun _resume -> ())));
      false
    with Failure _ -> true
  in
  checkb "deadlock detected" true deadlocked

let test_blocking_outside_process () =
  let sim = Sim.create () in
  checkb "raises Not_in_process" true
    (try
       Proc.sleep sim ~time:1;
       false
     with Proc.Not_in_process -> true)

let test_join_all () =
  let sim = Sim.create () in
  let count = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         let children =
           List.init 5 (fun i ->
               Proc.spawn sim (fun () ->
                   Proc.sleep sim ~time:(10 * (i + 1));
                   incr count))
         in
         Proc.join_all children;
         checki "all children done at join" 5 !count));
  Sim.run sim

(* --- Sync --------------------------------------------------------- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Sync.Mailbox.create sim in
  let got = ref [] in
  ignore
    (Proc.spawn sim (fun () ->
         for _ = 1 to 3 do
           got := Sync.Mailbox.recv mb :: !got
         done));
  ignore
    (Proc.spawn sim (fun () ->
         Sync.Mailbox.send mb 1;
         Sync.Mailbox.send mb 2;
         Sync.Mailbox.send mb 3));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocks () =
  let sim = Sim.create () in
  let mb = Sync.Mailbox.create sim in
  let when_received = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         ignore (Sync.Mailbox.recv mb);
         when_received := Sim.now sim));
  ignore
    (Proc.spawn sim (fun () ->
         Proc.sleep sim ~time:500;
         Sync.Mailbox.send mb ()));
  Sim.run sim;
  checki "recv blocked until the send" 500 !when_received

let test_mailbox_timeout () =
  let sim = Sim.create () in
  let mb : int Sync.Mailbox.t = Sync.Mailbox.create sim in
  let r = ref (Some 0) in
  ignore (Proc.spawn sim (fun () -> r := Sync.Mailbox.recv_timeout mb ~timeout:100));
  Sim.run sim;
  checkb "timed out" true (!r = None);
  checki "time advanced to the deadline" 100 (Sim.now sim)

let test_mailbox_timeout_delivery () =
  let sim = Sim.create () in
  let mb = Sync.Mailbox.create sim in
  let r = ref None in
  ignore (Proc.spawn sim (fun () -> r := Sync.Mailbox.recv_timeout mb ~timeout:100));
  ignore (Proc.spawn sim (fun () -> Proc.sleep sim ~time:10; Sync.Mailbox.send mb 7));
  Sim.run sim;
  checkb "delivered before deadline" true (!r = Some 7)

let test_semaphore () =
  let sim = Sim.create () in
  let sem = Sync.Semaphore.create sim 2 in
  let active = ref 0 and max_active = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Proc.spawn sim (fun () ->
           Sync.Semaphore.acquire sem;
           incr active;
           if !active > !max_active then max_active := !active;
           Proc.sleep sim ~time:10;
           decr active;
           Sync.Semaphore.release sem))
  done;
  Sim.run sim;
  checki "at most 2 concurrent holders" 2 !max_active

let test_try_acquire () =
  let sim = Sim.create () in
  let sem = Sync.Semaphore.create sim 1 in
  checkb "first succeeds" true (Sync.Semaphore.try_acquire sem);
  checkb "second fails" false (Sync.Semaphore.try_acquire sem);
  Sync.Semaphore.release sem;
  checki "released" 1 (Sync.Semaphore.available sem)

let test_condition_broadcast () =
  let sim = Sim.create () in
  let cond = Sync.Condition.create sim in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Proc.spawn sim (fun () ->
           Sync.Condition.wait cond;
           incr woken))
  done;
  ignore
    (Proc.spawn sim (fun () ->
         Proc.sleep sim ~time:10;
         Sync.Condition.broadcast cond));
  Sim.run sim;
  checki "all woken" 3 !woken

let test_wait_for () =
  let sim = Sim.create () in
  let cond = Sync.Condition.create sim in
  let flag = ref false and done_at = ref 0 in
  ignore
    (Proc.spawn sim (fun () ->
         Sync.Condition.wait_for cond (fun () -> !flag);
         done_at := Sim.now sim));
  ignore
    (Proc.spawn sim (fun () ->
         Proc.sleep sim ~time:5;
         Sync.Condition.broadcast cond (* spurious: predicate still false *);
         Proc.sleep sim ~time:5;
         flag := true;
         Sync.Condition.broadcast cond));
  Sim.run sim;
  checki "waited through the spurious wakeup" 10 !done_at

let test_server_serializes () =
  let sim = Sim.create () in
  let server = Sync.Server.create sim in
  let completions = ref [] in
  Sync.Server.submit server ~cost:10 (fun () ->
      completions := (1, Sim.now sim) :: !completions);
  Sync.Server.submit server ~cost:5 (fun () ->
      completions := (2, Sim.now sim) :: !completions);
  checki "one queued behind the running job" 1 (Sync.Server.queue_length server);
  Sim.run sim;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "jobs run back to back, FIFO"
    [ (1, 10); (2, 15) ]
    (List.rev !completions);
  checki "busy time accumulated" 15 (Sync.Server.busy_time server)

let test_server_idle_restart () =
  let sim = Sim.create () in
  let server = Sync.Server.create sim in
  let last = ref 0 in
  Sync.Server.submit server ~cost:10 (fun () -> last := Sim.now sim);
  Sim.run sim;
  ignore (Sim.schedule sim ~delay:100 (fun () ->
      Sync.Server.submit server ~cost:7 (fun () -> last := Sim.now sim)));
  Sim.run sim;
  checki "second job starts when submitted" 117 !last

(* --- Rng ---------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  checkb "different seeds differ" true (xs <> ys)

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  checkb "split stream differs" true (xs <> ys)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:200
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 3 in
  checkb "p=0 never true" false
    (List.exists Fun.id (List.init 50 (fun _ -> Rng.bernoulli rng ~p:0.)));
  checkb "p=1 always true" true
    (List.for_all Fun.id (List.init 50 (fun _ -> Rng.bernoulli rng ~p:1.)))

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_exponential_positive () =
  let rng = Rng.create 5 in
  checkb "exponential samples positive" true
    (List.for_all (fun x -> x > 0.) (List.init 100 (fun _ -> Rng.exponential rng ~mean:5.)))

(* --- Stats -------------------------------------------------------- *)

let test_counter () =
  let c = Stats.Counter.create "c" in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  checki "value" 5 (Stats.Counter.value c);
  Stats.Counter.reset c;
  checki "reset" 0 (Stats.Counter.value c)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  checki "count" 5 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 3. (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1. (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 5. (Stats.Summary.max s);
  check (Alcotest.float 1e-9) "median" 3. (Stats.Summary.percentile s 0.5);
  check (Alcotest.float 1e-9) "total" 15. (Stats.Summary.total s)

let test_series () =
  let s = Stats.Series.make "s" [ (1., 10.); (2., 20.); (3., 15.) ] in
  check (Alcotest.float 1e-9) "y_at exact" 20. (Stats.Series.y_at s 2.);
  check (Alcotest.float 1e-9) "y_at nearest" 15. (Stats.Series.y_at s 2.9);
  check (Alcotest.float 1e-9) "max_y" 20. (Stats.Series.max_y s);
  check (Alcotest.float 1e-9) "min_y" 10. (Stats.Series.min_y s)

let test_percentile_interpolation () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 4.; 1.; 3.; 2. ];
  check (Alcotest.float 1e-9) "p50 interpolates" 2.5
    (Stats.Summary.percentile s 0.5);
  check (Alcotest.float 1e-9) "p25 lands on a sample" 1.75
    (Stats.Summary.percentile s 0.25);
  check (Alcotest.float 1e-9) "p0 is the min" 1. (Stats.Summary.percentile s 0.);
  check (Alcotest.float 1e-9) "p1 is the max" 4. (Stats.Summary.percentile s 1.);
  check (Alcotest.float 1e-9) "out-of-range p clamps" 4.
    (Stats.Summary.percentile s 2.);
  checkb "empty summary raises" true
    (try
       ignore (Stats.Summary.percentile (Stats.Summary.create ()) 0.5);
       false
     with Invalid_argument _ -> true)

(* --- Trace -------------------------------------------------------- *)

let test_trace_time_order () =
  Trace.start ();
  let sim = Sim.create () in
  (* emit from events scheduled out of order: the ring must still record
     them in nondecreasing virtual time because the sim fires them in order *)
  List.iter
    (fun d ->
      ignore
        (Sim.schedule sim ~delay:d (fun () ->
             Trace.instant Trace.Cell "tick" ~args:[ ("d", Trace.Int d) ])))
    [ 30; 10; 50; 20; 40; 10 ];
  Sim.run sim;
  let ts = List.map (fun (e : Trace.event) -> e.ts) (Trace.events ()) in
  checki "all six retained" 6 (List.length ts);
  checkb "nondecreasing virtual-time order" true
    (List.sort compare ts = ts);
  check (Alcotest.list Alcotest.int) "stamped with the sim clock"
    [ 10; 10; 20; 30; 40; 50 ] ts;
  Trace.stop ();
  Trace.clear ()

let test_trace_ring_bounded () =
  Trace.start ~capacity:8 ();
  let sim = Sim.create () in
  for i = 1 to 20 do
    ignore
      (Sim.schedule sim ~delay:i (fun () -> Trace.instant Trace.Mux "e"))
  done;
  Sim.run sim;
  checki "ring keeps the newest 8" 8 (List.length (Trace.events ()));
  checki "total counts every emission" 20 (Trace.total_events ());
  checki "drops counted" 12 (Trace.dropped_events ());
  checki "oldest retained is event 13" (Sim.ns 13)
    (match Trace.events () with e :: _ -> e.ts | [] -> -1);
  Trace.stop ();
  Trace.clear ()

let test_trace_disabled_is_silent () =
  Trace.clear ();
  checkb "disabled by default" false (Trace.enabled ());
  Trace.instant Trace.Tcp "ignored";
  checki "no events recorded while disabled" 0 (List.length (Trace.events ()))

(* A minimal JSON reader, enough to round-trip the Chrome export. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c" c));
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                pos := !pos + 4;
                if code < 128 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | c -> Buffer.add_char b c);
            advance ();
            go ()
        | '\000' -> raise (Bad "unterminated string")
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              if peek () = ',' then begin
                advance ();
                members ((k, v) :: acc)
              end
              else begin
                expect '}';
                List.rev ((k, v) :: acc)
              end
            in
            Obj (members [])
          end
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              if peek () = ',' then begin
                advance ();
                elems (v :: acc)
              end
              else begin
                expect ']';
                List.rev (v :: acc)
              end
            in
            Arr (elems [])
          end
      | '"' -> Str (parse_string ())
      | 't' ->
          pos := !pos + 4;
          Bool true
      | 'f' ->
          pos := !pos + 5;
          Bool false
      | 'n' ->
          pos := !pos + 4;
          Null
      | _ ->
          let start = !pos in
          let is_num c =
            match c with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false
          in
          while is_num (peek ()) do
            advance ()
          done;
          if !pos = start then raise (Bad "unexpected character");
          Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let mem k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

let test_trace_chrome_roundtrip () =
  Trace.start ();
  let sim = Sim.create () in
  ignore
    (Sim.schedule sim ~delay:1_500 (fun () ->
         Trace.instant Trace.Mux "deliver" ~tid:3
           ~args:
             [
               ("vci", Trace.Int 32);
               ("outcome", Trace.Str "needs \"escaping\"\n");
               ("frac", Trace.Float 0.25);
             ]));
  ignore
    (Sim.schedule sim ~delay:2_000 (fun () ->
         Trace.complete Trace.Cpu "uam" ~dur:800));
  Sim.run sim;
  let json = Trace.to_chrome_json () in
  Trace.stop ();
  Trace.clear ();
  let parsed = Json.parse json in
  let objs = match parsed with Json.Arr l -> l | _ -> [] in
  checki "exports an array with both events" 2 (List.length objs);
  List.iter
    (fun o ->
      List.iter
        (fun k -> checkb ("event has " ^ k) true (Json.mem k o <> None))
        [ "name"; "ph"; "ts"; "pid"; "tid" ])
    objs;
  let first = List.nth objs 0 and second = List.nth objs 1 in
  checkb "name round-trips" true (Json.mem "name" first = Some (Json.Str "deliver"));
  checkb "phase i" true (Json.mem "ph" first = Some (Json.Str "i"));
  checkb "ts is microseconds" true (Json.mem "ts" first = Some (Json.Num 1.5));
  checkb "tid carried" true (Json.mem "tid" first = Some (Json.Num 3.));
  (match Json.mem "args" first with
  | Some args ->
      checkb "int arg" true (Json.mem "vci" args = Some (Json.Num 32.));
      checkb "string arg escapes round-trip" true
        (Json.mem "outcome" args = Some (Json.Str "needs \"escaping\"\n"));
      checkb "float arg" true (Json.mem "frac" args = Some (Json.Num 0.25))
  | None -> Alcotest.fail "first event lost its args");
  checkb "complete has dur (0.8 us)" true
    (Json.mem "dur" second = Some (Json.Num 0.8));
  checkb "complete phase X" true (Json.mem "ph" second = Some (Json.Str "X"))

(* --- Metrics ------------------------------------------------------ *)

let test_metrics_dedup () =
  Metrics.reset ();
  let c1 = Metrics.counter "dedup_test_total" [ ("a", "1"); ("b", "2") ] in
  let c2 = Metrics.counter "dedup_test_total" [ ("b", "2"); ("a", "1") ] in
  let c3 = Metrics.counter "dedup_test_total" [ ("a", "1"); ("b", "3") ] in
  Metrics.Counter.inc c1;
  Metrics.Counter.inc c2;
  Metrics.Counter.inc c3;
  checki "label order is irrelevant: same instrument" 2
    (Metrics.Counter.value c1);
  checki "different labels: distinct instrument" 1 (Metrics.Counter.value c3);
  checkb "lookup sees the shared sample" true
    (Metrics.counter_value "dedup_test_total" [ ("b", "2"); ("a", "1") ]
    = Some 2)

let test_metrics_reset_keeps_registrations () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"h" "reset_test_total" [] in
  Metrics.Counter.add c 7;
  Metrics.reset ();
  checki "value zeroed" 0 (Metrics.Counter.value c);
  Metrics.Counter.inc c;
  checki "old handle still feeds the registry" 1
    (match Metrics.counter_value "reset_test_total" [] with
    | Some v -> v
    | None -> -1);
  let dump = Metrics.to_prometheus_string () in
  checkb "family present in the dump after reset" true
    (let re = "reset_test_total" in
     let rec find i =
       i + String.length re <= String.length dump
       && (String.sub dump i (String.length re) = re || find (i + 1))
     in
     find 0)

(* The quickstart ping-pong must meter identically on every run: all counts
   derive from the deterministic simulation. *)
let test_metrics_pingpong_deterministic () =
  let iters = 10 in
  let run () =
    Metrics.reset ();
    let rtt = Experiments.Common.raw_rtt ~iters ~size:32 () in
    (rtt, Metrics.to_prometheus_string ())
  in
  let rtt1, dump1 = run () in
  let rtt2, dump2 = run () in
  check (Alcotest.float 1e-9) "same RTT both runs" rtt1 rtt2;
  check Alcotest.string "identical metrics dumps" dump1 dump2;
  checki "every echo crossed host 1's mux" iters
    (match Metrics.counter_value "unet_mux_deliveries_total" [ ("host", "1") ] with
    | Some v -> v
    | None -> -1);
  checki "every reply crossed host 0's mux" iters
    (match Metrics.counter_value "unet_mux_deliveries_total" [ ("host", "0") ] with
    | Some v -> v
    | None -> -1);
  Metrics.reset ()

(* --- Trace ring overflow counter ----------------------------------- *)

let test_trace_dropped_counter () =
  Metrics.reset ();
  Trace.start ~capacity:4 ();
  let sim = Sim.create () in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:i (fun () -> Trace.instant Trace.Mux "e"))
  done;
  Sim.run sim;
  checki "overwrites surface in the metrics registry" 6
    (match Metrics.counter_value "trace_events_dropped_total" [] with
    | Some v -> v
    | None -> -1);
  checki "counter agrees with dropped_events" (Trace.dropped_events ()) 6;
  Trace.stop ();
  Trace.clear ();
  Metrics.reset ()

(* --- Json ----------------------------------------------------------- *)

(* Ej, not Json: the local chrome-trace reader above shadows Engine.Json *)
module Ej = Engine.Json

let test_json_roundtrip () =
  let v =
    Ej.Obj
      [
        ("name", Ej.Str "fig3");
        ("quick", Ej.Bool true);
        ("nothing", Ej.Null);
        ( "series",
          Ej.List
            [
              Ej.List [ Ej.Num 4.; Ej.Num 64.916 ];
              Ej.List [ Ej.Num 1024.; Ej.Num 239.534 ];
            ] );
      ]
  in
  let v' = Ej.of_string (Ej.to_string v) in
  checkb "round-trips structurally" true (v = v');
  check (Alcotest.float 1e-9) "field access" 64.916
    (match Ej.member "series" v' with
    | Some (Ej.List (Ej.List [ _; y ] :: _)) ->
        Option.value ~default:nan (Ej.to_float y)
    | _ -> nan)

let test_json_parses_escapes_and_numbers () =
  let v =
    Ej.of_string
      {| { "s" : "a\"b\\c\nd\u0041", "neg": -1.5e2, "i": 42, "l": [true, false, null] } |}
  in
  checkb "string escapes" true
    (Ej.member "s" v |> Option.map Ej.to_str
    = Some (Some "a\"b\\c\nd\065"));
  checkb "scientific notation" true
    (Option.bind (Ej.member "neg" v) Ej.to_float = Some (-150.));
  checkb "integral numbers print without decimals" true
    (Ej.to_string (Ej.Num 42.) = "42");
  checkb "malformed input raises" true
    (try
       ignore (Ej.of_string "{ \"x\": }");
       false
     with Ej.Parse_error _ -> true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "engine"
    [
      ( "sim",
        [
          Alcotest.test_case "event ordering" `Quick test_event_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_fifo_same_time;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "past rejected" `Quick test_schedule_past_rejected;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "pending" `Quick test_pending;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "time units" `Quick test_time_units;
          qt prop_heap_ordering;
        ] );
      ( "proc",
        [
          Alcotest.test_case "spawn runs" `Quick test_spawn_runs;
          Alcotest.test_case "sleep advances time" `Quick test_sleep_advances_time;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join re-raises" `Quick test_join_reraises;
          Alcotest.test_case "failed state" `Quick test_failed_state;
          Alcotest.test_case "run_to_completion" `Quick test_run_to_completion;
          Alcotest.test_case "deadlock detection" `Quick test_run_to_completion_deadlock;
          Alcotest.test_case "blocking outside process" `Quick test_blocking_outside_process;
          Alcotest.test_case "join_all" `Quick test_join_all;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "mailbox blocks" `Quick test_mailbox_blocks;
          Alcotest.test_case "mailbox timeout" `Quick test_mailbox_timeout;
          Alcotest.test_case "mailbox timeout delivery" `Quick test_mailbox_timeout_delivery;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "try_acquire" `Quick test_try_acquire;
          Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
          Alcotest.test_case "wait_for" `Quick test_wait_for;
          Alcotest.test_case "server serializes" `Quick test_server_serializes;
          Alcotest.test_case "server idle restart" `Quick test_server_idle_restart;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          qt prop_rng_int_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          qt prop_shuffle_permutes;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "virtual-time order" `Quick test_trace_time_order;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "disabled is silent" `Quick
            test_trace_disabled_is_silent;
          Alcotest.test_case "chrome JSON round-trip" `Quick
            test_trace_chrome_roundtrip;
          Alcotest.test_case "overflow feeds dropped counter" `Quick
            test_trace_dropped_counter;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes and numbers" `Quick
            test_json_parses_escapes_and_numbers;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "dedup by name+labels" `Quick test_metrics_dedup;
          Alcotest.test_case "reset keeps registrations" `Quick
            test_metrics_reset_keeps_registrations;
          Alcotest.test_case "ping-pong deterministic" `Quick
            test_metrics_pingpong_deterministic;
        ] );
    ]
