(* Flow observability (DESIGN.md §17): Space-Saving sketch error bounds,
   exact per-hop flow tables, hostile-label escaping in the metric dumps,
   path-record byte-identity between the train fast path and the per-cell
   reference under deterministic PDU sampling, near-miss queue-peak
   gauges, and congestion-atlas HTML self-containment. *)

open Engine

let clos2 = Atm.Network.Clos { pods = 2; spine = 2; hosts_per_pod = 2 }
let zero_payload = Buf.alloc Atm.Cell.payload_size

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Space-Saving top-K ----------------------------------------------- *)

(* A skewed deterministic stream: the sketch must keep every key whose
   true count exceeds total/k, and every estimate must bracket the truth
   as [est - err <= true <= est]. *)
let topk_bounds () =
  let k = 4 in
  let t = Atm.Flowstat.Topk.create ~k in
  let keys = 10 in
  let true_counts = Array.make keys 0 in
  let s = ref 1 in
  let next () =
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s
  in
  let total = 2000 in
  for _ = 1 to total do
    let r = next () mod 16 in
    let key = if r < 8 then 0 else if r < 12 then 1 else 2 + (r mod (keys - 2)) in
    true_counts.(key) <- true_counts.(key) + 1;
    Atm.Flowstat.Topk.offer t key 1
  done;
  let entries = Atm.Flowstat.Topk.entries t in
  Alcotest.(check int) "at capacity" k (List.length entries);
  List.iter
    (fun (key, est, err) ->
      let truth = true_counts.(key) in
      Alcotest.(check bool)
        (Printf.sprintf "key %d: est %d >= true %d" key est truth)
        true (est >= truth);
      Alcotest.(check bool)
        (Printf.sprintf "key %d: est %d - err %d <= true %d" key est err truth)
        true (est - err <= truth))
    entries;
  (* the guaranteed-present heavies: true count > total/k *)
  Array.iteri
    (fun key truth ->
      if truth > total / k then
        Alcotest.(check bool)
          (Printf.sprintf "heavy key %d present" key)
          true
          (List.exists (fun (key', _, _) -> key' = key) entries))
    true_counts;
  (* sorted by estimate descending *)
  let ests = List.map (fun (_, est, _) -> est) entries in
  Alcotest.(check (list int))
    "descending" (List.sort (fun a b -> compare b a) ests) ests

(* Negative weights (train-truncation undo) decrement present keys and
   are dropped on absent ones — they never install ghost entries. *)
let topk_negative () =
  let t = Atm.Flowstat.Topk.create ~k:2 in
  Atm.Flowstat.Topk.offer t "x" 10;
  Atm.Flowstat.Topk.offer t "x" (-4);
  Atm.Flowstat.Topk.offer t "ghost" (-5);
  match Atm.Flowstat.Topk.entries t with
  | [ ("x", 6, 0) ] -> ()
  | entries ->
      Alcotest.failf "expected [x,6,0], got %d entries (head est %s)"
        (List.length entries)
        (match entries with
        | (key, est, _) :: _ -> Printf.sprintf "%s=%d" key est
        | [] -> "-")

(* --- exact per-hop flow tables ---------------------------------------- *)

let flowstat_exact () =
  Atm.Flowstat.configure ~exact_flows:2 ~k:4 ();
  Fun.protect ~finally:Atm.Flowstat.disable @@ fun () ->
  let fs = Atm.Flowstat.create () in
  let f1 = Atm.Flowstat.register fs ~src:0 ~dst:3 ~vcis:[| 5; 9; 7 |] in
  let f2 = Atm.Flowstat.register fs ~src:1 ~dst:2 ~vcis:[| 6 |] in
  let f3 = Atm.Flowstat.register fs ~src:2 ~dst:1 ~vcis:[| 8 |] in
  Alcotest.(check string) "label carries the VCI chain" "0:3:5,9,7"
    (Atm.Flowstat.flow_label f1);
  Atm.Flowstat.count fs f1 ~hop:0 ~cells:10;
  Atm.Flowstat.count fs f1 ~hop:1 ~cells:9;
  Atm.Flowstat.drop fs f1 ~hop:1;
  Atm.Flowstat.note_retx fs ~src:0 ~vci:5;
  Atm.Flowstat.note_retx fs ~src:9 ~vci:99 (* unregistered: no-op *);
  Atm.Flowstat.count fs f2 ~hop:0 ~cells:2;
  Atm.Flowstat.count fs f3 ~hop:0 ~cells:50;
  Alcotest.(check int) "only the first two flows are exact" 2
    (Atm.Flowstat.exact_flows fs);
  let sz = Atm.Cell.payload_size in
  (match Atm.Flowstat.flow_hops f1 with
  | None -> Alcotest.fail "f1 should have an exact table"
  | Some hops ->
      Alcotest.(check int) "3 stages" 3 (Array.length hops);
      Alcotest.(check bool) "per-hop (cells, bytes, drops, retx)" true
        (hops = [| (10, 10 * sz, 0, 1); (9, 9 * sz, 1, 0); (0, 0, 0, 0) |]));
  Alcotest.(check bool) "f3 is sketched only" true
    (Atm.Flowstat.flow_hops f3 = None);
  (* the sketch saw ingress bytes from all three, exact or not *)
  (match Atm.Flowstat.top fs with
  | (lead, est, _) :: _ ->
      Alcotest.(check int) "f3 leads by ingress bytes" 2
        (Atm.Flowstat.flow_src lead);
      Alcotest.(check int) "estimate" (50 * sz) est
  | [] -> Alcotest.fail "empty top-K");
  match Atm.Flowstat.find fs ~src:0 ~vci:5 with
  | Some f -> Alcotest.(check int) "find returns f1" 3 (Atm.Flowstat.flow_dst f)
  | None -> Alcotest.fail "find missed a registered flow"

(* --- hostile label values in the metric dumps -------------------------- *)

(* Flow labels carry "src:dst:vci0,vci1" strings; colons and commas are
   legal inside quoted Prometheus label values and JSON strings, but
   quotes, backslashes and control characters must be escaped. *)
let metric_escaping () =
  Metrics.reset ();
  let c =
    Metrics.counter ~help:"escaping probe" "flowobs_escape_probe_total"
      [ ("flow", "0:3:5,9,7"); ("evil", "a\"b\\c\nd\te") ]
  in
  Metrics.Counter.inc c;
  let prom = Metrics.to_prometheus_string () in
  Alcotest.(check bool) "prometheus keeps the flow label verbatim" true
    (contains prom "flow=\"0:3:5,9,7\"");
  Alcotest.(check bool) "prometheus escapes quote/backslash/newline" true
    (contains prom "evil=\"a\\\"b\\\\c\\nd\te\"");
  let json = Metrics.to_json_string () in
  Alcotest.(check bool) "json keeps the flow label verbatim" true
    (contains json "0:3:5,9,7");
  Alcotest.(check bool) "json escapes the hostile label" true
    (contains json "a\\\"b\\\\c\\nd\\te");
  Alcotest.(check bool) "json has no raw control characters" true
    (String.for_all (fun ch -> ch = '\n' || ch >= ' ') json);
  Metrics.reset ()

(* --- path records: train fast path == per-cell reference --------------- *)

(* Cross-pod round trips on a 2x2 Clos through the full NI stack, with
   1-in-3 PDU sampling: the records synthesized from committed trains
   plus the sampled PDUs' real per-cell stamps must equal, record for
   record, the all-per-cell reference run. (Ping-pong traffic, like the
   span differential in test_observe: pipelined-bandwidth pacing under
   sampling intentionally differs across modes — the NI drains sampled
   cells before pumping — so round trips are where byte-identity is
   defined.) *)
let path_traffic forced =
  Metrics.reset ();
  Trainmode.force_per_cell forced;
  Sample.configure ~n:3 ~seed:0x5eed;
  Pathrec.start ();
  Pathrec.clear ();
  Fun.protect ~finally:(fun () ->
      Trainmode.force_per_cell false;
      Sample.configure ~n:0 ~seed:0;
      Pathrec.stop ();
      Pathrec.clear ())
  @@ fun () ->
  ignore
    (Experiments.Common.raw_rtt ~iters:20 ~size:1024 ~topology:clos2
       ~pair:(0, 3) ()
      : float);
  Metrics.flush ();
  (Pathrec.records (), Sample.sampled (), Sample.offered ())

let path_identity () =
  let train, train_sampled, train_offered = path_traffic false in
  let percell, _, _ = path_traffic true in
  Alcotest.(check bool)
    (Printf.sprintf "records were captured (%d)" (List.length train))
    true
    (List.length train > 0);
  Alcotest.(check bool)
    (Printf.sprintf "sampling exercised both stampers (%d of %d)" train_sampled
       train_offered)
    true
    (train_sampled > 0 && train_sampled < train_offered);
  Alcotest.(check bool)
    "every hop chain crosses 3 stages with positive latencies" true
    (List.for_all
       (fun (r : Pathrec.record) ->
         Array.length r.r_hops = 3
         && Array.for_all (fun (h : Pathrec.hop) -> h.h_latency_ns > 0) r.r_hops
         && r.r_injected < r.r_delivered)
       train);
  Alcotest.(check bool) "train records = per-cell records" true
    (train = percell)

(* --- near-miss queue peaks --------------------------------------------- *)

(* Three senders share one egress: the backlog peaks well below capacity,
   so nothing drops — invisible to the drop counters, visible in
   atm_switch_queue_peak. *)
let queue_peak_near_miss () =
  Metrics.reset ();
  let sim = Sim.create () in
  let config =
    { Atm.Network.default_config with switch_queue_capacity = 16 }
  in
  let net =
    Atm.Network.create_topo sim ~topology:(Atm.Network.Single 4) config
  in
  let conns =
    List.map (fun a -> (a, Atm.Network.connect net ~a ~b:3)) [ 0; 1; 2 ]
  in
  List.iter
    (fun h -> Atm.Network.attach_rx net ~host:h (fun _ -> ()))
    [ 0; 1; 2; 3 ];
  let slot = Atm.Link.cell_time (Atm.Network.uplink net ~host:0) in
  List.iter
    (fun (a, conn) ->
      for j = 0 to 5 do
        Sim.schedule_drop_at ~label:"flowobs.tx" sim
          (1 + (j * slot))
          (fun () ->
            ignore
              (Atm.Network.send net ~host:a
                 (Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:(j = 5)
                    zero_payload)
                : bool))
      done)
    conns;
  Sim.run ~until:(Sim.ms 1) sim;
  let sw = Atm.Network.switch_at net 0 in
  Alcotest.(check int) "no drops" 0 (Atm.Switch.port_drops sw ~port:3);
  let peak = Atm.Switch.queue_peak sw ~port:3 in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.0f is a real near-miss" peak)
    true
    (peak >= 6. && peak < 16.);
  Alcotest.(check bool) "idle ports saw no backlog" true
    (Atm.Switch.queue_peak sw ~port:0 <= 1.)

(* --- congestion atlas self-containment ---------------------------------- *)

let atlas_selfcontained () =
  Metrics.reset ();
  Atm.Flowstat.configure ~exact_flows:1 ~k:4 ();
  Pathrec.start ();
  Pathrec.clear ();
  Fun.protect ~finally:(fun () ->
      Atm.Flowstat.disable ();
      Pathrec.stop ();
      Pathrec.clear ())
  @@ fun () ->
  let sim = Sim.create () in
  let net =
    Atm.Network.create_topo sim ~topology:clos2 Atm.Network.default_config
  in
  let c03 = Atm.Network.connect net ~a:0 ~b:3 in
  let c12 = Atm.Network.connect net ~a:1 ~b:2 in
  List.iter
    (fun h -> Atm.Network.attach_rx net ~host:h (fun _ -> ()))
    [ 0; 1; 2; 3 ];
  let slot = Atm.Link.cell_time (Atm.Network.uplink net ~host:0) in
  List.iter
    (fun (host, conn) ->
      for j = 0 to 7 do
        Sim.schedule_drop_at ~label:"flowobs.tx" sim
          (1 + (j * slot))
          (fun () ->
            ignore
              (Atm.Network.send net ~host
                 (Atm.Cell.make ~vci:conn.Atm.Network.side_a.tx_vci ~eop:(j = 7)
                    zero_payload)
                : bool))
      done)
    [ (0, c03); (1, c12) ];
  Sim.run ~until:(Sim.ms 1) sim;
  let html = Atm.Atlas.section net in
  Alcotest.(check bool) "utilization heatmap rendered" true
    (contains html "Output-link utilization");
  Alcotest.(check bool) "flow table carries the sender-0 flow" true
    (contains html (Printf.sprintf "0:3:%d," c03.Atm.Network.side_a.tx_vci));
  Alcotest.(check bool) "the over-threshold flow reads as sketched" true
    (contains html "sketched");
  Alcotest.(check bool) "hop-latency quantiles rendered" true
    (contains html "Per-stage hop latency");
  (* self-contained: inline styles only, no scripts, no external refs *)
  List.iter
    (fun banned ->
      Alcotest.(check bool)
        (Printf.sprintf "no %S" banned)
        false (contains html banned))
    [ "http://"; "https://"; "<script"; "src="; "<link"; "@import" ]

let () =
  Alcotest.run "flowobs"
    [
      ( "topk",
        [
          Alcotest.test_case "error bounds vs exact counts" `Quick topk_bounds;
          Alcotest.test_case "negative weights" `Quick topk_negative;
        ] );
      ( "flowstat",
        [
          Alcotest.test_case "exact per-hop tables" `Quick flowstat_exact;
          Alcotest.test_case "metric dump escaping" `Quick metric_escaping;
        ] );
      ( "pathrec",
        [
          Alcotest.test_case "train = per-cell under sampling" `Quick
            path_identity;
        ] );
      ( "switch",
        [
          Alcotest.test_case "near-miss queue peak" `Quick queue_peak_near_miss;
        ] );
      ( "atlas",
        [
          Alcotest.test_case "self-contained HTML" `Quick atlas_selfcontained;
        ] );
    ]
