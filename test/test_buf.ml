(* Property tests for the zero-copy buffer layer: slice algebra, counted
   copies, and the span variants of CRC-32 and the Internet checksum
   agreeing with their contiguous versions over randomized slice shapes.
   Randomness comes from the deterministic Engine.Rng, so every run sees
   the same shapes. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* cut [data] into randomly many independent views and concatenate them
   back: logically equal to [data], physically fragmented. Half the time
   the result is additionally buried in padding and recovered with [sub],
   exercising the offset arithmetic of every span consumer. *)
let random_shape rng data =
  let len = Bytes.length data in
  if len = 0 then Buf.empty
  else begin
    let rec cuts pos acc =
      if pos >= len then List.rev acc
      else
        let n = 1 + Rng.int rng (min 64 (len - pos)) in
        cuts (pos + n) (Buf.of_bytes_sub data ~pos ~len:n :: acc)
    in
    let frag = Buf.concat (cuts 0 []) in
    if Rng.bool rng then begin
      let pad_l = Rng.int rng 16 and pad_r = Rng.int rng 16 in
      Buf.sub
        (Buf.concat [ Buf.alloc pad_l; frag; Buf.alloc pad_r ])
        ~pos:pad_l ~len
    end
    else frag
  end

(* --- slice algebra -------------------------------------------------- *)

let test_shape_preserves_content () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let data = Rng.bytes rng (Rng.int rng 600) in
    let b = random_shape rng data in
    checki "length" (Bytes.length data) (Buf.length b);
    checkb "content" true (Buf.equal_bytes b data)
  done

let test_sub_concat_are_uncounted () =
  let rng = Rng.create 12 in
  let data = Rng.bytes rng 4_096 in
  let before = Buf.copies_total () in
  for _ = 1 to 50 do
    ignore (random_shape rng data)
  done;
  checki "no counted copies from sub/concat" before (Buf.copies_total ())

(* --- span-vs-contiguous equivalence --------------------------------- *)

let test_crc32_span_equivalence () =
  let rng = Rng.create 21 in
  for _ = 1 to 200 do
    let data = Rng.bytes rng (Rng.int rng 2_000) in
    check Alcotest.int32 "crc32 over spans = crc32 contiguous"
      (Atm.Crc32.digest_bytes data)
      (Atm.Crc32.digest_buf (random_shape rng data))
  done

let test_internet_checksum_span_equivalence () =
  let rng = Rng.create 22 in
  for _ = 1 to 200 do
    (* lengths of both parities: spans may split on odd boundaries, which
       is exactly what the parity-tracking fold must get right *)
    let data = Rng.bytes rng (1 + Rng.int rng 1_999) in
    checki "checksum over spans = checksum contiguous"
      (Ipstack.Checksum.compute_bytes data)
      (Ipstack.Checksum.compute_buf (random_shape rng data))
  done

(* --- AAL5 over randomized slice shapes ------------------------------ *)

let test_aal5_roundtrip_over_shapes () =
  let rng = Rng.create 31 in
  for _ = 1 to 100 do
    let data = Rng.bytes rng (Rng.int rng 5_000) in
    let cells = Atm.Aal5.segment ~vci:5 (random_shape rng data) in
    let r = Atm.Aal5.Reassembler.create () in
    let out =
      List.fold_left
        (fun acc c ->
          match Atm.Aal5.Reassembler.push r c with Some x -> Some x | None -> acc)
        None cells
    in
    match out with
    | Some (Ok got) -> checkb "payload intact" true (Buf.equal_bytes got data)
    | _ -> Alcotest.fail "reassembly failed"
  done

(* --- counted copies ------------------------------------------------- *)

let test_copy_into_counts () =
  let rng = Rng.create 41 in
  let data = Rng.bytes rng 333 in
  let b = random_shape rng data in
  let layer = "test_buf" in
  let before_copies =
    Option.value ~default:0
      (Metrics.counter_value "buf_copies_total" [ ("layer", layer) ])
  in
  let dst = Bytes.create 333 in
  Buf.copy_into ~layer b ~dst ~dst_pos:0;
  check Alcotest.bytes "copy_into materializes the slice" data dst;
  checki "one counted copy" (before_copies + 1)
    (Option.value ~default:0
       (Metrics.counter_value "buf_copies_total" [ ("layer", layer) ]));
  checkb "bytes counted" true
    (Option.value ~default:0
       (Metrics.counter_value "buf_copy_bytes_total" [ ("layer", layer) ])
    >= 333)

let () =
  Alcotest.run "buf"
    [
      ( "slices",
        [
          Alcotest.test_case "random shapes preserve content" `Quick
            test_shape_preserves_content;
          Alcotest.test_case "sub/concat are zero-copy" `Quick
            test_sub_concat_are_uncounted;
          Alcotest.test_case "copy_into is counted" `Quick test_copy_into_counts;
        ] );
      ( "span-equivalence",
        [
          Alcotest.test_case "crc32" `Quick test_crc32_span_equivalence;
          Alcotest.test_case "internet checksum" `Quick
            test_internet_checksum_span_equivalence;
          Alcotest.test_case "aal5 roundtrip over shapes" `Quick
            test_aal5_roundtrip_over_shapes;
        ] );
    ]
