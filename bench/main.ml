(* The benchmark harness:

   1. regenerates every table and figure of the paper (the simulated
      experiments of lib/experiments) — the rows/series the paper reports;
   2. runs one Bechamel wall-clock micro-benchmark per table/figure,
      measuring the hot simulation path that experiment exercises, so
      regressions in the simulator itself are visible.

   Set UNET_BENCH_FULL=1 for full-size experiment runs (several minutes);
   the default quick sizes reproduce the same shapes in well under a
   minute. *)

open Bechamel
open Toolkit

(* --- micro-benchmark workloads ------------------------------------- *)

let payload = Bytes.init 1_500 (fun i -> Char.chr (i mod 256))

(* table1: the SBA-100 does AAL5 CRC in software — CRC-32 over a 1500-byte
   buffer is its hot loop *)
let bench_crc () = ignore (Atm.Crc32.digest_bytes payload)

(* table2/fig5: the machine comparison stands on the event engine; one
   schedule+fire cycle is its unit of work *)
let bench_sim_events =
  let sim = Engine.Sim.create () in
  fun () ->
    for _ = 1 to 100 do
      ignore (Engine.Sim.schedule sim ~delay:1 (fun () -> ()))
    done;
    Engine.Sim.run sim

(* table3/fig3: every message crosses AAL5 segmentation + reassembly *)
let bench_aal5 =
  let r = Atm.Aal5.Reassembler.create () in
  fun () ->
    List.iter
      (fun c -> ignore (Atm.Aal5.Reassembler.push r c))
      (Atm.Aal5.segment ~vci:1 (Engine.Buf.of_bytes payload))

(* fig4: the descriptor rings are the per-message fixed cost *)
let bench_ring =
  let ring = Unet.Ring.create ~capacity:64 in
  fun () ->
    for i = 0 to 31 do
      ignore (Unet.Ring.push ring i)
    done;
    for _ = 0 to 31 do
      ignore (Unet.Ring.pop ring)
    done

(* fig6/fig9: the IP suite checksums every packet *)
let bench_checksum () = ignore (Ipstack.Checksum.compute_bytes payload)

(* fig7: the kernel path's mbuf chain computation *)
let bench_mbuf () =
  for len = 1_000 to 1_031 do
    ignore (Host.Mbuf.handling_cost Host.Mbuf.sunos_config len)
  done

(* fig8: TCP streams ride the communication-segment blit path *)
let bench_segment =
  let seg = Unet.Segment.create ~size:16_384 in
  fun () ->
    Unet.Segment.write seg ~off:512 ~src:payload ~src_pos:0 ~len:1_500;
    ignore (Unet.Segment.read seg ~off:512 ~len:1_500)

(* fig5: the deterministic RNG feeding every workload generator *)
let bench_rng =
  let rng = Engine.Rng.create 1 in
  fun () ->
    for _ = 1 to 100 do
      ignore (Engine.Rng.int rng 1_000_000)
    done

let micro_tests =
  Test.make_grouped ~name:"simulator"
    [
      Test.make ~name:"table1:crc32-1500B" (Staged.stage bench_crc);
      Test.make ~name:"table2:sim-100-events" (Staged.stage bench_sim_events);
      Test.make ~name:"table3:aal5-sar-1500B" (Staged.stage bench_aal5);
      Test.make ~name:"fig3:aal5-sar-1500B" (Staged.stage bench_aal5);
      Test.make ~name:"fig4:ring-32-ops" (Staged.stage bench_ring);
      Test.make ~name:"fig5:rng-100-draws" (Staged.stage bench_rng);
      Test.make ~name:"fig6:checksum-1500B" (Staged.stage bench_checksum);
      Test.make ~name:"fig7:mbuf-chains" (Staged.stage bench_mbuf);
      Test.make ~name:"fig8:segment-blit-1500B" (Staged.stage bench_segment);
      Test.make ~name:"fig9:checksum-1500B" (Staged.stage bench_checksum);
    ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  Format.printf
    "@.== Bechamel micro-benchmarks (wall-clock of the simulator) ==@.@.";
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> Format.printf "  (no monotonic clock results)@."
  | Some per_test ->
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
      |> List.sort compare
      |> List.iter (fun (name, ols) ->
             match Analyze.OLS.estimates ols with
             | Some [ ns ] -> Format.printf "  %-36s %12.1f ns/run@." name ns
             | _ -> Format.printf "  %-36s (no estimate)@." name)

(* --- experiment regeneration ---------------------------------------- *)

let metrics_dir = "bench-metrics"
let snapshot_dir = "bench-snapshots"

(* A machine-diffable snapshot of one experiment run: the virtual-time
   curves, the claim checks, and the zero-copy layer's copy totals. All
   values are deterministic given the simulator, so `benchdiff` can
   compare snapshots across commits with a tight tolerance. *)
let write_snapshot name quick (o : Experiments.Registry.outcome) =
  let open Engine.Json in
  let series =
    Obj
      (List.map
         (fun (label, pts) ->
           (label, List (List.map (fun (x, y) -> List [ Num x; Num y ]) pts)))
         o.Experiments.Registry.o_series)
  in
  let checks =
    Obj (List.map (fun (what, ok) -> (what, Bool ok)) o.o_checks)
  in
  (* experiments may declare extra gated members (direction-aware
     benchdiff rules, as BENCH_engine-throughput.json uses); experiments
     without any keep their historical snapshot shape byte-identical *)
  let members =
    List.map (fun (k, (v, _)) -> (k, Num v)) o.o_members
    @
    match o.o_members with
    | [] -> []
    | ms ->
        [
          ( "gates",
            Engine.Benchgate.gates_json (List.map (fun (k, (_, g)) -> (k, g)) ms)
          );
        ]
  in
  let path = Filename.concat snapshot_dir ("BENCH_" ^ name ^ ".json") in
  Engine.Json.write_file path
    (Obj
       ([
          ("name", Str name);
          ("quick", Bool quick);
          ("series", series);
          ("checks", checks);
          ("buf_copies_total", Num (float_of_int (Engine.Buf.copies_total ())));
          ( "buf_copy_bytes_total",
            Num (float_of_int (Engine.Buf.copy_bytes_total ())) );
        ]
       @ members));
  path

let run_experiments quick =
  (try Sys.mkdir metrics_dir 0o755 with Sys_error _ -> ());
  (try Sys.mkdir snapshot_dir 0o755 with Sys_error _ -> ());
  List.iter
    (fun (e : Experiments.Registry.experiment) ->
      Format.printf "@.== %s: %s ==@.@." e.name e.description;
      Engine.Metrics.reset ();
      let o = e.run ~quick in
      o.Experiments.Registry.o_print ();
      List.iter
        (fun (what, ok) ->
          Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") what)
        o.o_checks;
      (* registry snapshot for this figure: counters since the reset above,
         including the per-layer buf_copies_total / buf_copy_bytes_total
         series of the zero-copy buffer layer *)
      let path = Filename.concat metrics_dir (e.name ^ ".prom") in
      Engine.Metrics.write_file path;
      let snap = write_snapshot e.name quick o in
      Format.printf "  metrics snapshot: %s (buf copies: %d)@." path
        (Engine.Buf.copies_total ());
      Format.printf "  bench snapshot: %s@." snap)
    Experiments.Registry.all

let () =
  let quick = Sys.getenv_opt "UNET_BENCH_FULL" = None in
  Format.printf "U-Net reproduction benchmark harness (%s mode)@."
    (if quick then "quick; set UNET_BENCH_FULL=1 for paper-scale sizes"
     else "full");
  run_experiments quick;
  run_micro ();
  Format.printf "@.done.@."
