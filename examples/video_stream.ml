(* The custom-protocol argument of §1: streaming MPEG-like video with an
   application-specific retransmission policy, built directly on raw U-Net.

   Frames alternate between key frames (I, must arrive: retransmitted until
   acknowledged) and delta frames (P, time-sensitive: never retransmitted —
   a late delta is useless). A kernel stack could only offer one reliability
   policy for the whole connection; user-level access lets the protocol
   embody knowledge of frame interdependencies. Run:

     dune exec examples/video_stream.exe
*)

open Engine

let n_frames = 120
let i_frame_every = 12
let i_frame_size = 3_000
let p_frame_size = 800
let frame_interval = Sim.ms 3 (* a brisk synthetic stream *)
let buffer_size = 4_160

(* header: [frame_no u32][kind u8] *)
let mk_frame ~no ~key size =
  let b = Bytes.create size in
  Bytes.set_int32_be b 0 (Int32.of_int no);
  Bytes.set_uint8 b 4 (if key then 1 else 0);
  b

let () =
  let cluster = Cluster.create ~hosts:2 () in
  let tx = Cluster.node cluster 0 and rx = Cluster.node cluster 1 in
  let ep_tx, alloc = Cluster.simple_endpoint ~buffer_size tx in
  let ep_rx, _ = Cluster.simple_endpoint ~free_buffers:40 ~buffer_size rx in
  let ch_tx, ch_rx = Unet.connect_pair (tx.unet, ep_tx) (rx.unet, ep_rx) in

  (* inject cell loss: the switch-bound fiber drops 1% of cells, so a
     meaningful share of multi-cell frames dies in reassembly *)
  Atm.Link.set_loss (Atm.Network.uplink cluster.net ~host:0) (Rng.create 7)
    ~p:0.01;

  let key_acked = Hashtbl.create 32 in
  let got_key = ref 0 and got_delta = ref 0 and retx = ref 0 in

  (* receiver: ack key frames (single-cell acks), consume deltas silently *)
  ignore
    (Proc.spawn ~name:"viewer" cluster.sim (fun () ->
         let rec loop () =
           let d = Unet.recv rx.unet ep_rx in
           (match d.rx_payload with
           | Unet.Desc.Buffers ((off, _) :: _ as bufs) ->
               let hdr = Unet.Segment.read ep_rx.segment ~off ~len:5 in
               let no = Int32.to_int (Bytes.get_int32_be hdr 0) in
               let key = Bytes.get_uint8 hdr 4 = 1 in
               if key then begin
                 incr got_key;
                 (* single-cell ack naming the frame *)
                 let ack = Bytes.create 4 in
                 Bytes.set_int32_be ack 0 (Int32.of_int no);
                 ignore
                   (Unet.send rx.unet ep_rx
                      (Unet.Desc.tx ~chan:ch_rx
                         (Unet.Desc.Inline (Buf.of_bytes ack))))
               end
               else incr got_delta;
               List.iter
                 (fun (o, _) ->
                   ignore
                     (Unet.provide_free_buffer rx.unet ep_rx ~off:o
                        ~len:buffer_size))
                 bufs
           | _ -> ());
           loop ()
         in
         loop ()));

  (* sender: stream frames; retransmit unacked key frames on a deadline *)
  ignore
    (Proc.spawn ~name:"streamer" cluster.sim (fun () ->
         let send_frame frame =
           let size = Bytes.length frame in
           let off, _ = Option.get (Unet.Segment.Allocator.alloc alloc) in
           Unet.Segment.write ep_tx.segment ~off ~src:frame ~src_pos:0 ~len:size;
           (match
              Unet.send tx.unet ep_tx
                (Unet.Desc.tx ~chan:ch_tx (Unet.Desc.Buffers [ (off, size) ]))
            with
           | Ok () -> ()
           | Error e -> Fmt.failwith "send: %a" Unet.pp_error e);
           Unet.Segment.Allocator.free alloc (off, buffer_size)
         in
         let drain_acks () =
           let rec go () =
             match Unet.poll tx.unet ep_tx with
             | Some { Unet.Desc.rx_payload = Unet.Desc.Inline b; _ } ->
                 Hashtbl.replace key_acked (Int32.to_int (Buf.get_uint32_be b 0))
                   true;
                 go ()
             | Some _ -> go ()
             | None -> ()
           in
           go ()
         in
         for no = 1 to n_frames do
           let key = no mod i_frame_every = 1 in
           let frame =
             mk_frame ~no ~key (if key then i_frame_size else p_frame_size)
           in
           send_frame frame;
           (* key frames: retransmit every 500 us until acknowledged;
              delta frames: fire and forget *)
           if key then begin
             Hashtbl.replace key_acked no false;
             let rec ensure tries =
               drain_acks ();
               if not (Hashtbl.find key_acked no) then begin
                 Proc.sleep cluster.sim ~time:(Sim.us 500);
                 drain_acks ();
                 if not (Hashtbl.find key_acked no) then begin
                   incr retx;
                   send_frame frame;
                   if tries < 50 then ensure (tries + 1)
                 end
               end
             in
             ensure 0
           end;
           Proc.sleep cluster.sim ~time:frame_interval
         done));

  Sim.run ~until:(Sim.sec 5) cluster.sim;
  let keys = n_frames / i_frame_every in
  Format.printf
    "streamed %d frames over a 1%%-cell-loss fiber:@.  key frames   : %d/%d \
     delivered (%d retransmissions — all recovered)@.  delta frames : %d/%d \
     delivered (lost ones skipped, never retransmitted)@."
    n_frames !got_key keys !retx !got_delta (n_frames - keys);
  assert (!got_key >= keys)
