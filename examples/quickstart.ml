(* Quickstart: the smallest complete U-Net program.

   Two simulated workstations with SBA-200 interfaces running the U-Net
   firmware are wired to an ATM switch. Each creates an endpoint, the OS
   signalling service connects them, and they exchange messages directly —
   no kernel on the data path. Run with:

     dune exec examples/quickstart.exe
*)

open Engine

let () =
  (* The testbed: two SS-20s around one ASX-200-style switch. *)
  let cluster = Cluster.create ~hosts:2 () in
  let alice = Cluster.node cluster 0 in
  let bob = Cluster.node cluster 1 in

  (* Each process creates an endpoint: a communication segment plus
     send/receive/free queues. [simple_endpoint] also posts receive buffers
     to the free queue. *)
  let ep_a, _alloc_a = Cluster.simple_endpoint alice in
  let ep_b, _alloc_b = Cluster.simple_endpoint bob in

  (* The OS service performs route discovery and registers the tags. *)
  let chan_a, chan_b = Unet.connect_pair (alice.unet, ep_a) (bob.unet, ep_b) in

  (* Bob: block on the receive queue (the select-like model), reply. *)
  ignore
    (Proc.spawn ~name:"bob" cluster.sim (fun () ->
         let d = Unet.recv bob.unet ep_b in
         (match d.rx_payload with
         | Unet.Desc.Inline msg ->
             Format.printf "bob   : got %S at t=%.1f us@."
               (Bytes.to_string (Buf.to_bytes ~layer:"app" msg))
               (Sim.to_us (Sim.now cluster.sim))
         | Unet.Desc.Buffers _ -> assert false);
         match
           Unet.send bob.unet ep_b
             (Unet.Desc.tx ~chan:chan_b
                (Unet.Desc.Inline (Buf.of_string "hi alice")))
         with
         | Ok () -> ()
         | Error e -> Fmt.failwith "bob: %a" Unet.pp_error e));

  (* Alice: send a small message — it travels inline in the descriptor,
     single-cell on the wire — then wait for the answer. *)
  ignore
    (Proc.spawn ~name:"alice" cluster.sim (fun () ->
         let t0 = Sim.now cluster.sim in
         (match
            Unet.send alice.unet ep_a
              (Unet.Desc.tx ~chan:chan_a
                 (Unet.Desc.Inline (Buf.of_string "hi bob")))
          with
         | Ok () -> ()
         | Error e -> Fmt.failwith "alice: %a" Unet.pp_error e);
         let d = Unet.recv alice.unet ep_a in
         (match d.rx_payload with
         | Unet.Desc.Inline msg ->
             Format.printf "alice : got %S — round trip %.1f us@."
               (Bytes.to_string (Buf.to_bytes ~layer:"app" msg))
               (Sim.to_us (Sim.now cluster.sim - t0))
         | Unet.Desc.Buffers _ -> assert false)));

  Sim.run cluster.sim;
  Format.printf "done.@."
