lib/ipstack/tcp.mli: Engine Format Host Ipv4
