lib/ipstack/tcp.ml: Bytes Checksum Engine Float Fmt Format Hashtbl Host Int32 Ipv4 List Logs Queue Sim Sync
