lib/ipstack/checksum.mli:
