lib/ipstack/flow_demux.ml: Bytes Engine Fmt Hashtbl Host Int32 List Proc Queue Sim Unet
