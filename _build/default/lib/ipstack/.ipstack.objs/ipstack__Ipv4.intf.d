lib/ipstack/ipv4.mli: Engine Host Iface
