lib/ipstack/udp.ml: Bytes Checksum Engine Float Fmt Hashtbl Host Iface Ipv4 Option Proc Queue Sim Sync
