lib/ipstack/udp.mli: Engine Host Ipv4
