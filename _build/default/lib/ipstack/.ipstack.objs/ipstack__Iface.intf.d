lib/ipstack/iface.mli: Engine Host Unet
