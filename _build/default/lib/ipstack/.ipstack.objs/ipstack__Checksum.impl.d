lib/ipstack/checksum.ml: Bytes
