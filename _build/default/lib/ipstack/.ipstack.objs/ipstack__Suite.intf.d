lib/ipstack/suite.mli: Engine Host Iface Ipv4 Tcp Udp Unet
