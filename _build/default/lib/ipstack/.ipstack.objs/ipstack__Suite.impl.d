lib/ipstack/suite.ml: Engine Host Iface Ipv4 Tcp Udp Unet
