lib/ipstack/iface.ml: Bytes Engine Float Fmt Host Int32 List Proc Queue Sim Sync Unet
