lib/ipstack/ipv4.ml: Bytes Checksum Fmt Iface Int32
