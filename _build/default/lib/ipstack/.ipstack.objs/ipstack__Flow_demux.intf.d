lib/ipstack/flow_demux.mli: Unet
