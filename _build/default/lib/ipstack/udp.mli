(** UDP (§7.6): port demultiplexing over IP plus an optional 16-bit
    checksum. The U-Net instantiation charges the low user-level path cost
    (with the checksum foldable into the copy) and applies back-pressure to
    the sender; the kernel instantiation charges the full SunOS path
    including mbuf handling, silently drops on transmit-queue overflow
    (§7.4), and enforces the bounded socket receive buffer whose overflow
    loses packets (§7.3). *)

type costs = {
  app_send_ns : int -> int;
      (** charged to the calling process in [sendto] (payload length -> ns):
          the user-level protocol work over U-Net, or the syscall + user-to-
          kernel copy of the kernel path *)
  stack_send_ns : int -> int;
      (** charged on the serialized stack process: zero-ish over U-Net
          (doorbell is charged by U-Net itself), mbuf + protocol + driver
          in the kernel *)
  stack_recv_ns : int -> int;
  app_recv_ns : int -> int;  (** charged in [recvfrom] *)
  backpressure : bool;
      (** sender blocks when the interface queue fills (user-level path)
          instead of silently dropping (kernel device queue, §7.4) *)
}

val unet_costs : costs
(** ≈4.5 µs per operation at user level: the paper's 138 µs small-message
    UDP round trip over the 120 µs multi-cell U-Net base. *)

val kernel_costs : Host.Kernel.config -> costs

type stack

val attach : ?checksum:bool -> ?sockbuf_limit:int -> costs:costs -> Ipv4.t -> stack
(** [sockbuf_limit] bounds each socket's receive buffer (bytes); arriving
    datagrams that would overflow are dropped and counted. *)

val ip : stack -> Ipv4.t

type socket

val socket : stack -> port:int -> socket
(** Raises if the port is taken. *)

val close : socket -> unit

val sendto : socket -> dst:int -> dst_port:int -> bytes -> unit
(** Datagram send; raises on payloads beyond the IP MTU (UDP relies on the
    application to segment, §7.5). *)

val recvfrom : socket -> int * int * bytes
(** Blocking receive: (source address, source port, payload). *)

val recvfrom_timeout :
  socket -> timeout:Engine.Sim.time -> (int * int * bytes) option

val pending : socket -> int

val sockbuf_drops : stack -> int
(** Datagrams lost to receive-buffer overflow (the Figure 7 kernel losses). *)

val checksum_failures : stack -> int
val datagrams_sent : stack -> int
val datagrams_delivered : stack -> int
