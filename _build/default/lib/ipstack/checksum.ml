let compute b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.compute: range out of bounds";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + (Bytes.get_uint8 b !i lsl 8) + Bytes.get_uint8 b (!i + 1);
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 b !i lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let compute_bytes b = compute b ~pos:0 ~len:(Bytes.length b)

let verify b ~pos ~len = compute b ~pos ~len = 0

let cost_ns len = len * 10
