(** TCP (§7.7-7.8): sliding-window reliable byte streams with slow start,
    congestion avoidance, fast retransmit, Jacobson RTT estimation and
    go-back-N recovery — implemented once and instantiated both at user
    level over U-Net (2048-byte segments, 8 KB windows, 1 ms timers, no
    delayed acks) and as the kernel stack (9 KB segments, up to 64 KB
    windows, 500 ms timer granularity, 200 ms delayed acks). *)

type config = {
  mss : int;
  sndbuf : int;  (** send buffer; bounds data retained for retransmission *)
  rcvbuf : int;  (** receive buffer; bounds the advertised window *)
  granularity : Engine.Sim.time;
      (** protocol timer granularity: every timeout rounds up to a multiple
          (1 ms for U-Net TCP vs the BSD pr_slow_timeout 500 ms, §7.8) *)
  delayed_ack : bool;  (** delay the ack of every second packet (§7.8) *)
  delack_timeout : Engine.Sim.time;
  initial_rto : Engine.Sim.time;
  max_rto : Engine.Sim.time;
  send_cost : int -> int;  (** per-segment processing, payload len -> ns *)
  recv_cost : int -> int;
}

val unet_config : ?window:int -> unit -> config
(** The paper's standard U-Net TCP configuration ([window] defaults to the
    8 KB of Figure 8). *)

val kernel_config :
  ?window:int -> ?mss:int -> Host.Kernel.config -> config
(** Kernel TCP: 64 KB window and 9148-byte segments over ATM by default. *)

type stack

val attach : Ipv4.t -> config -> stack
val ip : stack -> Ipv4.t

type t
(** A connection endpoint. *)

type listener

val listen : stack -> port:int -> listener
val accept : listener -> t
(** Block until a connection is established on this port. *)

val connect : stack -> dst:int -> dst_port:int -> ?src_port:int -> unit -> t
(** Active open; blocks through the three-way handshake. *)

val send : t -> bytes -> unit
(** Append to the stream; blocks while the send buffer is full. *)

val recv : t -> max:int -> bytes
(** Block for at least one byte; returns up to [max]. Empty result = EOF. *)

val recv_exact : t -> len:int -> bytes
(** Read exactly [len] bytes (raises [End_of_file] on premature EOF). *)

val close : t -> unit
(** Send FIN once buffered data drains; returns without waiting. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

val state : t -> state
val pp_state : Format.formatter -> state -> unit

(* statistics *)
val retransmits : t -> int
val fast_retransmits : t -> int
val timeouts : t -> int
val bytes_sent : t -> int
val bytes_received : t -> int

val unacked : t -> int
(** Stream bytes sent but not yet acknowledged by the peer. *)

val cwnd : t -> int
val srtt_us : t -> float
