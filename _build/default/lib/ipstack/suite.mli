(** Pre-wired protocol stacks for the paper's three IP paths:

    - {!unet_pair}: user-level UDP/TCP over a U-Net channel (§7) — low fixed
      costs, 1 ms timers, 8 KB TCP windows, no socket-buffer bound.
    - {!kernel_atm_pair}: the SunOS kernel path over the vendor ATM driver
      (Fore firmware NI) — mbuf handling, 52 KB socket buffers, 500 ms
      timers, 64 KB TCP windows, 9 KB segments.
    - {!kernel_ethernet_pair}: the same kernel path over 10 Mbit/s Ethernet. *)

type t = {
  iface : Iface.t;
  ip : Ipv4.t;
  udp : Udp.stack;
  tcp : Tcp.stack;
}

val unet_pair :
  ?tcp_window:int ->
  ?udp_checksum:bool ->
  Unet.t ->
  Unet.t ->
  t * t
(** Both hosts must carry an SBA-200 U-Net NI. Addresses are the U-Net host
    indices. *)

val kernel_atm_pair :
  ?tcp_window:int ->
  ?kcfg:Host.Kernel.config ->
  Unet.t ->
  Unet.t ->
  t * t
(** The U-Net instances should sit on Fore-firmware NIs
    ([Cluster.Sba200_fore]) for the paper's kernel-over-ATM numbers. *)

val kernel_ethernet_pair :
  ?tcp_window:int ->
  ?kcfg:Host.Kernel.config ->
  sim:Engine.Sim.t ->
  cpu_a:Host.Cpu.t ->
  cpu_b:Host.Cpu.t ->
  addr_a:int ->
  addr_b:int ->
  unit ->
  t * t
