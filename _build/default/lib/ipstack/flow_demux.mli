(** The additional demultiplexing level the paper sketches as work in
    progress (§7.1): many applications share one IP-over-ATM channel, and
    arriving packets are demultiplexed on an IPv6-style
    [(flow id, source address)] tag. Tags that do not resolve to a local
    U-Net destination fall through to the kernel communication endpoint for
    generalized processing — which is what keeps the scheme interoperable.

    Packets carry an 8-byte flow header: [flow_id u32][src_addr u32]. *)

type t

val pair :
  ?mtu:int -> Unet.t -> Unet.t -> local_addr:int -> remote_addr:int -> t * t
(** One shared U-Net channel between two hosts; both sides demultiplex. *)

val local_addr : t -> int

val register_flow : t -> flow_id:int -> (src:int -> bytes -> unit) -> unit
(** Claim a flow id; its packets are delivered to the handler in the
    demultiplexer's process. Raises on a duplicate registration. *)

val unregister_flow : t -> flow_id:int -> unit

val set_kernel_handler : t -> (flow_id:int -> src:int -> bytes -> unit) -> unit
(** What "the kernel endpoint" does with unresolved tags (defaults to
    counting and dropping). Each fallback pays a full system call. *)

val send : t -> flow_id:int -> bytes -> unit
(** Send on the shared channel under a flow tag (blocking the caller for
    the usual staging costs). *)

val delivered : t -> int
(** Packets handed to registered flows. *)

val kernel_fallbacks : t -> int
(** Packets whose tag did not resolve locally. *)
