type t = {
  iface : Iface.t;
  ip : Ipv4.t;
  udp : Udp.stack;
  tcp : Tcp.stack;
}

let build ~iface ~addr ~udp_attach ~tcp_cfg =
  let ip = Ipv4.attach iface ~addr in
  let udp = udp_attach ip in
  let tcp = Tcp.attach ip tcp_cfg in
  { iface; ip; udp; tcp }

let unet_pair ?(tcp_window = 8 * 1024) ?(udp_checksum = true) ua ub =
  let ifa, ifb = Iface.unet_pair ~mtu:9_000 ua ub in
  let mk iface addr =
    build ~iface ~addr
      ~udp_attach:(fun ip ->
        Udp.attach ~checksum:udp_checksum ~costs:Udp.unet_costs ip)
      ~tcp_cfg:(Tcp.unet_config ~window:tcp_window ())
  in
  (mk ifa (Unet.host ua), mk ifb (Unet.host ub))

let kernel_atm_pair ?(tcp_window = 64 * 1024) ?(kcfg = Host.Kernel.sunos) ua
    ub =
  (* The vendor ATM driver fights the generic BSD buffer strategies (§7.2):
     its per-packet driver cost far exceeds the mature Ethernet driver's,
     which is what makes small-message latency over ATM *worse* than over
     Ethernet in Figure 6. *)
  let kcfg =
    { kcfg with Host.Kernel.driver_ns = kcfg.Host.Kernel.driver_ns + 50_000 }
  in
  let ifa, ifb = Iface.unet_pair ~mtu:9_188 ~encapsulation:true ua ub in
  let mk iface addr =
    build ~iface ~addr
      ~udp_attach:(fun ip ->
        Udp.attach ~checksum:true ~sockbuf_limit:kcfg.Host.Kernel.sockbuf_limit
          ~costs:(Udp.kernel_costs kcfg) ip)
      ~tcp_cfg:(Tcp.kernel_config ~window:tcp_window ~mss:9_148 kcfg)
  in
  (mk ifa (Unet.host ua), mk ifb (Unet.host ub))

let kernel_ethernet_pair ?(tcp_window = 64 * 1024)
    ?(kcfg = Host.Kernel.sunos) ~sim ~cpu_a ~cpu_b ~addr_a ~addr_b () =
  (* 10 Mbit/s Ethernet with a ~100 µs per-frame driver+interrupt cost and
     LAN propagation; frames beyond 1514 bytes fragment in the driver. *)
  let ifa, ifb =
    Iface.framed_pair ~sim ~cpu_a ~cpu_b ~bandwidth_mbps:10. ~wire_mtu:1_514
      ~per_frame_ns:100_000 ~propagation:(Engine.Sim.us 10) ~ip_mtu:9_000 ()
  in
  let mk iface addr =
    build ~iface ~addr
      ~udp_attach:(fun ip ->
        Udp.attach ~checksum:true ~sockbuf_limit:kcfg.Host.Kernel.sockbuf_limit
          ~costs:(Udp.kernel_costs kcfg) ip)
      ~tcp_cfg:(Tcp.kernel_config ~window:tcp_window ~mss:1_460 kcfg)
  in
  (mk ifa addr_a, mk ifb addr_b)
