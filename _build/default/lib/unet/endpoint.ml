type upcall_cond = Rx_nonempty | Rx_almost_full

type t = {
  ep_id : int;
  host : int;
  segment : Segment.t;
  tx_ring : Desc.tx Ring.t;
  rx_ring : Desc.rx Ring.t;
  free_ring : (int * int) Ring.t;
  emulated : bool;
  direct_access : bool;
  rx_cond : Engine.Sync.Condition.t;
  mutable channels : Channel.t list;
  mutable upcall : (upcall_cond * (unit -> unit)) option;
  mutable upcalls_enabled : bool;
  mutable rx_delivered : int;
  mutable drops_rx_full : int;
  mutable drops_no_free_buffer : int;
}

let create ~sim ~id ~host ~seg_size ~tx_slots ~rx_slots ~free_slots ~emulated
    ~direct_access =
  {
    ep_id = id;
    host;
    segment = Segment.create ~size:seg_size;
    tx_ring = Ring.create ~capacity:tx_slots;
    rx_ring = Ring.create ~capacity:rx_slots;
    free_ring = Ring.create ~capacity:free_slots;
    emulated;
    direct_access;
    rx_cond = Engine.Sync.Condition.create sim;
    channels = [];
    upcall = None;
    upcalls_enabled = true;
    rx_delivered = 0;
    drops_rx_full = 0;
    drops_no_free_buffer = 0;
  }

let find_channel t id = List.find_opt (fun c -> c.Channel.id = id) t.channels

(* Descriptors are modelled at 64 bytes apiece (big enough for the inline
   small-message optimization), which is what the queues pin. *)
let descriptor_bytes = 64

let pinned_bytes t =
  Segment.size t.segment
  + descriptor_bytes
    * (Ring.capacity t.tx_ring + Ring.capacity t.rx_ring
     + Ring.capacity t.free_ring)

let almost_full_threshold t = max 1 (Ring.capacity t.rx_ring - 2)

let fire_upcalls t ~was_empty =
  if t.upcalls_enabled then
    match t.upcall with
    | None -> ()
    | Some (Rx_nonempty, f) -> if was_empty then f ()
    | Some (Rx_almost_full, f) ->
        if Ring.length t.rx_ring >= almost_full_threshold t then f ()
