(** Communication channels: the registered message tags (§3.2). On an ATM
    substrate a tag is a transmit/receive VCI pair; the channel identifier
    returned to the application names the destination on outgoing messages
    and reports the origin on incoming ones. *)

type id = int

type t = {
  id : id;
  tx_vci : int;  (** tag placed on outgoing messages *)
  rx_vci : int;  (** tag incoming messages carry *)
  peer_host : int;
  peer_endpoint : int;
}

val pp : Format.formatter -> t -> unit
