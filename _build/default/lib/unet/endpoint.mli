(** An endpoint is a process's handle into the network (§3.1): a
    communication segment plus send, receive and free queues, together with
    the upcall state used for event-driven reception. *)

type upcall_cond =
  | Rx_nonempty  (** receive queue became non-empty *)
  | Rx_almost_full  (** receive queue is nearly overflowing *)

type t = {
  ep_id : int;
  host : int;
  segment : Segment.t;
  tx_ring : Desc.tx Ring.t;
  rx_ring : Desc.rx Ring.t;
  free_ring : (int * int) Ring.t;  (** free receive buffers: (offset, len) *)
  emulated : bool;  (** kernel-emulated endpoint (§3.5) *)
  direct_access : bool;  (** direct-access endpoint (§3.6) *)
  rx_cond : Engine.Sync.Condition.t;  (** wakes blocked receivers *)
  mutable channels : Channel.t list;
  mutable upcall : (upcall_cond * (unit -> unit)) option;
  mutable upcalls_enabled : bool;
  (* statistics *)
  mutable rx_delivered : int;
  mutable drops_rx_full : int;
  mutable drops_no_free_buffer : int;
}

val create :
  sim:Engine.Sim.t ->
  id:int ->
  host:int ->
  seg_size:int ->
  tx_slots:int ->
  rx_slots:int ->
  free_slots:int ->
  emulated:bool ->
  direct_access:bool ->
  t

val find_channel : t -> Channel.id -> Channel.t option

val pinned_bytes : t -> int
(** Pinned memory consumed: segment plus the queues' backing store. *)

val almost_full_threshold : t -> int
(** Receive-ring occupancy at which the [Rx_almost_full] upcall fires. *)

val fire_upcalls : t -> was_empty:bool -> unit
(** Invoke the registered upcall if its condition holds. Called by the mux
    after a delivery; [was_empty] tells whether the receive ring was empty
    beforehand (the [Rx_nonempty] edge). *)
