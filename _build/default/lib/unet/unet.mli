(** The U-Net user API on one host: endpoint creation with resource limits,
    OS-mediated channel registration, and the send/receive/poll/upcall
    operations of §3.1 — everything a process does to talk to the network
    without entering the kernel.

    All operations that model processing time must be called from inside an
    {!Engine.Proc.spawn}-ed process. *)

(* Building blocks, re-exported for NI backends and protocol layers. *)
module Desc = Desc
module Ring = Ring
module Segment = Segment
module Channel = Channel
module Endpoint = Endpoint
module Mux = Mux

(** The NI backend a U-Net instance drives: how descriptors are picked up,
    the host's demux table, and the backend's resource limits. Implemented
    by the models in [lib/ni]. *)
type backend = {
  nic_name : string;
  notify_tx : Endpoint.t -> unit;
      (** called after a descriptor lands in an endpoint's send queue *)
  mux : Mux.t;
  max_endpoints : int;  (** NI memory limits the endpoint count (§4.2.4) *)
  max_seg_size : int;  (** base-level bounds segment sizes (§3.3) *)
  doorbell_ns : int;  (** host-side cost of posting a send descriptor *)
  rx_poll_ns : int;  (** host-side cost of a receive-queue check *)
  kernel_op_ns : int;
      (** extra cost per operation on a kernel-emulated endpoint: a fast
          trap on the SBA-100, a full system call on the SBA-200 *)
  kernel_path : Engine.Sync.Server.t option;
      (** serializes kernel-emulated endpoint operations (§3.5) *)
}

type t

type error =
  | Too_many_endpoints
  | Pinned_exhausted
  | Segment_too_large
  | Queue_full  (** send queue full: back-pressure *)
  | Free_queue_full
  | Bad_channel  (** channel not registered on this endpoint: protection *)
  | Bad_buffer of string  (** descriptor points outside the segment *)
  | Inline_too_large
  | Not_direct_access

val pp_error : Format.formatter -> error -> unit

val create :
  cpu:Host.Cpu.t ->
  net:Atm.Network.t ->
  host:int ->
  ?pinned_capacity:int ->
  backend ->
  t

val sim : t -> Engine.Sim.t
val host : t -> int
val cpu : t -> Host.Cpu.t
val net : t -> Atm.Network.t
val pinned : t -> Host.Pinned.t

val create_endpoint :
  t ->
  ?emulated:bool ->
  ?direct_access:bool ->
  ?tx_slots:int ->
  ?rx_slots:int ->
  ?free_slots:int ->
  seg_size:int ->
  unit ->
  (Endpoint.t, error) result
(** Kernel-emulated endpoints don't count against the NI endpoint limit:
    the kernel multiplexes all of them onto one real endpoint it owns
    (created lazily on the first emulated connection, §3.5). They pay a
    system call per operation plus the kernel's staging copies. Direct-
    access endpoints accept sender-addressed deposits anywhere in their
    segment. *)

val destroy_endpoint : t -> Endpoint.t -> unit
(** Releases pinned memory and unregisters the endpoint's tags. *)

val endpoint_count : t -> int

val connect_pair :
  t * Endpoint.t -> t * Endpoint.t -> Channel.id * Channel.id
(** The operating-system signalling service (§3.2): route discovery, switch
    path setup, tag registration at both muxes. Returns each side's channel
    identifier for the new full-duplex channel. *)

val disconnect : t -> Endpoint.t -> Channel.id -> unit

val kernel_endpoint : t -> Endpoint.t option
(** The kernel's single real endpoint carrying all emulated-endpoint
    traffic, if any emulated endpoint has been connected (§3.5). *)

val send : t -> Endpoint.t -> Desc.tx -> (unit, error) result
(** Validate the descriptor (protection checks), charge the doorbell cost,
    and push it onto the send queue. [Error Queue_full] is the back-pressure
    signal; the caller retries after draining. *)

val poll : t -> Endpoint.t -> Desc.rx option
(** Non-blocking receive-queue check (charges the poll cost). *)

val recv : t -> Endpoint.t -> Desc.rx
(** Block until a message arrives (the UNIX-select-style model of §3.1). *)

val recv_timeout : t -> Endpoint.t -> timeout:Engine.Sim.time -> Desc.rx option

val provide_free_buffer :
  t -> Endpoint.t -> off:int -> len:int -> (unit, error) result
(** Hand a receive buffer (a range of the communication segment) to the NI
    via the free queue. *)

val set_upcall : t -> Endpoint.t -> Endpoint.upcall_cond -> (unit -> unit) -> unit
val clear_upcall : t -> Endpoint.t -> unit

val disable_upcalls : t -> Endpoint.t -> unit
(** Cheap critical-section entry: upcalls must be maskable at user level. *)

val enable_upcalls : t -> Endpoint.t -> unit
(** Re-enable upcalls; fires immediately if the pending condition holds. *)
