lib/unet/desc.ml: Atm Bytes List Printf
