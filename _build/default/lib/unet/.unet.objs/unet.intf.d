lib/unet/unet.mli: Atm Channel Desc Endpoint Engine Format Host Mux Ring Segment
