lib/unet/endpoint.mli: Channel Desc Engine Ring Segment
