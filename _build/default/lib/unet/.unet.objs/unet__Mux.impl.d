lib/unet/mux.ml: Bytes Channel Desc Endpoint Engine Hashtbl List Logs Printf Ring Segment
