lib/unet/unet.ml: Atm Bytes Channel Desc Endpoint Engine Fmt Format Hashtbl Host List Logs Mux Option Proc Queue Ring Segment Sim Sync
