lib/unet/ring.ml: Array
