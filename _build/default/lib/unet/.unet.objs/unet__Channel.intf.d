lib/unet/channel.mli: Format
