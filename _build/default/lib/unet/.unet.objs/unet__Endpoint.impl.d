lib/unet/endpoint.ml: Channel Desc Engine List Ring Segment
