lib/unet/channel.ml: Format
