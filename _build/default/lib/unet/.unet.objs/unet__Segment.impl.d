lib/unet/segment.ml: Bytes Hashtbl List Printf
