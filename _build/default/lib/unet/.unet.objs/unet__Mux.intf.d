lib/unet/mux.mli: Channel Endpoint
