lib/unet/desc.mli:
