lib/unet/ring.mli:
