lib/unet/segment.mli:
