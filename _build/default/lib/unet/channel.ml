type id = int

type t = {
  id : id;
  tx_vci : int;
  rx_vci : int;
  peer_host : int;
  peer_endpoint : int;
}

let pp fmt t =
  Format.fprintf fmt "chan%d(tx_vci=%d, rx_vci=%d, peer=host%d/ep%d)" t.id
    t.tx_vci t.rx_vci t.peer_host t.peer_endpoint
