lib/experiments/scaling.mli:
