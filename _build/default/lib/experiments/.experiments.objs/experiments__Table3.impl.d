lib/experiments/table3.ml: Cluster Common Engine Float Format List Printf Proc Sim Uam
