lib/experiments/fig3.ml: Common Engine Float Format Stats
