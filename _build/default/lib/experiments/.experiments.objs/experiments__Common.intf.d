lib/experiments/common.mli: Cluster Engine Format Ipstack Uam Unet
