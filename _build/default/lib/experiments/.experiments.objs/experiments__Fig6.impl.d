lib/experiments/fig6.ml: Common Engine Format Stats
