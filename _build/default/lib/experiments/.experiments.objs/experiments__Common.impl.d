lib/experiments/common.ml: Bytes Cluster Engine Float Fmt Format Host Ipstack List Proc Queue Sim Stats String Suite Tcp Uam Udp Unet
