lib/experiments/workload_nfs.ml: Bytes Common Engine Format Int32 Ipstack List Printf Proc Rng Sim Stats Suite Udp
