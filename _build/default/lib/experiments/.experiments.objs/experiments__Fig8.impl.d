lib/experiments/fig8.ml: Common Engine Float Format List Stats
