lib/experiments/registry.ml: Ablations Congestion Engine Fig3 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 List Resources Scaling Table1 Table2 Table3 Workload_nfs
