lib/experiments/fig4.ml: Atm Common Engine Float Format List Stats
