lib/experiments/fig9.ml: Common Engine Float Format Stats
