lib/experiments/ablations.mli:
