lib/experiments/workload_nfs.mli: Common
