lib/experiments/ablations.ml: Bytes Cluster Common Engine Float Fmt Format Host Ipstack List Ni Printf Proc Sim Uam Unet
