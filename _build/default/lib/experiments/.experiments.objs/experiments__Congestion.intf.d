lib/experiments/congestion.mli: Engine
