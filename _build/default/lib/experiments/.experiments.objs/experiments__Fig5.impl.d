lib/experiments/fig5.ml: Array Cluster Common Engine Format List Printf Splitc Uam
