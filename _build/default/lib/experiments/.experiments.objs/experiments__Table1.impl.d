lib/experiments/table1.ml: Atm Bytes Cluster Common Engine Float Fmt Format List Ni Printf Proc Sim Unet
