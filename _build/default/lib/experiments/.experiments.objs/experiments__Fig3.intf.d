lib/experiments/fig3.mli: Engine
