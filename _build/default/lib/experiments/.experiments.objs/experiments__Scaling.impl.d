lib/experiments/scaling.ml: Array Cluster Common Engine Format List Printf Proc Sim Splitc Uam
