lib/experiments/congestion.ml: Atm Bytes Cluster Common Engine Float Format Iface Ipstack Ipv4 List Ni Option Printf Proc Sim String Tcp
