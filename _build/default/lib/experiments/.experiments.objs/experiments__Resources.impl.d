lib/experiments/resources.ml: Array Cluster Common Format Host Ni Option Result Uam Unet
