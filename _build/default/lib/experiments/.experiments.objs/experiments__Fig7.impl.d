lib/experiments/fig7.ml: Common Engine Format List Stats
