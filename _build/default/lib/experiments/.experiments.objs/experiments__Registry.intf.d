lib/experiments/registry.mli:
