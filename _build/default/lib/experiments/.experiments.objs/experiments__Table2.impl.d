lib/experiments/table2.ml: Common Float Format List Printf Splitc
