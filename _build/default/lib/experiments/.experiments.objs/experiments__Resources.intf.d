lib/experiments/resources.mli:
