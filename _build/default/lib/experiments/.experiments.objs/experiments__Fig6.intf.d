lib/experiments/fig6.mli: Engine
