lib/experiments/fig7.mli: Engine
