lib/experiments/fig8.mli: Engine
