(** Table 3 (§8): the U-Net latency and bandwidth summary — round-trip
    latency and 4 KB-packet bandwidth for raw AAL5, Active Messages, UDP,
    TCP and the Split-C store. *)

type row = {
  protocol : string;
  paper_rtt_us : float;
  rtt_us : float;
  paper_bw_mbit : float;
  bw_mbit : float;
}

type t = { rows : row list }

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
