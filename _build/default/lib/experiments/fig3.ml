(* Figure 3: round-trip times as a function of message size. Three curves:
   raw U-Net, UAM single-cell requests (0-32 bytes), and UAM block
   transfers. Paper anchors: 65 µs single-cell; 120 µs at 48 bytes plus
   ~6 µs per additional cell; UAM = raw + ~6 µs; UAM xfer ≈ 135 + 0.2N µs. *)

open Engine

type t = {
  raw : Stats.Series.t;
  uam_single : Stats.Series.t;
  uam_xfer : Stats.Series.t;
}

let raw_sizes = [ 4; 16; 32; 40; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024 ]
let uam_small_sizes = [ 0; 8; 16; 24; 32 ]
let xfer_sizes = [ 48; 128; 256; 512; 1024; 2048; 4096 ]

let run ~quick =
  let iters = if quick then 10 else 40 in
  let raw =
    Stats.Series.make "raw U-Net RTT (us)"
      (Common.sweep raw_sizes (fun size -> Common.raw_rtt ~iters ~size ()))
  in
  let uam_single =
    Stats.Series.make "UAM single-cell RTT (us)"
      (Common.sweep uam_small_sizes (fun size -> Common.uam_rtt ~iters ~size ()))
  in
  let uam_xfer =
    Stats.Series.make "UAM block transfer RTT (us)"
      (Common.sweep xfer_sizes (fun size ->
           Common.uam_xfer_rtt ~iters:(max 5 (iters / 2)) ~size ()))
  in
  { raw; uam_single; uam_xfer }

let print t =
  Format.printf
    "Figure 3: U-Net round-trip times vs message size (paper: 65 us single \
     cell; 120 us + ~6 us/cell multi-cell; UAM +6 us; xfer ~135+0.2N us)@.@.";
  Common.print_series [ t.raw; t.uam_single; t.uam_xfer ]

let checks t =
  let y = Stats.Series.y_at in
  let raw_small = y t.raw 32. in
  let raw48 = y t.raw 48. in
  let raw1024 = y t.raw 1024. in
  let per_cell = (raw1024 -. raw48) /. ((1024. -. 48.) /. 48.) in
  let uam0 = y t.uam_single 0. in
  let x1k = y t.uam_xfer 1024. and x4k = y t.uam_xfer 4096. in
  let slope = (x4k -. x1k) /. (4096. -. 1024.) in
  [
    ("single-cell RTT within 10% of 65 us", Float.abs (raw_small -. 65.) <= 6.5);
    ("48-byte RTT within 10% of 120 us", Float.abs (raw48 -. 120.) <= 12.);
    ( "per-cell RTT increment within 25% of 6 us",
      Float.abs (per_cell -. 6.) <= 1.5 );
    ("UAM adds ~6 us over raw (2..12)", uam0 -. raw_small >= 2. && uam0 -. raw_small <= 12.);
    ( "xfer per-byte slope within 30% of 0.2 us/B",
      Float.abs (slope -. 0.2) <= 0.06 );
    ( "xfer intercept in the 135 us band (100..175)",
      let intercept = x1k -. (slope *. 1024.) in
      intercept >= 100. && intercept <= 175. );
  ]
