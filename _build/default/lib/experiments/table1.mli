(** Table 1 (§4.1): the SBA-100 single-cell round-trip cost breakup —
    21/7/5 µs budget, 33 µs one-way, 66 µs round trip, and the 6.8 MB/s
    bandwidth bound at 1 KB packets. *)

type t = {
  cfg_trap_level_us : float;
  cfg_aal5_send_us : float;
  cfg_aal5_recv_us : float;
  cfg_one_way_us : float;
  measured_one_way_us : float;
  measured_rtt_us : float;
  measured_bw_1k_mb : float;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
