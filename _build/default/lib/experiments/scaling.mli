(** An extension beyond the paper: cluster-size sweep (2/4/8 nodes) of the
    bulk sample sort and of a single-cell all-to-all exchange — parallel
    speedup and switch contention behaviour. *)

type point = {
  nodes : int;
  sort_total_us : float;
  sort_comm_us : float;
  all_to_all_msgs_per_sec : float;
}

type t = { points : point list; sort_n : int }

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
