(** Figure 3 (§4.2.3, §5.2): round-trip times vs message size — raw U-Net
    (65 µs single cell; 120 µs + ~6 µs/cell beyond), UAM single-cell
    requests (+6 µs), and UAM block transfers (≈135 + 0.2·N µs). *)

type t = {
  raw : Engine.Stats.Series.t;
  uam_single : Engine.Stats.Series.t;
  uam_xfer : Engine.Stats.Series.t;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
