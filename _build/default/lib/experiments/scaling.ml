(* An extension beyond the paper's figures: how the cluster behaves as it
   grows. The paper ran everything on 8 nodes; this sweep runs the bulk
   sample sort and an all-to-all Active-Message exchange at 2, 4 and 8
   nodes, checking that (a) the sort actually speeds up with processors
   (the communication is not swamping the parallelism at these sizes) and
   (b) per-node all-to-all message throughput holds up as contention for
   the switch grows. *)

open Engine

type point = {
  nodes : int;
  sort_total_us : float;
  sort_comm_us : float;
  all_to_all_msgs_per_sec : float;
}

type t = { points : point list; sort_n : int }

let uam_cluster nodes =
  let c = Cluster.create ~hosts:nodes () in
  let ams =
    Array.init nodes (fun r ->
        Uam.create (Cluster.node c r).Cluster.unet ~rank:r ~nodes)
  in
  Uam.connect_all ams;
  (c, ams)

(* every node fires [per_peer] single-cell requests at every other node and
   serves its peers; the aggregate message rate is the figure of merit *)
let all_to_all_rate ~nodes ~per_peer =
  let c, ams = uam_cluster nodes in
  let served = Array.make nodes 0 in
  Array.iteri
    (fun me am ->
      Uam.register_handler am 1 (fun _ ~src:_ _ ~args:_ ~payload:_ ->
          served.(me) <- served.(me) + 1))
    ams;
  let want = per_peer * (nodes - 1) in
  let finish_at = ref 0 in
  Array.iteri
    (fun me am ->
      ignore
        (Proc.spawn c.sim (fun () ->
             for dst = 0 to nodes - 1 do
               if dst <> me then
                 for _ = 1 to per_peer do
                   Uam.request am ~dst ~handler:1 ()
                 done
             done;
             Uam.flush am;
             Uam.poll_until am (fun () -> served.(me) >= want);
             finish_at := max !finish_at (Sim.now c.sim))))
    ams;
  Sim.run ~until:(Sim.sec 60) c.sim;
  let total_msgs = nodes * want in
  float_of_int total_msgs /. Sim.to_sec !finish_at

let run ~quick =
  let sort_n = if quick then 16_384 else 65_536 in
  let per_peer = if quick then 40 else 150 in
  let points =
    List.map
      (fun nodes ->
        let _, ams = uam_cluster nodes in
        let r =
          Splitc.Bench_sample_sort.run ~n:sort_n
            ~variant:Splitc.Bench_sample_sort.Bulk
            (Array.map Splitc.Transport.of_uam ams)
        in
        {
          nodes;
          sort_total_us = r.Splitc.Bench_common.total_us;
          sort_comm_us = r.Splitc.Bench_common.comm_us;
          all_to_all_msgs_per_sec = all_to_all_rate ~nodes ~per_peer;
        })
      [ 2; 4; 8 ]
  in
  { points; sort_n }

let print t =
  Format.printf
    "Scaling the ATM cluster (extension): bulk sample sort of %d keys and \
     single-cell all-to-all@.@."
    t.sort_n;
  Common.print_table
    ~header:
      [ "nodes"; "sort total (us)"; "sort comm (us)"; "all-to-all (msgs/s)" ]
    ~rows:
      (List.map
         (fun p ->
           [
             string_of_int p.nodes;
             Printf.sprintf "%.0f" p.sort_total_us;
             Printf.sprintf "%.0f" p.sort_comm_us;
             Printf.sprintf "%.0f" p.all_to_all_msgs_per_sec;
           ])
         t.points)

let checks t =
  let point n = List.find (fun p -> p.nodes = n) t.points in
  [
    ( "the bulk sort gets faster from 2 to 8 nodes",
      (point 8).sort_total_us < (point 2).sort_total_us );
    ( "8 nodes at least 2x faster than 2 nodes on the sort",
      (point 8).sort_total_us *. 2. < (point 2).sort_total_us );
    ( "aggregate all-to-all message rate grows with the cluster",
      (point 8).all_to_all_msgs_per_sec > (point 2).all_to_all_msgs_per_sec );
  ]
