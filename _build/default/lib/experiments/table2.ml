(* Table 2: CM-5 / Meiko CS-2 / U-Net ATM cluster characteristics. The two
   parallel machines are configuration (that is what the paper's table
   reports); the U-Net row is verified by measurement. *)

type row = {
  machine : string;
  cpu : string;
  overhead_us : float;
  rtt_us : float;
  bandwidth_mb : float;
}

type t = { rows : row list; measured_rtt_us : float; measured_bw_mb : float }

let run ~quick =
  let iters = if quick then 20 else 60 in
  let measured_rtt = Common.uam_rtt ~iters ~size:0 () in
  let measured_bw =
    Common.uam_store_bandwidth ~count:(if quick then 150 else 400) ~size:4096 ()
  in
  let spec_row name cpu (s : Splitc.Machine_model.spec) =
    {
      machine = name;
      cpu;
      overhead_us = s.Splitc.Machine_model.overhead_us;
      rtt_us = s.Splitc.Machine_model.rtt_us;
      bandwidth_mb = s.Splitc.Machine_model.bandwidth_mb;
    }
  in
  {
    rows =
      [
        spec_row "CM-5" "33 MHz Sparc-2" Splitc.Machine_model.cm5;
        spec_row "Meiko CS-2" "40 MHz SuperSparc" Splitc.Machine_model.meiko_cs2;
        {
          machine = "U-Net ATM";
          cpu = "50/60 MHz SuperSparc";
          overhead_us = 6.;
          rtt_us = measured_rtt;
          bandwidth_mb = measured_bw;
        };
      ];
    measured_rtt_us = measured_rtt;
    measured_bw_mb = measured_bw;
  }

let print t =
  Format.printf
    "Table 2: machine communication characteristics (U-Net row measured)@.@.";
  Common.print_table
    ~header:[ "Machine"; "CPU"; "overhead (us)"; "RTT (us)"; "BW (MB/s)" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.machine;
             r.cpu;
             Printf.sprintf "%.0f" r.overhead_us;
             Printf.sprintf "%.0f" r.rtt_us;
             Printf.sprintf "%.0f" r.bandwidth_mb;
           ])
         t.rows)

let checks t =
  [
    ( "U-Net ATM RTT within 10% of 71 us",
      Float.abs (t.measured_rtt_us -. 71.) <= 7.1 );
    ( "U-Net ATM bandwidth close to 14 MB/s (paper row)",
      t.measured_bw_mb >= 12. && t.measured_bw_mb <= 16.5 );
  ]
