(* Figure 4: bandwidth as a function of message size. Curves: the AAL5
   theoretical limit (exact, with its 48-byte-cell sawtooth), raw U-Net,
   and UAM store/get. Paper anchors: the fiber saturates from ~800-byte
   messages; UAM reaches ~80% of the limit at 2 KB and peaks near
   14.8 MB/s; a dip at 4164 bytes betrays the 4160-byte transfer buffers. *)

open Engine

type t = {
  aal5_limit : Stats.Series.t;
  raw : Stats.Series.t;
  store : Stats.Series.t;
  get : Stats.Series.t;
}

let sizes = [ 64; 128; 256; 512; 800; 1024; 2048; 3072; 4096; 4164; 5056 ]

let aal5_limit_mb size =
  let cells = Atm.Aal5.cells_for size in
  let wire_bits = float_of_int (cells * Atm.Cell.on_wire_size * 8) in
  let secs = wire_bits /. (Atm.Network.default_config.link_bandwidth_mbps *. 1e6) in
  float_of_int size /. 1e6 /. secs

let run ~quick =
  let count = if quick then 200 else 800 in
  let aal5_limit =
    Stats.Series.make "AAL5 limit (MB/s)"
      (List.map (fun s -> (float_of_int s, aal5_limit_mb s)) sizes)
  in
  let raw =
    Stats.Series.make "raw U-Net (MB/s)"
      (Common.sweep sizes (fun size -> Common.raw_bandwidth ~count ~size ()))
  in
  let store =
    Stats.Series.make "UAM store (MB/s)"
      (Common.sweep sizes (fun size ->
           Common.uam_store_bandwidth ~count:(count / 2) ~size ()))
  in
  let get =
    Stats.Series.make "UAM get (MB/s)"
      (Common.sweep sizes (fun size ->
           Common.uam_get_bandwidth ~count:(count / 2) ~size ()))
  in
  { aal5_limit; raw; store; get }

let print t =
  Format.printf
    "Figure 4: U-Net bandwidth vs message size (paper: saturation from \
     ~800 B; UAM ~80%%+ of the AAL5 limit at 2 KB, dip at 4164 B)@.@.";
  Common.print_series [ t.aal5_limit; t.raw; t.store; t.get ]

let checks t =
  let y = Stats.Series.y_at in
  let limit800 = y t.aal5_limit 800. in
  [
    ( "raw saturates the fiber at 800 B (>= 90% of AAL5 limit)",
      y t.raw 800. >= 0.9 *. limit800 );
    ("raw small-message bandwidth i960-bound (64 B < 7 MB/s)", y t.raw 64. < 7.);
    ( "UAM store >= 80% of the AAL5 limit at 2 KB",
      y t.store 2048. >= 0.8 *. y t.aal5_limit 2048. );
    ( "UAM store peak near 14.8 MB/s at 4 KB (13..16.5)",
      y t.store 4096. >= 13. && y t.store 4096. <= 16.5 );
    ("dip at 4164 B (below the 4096 B point)", y t.store 4164. < y t.store 4096.);
    ( "get close to store at 4 KB (within 15%)",
      Float.abs (y t.get 4096. -. y t.store 4096.) <= 0.15 *. y t.store 4096. );
  ]
