(** §4.2.4 memory requirements: how many endpoints a host can open, what
    exhausts first (the i960's endpoint table vs pinned host memory), the
    pinned footprint of a full UAM cluster, and the kernel-emulated escape
    hatch past the NI limit. *)

type t = {
  ni_endpoint_limit : int;
  small_seg_endpoints : int;
  big_seg_endpoints : int;
  uam_pinned_per_node : int;
  emulated_beyond_limit : bool;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
