(* Figure 6: round-trip latencies of the *kernelized* UDP and TCP over the
   Fore ATM interface and over Ethernet. The paper's point: for small
   messages the ATM path is slower than plain Ethernet — the new network
   does not show through the old software. *)

open Engine

type t = {
  udp_atm : Stats.Series.t;
  udp_eth : Stats.Series.t;
  tcp_atm : Stats.Series.t;
  tcp_eth : Stats.Series.t;
}

let sizes = [ 16; 64; 256; 1024; 2048; 4096; 8192 ]

let run ~quick =
  let iters = if quick then 8 else 25 in
  let mk name f = Stats.Series.make name (Common.sweep sizes f) in
  {
    udp_atm =
      mk "kernel UDP over ATM (us)" (fun size ->
          Common.udp_rtt ~iters ~path:Common.Kernel_atm ~size ());
    udp_eth =
      mk "kernel UDP over Ethernet (us)" (fun size ->
          Common.udp_rtt ~iters ~path:Common.Kernel_ethernet ~size ());
    tcp_atm =
      mk "kernel TCP over ATM (us)" (fun size ->
          Common.tcp_rtt ~iters ~path:Common.Kernel_atm ~size ());
    tcp_eth =
      mk "kernel TCP over Ethernet (us)" (fun size ->
          Common.tcp_rtt ~iters ~path:Common.Kernel_ethernet ~size ());
  }

let print t =
  Format.printf
    "Figure 6: kernel TCP and UDP round-trip latency over ATM vs Ethernet \
     (paper: ATM is *worse* for small messages)@.@.";
  Common.print_series [ t.udp_atm; t.udp_eth; t.tcp_atm; t.tcp_eth ]

let checks t =
  let y = Stats.Series.y_at in
  [
    ( "small-message kernel UDP is slower over ATM than Ethernet",
      y t.udp_atm 16. > y t.udp_eth 16. );
    ( "small-message kernel TCP is slower over ATM than Ethernet",
      y t.tcp_atm 16. > y t.tcp_eth 16. );
    ( "large-message UDP is much faster over ATM (8 KB)",
      y t.udp_atm 8192. < 0.6 *. y t.udp_eth 8192. );
    ( "large-message TCP is much faster over ATM (8 KB)",
      y t.tcp_atm 8192. < 0.6 *. y t.tcp_eth 8192. );
    ( "kernel ATM small-message RTT is in the ~1 ms class (5x the 138 us of U-Net UDP)",
      y t.udp_atm 16. > 5. *. 138. );
  ]
