(* Table 3: U-Net latency and bandwidth summary — round-trip latency and
   4 KB-packet bandwidth for raw AAL5, Active Messages, UDP, TCP and the
   Split-C store. *)

type row = {
  protocol : string;
  paper_rtt_us : float;
  rtt_us : float;
  paper_bw_mbit : float;
  bw_mbit : float;
}

type t = { rows : row list }

let mbit mb = mb *. 8.

(* A pure store+ack round trip without the barrier in the way: measured at
   the UAM level (a Split-C store compiles to exactly this). *)
let store_ack_rtt ~quick =
  let iters = if quick then 20 else 60 in
  let c, a0, a1 = Common.uam_pair () in
  let open Engine in
  Uam.register_handler a1 5 (fun _ ~src:_ _ ~args:_ ~payload:_ -> ());
  ignore
    (Proc.spawn ~name:"server" c.Cluster.sim (fun () ->
         Uam.poll_until a1 (fun () -> false)));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"client" c.Cluster.sim (fun () ->
         for _ = 1 to iters do
           let t0 = Sim.now c.Cluster.sim in
           Uam.request a0 ~dst:1 ~handler:5 ~args:[| 1; 2 |] ();
           Uam.poll_until a0 (fun () -> Uam.barrier_ready a0 ~dst:1);
           sum := !sum +. Sim.to_us (Sim.now c.Cluster.sim - t0);
           incr n
         done));
  Sim.run ~until:(Sim.sec 10) c.Cluster.sim;
  !sum /. float_of_int (max 1 !n)

let run ~quick =
  let bw_count = if quick then 200 else 800 in
  let raw_rtt = Common.raw_rtt ~iters:(if quick then 20 else 60) ~size:32 () in
  let raw_bw = Common.raw_bandwidth ~count:bw_count ~size:4096 () in
  let am_rtt = Common.uam_rtt ~iters:(if quick then 20 else 60) ~size:0 () in
  let am_bw = Common.uam_store_bandwidth ~count:(bw_count / 2) ~size:4096 () in
  (* "small message": 64 B of data — 3 cells with the 28-byte headers;
     single-digit payloads ride the single-cell fast path and go *below*
     the paper's 138 us *)
  let udp_rtt = Common.udp_rtt ~path:Common.Unet_path ~size:64 () in
  let udp_bw =
    (* receiver-side goodput of a 4 KB blast *)
    snd (Common.udp_blast ~count:(bw_count / 2) ~path:Common.Unet_path ~size:4096 ())
  in
  let tcp_rtt = Common.tcp_rtt ~path:Common.Unet_path ~size:8 () in
  let tcp_bw =
    Common.tcp_stream ~total:((if quick then 2 else 6) * 1024 * 1024)
      ~path:Common.Unet_path ()
  in
  let st_rtt = store_ack_rtt ~quick in
  let st_bw = am_bw in
  {
    rows =
      [
        { protocol = "Raw AAL5"; paper_rtt_us = 65.; rtt_us = raw_rtt;
          paper_bw_mbit = 120.; bw_mbit = mbit raw_bw };
        { protocol = "Active Msgs"; paper_rtt_us = 71.; rtt_us = am_rtt;
          paper_bw_mbit = 118.; bw_mbit = mbit am_bw };
        { protocol = "UDP"; paper_rtt_us = 138.; rtt_us = udp_rtt;
          paper_bw_mbit = 120.; bw_mbit = mbit udp_bw };
        { protocol = "TCP"; paper_rtt_us = 157.; rtt_us = tcp_rtt;
          paper_bw_mbit = 115.; bw_mbit = mbit tcp_bw };
        { protocol = "Split-C store"; paper_rtt_us = 72.; rtt_us = st_rtt;
          paper_bw_mbit = 118.; bw_mbit = mbit st_bw };
      ];
  }

let print t =
  Format.printf "Table 3: U-Net latency and bandwidth summary@.@.";
  Common.print_table
    ~header:
      [ "Protocol"; "RTT paper(us)"; "RTT model(us)"; "BW@4K paper(Mb/s)";
        "BW@4K model(Mb/s)" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.protocol;
             Printf.sprintf "%.0f" r.paper_rtt_us;
             Printf.sprintf "%.0f" r.rtt_us;
             Printf.sprintf "%.0f" r.paper_bw_mbit;
             Printf.sprintf "%.0f" r.bw_mbit;
           ])
         t.rows)

let checks t =
  List.concat_map
    (fun r ->
      [
        ( Printf.sprintf "%s RTT within 15%% of %.0f us" r.protocol r.paper_rtt_us,
          Float.abs (r.rtt_us -. r.paper_rtt_us) <= 0.15 *. r.paper_rtt_us );
        ( Printf.sprintf "%s bandwidth within 15%% of %.0f Mb/s" r.protocol
            r.paper_bw_mbit,
          Float.abs (r.bw_mbit -. r.paper_bw_mbit) <= 0.15 *. r.paper_bw_mbit );
      ])
    t.rows
