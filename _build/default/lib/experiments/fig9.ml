(* Figure 9: U-Net UDP and TCP round-trip latencies as a function of
   message size (the counterpart of Figure 6 after removing the kernel):
   138/157 us small-message round trips, growing with the cell count. *)

open Engine

type t = { udp : Stats.Series.t; tcp : Stats.Series.t; raw : Stats.Series.t }

let sizes = [ 8; 64; 256; 512; 1024; 2048; 4096; 8192 ]

let run ~quick =
  let iters = if quick then 8 else 25 in
  {
    udp =
      Stats.Series.make "U-Net UDP RTT (us)"
        (Common.sweep sizes (fun size ->
             Common.udp_rtt ~iters ~path:Common.Unet_path ~size ()));
    tcp =
      Stats.Series.make "U-Net TCP RTT (us)"
        (Common.sweep sizes (fun size ->
             Common.tcp_rtt ~iters ~path:Common.Unet_path ~size ()));
    raw =
      Stats.Series.make "raw U-Net RTT (us)"
        (Common.sweep sizes (fun size -> Common.raw_rtt ~iters ~size ()));
  }

let print t =
  Format.printf
    "Figure 9: U-Net UDP and TCP round-trip latency vs message size \
     (paper: 138 us / 157 us small-message round trips)@.@.";
  Common.print_series [ t.raw; t.udp; t.tcp ]

let checks t =
  let y = Stats.Series.y_at in
  [
    ("U-Net UDP small-message (64 B) RTT within 10% of 138 us",
     Float.abs (y t.udp 64. -. 138.) <= 13.8);
    ("U-Net TCP small-message RTT within 10% of 157 us",
     Float.abs (y t.tcp 8. -. 157.) <= 15.7);
    ("TCP RTT above UDP RTT at 64 B (more protocol processing)",
     y t.tcp 64. > y t.udp 64.);
    ("UDP RTT above raw (protocol costs on top of the base path)",
     y t.udp 64. > y t.raw 64.);
    ("RTT grows with size (8 KB >> 8 B)", y t.udp 8192. > 3. *. y t.udp 8.);
  ]
