(** The experiment registry: every table and figure of the paper's
    evaluation, runnable by name from the CLI, the bench harness and the
    test suite. *)

type experiment = {
  name : string;
  description : string;
  print : quick:bool -> unit;  (** run and print the table/series *)
  checks : quick:bool -> (string * bool) list;
      (** run and evaluate the paper's qualitative claims *)
  series : quick:bool -> (string * (float * float) list) list;
      (** the figure's curves as (label, points) — empty for tables *)
}

val all : experiment list
val find : string -> experiment option
val names : string list
