(** Table 2 (§6): communication characteristics of the CM-5, the Meiko CS-2
    and the U-Net ATM cluster. The parallel machines are configuration (as
    in the paper); the U-Net row is measured on the simulated cluster. *)

type row = {
  machine : string;
  cpu : string;
  overhead_us : float;
  rtt_us : float;
  bandwidth_mb : float;
}

type t = { rows : row list; measured_rtt_us : float; measured_bw_mb : float }

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
