(** Ablations of the design decisions DESIGN.md §5 calls out: each isolates
    one mechanism the paper credits for its performance and measures the
    system with it turned off (or swept). *)

(** The single-cell fast path of §3.4/§4.2.2: inline descriptors, no buffer
    pop. Turning it off costs roughly the 120-vs-65 µs gap. *)
module Inline : sig
  type t = { with_opt : float; without_opt : float }

  val run : quick:bool -> t
  val print : t -> unit
  val checks : t -> (string * bool) list
end

(** The i960 division of labour: Fore's original firmware (mbuf-chain
    chasing via DMA) against the redesigned U-Net firmware (§4.2.1). *)
module Firmware : sig
  type t = {
    unet_rtt : float;
    fore_rtt : float;
    unet_bw : float;
    fore_bw : float;
  }

  val run : quick:bool -> t
  val print : t -> unit
  val checks : t -> (string * bool) list
end

(** The UAM flow-control window w (§5.1.1), swept over store bandwidth. *)
module Window : sig
  type t = { points : (int * float) list }

  val run : quick:bool -> t
  val print : t -> unit
  val checks : t -> (string * bool) list
end

(** U-Net TCP tuning (§7.8): segment-size sweep, and delayed acks measured
    both on echo traffic (where they piggyback harmlessly) and on an
    isolated segment (where the 200 ms delay bites). *)
module Tcp_tuning : sig
  type t = {
    mss_points : (int * float) list;
    no_delack_rtt : float;
    delack_rtt : float;
    no_delack_ack_us : float;
    delack_ack_us : float;
  }

  val run : quick:bool -> t
  val print : t -> unit
  val checks : t -> (string * bool) list
end

(** Polling vs signal-driven reception: a UNIX signal adds ~30 µs on each
    end (§4.2.3). *)
module Upcall : sig
  type t = { polling : float; signal : float }

  val run : quick:bool -> t
  val print : t -> unit
  val checks : t -> (string * bool) list
end
