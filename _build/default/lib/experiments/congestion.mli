(** §7.8 after Romanow & Floyd: TCP over a congested ATM switch port — a
    single dropped cell discards the whole segment, so large segments
    amplify loss. Two flows converge on a port with a shallow cell buffer,
    contested at the paper's 2048-byte MSS and at a 9148-byte MSS. *)

type flow = {
  goodput_mb : float;
  retransmits : int;
  timeouts : int;
  finished_at : Engine.Sim.time;
}

type contest = {
  mss : int;
  flows : flow list;
  makespan_aggregate_mb : float;
  cells_dropped : int;
  reassembly_errors : int;
}

type t = { small_seg : contest; large_seg : contest }

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
