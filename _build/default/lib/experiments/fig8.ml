(* Figure 8: TCP bandwidth as a function of the rate at which the
   application generates data. U-Net TCP reaches 14-15 MB/s with just an
   8 KB window; the kernel TCP/ATM combination stays near half the fiber
   even with a 64 KB window. *)

open Engine

type t = {
  unet_8k : Stats.Series.t;
  kernel_64k : Stats.Series.t;
  kernel_8k : Stats.Series.t;
}

let rates = [ 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18. ]

let run ~quick =
  let total = (if quick then 1 else 4) * 1024 * 1024 in
  let curve name ~path ~window =
    Stats.Series.make name
      (List.map
         (fun rate ->
           ( rate,
             Common.tcp_stream ~window ~total ~app_rate_mb:rate ~path () ))
         rates)
  in
  {
    unet_8k = curve "U-Net TCP, 8 KB window (MB/s)" ~path:Common.Unet_path ~window:(8 * 1024);
    kernel_64k =
      curve "kernel TCP/ATM, 64 KB window (MB/s)" ~path:Common.Kernel_atm
        ~window:(64 * 1024);
    kernel_8k =
      curve "kernel TCP/ATM, 8 KB window (MB/s)" ~path:Common.Kernel_atm
        ~window:(8 * 1024);
  }

let print t =
  Format.printf
    "Figure 8: TCP bandwidth vs application data generation rate (paper: \
     U-Net reaches 14-15 MB/s with an 8 KB window; kernel stalls near half \
     the fiber even at 64 KB)@.@.";
  Common.print_series [ t.unet_8k; t.kernel_64k; t.kernel_8k ]

let checks t =
  let y = Stats.Series.y_at in
  [
    ( "U-Net TCP tracks the offered rate at 8 MB/s",
      Float.abs (y t.unet_8k 8. -. 8.) <= 1. );
    ("U-Net TCP with 8 KB window reaches >= 14 MB/s", y t.unet_8k 18. >= 14.);
    ( "kernel TCP tops out at ~55% of the fiber with 64 KB windows",
      y t.kernel_64k 18. <= 0.62 *. 15.86 );
    ( "kernel TCP is window-starved at 8 KB (well below its 64 KB ceiling)",
      y t.kernel_8k 18. < 0.7 *. y t.kernel_64k 18. );
    ( "U-Net TCP beats kernel TCP at full offered load",
      y t.unet_8k 18. > y t.kernel_64k 18. );
  ]
