(* Figure 7: UDP bandwidth as a function of message size. Kernel UDP shows
   the mbuf-allocation sawtooth, and its receive rate falls short of the
   send rate because kernel buffering loses packets (§7.3); U-Net UDP is
   loss-free, so only its receive curve is meaningful. *)

open Engine

type t = {
  kernel_sent : Stats.Series.t;
  kernel_received : Stats.Series.t;
  unet_received : Stats.Series.t;
}

(* sizes straddling the 1 KB mbuf-cluster boundaries to expose the sawtooth *)
let sizes =
  [ 512; 960; 1024; 1400; 1536; 2048; 2400; 3072; 3500; 4096; 4608; 5120;
    6144; 7168; 8192 ]

let run ~quick =
  let count = if quick then 150 else 500 in
  let kernel = List.map (fun s ->
      (s, Common.udp_blast ~count ~path:Common.Kernel_atm ~size:s ())) sizes
  in
  let unet = List.map (fun s ->
      (s, Common.udp_blast ~count ~path:Common.Unet_path ~size:s ())) sizes
  in
  {
    kernel_sent =
      Stats.Series.make "kernel UDP, sender-perceived (MB/s)"
        (List.map (fun (s, (tx, _)) -> (float_of_int s, tx)) kernel);
    kernel_received =
      Stats.Series.make "kernel UDP, received (MB/s)"
        (List.map (fun (s, (_, rx)) -> (float_of_int s, rx)) kernel);
    unet_received =
      Stats.Series.make "U-Net UDP, received (MB/s)"
        (List.map (fun (s, (_, rx)) -> (float_of_int s, rx)) unet);
  }

let print t =
  Format.printf
    "Figure 7: UDP bandwidth vs message size (paper: kernel sawtooth from \
     the mbuf scheme, send/receive gap from kernel buffer losses; U-Net \
     loses nothing)@.@.";
  Common.print_series [ t.kernel_sent; t.kernel_received; t.unet_received ]

let checks t =
  let y = Stats.Series.y_at in
  (* sawtooth: a size just short of filling clusters (2400 = 2 clusters +
     352 B of small mbufs) must underperform the next cluster-aligned size
     per byte sent *)
  let per_byte_rate series s = y series (float_of_int s) /. float_of_int s in
  [
    ( "kernel receive rate falls short of the send rate at 8 KB (losses)",
      y t.kernel_received 8192. < 0.9 *. y t.kernel_sent 8192. );
    ( "mbuf sawtooth: 2400 B is less efficient than 2048 B",
      per_byte_rate t.kernel_sent 2400 < per_byte_rate t.kernel_sent 2048 );
    ( "mbuf sawtooth: 3500 B is less efficient than 3072 B",
      per_byte_rate t.kernel_sent 3500 < per_byte_rate t.kernel_sent 3072 );
    ( "U-Net UDP saturates the fiber at 8 KB (>= 13 MB/s)",
      y t.unet_received 8192. >= 13. );
    ( "U-Net UDP beats kernel UDP at every size",
      List.for_all2
        (fun (_, u) (_, k) -> u >= k)
        t.unet_received.Stats.Series.points t.kernel_received.Stats.Series.points );
  ]
