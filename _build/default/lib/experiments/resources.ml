(* §4.2.4 "Memory requirements": endpoints consume pinned host memory,
   i960 memory and DMA space, so the number of network-active processes per
   host is bounded. This experiment measures those bounds in the model:
   how many endpoints a host can open, what exhausts first under different
   segment sizes, and the pinned footprint of a full 8-node UAM cluster. *)

type t = {
  ni_endpoint_limit : int;
  small_seg_endpoints : int; (* 64 KB segments, 8 MB pinned *)
  big_seg_endpoints : int; (* 1 MB segments, 8 MB pinned *)
  uam_pinned_per_node : int; (* bytes pinned by one node of the 8-way cluster *)
  emulated_beyond_limit : bool;
}

let count_endpoints ~seg_size ~pinned_capacity =
  let c = Cluster.create () in
  let n0 = Cluster.node c 0 in
  let nic = Option.get n0.i960 in
  let u =
    Unet.create ~cpu:n0.cpu ~net:c.net ~host:0 ~pinned_capacity
      (Ni.I960_nic.backend nic)
  in
  let rec go n =
    match Unet.create_endpoint u ~seg_size () with
    | Ok _ -> go (n + 1)
    | Error _ -> n
  in
  go 0

let run ~quick =
  ignore quick;
  let ni_endpoint_limit =
    (* huge pinned budget: the i960's endpoint table is the binding limit *)
    count_endpoints ~seg_size:4_096 ~pinned_capacity:(256 * 1024 * 1024)
  in
  let small_seg_endpoints =
    count_endpoints ~seg_size:(64 * 1024) ~pinned_capacity:(8 * 1024 * 1024)
  in
  let big_seg_endpoints =
    count_endpoints ~seg_size:(1024 * 1024) ~pinned_capacity:(8 * 1024 * 1024)
  in
  let uam_pinned_per_node =
    let c = Cluster.create ~hosts:8 () in
    let ams =
      Array.init 8 (fun r ->
          Uam.create (Cluster.node c r).Cluster.unet ~rank:r ~nodes:8)
    in
    Uam.connect_all ams;
    Host.Pinned.used (Unet.pinned (Cluster.node c 0).Cluster.unet)
  in
  let emulated_beyond_limit =
    let c = Cluster.create () in
    let n0 = Cluster.node c 0 in
    let rec exhaust () =
      match Unet.create_endpoint n0.unet ~seg_size:4_096 () with
      | Ok _ -> exhaust ()
      | Error _ -> ()
    in
    exhaust ();
    Result.is_ok (Unet.create_endpoint n0.unet ~emulated:true ~seg_size:4_096 ())
  in
  {
    ni_endpoint_limit;
    small_seg_endpoints;
    big_seg_endpoints;
    uam_pinned_per_node;
    emulated_beyond_limit;
  }

let print t =
  Format.printf
    "Resource limits (§4.2.4): what bounds the number of network-active \
     processes@.@.";
  Common.print_table
    ~header:[ "scenario"; "endpoints / bytes" ]
    ~rows:
      [
        [ "i960 endpoint table (unbounded pinned memory)";
          string_of_int t.ni_endpoint_limit ];
        [ "64 KB segments under an 8 MB pinned budget";
          string_of_int t.small_seg_endpoints ];
        [ "1 MB segments under an 8 MB pinned budget";
          string_of_int t.big_seg_endpoints ];
        [ "UAM 8-node cluster: pinned bytes per node (w=8, 4w buffers/peer)";
          string_of_int t.uam_pinned_per_node ];
        [ "kernel-emulated endpoints available beyond the NI limit";
          string_of_bool t.emulated_beyond_limit ];
      ]

let checks t =
  [
    ("the i960 memory bounds real endpoints at 16", t.ni_endpoint_limit = 16);
    ( "with small segments the i960 table binds before pinned memory",
      t.small_seg_endpoints = t.ni_endpoint_limit );
    ( "with 1 MB segments pinned memory binds first",
      t.big_seg_endpoints < t.ni_endpoint_limit );
    ( "the 8-node UAM cluster pins ~1 MB per node (4w buffers per peer)",
      t.uam_pinned_per_node > 800_000 && t.uam_pinned_per_node < 1_400_000 );
    ( "kernel emulation provides endpoints past the NI limit (§3.5)",
      t.emulated_beyond_limit );
  ]
