(** Figure 6 (§7): round-trip latency of the *kernelized* UDP and TCP over
    the Fore ATM path and over 10 Mbit/s Ethernet — for small messages the
    ATM path is slower than plain Ethernet. *)

type t = {
  udp_atm : Engine.Stats.Series.t;
  udp_eth : Engine.Stats.Series.t;
  tcp_atm : Engine.Stats.Series.t;
  tcp_eth : Engine.Stats.Series.t;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
