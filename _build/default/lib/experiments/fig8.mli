(** Figure 8 (§7.7): TCP bandwidth as a function of the application's data
    generation rate — U-Net TCP reaches 14-15 MB/s with an 8 KB window
    while the kernel/ATM combination saturates near half the fiber even
    with 64 KB windows. *)

type t = {
  unet_8k : Engine.Stats.Series.t;
  kernel_64k : Engine.Stats.Series.t;
  kernel_8k : Engine.Stats.Series.t;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
