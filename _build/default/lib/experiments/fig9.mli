(** Figure 9 (§7): U-Net UDP and TCP round-trip latency vs message size —
    the 138/157 µs small-message round trips over the raw baseline. *)

type t = {
  udp : Engine.Stats.Series.t;
  tcp : Engine.Stats.Series.t;
  raw : Engine.Stats.Series.t;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
