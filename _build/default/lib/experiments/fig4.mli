(** Figure 4 (§4.2.3, §5.2): bandwidth vs message size — the exact AAL5
    limit curve with its 48-byte sawtooth, raw U-Net (saturating from
    ~800-byte messages), and UAM store/get (the 4164-byte dip). *)

type t = {
  aal5_limit : Engine.Stats.Series.t;
  raw : Engine.Stats.Series.t;
  store : Engine.Stats.Series.t;
  get : Engine.Stats.Series.t;
}

val aal5_limit_mb : int -> float
(** The theoretical AAL5 payload bandwidth for a message of this size. *)

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
