(* Figure 5: seven Split-C benchmarks on the CM-5, the U-Net ATM cluster
   and the Meiko CS-2, execution times normalized to the CM-5, with the
   computation/communication breakdown. Problem sizes are reduced from the
   paper's (see DESIGN.md); the qualitative orderings are what we check:
   the CM-5 wins the small-message codes, the ATM cluster and the Meiko win
   the bulk codes and the matrix multiply, and the ATM cluster tracks the
   Meiko overall. *)

type machine = Cm5 | Meiko | Unet_atm

let machine_name = function
  | Cm5 -> "CM-5"
  | Meiko -> "Meiko CS-2"
  | Unet_atm -> "U-Net ATM"

type sizes = {
  mm_blocks : int;
  mm_block : int;
  sort_n : int;
  radix_n : int;
  cc_n : int;
  cg_k : int;
}

let full_sizes =
  {
    mm_blocks = 4;
    mm_block = 64;
    sort_n = 262_144;
    radix_n = 131_072;
    cc_n = 16_384;
    cg_k = 192;
  }

let quick_sizes =
  {
    mm_blocks = 4;
    mm_block = 16;
    sort_n = 16_384;
    radix_n = 16_384;
    cc_n = 4_096;
    cg_k = 64;
  }

type cell = { total_us : float; comm_us : float; ok : bool }

type t = {
  benchmarks : string list;
  (* per benchmark, per machine *)
  results : (string * (machine * cell) list) list;
}

let transports_for machine =
  match machine with
  | Cm5 ->
      let sim = Engine.Sim.create () in
      Splitc.Machine_model.transports
        (Splitc.Machine_model.create sim ~nodes:8 Splitc.Machine_model.cm5)
  | Meiko ->
      let sim = Engine.Sim.create () in
      Splitc.Machine_model.transports
        (Splitc.Machine_model.create sim ~nodes:8 Splitc.Machine_model.meiko_cs2)
  | Unet_atm ->
      let c = Cluster.create ~hosts:8 () in
      let ams =
        Array.init 8 (fun r ->
            Uam.create (Cluster.node c r).Cluster.unet ~rank:r ~nodes:8)
      in
      Uam.connect_all ams;
      Array.map Splitc.Transport.of_uam ams

let machines = [ Cm5; Unet_atm; Meiko ]

let run ~quick =
  let sz = if quick then quick_sizes else full_sizes in
  let bench name f = (name, f) in
  let suite =
    [
      bench "matrix-multiply" (fun tps ->
          Splitc.Bench_mm.run
            ~params:{ Splitc.Bench_mm.g = sz.mm_blocks; b = sz.mm_block }
            tps);
      bench "sample-sort-small" (fun tps ->
          Splitc.Bench_sample_sort.run ~n:sz.sort_n
            ~variant:Splitc.Bench_sample_sort.Small tps);
      bench "sample-sort-bulk" (fun tps ->
          Splitc.Bench_sample_sort.run ~n:sz.sort_n
            ~variant:Splitc.Bench_sample_sort.Bulk tps);
      bench "radix-sort-small" (fun tps ->
          Splitc.Bench_radix_sort.run ~n:sz.radix_n
            ~variant:Splitc.Bench_radix_sort.Small tps);
      bench "radix-sort-bulk" (fun tps ->
          Splitc.Bench_radix_sort.run ~n:sz.radix_n
            ~variant:Splitc.Bench_radix_sort.Bulk tps);
      bench "connected-comps" (fun tps -> Splitc.Bench_cc.run ~n:sz.cc_n tps);
      (* CG needs O(k) iterations to overcome the 2-norm residual growth on
         an ill-conditioned k x k Poisson grid *)
      bench "conjugate-grad" (fun tps ->
          Splitc.Bench_cg.run ~k:sz.cg_k ~iters:sz.cg_k tps);
    ]
  in
  let results =
    List.map
      (fun (name, f) ->
        ( name,
          List.map
            (fun m ->
              let r = f (transports_for m) in
              ( m,
                {
                  total_us = r.Splitc.Bench_common.total_us;
                  comm_us = r.Splitc.Bench_common.comm_us;
                  ok = r.Splitc.Bench_common.checked;
                } ))
            machines ))
      suite
  in
  { benchmarks = List.map fst suite; results }

let cell t bench machine =
  List.assoc machine (List.assoc bench t.results)

let print t =
  Format.printf
    "Figure 5: Split-C benchmarks, execution time normalized to the CM-5 \
     (comp/comm in us)@.@.";
  let rows =
    List.map
      (fun (name, per_machine) ->
        let cm5 = List.assoc Cm5 per_machine in
        name
        :: List.concat_map
             (fun m ->
               let c = List.assoc m per_machine in
               [
                 Printf.sprintf "%.2f%s"
                   (c.total_us /. cm5.total_us)
                   (if c.ok then "" else "!");
                 Printf.sprintf "%.0f/%.0f" (c.total_us -. c.comm_us) c.comm_us;
               ])
             machines)
      t.results
  in
  Common.print_table
    ~header:
      ([ "benchmark" ]
      @ List.concat_map
          (fun m -> [ machine_name m ^ " (norm)"; "comp/comm (us)" ])
          machines)
    ~rows

let checks t =
  let norm bench machine =
    (cell t bench machine).total_us /. (cell t bench Cm5).total_us
  in
  let all_ok =
    List.for_all
      (fun (_, per) -> List.for_all (fun (_, c) -> c.ok) per)
      t.results
  in
  [
    ("all benchmark outputs verified", all_ok);
    ( "CM-5 loses the matrix multiply (CPU + bulk bandwidth disadvantage)",
      norm "matrix-multiply" Unet_atm < 1. && norm "matrix-multiply" Meiko < 1. );
    ( "CM-5 wins the small-message sample sort",
      norm "sample-sort-small" Unet_atm > 1. && norm "sample-sort-small" Meiko > 1. );
    ( "bulk transfers improve the ATM cluster dramatically vs its small version",
      (cell t "sample-sort-bulk" Unet_atm).total_us
      < 0.6 *. (cell t "sample-sort-small" Unet_atm).total_us );
    ( "ATM cluster beats the CM-5 on the bulk sample sort",
      norm "sample-sort-bulk" Unet_atm < 1. );
    ( "CM-5 wins the small-message radix sort",
      norm "radix-sort-small" Unet_atm > 1. );
    ( "bulk radix closes most of the gap",
      norm "radix-sort-bulk" Unet_atm < 0.5 *. norm "radix-sort-small" Unet_atm );
    ( "CM-5 wins connected components (small messages)",
      norm "connected-comps" Unet_atm > 1. );
    ( "ATM cluster within 3x of the Meiko on every benchmark (\"roughly equal\")",
      List.for_all
        (fun b ->
          let r = (cell t b Unet_atm).total_us /. (cell t b Meiko).total_us in
          r < 3. && r > 0.3)
        t.benchmarks );
  ]
