(** The §2.1 file-server workload, synthesized to the cited Berkeley NFS
    trace shape (most messages under 200 bytes, the few large transfers
    carrying about half the bits) and replayed as a UDP request/response
    service over the user-level and kernel paths. *)

type result = {
  path : Common.ip_path;
  requests : int;
  small_share_of_messages : float;
  small_share_of_bits : float;
  mean_latency_us : float;
  p95_latency_us : float;
  throughput_req_s : float;
}

type t = { unet : result; kernel : result }

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
