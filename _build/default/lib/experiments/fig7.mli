(** Figure 7 (§7.3): UDP bandwidth vs message size — the kernel's
    mbuf-allocation sawtooth and its sender/receiver gap from buffer
    losses, against loss-free U-Net UDP. *)

type t = {
  kernel_sent : Engine.Stats.Series.t;
  kernel_received : Engine.Stats.Series.t;
  unet_received : Engine.Stats.Series.t;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list
