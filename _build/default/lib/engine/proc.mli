(** Simulated processes: lightweight coroutines scheduled on a {!Sim.t}
    clock, implemented with OCaml 5 effect handlers. A process runs ordinary
    OCaml code and blocks by performing a suspend effect; the simulator
    resumes it when the event it is waiting for fires.

    All blocking operations in this library ({!sleep}, {!join},
    {!Sync.Mailbox.recv}, ...) may only be called from inside a process body
    started with {!spawn}. *)

type t
(** A spawned process. *)

type state = Running | Done | Failed of exn

exception Not_in_process
(** Raised when a blocking operation is performed outside a process body. *)

val spawn : ?name:string -> Sim.t -> (unit -> unit) -> t
(** [spawn sim body] schedules [body] to start at the current virtual time.
    Exceptions escaping [body] put the process in [Failed] state; they are
    re-raised by {!join}. *)

val state : t -> state
val name : t -> string

val sleep : Sim.t -> time:Sim.time -> unit
(** Block the calling process for [time] simulated nanoseconds. *)

val yield : Sim.t -> unit
(** Let other events at the current instant run first. *)

val join : t -> unit
(** Block until the target process terminates. Re-raises its exception if it
    failed. *)

val join_all : t list -> unit

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] is the low-level blocking primitive: it captures the
    current continuation as a [resume] thunk and hands it to [register].
    Calling [resume] (typically from a simulation event) restarts the
    process. [resume] must be called at most once. *)

val run_to_completion : Sim.t -> (unit -> 'a) -> 'a
(** [run_to_completion sim main] spawns a process computing [main ()], drives
    the simulation until it finishes, and returns its result. Raises if the
    process fails or deadlocks (simulation goes idle with the process still
    blocked). *)
