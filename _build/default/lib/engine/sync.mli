(** Synchronization primitives for simulated processes, plus an event-driven
    FIFO server used to model serially-shared hardware (an i960 NI processor,
    a DMA engine, a CPU). *)

(** Unbounded FIFO mailbox. [recv] blocks the calling process until a value
    is available. *)
module Mailbox : sig
  type 'a t

  val create : Sim.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  val try_recv : 'a t -> 'a option
  val length : 'a t -> int

  val recv_timeout : 'a t -> timeout:Sim.time -> 'a option
  (** Like {!recv} but gives up after [timeout] ns, returning [None]. *)
end

(** Counting semaphore. *)
module Semaphore : sig
  type t

  val create : Sim.t -> int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val available : t -> int
end

(** Broadcast condition: processes wait; a broadcast wakes all current
    waiters. Waiters must re-check their predicate in a loop. *)
module Condition : sig
  type t

  val create : Sim.t -> t
  val wait : t -> unit
  val broadcast : t -> unit

  val wait_for : t -> (unit -> bool) -> unit
  (** [wait_for c pred] returns immediately if [pred ()]; otherwise blocks on
      [c], re-checking [pred] after each broadcast. *)

  val waiters : t -> int
end

(** An event-driven serial server: jobs are executed one at a time in FIFO
    order, each occupying the server for its service cost, then invoking its
    completion callback. This models hardware that processes one unit of work
    at a time without needing a coroutine. *)
module Server : sig
  type t

  val create : Sim.t -> t

  val submit : t -> cost:Sim.time -> (unit -> unit) -> unit
  (** Enqueue a job taking [cost] ns of server time; [k] runs at completion. *)

  val busy : t -> bool
  val queue_length : t -> int

  val busy_time : t -> Sim.time
  (** Total time the server has spent serving jobs (utilization numerator). *)
end
