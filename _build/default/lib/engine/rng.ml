type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.mul (Int64.of_int (seed + 1)) 0xBF58476D1CE4E5B9L }

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t =
  let s = int64 t in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then bits t mod bound
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t ~p = float t 1.0 < p

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u
