lib/engine/sync.mli: Sim
