lib/engine/proc.ml: Effect List Logs Printexc Sim
