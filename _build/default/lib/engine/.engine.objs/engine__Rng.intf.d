lib/engine/rng.mli:
