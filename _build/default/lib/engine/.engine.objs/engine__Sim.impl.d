lib/engine/sim.ml: Array Float Printf
