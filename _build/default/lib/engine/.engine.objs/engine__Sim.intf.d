lib/engine/sim.mli:
