lib/engine/rng.ml: Array Bytes Char Int64
