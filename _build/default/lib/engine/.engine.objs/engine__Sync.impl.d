lib/engine/sync.ml: List Proc Queue Sim
