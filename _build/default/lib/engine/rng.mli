(** Deterministic, splittable pseudo-random number generator (splitmix64).
    Used everywhere the simulator needs randomness (loss injection, workload
    generation) so that every run is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int64 : t -> int64
val bits : t -> int  (* 30 uniformly random bits, non-negative *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** True with probability [p]. *)

val bytes : t -> int -> bytes
(** Random payload of the given length. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)
