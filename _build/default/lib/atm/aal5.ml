let trailer_size = 8
let max_payload = 65535

let cells_for len =
  if len < 0 then invalid_arg "Aal5.cells_for: negative length";
  (len + trailer_size + Cell.payload_size - 1) / Cell.payload_size

let pdu_wire_bytes len = cells_for len * Cell.on_wire_size

(* Trailer layout (last 8 bytes of the CS-PDU):
   byte 0: CPCS-UU (we carry 0)
   byte 1: CPI (0)
   bytes 2-3: payload length, big-endian
   bytes 4-7: CRC-32 over the whole CS-PDU with the CRC field excluded. *)
let segment ~vci payload =
  let len = Bytes.length payload in
  if len > max_payload then invalid_arg "Aal5.segment: payload too long";
  let ncells = cells_for len in
  let total = ncells * Cell.payload_size in
  let pdu = Bytes.make total '\000' in
  Bytes.blit payload 0 pdu 0 len;
  Bytes.set_uint16_be pdu (total - 6) len;
  let crc = Crc32.digest pdu ~pos:0 ~len:(total - 4) in
  Bytes.set_int32_be pdu (total - 4) crc;
  List.init ncells (fun i ->
      Cell.make ~vci ~eop:(i = ncells - 1)
        (Bytes.sub pdu (i * Cell.payload_size) Cell.payload_size))

type error = Crc_mismatch | Length_mismatch | Too_long

let pp_error fmt = function
  | Crc_mismatch -> Format.pp_print_string fmt "crc-mismatch"
  | Length_mismatch -> Format.pp_print_string fmt "length-mismatch"
  | Too_long -> Format.pp_print_string fmt "too-long"

module Reassembler = struct
  type t = {
    buf : Buffer.t;
    mutable error_count : int;
  }

  let create () = { buf = Buffer.create 256; error_count = 0 }
  let in_progress t = Buffer.length t.buf > 0
  let errors t = t.error_count

  let max_pdu_bytes = cells_for max_payload * Cell.payload_size

  let finish t =
    let pdu = Buffer.to_bytes t.buf in
    Buffer.clear t.buf;
    let total = Bytes.length pdu in
    (* total is a positive multiple of 48 by construction *)
    let stored_len = Bytes.get_uint16_be pdu (total - 6) in
    let stored_crc = Bytes.get_int32_be pdu (total - 4) in
    let crc = Crc32.digest pdu ~pos:0 ~len:(total - 4) in
    if crc <> stored_crc then begin
      t.error_count <- t.error_count + 1;
      Error Crc_mismatch
    end
    else if
      stored_len > total - trailer_size
      || cells_for stored_len * Cell.payload_size <> total
    then begin
      t.error_count <- t.error_count + 1;
      Error Length_mismatch
    end
    else Ok (Bytes.sub pdu 0 stored_len)

  let push t (cell : Cell.t) =
    if Buffer.length t.buf + Cell.payload_size > max_pdu_bytes then begin
      Buffer.clear t.buf;
      t.error_count <- t.error_count + 1;
      Some (Error Too_long)
    end
    else begin
      Buffer.add_bytes t.buf cell.payload;
      if cell.eop then Some (finish t) else None
    end
end
