open Engine

type t = {
  sim : Sim.t;
  cell_time : Sim.time;
  propagation : Sim.time;
  queue_capacity : int;
  queue : Cell.t Queue.t;
  mutable transmitting : bool;
  mutable receiver : (Cell.t -> unit) option;
  mutable loss : (Rng.t * float) option;
  mutable sent : int;
  mutable dropped : int;
}

let create sim ?(queue_capacity = max_int) ~bandwidth_mbps ~propagation () =
  if bandwidth_mbps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  let bits = float_of_int (Cell.on_wire_size * 8) in
  let cell_time = int_of_float (Float.round (bits /. bandwidth_mbps *. 1_000.)) in
  {
    sim;
    cell_time;
    propagation;
    queue_capacity;
    queue = Queue.create ();
    transmitting = false;
    receiver = None;
    loss = None;
    sent = 0;
    dropped = 0;
  }

let set_receiver t f = t.receiver <- Some f
let set_loss t rng ~p = t.loss <- Some (rng, p)
let cell_time t = t.cell_time
let cells_sent t = t.sent
let cells_dropped t = t.dropped
let queue_length t = Queue.length t.queue
let busy t = t.transmitting

let deliver t cell =
  let lost =
    match t.loss with Some (rng, p) -> Rng.bernoulli rng ~p | None -> false
  in
  if lost then t.dropped <- t.dropped + 1
  else begin
    t.sent <- t.sent + 1;
    match t.receiver with
    | Some f ->
        ignore (Sim.schedule t.sim ~delay:t.propagation (fun () -> f cell))
    | None -> failwith "Link: no receiver attached"
  end

let rec transmit t cell =
  t.transmitting <- true;
  ignore
    (Sim.schedule t.sim ~delay:t.cell_time (fun () ->
         deliver t cell;
         match Queue.take_opt t.queue with
         | Some next -> transmit t next
         | None -> t.transmitting <- false))

let send t cell =
  if t.transmitting then
    if Queue.length t.queue >= t.queue_capacity then begin
      t.dropped <- t.dropped + 1;
      false
    end
    else begin
      Queue.add cell t.queue;
      true
    end
  else begin
    transmit t cell;
    true
  end
