lib/atm/link.mli: Cell Engine
