lib/atm/network.ml: Array Cell Engine Link Sim Switch
