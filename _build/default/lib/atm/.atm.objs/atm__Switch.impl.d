lib/atm/switch.ml: Array Cell Engine Hashtbl Link Printf Sim
