lib/atm/link.ml: Cell Engine Float Queue Rng Sim
