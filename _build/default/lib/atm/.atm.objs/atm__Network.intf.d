lib/atm/network.mli: Cell Engine Link Switch
