lib/atm/aal5.ml: Buffer Bytes Cell Crc32 Format List
