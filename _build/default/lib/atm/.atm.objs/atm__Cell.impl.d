lib/atm/cell.ml: Bytes Format Printf
