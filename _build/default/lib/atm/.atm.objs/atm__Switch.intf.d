lib/atm/switch.mli: Cell Engine Link
