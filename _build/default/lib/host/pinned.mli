(** Pinned-memory accounting. Communication segments must be pinned to
    physical memory and mapped into the NI's DMA space (§4.2.4), so each host
    has a hard budget; endpoint creation fails when it is exhausted. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val used : t -> int
val available : t -> int

val reserve : t -> int -> bool
(** [reserve t n] takes [n] bytes; [false] (and no change) if they are not
    available. *)

val release : t -> int -> unit
(** Raises [Invalid_argument] when releasing more than is reserved. *)
