lib/host/pinned.mli:
