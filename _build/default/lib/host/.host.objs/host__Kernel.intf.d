lib/host/kernel.mli: Mbuf
