lib/host/machine.mli:
