lib/host/mbuf.ml:
