lib/host/pinned.ml:
