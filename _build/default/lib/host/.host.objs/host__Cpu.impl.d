lib/host/cpu.ml: Engine Float Machine Proc Sim
