lib/host/machine.ml: Float
