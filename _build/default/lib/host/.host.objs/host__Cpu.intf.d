lib/host/cpu.mli: Engine Machine
