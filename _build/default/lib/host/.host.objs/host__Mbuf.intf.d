lib/host/mbuf.mli:
