lib/host/kernel.ml: Float Mbuf
