(** Cost model of the traditional in-kernel networking path (SunOS 4.1.3
    with the vendor ATM driver): system calls, socket-layer processing,
    protocol processing, mbuf handling, kernel/user copies, and the bounded
    socket receive buffer whose overflow loses UDP packets (§7.3). All costs
    are in reference-machine nanoseconds. *)

type config = {
  socket_layer_ns : int;  (** socket syscall layer per operation *)
  udp_ns : int;  (** UDP+IP protocol processing per packet *)
  tcp_ns : int;  (** TCP+IP protocol processing per packet *)
  driver_ns : int;  (** device-driver per-packet cost *)
  copy_ns_per_byte : float;  (** kernel<->user + kernel-internal copies *)
  mbuf : Mbuf.config;
  sockbuf_limit : int;  (** socket receive-buffer bound: 52 KB in SunOS *)
}

val sunos : config

type proto = Udp | Tcp

val send_cost : config -> proto -> len:int -> int
(** Per-packet cost on the send side: syscall + socket + copy + mbuf +
    protocol + driver (reference-machine ns; add NI costs separately). *)

val recv_cost : config -> proto -> len:int -> int

(** The bounded socket receive buffer. Packets offered while full are
    dropped, which is exactly how kernel UDP loses messages in Figure 7. *)
module Sockbuf : sig
  type t

  val create : limit:int -> t

  val offer : t -> int -> bool
  (** [false]: dropped (would overflow). *)

  val take : t -> int -> unit
  val used : t -> int
  val drops : t -> int
end
