let cluster_size = 1024
let small_size = 112
let remainder_threshold = 512

type chain = { clusters : int; smalls : int }

let chain_for len =
  if len < 0 then invalid_arg "Mbuf.chain_for: negative length";
  let clusters = len / cluster_size in
  let rem = len mod cluster_size in
  if rem = 0 then { clusters; smalls = 0 }
  else if rem >= remainder_threshold then { clusters = clusters + 1; smalls = 0 }
  else { clusters; smalls = (rem + small_size - 1) / small_size }

let allocations c = c.clusters + c.smalls

type config = {
  cluster_alloc_ns : int;
  small_alloc_ns : int;
  small_copy_penalty_ns : int;
}

(* SunOS 4.1.3-flavoured costs on the reference SS-20. The absolute values
   are tuned so the kernel UDP curve lands in the paper's band; the *shape*
   comes from chain_for. *)
let sunos_config =
  { cluster_alloc_ns = 9_000; small_alloc_ns = 6_000; small_copy_penalty_ns = 7_000 }

let handling_cost cfg len =
  let c = chain_for len in
  (c.clusters * cfg.cluster_alloc_ns)
  + (c.smalls * (cfg.small_alloc_ns + cfg.small_copy_penalty_ns))
