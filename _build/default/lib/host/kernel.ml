type config = {
  socket_layer_ns : int;
  udp_ns : int;
  tcp_ns : int;
  driver_ns : int;
  copy_ns_per_byte : float;
  mbuf : Mbuf.config;
  sockbuf_limit : int;
}

(* Sized so that a small-message kernel UDP round trip over ATM lands near
   1 ms and kernel TCP throughput tops out around 55% of the fiber (§7),
   once combined with the Fore-firmware NI model. *)
let sunos =
  {
    socket_layer_ns = 40_000;
    udp_ns = 28_000;
    tcp_ns = 38_000;
    driver_ns = 35_000;
    copy_ns_per_byte = 38.;
    mbuf = Mbuf.sunos_config;
    sockbuf_limit = 52 * 1024;
  }

type proto = Udp | Tcp

let proto_cost cfg = function Udp -> cfg.udp_ns | Tcp -> cfg.tcp_ns

let copy_cost cfg len =
  int_of_float (Float.round (float_of_int len *. cfg.copy_ns_per_byte))

let send_cost cfg proto ~len =
  cfg.socket_layer_ns + copy_cost cfg len
  + Mbuf.handling_cost cfg.mbuf len
  + proto_cost cfg proto + cfg.driver_ns

let recv_cost cfg proto ~len =
  (* receive side: driver + protocol input + socket wakeup + copy out.
     mbuf handling happens here too (the driver stages arriving data in
     mbuf chains). *)
  cfg.driver_ns + Mbuf.handling_cost cfg.mbuf len + proto_cost cfg proto
  + cfg.socket_layer_ns + copy_cost cfg len

module Sockbuf = struct
  type t = { limit : int; mutable used : int; mutable drops : int }

  let create ~limit = { limit; used = 0; drops = 0 }

  let offer t len =
    if t.used + len > t.limit then begin
      t.drops <- t.drops + 1;
      false
    end
    else begin
      t.used <- t.used + len;
      true
    end

  let take t len =
    if len > t.used then invalid_arg "Sockbuf.take: more than buffered";
    t.used <- t.used - len

  let used t = t.used
  let drops t = t.drops
end
