type t = { capacity : int; mutable used : int }

let create ~capacity =
  if capacity < 0 then invalid_arg "Pinned.create: negative capacity";
  { capacity; used = 0 }

let capacity t = t.capacity
let used t = t.used
let available t = t.capacity - t.used

let reserve t n =
  if n < 0 then invalid_arg "Pinned.reserve: negative size";
  if t.used + n > t.capacity then false
  else begin
    t.used <- t.used + n;
    true
  end

let release t n =
  if n < 0 || n > t.used then invalid_arg "Pinned.release: bad size";
  t.used <- t.used - n
