(** The BSD mbuf buffering scheme the paper's §7.3 blames for the kernel UDP
    sawtooth (Figure 7): a packet is stored by filling 1 Kbyte cluster
    buffers; a remainder of 512 bytes or more gets one more cluster, while a
    smaller remainder is chopped into 112-byte small mbufs — which carry no
    reference counts, so they are copied rather than shared. *)

val cluster_size : int (* 1024 *)
val small_size : int (* 112 *)
val remainder_threshold : int (* 512 *)

type chain = { clusters : int; smalls : int }
(** The allocation pattern for one packet. *)

val chain_for : int -> chain
(** Allocation pattern for a packet of the given length. *)

val allocations : chain -> int

type config = {
  cluster_alloc_ns : int;  (** allocate + init one cluster mbuf *)
  small_alloc_ns : int;  (** allocate + init one small mbuf *)
  small_copy_penalty_ns : int;
      (** extra per-small-mbuf handling cost (no refcount: data is copied
          again at each layer crossing) *)
}

val sunos_config : config

val handling_cost : config -> int -> int
(** Per-packet mbuf allocation + handling cost for a packet of the given
    length — the sawtooth generator. *)
