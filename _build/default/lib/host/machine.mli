(** Workstation parameter sets. Protocol-processing overheads in this code
    base are expressed in nanoseconds *on the reference 60 MHz
    SPARCstation-20*; {!scale} converts them for a machine with a different
    clock (the paper's SS-10s are 50 MHz). *)

type t = {
  name : string;
  cpu_mhz : float;
  memcpy_ns_per_byte : float;
      (** user-space copy cost; ≈19 ns/B on the SS-20, derived from the UAM
          block-transfer slope in §5.2 (0.2 µs/B round trip = 4 copies). *)
  trap_ns : int;
      (** cost of a fast trap into the kernel (SBA-100 style, §4.1) *)
  syscall_ns : int;  (** full system-call entry/exit *)
}

val ss20 : t
(** 60 MHz SPARCstation-20 — the reference machine. *)

val ss10 : t
(** 50 MHz SPARCstation-10. *)

val reference_mhz : float
(** Clock of the machine the nanosecond cost constants were calibrated on. *)

val scale : t -> int -> int
(** [scale m ns] converts a reference-machine cost to machine [m]
    (slower clock → proportionally larger cost). *)
