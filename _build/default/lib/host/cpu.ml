open Engine

type t = { sim : Sim.t; machine : Machine.t; mutable busy : Sim.time }

let create sim machine = { sim; machine; busy = 0 }
let machine t = t.machine
let sim t = t.sim
let busy_time t = t.busy
let reset_busy t = t.busy <- 0

let charge_raw t ns =
  if ns < 0 then invalid_arg "Cpu.charge: negative cost";
  t.busy <- t.busy + ns;
  Proc.sleep t.sim ~time:ns

let charge t ns = charge_raw t (Machine.scale t.machine ns)
let charge_us t us = charge t (Sim.of_us_f us)

let charge_cycles t cycles =
  charge_raw t
    (int_of_float (Float.round (float_of_int cycles *. 1_000. /. t.machine.Machine.cpu_mhz)))

let copy_cost t ~bytes =
  int_of_float
    (Float.round (float_of_int bytes *. t.machine.Machine.memcpy_ns_per_byte))

let charge_copy t ~bytes = charge_raw t (copy_cost t ~bytes)
