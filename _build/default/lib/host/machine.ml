type t = {
  name : string;
  cpu_mhz : float;
  memcpy_ns_per_byte : float;
  trap_ns : int;
  syscall_ns : int;
}

let reference_mhz = 60.

let ss20 =
  {
    name = "SPARCstation-20/60MHz";
    cpu_mhz = 60.;
    memcpy_ns_per_byte = 19.;
    trap_ns = 2_000;
    syscall_ns = 20_000;
  }

let ss10 =
  {
    name = "SPARCstation-10/50MHz";
    cpu_mhz = 50.;
    memcpy_ns_per_byte = 19. *. 60. /. 50.;
    trap_ns = 2_400;
    syscall_ns = 24_000;
  }

let scale m ns =
  int_of_float (Float.round (float_of_int ns *. reference_mhz /. m.cpu_mhz))
