lib/uam/am.mli: Engine Unet
