lib/uam/xfer.ml: Am Array Bytes Fmt Hashtbl List
