lib/uam/uam.ml: Am Xfer
