lib/uam/am.ml: Array Bytes Engine Fmt Host Int32 List Logs Queue Sim Unet
