lib/uam/xfer.mli: Am
