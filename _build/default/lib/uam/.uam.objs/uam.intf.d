lib/uam/uam.mli: Am Xfer
