(** GAM bulk transfers over UAM: block stores and gets into registered
    remote memory regions, fragmented into the 4160-byte transfer buffers of
    §5.2. Stores are one-way (flow-controlled by the window, acknowledged
    for reliability); gets are request/reply. *)

type t

val attach : Am.t -> t
(** Registers the bulk-transfer handlers (indices 240+) on this instance. *)

val uam : t -> Am.t

val register_region : t -> id:int -> bytes -> unit
(** Expose a local memory region to remote stores/gets. *)

val region : t -> id:int -> bytes

val store : t -> dst:int -> region:int -> offset:int -> bytes -> unit
(** Asynchronous block store: fragments the data into chunk requests; blocks
    only when the flow-control window is full. Completion of all chunks is
    awaited with {!quiet}. *)

val store_sync : t -> dst:int -> region:int -> offset:int -> bytes -> unit
(** Store and wait until every chunk is acknowledged. *)

val get : t -> dst:int -> region:int -> offset:int -> len:int -> bytes
(** Blocking block get: issues pipelined chunk requests and assembles the
    replies. *)

type handle
(** A split-phase get in progress. *)

val get_async : t -> dst:int -> region:int -> offset:int -> len:int -> handle
(** Issue the chunk requests and return immediately; the paper's block-get
    bandwidth test keeps a series of these outstanding. *)

val await : t -> handle -> bytes

val quiet : t -> unit
(** Wait until all outstanding stores are acknowledged. *)
