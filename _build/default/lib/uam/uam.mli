(** U-Net Active Messages (§5): the GAM 1.1-style request/reply layer (see
    {!Am}) plus bulk block transfers (see {!Xfer}). *)

include module type of struct
  include Am
end

module Xfer = Xfer
