include Am
module Xfer = Xfer
