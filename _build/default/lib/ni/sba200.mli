(** The SBA-200 running the custom U-Net firmware of §4.2.2: the i960
    maintains per-endpoint protection state, polls i960-resident send/free
    queues, DMAs message data in 32-byte bursts, computes the AAL5 CRC in
    hardware, and special-cases single-cell messages on both paths. The
    default calibration targets the paper's §4.2.3 numbers: 65 µs single-cell
    round trip, 120 µs + ~6 µs/cell for multi-cell messages, fiber saturation
    from ~800-byte packets. *)

val default_config : I960_nic.config

val create : Atm.Network.t -> host:int -> ?config:I960_nic.config -> unit -> I960_nic.t
