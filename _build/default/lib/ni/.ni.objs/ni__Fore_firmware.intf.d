lib/ni/fore_firmware.mli: Atm I960_nic
