lib/ni/i960_nic.ml: Atm Bytes Engine Hashtbl Int32 List Queue Sim Sync Unet
