lib/ni/fore_firmware.ml: I960_nic
