lib/ni/sba200.ml: I960_nic
