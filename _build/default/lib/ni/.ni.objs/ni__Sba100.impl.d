lib/ni/sba100.ml: Atm Bytes Engine Hashtbl Host List Sim Sync Unet
