lib/ni/sba200.mli: Atm I960_nic
