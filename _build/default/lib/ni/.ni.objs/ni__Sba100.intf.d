lib/ni/sba100.mli: Atm Host Unet
