lib/ni/i960_nic.mli: Atm Engine Unet
