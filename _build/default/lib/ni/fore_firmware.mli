(** Fore Systems' original SBA-200 firmware (§4.2.1), the baseline the U-Net
    firmware replaced: the kernel-firmware interface is patterned after BSD
    mbufs, and the i960 chases those linked descriptor chains across the I/O
    bus with DMA — high per-message latency and no single-cell fast path.
    Calibrated to the paper's measurements: ≈160 µs round trip and
    ≈13 Mbytes/s with 4 KB packets. *)

val default_config : I960_nic.config

val create : Atm.Network.t -> host:int -> ?config:I960_nic.config -> unit -> I960_nic.t
