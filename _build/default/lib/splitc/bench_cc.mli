(** Connected components (§6): label propagation over a distributed random
    graph — local edges relax to a fixpoint each round, cross edges push
    (vertex, label) minima as two-value messages, rounds end when a global
    reduction reports no change. Verified against a sequential union-find. *)

val run : ?n:int -> ?degree:int -> Transport.t array -> Bench_common.result
