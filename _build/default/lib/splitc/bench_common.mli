(** Shared plumbing for the seven Split-C benchmarks of §6: deterministic
    data generation, timing collection, and the result record the Figure 5
    harness consumes. *)

type result = {
  name : string;
  total_us : float;  (** wall time: max over processors *)
  comm_us : float;  (** communication time: max over processors *)
  checked : bool;  (** output passed its correctness check *)
}

val comp_us : result -> float

val pp : Format.formatter -> result -> unit

val finish :
  name:string -> checked:bool array -> (float * float) array -> result
(** Combine per-processor (total, comm) timings and checks. *)

val keys_for : rank:int -> n:int -> seed:int -> int array
(** Deterministic pseudo-random 30-bit keys for sort benchmarks (same
    stream for a given rank/seed on every machine). *)

val cycles_per_key_bucket : int
(** Charged per key when computing its destination bucket. *)

val cycles_per_key_sort : int
(** Charged per key per comparison level of a local sort. *)

val charge_local_sort : Runtime.ctx -> int -> unit
(** Account an [n log n] local sort. *)
