(** The radix sorts of §6: [passes] rounds over [digit_bits]-bit digits with
    a rank-0 scan between histogram and permutation. [Small] sends one
    (position, key) pair per message; [Bulk] groups pairs by destination
    processor into bulk stores. *)

type variant = Small | Bulk

val run :
  ?n:int ->
  ?digit_bits:int ->
  ?passes:int ->
  variant:variant ->
  Transport.t array ->
  Bench_common.result
