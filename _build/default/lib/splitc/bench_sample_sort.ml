(* Sample sort (§6): sample the keys, pick p-1 splitters, permute every key
   to its destination bucket, then sort locally.

   The small-message variant packs two keys per message during the
   permutation phase — the paper's version optimized for small messages
   (an odd leftover travels with a -1 sentinel; keys are 30-bit and
   non-negative). The bulk variant presorts the local keys so each
   processor sends exactly one bulk store to every other processor. *)

let id_result = 20
let id_samples = 21
let id_counts = 22 (* incoming key counts, indexed by sender *)
let id_offsets = 23 (* receive offsets per sender *)
let id_boundary = 29
let buf_recv = 24

let oversample = 16

type variant = Small | Bulk

let bucket splitters key =
  let p = Array.length splitters + 1 in
  let lo = ref 0 and hi = ref (p - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key < splitters.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let choose_splitters samples p =
  Array.sort compare samples;
  let s = Array.length samples / p in
  Array.init (p - 1) (fun i -> samples.((i + 1) * s))

(* sortedness, cross-processor boundary order, and key-population checks *)
let verify ctx keys (sum_in_local, n_in_local) =
  let sorted = ref true in
  for i = 0 to Array.length keys - 2 do
    if keys.(i) > keys.(i + 1) then sorted := false
  done;
  let my_min = if Array.length keys = 0 then max_int else keys.(0) in
  let my_max =
    if Array.length keys = 0 then min_int else keys.(Array.length keys - 1)
  in
  let boundary = Array.make (2 * Runtime.nprocs ctx) 0 in
  Runtime.register_ints ctx ~id:id_boundary boundary;
  Runtime.barrier ctx;
  Runtime.write_int ctx ~proc:0 ~arr:id_boundary ~idx:(2 * Runtime.rank ctx)
    my_min;
  Runtime.write_int ctx ~proc:0 ~arr:id_boundary
    ~idx:((2 * Runtime.rank ctx) + 1)
    my_max;
  Runtime.barrier ctx;
  let boundaries_ok =
    if Runtime.rank ctx <> 0 then true
    else begin
      let ok = ref true in
      let prev_max = ref min_int in
      for r = 0 to Runtime.nprocs ctx - 1 do
        let mn = boundary.(2 * r) and mx = boundary.((2 * r) + 1) in
        if mn <> max_int then begin
          if mn < !prev_max then ok := false;
          prev_max := mx
        end
      done;
      !ok
    end
  in
  let sum_out =
    Runtime.reduce_int ctx Runtime.Sum (Array.fold_left ( + ) 0 keys)
  in
  let n_out = Runtime.reduce_int ctx Runtime.Sum (Array.length keys) in
  let sum_in = Runtime.reduce_int ctx Runtime.Sum sum_in_local in
  let n_in = Runtime.reduce_int ctx Runtime.Sum n_in_local in
  !sorted && boundaries_ok && sum_out = sum_in && n_out = n_in

let variant_name = function
  | Small -> "sample-sort-small"
  | Bulk -> "sample-sort-bulk"

let run ?(n = 65_536) ~variant transports =
  let program ctx =
    let p = Runtime.nprocs ctx in
    let rank = Runtime.rank ctx in
    let n_local = n / p in
    let capacity = (3 * n_local) + 64 in
    let keys = Bench_common.keys_for ~rank ~n:n_local ~seed:42 in
    let checksum_in = (Array.fold_left ( + ) 0 keys, n_local) in
    Runtime.register_ints ctx ~id:id_samples (Array.make (p * oversample) 0);
    Runtime.register_append_buffer ctx ~id:buf_recv;
    let result = Array.make capacity 0 in
    let incounts = Array.make p 0 in
    let inoffsets = Array.make p 0 in
    Runtime.register_ints ctx ~id:id_result result;
    Runtime.register_ints ctx ~id:id_counts incounts;
    Runtime.register_ints ctx ~id:id_offsets inoffsets;
    Runtime.barrier ctx;
    (* phase 1: sample, splitters, broadcast *)
    let rng = Engine.Rng.create (1234 + rank) in
    let my_samples =
      Array.init oversample (fun _ -> keys.(Engine.Rng.int rng (max 1 n_local)))
    in
    Runtime.store_ints ctx ~proc:0 ~arr:id_samples ~pos:(rank * oversample)
      my_samples;
    Runtime.all_store_sync ctx;
    let splitters =
      if rank = 0 then begin
        Bench_common.charge_local_sort ctx (p * oversample);
        let samples = Runtime.get_ints ctx ~proc:0 ~arr:id_samples ~pos:0
            ~len:(p * oversample) in
        Runtime.broadcast_ints ctx ~root:0 (choose_splitters samples p)
      end
      else Runtime.broadcast_ints ctx ~root:0 (Array.make (max 1 (p - 1)) 0)
    in
    (* phase 2: permutation *)
    let local_keys =
      match variant with
      | Small ->
          let held = Array.make p (-1) in
          Array.iter
            (fun key ->
              Runtime.charge ctx ~cycles:Bench_common.cycles_per_key_bucket;
              let d = bucket splitters key in
              if held.(d) < 0 then held.(d) <- key
              else begin
                Runtime.store_pair ctx ~proc:d ~buf:buf_recv held.(d) key;
                held.(d) <- -1
              end)
            keys;
          Array.iteri
            (fun d k ->
              if k >= 0 then Runtime.store_pair ctx ~proc:d ~buf:buf_recv k (-1))
            held;
          Runtime.all_store_sync ctx;
          let raw = Runtime.append_buffer_contents ctx ~id:buf_recv in
          let kept = Array.to_list raw |> List.filter (fun k -> k >= 0) in
          Array.of_list kept
      | Bulk ->
          let buckets = Array.make p [] in
          Array.iter
            (fun key ->
              Runtime.charge ctx ~cycles:Bench_common.cycles_per_key_bucket;
              let d = bucket splitters key in
              buckets.(d) <- key :: buckets.(d))
            keys;
          let outb = Array.map Array.of_list buckets in
          for d = 0 to p - 1 do
            Runtime.write_int ctx ~proc:d ~arr:id_counts ~idx:rank
              (Array.length outb.(d))
          done;
          Runtime.barrier ctx;
          let off = ref 0 in
          for s = 0 to p - 1 do
            inoffsets.(s) <- !off;
            off := !off + incounts.(s)
          done;
          let my_incoming = !off in
          Runtime.barrier ctx;
          for d = 0 to p - 1 do
            if Array.length outb.(d) > 0 then begin
              let pos =
                Runtime.read_int ctx ~proc:d ~arr:id_offsets ~idx:rank
              in
              Runtime.store_ints ctx ~proc:d ~arr:id_result ~pos outb.(d)
            end
          done;
          Runtime.all_store_sync ctx;
          Array.sub result 0 my_incoming
    in
    (* phase 3: local sort *)
    Array.sort compare local_keys;
    Bench_common.charge_local_sort ctx (Array.length local_keys);
    Runtime.barrier ctx;
    let timing = (Runtime.elapsed_us ctx, Runtime.comm_us ctx) in
    let ok = verify ctx local_keys checksum_in in
    (timing, ok)
  in
  let out = Runtime.run transports program in
  Bench_common.finish ~name:(variant_name variant)
    ~checked:(Array.map snd out) (Array.map fst out)
