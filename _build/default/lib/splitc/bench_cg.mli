(** Conjugate gradient (§6) on the k x k 5-point Poisson problem,
    row-block distributed: each matrix-vector product exchanges one boundary
    row with each neighbour (bulk stores), and every iteration runs two
    global dot products. Verified by recomputing the true residual
    ||b - Ax||^2 against the recurrence's value.

    The 2-norm residual of CG is not monotone on ill-conditioned grids:
    choose [iters] on the order of [k] for convergence at larger sizes. *)

val run : ?k:int -> ?iters:int -> Transport.t array -> Bench_common.result
