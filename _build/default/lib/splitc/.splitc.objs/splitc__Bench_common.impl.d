lib/splitc/bench_common.ml: Array Engine Float Format Fun Runtime
