lib/splitc/bench_sample_sort.mli: Bench_common Runtime Transport
