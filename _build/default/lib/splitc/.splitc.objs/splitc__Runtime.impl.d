lib/splitc/runtime.ml: Array Bytes Engine Float Fmt Hashtbl Int64 Option Printf Proc Sim Transport
