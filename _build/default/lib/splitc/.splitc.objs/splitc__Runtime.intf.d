lib/splitc/runtime.mli: Engine Transport
