lib/splitc/bench_mm.mli: Bench_common Transport
