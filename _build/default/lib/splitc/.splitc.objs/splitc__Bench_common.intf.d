lib/splitc/bench_common.mli: Format Runtime
