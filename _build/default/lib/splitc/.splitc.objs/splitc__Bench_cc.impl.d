lib/splitc/bench_cc.ml: Array Bench_common Engine Fun Hashtbl List Runtime
