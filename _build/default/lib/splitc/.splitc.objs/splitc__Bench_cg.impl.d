lib/splitc/bench_cg.ml: Array Bench_common Float Printf Runtime Sys
