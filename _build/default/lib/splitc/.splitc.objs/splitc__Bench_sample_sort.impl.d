lib/splitc/bench_sample_sort.ml: Array Bench_common Engine List Runtime
