lib/splitc/machine_model.mli: Engine Transport
