lib/splitc/bench_mm.ml: Array Bench_common Float List Runtime
