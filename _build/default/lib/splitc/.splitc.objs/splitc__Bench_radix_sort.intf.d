lib/splitc/bench_radix_sort.mli: Bench_common Transport
