lib/splitc/transport.ml: Engine Host Option Uam Unet
