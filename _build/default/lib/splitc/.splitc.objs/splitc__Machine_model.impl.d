lib/splitc/machine_model.ml: Array Bytes Engine Float Fmt Proc Queue Sim Sync Transport
