lib/splitc/bench_cc.mli: Bench_common Transport
