lib/splitc/bench_radix_sort.ml: Array Bench_common Bench_sample_sort List Runtime
