lib/splitc/transport.mli: Engine Uam
