lib/splitc/bench_cg.mli: Bench_common Transport
