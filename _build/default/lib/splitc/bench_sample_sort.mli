(** The sample sorts of §6: sample, pick p-1 splitters, permute every key to
    its bucket, sort locally. [Small] packs two keys per Active Message
    during the permutation (the paper's small-message optimization); [Bulk]
    presorts locally and sends one bulk store per destination. Output is
    verified: locally sorted, boundaries ordered across processors, key
    population preserved. *)

type variant = Small | Bulk

val run : ?n:int -> variant:variant -> Transport.t array -> Bench_common.result

val verify : Runtime.ctx -> int array -> int * int -> bool
(** [verify ctx keys (sum_in, n_in)] checks a distributed sorted result
    (shared with the radix sorts). *)
