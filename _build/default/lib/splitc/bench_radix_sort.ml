(* Radix sort (§6): [passes] rounds over [digit_bits]-bit digits. Each pass
   histograms the local keys, computes the global rank of every bucket slot
   (a parallel scan done on processor 0), then permutes each key to its
   destination position.

   The small-message variant sends one (position, key) pair per message —
   two values, as the paper's small-message radix sort packs. The bulk
   variant groups pairs by destination processor and sends one bulk store
   per destination per pass. *)

let id_out = 30 (* destination array for the current pass *)
let id_hist = 31 (* rank 0: p x buckets histogram matrix *)
let id_base = 32 (* per-processor bucket start offsets *)
let id_counts = 33 (* bulk variant: incoming pair counts per sender *)
let id_offsets = 34
let id_pairs = 35 (* bulk variant: incoming (pos, key) pairs *)
let buf_pairs = 36 (* small variant: appended (pos, key) pairs *)

type variant = Small | Bulk

let variant_name = function
  | Small -> "radix-sort-small"
  | Bulk -> "radix-sort-bulk"

let run ?(n = 65_536) ?(digit_bits = 8) ?(passes = 2) ~variant transports =
  let buckets = 1 lsl digit_bits in
  let program ctx =
    let p = Runtime.nprocs ctx in
    let rank = Runtime.rank ctx in
    let n_local = n / p in
    (* keys bounded by the digits the passes cover, so the sort is total *)
    let key_bound = 1 lsl (digit_bits * passes) in
    let keys =
      Array.map
        (fun k -> k land (key_bound - 1))
        (Bench_common.keys_for ~rank ~n:n_local ~seed:7)
    in
    let checksum_in = (Array.fold_left ( + ) 0 keys, n_local) in
    let out = Array.make n_local 0 in
    let hist =
      Array.make (if rank = 0 then p * buckets else 1) 0
    in
    let base = Array.make buckets 0 in
    let incounts = Array.make p 0 in
    let inoffsets = Array.make p 0 in
    let inpairs = Array.make (2 * n_local) 0 in
    Runtime.register_ints ctx ~id:id_out out;
    Runtime.register_ints ctx ~id:id_hist hist;
    Runtime.register_ints ctx ~id:id_base base;
    Runtime.register_ints ctx ~id:id_counts incounts;
    Runtime.register_ints ctx ~id:id_offsets inoffsets;
    Runtime.register_ints ctx ~id:id_pairs inpairs;
    Runtime.register_append_buffer ctx ~id:buf_pairs;
    Runtime.barrier ctx;
    let current = ref keys in
    for pass = 0 to passes - 1 do
      let shift = pass * digit_bits in
      let digit k = (k lsr shift) land (buckets - 1) in
      (* local histogram *)
      let counts = Array.make buckets 0 in
      Array.iter
        (fun k ->
          counts.(digit k) <- counts.(digit k) + 1)
        !current;
      Runtime.charge ctx ~cycles:(n_local * 4);
      (* gather histograms on rank 0 *)
      Runtime.store_ints ctx ~proc:0 ~arr:id_hist ~pos:(rank * buckets) counts;
      Runtime.all_store_sync ctx;
      (* rank 0 scans: start offset of (proc r, bucket b) in the global
         ordering = sum of all lower buckets + same-bucket lower ranks *)
      if rank = 0 then begin
        let bucket_tot = Array.make buckets 0 in
        for b = 0 to buckets - 1 do
          for r = 0 to p - 1 do
            bucket_tot.(b) <- bucket_tot.(b) + hist.((r * buckets) + b)
          done
        done;
        let start = Array.make buckets 0 in
        for b = 1 to buckets - 1 do
          start.(b) <- start.(b - 1) + bucket_tot.(b - 1)
        done;
        Runtime.charge ctx ~cycles:(p * buckets * 4);
        for r = 0 to p - 1 do
          let mine = Array.make buckets 0 in
          for b = 0 to buckets - 1 do
            mine.(b) <- start.(b);
            start.(b) <- start.(b) + hist.((r * buckets) + b)
          done;
          Runtime.store_ints ctx ~proc:r ~arr:id_base ~pos:0 mine
        done
      end;
      Runtime.all_store_sync ctx;
      (* permutation: each key goes to global position base[digit]++ *)
      (match variant with
      | Small ->
          Array.iter
            (fun k ->
              Runtime.charge ctx ~cycles:Bench_common.cycles_per_key_bucket;
              let d = digit k in
              let gpos = base.(d) in
              base.(d) <- gpos + 1;
              let dproc = gpos / n_local and didx = gpos mod n_local in
              Runtime.store_pair ctx ~proc:dproc ~buf:buf_pairs didx k)
            !current;
          Runtime.all_store_sync ctx;
          let pairs = Runtime.append_buffer_contents ctx ~id:buf_pairs in
          let i = ref 0 in
          while !i + 1 < Array.length pairs do
            out.(pairs.(!i)) <- pairs.(!i + 1);
            i := !i + 2
          done;
          (* reset the append buffer for the next pass *)
          Runtime.register_append_buffer ctx ~id:buf_pairs
      | Bulk ->
          let grouped = Array.make p [] in
          Array.iter
            (fun k ->
              Runtime.charge ctx ~cycles:Bench_common.cycles_per_key_bucket;
              let d = digit k in
              let gpos = base.(d) in
              base.(d) <- gpos + 1;
              let dproc = gpos / n_local and didx = gpos mod n_local in
              grouped.(dproc) <- (didx, k) :: grouped.(dproc))
            !current;
          for d = 0 to p - 1 do
            Runtime.write_int ctx ~proc:d ~arr:id_counts ~idx:rank
              (List.length grouped.(d))
          done;
          Runtime.barrier ctx;
          let off = ref 0 in
          for s = 0 to p - 1 do
            inoffsets.(s) <- !off;
            off := !off + incounts.(s)
          done;
          Runtime.barrier ctx;
          for d = 0 to p - 1 do
            match grouped.(d) with
            | [] -> ()
            | l ->
                let flat =
                  l |> List.rev
                  |> List.concat_map (fun (i, k) -> [ i; k ])
                  |> Array.of_list
                in
                let pos =
                  2 * Runtime.read_int ctx ~proc:d ~arr:id_offsets ~idx:rank
                in
                Runtime.store_ints ctx ~proc:d ~arr:id_pairs ~pos flat
          done;
          Runtime.all_store_sync ctx;
          let total_in = Array.fold_left ( + ) 0 incounts in
          for j = 0 to total_in - 1 do
            out.(inpairs.(2 * j)) <- inpairs.((2 * j) + 1)
          done;
          Array.fill incounts 0 p 0);
      Runtime.charge ctx ~cycles:(n_local * 4);
      current := Array.copy out;
      Runtime.barrier ctx
    done;
    let timing = (Runtime.elapsed_us ctx, Runtime.comm_us ctx) in
    let ok = Bench_sample_sort.verify ctx !current checksum_in in
    (timing, ok)
  in
  let out = Runtime.run transports program in
  Bench_common.finish ~name:(variant_name variant)
    ~checked:(Array.map snd out) (Array.map fst out)
