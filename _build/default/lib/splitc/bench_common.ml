type result = {
  name : string;
  total_us : float;
  comm_us : float;
  checked : bool;
}

let comp_us r = r.total_us -. r.comm_us

let pp fmt r =
  Format.fprintf fmt "%-18s total %10.0f us  comp %10.0f us  comm %10.0f us  %s"
    r.name r.total_us (comp_us r) r.comm_us
    (if r.checked then "ok" else "FAILED")

let finish ~name ~checked timings =
  let total = Array.fold_left (fun acc (t, _) -> Float.max acc t) 0. timings in
  let comm = Array.fold_left (fun acc (_, c) -> Float.max acc c) 0. timings in
  { name; total_us = total; comm_us = comm; checked = Array.for_all Fun.id checked }

let keys_for ~rank ~n ~seed =
  let rng = Engine.Rng.create ((seed * 7919) + rank) in
  Array.init n (fun _ -> Engine.Rng.int rng (1 lsl 30))

let cycles_per_key_bucket = 25
let cycles_per_key_sort = 12

let charge_local_sort ctx n =
  if n > 1 then begin
    let logn =
      int_of_float (Float.round (Float.log (float_of_int n) /. Float.log 2.))
    in
    Runtime.charge ctx ~cycles:(n * logn * cycles_per_key_sort)
  end
