(** The blocked matrix multiply of §6: g x g blocks of b x b doubles dealt
    round-robin over the processors, with the next iteration's blocks
    prefetched (split-phase gets) while the current ones multiply. Matrix
    entries are closed-form functions of their coordinates, so results are
    verified in place. *)

type params = { g : int  (** blocks per side *); b : int  (** block side *) }

val default : params
(** The paper's 4 x 4 blocks (with a reduced 64-double side). *)

val run : ?params:params -> Transport.t array -> Bench_common.result
