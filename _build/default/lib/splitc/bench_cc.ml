(* Connected components (§6): label propagation over a distributed random
   graph. Vertices are block-distributed; every vertex starts labelled with
   its own id and repeatedly adopts the minimum label among its neighbours.
   Local edges relax locally to a fixpoint each round; cross edges push
   labels to the owner with small messages ((vertex, label) pairs — the
   same two-values-per-message traffic as the small-message sorts). Rounds
   proceed until a global reduction reports no change.

   The graph is deterministic from the seed, so the result is verified
   against a sequential union-find on processor 0 for moderate sizes. *)

let buf_updates = 40

let gen_edges ~n ~degree ~seed =
  let rng = Engine.Rng.create seed in
  let m = n * degree / 2 in
  Array.init m (fun _ ->
      let u = Engine.Rng.int rng n in
      let v = Engine.Rng.int rng n in
      (u, v))

(* sequential union-find for verification *)
let serial_components ~n edges =
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  Array.iter
    (fun (u, v) ->
      let ru = find u and rv = find v in
      if ru <> rv then parent.(max ru rv) <- min ru rv)
    edges;
  Array.init n (fun v -> find v)

let run ?(n = 16_384) ?(degree = 4) transports =
  let edges = gen_edges ~n ~degree ~seed:99 in
  let program ctx =
    let p = Runtime.nprocs ctx in
    let rank = Runtime.rank ctx in
    let n_local = n / p in
    let lo = rank * n_local in
    let owner v = min (p - 1) (v / n_local) in
    (* edges with an endpoint here (edges fully local appear once) *)
    let my_edges =
      Array.to_list edges
      |> List.filter (fun (u, v) -> owner u = rank || owner v = rank)
    in
    let labels = Array.init n_local (fun i -> lo + i) in
    Runtime.register_append_buffer ctx ~id:buf_updates;
    Runtime.barrier ctx;
    let read_label v =
      if owner v = rank then labels.(v - (rank * n_local)) else -1
    in
    let continue = ref true in
    let rounds = ref 0 in
    while !continue do
      incr rounds;
      let changed = ref 0 in
      (* local relaxation to a fixpoint *)
      let local_pass () =
        let any = ref false in
        List.iter
          (fun (u, v) ->
            if owner u = rank && owner v = rank then begin
              let lu = read_label u and lv = read_label v in
              Runtime.charge ctx ~cycles:12;
              if lu < lv then begin
                labels.(v - lo) <- lu;
                any := true
              end
              else if lv < lu then begin
                labels.(u - lo) <- lv;
                any := true
              end
            end)
          my_edges;
        !any
      in
      while local_pass () do
        changed := !changed + 1
      done;
      (* push labels across cut edges to the remote owner *)
      List.iter
        (fun (u, v) ->
          let push ~local ~remote =
            let l = read_label local in
            Runtime.charge ctx ~cycles:8;
            Runtime.store_pair ctx ~proc:(owner remote) ~buf:buf_updates
              (remote - (owner remote * n_local))
              l
          in
          if owner u = rank && owner v <> rank then push ~local:u ~remote:v
          else if owner v = rank && owner u <> rank then push ~local:v ~remote:u)
        my_edges;
      Runtime.all_store_sync ctx;
      (* apply incoming (vertex, label) minima *)
      let updates = Runtime.append_buffer_contents ctx ~id:buf_updates in
      Runtime.register_append_buffer ctx ~id:buf_updates;
      let i = ref 0 in
      while !i + 1 < Array.length updates do
        let v = updates.(!i) and l = updates.(!i + 1) in
        Runtime.charge ctx ~cycles:6;
        if l < labels.(v) then begin
          labels.(v) <- l;
          changed := !changed + 1
        end;
        i := !i + 2
      done;
      let total_changed = Runtime.reduce_int ctx Runtime.Sum !changed in
      continue := total_changed > 0
    done;
    Runtime.barrier ctx;
    let timing = (Runtime.elapsed_us ctx, Runtime.comm_us ctx) in
    (* verification: gather labels on 0, compare to sequential union-find *)
    let id_all = 41 in
    let all = Array.make (if rank = 0 then n else 1) 0 in
    Runtime.register_ints ctx ~id:id_all all;
    Runtime.barrier ctx;
    Runtime.store_ints ctx ~proc:0 ~arr:id_all ~pos:lo labels;
    Runtime.all_store_sync ctx;
    let ok =
      if rank <> 0 then true
      else begin
        let expect = serial_components ~n edges in
        (* labels must induce the same partition: same label <-> same comp *)
        let map = Hashtbl.create 64 in
        let ok = ref true in
        for v = 0 to n - 1 do
          match Hashtbl.find_opt map expect.(v) with
          | None -> Hashtbl.add map expect.(v) all.(v)
          | Some l -> if l <> all.(v) then ok := false
        done;
        (* and distinct components must have distinct labels *)
        let seen = Hashtbl.create 64 in
        Hashtbl.iter
          (fun _ l ->
            if Hashtbl.mem seen l then ok := false else Hashtbl.add seen l ())
          map;
        !ok
      end
    in
    (timing, ok)
  in
  let out = Runtime.run transports program in
  Bench_common.finish ~name:"connected-comps"
    ~checked:(Array.map snd out) (Array.map fst out)
