(** The Split-C-style runtime core (§6) over an Active-Message transport: one
    thread of control per processor, a global address space of registered
    arrays addressed as (processor, array id, index), blocking reads/writes
    (what dereferencing a global pointer compiles to), one-way stores with
    the two-values-per-message packing the paper's sample sort uses, bulk
    transfers, barriers and reductions.

    Communication time is instrumented per processor: every blocking
    runtime call and every poll adds to the processor's comm counter, so
    benchmarks can report the computation/communication split of Figure 5. *)

type ctx

val rank : ctx -> int
val nprocs : ctx -> int
val sim : ctx -> Engine.Sim.t

val run : Transport.t array -> (ctx -> 'a) -> 'a array
(** Spawn one program instance per processor and drive the simulation to
    completion; results are indexed by rank. *)

(** {2 Time accounting} *)

val charge : ctx -> cycles:int -> unit
(** Account local computation (in machine cycles). *)

val elapsed_us : ctx -> float
(** Simulated time since this processor entered the program. *)

val comm_us : ctx -> float
(** Time this processor has spent in communication (blocking runtime calls
    and message handling). *)

(** {2 Collectives} *)

val barrier : ctx -> unit

type op = Sum | Min | Max

val reduce_int : ctx -> op -> int -> int
(** All-reduce: every processor contributes and receives the result. *)

val reduce_float : ctx -> op -> float -> float

val broadcast_ints : ctx -> root:int -> int array -> int array
(** Root's array reaches everyone (others pass a same-length buffer). *)

(** {2 Global arrays}

    Arrays are registered under small integer ids; every processor registers
    its local part under the same id (SPMD style). *)

val register_ints : ctx -> id:int -> int array -> unit
val register_floats : ctx -> id:int -> float array -> unit

val read_int : ctx -> proc:int -> arr:int -> idx:int -> int
(** Blocking global-pointer dereference: request + reply. *)

val write_int : ctx -> proc:int -> arr:int -> idx:int -> int -> unit
(** Blocking remote write (acknowledged). *)

val read_float : ctx -> proc:int -> arr:int -> idx:int -> float
val write_float : ctx -> proc:int -> arr:int -> idx:int -> float -> unit

(** {2 One-way stores} *)

val store_pair : ctx -> proc:int -> buf:int -> int -> int -> unit
(** Append two values to a remote append-buffer — the paper's small-message
    sample-sort permutation packs exactly two values per message. *)

val register_append_buffer : ctx -> id:int -> unit
val append_buffer_contents : ctx -> id:int -> int array
val append_buffer_count : ctx -> id:int -> int

val store_ints : ctx -> proc:int -> arr:int -> pos:int -> int array -> unit
(** One-way bulk store into a remote int array (chunked to the transport's
    payload limit). Complete after {!all_store_sync}. *)

val store_floats : ctx -> proc:int -> arr:int -> pos:int -> float array -> unit

val all_store_sync : ctx -> unit
(** Global completion of all outstanding stores: flush + barrier. *)

(** {2 Bulk gets} *)

val get_ints : ctx -> proc:int -> arr:int -> pos:int -> len:int -> int array
val get_floats : ctx -> proc:int -> arr:int -> pos:int -> len:int -> float array

(** Split-phase gets, for overlapping communication with computation (the
    paper's matrix multiply prefetches the next blocks this way). *)

type 'a pending

val get_floats_async :
  ctx -> proc:int -> arr:int -> pos:int -> len:int -> float array pending

val get_ints_async :
  ctx -> proc:int -> arr:int -> pos:int -> len:int -> int array pending

val await : ctx -> 'a pending -> 'a
(** Poll until the split-phase operation completes; returns its result. *)
