(* Conjugate gradient (§6): solve the 2-D Poisson problem on a k x k grid
   (5-point Laplacian, matrix-free) with plain CG. Rows are block-
   distributed; each matrix-vector product exchanges one boundary row with
   each neighbour (bulk stores) and every iteration runs two global dot
   products (reductions) — the classic latency-plus-bandwidth mix. *)

let id_ghost = 50 (* [0,k) = row from above, [k,2k) = row from below *)

let run ?(k = 192) ?(iters = 40) transports =
  let program ctx =
    let p = Runtime.nprocs ctx in
    let rank = Runtime.rank ctx in
    let rows = k / p in
    let lo = rank * rows in
    let len = rows * k in
    let ghost = Array.make (2 * k) 0. in
    Runtime.register_floats ctx ~id:id_ghost ghost;
    Runtime.barrier ctx;
    (* b = 1 everywhere; x0 = 0 *)
    let x = Array.make len 0. in
    let r = Array.make len 1. in
    let d = Array.copy r in
    let q = Array.make len 0. in
    let dot a b =
      let s = ref 0. in
      for i = 0 to len - 1 do
        s := !s +. (a.(i) *. b.(i))
      done;
      Runtime.charge ctx ~cycles:(len * 2);
      Runtime.reduce_float ctx Runtime.Sum !s
    in
    (* exchange boundary rows of [v] into neighbours' ghost arrays *)
    let exchange v =
      if rank > 0 then
        Runtime.store_floats ctx ~proc:(rank - 1) ~arr:id_ghost ~pos:k
          (Array.sub v 0 k);
      if rank < p - 1 then
        Runtime.store_floats ctx ~proc:(rank + 1) ~arr:id_ghost ~pos:0
          (Array.sub v (len - k) k);
      Runtime.all_store_sync ctx
    in
    (* q <- A v (5-point stencil), using the exchanged ghosts *)
    let spmv v =
      exchange v;
      for i = 0 to rows - 1 do
        let gi = lo + i in
        for j = 0 to k - 1 do
          let c = v.((i * k) + j) in
          let up =
            if i > 0 then v.(((i - 1) * k) + j)
            else if gi > 0 then ghost.(j)
            else 0.
          in
          let down =
            if i < rows - 1 then v.(((i + 1) * k) + j)
            else if gi < k - 1 then ghost.(k + j)
            else 0.
          in
          let left = if j > 0 then v.((i * k) + j - 1) else 0. in
          let right = if j < k - 1 then v.((i * k) + j + 1) else 0. in
          q.((i * k) + j) <- (4. *. c) -. up -. down -. left -. right
        done
      done;
      Runtime.charge ctx ~cycles:(len * 8)
    in
    let rr0 = dot r r in
    let rr = ref rr0 in
    let best_rr = ref rr0 in
    for _ = 1 to iters do
      spmv d;
      let dq = dot d q in
      let alpha = !rr /. dq in
      for i = 0 to len - 1 do
        x.(i) <- x.(i) +. (alpha *. d.(i));
        r.(i) <- r.(i) -. (alpha *. q.(i))
      done;
      Runtime.charge ctx ~cycles:(len * 4);
      let rr' = dot r r in
      let beta = rr' /. !rr in
      for i = 0 to len - 1 do
        d.(i) <- r.(i) +. (beta *. d.(i))
      done;
      Runtime.charge ctx ~cycles:(len * 2);
      rr := rr';
      if rr' < !best_rr then best_rr := rr'
    done;
    Runtime.barrier ctx;
    let timing = (Runtime.elapsed_us ctx, Runtime.comm_us ctx) in
    (* correctness: the recurrence residual must match the true residual
       ||b - Ax||^2 recomputed from scratch, and must have decreased *)
    spmv x;
    let true_rr = ref 0. in
    for i = 0 to len - 1 do
      let ri = 1. -. q.(i) in
      true_rr := !true_rr +. (ri *. ri)
    done;
    let true_rr = Runtime.reduce_float ctx Runtime.Sum !true_rr in
    (* the 2-norm residual of CG is not monotone on ill-conditioned grids,
       so require (a) real progress at some iteration and (b) the recurrence
       residual to agree with the recomputed true residual *)
    if Sys.getenv_opt "CG_TRACE" <> None && Runtime.rank ctx = 0 then
      Printf.printf "rr0=%g best=%g rr=%g true=%g drift=%g\n%!" rr0 !best_rr
        !rr true_rr (Float.abs (true_rr -. !rr));
    let ok =
      Float.is_finite !rr
      && !best_rr < rr0 /. 2.
      && Float.abs (true_rr -. !rr) <= 1e-6 *. Float.max 1. rr0
    in
    (timing, ok)
  in
  let out = Runtime.run transports program in
  Bench_common.finish ~name:"conjugate-grad"
    ~checked:(Array.map snd out) (Array.map fst out)
