(** LogP-style models of the parallel machines U-Net is compared against in
    §6 (Table 2): per-message CPU overhead o, network round-trip latency,
    bulk bandwidth, and CPU speed. The network is reliable and ordered, as
    on the real machines; the same {!Transport.t} interface lets Split-C
    programs run unmodified. *)

type spec = {
  name : string;
  effective_mips : float;
      (** local-computation rate (clock x rough IPC): the "CPU speed" column
          of Table 2 adjusted for SPARC-2 vs SuperSPARC issue width *)
  overhead_us : float;  (** per-message processor overhead o *)
  rtt_us : float;  (** small-message request-reply round-trip time *)
  bandwidth_mb : float;  (** bulk per-byte bandwidth *)
}

val cm5 : spec
(** 33 MHz SPARC-2, o = 3 µs, 12 µs RTT, 10 MB/s. *)

val meiko_cs2 : spec
(** 40 MHz SuperSPARC, o = 11 µs, 25 µs RTT, 39 MB/s. *)

type fabric

val create : Engine.Sim.t -> nodes:int -> spec -> fabric
val transport : fabric -> rank:int -> Transport.t
val transports : fabric -> Transport.t array
