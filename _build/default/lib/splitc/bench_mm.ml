(* Blocked matrix multiply (§6): matrices of g x g blocks of b x b doubles,
   blocks dealt round-robin over the processors. Each processor computes its
   C blocks, fetching the needed A and B blocks with bulk gets — the
   communication pattern the paper's version overlaps with prefetches.
   Matrix entries are deterministic functions of their global coordinates so
   any entry can be verified independently. *)

let a_entry gi gj = float_of_int (((gi * 31) + (gj * 17)) mod 13 - 6)
let b_entry gi gj = float_of_int (((gi * 23) + (gj * 7)) mod 11 - 5)

(* array ids *)
let id_a = 10
let id_b = 11
let id_c = 12

type params = { g : int; b : int }

let default = { g = 4; b = 64 }

let owner p gb = gb mod p
let slot p gb = gb / p

let blocks_owned p rank g =
  let rec go gb acc =
    if gb >= g * g then List.rev acc
    else go (gb + p) ((gb / g, gb mod g) :: acc)
  in
  go rank []

(* local b x b block multiply accumulating into c *)
let block_mult ~b ablk bblk cblk =
  for i = 0 to b - 1 do
    for k = 0 to b - 1 do
      let a = ablk.((i * b) + k) in
      if a <> 0. then
        for j = 0 to b - 1 do
          cblk.((i * b) + j) <- cblk.((i * b) + j) +. (a *. bblk.((k * b) + j))
        done
    done
  done

let fill_block entry ~g:_ ~b bi bj blk =
  for i = 0 to b - 1 do
    for j = 0 to b - 1 do
      blk.((i * b) + j) <- entry ((bi * b) + i) ((bj * b) + j)
    done
  done

let run ?(params = default) transports =
  let { g; b } = params in
  let bsz = b * b in
  let program ctx =
    let p = Runtime.nprocs ctx in
    let rank = Runtime.rank ctx in
    let mine = blocks_owned p rank g in
    let nmine = List.length mine in
    let a_local = Array.make (max 1 (nmine * bsz)) 0. in
    let b_local = Array.make (max 1 (nmine * bsz)) 0. in
    let c_local = Array.make (max 1 (nmine * bsz)) 0. in
    List.iteri
      (fun s (bi, bj) ->
        let tmp = Array.make bsz 0. in
        fill_block a_entry ~g ~b bi bj tmp;
        Array.blit tmp 0 a_local (s * bsz) bsz;
        fill_block b_entry ~g ~b bi bj tmp;
        Array.blit tmp 0 b_local (s * bsz) bsz)
      mine;
    Runtime.register_floats ctx ~id:id_a a_local;
    Runtime.register_floats ctx ~id:id_b b_local;
    Runtime.register_floats ctx ~id:id_c c_local;
    Runtime.barrier ctx;
    (* compute each owned C block, prefetching the blocks needed by the
       next iteration while multiplying the current ones (as in the paper) *)
    let fetch_pair (bi, bj) k =
      let gb_a = (bi * g) + k and gb_b = (k * g) + bj in
      ( Runtime.get_floats_async ctx ~proc:(owner p gb_a) ~arr:id_a
          ~pos:(slot p gb_a * bsz) ~len:bsz,
        Runtime.get_floats_async ctx ~proc:(owner p gb_b) ~arr:id_b
          ~pos:(slot p gb_b * bsz) ~len:bsz )
    in
    let blocks = Array.of_list mine in
    let steps = Array.length blocks * g in
    if steps > 0 then begin
      let coords step = (blocks.(step / g), step mod g) in
      let pending = ref (fetch_pair (fst (coords 0)) (snd (coords 0))) in
      let cblk = ref (Array.make bsz 0.) in
      for step = 0 to steps - 1 do
        let _, k = coords step in
        let pa, pb = !pending in
        let ablk = Runtime.await ctx pa in
        let bblk = Runtime.await ctx pb in
        if step + 1 < steps then begin
          let next_blk, next_k = coords (step + 1) in
          pending := fetch_pair next_blk next_k
        end;
        block_mult ~b ablk bblk !cblk;
        (* ~2 cycles per flop on these machines; 2*b^3 flops per block *)
        Runtime.charge ctx ~cycles:(4 * b * b * b);
        if k = g - 1 then begin
          let s = step / g in
          Array.blit !cblk 0 c_local (s * bsz) bsz;
          cblk := Array.make bsz 0.
        end
      done
    end;
    Runtime.barrier ctx;
    (* verify one entry of each owned block against the closed form *)
    let ok = ref true in
    List.iteri
      (fun s (bi, bj) ->
        let i = bi * b and j = bj * b in
        let expect = ref 0. in
        for k = 0 to (g * b) - 1 do
          expect := !expect +. (a_entry i k *. b_entry k j)
        done;
        if Float.abs (c_local.(s * bsz) -. !expect) > 1e-6 then ok := false)
      mine;
    Runtime.barrier ctx;
    ((Runtime.elapsed_us ctx, Runtime.comm_us ctx), !ok)
  in
  let out = Runtime.run transports program in
  Bench_common.finish ~name:"matrix-multiply"
    ~checked:(Array.map snd out) (Array.map fst out)
