lib/services/group.ml: Array Hashtbl Uam
