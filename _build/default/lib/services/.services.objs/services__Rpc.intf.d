lib/services/rpc.mli: Engine Uam
