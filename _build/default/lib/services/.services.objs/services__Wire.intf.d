lib/services/wire.mli:
