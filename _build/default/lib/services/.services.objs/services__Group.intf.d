lib/services/group.mli: Uam
