lib/services/wire.ml: Bytes Int32 Int64 List
