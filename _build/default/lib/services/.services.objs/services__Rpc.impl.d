lib/services/rpc.ml: Array Bytes Engine Fmt Hashtbl Option Printexc Printf Sim Uam Unet
