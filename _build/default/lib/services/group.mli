(** Totally-ordered group broadcast — the "group communication tools" of
    §2.1 whose multi-round protocols are latency-limited and become viable
    once round trips cost tens of microseconds.

    The protocol is a fixed-sequencer: members send their message to the
    sequencer (member 0), which assigns a global sequence number and
    re-broadcasts; members deliver strictly in sequence order, buffering
    anything that arrives early. UAM's reliable channels make every leg
    exactly-once, so the delivered streams are identical on all members. *)

type t

val create : Uam.t -> deliver:(seq:int -> src:int -> bytes -> unit) -> t
(** Join the group (one instance per UAM node; node 0 is the sequencer).
    [deliver] runs in sequence order, the same order on every member. *)

val broadcast : t -> bytes -> unit
(** Submit a message for total-order delivery (including to ourselves).
    Returns once the message is on its way to the sequencer; delivery
    happens via the callback. *)

val delivered : t -> int
(** Messages delivered so far on this member. *)

val sequenced : t -> int
(** Messages the sequencer has ordered (meaningful on node 0). *)

val serve : t -> until:(unit -> bool) -> unit
(** Drive this member's protocol processing until the predicate holds. *)
