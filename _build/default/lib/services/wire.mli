(** A small binary codec for the service layers: length-checked readers and
    growable writers over [bytes]. Little-endian; strings and blobs are
    length-prefixed (u32). *)

exception Truncated
(** Raised by readers running past the end of the message. *)

module Writer : sig
  type t

  val create : ?initial:int -> unit -> t
  val contents : t -> bytes
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit

  val i64 : t -> int -> unit
  (** Full OCaml int range. *)

  val string : t -> string -> unit
  val bytes : t -> bytes -> unit
  val bool : t -> bool -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
end

module Reader : sig
  type t

  val of_bytes : bytes -> t

  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int
  val string : t -> string
  val bytes : t -> bytes
  val bool : t -> bool
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
end
