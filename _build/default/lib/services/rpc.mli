(** The RPC style of interaction §2.1 argues benefits most from low-latency
    communication: procedure registration by number, blocking calls with
    transaction-id matching and timeouts, multiple concurrent outstanding
    calls per node. Exactly-once execution rides on UAM's reliable windowed
    delivery; a call only fails if the peer stays silent past the timeout.

    Argument and result payloads are bounded by the UAM transfer-buffer
    size (4160 bytes); larger data belongs in {!Uam.Xfer} regions. *)

type t

val attach : Uam.t -> t
(** Claim the RPC handler indices (230-233) on this UAM instance. *)

val uam : t -> Uam.t

val register : t -> proc:int -> (src:int -> bytes -> bytes) -> unit
(** Install a procedure (0-255 per node). The handler runs at poll time on
    the serving node; its result travels back as the reply. Raises on a
    duplicate registration. *)

val unregister : t -> proc:int -> unit

exception Timeout
exception Remote_error of string
(** The remote procedure raised; the exception text crosses the wire. *)

val call :
  ?timeout:Engine.Sim.time -> t -> dst:int -> proc:int -> bytes -> bytes
(** Blocking call: send the request, serve incoming traffic while waiting,
    return the result. [Timeout] (default 1 s simulated) aborts the wait;
    [Remote_error] reports a failure on the serving side (unknown procedure
    or an exception in the handler). *)

val serve_forever : t -> unit
(** Park a process servicing requests (a pure server node). *)

val calls_made : t -> int
val calls_served : t -> int
