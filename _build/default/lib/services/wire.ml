exception Truncated

module Writer = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create ?(initial = 64) () = { buf = Bytes.create (max 8 initial); len = 0 }

  let ensure t n =
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end

  let contents t = Bytes.sub t.buf 0 t.len
  let length t = t.len

  let u8 t v =
    if v < 0 || v > 0xff then invalid_arg "Wire.Writer.u8: out of range";
    ensure t 1;
    Bytes.set_uint8 t.buf t.len v;
    t.len <- t.len + 1

  let u16 t v =
    if v < 0 || v > 0xffff then invalid_arg "Wire.Writer.u16: out of range";
    ensure t 2;
    Bytes.set_uint16_le t.buf t.len v;
    t.len <- t.len + 2

  let u32 t v =
    if v < 0 || v > 0xffffffff then invalid_arg "Wire.Writer.u32: out of range";
    ensure t 4;
    Bytes.set_int32_le t.buf t.len (Int32.of_int v);
    t.len <- t.len + 4

  let i64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len (Int64.of_int v);
    t.len <- t.len + 8

  let bytes t b =
    u32 t (Bytes.length b);
    ensure t (Bytes.length b);
    Bytes.blit b 0 t.buf t.len (Bytes.length b);
    t.len <- t.len + Bytes.length b

  let string t s = bytes t (Bytes.unsafe_of_string s)
  let bool t v = u8 t (if v then 1 else 0)

  let list t f l =
    u32 t (List.length l);
    List.iter (f t) l

  let option t f = function
    | None -> u8 t 0
    | Some v ->
        u8 t 1;
        f t v
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }
  let remaining t = Bytes.length t.data - t.pos

  let need t n = if remaining t < n then raise Truncated

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.data t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_le t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_le t.data t.pos) land 0xffffffff in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    need t 8;
    let v = Int64.to_int (Bytes.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let bytes t =
    let n = u32 t in
    need t n;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let string t = Bytes.unsafe_to_string (bytes t)

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | _ -> raise Truncated

  let list t f =
    let n = u32 t in
    List.init n (fun _ -> f t)

  let option t f = match u8 t with 0 -> None | _ -> Some (f t)
end
