(* Parallel sample sort on the 8-node ATM cluster — the Split-C workload of
   §6, shown in both its small-message form (two keys packed per Active
   Message during the permutation) and its bulk form (one large store per
   destination). Prints the total time and the computation/communication
   split for each, plus the CM-5 model for comparison. Run:

     dune exec examples/splitc_sort.exe
*)

let n_keys = 32_768

let atm_transports () =
  let c = Cluster.create ~hosts:8 () in
  let ams =
    Array.init 8 (fun r ->
        Uam.create (Cluster.node c r).Cluster.unet ~rank:r ~nodes:8)
  in
  Uam.connect_all ams;
  Array.map Splitc.Transport.of_uam ams

let cm5_transports () =
  let sim = Engine.Sim.create () in
  Splitc.Machine_model.transports
    (Splitc.Machine_model.create sim ~nodes:8 Splitc.Machine_model.cm5)

let show machine r =
  Format.printf "  %-10s %a@." machine Splitc.Bench_common.pp r

let () =
  Format.printf "Sample sort of %d keys on 8 processors@.@." n_keys;
  Format.printf "small-message version (2 keys per message):@.";
  show "U-Net ATM"
    (Splitc.Bench_sample_sort.run ~n:n_keys
       ~variant:Splitc.Bench_sample_sort.Small (atm_transports ()));
  show "CM-5"
    (Splitc.Bench_sample_sort.run ~n:n_keys
       ~variant:Splitc.Bench_sample_sort.Small (cm5_transports ()));
  Format.printf "@.bulk version (one store per destination):@.";
  show "U-Net ATM"
    (Splitc.Bench_sample_sort.run ~n:n_keys
       ~variant:Splitc.Bench_sample_sort.Bulk (atm_transports ()));
  show "CM-5"
    (Splitc.Bench_sample_sort.run ~n:n_keys
       ~variant:Splitc.Bench_sample_sort.Bulk (cm5_transports ()));
  Format.printf
    "@.The CM-5's 3 us message overhead wins the small-message version;@.\
     the ATM cluster's bulk bandwidth wins the bulk version (Figure 5).@."
