(* Direct-access U-Net (§3.6): "true zero copy" — the sender names an
   offset in the *destination's* communication segment and the NI deposits
   the data straight into the application data structure, no intermediate
   buffering, no receive-side copy.

   The demo is a remote frame buffer: a producer renders tiles and sends
   each one addressed to its home position in the consumer's frame buffer.
   When the "frame complete" notification arrives, the image is already
   sitting assembled in application memory. The same transfer is then run
   through base-level buffers for comparison: same bytes, one extra copy,
   visible in the simulated clock. Run:

     dune exec examples/direct_access.exe
*)

open Engine

let tile = 1_024 (* bytes per tile *)
let tiles = 32

let render i =
  Bytes.init tile (fun j -> Char.chr ((i * 37 + j) mod 256))

let expected () =
  let b = Bytes.create (tile * tiles) in
  for i = 0 to tiles - 1 do
    Bytes.blit (render i) 0 b (i * tile) tile
  done;
  b

let run ~direct =
  let cluster = Cluster.create ~hosts:2 () in
  let producer = Cluster.node cluster 0 and consumer = Cluster.node cluster 1 in
  let ep_p, alloc = Cluster.simple_endpoint ~direct_access:direct producer in
  (* the consumer's segment IS the frame buffer when running direct *)
  let ep_c, _ =
    Cluster.simple_endpoint ~direct_access:direct ~free_buffers:40 consumer
  in
  let ch_p, _ = Unet.connect_pair (producer.unet, ep_p) (consumer.unet, ep_c) in
  let received_tiles = ref 0 in
  let t_done = ref 0 in
  ignore
    (Proc.spawn ~name:"consumer" cluster.sim (fun () ->
         while !received_tiles < tiles do
           let d = Unet.recv consumer.unet ep_c in
           incr received_tiles;
           (* base-level mode must copy the tile to its home position; in
              direct mode the notification already points at the deposit *)
           if not direct then begin
             match d.rx_payload with
             | Unet.Desc.Buffers bufs ->
                 Host.Cpu.charge_copy consumer.cpu ~bytes:tile;
                 List.iter
                   (fun (off, _) ->
                     ignore
                       (Unet.provide_free_buffer consumer.unet ep_c ~off
                          ~len:4160))
                   bufs
             | Unet.Desc.Inline _ -> ()
           end
         done;
         t_done := Sim.now cluster.sim));
  ignore
    (Proc.spawn ~name:"producer" cluster.sim (fun () ->
         for i = 0 to tiles - 1 do
           let data = render i in
           let off, _ = Option.get (Unet.Segment.Allocator.alloc alloc) in
           Unet.Segment.write ep_p.segment ~off ~src:data ~src_pos:0 ~len:tile;
           let desc =
             if direct then
               (* name the tile's home position in the consumer's segment *)
               Unet.Desc.tx ~dest_offset:(i * tile) ~chan:ch_p
                 (Unet.Desc.Buffers [ (off, tile) ])
             else Unet.Desc.tx ~chan:ch_p (Unet.Desc.Buffers [ (off, tile) ])
           in
           (match Unet.send producer.unet ep_p desc with
           | Ok () -> ()
           | Error Unet.Queue_full ->
               Proc.sleep cluster.sim ~time:(Sim.us 20)
           | Error e -> Fmt.failwith "%a" Unet.pp_error e);
           (* the send buffer may only be reused once the NI has injected
              the message — that is what the descriptor's flag is for (§3.1) *)
           while not desc.injected do
             Proc.sleep cluster.sim ~time:(Sim.us 5)
           done;
           Unet.Segment.Allocator.free alloc (off, 4160)
         done));
  Sim.run ~until:(Sim.sec 5) cluster.sim;
  let frame_ok =
    if direct then
      Bytes.equal
        (Unet.Segment.read ep_c.segment ~off:0 ~len:(tile * tiles))
        (expected ())
    else true
  in
  (Sim.to_us !t_done, frame_ok)

let () =
  let t_direct, ok = run ~direct:true in
  let t_base, _ = run ~direct:false in
  Format.printf
    "remote frame buffer, %d tiles x %d B over the simulated ATM cluster:@.@."
    tiles tile;
  Format.printf
    "  direct-access U-Net : %7.0f us — frame assembled in place (intact: %b)@."
    t_direct ok;
  Format.printf
    "  base-level U-Net    : %7.0f us — staged through receive buffers + copy@."
    t_base;
  Format.printf
    "@.The direct-access architecture deposits each tile at its sender-named@.\
     offset (§3.6) — no buffer pop, no receive copy, no assembly pass.@."
