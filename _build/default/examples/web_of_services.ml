(* The electronic-workplace workload of §2.1: a cluster of clients invoking
   small RPCs (naming, authentication, object location) against simple
   database servers. Requests are 20-80 bytes, responses 40-200 bytes —
   exactly the message sizes the paper argues dominate distributed systems,
   and why per-message overhead matters more than peak bandwidth.

   The same workload runs over user-level UDP-over-U-Net and over the
   kernel ATM path, and prints the throughput and latency of both. Run:

     dune exec examples/web_of_services.exe
*)

open Engine
open Ipstack

let requests_per_client = 200
let n_services = 3 (* naming, auth, location *)

let run_workload name mk_suites =
  let sim, client_suite, server_suite = mk_suites () in
  (* three tiny database services on ports 9001..9003 *)
  for s = 0 to n_services - 1 do
    let sock = Udp.socket server_suite.Suite.udp ~port:(9001 + s) in
    ignore
      (Proc.spawn ~name:(Printf.sprintf "service-%d" s) sim (fun () ->
           let table = Hashtbl.create 64 in
           let rec loop () =
             let src, sport, req = Udp.recvfrom sock in
             (* a lookup keyed by the request; responses 40-200 bytes *)
             let key = Bytes.to_string req in
             let resp =
               match Hashtbl.find_opt table key with
               | Some r -> r
               | None ->
                   let r = Bytes.make (40 + (String.length key * 3 mod 160)) 'r' in
                   Hashtbl.replace table key r;
                   r
             in
             Udp.sendto sock ~dst:src ~dst_port:sport resp;
             loop ()
           in
           loop ()));
  done;
  let rng = Rng.create 2026 in
  let latencies = Stats.Summary.create () in
  let sock = Udp.socket client_suite.Suite.udp ~port:5_000 in
  let finished = ref false in
  ignore
    (Proc.spawn ~name:"client" sim (fun () ->
         for i = 1 to requests_per_client do
           let service = 9001 + Rng.int rng n_services in
           let req = Bytes.make (20 + Rng.int rng 60) (Char.chr (65 + (i mod 26))) in
           let t0 = Sim.now sim in
           Udp.sendto sock ~dst:1 ~dst_port:service req;
           match Udp.recvfrom_timeout sock ~timeout:(Sim.sec 1) with
           | Some _ -> Stats.Summary.add latencies (Sim.to_us (Sim.now sim - t0))
           | None -> ()
         done;
         finished := true));
  Sim.run ~until:(Sim.sec 60) sim;
  assert !finished;
  Format.printf
    "%-12s %4d RPCs: mean %6.0f us  p95 %6.0f us  -> %5.0f RPCs/s/client@."
    name
    (Stats.Summary.count latencies)
    (Stats.Summary.mean latencies)
    (Stats.Summary.percentile latencies 0.95)
    (1e6 /. Stats.Summary.mean latencies)

let () =
  Format.printf
    "Small-RPC services workload (20-80 B requests, 40-200 B replies)@.@.";
  run_workload "U-Net" (fun () ->
      let c = Cluster.create () in
      let a, b =
        Suite.unet_pair (Cluster.node c 0).Cluster.unet
          (Cluster.node c 1).Cluster.unet
      in
      (c.sim, a, b));
  run_workload "kernel/ATM" (fun () ->
      let c = Cluster.create ~nic:Cluster.Sba200_fore () in
      let a, b =
        Suite.kernel_atm_pair (Cluster.node c 0).Cluster.unet
          (Cluster.node c 1).Cluster.unet
      in
      (c.sim, a, b));
  Format.printf
    "@.The kernel path pays ~1 ms per RPC; U-Net turns the same hardware@.\
     into a sub-200 us RPC fabric — the paper's core argument.@."
