(* State-machine replication over U-Net — the §2.1 claim that "software
   fault-tolerance algorithms and group communication tools often require
   multi-round protocols, the performance of which is latency-limited.
   High processing overheads ... prevent such protocols from being used
   today in process-control applications, financial trading systems ..."

   A 4-replica key-value store: every write is pushed through the
   totally-ordered group broadcast (fixed sequencer over reliable Active
   Messages), so all replicas apply the identical update sequence; reads
   are answered locally by any replica. The run verifies that all replicas
   converge to identical state and reports the write latency the total
   order costs at U-Net speed. Run:

     dune exec examples/replicated_kv.exe
*)

open Engine

let replicas = 4
let writes_per_node = 50

type store = { table : (string, int) Hashtbl.t; mutable applied : int }

let encode_update key value =
  let w = Services.Wire.Writer.create () in
  Services.Wire.Writer.string w key;
  Services.Wire.Writer.i64 w value;
  Services.Wire.Writer.contents w

let decode_update b =
  let r = Services.Wire.Reader.of_bytes b in
  let key = Services.Wire.Reader.string r in
  let value = Services.Wire.Reader.i64 r in
  (key, value)

let () =
  let cluster = Cluster.create ~hosts:replicas () in
  let ams =
    Array.init replicas (fun r ->
        Uam.create (Cluster.node cluster r).unet ~rank:r ~nodes:replicas)
  in
  Uam.connect_all ams;
  let stores =
    Array.init replicas (fun _ ->
        { table = Hashtbl.create 64; applied = 0 })
  in
  (* the replication channel: every delivered update mutates the store,
     in the same total order everywhere *)
  let groups =
    Array.init replicas (fun r ->
        Services.Group.create ams.(r) ~deliver:(fun ~seq:_ ~src:_ payload ->
            let key, value = decode_update payload in
            Hashtbl.replace stores.(r).table key value;
            stores.(r).applied <- stores.(r).applied + 1))
  in
  let total = replicas * writes_per_node in
  let write_lat = Stats.Summary.create () in
  Array.iteri
    (fun r g ->
      ignore
        (Proc.spawn ~name:(Printf.sprintf "replica%d" r) cluster.sim (fun () ->
             let rng = Rng.create (7 + r) in
             for i = 1 to writes_per_node do
               let key = Printf.sprintf "key-%d" (Rng.int rng 32) in
               let before = stores.(r).applied in
               Services.Group.broadcast g (encode_update key ((r * 1000) + i));
               (* wait until our own write is applied locally: the write's
                  visible latency through the total order *)
               let t0 = Sim.now cluster.sim in
               Services.Group.serve g ~until:(fun () ->
                   stores.(r).applied > before);
               if r = 0 then () (* the sequencer's writes are near-instant *)
               else
                 Stats.Summary.add write_lat
                   (Sim.to_us (Sim.now cluster.sim - t0))
             done;
             (* serve until every replica has the full history *)
             Services.Group.serve g ~until:(fun () ->
                 stores.(r).applied >= total))))
    groups;
  Sim.run ~until:(Sim.sec 60) cluster.sim;

  (* convergence check: identical contents on every replica *)
  let snapshot s =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table []
    |> List.sort compare
  in
  let reference = snapshot stores.(0) in
  let converged =
    Array.for_all (fun s -> snapshot s = reference) stores
  in
  Format.printf
    "replicated KV store: %d replicas, %d totally-ordered writes@.@." replicas
    total;
  Array.iteri
    (fun r s ->
      Format.printf "  replica %d: %d updates applied, %d keys@." r s.applied
        (Hashtbl.length s.table))
    stores;
  Format.printf
    "@.replicas converged: %b@.write latency through the total order: mean \
     %.0f us, p95 %.0f us@."
    converged
    (Stats.Summary.mean write_lat)
    (Stats.Summary.percentile write_lat 0.95);
  Format.printf
    "@.At kernel-networking latencies (~1 ms/hop) the same protocol would \
     cost@.10-20x more per write — the paper's §2.1 argument for why such \
     systems@.need user-level networking.@.";
  assert converged
