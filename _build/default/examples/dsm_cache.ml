(* The coherence workload of §2.1: "caching techniques have become a
   fundamental part of most modern distributed systems. Keeping the copies
   consistent introduces a large number of small coherence messages. The
   round-trip times are important as the requestor is usually blocked until
   the synchronization is achieved."

   This example builds a 4-node cooperative object cache with a
   directory-based invalidation protocol over U-Net Active Messages:
   each object has a home node holding the directory; reads fetch a copy
   and register as sharers; writes invalidate all sharers before
   proceeding. Every protocol message is a single-cell Active Message, so
   the whole protocol runs at the 71 µs round-trip scale that makes
   blocking coherence affordable. Run:

     dune exec examples/dsm_cache.exe
*)

open Engine

let nodes = 4
let n_objects = 64
let ops_per_node = 300
let write_ratio = 0.2

(* handlers *)
let h_read_req = 1 (* args: obj, reqid -> reply h_read_rep with value *)
let h_read_rep = 2
let h_write_req = 3 (* args: obj, value, reqid -> home invalidates, replies *)
let h_write_rep = 4
let h_invalidate = 5 (* home -> sharer: args: obj *)

type node_state = {
  am : Uam.t;
  rank : int;
  (* as home: per-object value and sharer set *)
  values : int array;
  sharers : bool array array; (* obj -> node -> sharing? *)
  (* as client: local cache *)
  cached : (int, int) Hashtbl.t;
  (* pending blocking ops *)
  replies : (int, int) Hashtbl.t; (* reqid -> value *)
  mutable next_req : int;
  (* statistics *)
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable invalidations_rx : int;
  read_lat : Stats.Summary.t;
  write_lat : Stats.Summary.t;
}

let home obj = obj mod nodes

let () =
  let cluster = Cluster.create ~hosts:nodes () in
  let states =
    Array.init nodes (fun r ->
        {
          am = Uam.create (Cluster.node cluster r).unet ~rank:r ~nodes;
          rank = r;
          values = Array.make n_objects 0;
          sharers = Array.init n_objects (fun _ -> Array.make nodes false);
          cached = Hashtbl.create 64;
          replies = Hashtbl.create 16;
          next_req = 0;
          hits = 0;
          misses = 0;
          writes = 0;
          invalidations_rx = 0;
          read_lat = Stats.Summary.create ();
          write_lat = Stats.Summary.create ();
        })
  in
  Uam.connect_all (Array.map (fun s -> s.am) states);

  (* protocol handlers, installed on every node *)
  Array.iter
    (fun st ->
      Uam.register_handler st.am h_read_req (fun am ~src tk ~args ~payload:_ ->
          let obj = args.(0) and reqid = args.(1) in
          st.sharers.(obj).(src) <- true;
          Uam.reply am (Option.get tk) ~handler:h_read_rep
            ~args:[| reqid; st.values.(obj) |] ());
      Uam.register_handler st.am h_read_rep (fun _ ~src:_ _ ~args ~payload:_ ->
          Hashtbl.replace st.replies args.(0) args.(1));
      Uam.register_handler st.am h_write_req (fun am ~src tk ~args ~payload:_ ->
          let obj = args.(0) and v = args.(1) and reqid = args.(2) in
          st.values.(obj) <- v;
          (* invalidate every sharer except the writer (one-way messages;
             the ack machinery of UAM makes them reliable) *)
          Array.iteri
            (fun peer sharing ->
              if sharing && peer <> src && peer <> st.rank then
                Uam.request am ~dst:peer ~handler:h_invalidate ~args:[| obj |]
                  ();
              st.sharers.(obj).(peer) <- false)
            st.sharers.(obj);
          st.sharers.(obj).(src) <- true;
          Uam.reply am (Option.get tk) ~handler:h_write_rep ~args:[| reqid |] ());
      Uam.register_handler st.am h_write_rep (fun _ ~src:_ _ ~args ~payload:_ ->
          Hashtbl.replace st.replies args.(0) 1);
      Uam.register_handler st.am h_invalidate (fun _ ~src:_ _ ~args ~payload:_ ->
          st.invalidations_rx <- st.invalidations_rx + 1;
          Hashtbl.remove st.cached args.(0)))
    states;

  (* client operations: blocking read / write through the coherence protocol *)
  let fresh st =
    st.next_req <- st.next_req + 1;
    st.next_req
  in
  let await st reqid =
    Uam.poll_until st.am (fun () -> Hashtbl.mem st.replies reqid);
    let v = Hashtbl.find st.replies reqid in
    Hashtbl.remove st.replies reqid;
    v
  in
  let read st obj =
    match Hashtbl.find_opt st.cached obj with
    | Some v ->
        st.hits <- st.hits + 1;
        v
    | None ->
        st.misses <- st.misses + 1;
        let t0 = Sim.now cluster.sim in
        let v =
          if home obj = st.rank then begin
            st.sharers.(obj).(st.rank) <- true;
            st.values.(obj)
          end
          else begin
            let reqid = fresh st in
            Uam.request st.am ~dst:(home obj) ~handler:h_read_req
              ~args:[| obj; reqid |] ();
            await st reqid
          end
        in
        Stats.Summary.add st.read_lat (Sim.to_us (Sim.now cluster.sim - t0));
        Hashtbl.replace st.cached obj v;
        v
  in
  let write st obj v =
    st.writes <- st.writes + 1;
    let t0 = Sim.now cluster.sim in
    (if home obj = st.rank then begin
       st.values.(obj) <- v;
       Array.iteri
         (fun peer sharing ->
           if sharing && peer <> st.rank then
             Uam.request st.am ~dst:peer ~handler:h_invalidate ~args:[| obj |] ();
           st.sharers.(obj).(peer) <- false)
         st.sharers.(obj)
     end
     else begin
       let reqid = fresh st in
       Uam.request st.am ~dst:(home obj) ~handler:h_write_req
         ~args:[| obj; v; reqid |] ();
       ignore (await st reqid)
     end);
    Stats.Summary.add st.write_lat (Sim.to_us (Sim.now cluster.sim - t0));
    Hashtbl.replace st.cached obj v
  in

  (* the workload: a zipf-ish mix of reads and writes on shared objects *)
  let finished = ref 0 in
  Array.iter
    (fun st ->
      ignore
        (Proc.spawn ~name:(Printf.sprintf "node%d" st.rank) cluster.sim
           (fun () ->
             let rng = Rng.create (100 + st.rank) in
             for _ = 1 to ops_per_node do
               let obj =
                 (* skew: half the traffic on an eighth of the objects *)
                 if Rng.bernoulli rng ~p:0.5 then Rng.int rng (n_objects / 8)
                 else Rng.int rng n_objects
               in
               if Rng.bernoulli rng ~p:write_ratio then
                 write st obj (Rng.int rng 1_000)
               else ignore (read st obj)
             done;
             incr finished;
             (* keep serving coherence traffic until everyone is done *)
             Uam.poll_until st.am (fun () -> !finished >= nodes))))
    states;

  Sim.run ~until:(Sim.sec 30) cluster.sim;

  Format.printf
    "4-node cooperative cache, %d ops/node (%.0f%% writes), directory \
     coherence over single-cell Active Messages:@.@."
    ops_per_node (write_ratio *. 100.);
  Array.iter
    (fun st ->
      Format.printf
        "  node %d: %4d hits %4d misses %4d writes %4d invalidations; miss \
         latency %5.0f us, write latency %5.0f us@."
        st.rank st.hits st.misses st.writes st.invalidations_rx
        (Stats.Summary.mean st.read_lat)
        (Stats.Summary.mean st.write_lat))
    states;
  let total_msgs =
    Array.fold_left
      (fun acc st -> acc + Uam.requests_sent st.am + Uam.replies_sent st.am)
      0 states
  in
  Format.printf
    "@.%d protocol messages total; the requestor blocks ~71-160 us per miss \
     — the latency scale that makes blocking coherence viable (§2.1).@."
    total_msgs
