examples/splitc_sort.mli:
