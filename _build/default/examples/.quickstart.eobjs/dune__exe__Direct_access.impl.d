examples/direct_access.ml: Bytes Char Cluster Engine Fmt Format Host List Option Proc Sim Unet
