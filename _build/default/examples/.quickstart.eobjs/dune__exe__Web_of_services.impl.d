examples/web_of_services.ml: Bytes Char Cluster Engine Format Hashtbl Ipstack Printf Proc Rng Sim Stats String Suite Udp
