examples/quickstart.mli:
