examples/direct_access.mli:
