examples/splitc_sort.ml: Array Cluster Engine Format Splitc Uam
