examples/replicated_kv.ml: Array Cluster Engine Format Hashtbl List Printf Proc Rng Services Sim Stats Uam
