examples/quickstart.ml: Bytes Cluster Engine Fmt Format Proc Sim Unet
