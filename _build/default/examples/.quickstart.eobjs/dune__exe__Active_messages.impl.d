examples/active_messages.ml: Array Bytes Char Cluster Engine Format List Option Proc Sim String Uam
