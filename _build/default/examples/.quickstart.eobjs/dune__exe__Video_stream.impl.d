examples/video_stream.ml: Atm Bytes Cluster Engine Fmt Format Hashtbl Int32 List Option Proc Rng Sim Unet
