examples/dsm_cache.ml: Array Cluster Engine Format Hashtbl Option Printf Proc Rng Sim Stats Uam
