examples/dsm_cache.mli:
