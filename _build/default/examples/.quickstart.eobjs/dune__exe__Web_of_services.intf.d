examples/web_of_services.mli:
