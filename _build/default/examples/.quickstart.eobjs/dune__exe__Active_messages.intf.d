examples/active_messages.mli:
