(* Active Messages example: a remote counter service plus a bulk transfer.

   Demonstrates the GAM-style interface of §5 — request handlers that
   integrate the message into the computation and reply, and block
   stores/gets through the 4160-byte transfer buffers — all over reliable
   windowed UAM on the simulated ATM cluster. Run with:

     dune exec examples/active_messages.exe
*)

open Engine

(* application handler indices *)
let h_add = 1
let h_add_reply = 2

let () =
  let cluster = Cluster.create ~hosts:2 () in
  let am0 = Uam.create (Cluster.node cluster 0).unet ~rank:0 ~nodes:2 in
  let am1 = Uam.create (Cluster.node cluster 1).unet ~rank:1 ~nodes:2 in
  Uam.connect am0 am1;

  (* --- a fetch-and-add server on node 1 ---------------------------- *)
  let counter = ref 0 in
  Uam.register_handler am1 h_add (fun am ~src:_ token ~args ~payload:_ ->
      (* the handler pulls the message out of the network and integrates it
         into the computation: bump the counter, reply with the old value *)
      let old = !counter in
      counter := old + args.(0);
      Uam.reply am (Option.get token) ~handler:h_add_reply ~args:[| old |] ());

  (* --- bulk transfer service ---------------------------------------- *)
  let x0 = Uam.Xfer.attach am0 in
  let x1 = Uam.Xfer.attach am1 in
  let image = Bytes.create 65_536 in
  Uam.Xfer.register_region x1 ~id:1 image;

  (* node 1 simply polls: handlers run during the poll (§5.1.2) *)
  ignore
    (Proc.spawn ~name:"server" cluster.sim (fun () ->
         Uam.poll_until am1 (fun () -> false)));

  ignore
    (Proc.spawn ~name:"client" cluster.sim (fun () ->
         (* ten fetch-and-adds, each a single-cell request/reply *)
         let seen = ref [] in
         Uam.register_handler am0 h_add_reply
           (fun _ ~src:_ _ ~args ~payload:_ -> seen := args.(0) :: !seen);
         let t0 = Sim.now cluster.sim in
         for _ = 1 to 10 do
           Uam.request am0 ~dst:1 ~handler:h_add ~args:[| 7 |] ()
         done;
         Uam.poll_until am0 (fun () -> List.length !seen = 10);
         Format.printf "10 fetch-and-adds in %.0f us: old values %s@."
           (Sim.to_us (Sim.now cluster.sim - t0))
           (String.concat ","
              (List.rev_map string_of_int !seen));

         (* a 64 KB block store: fragmented into 4160-byte chunks, flow
            controlled by the window, acknowledged for reliability *)
         let block = Bytes.init 65_536 (fun i -> Char.chr (i mod 256)) in
         let t1 = Sim.now cluster.sim in
         Uam.Xfer.store x0 ~dst:1 ~region:1 ~offset:0 block;
         Uam.Xfer.quiet x0;
         let dt = Sim.to_us (Sim.now cluster.sim - t1) in
         Format.printf "64 KB store in %.0f us = %.1f MB/s@." dt
           (65_536. /. dt);

         (* read part of it back *)
         let back = Uam.Xfer.get x0 ~dst:1 ~region:1 ~offset:1_000 ~len:16 in
         Format.printf "get[1000..1016) = %s (intact: %b)@."
           (String.concat " "
              (List.init 16 (fun i ->
                   string_of_int (Char.code (Bytes.get back i)))))
           (Bytes.equal back (Bytes.sub block 1_000 16))));

  Sim.run ~until:(Sim.sec 10) cluster.sim;
  Format.printf "retransmissions: %d (lossless run)@." (Uam.retransmissions am0)
