(* Tests for the host substrate: machines, CPU accounting, pinned memory,
   the mbuf model and the kernel path costs. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- Machine ------------------------------------------------------- *)

let test_scale_reference () =
  checki "reference machine costs unchanged" 1_000
    (Host.Machine.scale Host.Machine.ss20 1_000)

let test_scale_slower () =
  (* 50 MHz runs a 60 MHz-calibrated cost 1.2x slower *)
  checki "ss10 scales up" 1_200 (Host.Machine.scale Host.Machine.ss10 1_000)

(* --- Cpu ----------------------------------------------------------- *)

let test_charge_advances_and_accounts () =
  let sim = Sim.create () in
  let cpu = Host.Cpu.create sim Host.Machine.ss20 in
  ignore
    (Proc.spawn sim (fun () ->
         Host.Cpu.charge cpu 5_000;
         Host.Cpu.charge_us cpu 2.));
  Sim.run sim;
  checki "time advanced" 7_000 (Sim.now sim);
  checki "busy accounted" 7_000 (Host.Cpu.busy_time cpu)

let test_charge_cycles () =
  let sim = Sim.create () in
  let cpu = Host.Cpu.create sim Host.Machine.ss20 in
  ignore (Proc.spawn sim (fun () -> Host.Cpu.charge_cycles cpu 60));
  Sim.run sim;
  checki "60 cycles at 60 MHz = 1 us" 1_000 (Sim.now sim)

let test_copy_cost () =
  let sim = Sim.create () in
  let cpu = Host.Cpu.create sim Host.Machine.ss20 in
  checki "19 ns per byte" 1_900 (Host.Cpu.copy_cost cpu ~bytes:100)

let test_scaled_charge_on_ss10 () =
  let sim = Sim.create () in
  let cpu = Host.Cpu.create sim Host.Machine.ss10 in
  ignore (Proc.spawn sim (fun () -> Host.Cpu.charge cpu 1_000));
  Sim.run sim;
  checki "cost scaled for the slower clock" 1_200 (Sim.now sim)

(* --- Pinned -------------------------------------------------------- *)

let test_pinned_accounting () =
  let p = Host.Pinned.create ~capacity:1_000 in
  checkb "reserve ok" true (Host.Pinned.reserve p 600);
  checki "used" 600 (Host.Pinned.used p);
  checkb "over-reserve fails" false (Host.Pinned.reserve p 500);
  checki "unchanged after failure" 600 (Host.Pinned.used p);
  Host.Pinned.release p 100;
  checki "released" 500 (Host.Pinned.used p);
  checkb "fits now" true (Host.Pinned.reserve p 500);
  checki "full" 0 (Host.Pinned.available p)

let test_pinned_over_release () =
  let p = Host.Pinned.create ~capacity:10 in
  ignore (Host.Pinned.reserve p 5);
  checkb "over-release rejected" true
    (try
       Host.Pinned.release p 6;
       false
     with Invalid_argument _ -> true)

(* --- Mbuf ---------------------------------------------------------- *)

let chain = Alcotest.testable
    (fun fmt (c : Host.Mbuf.chain) ->
      Format.fprintf fmt "{clusters=%d; smalls=%d}" c.clusters c.smalls)
    ( = )

let test_chain_exact_clusters () =
  check chain "2048 = 2 clusters" { Host.Mbuf.clusters = 2; smalls = 0 }
    (Host.Mbuf.chain_for 2048)

let test_chain_large_remainder () =
  (* remainder 512 takes one more cluster *)
  check chain "1536" { Host.Mbuf.clusters = 2; smalls = 0 }
    (Host.Mbuf.chain_for 1536)

let test_chain_small_remainder () =
  (* remainder 376 < 512 is chopped into 112-byte mbufs *)
  check chain "1400" { Host.Mbuf.clusters = 1; smalls = 4 }
    (Host.Mbuf.chain_for 1400)

let test_chain_boundaries () =
  check chain "511 -> smalls" { Host.Mbuf.clusters = 0; smalls = 5 }
    (Host.Mbuf.chain_for 511);
  check chain "512 -> cluster" { Host.Mbuf.clusters = 1; smalls = 0 }
    (Host.Mbuf.chain_for 512);
  check chain "zero" { Host.Mbuf.clusters = 0; smalls = 0 }
    (Host.Mbuf.chain_for 0)

let test_sawtooth_cost () =
  let cfg = Host.Mbuf.sunos_config in
  (* the paper's sawtooth: just below a half-cluster boundary costs more
     than the cluster-aligned size above it *)
  checkb "2400 handled slower than 2048" true
    (Host.Mbuf.handling_cost cfg 2400 > Host.Mbuf.handling_cost cfg 2048);
  checkb "2560 (remainder 512) back to cluster cost" true
    (Host.Mbuf.handling_cost cfg 2560 < Host.Mbuf.handling_cost cfg 2400)

let prop_chain_covers_packet =
  QCheck.Test.make ~name:"mbuf chain always covers the packet" ~count:200
    QCheck.(int_range 0 20_000)
    (fun len ->
      let c = Host.Mbuf.chain_for len in
      (c.Host.Mbuf.clusters * 1024) + (c.Host.Mbuf.smalls * 112) >= len)

(* --- Kernel -------------------------------------------------------- *)

let test_kernel_costs_positive_and_growing () =
  let cfg = Host.Kernel.sunos in
  let s1 = Host.Kernel.send_cost cfg Host.Kernel.Udp ~len:100 in
  let s2 = Host.Kernel.send_cost cfg Host.Kernel.Udp ~len:8_000 in
  checkb "positive" true (s1 > 0);
  checkb "larger packets cost more" true (s2 > s1);
  checkb "tcp processing exceeds udp" true
    (Host.Kernel.send_cost cfg Host.Kernel.Tcp ~len:100 > s1)

let test_sockbuf () =
  let sb = Host.Kernel.Sockbuf.create ~limit:100 in
  checkb "offer ok" true (Host.Kernel.Sockbuf.offer sb 60);
  checkb "overflow dropped" false (Host.Kernel.Sockbuf.offer sb 50);
  checki "drop counted" 1 (Host.Kernel.Sockbuf.drops sb);
  Host.Kernel.Sockbuf.take sb 60;
  checkb "fits after drain" true (Host.Kernel.Sockbuf.offer sb 50);
  checki "used" 50 (Host.Kernel.Sockbuf.used sb)

let test_sockbuf_over_take () =
  let sb = Host.Kernel.Sockbuf.create ~limit:100 in
  ignore (Host.Kernel.Sockbuf.offer sb 10);
  checkb "over-take rejected" true
    (try
       Host.Kernel.Sockbuf.take sb 20;
       false
     with Invalid_argument _ -> true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "host"
    [
      ( "machine",
        [
          Alcotest.test_case "reference scale" `Quick test_scale_reference;
          Alcotest.test_case "slower clock" `Quick test_scale_slower;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "charge + accounting" `Quick test_charge_advances_and_accounts;
          Alcotest.test_case "cycles" `Quick test_charge_cycles;
          Alcotest.test_case "copy cost" `Quick test_copy_cost;
          Alcotest.test_case "ss10 scaling" `Quick test_scaled_charge_on_ss10;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "accounting" `Quick test_pinned_accounting;
          Alcotest.test_case "over-release" `Quick test_pinned_over_release;
        ] );
      ( "mbuf",
        [
          Alcotest.test_case "exact clusters" `Quick test_chain_exact_clusters;
          Alcotest.test_case "large remainder" `Quick test_chain_large_remainder;
          Alcotest.test_case "small remainder" `Quick test_chain_small_remainder;
          Alcotest.test_case "boundaries" `Quick test_chain_boundaries;
          Alcotest.test_case "sawtooth" `Quick test_sawtooth_cost;
          qt prop_chain_covers_packet;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "costs" `Quick test_kernel_costs_positive_and_growing;
          Alcotest.test_case "sockbuf" `Quick test_sockbuf;
          Alcotest.test_case "sockbuf over-take" `Quick test_sockbuf_over_take;
        ] );
    ]
