(* Tests for the service layers built over UAM: the binary wire codec, the
   RPC layer (transaction matching, concurrency, failures, timeouts) and
   the totally-ordered group broadcast. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* --- Wire ------------------------------------------------------------ *)

let test_wire_roundtrip_basics () =
  let w = Services.Wire.Writer.create () in
  Services.Wire.Writer.u8 w 200;
  Services.Wire.Writer.u16 w 40_000;
  Services.Wire.Writer.u32 w 3_000_000_000;
  Services.Wire.Writer.i64 w (-123_456_789);
  Services.Wire.Writer.string w "hello";
  Services.Wire.Writer.bool w true;
  Services.Wire.Writer.list w Services.Wire.Writer.i64 [ 1; 2; 3 ];
  Services.Wire.Writer.option w Services.Wire.Writer.string (Some "x");
  Services.Wire.Writer.option w Services.Wire.Writer.string None;
  let r = Services.Wire.Reader.of_bytes (Services.Wire.Writer.contents w) in
  checki "u8" 200 (Services.Wire.Reader.u8 r);
  checki "u16" 40_000 (Services.Wire.Reader.u16 r);
  checki "u32" 3_000_000_000 (Services.Wire.Reader.u32 r);
  checki "i64" (-123_456_789) (Services.Wire.Reader.i64 r);
  check Alcotest.string "string" "hello" (Services.Wire.Reader.string r);
  checkb "bool" true (Services.Wire.Reader.bool r);
  check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3 ]
    (Services.Wire.Reader.list r Services.Wire.Reader.i64);
  checkb "some" true
    (Services.Wire.Reader.option r Services.Wire.Reader.string = Some "x");
  checkb "none" true
    (Services.Wire.Reader.option r Services.Wire.Reader.string = None);
  checki "fully consumed" 0 (Services.Wire.Reader.remaining r)

let test_wire_truncation () =
  let w = Services.Wire.Writer.create () in
  Services.Wire.Writer.u32 w 99;
  let whole = Services.Wire.Writer.contents w in
  let r = Services.Wire.Reader.of_bytes (Bytes.sub whole 0 2) in
  checkb "truncated read raises" true
    (try
       ignore (Services.Wire.Reader.u32 r);
       false
     with Services.Wire.Truncated -> true)

let test_wire_range_checks () =
  let w = Services.Wire.Writer.create () in
  checkb "u8 range" true
    (try Services.Wire.Writer.u8 w 256; false with Invalid_argument _ -> true);
  checkb "u16 range" true
    (try Services.Wire.Writer.u16 w (-1); false with Invalid_argument _ -> true)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire codec round-trips arbitrary records" ~count:200
    QCheck.(
      triple (list small_int) (small_list (string_of_size Gen.(int_range 0 40)))
        (option bool))
    (fun (ints, strings, flag) ->
      let w = Services.Wire.Writer.create () in
      Services.Wire.Writer.list w Services.Wire.Writer.i64 ints;
      Services.Wire.Writer.list w Services.Wire.Writer.string strings;
      Services.Wire.Writer.option w Services.Wire.Writer.bool flag;
      let r = Services.Wire.Reader.of_bytes (Services.Wire.Writer.contents w) in
      let ints' = Services.Wire.Reader.list r Services.Wire.Reader.i64 in
      let strings' = Services.Wire.Reader.list r Services.Wire.Reader.string in
      let flag' = Services.Wire.Reader.option r Services.Wire.Reader.bool in
      ints = ints' && strings = strings' && flag = flag'
      && Services.Wire.Reader.remaining r = 0)

(* --- Rpc ------------------------------------------------------------- *)

let rpc_pair () =
  let c = Cluster.create () in
  let a0 = Uam.create (Cluster.node c 0).unet ~rank:0 ~nodes:2 in
  let a1 = Uam.create (Cluster.node c 1).unet ~rank:1 ~nodes:2 in
  Uam.connect a0 a1;
  (c, Services.Rpc.attach a0, Services.Rpc.attach a1)

let test_rpc_roundtrip () =
  let c, r0, r1 = rpc_pair () in
  Services.Rpc.register r1 ~proc:1 (fun ~src arg ->
      checki "caller identified" 0 src;
      Bytes.cat arg (Bytes.of_string "-served"));
  ignore (Proc.spawn c.sim (fun () -> Services.Rpc.serve_forever r1));
  let got = ref "" in
  ignore
    (Proc.spawn c.sim (fun () ->
         got :=
           Bytes.to_string
             (Services.Rpc.call r0 ~dst:1 ~proc:1 (Bytes.of_string "req"))));
  Sim.run ~until:(Sim.sec 5) c.sim;
  check Alcotest.string "result" "req-served" !got;
  checki "one call made" 1 (Services.Rpc.calls_made r0);
  checki "one call served" 1 (Services.Rpc.calls_served r1)

let test_rpc_sequential_calls () =
  let c, r0, r1 = rpc_pair () in
  let counter = ref 0 in
  Services.Rpc.register r1 ~proc:1 (fun ~src:_ _ ->
      incr counter;
      let w = Services.Wire.Writer.create () in
      Services.Wire.Writer.i64 w !counter;
      Services.Wire.Writer.contents w);
  ignore (Proc.spawn c.sim (fun () -> Services.Rpc.serve_forever r1));
  let results = ref [] in
  ignore
    (Proc.spawn c.sim (fun () ->
         for _ = 1 to 20 do
           let b = Services.Rpc.call r0 ~dst:1 ~proc:1 Bytes.empty in
           results :=
             Services.Wire.Reader.i64 (Services.Wire.Reader.of_bytes b)
             :: !results
         done));
  Sim.run ~until:(Sim.sec 5) c.sim;
  check
    (Alcotest.list Alcotest.int)
    "calls executed once each, in order"
    (List.init 20 (fun i -> i + 1))
    (List.rev !results)

let test_rpc_concurrent_clients () =
  let c, r0, r1 = rpc_pair () in
  Services.Rpc.register r1 ~proc:7 (fun ~src:_ arg -> arg);
  ignore (Proc.spawn c.sim (fun () -> Services.Rpc.serve_forever r1));
  let ok = ref 0 in
  for p = 1 to 4 do
    ignore
      (Proc.spawn c.sim (fun () ->
           for i = 1 to 10 do
             let msg = Bytes.of_string (Printf.sprintf "p%d-%d" p i) in
             if Bytes.equal (Services.Rpc.call r0 ~dst:1 ~proc:7 msg) msg then
               incr ok
           done))
  done;
  Sim.run ~until:(Sim.sec 10) c.sim;
  checki "all concurrent calls matched their replies" 40 !ok

let test_rpc_unknown_proc () =
  let c, r0, r1 = rpc_pair () in
  ignore (Proc.spawn c.sim (fun () -> Services.Rpc.serve_forever r1));
  let got_error = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         try ignore (Services.Rpc.call r0 ~dst:1 ~proc:42 Bytes.empty)
         with Services.Rpc.Remote_error _ -> got_error := true));
  Sim.run ~until:(Sim.sec 5) c.sim;
  checkb "remote error surfaced" true !got_error

let test_rpc_handler_exception () =
  let c, r0, r1 = rpc_pair () in
  Services.Rpc.register r1 ~proc:1 (fun ~src:_ _ -> failwith "boom");
  ignore (Proc.spawn c.sim (fun () -> Services.Rpc.serve_forever r1));
  let msg = ref "" in
  ignore
    (Proc.spawn c.sim (fun () ->
         try ignore (Services.Rpc.call r0 ~dst:1 ~proc:1 Bytes.empty)
         with Services.Rpc.Remote_error m -> msg := m));
  Sim.run ~until:(Sim.sec 5) c.sim;
  checkb "exception text crossed the wire" true (String.length !msg > 0)

let test_rpc_timeout () =
  (* the server never polls: the call must time out, not hang *)
  let c, r0, _r1 = rpc_pair () in
  let timed_out = ref false in
  ignore
    (Proc.spawn c.sim (fun () ->
         try ignore (Services.Rpc.call ~timeout:(Sim.ms 50) r0 ~dst:1 ~proc:1 Bytes.empty)
         with Services.Rpc.Timeout -> timed_out := true));
  Sim.run ~until:(Sim.sec 5) c.sim;
  checkb "timed out" true !timed_out

let test_rpc_server_calls_back () =
  (* node 1's handler makes its own RPC to node 0 before answering:
     re-entrancy through the poll loop *)
  let c, r0, r1 = rpc_pair () in
  Services.Rpc.register r0 ~proc:2 (fun ~src:_ _ -> Bytes.of_string "inner");
  Services.Rpc.register r1 ~proc:1 (fun ~src:_ _ ->
      let inner = Services.Rpc.call r1 ~dst:0 ~proc:2 Bytes.empty in
      Bytes.cat inner (Bytes.of_string "+outer"));
  ignore (Proc.spawn c.sim (fun () -> Services.Rpc.serve_forever r1));
  let got = ref "" in
  ignore
    (Proc.spawn c.sim (fun () ->
         got := Bytes.to_string (Services.Rpc.call r0 ~dst:1 ~proc:1 Bytes.empty)));
  Sim.run ~until:(Sim.sec 5) c.sim;
  check Alcotest.string "nested call" "inner+outer" !got

(* --- Group ------------------------------------------------------------ *)

let test_group_total_order () =
  let nodes = 4 in
  let c = Cluster.create ~hosts:nodes () in
  let ams =
    Array.init nodes (fun r -> Uam.create (Cluster.node c r).unet ~rank:r ~nodes)
  in
  Uam.connect_all ams;
  let logs = Array.init nodes (fun _ -> ref []) in
  let groups =
    Array.init nodes (fun r ->
        Services.Group.create ams.(r) ~deliver:(fun ~seq ~src payload ->
            logs.(r) := (seq, src, Bytes.to_string payload) :: !(logs.(r))))
  in
  let per_node = 10 in
  let total = nodes * per_node in
  Array.iteri
    (fun r g ->
      ignore
        (Proc.spawn c.sim (fun () ->
             for i = 1 to per_node do
               Services.Group.broadcast g
                 (Bytes.of_string (Printf.sprintf "m%d.%d" r i));
               (* interleave with protocol service *)
               Services.Group.serve g ~until:(fun () -> true)
             done;
             Services.Group.serve g ~until:(fun () ->
                 Services.Group.delivered g >= total))))
    groups;
  Sim.run ~until:(Sim.sec 30) c.sim;
  let reference = List.rev !(logs.(0)) in
  checki "all messages delivered everywhere" total (List.length reference);
  Array.iteri
    (fun r log ->
      check
        (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.string))
        (Printf.sprintf "node %d delivered the identical sequence" r)
        reference (List.rev !log))
    logs;
  (* sequence numbers are exactly 0..total-1 in order *)
  checkb "gapless sequence" true
    (List.mapi (fun i (seq, _, _) -> i = seq) reference |> List.for_all Fun.id)

let () =
  Alcotest.run "services"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_wire_roundtrip_basics;
          Alcotest.test_case "truncation" `Quick test_wire_truncation;
          Alcotest.test_case "range checks" `Quick test_wire_range_checks;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "sequential calls" `Quick test_rpc_sequential_calls;
          Alcotest.test_case "concurrent clients" `Quick test_rpc_concurrent_clients;
          Alcotest.test_case "unknown procedure" `Quick test_rpc_unknown_proc;
          Alcotest.test_case "handler exception" `Quick test_rpc_handler_exception;
          Alcotest.test_case "timeout" `Quick test_rpc_timeout;
          Alcotest.test_case "server calls back" `Quick test_rpc_server_calls_back;
        ] );
      ( "group",
        [ Alcotest.test_case "total order" `Quick test_group_total_order ] );
    ]
