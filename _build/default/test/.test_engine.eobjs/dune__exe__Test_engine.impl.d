test/test_engine.ml: Alcotest Array Engine Fun Gen List Proc QCheck QCheck_alcotest Rng Sim Stats Sync
