test/test_experiments.ml: Alcotest Experiments Fmt List
