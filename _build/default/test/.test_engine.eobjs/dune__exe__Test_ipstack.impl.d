test/test_ipstack.ml: Alcotest Atm Buffer Bytes Char Checksum Cluster Engine Flow_demux Gen Host Iface Ipstack List Printf Proc QCheck QCheck_alcotest Rng Sim Suite Tcp Udp
