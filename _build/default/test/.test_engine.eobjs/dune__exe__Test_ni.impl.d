test/test_ni.ml: Alcotest Atm Bytes Char Cluster Engine Float Fmt List Ni Option Printf Proc Result Sim Sync Unet
