test/test_atm.ml: Alcotest Atm Bytes Char Engine List QCheck QCheck_alcotest Rng Sim
