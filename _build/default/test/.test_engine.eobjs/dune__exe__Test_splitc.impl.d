test/test_splitc.ml: Alcotest Array Cluster Engine Fun List Option Printf Proc Sim Splitc Uam
