test/test_uam.mli:
