test/test_uam.ml: Alcotest Array Atm Bytes Char Cluster Engine Float Gen List Option Printf Proc QCheck QCheck_alcotest Rng Sim Uam
