test/test_services.ml: Alcotest Array Bytes Cluster Engine Fun Gen List Printf Proc QCheck QCheck_alcotest Services Sim String Uam
