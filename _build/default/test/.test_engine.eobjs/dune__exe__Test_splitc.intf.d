test/test_splitc.mli:
