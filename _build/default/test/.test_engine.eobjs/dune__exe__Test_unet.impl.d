test/test_unet.ml: Alcotest Atm Bytes Char Cluster Engine Float Fmt Host List Ni Option Printf Proc QCheck QCheck_alcotest Result Rng Sim Unet
