test/test_unet.mli:
