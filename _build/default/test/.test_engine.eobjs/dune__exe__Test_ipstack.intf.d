test/test_ipstack.mli:
