test/test_host.ml: Alcotest Engine Format Host Proc QCheck QCheck_alcotest Sim
