(* Tests for the Split-C layer: the machine-model transports, the runtime's
   global operations on both transports, and the seven benchmarks'
   correctness at small scale. *)

open Engine

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
module R = Splitc.Runtime

let cm5_transports ?(nodes = 4) () =
  let sim = Sim.create () in
  Splitc.Machine_model.transports
    (Splitc.Machine_model.create sim ~nodes Splitc.Machine_model.cm5)

let uam_transports ?(nodes = 4) () =
  let c = Cluster.create ~hosts:nodes () in
  let ams =
    Array.init nodes (fun r -> Uam.create (Cluster.node c r).unet ~rank:r ~nodes)
  in
  Uam.connect_all ams;
  Array.map Splitc.Transport.of_uam ams

let both name f =
  [
    Alcotest.test_case (name ^ " [cm5 model]") `Quick (fun () ->
        f (cm5_transports ()));
    Alcotest.test_case (name ^ " [uam cluster]") `Quick (fun () ->
        f (uam_transports ()));
  ]

(* --- machine model specifics ----------------------------------------- *)

let test_model_overhead_charged () =
  let sim = Sim.create () in
  let f = Splitc.Machine_model.create sim ~nodes:2 Splitc.Machine_model.meiko_cs2 in
  let tps = Splitc.Machine_model.transports f in
  let send_time = ref 0 in
  tps.(1).Splitc.Transport.register 1 (fun ~src:_ ~reply:_ ~args:_ ~payload:_ -> ());
  ignore
    (Proc.spawn sim (fun () ->
         let t0 = Sim.now sim in
         tps.(0).Splitc.Transport.request ~dst:1 ~handler:1 ();
         send_time := Sim.now sim - t0));
  ignore (Proc.spawn sim (fun () -> tps.(1).Splitc.Transport.flush ()));
  Sim.run ~until:(Sim.sec 1) sim;
  checki "sender charged o = 11 us" 11_000 !send_time

let test_model_rtt_matches_spec () =
  let sim = Sim.create () in
  let f = Splitc.Machine_model.create sim ~nodes:2 Splitc.Machine_model.cm5 in
  let tps = Splitc.Machine_model.transports f in
  let done_at = ref 0 in
  tps.(1).Splitc.Transport.register 1 (fun ~src:_ ~reply ~args:_ ~payload:_ ->
      (Option.get reply) ~handler:2 ());
  let got = ref false in
  tps.(0).Splitc.Transport.register 2 (fun ~src:_ ~reply:_ ~args:_ ~payload:_ ->
      got := true);
  ignore
    (Proc.spawn sim (fun () ->
         tps.(0).Splitc.Transport.request ~dst:1 ~handler:1 ();
         tps.(0).Splitc.Transport.poll_until (fun () -> !got);
         done_at := Sim.now sim));
  ignore
    (Proc.spawn sim (fun () ->
         tps.(1).Splitc.Transport.poll_until (fun () -> false)));
  Sim.run ~until:(Sim.sec 1) sim;
  (* request/reply includes 4x o(3us) + 2x net latency(6us each) = 24 us
     on the CM-5 model: sanity band around the 12 us network RTT + overheads *)
  checkb
    (Printf.sprintf "CM-5 model RTT = %d ns plausible" !done_at)
    true
    (!done_at >= 12_000 && !done_at <= 40_000)

(* --- runtime collectives --------------------------------------------- *)

let test_barrier tps =
  let n = Array.length tps in
  let after = R.run tps (fun ctx ->
      (* stagger arrival; everyone must leave together *)
      if R.rank ctx > 0 then
        Proc.sleep (R.sim ctx) ~time:(Sim.us (100 * R.rank ctx));
      R.barrier ctx;
      Sim.now (R.sim ctx))
  in
  let latest_arrival = Array.fold_left max 0 after in
  Array.iter
    (fun t -> checkb "no one left before the last arrived" true (t >= latest_arrival - 1_000_000))
    after;
  checki "all ranks returned" n (Array.length after)

let test_reduce tps =
  let out = R.run tps (fun ctx ->
      let r = R.rank ctx in
      let s = R.reduce_int ctx R.Sum (r + 1) in
      let mn = R.reduce_int ctx R.Min (r + 1) in
      let mx = R.reduce_int ctx R.Max (r + 1) in
      let f = R.reduce_float ctx R.Sum (float_of_int r +. 0.5) in
      (s, mn, mx, f))
  in
  let n = Array.length tps in
  Array.iter
    (fun (s, mn, mx, f) ->
      checki "sum" (n * (n + 1) / 2) s;
      checki "min" 1 mn;
      checki "max" n mx;
      check (Alcotest.float 1e-9) "float sum"
        (float_of_int (n * (n - 1) / 2) +. (0.5 *. float_of_int n))
        f)
    out

let test_broadcast tps =
  let out = R.run tps (fun ctx ->
      let v =
        if R.rank ctx = 0 then [| 3; 1; 4; 1; 5 |] else Array.make 5 0
      in
      R.broadcast_ints ctx ~root:0 v)
  in
  Array.iter
    (fun got -> check (Alcotest.array Alcotest.int) "broadcast" [| 3; 1; 4; 1; 5 |] got)
    out

let test_read_write tps =
  let out = R.run tps (fun ctx ->
      let n = R.nprocs ctx in
      let r = R.rank ctx in
      R.register_ints ctx ~id:1 (Array.make n (-1));
      R.register_floats ctx ~id:2 (Array.make n 0.);
      R.barrier ctx;
      (* everyone writes its rank into everyone's slot r *)
      for p = 0 to n - 1 do
        R.write_int ctx ~proc:p ~arr:1 ~idx:r r;
        R.write_float ctx ~proc:p ~arr:2 ~idx:r (float_of_int r *. 2.)
      done;
      R.barrier ctx;
      (* read the peer's own slot back through the network *)
      let next = (r + 1) mod n in
      let v = R.read_int ctx ~proc:next ~arr:1 ~idx:next in
      let f = R.read_float ctx ~proc:next ~arr:2 ~idx:next in
      (v, f))
  in
  Array.iteri
    (fun r (v, f) ->
      let next = (r + 1) mod Array.length out in
      checki "read_int" next v;
      check (Alcotest.float 1e-9) "read_float" (float_of_int next *. 2.) f)
    out

let test_store_pair_and_append tps =
  let out = R.run tps (fun ctx ->
      let n = R.nprocs ctx in
      let r = R.rank ctx in
      R.register_append_buffer ctx ~id:1;
      R.barrier ctx;
      (* everyone sends (rank, rank*10) to everyone *)
      for p = 0 to n - 1 do
        R.store_pair ctx ~proc:p ~buf:1 r (r * 10)
      done;
      R.all_store_sync ctx;
      let got = R.append_buffer_contents ctx ~id:1 in
      Array.sort compare got;
      got)
  in
  let n = Array.length out in
  let expect =
    List.concat_map (fun r -> [ r; r * 10 ]) (List.init n Fun.id)
    |> List.sort compare |> Array.of_list
  in
  Array.iter
    (fun got -> check (Alcotest.array Alcotest.int) "pairs from everyone" expect got)
    out

let test_bulk_ints tps =
  let out = R.run tps (fun ctx ->
      let r = R.rank ctx in
      let n = R.nprocs ctx in
      R.register_ints ctx ~id:1 (Array.make 2_000 0);
      R.barrier ctx;
      (* chunked store (2000 elements = multiple 520-element chunks on UAM) *)
      let data = Array.init 2_000 (fun i -> (r * 10_000) + i) in
      R.store_ints ctx ~proc:((r + 1) mod n) ~arr:1 ~pos:0 data;
      R.all_store_sync ctx;
      let from = (r + n - 1) mod n in
      R.get_ints ctx ~proc:(R.rank ctx) ~arr:1 ~pos:0 ~len:2_000
      |> Array.for_all2 (fun a b -> a = b)
           (Array.init 2_000 (fun i -> (from * 10_000) + i)))
  in
  Array.iter (fun ok -> checkb "bulk store+get intact" true ok) out

let test_bulk_floats tps =
  let out = R.run tps (fun ctx ->
      let r = R.rank ctx in
      let n = R.nprocs ctx in
      R.register_floats ctx ~id:1 (Array.make 1_000 0.);
      R.barrier ctx;
      let data = Array.init 1_000 (fun i -> float_of_int ((r * 1_000) + i) /. 3.) in
      R.store_floats ctx ~proc:((r + 1) mod n) ~arr:1 ~pos:0 data;
      R.all_store_sync ctx;
      let got = R.get_floats ctx ~proc:((r + 1) mod n) ~arr:1 ~pos:0 ~len:1_000 in
      Array.for_all2 ( = ) data got)
  in
  Array.iter (fun ok -> checkb "remote float gets see the stored data" true ok) out

let test_async_get tps =
  let out = R.run tps (fun ctx ->
      let n = R.nprocs ctx in
      let r = R.rank ctx in
      R.register_ints ctx ~id:1 (Array.init 600 (fun i -> (r * 1_000) + i));
      R.barrier ctx;
      let next = (r + 1) mod n in
      let h1 = R.get_ints_async ctx ~proc:next ~arr:1 ~pos:0 ~len:300 in
      let h2 = R.get_ints_async ctx ~proc:next ~arr:1 ~pos:300 ~len:300 in
      let a = R.await ctx h1 and b = R.await ctx h2 in
      Array.append a b
      |> Array.for_all2 ( = ) (Array.init 600 (fun i -> (next * 1_000) + i)))
  in
  Array.iter (fun ok -> checkb "split-phase gets" true ok) out

(* --- benchmarks (small sizes, correctness checked internally) -------- *)

let bench_checked name f =
  [
    Alcotest.test_case (name ^ " [cm5 model]") `Quick (fun () ->
        let r = f (cm5_transports ~nodes:8 ()) in
        checkb "verified" true r.Splitc.Bench_common.checked;
        checkb "nonzero time" true (r.Splitc.Bench_common.total_us > 0.));
    Alcotest.test_case (name ^ " [uam cluster]") `Slow (fun () ->
        let r = f (uam_transports ~nodes:8 ()) in
        checkb "verified" true r.Splitc.Bench_common.checked);
  ]

let test_comm_accounting () =
  (* a pure-computation program reports zero comm; a chatty one reports
     nonzero comm below total *)
  let tps = cm5_transports () in
  let out = R.run tps (fun ctx ->
      R.charge ctx ~cycles:100_000;
      let comp_only = R.comm_us ctx in
      R.barrier ctx;
      for _ = 1 to 10 do
        ignore (R.reduce_int ctx R.Sum 1)
      done;
      (comp_only, R.comm_us ctx, R.elapsed_us ctx))
  in
  Array.iter
    (fun (c0, c1, total) ->
      check (Alcotest.float 1e-9) "no comm before any call" 0. c0;
      checkb "comm grew" true (c1 > 0.);
      checkb "comm below total" true (c1 <= total))
    out

let () =
  Alcotest.run "splitc"
    [
      ( "machine-model",
        [
          Alcotest.test_case "overhead charged" `Quick test_model_overhead_charged;
          Alcotest.test_case "rtt plausible" `Quick test_model_rtt_matches_spec;
        ] );
      ("barrier", both "barrier" test_barrier);
      ("reduce", both "reduce" test_reduce);
      ("broadcast", both "broadcast" test_broadcast);
      ("global-rw", both "read/write" test_read_write);
      ("store-pair", both "store_pair/append" test_store_pair_and_append);
      ("bulk-ints", both "bulk ints" test_bulk_ints);
      ("bulk-floats", both "bulk floats" test_bulk_floats);
      ("async-get", both "async get" test_async_get);
      ( "accounting",
        [ Alcotest.test_case "comm vs comp" `Quick test_comm_accounting ] );
      ( "bench-mm",
        bench_checked "matrix multiply" (fun tps ->
            Splitc.Bench_mm.run ~params:{ Splitc.Bench_mm.g = 4; b = 8 } tps) );
      ( "bench-ssort-small",
        bench_checked "sample sort small" (fun tps ->
            Splitc.Bench_sample_sort.run ~n:4_096
              ~variant:Splitc.Bench_sample_sort.Small tps) );
      ( "bench-ssort-bulk",
        bench_checked "sample sort bulk" (fun tps ->
            Splitc.Bench_sample_sort.run ~n:4_096
              ~variant:Splitc.Bench_sample_sort.Bulk tps) );
      ( "bench-radix-small",
        bench_checked "radix sort small" (fun tps ->
            Splitc.Bench_radix_sort.run ~n:4_096
              ~variant:Splitc.Bench_radix_sort.Small tps) );
      ( "bench-radix-bulk",
        bench_checked "radix sort bulk" (fun tps ->
            Splitc.Bench_radix_sort.run ~n:4_096
              ~variant:Splitc.Bench_radix_sort.Bulk tps) );
      ( "bench-cc",
        bench_checked "connected components" (fun tps ->
            Splitc.Bench_cc.run ~n:1_024 tps) );
      ( "bench-cg",
        bench_checked "conjugate gradient" (fun tps ->
            Splitc.Bench_cg.run ~k:32 ~iters:30 tps) );
    ]
