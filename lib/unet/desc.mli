(** Message descriptors, the entries of the send and receive queues (§3.4).

    As the optimization the paper describes for small messages, a descriptor
    can carry the message bytes inline instead of pointing at buffers in the
    communication segment; the threshold is what fits in a single ATM cell
    after the AAL5 trailer (40 bytes). *)

val inline_max : int
(** 40 = 48-byte cell payload minus the 8-byte AAL5 trailer. *)

type payload =
  | Inline of Engine.Buf.t
      (** small message carried in the descriptor itself; length must be at
          most {!inline_max}. On transmit this may be a zero-copy view into
          caller memory; on receive it is always a snapshot owned by the
          descriptor. *)
  | Buffers of (int * int) list
      (** scatter-gather list of (offset, length) ranges within the
          endpoint's communication segment *)

val payload_length : payload -> int

val validate_inline : Engine.Buf.t -> (unit, string) result
(** Check the inline size bound. *)

(** A send-queue entry: destination channel plus the data. [injected] is the
    flag the NI sets once the message has entered the network, telling the
    process the send buffers may be reused. *)
type tx = {
  chan : int;
  tx_payload : payload;
  dest_offset : int option;
      (** direct-access U-Net (§3.6): deposit the data at this offset in the
          destination's communication segment *)
  mutable injected : bool;
  mutable ctx : Engine.Span.ctx option;
      (** causal span context riding this message; minted by the sending
          API (or [Unet.send] itself) and inherited by the AAL5 cells *)
}

val tx : ?dest_offset:int -> ?ctx:Engine.Span.ctx -> chan:int -> payload -> tx

(** A receive-queue entry: originating channel plus the data location.
    [ctx] is the sender's span context, recovered from the EOP cell. *)
type rx = {
  src_chan : int;
  rx_payload : payload;
  ctx : Engine.Span.ctx option;
}
