let log_src = Logs.Src.create "unet.mux" ~doc:"U-Net mux/demux agent"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  table : (int, Endpoint.t * Channel.id) Hashtbl.t;
  host : int;
  copy_layer : string;
  (* registry-backed counters (shared per host label across instances) *)
  m_deliveries : Engine.Metrics.Counter.t;
  m_unknown : Engine.Metrics.Counter.t;
  m_outcomes : (delivery -> Engine.Metrics.Counter.t);
  (* per-instance view, what the accessors report *)
  mutable delivered : int;
  mutable unknown : int;
}

and delivery =
  | Delivered_inline
  | Delivered_buffers of (int * int) list
  | Delivered_direct
  | Dropped_rx_full
  | Dropped_no_free_buffer
  | Dropped_bad_offset

let outcome_label = function
  | Delivered_inline -> "inline"
  | Delivered_buffers _ -> "buffers"
  | Delivered_direct -> "direct"
  | Dropped_rx_full -> "drop_rx_full"
  | Dropped_no_free_buffer -> "drop_no_free_buffer"
  | Dropped_bad_offset -> "drop_bad_offset"

let all_outcomes =
  [
    Delivered_inline;
    Delivered_buffers [];
    Delivered_direct;
    Dropped_rx_full;
    Dropped_no_free_buffer;
    Dropped_bad_offset;
  ]

(* Every receive-path discard, wherever it happens (mux outcome, kernel
   mux unknown channel, NI overrun), funnels through here so nothing is
   dropped silently: a labelled counter plus a [Dropped] span mark. *)
let rx_dropped =
  let tbl : (string, Engine.Metrics.Counter.t) Hashtbl.t = Hashtbl.create 8 in
  fun ?ctx reason ->
    let c =
      match Hashtbl.find_opt tbl reason with
      | Some c -> c
      | None ->
          let c =
            Engine.Metrics.counter
              ~help:"messages discarded on the U-Net receive path, by reason"
              "unet_rx_dropped_total"
              [ ("reason", reason) ]
          in
          Hashtbl.add tbl reason c;
          c
    in
    Engine.Metrics.Counter.inc c;
    Engine.Span.mark ctx Engine.Span.Dropped

let create ?host ?(copy_layer = "mux") () =
  let labels =
    match host with None -> [] | Some h -> [ ("host", string_of_int h) ]
  in
  let outcomes =
    List.map
      (fun o ->
        ( outcome_label o,
          Engine.Metrics.counter
            ~help:"U-Net mux deliveries and drops by outcome"
            "unet_mux_outcomes_total"
            (("outcome", outcome_label o) :: labels) ))
      all_outcomes
  in
  {
    table = Hashtbl.create 64;
    host = Option.value host ~default:0;
    copy_layer;
    m_deliveries =
      Engine.Metrics.counter
        ~help:"messages the mux delivered into an endpoint"
        "unet_mux_deliveries_total" labels;
    m_unknown =
      Engine.Metrics.counter
        ~help:"PDUs discarded because no endpoint registered the tag"
        "unet_mux_unknown_tag_drops_total" labels;
    m_outcomes = (fun o -> List.assoc (outcome_label o) outcomes);
    delivered = 0;
    unknown = 0;
  }

let register t ~rx_vci ep ~chan =
  if Hashtbl.mem t.table rx_vci then
    invalid_arg (Printf.sprintf "Mux.register: VCI %d already registered" rx_vci);
  Hashtbl.add t.table rx_vci (ep, chan)

let unregister t ~rx_vci = Hashtbl.remove t.table rx_vci
let lookup t ~rx_vci = Hashtbl.find_opt t.table rx_vci

(* Pop free buffers until [len] bytes are covered. On shortage, everything
   is pushed back and the message is dropped whole. *)
let take_free_buffers (ep : Endpoint.t) len =
  let rec loop acc got =
    if got >= len then Some (List.rev acc)
    else
      match Ring.pop ep.free_ring with
      | None ->
          List.iter (fun b -> ignore (Ring.push ep.free_ring b)) (List.rev acc);
          None
      | Some (off, blen) -> loop ((off, blen) :: acc) (got + blen)
  in
  loop [] 0

let fill_buffers ~layer (ep : Endpoint.t) buffers data =
  let len = Engine.Buf.length data in
  let pos = ref 0 in
  List.map
    (fun (off, blen) ->
      let n = min blen (len - !pos) in
      Segment.write_buf ~layer ep.segment ~off
        (Engine.Buf.sub data ~pos:!pos ~len:n);
      pos := !pos + n;
      (off, n))
    buffers

let push_rx (ep : Endpoint.t) desc =
  let was_empty = Ring.is_empty ep.rx_ring in
  if Ring.push ep.rx_ring desc then begin
    ep.rx_delivered <- ep.rx_delivered + 1;
    (* mint-to-rx-ring latency folds into the message_latency_ns sketch
       on every delivery, independent of span collection *)
    Engine.Span.observe_latency desc.Desc.ctx;
    (* every successful delivery funnels through here, which is what the
       flight recorder's stall watchdog counts as global progress *)
    if Engine.Recorder.armed () then Engine.Recorder.note_delivery ();
    Endpoint.fire_upcalls ep ~was_empty;
    Engine.Sync.Condition.broadcast ep.rx_cond;
    true
  end
  else begin
    ep.drops_rx_full <- ep.drops_rx_full + 1;
    false
  end

let deliver_to ?(copy_layer = "mux") ?ctx (ep : Endpoint.t) ~chan ?dest_offset
    data =
  let len = Engine.Buf.length data in
  let outcome =
    match dest_offset with
    | Some off when ep.direct_access -> (
        (* Direct-access: deposit straight into the destination data
           structure; the receive queue only carries a notification. *)
        match Segment.check_range ep.segment ~off ~len with
        | Error _ -> Dropped_bad_offset
        | Ok () ->
            Segment.write_buf ~layer:copy_layer ep.segment ~off data;
            let desc =
              {
                Desc.src_chan = chan;
                rx_payload = Desc.Buffers [ (off, len) ];
                ctx;
              }
            in
            if push_rx ep desc then begin
              Engine.Span.mark ctx Engine.Span.Demuxed;
              Delivered_direct
            end
            else Dropped_rx_full)
    | Some _ | None ->
        if len <= Desc.inline_max then begin
          (* the descriptor retains the payload, so snapshot it out of the
             sender's storage *)
          let desc =
            {
              Desc.src_chan = chan;
              rx_payload = Desc.Inline (Engine.Buf.copy ~layer:copy_layer data);
              ctx;
            }
          in
          if push_rx ep desc then begin
            Engine.Span.mark ctx Engine.Span.Demuxed;
            Delivered_inline
          end
          else Dropped_rx_full
        end
        else begin
          match take_free_buffers ep len with
          | None ->
              ep.drops_no_free_buffer <- ep.drops_no_free_buffer + 1;
              Dropped_no_free_buffer
          | Some buffers ->
              let filled = fill_buffers ~layer:copy_layer ep buffers data in
              let desc =
                { Desc.src_chan = chan; rx_payload = Desc.Buffers filled; ctx }
              in
              if push_rx ep desc then begin
                Engine.Span.mark ctx Engine.Span.Demuxed;
                Delivered_buffers filled
              end
              else begin
                (* receive ring full: give the buffers back *)
                List.iter (fun b -> ignore (Ring.push ep.free_ring b)) buffers;
                Dropped_rx_full
              end
        end
  in
  (match outcome with
  | Delivered_inline | Delivered_buffers _ | Delivered_direct -> ()
  | Dropped_rx_full ->
      rx_dropped ?ctx "rx_full";
      Log.debug (fun m ->
          m "endpoint %d: receive queue full, message dropped" ep.ep_id)
  | Dropped_no_free_buffer ->
      rx_dropped ?ctx "no_free_buffer";
      Log.debug (fun m ->
          m "endpoint %d: free queue empty, %d-byte message dropped" ep.ep_id
            len)
  | Dropped_bad_offset ->
      rx_dropped ?ctx "bad_offset";
      Log.debug (fun m ->
          m "endpoint %d: direct-access offset out of range" ep.ep_id));
  outcome

let deliver t ~rx_vci ?ctx ?dest_offset data =
  match lookup t ~rx_vci with
  | None ->
      t.unknown <- t.unknown + 1;
      Engine.Metrics.Counter.inc t.m_unknown;
      rx_dropped ?ctx "unknown_channel";
      if Engine.Trace.enabled () then
        Engine.Trace.instant Engine.Trace.Mux "mux.unknown_tag" ~tid:t.host
          ~args:[ ("vci", Engine.Trace.Int rx_vci) ];
      None
  | Some (ep, chan) ->
      let outcome =
        deliver_to ~copy_layer:t.copy_layer ?ctx ep ~chan ?dest_offset data
      in
      (match outcome with
      | Delivered_inline | Delivered_buffers _ | Delivered_direct ->
          t.delivered <- t.delivered + 1;
          Engine.Metrics.Counter.inc t.m_deliveries
      | Dropped_rx_full | Dropped_no_free_buffer | Dropped_bad_offset -> ());
      Engine.Metrics.Counter.inc (t.m_outcomes outcome);
      if Engine.Trace.enabled () then
        Engine.Trace.instant Engine.Trace.Mux "mux.deliver" ~tid:t.host
          ~args:
            [
              ("vci", Engine.Trace.Int rx_vci);
              ("len", Engine.Trace.Int (Engine.Buf.length data));
              ("outcome", Engine.Trace.Str (outcome_label outcome));
            ];
      Some (ep, chan, outcome)

let deliveries t = t.delivered
let unknown_tag_drops t = t.unknown
