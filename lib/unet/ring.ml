type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
  mutable hw : int; (* deepest the ring has ever been *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; len = 0; hw = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let high_water t = t.hw
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.slots

let push t v =
  if is_full t then false
  else begin
    let tail = (t.head + t.len) mod Array.length t.slots in
    t.slots.(tail) <- Some v;
    t.len <- t.len + 1;
    if t.len > t.hw then t.hw <- t.len;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let v = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.slots;
    t.len <- t.len - 1;
    v
  end

let peek t = if t.len = 0 then None else t.slots.(t.head)

let iter f t =
  for i = 0 to t.len - 1 do
    match t.slots.((t.head + i) mod Array.length t.slots) with
    | Some v -> f v
    | None -> assert false
  done

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0
