let inline_max = Atm.Cell.payload_size - Atm.Aal5.trailer_size

type payload = Inline of Engine.Buf.t | Buffers of (int * int) list

let payload_length = function
  | Inline b -> Engine.Buf.length b
  | Buffers bs -> List.fold_left (fun acc (_, len) -> acc + len) 0 bs

let validate_inline b =
  if Engine.Buf.length b <= inline_max then Ok ()
  else
    Error
      (Printf.sprintf "inline payload of %d bytes exceeds the %d-byte limit"
         (Engine.Buf.length b) inline_max)

type tx = {
  chan : int;
  tx_payload : payload;
  dest_offset : int option;
  mutable injected : bool;
  mutable ctx : Engine.Span.ctx option;
}

let tx ?dest_offset ?ctx ~chan payload =
  { chan; tx_payload = payload; dest_offset; injected = false; ctx }

type rx = {
  src_chan : int;
  rx_payload : payload;
  ctx : Engine.Span.ctx option;
}
