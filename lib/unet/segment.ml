type t = { data : bytes }

let create ~size =
  if size <= 0 then invalid_arg "Segment.create: size must be positive";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check_range t ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length t.data then
    Error
      (Printf.sprintf "range [%d, %d) outside segment of %d bytes" off
         (off + len) (Bytes.length t.data))
  else Ok ()

let fail_range t ~off ~len =
  match check_range t ~off ~len with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Segment: " ^ msg)

let view t ~off ~len =
  fail_range t ~off ~len;
  Engine.Buf.of_bytes_sub t.data ~pos:off ~len

let write_buf ~layer t ~off src =
  fail_range t ~off ~len:(Engine.Buf.length src);
  Engine.Buf.copy_into ~layer src ~dst:t.data ~dst_pos:off

(* the bytes-based accessors are the application staging path: every call
   moves data between process memory and the segment, and is counted *)
let write ?(layer = "segment") t ~off ~src ~src_pos ~len =
  fail_range t ~off ~len;
  Engine.Buf.blit_bytes ~layer ~src ~src_pos ~dst:t.data ~dst_pos:off ~len

let read ?(layer = "segment") t ~off ~len =
  Engine.Buf.to_bytes ~layer (view t ~off ~len)

let blit_out ?(layer = "segment") t ~off ~dst ~dst_pos ~len =
  fail_range t ~off ~len;
  Engine.Buf.blit_bytes ~layer ~src:t.data ~src_pos:off ~dst ~dst_pos ~len

let unsafe_bytes t = t.data

module Allocator = struct
  type seg = t

  type t = {
    block : int;
    offsets : int list ref; (* free list *)
    valid : (int, bool) Hashtbl.t; (* offset -> currently free? *)
  }

  let create (seg : seg) ~block =
    if block <= 0 then invalid_arg "Allocator.create: block must be positive";
    let n = size seg / block in
    let offsets = ref [] in
    let valid = Hashtbl.create (max 16 n) in
    for i = n - 1 downto 0 do
      offsets := (i * block) :: !offsets;
      Hashtbl.replace valid (i * block) true
    done;
    { block; offsets; valid }

  let block_size t = t.block
  let free_count t = List.length !(t.offsets)

  let alloc t =
    match !(t.offsets) with
    | [] -> None
    | off :: rest ->
        t.offsets := rest;
        Hashtbl.replace t.valid off false;
        Some (off, t.block)

  let free t (off, len) =
    if len <> t.block then invalid_arg "Allocator.free: wrong block length";
    (match Hashtbl.find_opt t.valid off with
    | None -> invalid_arg "Allocator.free: not a block of this allocator"
    | Some true -> invalid_arg "Allocator.free: double free"
    | Some false -> ());
    Hashtbl.replace t.valid off true;
    t.offsets := off :: !(t.offsets)
end
