(** The message multiplexer/demultiplexer of Figure 1(b): the only agent on
    the data path. It owns the host's tag table (incoming VCI → endpoint +
    channel) and performs deliveries, enforcing that messages only reach the
    endpoint that registered the tag. NI backends share this logic. *)

type t

val create : ?host:int -> ?copy_layer:string -> unit -> t
(** [host] labels this mux's registry metrics ([unet_mux_deliveries_total],
    [unet_mux_unknown_tag_drops_total], [unet_mux_outcomes_total]) and tags
    its trace events. [copy_layer] labels the delivery copies this mux
    performs in [buf_copies_total] (the NI that owns the mux names its
    receive path, e.g. ["sba200_rx_dma"]). *)

val register : t -> rx_vci:int -> Endpoint.t -> chan:Channel.id -> unit
(** Raises if the VCI is already registered (tag conflict). *)

val unregister : t -> rx_vci:int -> unit
val lookup : t -> rx_vci:int -> (Endpoint.t * Channel.id) option

type delivery =
  | Delivered_inline
  | Delivered_buffers of (int * int) list
  | Delivered_direct  (** direct-access deposit at a sender-given offset *)
  | Dropped_rx_full
  | Dropped_no_free_buffer
  | Dropped_bad_offset  (** direct-access offset outside the segment *)

val deliver :
  t ->
  rx_vci:int ->
  ?ctx:Engine.Span.ctx ->
  ?dest_offset:int ->
  Engine.Buf.t ->
  (Endpoint.t * Channel.id * delivery) option
(** Demultiplex a reassembled PDU to its endpoint: small messages go inline
    into a receive descriptor; larger ones fill buffers popped from the free
    queue (whole-message drop when the queue runs dry, §3.4); direct-access
    endpoints accept a sender-specified segment offset. Fires upcalls and
    wakes blocked receivers. [None] means the tag was unknown and the PDU
    was discarded. *)

val deliver_to :
  ?copy_layer:string ->
  ?ctx:Engine.Span.ctx ->
  Endpoint.t ->
  chan:Channel.id ->
  ?dest_offset:int ->
  Engine.Buf.t ->
  delivery
(** The delivery core without the tag lookup: place a message into an
    endpoint (inline / free-queue buffers / direct deposit), fire upcalls,
    wake receivers. Used by the mux itself and by the kernel when it
    re-delivers multiplexed traffic to an emulated endpoint (§3.5). [ctx]
    is stamped onto the receive descriptor and marked [Demuxed] when the
    push succeeds. *)

val deliveries : t -> int
val unknown_tag_drops : t -> int

val rx_dropped : ?ctx:Engine.Span.ctx -> string -> unit
(** Account one receive-path discard: bumps
    [unet_rx_dropped_total{reason}] and marks the span [Dropped]. Every
    drop site on the receive path (mux outcomes, the kernel mux's unknown
    channel, NI overruns) must report here so no message vanishes
    silently. *)
