(** Communication segments: the pinned memory regions holding message data
    (§3.4). Base-level U-Net bounds their size; buffer *management* within a
    segment is entirely up to the process, so the segment itself only offers
    bounds-checked byte access, plus an optional fixed-size-block allocator
    applications can use. *)

type t

val create : size:int -> t
val size : t -> int

val check_range : t -> off:int -> len:int -> (unit, string) result
(** Validate that [off, off+len) lies within the segment — the protection
    check the NI performs on every descriptor. *)

val view : t -> off:int -> len:int -> Engine.Buf.t
(** Zero-copy view of a range of the segment. The view aliases segment
    memory: it is valid only while the range is owned by the caller (see
    DESIGN.md, "Buffer ownership and copy accounting"). *)

val write_buf : layer:string -> t -> off:int -> Engine.Buf.t -> unit
(** Materialize a slice into the segment at [off]; counted against
    [buf_copies_total{layer}]. *)

val write :
  ?layer:string -> t -> off:int -> src:bytes -> src_pos:int -> len:int -> unit

val read : ?layer:string -> t -> off:int -> len:int -> bytes

val blit_out :
  ?layer:string -> t -> off:int -> dst:bytes -> dst_pos:int -> len:int -> unit
(** [write]/[read]/[blit_out] move bytes between process memory and the
    segment — the application staging copies of base-level U-Net. Each call
    is counted (default layer ["segment"]). *)

val unsafe_bytes : t -> bytes
(** The backing store (for zero-copy style access by co-located layers). *)

(** Fixed-block allocator for send/receive buffers inside a segment: carve
    the segment into [block] - byte buffers, hand them out and take them
    back. This is the typical buffer policy of a U-Net application. *)
module Allocator : sig
  type seg := t
  type t

  val create : seg -> block:int -> t
  val block_size : t -> int
  val free_count : t -> int

  val alloc : t -> (int * int) option
  (** An (offset, length) buffer, or [None] when exhausted. *)

  val free : t -> int * int -> unit
  (** Return a buffer. Raises [Invalid_argument] for a range that is not one
      of this allocator's blocks or is already free. *)
end
