(** Fixed-capacity FIFO rings — the message queues of a U-Net endpoint.
    A full ring is how back-pressure reaches the process (§3.1). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int

val high_water : 'a t -> int
(** Deepest the ring has ever been (monotonic; survives {!clear}). *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [false] if the ring is full (the entry is not added). *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
