module Desc = Desc
module Ring = Ring
module Segment = Segment
module Channel = Channel
module Endpoint = Endpoint
module Mux = Mux
open Engine

let log_src = Logs.Src.create "unet" ~doc:"U-Net user API"

module Log = (val Logs.src_log log_src : Logs.LOG)

type backend = {
  nic_name : string;
  notify_tx : Endpoint.t -> unit;
  mux : Mux.t;
  max_endpoints : int;
  max_seg_size : int;
  doorbell_ns : int;
  rx_poll_ns : int;
  kernel_op_ns : int;
  kernel_path : Sync.Server.t option;
}

(* The kernel's multiplexing state (§3.5): all emulated endpoints on a host
   share one real endpoint, which the kernel owns. Outbound descriptors are
   staged (copied) into the kernel endpoint's segment; inbound messages are
   demultiplexed by the kernel channel id and copied into the emulated
   endpoint's own segment. *)
type kemu = {
  kep : Endpoint.t; (* the single real endpoint *)
  kalloc : Segment.Allocator.t;
  kmbox : Endpoint.t Sync.Mailbox.t; (* one entry per posted descriptor *)
  kdemux : (Channel.id, Endpoint.t * Channel.id) Hashtbl.t;
      (* kernel chan -> (emulated endpoint, its channel id) *)
  ktx : (int * Channel.id, Channel.id) Hashtbl.t;
      (* (emulated ep id, emulated chan) -> kernel chan *)
  k_in_flight : (Desc.tx * (int * int) list) Queue.t;
}

type t = {
  cpu : Host.Cpu.t;
  net : Atm.Network.t;
  host : int;
  backend : backend;
  pinned : Host.Pinned.t;
  mutable endpoints : Endpoint.t list;
  mutable real_endpoints : int; (* non-emulated: consume NI resources *)
  mutable next_ep_id : int;
  mutable next_chan_id : int;
  mutable kemu : kemu option;
  m_doorbells : Metrics.Counter.t;
}

type error =
  | Too_many_endpoints
  | Pinned_exhausted
  | Segment_too_large
  | Queue_full
  | Free_queue_full
  | Bad_channel
  | Bad_buffer of string
  | Inline_too_large
  | Not_direct_access

let pp_error fmt = function
  | Too_many_endpoints -> Format.pp_print_string fmt "too many endpoints"
  | Pinned_exhausted -> Format.pp_print_string fmt "pinned memory exhausted"
  | Segment_too_large -> Format.pp_print_string fmt "segment too large"
  | Queue_full -> Format.pp_print_string fmt "send queue full"
  | Free_queue_full -> Format.pp_print_string fmt "free queue full"
  | Bad_channel -> Format.pp_print_string fmt "channel not registered"
  | Bad_buffer msg -> Format.fprintf fmt "bad buffer: %s" msg
  | Inline_too_large -> Format.pp_print_string fmt "inline payload too large"
  | Not_direct_access -> Format.pp_print_string fmt "not a direct-access endpoint"

let create ~cpu ~net ~host ?(pinned_capacity = 8 * 1024 * 1024) backend =
  {
    cpu;
    net;
    host;
    backend;
    pinned = Host.Pinned.create ~capacity:pinned_capacity;
    endpoints = [];
    real_endpoints = 0;
    next_ep_id = 0;
    next_chan_id = 0;
    kemu = None;
    m_doorbells =
      Metrics.counter ~help:"send doorbells rung (tx descriptors posted)"
        "ni_doorbells_total"
        [ ("host", string_of_int host); ("nic", backend.nic_name) ];
  }

let sim t = Host.Cpu.sim t.cpu
let host t = t.host
let cpu t = t.cpu
let net t = t.net
let pinned t = t.pinned
let endpoint_count t = List.length t.endpoints

(* A kernel-emulated endpoint pays a system call, serialized through the
   kernel path, on top of the operation's own cost. *)
let charge_op ?layer t (ep : Endpoint.t) ns =
  if ep.emulated then begin
    match t.backend.kernel_path with
    | Some server ->
        let cost =
          Host.Machine.scale (Host.Cpu.machine t.cpu)
            (t.backend.kernel_op_ns + ns)
        in
        Proc.suspend (fun resume -> Sync.Server.submit server ~cost resume)
    | None -> Host.Cpu.charge ~layer:"kernel" t.cpu (t.backend.kernel_op_ns + ns)
  end
  else Host.Cpu.charge ?layer t.cpu ns

let create_endpoint t ?(emulated = false) ?(direct_access = false)
    ?(tx_slots = 64) ?(rx_slots = 64) ?(free_slots = 64) ~seg_size () =
  if seg_size > t.backend.max_seg_size && not direct_access then
    Error Segment_too_large
  else if (not emulated) && t.real_endpoints >= t.backend.max_endpoints then
    Error Too_many_endpoints
  else begin
    let ep =
      Endpoint.create ~sim:(sim t) ~id:t.next_ep_id ~host:t.host ~seg_size
        ~tx_slots ~rx_slots ~free_slots ~emulated ~direct_access
    in
    if not (Host.Pinned.reserve t.pinned (Endpoint.pinned_bytes ep)) then
      Error Pinned_exhausted
    else begin
      t.next_ep_id <- t.next_ep_id + 1;
      t.endpoints <- ep :: t.endpoints;
      if not emulated then t.real_endpoints <- t.real_endpoints + 1;
      (* expose each ring's high-water mark; read lazily at dump time *)
      let ring_gauge name read =
        Metrics.gauge_fn
          ~help:"deepest an endpoint message queue has ever been"
          "unet_ring_high_water"
          [
            ("endpoint", string_of_int ep.ep_id);
            ("host", string_of_int t.host);
            ("ring", name);
          ]
          (fun () -> float_of_int (read ()))
      in
      ring_gauge "tx" (fun () -> Ring.high_water ep.tx_ring);
      ring_gauge "rx" (fun () -> Ring.high_water ep.rx_ring);
      ring_gauge "free" (fun () -> Ring.high_water ep.free_ring);
      (* continuous occupancy probes, one series per ring *)
      let ring_probe name ring =
        Timeseries.register "unet_ring_occupancy"
          [
            ("endpoint", string_of_int ep.ep_id);
            ("host", string_of_int t.host);
            ("ring", name);
          ]
          (fun () -> float_of_int (Ring.length ring))
      in
      ring_probe "tx" ep.tx_ring;
      ring_probe "rx" ep.rx_ring;
      ring_probe "free" ep.free_ring;
      (* post-mortem ring snapshot for the flight recorder *)
      let ring_json (r : _ Ring.t) =
        Json.Obj
          [
            ("length", Json.Num (float_of_int (Ring.length r)));
            ("capacity", Json.Num (float_of_int (Ring.capacity r)));
            ("high_water", Json.Num (float_of_int (Ring.high_water r)));
          ]
      in
      Recorder.register_snapshot
        (Printf.sprintf "unet.host%d.ep%d" t.host ep.ep_id)
        (fun () ->
          Json.Obj
            [
              ("tx_ring", ring_json ep.tx_ring);
              ("rx_ring", ring_json ep.rx_ring);
              ("free_ring", ring_json ep.free_ring);
              ("emulated", Json.Bool ep.emulated);
            ]);
      Ok ep
    end
  end

let destroy_endpoint t (ep : Endpoint.t) =
  if List.memq ep t.endpoints then begin
    List.iter
      (fun (c : Channel.t) -> Mux.unregister t.backend.mux ~rx_vci:c.rx_vci)
      ep.channels;
    (* drop any kernel multiplexing entries pointing at this endpoint *)
    (match t.kemu with
    | Some k ->
        Hashtbl.iter
          (fun kchan (e, _) ->
            if e == ep then Hashtbl.remove k.kdemux kchan)
          (Hashtbl.copy k.kdemux);
        List.iter
          (fun (c : Channel.t) -> Hashtbl.remove k.ktx (ep.ep_id, c.id))
          ep.channels
    | None -> ());
    ep.channels <- [];
    Host.Pinned.release t.pinned (Endpoint.pinned_bytes ep);
    t.endpoints <- List.filter (fun e -> not (e == ep)) t.endpoints;
    if not ep.emulated then t.real_endpoints <- t.real_endpoints - 1
  end

let fresh_chan_id t =
  let id = t.next_chan_id in
  t.next_chan_id <- t.next_chan_id + 1;
  id

let validate_payload (ep : Endpoint.t) = function
  | Desc.Inline b ->
      if Buf.length b > Desc.inline_max then Error Inline_too_large else Ok ()
  | Desc.Buffers ranges ->
      let rec check = function
        | [] -> Ok ()
        | (off, len) :: rest -> (
            match Segment.check_range ep.segment ~off ~len with
            | Ok () -> check rest
            | Error msg -> Error (Bad_buffer msg))
      in
      check ranges

let kemu_notify t ep =
  match t.kemu with
  | Some k -> Sync.Mailbox.send k.kmbox ep
  | None ->
      (* backends with no real endpoints (the SBA-100) service emulated
         endpoints directly: the NI model *is* the kernel *)
      t.backend.notify_tx ep

let send t (ep : Endpoint.t) (desc : Desc.tx) =
  match Endpoint.find_channel ep desc.chan with
  | None -> Error Bad_channel
  | Some _ -> (
      match validate_payload ep desc.tx_payload with
      | Error e -> Error e
      | Ok () ->
          if desc.dest_offset <> None && not ep.direct_access then
            Error Not_direct_access
          else if
            desc.dest_offset <> None
            && Desc.payload_length desc.tx_payload = 0
          then Error (Bad_buffer "empty direct-access message")
          else begin
            (* a raw descriptor push with no upper-layer context starts
               its own trace here — minted even with span collection
               off, so the latency sketch always has a mint time *)
            if desc.ctx = None then
              desc.ctx <- Some (Span.root ~host:t.host "unet_msg");
            charge_op ~layer:"unet_doorbell" t ep t.backend.doorbell_ns;
            Metrics.Counter.inc t.m_doorbells;
            if Ring.push ep.tx_ring desc then begin
              Span.mark desc.ctx Span.Doorbell;
              if ep.emulated then kemu_notify t ep
              else t.backend.notify_tx ep;
              Ok ()
            end
            else Error Queue_full
          end)

let mark_popped (d : Desc.rx option) =
  (match d with Some d -> Span.mark d.ctx Span.Popped | None -> ());
  d

let poll t (ep : Endpoint.t) =
  charge_op ~layer:"unet_rx_poll" t ep t.backend.rx_poll_ns;
  mark_popped (Ring.pop ep.rx_ring)

let recv t (ep : Endpoint.t) =
  let rec loop () =
    Sync.Condition.wait_for ep.rx_cond (fun () -> not (Ring.is_empty ep.rx_ring));
    charge_op ~layer:"unet_rx_poll" t ep t.backend.rx_poll_ns;
    (* another receiver may have taken it while we were charged *)
    match mark_popped (Ring.pop ep.rx_ring) with
    | Some d -> d
    | None -> loop ()
  in
  loop ()

let recv_timeout t (ep : Endpoint.t) ~timeout =
  let deadline = Sim.now (sim t) + timeout in
  let rec loop () =
    if not (Ring.is_empty ep.rx_ring) then begin
      charge_op ~layer:"unet_rx_poll" t ep t.backend.rx_poll_ns;
      match mark_popped (Ring.pop ep.rx_ring) with
      | Some d -> Some d
      | None -> loop ()
    end
    else if Sim.now (sim t) >= deadline then None
    else begin
      (* Wait for a delivery or the deadline, whichever comes first. A
         helper process waits on the rx condition; the deadline event races
         with it, and [fired] arbitrates so the caller is resumed once. *)
      let fired = ref false in
      Proc.suspend (fun resume ->
          let resume_once cancel_deadline =
            if not !fired then begin
              fired := true;
              cancel_deadline ();
              resume ()
            end
          in
          let deadline_h =
            Sim.schedule_at ~label:"unet.recv_deadline" (sim t) deadline (fun () ->
                resume_once (fun () -> ()))
          in
          ignore
            (Proc.spawn ~name:"recv-timeout" (sim t) (fun () ->
                 Sync.Condition.wait ep.rx_cond;
                 resume_once (fun () -> Sim.cancel deadline_h))));
      loop ()
    end
  in
  loop ()

let provide_free_buffer t (ep : Endpoint.t) ~off ~len =
  ignore t;
  match Segment.check_range ep.segment ~off ~len with
  | Error msg -> Error (Bad_buffer msg)
  | Ok () ->
      if Ring.push ep.free_ring (off, len) then Ok () else Error Free_queue_full

let set_upcall t (ep : Endpoint.t) cond f =
  ignore t;
  ep.upcall <- Some (cond, f)

let clear_upcall t (ep : Endpoint.t) =
  ignore t;
  ep.upcall <- None

let disable_upcalls t (ep : Endpoint.t) =
  ignore t;
  ep.upcalls_enabled <- false

let enable_upcalls t (ep : Endpoint.t) =
  ignore t;
  ep.upcalls_enabled <- true;
  (* fire immediately if the condition already holds: the process must not
     miss messages that arrived inside the critical section *)
  if not (Ring.is_empty ep.rx_ring) then Endpoint.fire_upcalls ep ~was_empty:true

(* ------------------------------------------------------------------ *)
(* The kernel multiplexor for emulated endpoints (§3.5).               *)

let kemu_block = 4_160
let kemu_pool = 64 (* blocks in the kernel endpoint's segment *)
let kemu_rx_buffers = 32 (* posted to the kernel endpoint's free queue *)

(* a descriptor's payload as a zero-copy view over the endpoint's segment *)
let gather_payload (ep : Endpoint.t) = function
  | Desc.Inline b -> b
  | Desc.Buffers ranges ->
      Buf.concat
        (List.map (fun (off, len) -> Segment.view ep.segment ~off ~len) ranges)

let kemu_reap k =
  let rec go () =
    match Queue.peek_opt k.k_in_flight with
    | Some ((desc : Desc.tx), bufs) when desc.injected ->
        ignore (Queue.pop k.k_in_flight);
        List.iter (Segment.Allocator.free k.kalloc) bufs;
        go ()
    | _ -> ()
  in
  go ()

(* the kernel's transmit side: drain one emulated descriptor through the
   shared real endpoint *)
let kemu_tx t k (ep : Endpoint.t) =
  match Ring.pop ep.tx_ring with
  | None -> ()
  | Some desc -> (
      match Hashtbl.find_opt k.ktx (ep.ep_id, desc.chan) with
      | None -> () (* channel torn down after posting *)
      | Some kchan ->
          let data = gather_payload ep desc.tx_payload in
          (* the kernel's staging copy into its own pinned buffers *)
          Host.Cpu.charge ~layer:"kernel" t.cpu t.backend.kernel_op_ns;
          Host.Cpu.charge_copy t.cpu ~bytes:(Buf.length data);
          desc.injected <- true;
          let rec take_bufs acc got =
            if got >= Buf.length data then List.rev acc
            else begin
              kemu_reap k;
              match Segment.Allocator.alloc k.kalloc with
              | Some (off, blen) ->
                  take_bufs ((off, blen) :: acc) (got + blen)
              | None ->
                  (* staging buffers all in flight: wait for the NI *)
                  Proc.sleep (sim t) ~time:(Sim.us 10);
                  take_bufs acc got
            end
          in
          if Buf.length data <= Desc.inline_max then begin
            (* snapshot out of the emulated segment: the descriptor may
               outlive the application's reuse of that memory *)
            let staged = Buf.copy ~layer:"kernel" data in
            let rec push () =
              match
                send t k.kep
                  (Desc.tx ?ctx:desc.ctx ~chan:kchan (Desc.Inline staged))
              with
              | Ok () -> ()
              | Error Queue_full ->
                  Proc.sleep (sim t) ~time:(Sim.us 10);
                  push ()
              | Error e -> Fmt.failwith "kernel mux tx: %a" pp_error e
            in
            push ()
          end
          else begin
            let bufs = take_bufs [] 0 in
            let pos = ref 0 in
            let ranges =
              List.map
                (fun (off, blen) ->
                  let n = min blen (Buf.length data - !pos) in
                  Segment.write_buf ~layer:"kernel" k.kep.segment ~off
                    (Buf.sub data ~pos:!pos ~len:n);
                  pos := !pos + n;
                  (off, n))
                bufs
            in
            let kdesc =
              Desc.tx ?ctx:desc.ctx ~chan:kchan (Desc.Buffers ranges)
            in
            let rec push () =
              match send t k.kep kdesc with
              | Ok () -> Queue.add (kdesc, bufs) k.k_in_flight
              | Error Queue_full ->
                  Proc.sleep (sim t) ~time:(Sim.us 10);
                  push ()
              | Error e -> Fmt.failwith "kernel mux tx: %a" pp_error e
            in
            push ()
          end)

(* the kernel's receive side: demultiplex arriving messages back to the
   owning emulated endpoint, with a copy into its segment *)
let kemu_rx t k (d : Desc.rx) =
  let data =
    match d.rx_payload with
    | Desc.Inline b -> b
    | Desc.Buffers bufs ->
        (* snapshot out of the kernel segment before the buffers go back on
           the free queue and get overwritten by later arrivals *)
        let data =
          Buf.copy ~layer:"kernel"
            (Buf.concat
               (List.map
                  (fun (off, len) -> Segment.view k.kep.segment ~off ~len)
                  bufs))
        in
        List.iter
          (fun (off, _) ->
            ignore (provide_free_buffer t k.kep ~off ~len:kemu_block))
          bufs;
        data
  in
  match Hashtbl.find_opt k.kdemux d.src_chan with
  | None ->
      Mux.rx_dropped ?ctx:d.ctx "unknown_channel";
      Log.debug (fun m ->
          m "kernel mux: message on unknown kernel channel %d dropped"
            d.src_chan)
  | Some (ep, emu_chan) ->
      Host.Cpu.charge ~layer:"kernel" t.cpu t.backend.kernel_op_ns;
      Host.Cpu.charge_copy t.cpu ~bytes:(Buf.length data);
      ignore (Mux.deliver_to ~copy_layer:"kernel" ?ctx:d.ctx ep ~chan:emu_chan data)

let ensure_kemu t =
  match t.kemu with
  | Some k -> k
  | None ->
      let kep =
        match
          create_endpoint t ~tx_slots:128 ~rx_slots:128
            ~free_slots:(kemu_rx_buffers + 1)
            ~seg_size:(kemu_pool * kemu_block)
            ()
        with
        | Ok ep -> ep
        | Error e ->
            Fmt.failwith
              "U-Net: cannot create the kernel's real endpoint for emulated \
               endpoints: %a"
              pp_error e
      in
      let kalloc = Segment.Allocator.create kep.segment ~block:kemu_block in
      for _ = 1 to kemu_rx_buffers do
        match Segment.Allocator.alloc kalloc with
        | Some (off, len) ->
            (match provide_free_buffer t kep ~off ~len with
            | Ok () -> ()
            | Error e -> Fmt.failwith "kernel mux: %a" pp_error e)
        | None -> assert false
      done;
      let k =
        {
          kep;
          kalloc;
          kmbox = Sync.Mailbox.create (sim t);
          kdemux = Hashtbl.create 16;
          ktx = Hashtbl.create 16;
          k_in_flight = Queue.create ();
        }
      in
      ignore
        (Proc.spawn ~name:"kernel-mux-tx" (sim t) (fun () ->
             let rec loop () =
               let ep = Sync.Mailbox.recv k.kmbox in
               kemu_tx t k ep;
               loop ()
             in
             loop ()));
      ignore
        (Proc.spawn ~name:"kernel-mux-rx" (sim t) (fun () ->
             let rec loop () =
               kemu_rx t k (recv t k.kep);
               loop ()
             in
             loop ()));
      t.kemu <- Some k;
      k

(* Register one side of a new channel: real endpoints register their tag
   with the NI mux directly; emulated endpoints register the *kernel's*
   endpoint under a fresh kernel channel id and record the mapping (§3.5).
   Backends with no real endpoints (max_endpoints = 0, the SBA-100) service
   emulated endpoints in the kernel already, so they register directly. *)
let register_side t (ep : Endpoint.t) (chan : Channel.t) =
  if ep.emulated && t.backend.max_endpoints > 0 then begin
    let k = ensure_kemu t in
    let kchan = fresh_chan_id t in
    Mux.register t.backend.mux ~rx_vci:chan.rx_vci k.kep ~chan:kchan;
    k.kep.channels <-
      {
        Channel.id = kchan;
        tx_vci = chan.tx_vci;
        rx_vci = chan.rx_vci;
        peer_host = chan.peer_host;
        peer_endpoint = chan.peer_endpoint;
      }
      :: k.kep.channels;
    Hashtbl.replace k.kdemux kchan (ep, chan.id);
    Hashtbl.replace k.ktx (ep.ep_id, chan.id) kchan
  end
  else Mux.register t.backend.mux ~rx_vci:chan.rx_vci ep ~chan:chan.id;
  ep.channels <- chan :: ep.channels

let connect_pair (ta, epa) (tb, epb) =
  if not (ta.net == tb.net) then
    invalid_arg "Unet.connect_pair: hosts on different networks";
  (* direct-access endpoints use a different wire framing (the deposit
     offset travels in the PDU), so both ends must agree *)
  if epa.Endpoint.direct_access <> epb.Endpoint.direct_access then
    invalid_arg
      "Unet.connect_pair: cannot connect a direct-access endpoint to a \
       base-level one";
  let conn = Atm.Network.connect ta.net ~a:ta.host ~b:tb.host in
  let chan_a = fresh_chan_id ta and chan_b = fresh_chan_id tb in
  let ca =
    {
      Channel.id = chan_a;
      tx_vci = conn.side_a.tx_vci;
      rx_vci = conn.side_a.rx_vci;
      peer_host = tb.host;
      peer_endpoint = epb.Endpoint.ep_id;
    }
  and cb =
    {
      Channel.id = chan_b;
      tx_vci = conn.side_b.tx_vci;
      rx_vci = conn.side_b.rx_vci;
      peer_host = ta.host;
      peer_endpoint = epa.Endpoint.ep_id;
    }
  in
  register_side ta epa ca;
  register_side tb epb cb;
  (chan_a, chan_b)

let disconnect t (ep : Endpoint.t) chan_id =
  match Endpoint.find_channel ep chan_id with
  | None -> ()
  | Some c ->
      Mux.unregister t.backend.mux ~rx_vci:c.Channel.rx_vci;
      (match t.kemu with
      | Some k -> (
          match Hashtbl.find_opt k.ktx (ep.ep_id, chan_id) with
          | Some kchan ->
              Hashtbl.remove k.kdemux kchan;
              Hashtbl.remove k.ktx (ep.ep_id, chan_id);
              k.kep.channels <-
                List.filter
                  (fun (x : Channel.t) -> x.id <> kchan)
                  k.kep.channels
          | None -> ())
      | None -> ());
      ep.channels <- List.filter (fun x -> x.Channel.id <> chan_id) ep.channels

let kernel_endpoint t = Option.map (fun k -> k.kep) t.kemu
