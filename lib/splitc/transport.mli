(** The Active-Message transport a Split-C runtime instance runs on: either
    real U-Net Active Messages over the simulated ATM cluster, or a
    parameterized model of a parallel machine's network (see
    {!Machine_model}), so the same benchmark code runs on all three
    machines of Table 2. *)

type reply_fn =
  handler:int -> ?args:int array -> ?payload:Engine.Buf.t -> unit -> unit

type handler =
  src:int -> reply:reply_fn option -> args:int array -> payload:Engine.Buf.t -> unit

type t = {
  rank : int;
  nodes : int;
  max_payload : int;  (** largest single-message payload *)
  sim : Engine.Sim.t;
  register : int -> handler -> unit;
  request :
    dst:int ->
    handler:int ->
    ?args:int array ->
    ?payload:Engine.Buf.t ->
    unit ->
    unit;
  poll : unit -> unit;
  poll_until : (unit -> bool) -> unit;
  flush : unit -> unit;
      (** wait until every message this node sent has been processed *)
  charge_cycles : int -> unit;
      (** local computation cost, in this machine's own cycles *)
}

val of_uam : Uam.t -> t
(** Wrap a connected UAM instance (the U-Net ATM cluster of Table 2). *)
