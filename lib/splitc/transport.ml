type reply_fn =
  handler:int -> ?args:int array -> ?payload:Engine.Buf.t -> unit -> unit

type handler =
  src:int -> reply:reply_fn option -> args:int array -> payload:Engine.Buf.t -> unit

type t = {
  rank : int;
  nodes : int;
  max_payload : int;
  sim : Engine.Sim.t;
  register : int -> handler -> unit;
  request :
    dst:int ->
    handler:int ->
    ?args:int array ->
    ?payload:Engine.Buf.t ->
    unit ->
    unit;
  poll : unit -> unit;
  poll_until : (unit -> bool) -> unit;
  flush : unit -> unit;
  charge_cycles : int -> unit;
}

let of_uam am =
  let cpu = Unet.cpu (Uam.unet am) in
  {
    rank = Uam.rank am;
    nodes = Uam.nodes am;
    max_payload = Uam.max_payload am;
    sim = Unet.sim (Uam.unet am);
    register =
      (fun idx h ->
        Uam.register_handler am idx (fun am ~src tk ~args ~payload ->
            let reply =
              Option.map
                (fun tk ~handler ?args ?payload () ->
                  Uam.reply am tk ~handler ?args ?payload ())
                tk
            in
            h ~src ~reply ~args ~payload));
    request =
      (fun ~dst ~handler ?args ?payload () ->
        Uam.request am ~dst ~handler ?args ?payload ());
    poll = (fun () -> Uam.poll am);
    poll_until = (fun pred -> Uam.poll_until am pred);
    flush = (fun () -> Uam.flush am);
    charge_cycles = (fun c -> Host.Cpu.charge_cycles cpu c);
  }
