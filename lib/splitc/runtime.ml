open Engine

(* reserved runtime handler ids (applications use 1-99) *)
let h_read_int = 200
let h_read_int_reply = 201
let h_write_int = 202
let h_write_ack = 203
let h_store_pair = 204
let h_store_ints = 205
let h_store_floats = 206
let h_get_ints = 207
let h_get_ints_reply = 208
let h_get_floats = 209
let h_get_floats_reply = 210
let h_barrier_arrive = 211
let h_barrier_release = 212
let h_reduce_int = 213
let h_reduce_int_result = 214
let h_reduce_float = 215
let h_reduce_float_result = 216
let h_bcast = 217
let h_read_float = 218
let h_read_float_reply = 219
let h_write_float = 220

type op = Sum | Min | Max

let op_code = function Sum -> 0 | Min -> 1 | Max -> 2
let op_of_code = function 0 -> Sum | 1 -> Min | _ -> Max

let apply_int op a b =
  match op with Sum -> a + b | Min -> min a b | Max -> max a b

let apply_float op a b =
  match op with Sum -> a +. b | Min -> Float.min a b | Max -> Float.max a b

(* growable int vector for append buffers *)
module Intvec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 64 0; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let contents t = Array.sub t.data 0 t.len
  let length t = t.len
end

type slot =
  | S_int of int option ref
  | S_float of float option ref
  | S_ack of bool ref
  | S_ints of int array * int * int ref (* dest, base pos, remaining chunks *)
  | S_floats of float array * int * int ref

type ctx = {
  tp : Transport.t;
  mutable start_ns : Sim.time;
  mutable comm_ns : int;
  int_arrays : (int, int array) Hashtbl.t;
  float_arrays : (int, float array) Hashtbl.t;
  append_bufs : (int, Intvec.t) Hashtbl.t;
  pending : (int, slot) Hashtbl.t;
  mutable next_req : int;
  (* barrier *)
  mutable barrier_epoch : int;
  barrier_arrivals : (int, int ref) Hashtbl.t; (* rank 0 only *)
  mutable barrier_released : int;
  (* reduce *)
  mutable reduce_epoch : int;
  reduce_acc : (int, int ref * int ref * float ref) Hashtbl.t; (* rank 0: epoch -> count, int acc, float acc *)
  reduce_results : (int, int * float) Hashtbl.t; (* others: epoch -> results *)
  (* broadcast *)
  mutable bcast_epoch : int;
  bcast_slots : (int, int array) Hashtbl.t;
}

let rank ctx = ctx.tp.Transport.rank
let nprocs ctx = ctx.tp.Transport.nodes
let sim ctx = ctx.tp.Transport.sim

let elapsed_us ctx = Sim.to_us (Sim.now (sim ctx) - ctx.start_ns)
let comm_us ctx = Sim.to_us ctx.comm_ns
let charge ctx ~cycles = ctx.tp.Transport.charge_cycles cycles

(* wrap a blocking communication operation with comm-time accounting *)
let timed ctx f =
  let t0 = Sim.now (sim ctx) in
  let r = f () in
  ctx.comm_ns <- ctx.comm_ns + (Sim.now (sim ctx) - t0);
  r

let fresh_req ctx =
  let id = ctx.next_req in
  ctx.next_req <- (ctx.next_req + 1) land 0xFFFFF;
  id

(* --- payload encodings ------------------------------------------------ *)

(* Encoders build the payload in a fresh store and hand out a slice of it;
   decoders materialize the received slice once (the copy into the
   application's data structure, counted under the splitc layer). *)
let bytes_of_int64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Engine.Buf.of_bytes b

let int64_of_payload p =
  Bytes.get_int64_le (Engine.Buf.to_bytes ~layer:"splitc" p) 0

let bytes_of_int v = bytes_of_int64 (Int64.of_int v)
let int_of_payload b = Int64.to_int (int64_of_payload b)
let bytes_of_float v = bytes_of_int64 (Int64.bits_of_float v)
let float_of_payload b = Int64.float_of_bits (int64_of_payload b)

let encode_ints a pos len =
  let b = Bytes.create (8 * len) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le b (8 * i) (Int64.of_int a.(pos + i))
  done;
  Engine.Buf.of_bytes b

let decode_ints p =
  let b = Engine.Buf.to_bytes ~layer:"splitc" p in
  Array.init (Bytes.length b / 8) (fun i ->
      Int64.to_int (Bytes.get_int64_le b (8 * i)))

let encode_floats a pos len =
  let b = Bytes.create (8 * len) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le b (8 * i) (Int64.bits_of_float a.(pos + i))
  done;
  Engine.Buf.of_bytes b

let decode_floats p =
  let b = Engine.Buf.to_bytes ~layer:"splitc" p in
  Array.init (Bytes.length b / 8) (fun i ->
      Int64.float_of_bits (Bytes.get_int64_le b (8 * i)))

(* --- array registry --------------------------------------------------- *)

let register_ints ctx ~id a =
  if Hashtbl.mem ctx.int_arrays id then
    Fmt.invalid_arg "Splitc: int array %d already registered" id;
  Hashtbl.replace ctx.int_arrays id a

let register_floats ctx ~id a =
  if Hashtbl.mem ctx.float_arrays id then
    Fmt.invalid_arg "Splitc: float array %d already registered" id;
  Hashtbl.replace ctx.float_arrays id a

let int_array ctx id =
  match Hashtbl.find_opt ctx.int_arrays id with
  | Some a -> a
  | None -> Fmt.failwith "Splitc: unknown int array %d on proc %d" id (rank ctx)

let float_array ctx id =
  match Hashtbl.find_opt ctx.float_arrays id with
  | Some a -> a
  | None ->
      Fmt.failwith "Splitc: unknown float array %d on proc %d" id (rank ctx)

let register_append_buffer ctx ~id =
  Hashtbl.replace ctx.append_bufs id (Intvec.create ())

let append_buf ctx id =
  match Hashtbl.find_opt ctx.append_bufs id with
  | Some v -> v
  | None -> Fmt.failwith "Splitc: unknown append buffer %d" id

let append_buffer_contents ctx ~id = Intvec.contents (append_buf ctx id)
let append_buffer_count ctx ~id = Intvec.length (append_buf ctx id)

(* --- handler registration --------------------------------------------- *)

let need_reply = function
  | Some r -> (r : Transport.reply_fn)
  | None -> failwith "Splitc: request handler invoked without reply capability"

let install_handlers ctx =
  let reg = ctx.tp.Transport.register in
  reg h_read_int (fun ~src:_ ~reply ~args ~payload:_ ->
      let a = int_array ctx args.(0) in
      (need_reply reply) ~handler:h_read_int_reply ~args:[| args.(2) |]
        ~payload:(bytes_of_int a.(args.(1)))
        ());
  reg h_read_int_reply (fun ~src:_ ~reply:_ ~args ~payload ->
      match Hashtbl.find_opt ctx.pending args.(0) with
      | Some (S_int r) -> r := Some (int_of_payload payload)
      | _ -> failwith "Splitc: stray read-int reply");
  reg h_read_float (fun ~src:_ ~reply ~args ~payload:_ ->
      let a = float_array ctx args.(0) in
      (need_reply reply) ~handler:h_read_float_reply ~args:[| args.(2) |]
        ~payload:(bytes_of_float a.(args.(1)))
        ());
  reg h_read_float_reply (fun ~src:_ ~reply:_ ~args ~payload ->
      match Hashtbl.find_opt ctx.pending args.(0) with
      | Some (S_float r) -> r := Some (float_of_payload payload)
      | _ -> failwith "Splitc: stray read-float reply");
  reg h_write_int (fun ~src:_ ~reply ~args ~payload ->
      let a = int_array ctx args.(0) in
      a.(args.(1)) <- int_of_payload payload;
      (need_reply reply) ~handler:h_write_ack ~args:[| args.(2) |] ());
  reg h_write_float (fun ~src:_ ~reply ~args ~payload ->
      let a = float_array ctx args.(0) in
      a.(args.(1)) <- float_of_payload payload;
      (need_reply reply) ~handler:h_write_ack ~args:[| args.(2) |] ());
  reg h_write_ack (fun ~src:_ ~reply:_ ~args ~payload:_ ->
      match Hashtbl.find_opt ctx.pending args.(0) with
      | Some (S_ack r) -> r := true
      | _ -> failwith "Splitc: stray write ack");
  reg h_store_pair (fun ~src:_ ~reply:_ ~args ~payload:_ ->
      let v = append_buf ctx args.(0) in
      Intvec.push v args.(1);
      Intvec.push v args.(2));
  reg h_store_ints (fun ~src:_ ~reply:_ ~args ~payload ->
      let a = int_array ctx args.(0) in
      let vals = decode_ints payload in
      Array.blit vals 0 a args.(1) (Array.length vals));
  reg h_store_floats (fun ~src:_ ~reply:_ ~args ~payload ->
      let a = float_array ctx args.(0) in
      let vals = decode_floats payload in
      Array.blit vals 0 a args.(1) (Array.length vals));
  reg h_get_ints (fun ~src:_ ~reply ~args ~payload:_ ->
      let arr = args.(0) lsr 16 and len = args.(0) land 0xffff in
      let a = int_array ctx arr in
      (need_reply reply) ~handler:h_get_ints_reply
        ~args:[| args.(2); args.(3) |]
        ~payload:(encode_ints a args.(1) len) ());
  reg h_get_ints_reply (fun ~src:_ ~reply:_ ~args ~payload ->
      match Hashtbl.find_opt ctx.pending args.(0) with
      | Some (S_ints (dest, base, remaining)) ->
          let vals = decode_ints payload in
          Array.blit vals 0 dest (base + args.(1)) (Array.length vals);
          decr remaining
      | _ -> failwith "Splitc: stray get-ints reply");
  reg h_get_floats (fun ~src:_ ~reply ~args ~payload:_ ->
      let arr = args.(0) lsr 16 and len = args.(0) land 0xffff in
      let a = float_array ctx arr in
      (need_reply reply) ~handler:h_get_floats_reply
        ~args:[| args.(2); args.(3) |]
        ~payload:(encode_floats a args.(1) len) ());
  reg h_get_floats_reply (fun ~src:_ ~reply:_ ~args ~payload ->
      match Hashtbl.find_opt ctx.pending args.(0) with
      | Some (S_floats (dest, base, remaining)) ->
          let vals = decode_floats payload in
          Array.blit vals 0 dest (base + args.(1)) (Array.length vals);
          decr remaining
      | _ -> failwith "Splitc: stray get-floats reply");
  reg h_barrier_arrive (fun ~src:_ ~reply:_ ~args ~payload:_ ->
      let e = args.(0) in
      let c =
        match Hashtbl.find_opt ctx.barrier_arrivals e with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.replace ctx.barrier_arrivals e c;
            c
      in
      incr c);
  reg h_barrier_release (fun ~src:_ ~reply:_ ~args ~payload:_ ->
      ctx.barrier_released <- max ctx.barrier_released args.(0));
  reg h_reduce_int (fun ~src:_ ~reply:_ ~args ~payload ->
      let e = args.(0) and op = op_of_code args.(1) in
      let count, acc, _ =
        match Hashtbl.find_opt ctx.reduce_acc e with
        | Some x -> x
        | None ->
            let x = (ref 0, ref 0, ref 0.) in
            Hashtbl.replace ctx.reduce_acc e x;
            x
      in
      let v = int_of_payload payload in
      if !count = 0 then acc := v else acc := apply_int op !acc v;
      incr count);
  reg h_reduce_int_result (fun ~src:_ ~reply:_ ~args ~payload ->
      Hashtbl.replace ctx.reduce_results args.(0) (int_of_payload payload, 0.));
  reg h_reduce_float (fun ~src:_ ~reply:_ ~args ~payload ->
      let e = args.(0) and op = op_of_code args.(1) in
      let count, _, acc =
        match Hashtbl.find_opt ctx.reduce_acc e with
        | Some x -> x
        | None ->
            let x = (ref 0, ref 0, ref 0.) in
            Hashtbl.replace ctx.reduce_acc e x;
            x
      in
      let v = float_of_payload payload in
      if !count = 0 then acc := v else acc := apply_float op !acc v;
      incr count);
  reg h_reduce_float_result (fun ~src:_ ~reply:_ ~args ~payload ->
      Hashtbl.replace ctx.reduce_results args.(0) (0, float_of_payload payload));
  reg h_bcast (fun ~src:_ ~reply:_ ~args ~payload ->
      Hashtbl.replace ctx.bcast_slots args.(0) (decode_ints payload))

(* --- collectives ------------------------------------------------------- *)

let barrier ctx =
  timed ctx (fun () ->
      ctx.barrier_epoch <- ctx.barrier_epoch + 1;
      let e = ctx.barrier_epoch in
      let n = nprocs ctx in
      if n > 1 then
        if rank ctx = 0 then begin
          ctx.tp.Transport.poll_until (fun () ->
              match Hashtbl.find_opt ctx.barrier_arrivals e with
              | Some c -> !c >= n - 1
              | None -> false);
          Hashtbl.remove ctx.barrier_arrivals e;
          for r = 1 to n - 1 do
            ctx.tp.Transport.request ~dst:r ~handler:h_barrier_release
              ~args:[| e |] ()
          done
        end
        else begin
          ctx.tp.Transport.request ~dst:0 ~handler:h_barrier_arrive
            ~args:[| e |] ();
          ctx.tp.Transport.poll_until (fun () -> ctx.barrier_released >= e)
        end)

let reduce_generic ctx ~contrib_handler ~result_handler ~op ~payload ~extract =
  timed ctx (fun () ->
      ctx.reduce_epoch <- ctx.reduce_epoch + 1;
      let e = ctx.reduce_epoch in
      let n = nprocs ctx in
      if n = 1 then None
      else if rank ctx = 0 then begin
        ctx.tp.Transport.poll_until (fun () ->
            match Hashtbl.find_opt ctx.reduce_acc e with
            | Some (count, _, _) -> !count >= n - 1
            | None -> false);
        let _, acc_i, acc_f =
          match Hashtbl.find_opt ctx.reduce_acc e with
          | Some x -> x
          | None -> assert false
        in
        Hashtbl.remove ctx.reduce_acc e;
        Some (!acc_i, !acc_f)
      end
      else begin
        ctx.tp.Transport.request ~dst:0 ~handler:contrib_handler
          ~args:[| e; op_code op |] ~payload ();
        ctx.tp.Transport.poll_until (fun () ->
            Hashtbl.mem ctx.reduce_results e);
        let r = Hashtbl.find ctx.reduce_results e in
        Hashtbl.remove ctx.reduce_results e;
        ignore result_handler;
        ignore extract;
        Some r
      end)

let reduce_int ctx op v =
  let n = nprocs ctx in
  if n = 1 then v
  else if rank ctx = 0 then begin
    match
      reduce_generic ctx ~contrib_handler:h_reduce_int
        ~result_handler:h_reduce_int_result ~op ~payload:(bytes_of_int v)
        ~extract:fst
    with
    | Some (acc, _) ->
        let result = apply_int op acc v in
        timed ctx (fun () ->
            for r = 1 to n - 1 do
              ctx.tp.Transport.request ~dst:r ~handler:h_reduce_int_result
                ~args:[| ctx.reduce_epoch |]
                ~payload:(bytes_of_int result) ()
            done);
        result
    | None -> v
  end
  else
    match
      reduce_generic ctx ~contrib_handler:h_reduce_int
        ~result_handler:h_reduce_int_result ~op ~payload:(bytes_of_int v)
        ~extract:fst
    with
    | Some (i, _) -> i
    | None -> v

let reduce_float ctx op v =
  let n = nprocs ctx in
  if n = 1 then v
  else if rank ctx = 0 then begin
    match
      reduce_generic ctx ~contrib_handler:h_reduce_float
        ~result_handler:h_reduce_float_result ~op ~payload:(bytes_of_float v)
        ~extract:snd
    with
    | Some (_, acc) ->
        let result = apply_float op acc v in
        timed ctx (fun () ->
            for r = 1 to n - 1 do
              ctx.tp.Transport.request ~dst:r ~handler:h_reduce_float_result
                ~args:[| ctx.reduce_epoch |]
                ~payload:(bytes_of_float result) ()
            done);
        result
    | None -> v
  end
  else
    match
      reduce_generic ctx ~contrib_handler:h_reduce_float
        ~result_handler:h_reduce_float_result ~op ~payload:(bytes_of_float v)
        ~extract:snd
    with
    | Some (_, f) -> f
    | None -> v

let broadcast_ints ctx ~root a =
  timed ctx (fun () ->
      ctx.bcast_epoch <- ctx.bcast_epoch + 1;
      let e = ctx.bcast_epoch in
      if nprocs ctx = 1 then a
      else if rank ctx = root then begin
        if 8 * Array.length a > ctx.tp.Transport.max_payload then
          invalid_arg "Splitc.broadcast_ints: too large for one message";
        let payload = encode_ints a 0 (Array.length a) in
        for r = 0 to nprocs ctx - 1 do
          if r <> root then
            ctx.tp.Transport.request ~dst:r ~handler:h_bcast ~args:[| e |]
              ~payload ()
        done;
        a
      end
      else begin
        ctx.tp.Transport.poll_until (fun () -> Hashtbl.mem ctx.bcast_slots e);
        let r = Hashtbl.find ctx.bcast_slots e in
        Hashtbl.remove ctx.bcast_slots e;
        r
      end)

(* --- global memory operations ------------------------------------------ *)

let read_int ctx ~proc ~arr ~idx =
  if proc = rank ctx then (int_array ctx arr).(idx)
  else
    timed ctx (fun () ->
        let id = fresh_req ctx in
        let r = ref None in
        Hashtbl.replace ctx.pending id (S_int r);
        ctx.tp.Transport.request ~dst:proc ~handler:h_read_int
          ~args:[| arr; idx; id |] ();
        ctx.tp.Transport.poll_until (fun () -> !r <> None);
        Hashtbl.remove ctx.pending id;
        Option.get !r)

let read_float ctx ~proc ~arr ~idx =
  if proc = rank ctx then (float_array ctx arr).(idx)
  else
    timed ctx (fun () ->
        let id = fresh_req ctx in
        let r = ref None in
        Hashtbl.replace ctx.pending id (S_float r);
        ctx.tp.Transport.request ~dst:proc ~handler:h_read_float
          ~args:[| arr; idx; id |] ();
        ctx.tp.Transport.poll_until (fun () -> !r <> None);
        Hashtbl.remove ctx.pending id;
        Option.get !r)

let write_int ctx ~proc ~arr ~idx v =
  if proc = rank ctx then (int_array ctx arr).(idx) <- v
  else
    timed ctx (fun () ->
        let id = fresh_req ctx in
        let r = ref false in
        Hashtbl.replace ctx.pending id (S_ack r);
        ctx.tp.Transport.request ~dst:proc ~handler:h_write_int
          ~args:[| arr; idx; id |] ~payload:(bytes_of_int v) ();
        ctx.tp.Transport.poll_until (fun () -> !r);
        Hashtbl.remove ctx.pending id)

let write_float ctx ~proc ~arr ~idx v =
  if proc = rank ctx then (float_array ctx arr).(idx) <- v
  else
    timed ctx (fun () ->
        let id = fresh_req ctx in
        let r = ref false in
        Hashtbl.replace ctx.pending id (S_ack r);
        ctx.tp.Transport.request ~dst:proc ~handler:h_write_float
          ~args:[| arr; idx; id |] ~payload:(bytes_of_float v) ();
        ctx.tp.Transport.poll_until (fun () -> !r);
        Hashtbl.remove ctx.pending id)

let store_pair ctx ~proc ~buf v1 v2 =
  if proc = rank ctx then begin
    let b = append_buf ctx buf in
    Intvec.push b v1;
    Intvec.push b v2
  end
  else
    timed ctx (fun () ->
        ctx.tp.Transport.request ~dst:proc ~handler:h_store_pair
          ~args:[| buf; v1; v2 |] ())

let chunk_elems ctx = ctx.tp.Transport.max_payload / 8

let store_ints ctx ~proc ~arr ~pos a =
  if proc = rank ctx then Array.blit a 0 (int_array ctx arr) pos (Array.length a)
  else
    timed ctx (fun () ->
        let ce = chunk_elems ctx in
        let len = Array.length a in
        let off = ref 0 in
        while !off < len do
          let n = min ce (len - !off) in
          ctx.tp.Transport.request ~dst:proc ~handler:h_store_ints
            ~args:[| arr; pos + !off |]
            ~payload:(encode_ints a !off n) ();
          off := !off + n
        done)

let store_floats ctx ~proc ~arr ~pos a =
  if proc = rank ctx then
    Array.blit a 0 (float_array ctx arr) pos (Array.length a)
  else
    timed ctx (fun () ->
        let ce = chunk_elems ctx in
        let len = Array.length a in
        let off = ref 0 in
        while !off < len do
          let n = min ce (len - !off) in
          ctx.tp.Transport.request ~dst:proc ~handler:h_store_floats
            ~args:[| arr; pos + !off |]
            ~payload:(encode_floats a !off n) ();
          off := !off + n
        done)

let all_store_sync ctx =
  timed ctx (fun () -> ctx.tp.Transport.flush ());
  barrier ctx

let get_generic ctx ~proc ~arr ~pos ~len ~handler ~mk_slot =
  timed ctx (fun () ->
      let ce = min 0xffff (chunk_elems ctx) in
      let id = fresh_req ctx in
      let nchunks = (len + ce - 1) / ce in
      let remaining = ref nchunks in
      Hashtbl.replace ctx.pending id (mk_slot remaining);
      let off = ref 0 in
      while !off < len do
        let n = min ce (len - !off) in
        ctx.tp.Transport.request ~dst:proc ~handler
          ~args:[| (arr lsl 16) lor n; pos + !off; id; !off |]
          ();
        off := !off + n
      done;
      ctx.tp.Transport.poll_until (fun () -> !remaining = 0);
      Hashtbl.remove ctx.pending id)

let get_ints ctx ~proc ~arr ~pos ~len =
  if proc = rank ctx then Array.sub (int_array ctx arr) pos len
  else begin
    let dest = Array.make len 0 in
    get_generic ctx ~proc ~arr ~pos ~len ~handler:h_get_ints
      ~mk_slot:(fun remaining -> S_ints (dest, 0, remaining));
    dest
  end

let get_floats ctx ~proc ~arr ~pos ~len =
  if proc = rank ctx then Array.sub (float_array ctx arr) pos len
  else begin
    let dest = Array.make len 0. in
    get_generic ctx ~proc ~arr ~pos ~len ~handler:h_get_floats
      ~mk_slot:(fun remaining -> S_floats (dest, 0, remaining));
    dest
  end

(* --- split-phase gets -------------------------------------------------- *)

type 'a pending = { pn_id : int; pn_remaining : int ref; pn_value : 'a }

let start_get ctx ~proc ~arr ~pos ~len ~handler ~mk_slot value =
  timed ctx (fun () ->
      let ce = min 0xffff (chunk_elems ctx) in
      let id = fresh_req ctx in
      let nchunks = (len + ce - 1) / ce in
      let remaining = ref nchunks in
      Hashtbl.replace ctx.pending id (mk_slot remaining);
      let off = ref 0 in
      while !off < len do
        let n = min ce (len - !off) in
        ctx.tp.Transport.request ~dst:proc ~handler
          ~args:[| (arr lsl 16) lor n; pos + !off; id; !off |]
          ();
        off := !off + n
      done;
      { pn_id = id; pn_remaining = remaining; pn_value = value })

let get_floats_async ctx ~proc ~arr ~pos ~len =
  let dest = Array.make len 0. in
  if proc = rank ctx then begin
    Array.blit (float_array ctx arr) pos dest 0 len;
    { pn_id = -1; pn_remaining = ref 0; pn_value = dest }
  end
  else
    start_get ctx ~proc ~arr ~pos ~len ~handler:h_get_floats
      ~mk_slot:(fun remaining -> S_floats (dest, 0, remaining))
      dest

let get_ints_async ctx ~proc ~arr ~pos ~len =
  let dest = Array.make len 0 in
  if proc = rank ctx then begin
    Array.blit (int_array ctx arr) pos dest 0 len;
    { pn_id = -1; pn_remaining = ref 0; pn_value = dest }
  end
  else
    start_get ctx ~proc ~arr ~pos ~len ~handler:h_get_ints
      ~mk_slot:(fun remaining -> S_ints (dest, 0, remaining))
      dest

let await ctx p =
  if !(p.pn_remaining) > 0 then
    timed ctx (fun () ->
        ctx.tp.Transport.poll_until (fun () -> !(p.pn_remaining) = 0));
  if p.pn_id >= 0 then Hashtbl.remove ctx.pending p.pn_id;
  p.pn_value

(* --- program driver ------------------------------------------------------ *)

let mk_ctx tp =
  {
    tp;
    start_ns = 0;
    comm_ns = 0;
    int_arrays = Hashtbl.create 8;
    float_arrays = Hashtbl.create 8;
    append_bufs = Hashtbl.create 8;
    pending = Hashtbl.create 16;
    next_req = 0;
    barrier_epoch = 0;
    barrier_arrivals = Hashtbl.create 4;
    barrier_released = 0;
    reduce_epoch = 0;
    reduce_acc = Hashtbl.create 4;
    reduce_results = Hashtbl.create 4;
    bcast_epoch = 0;
    bcast_slots = Hashtbl.create 4;
  }

let run tps program =
  let n = Array.length tps in
  if n = 0 then invalid_arg "Splitc.run: no transports";
  let sim0 = tps.(0).Transport.sim in
  let ctxs = Array.map mk_ctx tps in
  Array.iter install_handlers ctxs;
  let results = Array.make n None in
  Array.iteri
    (fun r ctx ->
      ignore
        (Proc.spawn ~name:(Printf.sprintf "splitc-%d" r) sim0 (fun () ->
             barrier ctx;
             ctx.start_ns <- Sim.now sim0;
             ctx.comm_ns <- 0;
             let v = program ctx in
             results.(r) <- Some v)))
    ctxs;
  Sim.run sim0;
  Array.mapi
    (fun r v ->
      match v with
      | Some v -> v
      | None -> Fmt.failwith "Splitc.run: processor %d did not finish" r)
    results
