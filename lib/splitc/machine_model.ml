open Engine

type spec = {
  name : string;
  effective_mips : float;
  overhead_us : float;
  rtt_us : float;
  bandwidth_mb : float;
}

let cm5 =
  {
    name = "CM-5";
    (* 33 MHz SPARC-2: narrow issue, ~0.7 instr/cycle *)
    effective_mips = 23.;
    overhead_us = 3.;
    rtt_us = 12.;
    bandwidth_mb = 10.;
  }

let meiko_cs2 =
  {
    name = "Meiko CS-2";
    (* 40 MHz SuperSPARC: superscalar, ~1.1 instr/cycle *)
    effective_mips = 44.;
    overhead_us = 11.;
    rtt_us = 25.;
    bandwidth_mb = 39.;
  }

type msg = {
  m_src : int;
  m_handler : int;
  m_args : int array;
  m_payload : Buf.t;
  m_is_reply : bool;
}

type node = {
  n_queue : msg Queue.t;
  n_cond : Sync.Condition.t;
  n_handlers : Transport.handler option array;
  mutable n_sent : int; (* messages sent by this node *)
  mutable n_processed_of_mine : int; (* my messages processed remotely *)
}

type fabric = { f_sim : Sim.t; f_spec : spec; f_nodes : node array }

let create sim ~nodes spec =
  {
    f_sim = sim;
    f_spec = spec;
    f_nodes =
      Array.init nodes (fun _ ->
          {
            n_queue = Queue.create ();
            n_cond = Sync.Condition.create sim;
            n_handlers = Array.make 256 None;
            n_sent = 0;
            n_processed_of_mine = 0;
          });
  }

let o_ns f = Sim.of_us_f f.f_spec.overhead_us

(* LogGP-style gap-per-byte: the sender's interface is occupied while the
   message body streams out, so bulk transfers serialize at the machine's
   bandwidth *)
let occupancy f len =
  int_of_float (Float.round (float_of_int len *. 1_000. /. f.f_spec.bandwidth_mb))

(* time-of-flight after the last byte leaves *)
let net_time f = Sim.of_us_f (f.f_spec.rtt_us /. 2.)

let charge_cycles f c =
  Proc.sleep f.f_sim
    ~time:(int_of_float (Float.round (float_of_int c *. 1_000. /. f.f_spec.effective_mips)))

(* Sending charges the sender's overhead o; the message lands in the
   destination queue after the network time; the receiver pays o again when
   it polls the message out. Delivery is reliable and ordered. *)
let send_msg f ~src ~dst msg =
  let me = f.f_nodes.(src) in
  me.n_sent <- me.n_sent + 1;
  Proc.sleep f.f_sim
    ~time:(o_ns f + occupancy f (Buf.length msg.m_payload));
  let there = f.f_nodes.(dst) in
  ignore
    (Sim.schedule ~label:"splitc.net" f.f_sim ~delay:(net_time f) (fun () ->
         Queue.add msg there.n_queue;
         Sync.Condition.broadcast there.n_cond))

let rec dispatch f ~rank msg =
  let node = f.f_nodes.(rank) in
  Proc.sleep f.f_sim ~time:(o_ns f);
  (match node.n_handlers.(msg.m_handler) with
  | None -> Fmt.failwith "%s: no handler %d" f.f_spec.name msg.m_handler
  | Some h ->
      let reply =
        if msg.m_is_reply then None
        else
          Some
            (fun ~handler ?(args = [||]) ?(payload = Buf.empty) () ->
              send_msg f ~src:rank ~dst:msg.m_src
                {
                  m_src = rank;
                  m_handler = handler;
                  m_args = args;
                  m_payload = payload;
                  m_is_reply = true;
                })
      in
      h ~src:msg.m_src ~reply ~args:msg.m_args ~payload:msg.m_payload);
  let src_node = f.f_nodes.(msg.m_src) in
  src_node.n_processed_of_mine <- src_node.n_processed_of_mine + 1;
  (* wake the sender if it is blocked in flush *)
  Sync.Condition.broadcast src_node.n_cond

and poll f ~rank =
  let node = f.f_nodes.(rank) in
  let rec drain () =
    match Queue.take_opt node.n_queue with
    | Some msg ->
        dispatch f ~rank msg;
        drain ()
    | None -> ()
  in
  drain ()

let poll_until f ~rank pred =
  let node = f.f_nodes.(rank) in
  poll f ~rank;
  while not (pred ()) do
    if Queue.is_empty node.n_queue then Sync.Condition.wait node.n_cond;
    poll f ~rank
  done

let transport f ~rank =
  let node = f.f_nodes.(rank) in
  {
    Transport.rank;
    nodes = Array.length f.f_nodes;
    max_payload = 1 lsl 20;
    sim = f.f_sim;
    register = (fun idx h -> node.n_handlers.(idx) <- Some h);
    request =
      (fun ~dst ~handler ?(args = [||]) ?(payload = Buf.empty) () ->
        send_msg f ~src:rank ~dst
          {
            m_src = rank;
            m_handler = handler;
            m_args = args;
            m_payload = payload;
            m_is_reply = false;
          });
    poll = (fun () -> poll f ~rank);
    poll_until = (fun pred -> poll_until f ~rank pred);
    flush =
      (fun () ->
        poll_until f ~rank (fun () -> node.n_processed_of_mine >= node.n_sent));
    charge_cycles = (fun c -> charge_cycles f c);
  }

let transports f = Array.init (Array.length f.f_nodes) (fun r -> transport f ~rank:r)
