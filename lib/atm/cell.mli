(** ATM cells: the unit of transmission on the simulated fabric. A cell is 53
    bytes on the wire — a 5-byte header (of which we model the VCI and the
    PTI end-of-packet bit used by AAL5) and a 48-byte payload. *)

type t = {
  vci : int;  (** virtual channel identifier *)
  eop : bool;  (** PTI "end of AAL5 PDU" marker *)
  payload : Engine.Buf.t;
      (** exactly {!payload_size} bytes; usually a zero-copy view into the
          CS-PDU it was segmented from *)
  ctx : Engine.Span.ctx option;
      (** span context of the CS-PDU this cell was segmented from; rides
          the cell through links and switches for causal tracing *)
}

val header_size : int (* 5 *)
val payload_size : int (* 48 *)
val on_wire_size : int (* 53 *)

val make : ?ctx:Engine.Span.ctx -> vci:int -> eop:bool -> Engine.Buf.t -> t
(** Raises [Invalid_argument] unless the payload is exactly 48 bytes. *)

val with_vci : t -> int -> t
(** Same cell relabelled with a new VCI (switch header rewrite). *)

val sunatm_bytes : t -> string
(** The cell as a LINKTYPE_SUNATM capture record (4-byte pseudo-header +
    payload), for pcapng taps. Uncounted materialization. *)

val pp : Format.formatter -> t -> unit

(** A cell train: the cells of one CS-PDU travelling as a unit on the train
    fast path (DESIGN.md §14). Hops that install analytic (planned) state
    for a train register truncation listeners; when interference splits the
    train back to the per-cell path, [truncate] keeps the accepted prefix
    and each listener discards its planned future for the rest. *)
module Train : sig
  type train

  val of_cells : t array -> train
  (** All cells must share the sender-side VCI ([vci] reports cell 0's). *)

  val length : train -> int
  (** Live prefix length (shrinks on truncation). *)

  val vci : train -> int
  val cell : train -> int -> t

  val on_truncate : train -> (keep:int -> now:Engine.Sim.time -> unit) -> unit

  val truncate : train -> keep:int -> now:Engine.Sim.time -> unit
  (** Keep only the first [keep] cells and notify listeners (most recently
      registered first). No-op unless [keep] < current length. *)
end

type train = Train.train
