open Engine

type t = {
  sim : Sim.t;
  ports : int;
  transit : Sim.time;
  output_queue_capacity : int;
  outputs : Link.t option array;
  routes : (int * int, int * int) Hashtbl.t; (* (in_port, in_vci) -> (out_port, out_vci) *)
  port_faults : Fault.t option array;
  mutable routed : int;
  mutable dropped : int;
  mutable unroutable : int;
  m_routed : Metrics.Counter.t;
  m_dropped : Metrics.Counter.t;
  m_unroutable : Metrics.Counter.t;
  port_drops : Metrics.Counter.t array;
  port_queue_hw : Metrics.Gauge.t array;
  port_queue_peak : Metrics.Gauge.t array;
      (* deepest the output queue has been *at cell arrival*, dropped
         cells included — unlike [port_queue_hw], which only samples after
         successful sends, this shows a queue pinned at capacity even when
         every further arrival is dropped (the near-miss gauge) *)
  port_labels : int -> (string * string) list;
      (* metric labels of an output port; includes a ("switch", id)
         dimension when this switch is one stage of a fabric *)
  mutable records : srecord list;
      (* planned train forwardings (DESIGN.md §14), folded lazily *)
  mutable on_settled : (in_port:int -> unit) option;
      (* a real cell from [in_port] left the fabric — forwarded onto its
         output link, dropped at the output queue, or unroutable (the
         in-flight gate of DESIGN.md §14 counts it out) *)
  mutable observer : (observed -> unit) option;
      (* per-cell forwarding observer (flow accounting, path records);
         called at the forwarding instant for every routed cell *)
}

(* What the observer sees of one routed cell, at its forwarding instant:
   the route taken, the output queue depth found on arrival (before the
   enqueue decision), and whether the cell made it onto the link. *)
and observed = {
  ob_in_port : int;
  ob_in_vci : int;
  ob_out_port : int;
  ob_out_vci : int;
  ob_eop : bool;
  ob_ctx : Engine.Span.ctx option;
  ob_queue : int;
  ob_forwarded : bool;
}

(* One committed train crossing this switch: cell i is forwarded at
   [sr_times.(i)] leaving the output queue [sr_hw.(i)] deep. Folded into
   routed counters / port high-water no later than any observer reads
   them. *)
and srecord = {
  sr_port : int;
  mutable sr_live : int;
  sr_times : Engine.Sim.time array;
  sr_hw : float array;
  mutable sr_f : int; (* fold cursor *)
}

let fold_record t now r =
  while r.sr_f < r.sr_live && r.sr_times.(r.sr_f) <= now do
    t.routed <- t.routed + 1;
    Metrics.Counter.inc t.m_routed;
    Metrics.Gauge.set_max t.port_queue_hw.(r.sr_port) r.sr_hw.(r.sr_f);
    Metrics.Gauge.set_max t.port_queue_peak.(r.sr_port) r.sr_hw.(r.sr_f);
    r.sr_f <- r.sr_f + 1
  done

let fold_to t now =
  if t.records <> [] then begin
    List.iter (fold_record t now) t.records;
    if List.exists (fun r -> r.sr_f >= r.sr_live) t.records then
      t.records <- List.filter (fun r -> r.sr_f < r.sr_live) t.records
  end

let create sim ~ports ~transit ?(output_queue_capacity = 1024) ?id () =
  if ports <= 0 then invalid_arg "Switch.create: ports must be positive";
  (* In a multi-stage fabric each switch gets an [id]: per-port metric
     labels gain a ("switch", id) dimension and the flight-recorder
     snapshot name becomes distinct, so stages never alias. A single
     switch (no id) keeps the historical label set and snapshot name so
     existing dumps stay byte-identical. *)
  let port_labels p =
    match id with
    | None -> [ ("port", string_of_int p) ]
    | Some i -> [ ("switch", string_of_int i); ("port", string_of_int p) ]
  in
  let snapshot_name =
    match id with
    | None -> "atm.switch"
    | Some i -> Printf.sprintf "atm.switch.%d" i
  in
  let t =
    {
      sim;
      ports;
      transit;
      output_queue_capacity;
      outputs = Array.make ports None;
      port_faults = Array.make ports None;
      routes = Hashtbl.create 64;
      routed = 0;
      dropped = 0;
      unroutable = 0;
      m_routed =
        Metrics.counter ~help:"cells forwarded onto an output port"
          "atm_switch_cells_routed_total" [];
      m_dropped =
        Metrics.counter ~help:"cells dropped at a full switch output queue"
          "atm_switch_cell_drops_total" [];
      m_unroutable =
        Metrics.counter ~help:"cells arriving with no matching VCI route"
          "atm_switch_unroutable_total" [];
      port_drops =
        Array.init ports (fun p ->
            Metrics.counter ~help:"cells dropped at a full switch output queue"
              "atm_switch_port_drops_total" (port_labels p));
      port_queue_hw =
        Array.init ports (fun p ->
            Metrics.gauge ~help:"deepest a switch output queue has ever been"
              "atm_switch_port_queue_high_water" (port_labels p));
      port_queue_peak =
        Array.init ports (fun p ->
            Metrics.gauge
              ~help:
                "deepest a switch output queue has been at cell arrival, \
                 drops included"
              "atm_switch_queue_peak" (port_labels p));
      port_labels;
      records = [];
      on_settled = None;
      observer = None;
    }
  in
  Metrics.register_flush (fun () -> fold_to t (Sim.now sim));
  Recorder.register_snapshot snapshot_name (fun () ->
      Json.Obj
        (List.init t.ports (fun p ->
             ( "port" ^ string_of_int p,
               match t.outputs.(p) with
               | None -> Json.Null
               | Some l ->
                   Json.Obj
                     [
                       ( "queue_depth",
                         Json.Num (float_of_int (Link.queue_length l)) );
                       ( "drops",
                         Json.Num
                           (float_of_int
                              (Metrics.Counter.value t.port_drops.(p))) );
                     ] ))));
  t

let check_port t port =
  if port < 0 || port >= t.ports then invalid_arg "Switch: port out of range"

let attach_output t ~port link =
  check_port t port;
  t.outputs.(port) <- Some link;
  (* the output-port queue *is* the link's transmit queue; at-aware so
     catch-up samples on the train path see planned occupancy *)
  let local at = at - (Sim.global_now t.sim - Sim.now t.sim) in
  Timeseries.register_at "atm_switch_port_queue_depth" (t.port_labels port)
    (fun at -> float_of_int (Link.queue_length_at link ~at:(local at)))

let set_fault t ~port f =
  check_port t port;
  t.port_faults.(port) <- Some f

let add_route t ~in_port ~in_vci ~out_port ~out_vci =
  check_port t in_port;
  check_port t out_port;
  if Hashtbl.mem t.routes (in_port, in_vci) then
    invalid_arg
      (Printf.sprintf "Switch.add_route: VCI %d already routed on port %d"
         in_vci in_port);
  Hashtbl.add t.routes (in_port, in_vci) (out_port, out_vci)

let remove_route t ~in_port ~in_vci = Hashtbl.remove t.routes (in_port, in_vci)

let set_on_settled t f = t.on_settled <- Some f
let set_observer t f = t.observer <- Some f

let settled t ~in_port =
  match t.on_settled with Some f -> f ~in_port | None -> ()

let cells_routed t =
  fold_to t (Sim.now t.sim);
  t.routed

let cells_dropped t = t.dropped
let unroutable t = t.unroutable

let port_drops t ~port =
  check_port t port;
  Metrics.Counter.value t.port_drops.(port)

let queue_peak t ~port =
  check_port t port;
  fold_to t (Sim.now t.sim);
  Metrics.Gauge.value t.port_queue_peak.(port)
let transit t = t.transit
let output_queue_capacity t = t.output_queue_capacity
let ports t = t.ports

(* Train-commit gate and route resolution: a whole train may be planned
   through an output port only when the route exists, the port has a link
   and no fault injector, and no other input port routes to it — the
   single-source condition that makes downstream FIFO order equal arrival
   order (DESIGN.md §14). *)
let plan_route t ~in_port ~in_vci =
  match Hashtbl.find_opt t.routes (in_port, in_vci) with
  | None -> None
  | Some (out_port, out_vci) -> (
      match t.outputs.(out_port) with
      | None -> None
      | Some link ->
          if t.port_faults.(out_port) <> None then None
          else if
            Hashtbl.fold
              (fun (ip, _) (op, _) other ->
                other || (op = out_port && ip <> in_port))
              t.routes false
          then None
          else Some (out_port, out_vci, link))

let commit_plan t ~out_port ~times ~hw =
  let r =
    {
      sr_port = out_port;
      sr_live = Array.length times;
      sr_times = times;
      sr_hw = hw;
      sr_f = 0;
    }
  in
  t.records <- t.records @ [ r ];
  r

(* Cells past [keep] never reach the switch (they were cut upstream); their
   forwarding instants are all strictly in the future. *)
let truncate_plan t r ~keep =
  if keep < r.sr_live then begin
    r.sr_live <- keep;
    if r.sr_f > keep then begin
      let extra = r.sr_f - keep in
      t.routed <- t.routed - extra;
      Metrics.Counter.add t.m_routed (-extra);
      r.sr_f <- keep
    end
  end

let drop t ?ctx ~out_port ~vci () =
  t.dropped <- t.dropped + 1;
  Metrics.Counter.inc t.m_dropped;
  Metrics.Counter.inc t.port_drops.(out_port);
  Span.mark ctx Span.Dropped;
  if Trace.enabled () then
    Trace.instant Trace.Cell "switch.drop" ~tid:out_port
      ~args:[ ("vci", Trace.Int vci) ]

(* Switch-site faults model a congested or misbehaving output port, so
   only loss is meaningful here — corruption and reordering belong to the
   fiber. Faulted cells take the same path as queue-overflow drops. *)
let fault_drops t ~out_port =
  match t.port_faults.(out_port) with
  | None -> false
  | Some f -> Fault.drops f

let input t ~port cell =
  check_port t port;
  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Switch_in;
  match Hashtbl.find_opt t.routes (port, cell.Cell.vci) with
  | None ->
      t.unroutable <- t.unroutable + 1;
      Metrics.Counter.inc t.m_unroutable;
      if Trace.enabled () then
        Trace.instant Trace.Cell "switch.unroutable" ~tid:port
          ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
      settled t ~in_port:port
  | Some (out_port, out_vci) -> (
      match t.outputs.(out_port) with
      | None -> failwith "Switch: route to a port with no output link"
      | Some link ->
          Sim.schedule_drop ~label:"switch.transit" t.sim ~delay:t.transit
            (fun () ->
              (* The output port queue is the link's transmit queue; a
                 full queue drops the cell, which is what makes large TCP
                 segments fragile over ATM (§7.8). *)
              let q = Link.queue_length link in
              let dropq = q >= t.output_queue_capacity in
              (* queue-full short-circuits the fault check, so the fault
                 RNG draws exactly when it did before observers existed *)
              let dropf = (not dropq) && fault_drops t ~out_port in
              let forwarded =
                if dropq || dropf then begin
                  drop t ?ctx:cell.Cell.ctx ~out_port ~vci:out_vci ();
                  false
                end
                else if begin
                  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Switch_out;
                  Link.send link (Cell.with_vci cell out_vci)
                end
                then begin
                  t.routed <- t.routed + 1;
                  Metrics.Counter.inc t.m_routed;
                  Metrics.Gauge.set_max t.port_queue_hw.(out_port)
                    (float_of_int (Link.queue_length link));
                  true
                end
                else begin
                  drop t ?ctx:cell.Cell.ctx ~out_port ~vci:out_vci ();
                  false
                end
              in
              Metrics.Gauge.set_max t.port_queue_peak.(out_port)
                (float_of_int
                   (if forwarded then Link.queue_length link else q));
              (match t.observer with
              | Some f ->
                  f
                    {
                      ob_in_port = port;
                      ob_in_vci = cell.Cell.vci;
                      ob_out_port = out_port;
                      ob_out_vci = out_vci;
                      ob_eop = cell.Cell.eop;
                      ob_ctx = cell.Cell.ctx;
                      ob_queue = q;
                      ob_forwarded = forwarded;
                    }
              | None -> ());
              settled t ~in_port:port))
