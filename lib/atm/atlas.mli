(** The congestion atlas (DESIGN.md §17): an HTML report section showing
    where a fabric run's traffic went and where it hurt.

    Three views, all built from telemetry that is already folded —
    reading the atlas never perturbs the run:

    - stage × port heatmaps of output-link utilization, peak queue
      occupancy at arrival ([atm_switch_queue_peak]) and drops;
    - the heavy-hitter flow table from the fabric's {!Flowstat} instance
      (Space-Saving estimates with error bars, per-hop breakdown for
      flows with exact tables);
    - per-stage hop-latency quantiles from the {!Engine.Pathrec}
      sketches.

    The fragment is self-contained (inline styles only), matching the
    {!Engine.Report} page contract. *)

val section : ?title:string -> Network.t -> string
(** The full atlas as one [Report.section] fragment (default title
    "Congestion atlas"). Flushes the metrics registry first so
    lazily-folded train state is settled. *)
