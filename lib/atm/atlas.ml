open Engine

(* Background intensity for one heatmap cell: white at 0, saturated
   red-orange at 1, inline so the report stays self-contained. *)
let cell_bg alpha =
  if alpha <= 0.004 then ""
  else
    Printf.sprintf " style=\"background:rgba(214,69,47,%.3f)\""
      (Float.min 1. alpha)

(* One stage x port heatmap: rows are fabric stages, columns output
   ports; unwired ports render empty. *)
let heat_table net ~title ~fmt ~cell =
  let nsw = Network.switch_count net in
  let max_ports = ref 0 in
  for sw = 0 to nsw - 1 do
    max_ports := max !max_ports (Switch.ports (Network.switch_at net sw))
  done;
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "<h3>%s</h3>\n<table><tr><th></th>" (Report.escape title));
  for p = 0 to !max_ports - 1 do
    Buffer.add_string b (Printf.sprintf "<th>p%d</th>" p)
  done;
  Buffer.add_string b "</tr>\n";
  for sw = 0 to nsw - 1 do
    Buffer.add_string b (Printf.sprintf "<tr><th>sw%d</th>" sw);
    let ports = Switch.ports (Network.switch_at net sw) in
    for p = 0 to !max_ports - 1 do
      match if p < ports then cell ~sw ~port:p else None with
      | None -> Buffer.add_string b "<td></td>"
      | Some (v, alpha) ->
          Buffer.add_string b
            (Printf.sprintf "<td%s>%s</td>" (cell_bg alpha)
               (Report.escape (fmt v)))
    done;
    Buffer.add_string b "</tr>\n"
  done;
  Buffer.add_string b "</table>\n";
  Buffer.contents b

let heatmaps net =
  let now = Sim.now (Network.sim net) in
  let util =
    heat_table net ~title:"Output-link utilization"
      ~fmt:(fun v -> Printf.sprintf "%.1f%%" (100. *. v))
      ~cell:(fun ~sw ~port ->
        match Network.output_link net ~sw ~port with
        | None -> None
        | Some link ->
            let u =
              if now <= 0 then 0.
              else
                float_of_int (Link.busy_ns_at link ~at:now) /. float_of_int now
            in
            Some (u, u))
  in
  let cap =
    float_of_int
      (Switch.output_queue_capacity (Network.switch_at net 0))
  in
  let peak =
    heat_table net ~title:"Peak queue occupancy at arrival (cells)"
      ~fmt:(fun v -> Printf.sprintf "%.0f" v)
      ~cell:(fun ~sw ~port ->
        match Network.output_link net ~sw ~port with
        | None -> None
        | Some _ ->
            let v = Switch.queue_peak (Network.switch_at net sw) ~port in
            Some (v, (if cap > 0. then v /. cap else 0.)))
  in
  (* normalize drop intensity to the worst port so a lightly-lossy run
     still shows its hot spot *)
  let worst = ref 0 in
  for sw = 0 to Network.switch_count net - 1 do
    let s = Network.switch_at net sw in
    for p = 0 to Switch.ports s - 1 do
      worst := max !worst (Switch.port_drops s ~port:p)
    done
  done;
  let drops =
    heat_table net ~title:"Cells dropped at the output queue"
      ~fmt:(fun v -> Printf.sprintf "%.0f" v)
      ~cell:(fun ~sw ~port ->
        match Network.output_link net ~sw ~port with
        | None -> None
        | Some _ ->
            let d = Switch.port_drops (Network.switch_at net sw) ~port in
            Some
              ( float_of_int d,
                if !worst = 0 then 0.
                else float_of_int d /. float_of_int !worst ))
  in
  util ^ peak ^ drops

let flows_html net =
  match Network.flowstat net with
  | None -> "<p>Flow accounting was not enabled for this run.</p>\n"
  | Some fs ->
      let b = Buffer.create 1024 in
      Buffer.add_string b
        "<h3>Heavy hitters (Space-Saving top-K, ingress bytes)</h3>\n\
         <table><tr><th>#</th><th>flow (src:dst:vcis)</th><th>est \
         bytes</th><th>err</th><th>per-hop cells (drops)</th></tr>\n";
      List.iteri
        (fun i (fl, est, err) ->
          let hops =
            match Flowstat.flow_hops fl with
            | None -> "sketched"
            | Some hs ->
                String.concat " &rarr; "
                  (Array.to_list
                     (Array.map
                        (fun (cells, _bytes, drops, _retx) ->
                          if drops = 0 then string_of_int cells
                          else Printf.sprintf "%d (%d)" cells drops)
                        hs))
          in
          Buffer.add_string b
            (Printf.sprintf
               "<tr><td>%d</td><td>%s</td><td>%d</td><td>&plusmn;%d</td><td>%s</td></tr>\n"
               (i + 1)
               (Report.escape (Flowstat.flow_label fl))
               est err hops))
        (Flowstat.top fs);
      Buffer.add_string b "</table>\n";
      Buffer.contents b

let hops_html () =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "<h3>Per-stage hop latency (per delivered PDU)</h3>\n\
     <table><tr><th>hop</th><th>p50 &micro;s</th><th>p90 \
     &micro;s</th><th>p99 &micro;s</th></tr>\n";
  let us q = Printf.sprintf "%.2f" (q /. 1000.) in
  let any = ref false in
  let rec row hop =
    if hop < 16 then
      match Pathrec.hop_quantile ~hop 0.5 with
      | None -> ()
      | Some p50 ->
          any := true;
          let p90 = Option.value ~default:p50 (Pathrec.hop_quantile ~hop 0.9) in
          let p99 =
            Option.value ~default:p90 (Pathrec.hop_quantile ~hop 0.99)
          in
          Buffer.add_string b
            (Printf.sprintf
               "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n" hop
               (us p50) (us p90) (us p99));
          row (hop + 1)
  in
  row 0;
  Buffer.add_string b "</table>\n";
  if !any then Buffer.contents b
  else
    "<h3>Per-stage hop latency</h3>\n\
     <p>Path records were not enabled for this run.</p>\n"

let section ?(title = "Congestion atlas") net =
  (* settle lazily-folded train state (link/switch counters, provisional
     path records) before reading any of it *)
  Metrics.flush ();
  Report.section ~title (heatmaps net ^ flows_html net ^ hops_html ())
