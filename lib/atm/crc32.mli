(** CRC-32 as used by AAL5 (the IEEE 802.3 polynomial 0x04C11DB7, reflected
    implementation). Table-driven, processes a byte at a time. *)

val digest : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** [digest b ~pos ~len] is the CRC of the byte range; [?crc] continues a
    running computation (pass a previous result to chain ranges). *)

val digest_bytes : bytes -> int32
(** CRC over a whole buffer. [digest_bytes "123456789" = 0xCBF43926l]. *)

val digest_buf : ?crc:int32 -> Engine.Buf.t -> int32
(** CRC over every span of a slice in order, without materializing it;
    equals [digest_bytes] of the equivalent contiguous buffer. *)
