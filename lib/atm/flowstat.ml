open Engine

(* --- Space-Saving top-K ------------------------------------------------ *)

module Topk = struct
  type 'a entry = { key : 'a; mutable est : int; mutable err : int }
  type 'a t = { k : int; table : ('a, 'a entry) Hashtbl.t }

  let create ~k =
    if k <= 0 then invalid_arg "Topk.create: k must be positive";
    { k; table = Hashtbl.create (2 * k) }

  let offer t key w =
    match Hashtbl.find_opt t.table key with
    | Some e -> e.est <- e.est + w
    | None ->
        if w <= 0 then ()
        else if Hashtbl.length t.table < t.k then
          Hashtbl.add t.table key { key; est = w; err = 0 }
        else begin
          (* evict the minimum-estimate entry; the newcomer inherits its
             estimate as over-count error (est >= true >= est - err) *)
          let min_e =
            Hashtbl.fold
              (fun _ e acc ->
                match acc with
                | Some m when m.est <= e.est -> acc
                | _ -> Some e)
              t.table None
          in
          match min_e with
          | None -> assert false
          | Some m ->
              Hashtbl.remove t.table m.key;
              Hashtbl.add t.table key { key; est = m.est + w; err = m.est }
        end

  let entries t =
    List.sort
      (fun (_, a, _) (_, b, _) -> compare b a)
      (Hashtbl.fold (fun _ e acc -> (e.key, e.est, e.err) :: acc) t.table [])
end

(* --- global switch ----------------------------------------------------- *)

type config = { exact_flows : int; k : int }

let configured : config option ref = ref None

let configure ?(exact_flows = 1024) ?(k = 16) () =
  if exact_flows < 0 then invalid_arg "Flowstat.configure: exact_flows";
  configured := Some { exact_flows; k }

let disable () = configured := None
let active () = !configured <> None

(* --- per-fabric instance ----------------------------------------------- *)

(* Exact hop tables are real metrics counters so the flow families land
   in every registry dump with no extra plumbing; sketched flows carry
   only their identity and ride the top-K. *)
type hopstat = {
  hs_cells : Metrics.Counter.t;
  hs_bytes : Metrics.Counter.t;
  hs_drops : Metrics.Counter.t;
  hs_retx : Metrics.Counter.t;
}

type flow = {
  fl_src : int;
  fl_dst : int;
  fl_vcis : int array;
  fl_label : string;
  fl_exact : hopstat array option;
}

type t = {
  cfg : config;
  by_key : (int * int, flow) Hashtbl.t; (* (src, uplink VCI) *)
  mutable order : flow list; (* reversed registration order *)
  mutable n_exact : int;
  topk : flow Topk.t;
}

let create () =
  let cfg =
    match !configured with
    | Some c -> c
    | None -> invalid_arg "Flowstat.create: not configured"
  in
  {
    cfg;
    by_key = Hashtbl.create 64;
    order = [];
    n_exact = 0;
    topk = Topk.create ~k:cfg.k;
  }

let flow_label_of ~src ~dst ~vcis =
  Printf.sprintf "%d:%d:%s" src dst
    (String.concat "," (Array.to_list (Array.map string_of_int vcis)))

let register t ~src ~dst ~vcis =
  let label = flow_label_of ~src ~dst ~vcis in
  let exact =
    if t.n_exact >= t.cfg.exact_flows then None
    else begin
      t.n_exact <- t.n_exact + 1;
      Some
        (Array.init (Array.length vcis) (fun hop ->
             let labels =
               [ ("flow", label); ("hop", string_of_int hop) ]
             in
             {
               hs_cells =
                 Metrics.counter
                   ~help:"cells a flow pushed through a fabric stage"
                   "atm_flow_cells_total" labels;
               hs_bytes =
                 Metrics.counter
                   ~help:"payload bytes a flow pushed through a fabric stage"
                   "atm_flow_bytes_total" labels;
               hs_drops =
                 Metrics.counter
                   ~help:"a flow's cells lost entering a fabric stage"
                   "atm_flow_drops_total" labels;
               hs_retx =
                 Metrics.counter
                   ~help:"PDUs the sender retransmitted on a flow"
                   "atm_flow_retransmits_total" labels;
             }))
    end
  in
  let fl = { fl_src = src; fl_dst = dst; fl_vcis = vcis; fl_label = label; fl_exact = exact } in
  Hashtbl.replace t.by_key (src, vcis.(0)) fl;
  t.order <- fl :: t.order;
  fl

let count t fl ~hop ~cells =
  (match fl.fl_exact with
  | Some hops when hop < Array.length hops ->
      Metrics.Counter.add hops.(hop).hs_cells cells;
      Metrics.Counter.add hops.(hop).hs_bytes (cells * Cell.payload_size)
  | _ -> ());
  if hop = 0 then Topk.offer t.topk fl (cells * Cell.payload_size)

let drop _t fl ~hop =
  match fl.fl_exact with
  | Some hops when hop < Array.length hops ->
      Metrics.Counter.inc hops.(hop).hs_drops
  | _ -> ()

let find t ~src ~vci = Hashtbl.find_opt t.by_key (src, vci)

let note_retx t ~src ~vci =
  match find t ~src ~vci with
  | Some { fl_exact = Some hops; _ } when Array.length hops > 0 ->
      Metrics.Counter.inc hops.(0).hs_retx
  | _ -> ()

let flow_label fl = fl.fl_label
let flow_src fl = fl.fl_src
let flow_dst fl = fl.fl_dst
let flow_vcis fl = fl.fl_vcis

let flow_hops fl =
  Option.map
    (Array.map (fun hs ->
         ( Metrics.Counter.value hs.hs_cells,
           Metrics.Counter.value hs.hs_bytes,
           Metrics.Counter.value hs.hs_drops,
           Metrics.Counter.value hs.hs_retx )))
    fl.fl_exact

let flows t = List.rev t.order
let exact_flows t = t.n_exact
let top t = Topk.entries t.topk
