(** A unidirectional fiber: serializes cells at the link bandwidth, delivers
    each to the receiver after the propagation delay. Cells queue FIFO while
    the transmitter is busy; a finite queue capacity models an output FIFO
    and overflowing cells are dropped (and counted). An optional loss process
    drops cells at random for failure-injection experiments. *)

type t

val create :
  Engine.Sim.t ->
  ?queue_capacity:int ->
  (* cells; default: effectively unbounded *)
  ?metrics_labels:(string * string) list ->
  (* labels for the atm_link registry families; default: none *)
  bandwidth_mbps:float ->
  propagation:Engine.Sim.time ->
  unit ->
  t

val set_receiver : t -> (Cell.t -> unit) -> unit
(** The delivery callback at the far end. Must be set before traffic flows. *)

val set_loss : t -> Engine.Rng.t -> p:float -> unit
(** Drop each cell independently with probability [p]. Legacy simple-loss
    process; kept separate from {!set_fault} so its draw stream is
    unchanged by the fault layer. *)

val set_fault : t -> Engine.Fault.t -> unit
(** Attach a fault injector: each delivered cell is passed through
    {!Engine.Fault.decide} and may be dropped, corrupted (one payload
    byte flipped in a fresh copy), duplicated, or held back a few cell
    slots. Dropped and corrupted cells get a [Dropped] span mark /
    "fault" pcapng tap respectively. *)

val send : t -> Cell.t -> bool
(** Enqueue a cell for transmission. Returns [false] if it was dropped
    because the transmit queue was full. *)

val cell_time : t -> Engine.Sim.time
(** Serialization time of one 53-byte cell at this link's bandwidth. *)

val cells_sent : t -> int
val cells_dropped : t -> int
(** Queue-overflow drops plus injected losses. *)

val cells_offered : t -> int
(** [cells_sent + cells_dropped]: every cell that reached the delivery
    point, the denominator for loss-rate arithmetic. *)

val queue_length : t -> int
val busy : t -> bool
