(** A unidirectional fiber: serializes cells at the link bandwidth, delivers
    each to the receiver after the propagation delay. Cells queue FIFO while
    the transmitter is busy; a finite queue capacity models an output FIFO
    and overflowing cells are dropped (and counted). An optional loss process
    drops cells at random for failure-injection experiments. *)

type t

val create :
  Engine.Sim.t ->
  ?queue_capacity:int ->
  (* cells; default: effectively unbounded *)
  ?metrics_labels:(string * string) list ->
  (* labels for the atm_link registry families; default: none *)
  bandwidth_mbps:float ->
  propagation:Engine.Sim.time ->
  unit ->
  t

val set_receiver : t -> (Cell.t -> unit) -> unit
(** The delivery callback at the far end. Must be set before traffic flows. *)

val set_loss : t -> Engine.Rng.t -> p:float -> unit
(** Drop each cell independently with probability [p]. Legacy simple-loss
    process; kept separate from {!set_fault} so its draw stream is
    unchanged by the fault layer. *)

val set_fault : t -> Engine.Fault.t -> unit
(** Attach a fault injector: each delivered cell is passed through
    {!Engine.Fault.decide} and may be dropped, corrupted (one payload
    byte flipped in a fresh copy), duplicated, or held back a few cell
    slots. Dropped and corrupted cells get a [Dropped] span mark /
    "fault" pcapng tap respectively. *)

val send : t -> Cell.t -> bool
(** Enqueue a cell for transmission. Returns [false] if it was dropped
    because the transmit queue was full. Raises [Invalid_argument] if no
    receiver is attached (mis-wired topology, caught at the first send
    rather than mid-flight). *)

val cell_time : t -> Engine.Sim.time
(** Serialization time of one 53-byte cell at this link's bandwidth. *)

val propagation : t -> Engine.Sim.time

val cells_sent : t -> int
val cells_dropped : t -> int
(** Queue-overflow drops plus injected losses. *)

val cells_offered : t -> int
(** [cells_sent + cells_dropped]: every cell that reached the delivery
    point, the denominator for loss-rate arithmetic. *)

val queue_length : t -> int
(** Legacy queue plus cells planned-but-not-yet-serializing on the train
    fast path. *)

val queue_length_at : t -> at:Engine.Sim.time -> int
(** {!queue_length} evaluated at a past instant [at] (local time, between
    the previous event and the one about to fire): planned cells count as
    queued iff accepted at or before [at] and not yet serializing. The
    timeseries sampler's catch-up boundaries read this so train-path runs
    report the same depths the per-cell path would. *)

val busy_ns_at : t -> at:Engine.Sim.time -> int
(** Cumulative serialization ns as of [at]: one cell_time per
    serialization start at or before [at], real or planned, independent
    of how far the lazy fold cursors have advanced. *)

val busy : t -> bool

val quiet : t -> bool
(** No real cell on the wire or in the transmit queue. Planned (train)
    state is ignored: committed plans coexist with new plans, so a link
    that is [quiet] can accept a train commit even while analytically
    mid-train. The real-state half of the plan gate. *)

(** {2 Train fast path (DESIGN.md §14)}

    Planned (analytic) transport: a whole train's acceptances, queue drops,
    serialization starts and high-water marks are computed up front against
    the link's planned state and folded lazily into the real counters no
    later than any observer reads them. Plans refuse — returning the caller
    to the per-cell path — whenever legacy traffic is in flight, a loss
    process or fault injector is attached, or any same-instant decision
    would depend on event-heap order. *)

type plan
type hop

val plan_chain :
  t ->
  n:int ->
  first_attempt:Engine.Sim.time ->
  gap:Engine.Sim.time ->
  plan option
(** Sender-paced plan: cell 0's send attempt fires at [first_attempt] from
    an event scheduled [gap] earlier; each acceptance triggers the next
    attempt [gap] later; refused attempts drop once and retry every
    cell_time, reproducing the NI tx / ni.retry shape (including the
    per-attempt drop accounting of a saturated bounded queue). *)

val plan_feed :
  t ->
  arrivals:Engine.Sim.time array ->
  sched_lead:Engine.Sim.time ->
  refuse_occ:int ->
  plan option
(** Arrival-fed plan (switch output, fixed-pace PIO uplink): cell i's
    attempt fires at [arrivals.(i)] (strictly increasing) from an event
    scheduled [sched_lead] earlier. Refuses rather than modelling a drop if
    occupancy would reach [refuse_occ] (the caller's drop threshold) or the
    link's own capacity. *)

val plan_accepts : plan -> Engine.Sim.time array
val plan_starts : plan -> Engine.Sim.time array
(** Delivery of cell i lands at [starts.(i) + cell_time + propagation]. *)

val plan_queue_after : plan -> float array
(** Queue depth just after each acceptance — what a feeder reading
    {!queue_length} right after a successful {!send} would see (the
    switch's port high-water sample). *)

val commit_plan : t -> plan -> fold_sent:bool -> hop
(** Install a plan. With [fold_sent], delivered-cell accounting folds
    analytically (trains); without, the caller keeps real delivery events
    (bridged per-cell sends). *)

val truncate_hop : t -> hop -> keep:int -> now:Engine.Sim.time -> unit
(** The owning train was cut back to [keep] cells: discard planned entries
    at or after [now] (the per-cell path re-performs them for real). *)

val pending_plan : t -> bool

val set_interfere : t -> (unit -> unit) -> unit
(** Callback run before a per-cell send threads through pending planned
    state; the owning NI uses it to split a chain still accepting here. *)

val clear_interfere : t -> unit

val set_on_accept : t -> (unit -> unit) -> unit
(** Callback fired once per real cell {!send} accepts (queued or put on
    the wire, legacy or bridged) — never for planned train commits.
    The network wires it on every switch-ingress link to count cells into
    the per-ingress in-flight gate (DESIGN.md §14/§16). *)
