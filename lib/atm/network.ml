open Engine

type config = {
  link_bandwidth_mbps : float;
  link_propagation : Sim.time;
  switch_transit : Sim.time;
  switch_queue_capacity : int;
  host_tx_fifo : int;
}

(* The ASX-200 is a shared-buffer switch with thousands of cells of output
   buffering, so converging bursts (e.g. an 8-way all-to-all of 4 KB PDUs)
   do not normally lose cells; experiments that study loss shrink
   [switch_queue_capacity] explicitly. *)
let default_config =
  {
    link_bandwidth_mbps = 140.;
    link_propagation = Sim.ns 500;
    switch_transit = Sim.us 2;
    switch_queue_capacity = 8192;
    host_tx_fifo = 64;
  }

type t = {
  sim : Sim.t;
  hosts : int;
  switch : Switch.t;
  uplinks : Link.t array; (* host -> switch *)
  downlinks : Link.t array; (* switch -> host *)
  rx_handlers : (Cell.t -> unit) option array;
  rx_train_handlers :
    (Cell.train -> rx_vci:int -> deliveries:Sim.time array -> unit) option
    array;
  (* VCI allocation, per direction. VCIs below 32 are reserved as on a real
     ATM fabric. *)
  next_tx_vci : int array; (* next free VCI on host's uplink *)
  next_rx_vci : int array; (* next free VCI on host's downlink *)
  in_flight : int array;
    (* per source host: real cells accepted onto the uplink but not yet
       settled into their destination link by the switch. While nonzero,
       train commits from that host refuse — a straggler still crossing
       the fabric would reach the downlink during the planned window and
       be queued after entries it precedes in wire order (bridge_send
       appends at the planned tail). Cells killed by an uplink loss or
       fault site never settle and pin the counter, which only disables
       commits from a host whose uplink refuses plans anyway. *)
}

(* One injector per attachment point — per link direction per host, per
   switch output port — so each has its own seed-derived stream and its
   own [site] metric label, and faults on host 0's uplink never shift the
   draws seen by host 1. *)
let apply_fault t fspec =
  let open Fault in
  List.iter
    (function
      | Link_up ->
          Array.iteri
            (fun h link ->
              Link.set_fault link
                (create ~site:(Printf.sprintf "link.up.%d" h) fspec))
            t.uplinks
      | Link_down ->
          Array.iteri
            (fun h link ->
              Link.set_fault link
                (create ~site:(Printf.sprintf "link.down.%d" h) fspec))
            t.downlinks
      | Switch ->
          for p = 0 to t.hosts - 1 do
            Switch.set_fault t.switch ~port:p
              (create ~site:(Printf.sprintf "switch.port.%d" p) fspec)
          done
      | Ni -> () (* NI constructors consult [Fault.configured] themselves *))
    fspec.sites

let create sim ~hosts config =
  if hosts <= 0 then invalid_arg "Network.create: hosts must be positive";
  let switch =
    Switch.create sim ~ports:hosts ~transit:config.switch_transit
      ~output_queue_capacity:config.switch_queue_capacity ()
  in
  let mk_link ?queue_capacity ~dir h =
    Link.create sim ?queue_capacity
      ~metrics_labels:[ ("dir", dir); ("host", string_of_int h) ]
      ~bandwidth_mbps:config.link_bandwidth_mbps
      ~propagation:config.link_propagation ()
  in
  let uplinks =
    Array.init hosts (mk_link ~queue_capacity:config.host_tx_fifo ~dir:"up")
  in
  let downlinks = Array.init hosts (mk_link ~dir:"down") in
  let t =
    {
      sim;
      hosts;
      switch;
      uplinks;
      downlinks;
      rx_handlers = Array.make hosts None;
      rx_train_handlers = Array.make hosts None;
      next_tx_vci = Array.make hosts 32;
      next_rx_vci = Array.make hosts 32;
      in_flight = Array.make hosts 0;
    }
  in
  Switch.set_on_settled switch (fun ~in_port ->
      if t.in_flight.(in_port) > 0 then
        t.in_flight.(in_port) <- t.in_flight.(in_port) - 1);
  for h = 0 to hosts - 1 do
    let port = h in
    Link.set_receiver uplinks.(h) (fun cell -> Switch.input switch ~port cell);
    Switch.attach_output switch ~port downlinks.(h);
    Link.set_receiver downlinks.(h) (fun cell ->
        match t.rx_handlers.(h) with
        | Some f -> f cell
        | None -> () (* host NI not attached yet: cell is lost *))
  done;
  (match Fault.configured () with
  | Some fspec -> apply_fault t fspec
  | None -> ());
  t

let sim t = t.sim
let host_count t = t.hosts

let check_host t h =
  if h < 0 || h >= t.hosts then invalid_arg "Network: host out of range"

let attach_rx t ~host f =
  check_host t host;
  t.rx_handlers.(host) <- Some f

let attach_rx_train t ~host f =
  check_host t host;
  t.rx_train_handlers.(host) <- Some f

(* pcap tap at the injection point: every cell that enters the fabric is
   captured as a LINKTYPE_SUNATM record. *)
let capture_cell ~host cell =
  if Pcapng.enabled () then begin
    let ifc =
      Pcapng.iface
        ~name:(Printf.sprintf "atm%d" host)
        ~linktype:Pcapng.linktype_sunatm
    in
    Pcapng.capture ~iface:ifc (Cell.sunatm_bytes cell)
  end

let send t ~host cell =
  check_host t host;
  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Injected;
  capture_cell ~host cell;
  let accepted = Link.send t.uplinks.(host) cell in
  if accepted then t.in_flight.(host) <- t.in_flight.(host) + 1;
  accepted

let in_flight t ~host =
  check_host t host;
  t.in_flight.(host)

(* Has the per-cell backlog from [host] toward [vci]'s destination flushed
   out of the fabric? True once every uplink-accepted cell has settled
   through the switch AND the destination downlink has no real cell queued
   or on the wire — exactly the transient conditions that make a train
   commit refuse. When the route itself cannot train (no route,
   multi-source port, fault site) there is nothing to wait for. *)
let path_clear t ~host ~vci =
  check_host t host;
  t.in_flight.(host) = 0
  &&
  match Switch.plan_route t.switch ~in_port:host ~in_vci:vci with
  | None -> true
  | Some (_, _, downlink) -> Link.quiet downlink

let uplink t ~host =
  check_host t host;
  t.uplinks.(host)

let downlink t ~host =
  check_host t host;
  t.downlinks.(host)

let switch t = t.switch

(* --- train fast path (DESIGN.md §14) --------------------------------- *)

(* Default receive expansion for hosts whose NI is not train-aware: one
   chained event per cell, each re-checking the train's live length so an
   upstream truncation simply stops the chain (the per-cell path
   re-delivers the cut cells for real). *)
let rec expand_rx t ~dest ~rx_vci ~train ~deliveries i =
  if i < Cell.Train.length train then begin
    let cell = Cell.with_vci (Cell.Train.cell train i) rx_vci in
    (match t.rx_handlers.(dest) with Some f -> f cell | None -> ());
    if i + 1 < Cell.Train.length train then
      Sim.schedule_drop ~label:"net.rx_train" t.sim
        ~delay:(deliveries.(i + 1) - Sim.now t.sim)
        (fun () -> expand_rx t ~dest ~rx_vci ~train ~deliveries (i + 1))
  end

(* Plan a whole train's journey across the fabric analytically: sender-paced
   chain on the uplink, fabric transit, arrival-fed plan on the downlink.
   All-or-nothing — any refusal (legacy traffic in flight, a loss or fault
   site, a queue at capacity, a same-instant tie) returns [None] and the
   caller stays on the per-cell path. On success each element holds planned
   state that folds lazily into its counters, a single event hands the train
   to the receiving host at the first cell's delivery instant, and a
   truncation listener un-plans everything past an interference point. The
   owner must arrange for [on_interfere] to split its chain (it is installed
   as the uplink's interfere hook; clear it when the chain ends). *)
let commit_train_gen t ~host ~train ~plan_uplink ~on_interfere =
  check_host t host;
  let n = Cell.Train.length train in
  if n = 0 || t.in_flight.(host) > 0 then None
  else
    match
      Switch.plan_route t.switch ~in_port:host ~in_vci:(Cell.Train.vci train)
    with
    | None -> None
    | Some (out_port, out_vci, downlink) -> (
        let uplink = t.uplinks.(host) in
        match plan_uplink uplink with
        | None -> None
        | Some up_plan -> (
            let transit = Switch.transit t.switch in
            let up_lat = Link.cell_time uplink + Link.propagation uplink in
            let arrivals =
              Array.map (fun s -> s + up_lat + transit)
                (Link.plan_starts up_plan)
            in
            match
              Link.plan_feed downlink ~arrivals ~sched_lead:transit
                ~refuse_occ:(Switch.output_queue_capacity t.switch)
            with
            | None -> None
            | Some down_plan ->
                let up_hop = Link.commit_plan uplink up_plan ~fold_sent:true in
                let down_hop =
                  Link.commit_plan downlink down_plan ~fold_sent:true
                in
                let srec =
                  Switch.commit_plan t.switch ~out_port ~times:arrivals
                    ~hw:(Link.plan_queue_after down_plan)
                in
                let up_accepts = Link.plan_accepts up_plan in
                let up_starts = Link.plan_starts up_plan in
                let down_starts = Link.plan_starts down_plan in
                let down_lat =
                  Link.cell_time downlink + Link.propagation downlink
                in
                (* Train-granular observers (DESIGN.md §15): the plan
                   arrays give every milestone's exact instant, so EOP
                   span marks are stamped at the same values the
                   per-cell path would produce, and tracing gets one
                   slice per fabric stage instead of ~8 events/cell. *)
                let synth_spans =
                  Span.enabled ()
                  && Span.granularity () = Granularity.Per_train
                in
                (* (index, ctx) of each EOP cell, captured now: the
                   truncation listener runs after [live] has shrunk, so
                   cut cells are no longer reachable via [Train.cell] *)
                let eop_ctxs = ref [] in
                if synth_spans then
                  for i = 0 to n - 1 do
                    let cell = Cell.Train.cell train i in
                    if cell.Cell.eop then begin
                      let ctx = cell.Cell.ctx in
                      eop_ctxs := (i, ctx) :: !eop_ctxs;
                      Span.mark_at ctx Span.Injected ~t:up_accepts.(i);
                      Span.mark_at ctx Span.Switch_in
                        ~t:(arrivals.(i) - transit);
                      Span.mark_at ctx Span.Switch_out ~t:arrivals.(i);
                      Span.mark_at ctx Span.Link_tx ~t:down_starts.(i);
                      Span.mark_at ctx Span.Rx_cell
                        ~t:(down_starts.(i) + down_lat)
                    end
                  done;
                let slices =
                  if not (Trace.train_slices_wanted ()) then None
                  else
                    let up_cell = Link.cell_time uplink in
                    let down_cell = Link.cell_time downlink in
                    let args =
                      [
                        ("vci", Trace.Int (Cell.Train.vci train));
                        ("cells", Trace.Int n);
                      ]
                    in
                    let sl name ~tid ~ts ~fin =
                      Trace.train_slice Trace.Cell ~tid ~args ~ts
                        ~dur:(fin - ts) name
                    in
                    Some
                      ( up_cell,
                        down_cell,
                        sl "train.uplink" ~tid:host ~ts:up_starts.(0)
                          ~fin:(up_starts.(n - 1) + up_cell),
                        sl "train.switch" ~tid:out_port
                          ~ts:(arrivals.(0) - transit)
                          ~fin:arrivals.(n - 1),
                        sl "train.downlink" ~tid:out_port
                          ~ts:down_starts.(0)
                          ~fin:(down_starts.(n - 1) + down_cell) )
                in
                Cell.Train.on_truncate train (fun ~keep ~now ->
                    Link.truncate_hop uplink up_hop ~keep ~now;
                    Switch.truncate_plan t.switch srec ~keep;
                    Link.truncate_hop downlink down_hop ~keep ~now;
                    (* cut cells re-run the per-cell path, which
                       re-stamps their marks for real *)
                    List.iter
                      (fun (i, ctx) ->
                        if i >= keep then begin
                          Span.unmark ctx Span.Injected;
                          Span.unmark ctx Span.Switch_in;
                          Span.unmark ctx Span.Switch_out;
                          Span.unmark ctx Span.Link_tx;
                          Span.unmark ctx Span.Rx_cell
                        end)
                      !eop_ctxs;
                    match slices with
                    | None -> ()
                    | Some (up_cell, down_cell, s_up, s_sw, s_down) ->
                        if keep = 0 then begin
                          Trace.drop_slice s_up;
                          Trace.drop_slice s_sw;
                          Trace.drop_slice s_down
                        end
                        else begin
                          Trace.set_slice s_up ~ts:up_starts.(0)
                            ~dur:
                              (up_starts.(keep - 1) + up_cell
                             - up_starts.(0));
                          let sw_ts = arrivals.(0) - transit in
                          Trace.set_slice s_sw ~ts:sw_ts
                            ~dur:(arrivals.(keep - 1) - sw_ts);
                          Trace.set_slice s_down ~ts:down_starts.(0)
                            ~dur:
                              (down_starts.(keep - 1) + down_cell
                             - down_starts.(0))
                        end);
                Link.set_interfere uplink on_interfere;
                let deliveries =
                  Array.map (fun s -> s + down_lat) down_starts
                in
                Sim.schedule_drop ~label:"net.rx_train" t.sim
                  ~delay:(deliveries.(0) - Sim.now t.sim)
                  (fun () ->
                    match t.rx_train_handlers.(out_port) with
                    | Some f when Cell.Train.length train > 0 ->
                        f train ~rx_vci:out_vci ~deliveries
                    | _ ->
                        expand_rx t ~dest:out_port ~rx_vci:out_vci ~train
                          ~deliveries 0);
                Some (Link.plan_accepts up_plan)))

let commit_train t ~host ~train ~first_attempt ~gap ~on_interfere =
  commit_train_gen t ~host ~train ~on_interfere ~plan_uplink:(fun uplink ->
      Link.plan_chain uplink ~n:(Cell.Train.length train) ~first_attempt ~gap)

let commit_train_feed t ~host ~train ~arrivals ~sched_lead ~on_interfere =
  commit_train_gen t ~host ~train ~on_interfere ~plan_uplink:(fun uplink ->
      Link.plan_feed uplink ~arrivals ~sched_lead ~refuse_occ:max_int)

type duplex = { tx_vci : int; rx_vci : int }
type conn = { host_a : int; host_b : int; side_a : duplex; side_b : duplex }

let alloc_vci arr h =
  let v = arr.(h) in
  arr.(h) <- v + 1;
  v

let connect t ~a ~b =
  check_host t a;
  check_host t b;
  if a = b then invalid_arg "Network.connect: a host cannot connect to itself";
  (* a -> b direction *)
  let vci_a_out = alloc_vci t.next_tx_vci a in
  let vci_b_in = alloc_vci t.next_rx_vci b in
  Switch.add_route t.switch ~in_port:a ~in_vci:vci_a_out ~out_port:b
    ~out_vci:vci_b_in;
  (* b -> a direction *)
  let vci_b_out = alloc_vci t.next_tx_vci b in
  let vci_a_in = alloc_vci t.next_rx_vci a in
  Switch.add_route t.switch ~in_port:b ~in_vci:vci_b_out ~out_port:a
    ~out_vci:vci_a_in;
  {
    host_a = a;
    host_b = b;
    side_a = { tx_vci = vci_a_out; rx_vci = vci_a_in };
    side_b = { tx_vci = vci_b_out; rx_vci = vci_b_in };
  }

let disconnect t conn =
  Switch.remove_route t.switch ~in_port:conn.host_a
    ~in_vci:conn.side_a.tx_vci;
  Switch.remove_route t.switch ~in_port:conn.host_b
    ~in_vci:conn.side_b.tx_vci
