open Engine

type config = {
  link_bandwidth_mbps : float;
  link_propagation : Sim.time;
  switch_transit : Sim.time;
  switch_queue_capacity : int;
  host_tx_fifo : int;
}

(* The ASX-200 is a shared-buffer switch with thousands of cells of output
   buffering, so converging bursts (e.g. an 8-way all-to-all of 4 KB PDUs)
   do not normally lose cells; experiments that study loss shrink
   [switch_queue_capacity] explicitly. *)
let default_config =
  {
    link_bandwidth_mbps = 140.;
    link_propagation = Sim.ns 500;
    switch_transit = Sim.us 2;
    switch_queue_capacity = 8192;
    host_tx_fifo = 64;
  }

(* --- declarative topology (DESIGN.md §16) ---------------------------- *)

type clos = { pods : int; spine : int; hosts_per_pod : int }

type topology =
  | Single of int
  | Clos of clos
  | Custom of {
      switch_ports : int array;
      hosts : (int * int) array;
      trunks : (int * int * int * int) list;
    }

let topology_hosts = function
  | Single hosts -> hosts
  | Clos c -> c.pods * c.hosts_per_pod
  | Custom c -> Array.length c.hosts

(* Elaborated fabric: switches with port counts, each host's attachment
   point, and the directed inter-stage fibers (a full-duplex trunk is two
   of them). *)
type fabric = {
  fb_ports : int array; (* switch -> port count *)
  fb_attach : (int * int) array; (* host -> (switch, port) *)
  fb_trunks : (int * int * int * int) array;
      (* directed: (src switch, src port, dst switch, dst port) *)
}

let elaborate = function
  | Single hosts ->
      if hosts <= 0 then invalid_arg "Network.create: hosts must be positive";
      {
        fb_ports = [| hosts |];
        fb_attach = Array.init hosts (fun h -> (0, h));
        fb_trunks = [||];
      }
  | Clos { pods; spine; hosts_per_pod } ->
      if pods <= 0 || spine <= 0 || hosts_per_pod <= 0 then
        invalid_arg "Network: Clos dimensions must be positive";
      (* Leaves are switches 0..pods-1 (ports 0..hosts_per_pod-1 face
         hosts, hosts_per_pod+s faces spine s); spines are switches
         pods..pods+spine-1 with one port per pod. *)
      let fb_ports =
        Array.init (pods + spine) (fun i ->
            if i < pods then hosts_per_pod + spine else pods)
      in
      let fb_attach =
        Array.init (pods * hosts_per_pod) (fun h ->
            (h / hosts_per_pod, h mod hosts_per_pod))
      in
      let trunks = ref [] in
      for l = pods - 1 downto 0 do
        for s = spine - 1 downto 0 do
          (* a full-duplex fiber pair per (leaf, spine) *)
          trunks :=
            (l, hosts_per_pod + s, pods + s, l)
            :: (pods + s, l, l, hosts_per_pod + s)
            :: !trunks
        done
      done;
      { fb_ports; fb_attach; fb_trunks = Array.of_list !trunks }
  | Custom { switch_ports; hosts; trunks } ->
      let nsw = Array.length switch_ports in
      if nsw = 0 then invalid_arg "Network: Custom needs at least one switch";
      Array.iter
        (fun p ->
          if p <= 0 then invalid_arg "Network: switch port counts must be positive")
        switch_ports;
      if Array.length hosts = 0 then
        invalid_arg "Network: Custom needs at least one host";
      let check_pt what (sw, p) =
        if sw < 0 || sw >= nsw then
          invalid_arg (Printf.sprintf "Network: %s names switch %d" what sw);
        if p < 0 || p >= switch_ports.(sw) then
          invalid_arg
            (Printf.sprintf "Network: %s names port %d of switch %d" what p sw)
      in
      Array.iter (check_pt "host attachment") hosts;
      List.iter
        (fun (sa, pa, sb, pb) ->
          check_pt "trunk endpoint" (sa, pa);
          check_pt "trunk endpoint" (sb, pb))
        trunks;
      let dtrunks =
        Array.of_list
          (List.concat_map
             (fun (sa, pa, sb, pb) -> [ (sa, pa, sb, pb); (sb, pb, sa, pa) ])
             trunks)
      in
      { fb_ports = switch_ports; fb_attach = hosts; fb_trunks = dtrunks }

(* Where a switch output port's link leads. *)
type dest = To_host of int | To_switch of { sw : int; port : int; trunk : int }

(* Flow-observability bookkeeping (DESIGN.md §17), one per installed route
   direction. Kept only while flow accounting or path records are active:
   per-flow PDU sequence numbers and, for path records, the FIFO of
   partially-stamped per-cell journeys (single-source routing makes wire
   order per flow total, so the oldest partial expecting stage [j] is the
   one an EOP cell observed at stage [j] belongs to). *)
type ftrack = {
  ft_src : int;
  ft_dst : int;
  ft_vci : int; (* uplink (sender-side) VCI *)
  ft_rx_vci : int; (* downlink VCI, for disconnect cleanup *)
  ft_stages : int; (* switch stages the route crosses *)
  ft_flow : Flowstat.flow option; (* when flow accounting is active *)
  mutable ft_seq : int; (* next per-flow PDU sequence number *)
  mutable ft_partials : partial list; (* oldest first *)
}

and partial = {
  pa_seq : int;
  pa_injected : Sim.time;
  mutable pa_last : Sim.time; (* previous forwarding (or injection) instant *)
  mutable pa_hops : Pathrec.hop list; (* most-recent-first *)
}

type t = {
  sim : Sim.t;
  hosts : int;
  topo : topology;
  switches : Switch.t array;
  uplinks : Link.t array; (* host -> ingress switch *)
  downlinks : Link.t array; (* egress switch -> host *)
  trunks : Link.t array; (* directed inter-stage fibers *)
  host_attach : (int * int) array; (* host -> (switch, port) *)
  dests : dest option array array; (* switch -> out port -> destination *)
  rx_handlers : (Cell.t -> unit) option array;
  rx_train_handlers :
    (Cell.train -> rx_vci:int -> deliveries:Sim.time array -> unit) option
    array;
  (* VCI allocation, per link direction. VCIs below 32 are reserved as on a
     real ATM fabric; the 16-bit cell-header field bounds them above
     (allocators raise at the ceiling instead of silently aliasing). *)
  next_tx_vci : int array; (* next free VCI on host's uplink *)
  next_rx_vci : int array; (* next free VCI on host's downlink *)
  next_trunk_vci : int array; (* next free VCI per directed trunk *)
  in_flight : int array array;
    (* per switch, per ingress port: real cells accepted onto the ingress
       link but not yet settled into their output link by that switch.
       While any counter along a train's hop chain is nonzero, commits
       refuse — a straggler still crossing that stage would reach the
       next link during the planned window and be queued after entries it
       precedes in wire order (bridge_send appends at the planned tail).
       Cells killed by an ingress loss or fault site never settle and pin
       the counter, which only disables commits through a stage whose
       ingress link refuses plans anyway. *)
  conn_hops : (int * int, (int * int * int) list) Hashtbl.t;
    (* (src host, tx VCI) -> per-stage (switch, in port, in VCI), the
       route-table entries a disconnect must remove *)
  undeliverable : (int, Metrics.Counter.t) Hashtbl.t;
    (* lazily-created per-host counters; see [undeliverable_cell] *)
  obs_on : bool;
    (* flow accounting or path records were active at creation; gates
       every §17 hook so flags-off runs add no per-cell work *)
  flowstat : Flowstat.t option;
  tracks : (int * int, ftrack) Hashtbl.t; (* (src host, tx VCI) *)
  hop_map : (int * int * int, ftrack * int) Hashtbl.t;
    (* (switch, in port, in VCI) -> (track, hop index) *)
  rx_map : (int * int, ftrack) Hashtbl.t; (* (dst host, rx VCI) *)
}

(* Count cells that reach a downlink whose host never attached a receive
   handler instead of dropping them silently (they used to vanish without
   a counter or span mark). The counter family is created lazily so
   fully-wired runs — every experiment attaches an NI per host — keep
   their metric dumps byte-identical. *)
let undeliverable_cell t ~host (cell : Cell.t) =
  let c =
    match Hashtbl.find_opt t.undeliverable host with
    | Some c -> c
    | None ->
        let c =
          Metrics.counter
            ~help:"cells delivered to a downlink with no attached host NI"
            "atm_fabric_undeliverable_total"
            [ ("host", string_of_int host) ]
        in
        Hashtbl.add t.undeliverable host c;
        c
  in
  Metrics.Counter.inc c;
  Span.mark cell.Cell.ctx Span.Dropped

(* --- flow observability hooks (DESIGN.md §17) ------------------------- *)

(* Attach stage [hop]'s entry to the oldest partial journey expecting it
   (|pa_hops| = hop); wire order per flow is total, so FIFO matching is
   exact on a loss-free path. An injected fault that eats a cell inside a
   link leaves a stale partial behind, which can shift attribution of the
   flow's later records — drops decided *at the switch* are matched and
   cleaned up precisely. *)
let rec attach_hop ~now ~hop ~mk = function
  | [] -> []
  | pa :: rest when List.length pa.pa_hops = hop ->
      pa.pa_hops <- mk ~latency:(now - pa.pa_last) :: pa.pa_hops;
      pa.pa_last <- now;
      pa :: rest
  | pa :: rest -> pa :: attach_hop ~now ~hop ~mk rest

let rec remove_expecting ~hop = function
  | [] -> []
  | pa :: rest when List.length pa.pa_hops = hop -> rest
  | pa :: rest -> pa :: remove_expecting ~hop rest

(* Per-cell switch observer: count the cell into its flow's stage-[hop]
   accounting and, for an EOP cell with path records on, stamp the hop
   onto the PDU's partial record at the real forwarding instant. *)
let observe_cell t si (ob : Switch.observed) =
  match
    Hashtbl.find_opt t.hop_map (si, ob.Switch.ob_in_port, ob.Switch.ob_in_vci)
  with
  | None -> ()
  | Some (tr, hop) ->
      (match (t.flowstat, tr.ft_flow) with
      | Some fs, Some fl ->
          if ob.Switch.ob_forwarded then Flowstat.count fs fl ~hop ~cells:1
          else Flowstat.drop fs fl ~hop
      | _ -> ());
      if ob.Switch.ob_eop && Pathrec.enabled () then
        if ob.Switch.ob_forwarded then
          tr.ft_partials <-
            attach_hop ~now:(Sim.now t.sim) ~hop
              ~mk:(fun ~latency ->
                {
                  Pathrec.h_stage = si;
                  h_in_port = ob.Switch.ob_in_port;
                  h_out_port = ob.Switch.ob_out_port;
                  h_queue = ob.Switch.ob_queue;
                  h_latency_ns = latency;
                })
              tr.ft_partials
        else
          (* the PDU's EOP cell died at this stage: it will never be
             delivered, so retire its partial record *)
          tr.ft_partials <- remove_expecting ~hop tr.ft_partials

(* Downlink delivery: the oldest fully-stamped partial is this EOP cell's
   journey; seal it into a settled-at-delivery path record. *)
let observe_delivery t ~host (cell : Cell.t) =
  if cell.Cell.eop && Pathrec.enabled () then
    match Hashtbl.find_opt t.rx_map (host, cell.Cell.vci) with
    | None -> ()
    | Some tr ->
        let rec pop acc = function
          | [] -> None
          | pa :: rest when List.length pa.pa_hops = tr.ft_stages ->
              tr.ft_partials <- List.rev_append acc rest;
              Some pa
          | pa :: rest -> pop (pa :: acc) rest
        in
        (match pop [] tr.ft_partials with
        | None -> ()
        | Some pa ->
            let now = Sim.now t.sim in
            ignore
              (Pathrec.add ~settle:now
                 {
                   Pathrec.r_src = tr.ft_src;
                   r_dst = tr.ft_dst;
                   r_vci = tr.ft_vci;
                   r_seq = pa.pa_seq;
                   r_injected = pa.pa_injected;
                   r_delivered = now;
                   r_hops = Array.of_list (List.rev pa.pa_hops);
                 }))

(* One injector per attachment point — per access-link direction per host,
   per switch output port per stage — so each has its own seed-derived
   stream and its own [site] metric label, and faults on host 0's uplink
   never shift the draws seen by host 1. Switch sites cover every output
   port of every stage (trunk ports included, so interior fabric faults
   need no separate site kind); a single-switch network keeps the
   historical [switch.port.<p>] labels so its seeded streams are
   unchanged. *)
let apply_fault t fspec =
  let open Fault in
  let multi = Array.length t.switches > 1 in
  List.iter
    (function
      | Link_up ->
          Array.iteri
            (fun h link ->
              Link.set_fault link
                (create ~site:(Printf.sprintf "link.up.%d" h) fspec))
            t.uplinks
      | Link_down ->
          Array.iteri
            (fun h link ->
              Link.set_fault link
                (create ~site:(Printf.sprintf "link.down.%d" h) fspec))
            t.downlinks
      | Switch ->
          Array.iteri
            (fun si sw ->
              for p = 0 to Switch.ports sw - 1 do
                let site =
                  if multi then Printf.sprintf "switch.%d.port.%d" si p
                  else Printf.sprintf "switch.port.%d" p
                in
                Switch.set_fault sw ~port:p (create ~site fspec)
              done)
            t.switches
      | Ni -> () (* NI constructors consult [Fault.configured] themselves *))
    fspec.sites

let create_topo sim ~topology config =
  let fb = elaborate topology in
  let hosts = topology_hosts topology in
  let nsw = Array.length fb.fb_ports in
  let multi = nsw > 1 in
  let switches =
    Array.init nsw (fun i ->
        Switch.create sim ~ports:fb.fb_ports.(i) ~transit:config.switch_transit
          ~output_queue_capacity:config.switch_queue_capacity
          ?id:(if multi then Some i else None)
          ())
  in
  let mk_link ?queue_capacity labels =
    Link.create sim ?queue_capacity ~metrics_labels:labels
      ~bandwidth_mbps:config.link_bandwidth_mbps
      ~propagation:config.link_propagation ()
  in
  let host_link ~dir h = [ ("dir", dir); ("host", string_of_int h) ] in
  let uplinks =
    Array.init hosts (fun h ->
        mk_link ~queue_capacity:config.host_tx_fifo (host_link ~dir:"up" h))
  in
  let downlinks = Array.init hosts (fun h -> mk_link (host_link ~dir:"down" h)) in
  let trunks =
    Array.map
      (fun (sa, pa, sb, pb) ->
        mk_link
          [
            ("dir", "trunk");
            ("link", Printf.sprintf "s%d.p%d-s%d.p%d" sa pa sb pb);
          ])
      fb.fb_trunks
  in
  (* Wire the fabric map, refusing port double-use. *)
  let dests = Array.map (fun p -> Array.make p None) fb.fb_ports in
  let claim sw port d =
    if dests.(sw).(port) <> None then
      invalid_arg
        (Printf.sprintf "Network: port %d of switch %d attached twice" port sw);
    dests.(sw).(port) <- Some d
  in
  Array.iteri (fun h (sw, port) -> claim sw port (To_host h)) fb.fb_attach;
  Array.iteri
    (fun k (sa, pa, sb, pb) -> claim sa pa (To_switch { sw = sb; port = pb; trunk = k }))
    fb.fb_trunks;
  let t =
    {
      sim;
      hosts;
      topo = topology;
      switches;
      uplinks;
      downlinks;
      trunks;
      host_attach = fb.fb_attach;
      dests;
      rx_handlers = Array.make hosts None;
      rx_train_handlers = Array.make hosts None;
      next_tx_vci = Array.make hosts 32;
      next_rx_vci = Array.make hosts 32;
      next_trunk_vci = Array.make (Array.length fb.fb_trunks) 32;
      in_flight = Array.map (fun p -> Array.make p 0) fb.fb_ports;
      conn_hops = Hashtbl.create 64;
      undeliverable = Hashtbl.create 8;
      obs_on = Flowstat.active () || Pathrec.enabled ();
      flowstat = (if Flowstat.active () then Some (Flowstat.create ()) else None);
      tracks = Hashtbl.create 64;
      hop_map = Hashtbl.create 64;
      rx_map = Hashtbl.create 64;
    }
  in
  if t.obs_on then begin
    (* settle provisional path records no later than any registry read *)
    Metrics.register_flush (fun () -> Pathrec.fold ~now:(Sim.now sim));
    Array.iteri
      (fun si sw -> Switch.set_observer sw (fun ob -> observe_cell t si ob))
      switches
  end;
  Array.iteri
    (fun si sw ->
      Switch.set_on_settled sw (fun ~in_port ->
          if t.in_flight.(si).(in_port) > 0 then
            t.in_flight.(si).(in_port) <- t.in_flight.(si).(in_port) - 1))
    switches;
  for h = 0 to hosts - 1 do
    let sw, port = t.host_attach.(h) in
    Link.set_receiver uplinks.(h) (fun cell ->
        Switch.input switches.(sw) ~port cell);
    Link.set_on_accept uplinks.(h) (fun () ->
        t.in_flight.(sw).(port) <- t.in_flight.(sw).(port) + 1);
    Switch.attach_output switches.(sw) ~port downlinks.(h);
    Link.set_receiver downlinks.(h) (fun cell ->
        if t.obs_on then observe_delivery t ~host:h cell;
        match t.rx_handlers.(h) with
        | Some f -> f cell
        | None -> undeliverable_cell t ~host:h cell)
  done;
  Array.iteri
    (fun k (sa, pa, sb, pb) ->
      Switch.attach_output switches.(sa) ~port:pa trunks.(k);
      Link.set_receiver trunks.(k) (fun cell ->
          Switch.input switches.(sb) ~port:pb cell);
      Link.set_on_accept trunks.(k) (fun () ->
          t.in_flight.(sb).(pb) <- t.in_flight.(sb).(pb) + 1))
    fb.fb_trunks;
  (match Fault.configured () with
  | Some fspec -> apply_fault t fspec
  | None -> ());
  t

let create sim ~hosts config = create_topo sim ~topology:(Single hosts) config
let sim t = t.sim
let host_count t = t.hosts
let topology t = t.topo

let check_host t h =
  if h < 0 || h >= t.hosts then invalid_arg "Network: host out of range"

let attach_rx t ~host f =
  check_host t host;
  t.rx_handlers.(host) <- Some f

let attach_rx_train t ~host f =
  check_host t host;
  t.rx_train_handlers.(host) <- Some f

(* pcap tap at the injection point: every cell that enters the fabric is
   captured as a LINKTYPE_SUNATM record. *)
let capture_cell ~host cell =
  if Pcapng.enabled () then begin
    let ifc =
      Pcapng.iface
        ~name:(Printf.sprintf "atm%d" host)
        ~linktype:Pcapng.linktype_sunatm
    in
    Pcapng.capture ~iface:ifc (Cell.sunatm_bytes cell)
  end

let send t ~host cell =
  check_host t host;
  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Injected;
  capture_cell ~host cell;
  (* the uplink's on_accept hook counts the cell into the ingress port's
     in-flight gate *)
  let ok = Link.send t.uplinks.(host) cell in
  if t.obs_on then begin
    match Hashtbl.find_opt t.tracks (host, cell.Cell.vci) with
    | None -> ()
    | Some tr ->
        if not ok then (
          (* the host TX FIFO refused the cell bound for stage 0 *)
          match (t.flowstat, tr.ft_flow) with
          | Some fs, Some fl -> Flowstat.drop fs fl ~hop:0
          | _ -> ())
        else if cell.Cell.eop && Pathrec.enabled () then begin
          let seq = tr.ft_seq in
          tr.ft_seq <- seq + 1;
          let now = Sim.now t.sim in
          tr.ft_partials <-
            tr.ft_partials
            @ [ { pa_seq = seq; pa_injected = now; pa_last = now; pa_hops = [] } ]
        end
  end;
  ok

let in_flight t ~host =
  check_host t host;
  let sw, port = t.host_attach.(host) in
  t.in_flight.(sw).(port)

(* Has the per-cell backlog from [host] toward [vci]'s destination flushed
   out of the fabric? True once every cell accepted at each stage of the
   hop chain has settled through its switch AND every link along the route
   has no real cell queued or on the wire — exactly the transient
   conditions that make a train commit refuse. When the route itself
   cannot train (no route, multi-source port, fault site) there is nothing
   to wait for. *)
let path_clear t ~host ~vci =
  check_host t host;
  let rec clear sw in_port in_vci =
    t.in_flight.(sw).(in_port) = 0
    &&
    match Switch.plan_route t.switches.(sw) ~in_port ~in_vci with
    | None -> true
    | Some (out_port, out_vci, link) -> (
        match t.dests.(sw).(out_port) with
        | Some (To_switch { sw = nsw; port = nport; trunk = _ }) ->
            Link.quiet link && clear nsw nport out_vci
        | Some (To_host _) | None -> Link.quiet link)
  in
  let sw, port = t.host_attach.(host) in
  clear sw port vci

let uplink t ~host =
  check_host t host;
  t.uplinks.(host)

let downlink t ~host =
  check_host t host;
  t.downlinks.(host)

let switch_count t = Array.length t.switches

let switch_at t i =
  if i < 0 || i >= Array.length t.switches then
    invalid_arg "Network: switch index out of range";
  t.switches.(i)

let switch t = t.switches.(0)

let host_switch t ~host =
  check_host t host;
  fst t.host_attach.(host)

let flowstat t = t.flowstat

let note_retx t ~host ~vci =
  match t.flowstat with
  | Some fs -> Flowstat.note_retx fs ~src:host ~vci
  | None -> ()

let check_sw t sw =
  if sw < 0 || sw >= Array.length t.switches then
    invalid_arg "Network: switch index out of range"

let output_link t ~sw ~port =
  check_sw t sw;
  if port < 0 || port >= Array.length t.dests.(sw) then None
  else
    match t.dests.(sw).(port) with
    | None -> None
    | Some (To_host h) -> Some t.downlinks.(h)
    | Some (To_switch { trunk; _ }) -> Some t.trunks.(trunk)

let port_dest t ~sw ~port =
  check_sw t sw;
  if port < 0 || port >= Array.length t.dests.(sw) then None
  else
    match t.dests.(sw).(port) with
    | None -> None
    | Some (To_host h) -> Some (`Host h)
    | Some (To_switch { sw = s; _ }) -> Some (`Switch s)

(* --- train fast path (DESIGN.md §14, multi-stage §16) ----------------- *)

(* Default receive expansion for hosts whose NI is not train-aware: one
   chained event per cell, each re-checking the train's live length so an
   upstream truncation simply stops the chain (the per-cell path
   re-delivers the cut cells for real). *)
let rec expand_rx t ~dest ~rx_vci ~train ~deliveries i =
  if i < Cell.Train.length train then begin
    let cell = Cell.with_vci (Cell.Train.cell train i) rx_vci in
    (match t.rx_handlers.(dest) with
    | Some f -> f cell
    | None -> undeliverable_cell t ~host:dest cell);
    if i + 1 < Cell.Train.length train then
      Sim.schedule_drop ~label:"net.rx_train" t.sim
        ~delay:(deliveries.(i + 1) - Sim.now t.sim)
        (fun () -> expand_rx t ~dest ~rx_vci ~train ~deliveries (i + 1))
  end

(* One stage of a planned multi-hop journey: the switch that forwards the
   train at [st_arrivals] and the plan on its output link. *)
type stage = {
  st_sw : int;
  st_in_port : int;
  st_out_port : int;
  st_out_vci : int;
  st_link : Link.t;
  st_transit : Sim.time;
  st_arrivals : Sim.time array;
  st_plan : Link.plan;
}

(* Plan a whole train's journey across the fabric analytically: sender-paced
   chain on the uplink, then per stage a fabric transit and an arrival-fed
   plan on the stage's output link (trunk or downlink), walking the full
   hop chain. All-or-nothing — any refusal (legacy traffic in flight at any
   stage, a loss or fault site, a queue at capacity, a same-instant tie)
   returns [None] and the caller stays on the per-cell path. On success
   each element holds planned state that folds lazily into its counters, a
   single event hands the train to the receiving host at the first cell's
   delivery instant, and a truncation listener un-plans everything past an
   interference point at every stage. The owner must arrange for
   [on_interfere] to split its chain (it is installed as the uplink's
   interfere hook; clear it when the chain ends). *)
let commit_train_gen t ~host ~train ~plan_uplink ~on_interfere =
  check_host t host;
  let n = Cell.Train.length train in
  let sw0, port0 = t.host_attach.(host) in
  if n = 0 || t.in_flight.(sw0).(port0) > 0 then None
  else
    (* Resolve the hop chain first: the route must exist at every stage
       (single-source output ports only) and every ingress port along it
       must have no un-settled real cells. *)
    let rec resolve sw in_port in_vci acc =
      match Switch.plan_route t.switches.(sw) ~in_port ~in_vci with
      | None -> None
      | Some (out_port, out_vci, link) -> (
          let hop = (sw, in_port, out_port, out_vci, link) in
          match t.dests.(sw).(out_port) with
          | None -> None
          | Some (To_host dst) -> Some (List.rev (hop :: acc), dst)
          | Some (To_switch { sw = nsw; port = nport; trunk = _ }) ->
              if t.in_flight.(nsw).(nport) > 0 then None
              else resolve nsw nport out_vci (hop :: acc))
    in
    match resolve sw0 port0 (Cell.Train.vci train) [] with
    | None -> None
    | Some (hops, dst) -> (
        let uplink = t.uplinks.(host) in
        match plan_uplink uplink with
        | None -> None
        | Some up_plan -> (
            (* Chain the per-stage plans: cell i reaches stage j's switch
               one hop latency after leaving the previous link, is
               forwarded [transit] later, and feeds the stage's output
               link. *)
            let rec plan_stages prev_link prev_starts hops acc =
              match hops with
              | [] -> Some (List.rev acc)
              | (sw, in_port, out_port, out_vci, link) :: rest -> (
                  let transit = Switch.transit t.switches.(sw) in
                  let lat =
                    Link.cell_time prev_link + Link.propagation prev_link
                  in
                  let arrivals =
                    Array.map (fun s -> s + lat + transit) prev_starts
                  in
                  match
                    Link.plan_feed link ~arrivals ~sched_lead:transit
                      ~refuse_occ:
                        (Switch.output_queue_capacity t.switches.(sw))
                  with
                  | None -> None
                  | Some pl ->
                      plan_stages link (Link.plan_starts pl) rest
                        ({
                           st_sw = sw;
                           st_in_port = in_port;
                           st_out_port = out_port;
                           st_out_vci = out_vci;
                           st_link = link;
                           st_transit = transit;
                           st_arrivals = arrivals;
                           st_plan = pl;
                         }
                        :: acc))
            in
            match
              plan_stages uplink (Link.plan_starts up_plan) hops []
            with
            | None -> None
            | Some stages ->
                let up_hop = Link.commit_plan uplink up_plan ~fold_sent:true in
                let commits =
                  List.map
                    (fun st ->
                      let lhop =
                        Link.commit_plan st.st_link st.st_plan ~fold_sent:true
                      in
                      let srec =
                        Switch.commit_plan t.switches.(st.st_sw)
                          ~out_port:st.st_out_port ~times:st.st_arrivals
                          ~hw:(Link.plan_queue_after st.st_plan)
                      in
                      (st, lhop, srec))
                    stages
                in
                let final = List.nth stages (List.length stages - 1) in
                let up_accepts = Link.plan_accepts up_plan in
                let up_starts = Link.plan_starts up_plan in
                let down_starts = Link.plan_starts final.st_plan in
                let down_lat =
                  Link.cell_time final.st_link + Link.propagation final.st_link
                in
                (* Flow accounting and path records (DESIGN.md §17): a
                   committed train is loss-free at every stage, so the
                   whole train folds into per-hop flow counters in
                   O(stages); per-PDU path records are synthesized from
                   the plan arrays at the exact instants the per-cell
                   path would stamp, provisional until the EOP cell's
                   planned uplink acceptance passes. *)
                let track =
                  if t.obs_on then
                    Hashtbl.find_opt t.tracks (host, Cell.Train.vci train)
                  else None
                in
                let counted = ref 0 in
                (match track with
                | Some tr -> (
                    match (t.flowstat, tr.ft_flow) with
                    | Some fs, Some fl ->
                        counted := n;
                        for j = 0 to tr.ft_stages - 1 do
                          Flowstat.count fs fl ~hop:j ~cells:n
                        done
                    | _ -> ())
                | None -> ());
                let path_recs = ref [] in
                let synth_hi = ref 0 in
                (match track with
                | Some tr when Pathrec.enabled () ->
                    let stage_arr = Array.of_list stages in
                    let queue_after =
                      Array.map
                        (fun st -> Link.plan_queue_after st.st_plan)
                        stage_arr
                    in
                    for i = 0 to n - 1 do
                      if (Cell.Train.cell train i).Cell.eop then begin
                        let seq = tr.ft_seq in
                        tr.ft_seq <- seq + 1;
                        let injected = up_accepts.(i) in
                        let hops =
                          Array.mapi
                            (fun j st ->
                              let prev =
                                if j = 0 then injected
                                else stage_arr.(j - 1).st_arrivals.(i)
                              in
                              {
                                Pathrec.h_stage = st.st_sw;
                                h_in_port = st.st_in_port;
                                h_out_port = st.st_out_port;
                                (* depth found at arrival = depth just
                                   after acceptance minus the cell
                                   itself, floored when it went straight
                                   to the wire *)
                                h_queue =
                                  max 0
                                    (int_of_float queue_after.(j).(i) - 1);
                                h_latency_ns = st.st_arrivals.(i) - prev;
                              })
                            stage_arr
                        in
                        let r =
                          Pathrec.add ~settle:up_accepts.(i)
                            {
                              Pathrec.r_src = tr.ft_src;
                              r_dst = tr.ft_dst;
                              r_vci = tr.ft_vci;
                              r_seq = seq;
                              r_injected = injected;
                              r_delivered = down_starts.(i) + down_lat;
                              r_hops = hops;
                            }
                        in
                        path_recs := (i, seq, r) :: !path_recs
                      end
                    done;
                    synth_hi := tr.ft_seq
                | _ -> ());
                (* Train-granular observers (DESIGN.md §15): the plan
                   arrays give every milestone's exact instant, so EOP
                   span marks are stamped at the same values the
                   per-cell path would produce. Marks replace, so the
                   per-cell values are those of the LAST stage the cell
                   crosses — synthesized from [final]. *)
                let synth_spans =
                  Span.enabled ()
                  && Span.granularity () = Granularity.Per_train
                in
                (* (index, ctx) of each EOP cell, captured now: the
                   truncation listener runs after [live] has shrunk, so
                   cut cells are no longer reachable via [Train.cell] *)
                let eop_ctxs = ref [] in
                if synth_spans then
                  for i = 0 to n - 1 do
                    let cell = Cell.Train.cell train i in
                    if cell.Cell.eop then begin
                      let ctx = cell.Cell.ctx in
                      eop_ctxs := (i, ctx) :: !eop_ctxs;
                      Span.mark_at ctx Span.Injected ~t:up_accepts.(i);
                      Span.mark_at ctx Span.Switch_in
                        ~t:(final.st_arrivals.(i) - final.st_transit);
                      Span.mark_at ctx Span.Switch_out ~t:final.st_arrivals.(i);
                      Span.mark_at ctx Span.Link_tx ~t:down_starts.(i);
                      Span.mark_at ctx Span.Rx_cell
                        ~t:(down_starts.(i) + down_lat)
                    end
                  done;
                let slices =
                  if not (Trace.train_slices_wanted ()) then None
                  else
                    let up_cell = Link.cell_time uplink in
                    let args =
                      [
                        ("vci", Trace.Int (Cell.Train.vci train));
                        ("cells", Trace.Int n);
                      ]
                    in
                    let sl name ~tid ~ts ~fin =
                      Trace.train_slice Trace.Cell ~tid ~args ~ts
                        ~dur:(fin - ts) name
                    in
                    let s_up =
                      sl "train.uplink" ~tid:host ~ts:up_starts.(0)
                        ~fin:(up_starts.(n - 1) + up_cell)
                    in
                    (* one (switch, link) slice pair per stage: interior
                       stages are "train.trunk", the egress stage keeps
                       the historical "train.downlink" name *)
                    let per_stage =
                      List.map
                        (fun st ->
                          let starts = Link.plan_starts st.st_plan in
                          let cell = Link.cell_time st.st_link in
                          let terminal =
                            match t.dests.(st.st_sw).(st.st_out_port) with
                            | Some (To_host _) -> true
                            | _ -> false
                          in
                          let s_sw =
                            sl "train.switch" ~tid:st.st_out_port
                              ~ts:(st.st_arrivals.(0) - st.st_transit)
                              ~fin:st.st_arrivals.(n - 1)
                          in
                          let s_link =
                            sl
                              (if terminal then "train.downlink"
                               else "train.trunk")
                              ~tid:st.st_out_port ~ts:starts.(0)
                              ~fin:(starts.(n - 1) + cell)
                          in
                          (st, cell, s_sw, s_link))
                        stages
                    in
                    Some (up_cell, s_up, per_stage)
                in
                Cell.Train.on_truncate train (fun ~keep ~now ->
                    Link.truncate_hop uplink up_hop ~keep ~now;
                    List.iter
                      (fun (st, lhop, srec) ->
                        Switch.truncate_plan t.switches.(st.st_sw) srec ~keep;
                        Link.truncate_hop st.st_link lhop ~keep ~now)
                      commits;
                    (* un-count the cut suffix (the per-cell re-run
                       re-counts it) and discard its provisional path
                       records, handing their sequence numbers back as
                       long as no later injection consumed one *)
                    (match track with
                    | Some tr ->
                        (match (t.flowstat, tr.ft_flow) with
                        | Some fs, Some fl when !counted > keep ->
                            let cut = !counted - keep in
                            for j = 0 to tr.ft_stages - 1 do
                              Flowstat.count fs fl ~hop:j ~cells:(-cut)
                            done;
                            counted := keep
                        | _ -> ());
                        let min_seq = ref max_int in
                        List.iter
                          (fun (i, seq, r) ->
                            if i >= keep then begin
                              Pathrec.discard r;
                              if seq < !min_seq then min_seq := seq
                            end)
                          !path_recs;
                        if !min_seq < max_int && tr.ft_seq = !synth_hi then begin
                          tr.ft_seq <- !min_seq;
                          synth_hi := !min_seq
                        end
                    | None -> ());
                    (* cut cells re-run the per-cell path, which
                       re-stamps their marks for real *)
                    List.iter
                      (fun (i, ctx) ->
                        if i >= keep then begin
                          Span.unmark ctx Span.Injected;
                          Span.unmark ctx Span.Switch_in;
                          Span.unmark ctx Span.Switch_out;
                          Span.unmark ctx Span.Link_tx;
                          Span.unmark ctx Span.Rx_cell
                        end)
                      !eop_ctxs;
                    match slices with
                    | None -> ()
                    | Some (up_cell, s_up, per_stage) ->
                        if keep = 0 then begin
                          Trace.drop_slice s_up;
                          List.iter
                            (fun (_, _, s_sw, s_link) ->
                              Trace.drop_slice s_sw;
                              Trace.drop_slice s_link)
                            per_stage
                        end
                        else begin
                          Trace.set_slice s_up ~ts:up_starts.(0)
                            ~dur:
                              (up_starts.(keep - 1) + up_cell
                             - up_starts.(0));
                          List.iter
                            (fun (st, cell, s_sw, s_link) ->
                              let sw_ts =
                                st.st_arrivals.(0) - st.st_transit
                              in
                              Trace.set_slice s_sw ~ts:sw_ts
                                ~dur:(st.st_arrivals.(keep - 1) - sw_ts);
                              let starts = Link.plan_starts st.st_plan in
                              Trace.set_slice s_link ~ts:starts.(0)
                                ~dur:
                                  (starts.(keep - 1) + cell - starts.(0)))
                            per_stage
                        end);
                Link.set_interfere uplink on_interfere;
                let deliveries =
                  Array.map (fun s -> s + down_lat) down_starts
                in
                Sim.schedule_drop ~label:"net.rx_train" t.sim
                  ~delay:(deliveries.(0) - Sim.now t.sim)
                  (fun () ->
                    match t.rx_train_handlers.(dst) with
                    | Some f when Cell.Train.length train > 0 ->
                        f train ~rx_vci:final.st_out_vci ~deliveries
                    | _ ->
                        expand_rx t ~dest:dst ~rx_vci:final.st_out_vci ~train
                          ~deliveries 0);
                Some (Link.plan_accepts up_plan)))

let commit_train t ~host ~train ~first_attempt ~gap ~on_interfere =
  commit_train_gen t ~host ~train ~on_interfere ~plan_uplink:(fun uplink ->
      Link.plan_chain uplink ~n:(Cell.Train.length train) ~first_attempt ~gap)

let commit_train_feed t ~host ~train ~arrivals ~sched_lead ~on_interfere =
  commit_train_gen t ~host ~train ~on_interfere ~plan_uplink:(fun uplink ->
      Link.plan_feed uplink ~arrivals ~sched_lead ~refuse_occ:max_int)

(* --- signalling: route discovery and VCI allocation ------------------- *)

type duplex = { tx_vci : int; rx_vci : int }
type conn = { host_a : int; host_b : int; side_a : duplex; side_b : duplex }

(* The cell-header VCI field is 16 bits; allocators used to increment
   forever and silently alias past 65535 (multi-hop fabrics multiply
   per-trunk allocations, making overflow reachable). Refuse loudly. *)
let vci_ceiling = 0x1_0000

let alloc_vci what arr i =
  let v = arr.(i) in
  if v >= vci_ceiling then
    invalid_arg
      (Printf.sprintf
         "Network: %s VCI space exhausted (16-bit VCIs, 32..65535)" what);
  arr.(i) <- v + 1;
  v

(* Deterministic route of (switch, ingress port) hops from [src]'s ingress
   switch to [dst]'s egress switch. Clos picks the spine by a fixed hash of
   the endpoints (ECMP without randomness); Custom breadth-first-searches
   the trunk graph with lowest-index tie-breaks. *)
let route_hops t ~src ~dst =
  let asw, aport = t.host_attach.(src) in
  let bsw, _ = t.host_attach.(dst) in
  if asw = bsw then [ (asw, aport) ]
  else
    match t.topo with
    | Single _ -> assert false (* one switch: asw = bsw *)
    | Clos c ->
        let s = (src + dst) mod c.spine in
        [ (asw, aport); (c.pods + s, asw); (bsw, c.hosts_per_pod + s) ]
    | Custom _ ->
        (* predecessor-tracking BFS over the directed trunk map *)
        let nsw = Array.length t.switches in
        let prev = Array.make nsw None in
        let seen = Array.make nsw false in
        seen.(asw) <- true;
        let q = Queue.create () in
        Queue.add asw q;
        while (not seen.(bsw)) && not (Queue.is_empty q) do
          let sw = Queue.pop q in
          Array.iter
            (function
              | Some (To_switch { sw = nsw'; port; trunk = _ })
                when not seen.(nsw') ->
                  seen.(nsw') <- true;
                  prev.(nsw') <- Some (sw, port);
                  Queue.add nsw' q
              | _ -> ())
            t.dests.(sw)
        done;
        if not seen.(bsw) then
          invalid_arg
            (Printf.sprintf "Network.connect: no path between hosts %d and %d"
               src dst);
        let rec unwind sw acc =
          match prev.(sw) with
          | None -> (asw, aport) :: acc
          | Some (psw, in_port) -> unwind psw ((sw, in_port) :: acc)
        in
        unwind bsw []

(* Output port of [sw] whose link leads to ingress [next_port] of
   [next_sw], with the directed trunk index for VCI allocation. *)
let trunk_toward t sw ~next_sw ~next_port =
  let d = t.dests.(sw) in
  let rec find p =
    if p >= Array.length d then
      invalid_arg "Network: no trunk toward the next hop"
    else
      match d.(p) with
      | Some (To_switch { sw = s; port; trunk })
        when s = next_sw && port = next_port ->
          (p, trunk)
      | _ -> find (p + 1)
  in
  find 0

(* Install one direction of a connection: allocate the sender's uplink VCI,
   remap it through a fresh VCI on each trunk of the hop chain, and land on
   a fresh VCI on the receiver's downlink. Records the per-stage route-table
   keys for disconnect. *)
let install_route t ~src ~dst =
  let hops = route_hops t ~src ~dst in
  let tx_vci = alloc_vci "uplink" t.next_tx_vci src in
  let rec walk hops in_vci acc =
    match hops with
    | [] -> assert false
    | [ (sw, in_port) ] ->
        let _, out_port = t.host_attach.(dst) in
        let rx_vci = alloc_vci "downlink" t.next_rx_vci dst in
        Switch.add_route t.switches.(sw) ~in_port ~in_vci ~out_port
          ~out_vci:rx_vci;
        (List.rev ((sw, in_port, in_vci) :: acc), rx_vci)
    | (sw, in_port) :: ((next_sw, next_port) :: _ as rest) ->
        let out_port, trunk = trunk_toward t sw ~next_sw ~next_port in
        let out_vci = alloc_vci "trunk" t.next_trunk_vci trunk in
        Switch.add_route t.switches.(sw) ~in_port ~in_vci ~out_port ~out_vci;
        walk rest out_vci ((sw, in_port, in_vci) :: acc)
  in
  let stages, rx_vci = walk hops tx_vci [] in
  Hashtbl.replace t.conn_hops (src, tx_vci) stages;
  if t.obs_on then begin
    let vcis = Array.of_list (List.map (fun (_, _, v) -> v) stages) in
    let fl =
      Option.map (fun fs -> Flowstat.register fs ~src ~dst ~vcis) t.flowstat
    in
    let tr =
      {
        ft_src = src;
        ft_dst = dst;
        ft_vci = tx_vci;
        ft_rx_vci = rx_vci;
        ft_stages = Array.length vcis;
        ft_flow = fl;
        ft_seq = 0;
        ft_partials = [];
      }
    in
    Hashtbl.replace t.tracks (src, tx_vci) tr;
    List.iteri
      (fun j (sw, in_port, in_vci) ->
        Hashtbl.replace t.hop_map (sw, in_port, in_vci) (tr, j))
      stages;
    Hashtbl.replace t.rx_map (dst, rx_vci) tr
  end;
  (tx_vci, rx_vci)

let connect t ~a ~b =
  check_host t a;
  check_host t b;
  if a = b then invalid_arg "Network.connect: a host cannot connect to itself";
  let vci_a_out, vci_b_in = install_route t ~src:a ~dst:b in
  let vci_b_out, vci_a_in = install_route t ~src:b ~dst:a in
  {
    host_a = a;
    host_b = b;
    side_a = { tx_vci = vci_a_out; rx_vci = vci_a_in };
    side_b = { tx_vci = vci_b_out; rx_vci = vci_b_in };
  }

let disconnect t conn =
  let side host vci =
    (match Hashtbl.find_opt t.conn_hops (host, vci) with
    | Some stages ->
        List.iter
          (fun (sw, in_port, in_vci) ->
            Switch.remove_route t.switches.(sw) ~in_port ~in_vci;
            Hashtbl.remove t.hop_map (sw, in_port, in_vci))
          stages;
        Hashtbl.remove t.conn_hops (host, vci)
    | None ->
        let sw, port = t.host_attach.(host) in
        Switch.remove_route t.switches.(sw) ~in_port:port ~in_vci:vci);
    match Hashtbl.find_opt t.tracks (host, vci) with
    | Some tr ->
        Hashtbl.remove t.rx_map (tr.ft_dst, tr.ft_rx_vci);
        Hashtbl.remove t.tracks (host, vci)
    | None -> ()
  in
  side conn.host_a conn.side_a.tx_vci;
  side conn.host_b conn.side_b.tx_vci
