open Engine

(* Planned (analytic) occupancy of the wire by one train or bridged cell on
   the fast path (DESIGN.md §14): per-cell acceptance and serialization-start
   instants computed up front, with drop / queue-high-water side effects kept
   as time-stamped entries that lazily fold into the real counters no later
   than any observer reads them. [h_live] shrinks when the owning train is
   truncated back to the per-cell path. *)
type hop = {
  mutable h_live : int;  (* cells still riding this plan *)
  h_accepts : Sim.time array;  (* p_i: instant cell i enters the queue *)
  h_starts : Sim.time array;  (* s_i: instant cell i starts serializing *)
  h_fold_sent : bool;
    (* trains fold sent/delivery analytically; bridged cells keep a real
       delivery event that does its own accounting *)
  mutable h_drops : Sim.time array;  (* refused-attempt instants, ascending *)
  mutable h_ndrops : int;
  mutable h_hw_t : Sim.time array;  (* queue high-water marks at acceptance *)
  mutable h_hw_v : float array;
  mutable h_nhw : int;
  (* fold cursors: first entry of each kind not yet applied *)
  mutable f_busy : int;
  mutable f_sent : int;
  mutable f_drop : int;
  mutable f_hw : int;
}

type t = {
  sim : Sim.t;
  cell_time : Sim.time;
  propagation : Sim.time;
  queue_capacity : int;
  queue : Cell.t Queue.t;
  mutable transmitting : bool;
  mutable receiver : (Cell.t -> unit) option;
  mutable loss : (Rng.t * float) option;
  mutable fault : Fault.t option;
  mutable sent : int;
  mutable dropped : int;
  mutable busy_ns : int; (* cumulative serialization time (utilization) *)
  m_sent : Metrics.Counter.t;
  m_dropped : Metrics.Counter.t;
  m_queue_hw : Metrics.Gauge.t;
  (* train fast path *)
  mutable hops : hop list;  (* oldest first; retired once fully folded *)
  mutable a_tail : Sim.time;  (* wire busy-until including planned cells *)
  mutable on_interfere : (unit -> unit) option;
    (* splits the chain that owns pending uplink acceptances before a
       per-cell send threads through the analytic state *)
  mutable on_accept : (unit -> unit) option;
    (* fired for every real cell accepted by [send] (legacy or bridged),
       never for planned train commits — the network's per-ingress
       in-flight gate counts real cells in with it *)
}

(* Apply every planned side effect with a timestamp <= [now] — the same
   boundary Sim.run uses for firing events at a limit — and retire hops whose
   entries are exhausted. Called from the Metrics flush hook (so dumps are
   exact), from the counter accessors, and before analytic queries. *)
let hop_done t now h =
  h.f_busy >= h.h_live
  && (not h.h_fold_sent || h.f_sent >= h.h_live)
  && h.f_drop >= h.h_ndrops
  && h.f_hw >= h.h_nhw
  (* even with every side effect folded, the last cell occupies the wire
     until start + cell_time: retiring earlier would let a legacy send
     overlap it (send only consults [a_tail] while hops are live) *)
  && (h.h_live = 0 || h.h_starts.(h.h_live - 1) + t.cell_time <= now)

let fold_hop t now h =
  while h.f_drop < h.h_ndrops && h.h_drops.(h.f_drop) <= now do
    t.dropped <- t.dropped + 1;
    Metrics.Counter.inc t.m_dropped;
    h.f_drop <- h.f_drop + 1
  done;
  while h.f_busy < h.h_live && h.h_starts.(h.f_busy) <= now do
    t.busy_ns <- t.busy_ns + t.cell_time;
    h.f_busy <- h.f_busy + 1
  done;
  if h.h_fold_sent then
    while
      h.f_sent < h.h_live && h.h_starts.(h.f_sent) + t.cell_time <= now
    do
      t.sent <- t.sent + 1;
      Metrics.Counter.inc t.m_sent;
      h.f_sent <- h.f_sent + 1
    done;
  while h.f_hw < h.h_nhw && h.h_hw_t.(h.f_hw) <= now do
    Metrics.Gauge.set_max t.m_queue_hw h.h_hw_v.(h.f_hw);
    h.f_hw <- h.f_hw + 1
  done

let fold_to t now =
  if t.hops <> [] then begin
    List.iter (fold_hop t now) t.hops;
    if List.exists (hop_done t now) t.hops then
      t.hops <- List.filter (fun h -> not (hop_done t now h)) t.hops
  end

(* #cells of [h] in the transmit queue at [at] under completion-first
   semantics: accepted at or before [at], not yet started (a start at
   exactly [at] counts as started — its pop event fires before any same-time
   attempt that could observe it on the fast path's planned links). *)
(* #entries among [arr.(0..n-1)] (monotone non-decreasing) that are <= [x];
   the timeseries sampler hits these once per boundary, so O(log n) per
   hop matters against multi-thousand-cell trains *)
let count_le arr n x =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let hop_queued h ~at =
  (* accepts(i) <= starts(i), so the started set is a subset of the
     accepted set and the difference of counts is the queue depth *)
  count_le h.h_accepts h.h_live at - count_le h.h_starts h.h_live at

let analytic_queued t ~at =
  List.fold_left (fun acc h -> acc + hop_queued h ~at) 0 t.hops

(* State *at* a past instant [at] (a timeseries sample boundary between
   the previous event and the one about to fire). Real mutations all
   happened at or before the previous event, so the live fields are
   already exact at [at]; only planned (analytic) state needs evaluating
   against [at] instead of now. Safe against earlier folds: a hop only
   retires once its last start + cell_time has passed the fold time,
   which is <= [at] for every boundary the sampler visits. *)
let queue_length_at t ~at =
  let n = Queue.length t.queue in
  if t.hops = [] then n else n + analytic_queued t ~at

(* Cumulative serialization ns as of [at]: the per-cell path adds a full
   cell_time at each serialization start, so this counts starts <= [at].
   [t.busy_ns] holds real increments plus whatever the fold cursors have
   applied; correct it per planned cell by whether its start has passed
   [at], independent of where the cursor happens to be. *)
let busy_ns_at t ~at =
  (* the folded set is the prefix [0, f_busy) and the started set the
     prefix of starts <= [at]; the correction is the signed difference of
     the two prefix lengths *)
  let corr = ref 0 in
  List.iter
    (fun h -> corr := !corr + (count_le h.h_starts h.h_live at - h.f_busy))
    t.hops;
  t.busy_ns + (!corr * t.cell_time)

let create sim ?(queue_capacity = max_int) ?(metrics_labels = []) ~bandwidth_mbps
    ~propagation () =
  if bandwidth_mbps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  let bits = float_of_int (Cell.on_wire_size * 8) in
  let cell_time = int_of_float (Float.round (bits /. bandwidth_mbps *. 1_000.)) in
  let t =
    {
      sim;
      cell_time;
      propagation;
      queue_capacity;
      queue = Queue.create ();
      transmitting = false;
      receiver = None;
      loss = None;
      fault = None;
      sent = 0;
      dropped = 0;
      busy_ns = 0;
      m_sent =
        Metrics.counter ~help:"cells delivered to the far end of a link"
          "atm_link_cells_sent_total" metrics_labels;
      m_dropped =
        Metrics.counter
          ~help:
            "cells lost on a link (transmit-queue overflow or injected loss)"
          "atm_link_cells_dropped_total" metrics_labels;
      m_queue_hw =
        Metrics.gauge ~help:"deepest a link transmit queue has ever been"
          "atm_link_queue_high_water" metrics_labels;
      hops = [];
      a_tail = 0;
      on_interfere = None;
      on_accept = None;
    }
  in
  Metrics.register_flush (fun () -> fold_to t (Sim.now sim));
  (* sample boundaries arrive in cumulative time; link state is local *)
  let local at = at - (Sim.global_now sim - Sim.now sim) in
  Timeseries.register_at "atm_link_queue_depth" metrics_labels (fun at ->
      float_of_int (queue_length_at t ~at:(local at)));
  Timeseries.register_at ~kind:Timeseries.Utilization "atm_link_utilization"
    metrics_labels (fun at -> float_of_int (busy_ns_at t ~at:(local at)));
  t

let set_receiver t f = t.receiver <- Some f
let set_loss t rng ~p = t.loss <- Some (rng, p)
let set_fault t f = t.fault <- Some f
let cell_time t = t.cell_time
let propagation t = t.propagation

let cells_sent t =
  fold_to t (Sim.now t.sim);
  t.sent

let cells_dropped t =
  fold_to t (Sim.now t.sim);
  t.dropped

let cells_offered t = cells_sent t + cells_dropped t

let queue_length t =
  let n = Queue.length t.queue in
  if t.hops = [] then n else n + analytic_queued t ~at:(Sim.now t.sim)

let busy t = t.transmitting || t.a_tail > Sim.now t.sim
let quiet t = (not t.transmitting) && Queue.is_empty t.queue
let pending_plan t = t.hops <> []
let set_interfere t f = t.on_interfere <- Some f
let clear_interfere t = t.on_interfere <- None
let set_on_accept t f = t.on_accept <- Some f
let accepted t = match t.on_accept with Some f -> f () | None -> ()

(* --- planning (DESIGN.md §14) ---------------------------------------

   A plan reproduces, cell by cell, the decisions the per-cell event path
   would make, in virtual-time order. Same-instant decisions depend on event
   heap order, which is schedule order — so every comparison that lands on an
   exact tie between a planned completion and the attempting event's schedule
   time is unresolvable analytically and refuses the whole plan (the caller
   falls back to the per-cell path, which resolves it for real). *)

exception Refuse

type plan = {
  pl_accepts : Sim.time array;
  pl_starts : Sim.time array;
  pl_drops : Sim.time array;
  pl_hw_t : Sim.time array;
  pl_hw_v : float array;
  pl_qafter : float array;
      (* queue depth just after each acceptance — what a feeder reading
         [queue_length] right after a successful send would see *)
}

(* Wire state seen by an attempt firing at [at] from an event scheduled at
   [sched]. The completion clearing a busy tail was scheduled when its cell
   started serializing, [tail - cell_time] (starts are contiguous up to the
   tail by construction). *)
let busy_at t ~tail ~at ~sched =
  if tail < at then false
  else if tail > at then true
  else
    let csched = tail - t.cell_time in
    if csched < sched then false
    else if csched > sched then true
    else raise Refuse

(* #queued among [count] planned cells, tie-aware: a cell starting exactly
   at [at] left the queue iff its pop (the previous cell's completion,
   scheduled at start - cell_time) precedes the attempt's schedule. *)
let queued_tieaware t ~accepts ~starts ~count ~at ~sched =
  let q = ref 0 in
  for i = 0 to count - 1 do
    let p = accepts.(i) in
    if p < at then begin
      let s = starts.(i) in
      if s > at then incr q
      else if s = at then begin
        let csched = s - t.cell_time in
        if csched > sched then incr q else if csched = sched then raise Refuse
      end
    end
    else if p = at then raise Refuse
  done;
  !q

let occupancy_at t ~local_accepts ~local_starts ~local_count ~at ~sched =
  let occ =
    List.fold_left
      (fun acc h ->
        acc
        + queued_tieaware t ~accepts:h.h_accepts ~starts:h.h_starts
            ~count:h.h_live ~at ~sched)
      0 t.hops
  in
  occ
  + queued_tieaware t ~accepts:local_accepts ~starts:local_starts
      ~count:local_count ~at ~sched

let plannable t =
  (not t.transmitting)
  && Queue.is_empty t.queue
  && t.loss = None
  && t.fault = None
  && t.receiver <> None

(* Plan a sender-paced chain: the attempt for cell 0 fires at
   [first_attempt] from a job event scheduled [gap] earlier; each acceptance
   schedules the next cell's unit job (attempt at acceptance + [gap]); a
   refused attempt drops the cell once and retries from an event scheduled
   at the refusal, one cell_time later — exactly the NI tx / ni.retry
   shape. *)
let plan_chain t ~n ~first_attempt ~gap =
  fold_to t (Sim.now t.sim);
  if not (plannable t) then None
  else
    try
      let accepts = Array.make n 0 and starts = Array.make n 0 in
      let qafter = Array.make n 0. in
      let drops = ref [] and ndrops = ref 0 in
      let hw_t = ref [] and hw_v = ref [] in
      let tail = ref t.a_tail in
      let guard = ref 0 in
      let at = ref first_attempt and sched = ref (first_attempt - gap) in
      for i = 0 to n - 1 do
        let accepted = ref false in
        while not !accepted do
          incr guard;
          if !guard > 1_000_000 then raise Refuse;
          if not (busy_at t ~tail:!tail ~at:!at ~sched:!sched) then begin
            accepts.(i) <- !at;
            starts.(i) <- !at;
            tail := !at + t.cell_time;
            accepted := true
          end
          else begin
            let occ =
              occupancy_at t ~local_accepts:accepts ~local_starts:starts
                ~local_count:i ~at:!at ~sched:!sched
            in
            if occ >= t.queue_capacity then begin
              drops := !at :: !drops;
              incr ndrops;
              sched := !at;
              at := !at + t.cell_time
            end
            else begin
              accepts.(i) <- !at;
              starts.(i) <- !tail;
              tail := !tail + t.cell_time;
              qafter.(i) <- float_of_int (occ + 1);
              hw_t := !at :: !hw_t;
              hw_v := float_of_int (occ + 1) :: !hw_v;
              accepted := true
            end
          end
        done;
        if i < n - 1 then begin
          sched := accepts.(i);
          at := accepts.(i) + gap
        end
      done;
      Some
        {
          pl_accepts = accepts;
          pl_starts = starts;
          pl_drops = Array.of_list (List.rev !drops);
          pl_hw_t = Array.of_list (List.rev !hw_t);
          pl_hw_v = Array.of_list (List.rev !hw_v);
          pl_qafter = qafter;
        }
    with Refuse -> None

(* Plan an arrival-fed link (a switch output, or the SBA-100's fixed-pace
   uplink): cell i's send attempt fires at [arrivals.(i)] from an event
   scheduled [sched_lead] earlier. No retry here — an attempt that can't be
   accepted (>= [refuse_occ] queued, the caller's drop threshold) refuses
   the plan instead of modelling the drop. *)
let plan_feed t ~arrivals ~sched_lead ~refuse_occ =
  fold_to t (Sim.now t.sim);
  if not (plannable t) then None
  else
    try
      let n = Array.length arrivals in
      let starts = Array.make n 0 in
      let qafter = Array.make n 0. in
      let hw_t = ref [] and hw_v = ref [] in
      let tail = ref t.a_tail in
      for i = 0 to n - 1 do
        let at = arrivals.(i) in
        let sched = at - sched_lead in
        if not (busy_at t ~tail:!tail ~at ~sched) then begin
          starts.(i) <- at;
          tail := at + t.cell_time
        end
        else begin
          let occ =
            occupancy_at t ~local_accepts:arrivals ~local_starts:starts
              ~local_count:i ~at ~sched
          in
          if occ >= refuse_occ || occ >= t.queue_capacity then raise Refuse;
          starts.(i) <- !tail;
          tail := !tail + t.cell_time;
          qafter.(i) <- float_of_int (occ + 1);
          hw_t := at :: !hw_t;
          hw_v := float_of_int (occ + 1) :: !hw_v
        end
      done;
      Some
        {
          pl_accepts = arrivals;
          pl_starts = starts;
          pl_drops = [||];
          pl_hw_t = Array.of_list (List.rev !hw_t);
          pl_hw_v = Array.of_list (List.rev !hw_v);
          pl_qafter = qafter;
        }
    with Refuse -> None

let plan_starts pl = pl.pl_starts
let plan_accepts pl = pl.pl_accepts
let plan_queue_after pl = pl.pl_qafter

let commit_plan t pl ~fold_sent =
  let n = Array.length pl.pl_accepts in
  let h =
    {
      h_live = n;
      h_accepts = pl.pl_accepts;
      h_starts = pl.pl_starts;
      h_fold_sent = fold_sent;
      h_drops = pl.pl_drops;
      h_ndrops = Array.length pl.pl_drops;
      h_hw_t = pl.pl_hw_t;
      h_hw_v = pl.pl_hw_v;
      h_nhw = Array.length pl.pl_hw_t;
      f_busy = 0;
      f_sent = 0;
      f_drop = 0;
      f_hw = 0;
    }
  in
  t.hops <- t.hops @ [ h ];
  if n > 0 then t.a_tail <- max t.a_tail (pl.pl_starts.(n - 1) + t.cell_time);
  h

let recompute_tail t =
  t.a_tail <-
    List.fold_left
      (fun acc h ->
        if h.h_live > 0 then
          max acc (h.h_starts.(h.h_live - 1) + t.cell_time)
        else acc)
      0 t.hops

(* The owning train was truncated to [keep] cells at [now]: planned entries
   at or after [now] are re-performed for real by the per-cell path and must
   not also fold. Entries strictly before [now] did happen and stay. *)
let truncate_hop t h ~keep ~now =
  if keep < h.h_live then begin
    h.h_live <- keep;
    let kd = ref 0 in
    while !kd < h.h_ndrops && h.h_drops.(!kd) < now do
      incr kd
    done;
    if h.f_drop > !kd then begin
      let extra = h.f_drop - !kd in
      t.dropped <- t.dropped - extra;
      Metrics.Counter.add t.m_dropped (-extra);
      h.f_drop <- !kd
    end;
    h.h_ndrops <- !kd;
    let kh = ref 0 in
    while !kh < h.h_nhw && h.h_hw_t.(!kh) < now do
      incr kh
    done;
    (* a folded high-water at exactly [now] re-fires identically on the
       per-cell path (same queue state), so no un-apply is needed *)
    if h.f_hw > !kh then h.f_hw <- !kh;
    h.h_nhw <- !kh;
    if h.f_busy > keep then begin
      t.busy_ns <- t.busy_ns - ((h.f_busy - keep) * t.cell_time);
      h.f_busy <- keep
    end;
    if h.f_sent > keep then begin
      let extra = h.f_sent - keep in
      t.sent <- t.sent - extra;
      Metrics.Counter.add t.m_sent (-extra);
      h.f_sent <- keep
    end;
    recompute_tail t
  end

(* Fault-tagged cells land on a dedicated "fault" capture interface so a
   lossy run shows exactly which cells were killed or damaged in
   Wireshark, next to the clean injection-point capture. *)
let capture_fault cell =
  if Pcapng.enabled () then
    let ifc = Pcapng.iface ~name:"fault" ~linktype:Pcapng.linktype_sunatm in
    Pcapng.capture ~iface:ifc (Cell.sunatm_bytes cell)

let drop_cell t ~kind (cell : Cell.t) =
  t.dropped <- t.dropped + 1;
  Metrics.Counter.inc t.m_dropped;
  Span.mark cell.Cell.ctx Span.Dropped;
  capture_fault cell;
  if Trace.enabled () then
    Trace.instant Trace.Cell "link.loss"
      ~args:[ ("vci", Trace.Int cell.Cell.vci); ("kind", Trace.Str kind) ]

let forward t ?(extra_delay = 0) (cell : Cell.t) =
  t.sent <- t.sent + 1;
  Metrics.Counter.inc t.m_sent;
  if Trace.enabled () then
    Trace.instant Trace.Cell "link.tx" ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
  match t.receiver with
  | Some f ->
      Sim.schedule_drop ~label:"link.deliver" t.sim
        ~delay:(t.propagation + extra_delay) (fun () -> f cell)
  | None ->
      (* unreachable: send validates the receiver at entry *)
      invalid_arg "Link: no receiver attached"

(* A snapshot of the cell with one payload byte flipped: the original
   payload is a view aliasing the CS-PDU store (and the sender's retained
   retransmission copy), so corruption must never write through it. The
   copy is uncounted, like a capture — injecting a fault is not a
   data-path copy. *)
let corrupted f (cell : Cell.t) =
  let b = Bytes.create (Buf.length cell.Cell.payload) in
  let pos = ref 0 in
  Buf.iter_spans cell.Cell.payload (fun src ~pos:sp ~len ->
      Bytes.blit src sp b !pos len;
      pos := !pos + len);
  Fault.corrupt_bytes f b;
  { cell with Cell.payload = Buf.of_bytes b }

let deliver t cell =
  let legacy_lost =
    match t.loss with Some (rng, p) -> Rng.bernoulli rng ~p | None -> false
  in
  if legacy_lost then drop_cell t ~kind:"loss" cell
  else
    match t.fault with
    | None -> forward t cell
    | Some f -> (
        match Fault.decide f with
        | Fault.Pass -> forward t cell
        | Fault.Drop -> drop_cell t ~kind:"drop" cell
        | Fault.Corrupt ->
            let cell = corrupted f cell in
            capture_fault cell;
            if Trace.enabled () then
              Trace.instant Trace.Cell "link.corrupt"
                ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
            forward t cell
        | Fault.Duplicate ->
            if Trace.enabled () then
              Trace.instant Trace.Cell "link.duplicate"
                ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
            forward t cell;
            (* the copy trails by one slot, as a stuttering repeater would *)
            forward t ~extra_delay:t.cell_time cell
        | Fault.Reorder slots ->
            if Trace.enabled () then
              Trace.instant Trace.Cell "link.reorder"
                ~args:
                  [
                    ("vci", Trace.Int cell.Cell.vci);
                    ("slots", Trace.Int slots);
                  ];
            (* held back while later cells overtake it *)
            forward t ~extra_delay:(slots * t.cell_time) cell)

let rec transmit t cell =
  (* serialization starts now: for the EOP cell this separates switch /
     queue wait from wire time in the span breakdown (marks replace, so
     the last link the cell crosses wins) *)
  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Link_tx;
  t.transmitting <- true;
  t.busy_ns <- t.busy_ns + t.cell_time;
  Sim.schedule_drop ~label:"link.tx_cell" t.sim ~delay:t.cell_time (fun () ->
      deliver t cell;
      match Queue.take_opt t.queue with
      | Some next -> transmit t next
      | None -> t.transmitting <- false)

(* A per-cell send while planned (analytic) state is pending on this link:
   the cell threads through the plan instead of the legacy queue. Any chain
   still accepting on this link is split first, so by the time the cell is
   judged, every pending planned cell was accepted strictly earlier and FIFO
   order is exactly arrival order. Same-instant completions resolve
   completion-first (see DESIGN.md §14 on this tie). Serialization start and
   occupancy ride a singleton hop; delivery stays a real event so loss-free
   forward accounting (sent, trace, span) runs on the per-cell path. *)
let bridge_send t (cell : Cell.t) =
  let now = Sim.now t.sim in
  (match t.on_interfere with Some f -> f () | None -> ());
  let tail = max t.a_tail now in
  let queued = analytic_queued t ~at:now + Queue.length t.queue in
  if tail > now && queued >= t.queue_capacity then begin
    drop_cell t ~kind:"queue_full" cell;
    false
  end
  else begin
    let start = if tail > now then tail else now in
    if start > now then
      Metrics.Gauge.set_max t.m_queue_hw (float_of_int (queued + 1))
    else if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Link_tx;
    let pl =
      {
        pl_accepts = [| now |];
        pl_starts = [| start |];
        pl_drops = [||];
        pl_hw_t = [||];
        pl_hw_v = [||];
        pl_qafter = [||];
      }
    in
    ignore (commit_plan t pl ~fold_sent:false);
    Sim.schedule_drop ~label:"link.tx_cell" t.sim
      ~delay:(start + t.cell_time - now)
      (fun () -> deliver t cell);
    accepted t;
    true
  end

let legacy_send t cell =
  if t.transmitting then
    if Queue.length t.queue >= t.queue_capacity then begin
      drop_cell t ~kind:"queue_full" cell;
      false
    end
    else begin
      Queue.add cell t.queue;
      Metrics.Gauge.set_max t.m_queue_hw (float_of_int (Queue.length t.queue));
      accepted t;
      true
    end
  else begin
    transmit t cell;
    accepted t;
    true
  end

let send t cell =
  if t.receiver = None then invalid_arg "Link.send: no receiver attached";
  if t.hops = [] then legacy_send t cell
  else begin
    fold_to t (Sim.now t.sim);
    if t.hops = [] then legacy_send t cell else bridge_send t cell
  end
