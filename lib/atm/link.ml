open Engine

type t = {
  sim : Sim.t;
  cell_time : Sim.time;
  propagation : Sim.time;
  queue_capacity : int;
  queue : Cell.t Queue.t;
  mutable transmitting : bool;
  mutable receiver : (Cell.t -> unit) option;
  mutable loss : (Rng.t * float) option;
  mutable sent : int;
  mutable dropped : int;
  m_sent : Metrics.Counter.t;
  m_dropped : Metrics.Counter.t;
  m_queue_hw : Metrics.Gauge.t;
}

let create sim ?(queue_capacity = max_int) ?(metrics_labels = []) ~bandwidth_mbps
    ~propagation () =
  if bandwidth_mbps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  let bits = float_of_int (Cell.on_wire_size * 8) in
  let cell_time = int_of_float (Float.round (bits /. bandwidth_mbps *. 1_000.)) in
  {
    sim;
    cell_time;
    propagation;
    queue_capacity;
    queue = Queue.create ();
    transmitting = false;
    receiver = None;
    loss = None;
    sent = 0;
    dropped = 0;
    m_sent =
      Metrics.counter ~help:"cells delivered to the far end of a link"
        "atm_link_cells_sent_total" metrics_labels;
    m_dropped =
      Metrics.counter
        ~help:"cells lost on a link (transmit-queue overflow or injected loss)"
        "atm_link_cells_dropped_total" metrics_labels;
    m_queue_hw =
      Metrics.gauge ~help:"deepest a link transmit queue has ever been"
        "atm_link_queue_high_water" metrics_labels;
  }

let set_receiver t f = t.receiver <- Some f
let set_loss t rng ~p = t.loss <- Some (rng, p)
let cell_time t = t.cell_time
let cells_sent t = t.sent
let cells_dropped t = t.dropped
let queue_length t = Queue.length t.queue
let busy t = t.transmitting

let deliver t cell =
  let lost =
    match t.loss with Some (rng, p) -> Rng.bernoulli rng ~p | None -> false
  in
  if lost then begin
    t.dropped <- t.dropped + 1;
    Metrics.Counter.inc t.m_dropped;
    if Trace.enabled () then
      Trace.instant Trace.Cell "link.loss"
        ~args:[ ("vci", Trace.Int cell.Cell.vci) ]
  end
  else begin
    t.sent <- t.sent + 1;
    Metrics.Counter.inc t.m_sent;
    if Trace.enabled () then
      Trace.instant Trace.Cell "link.tx"
        ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
    match t.receiver with
    | Some f ->
        ignore (Sim.schedule t.sim ~delay:t.propagation (fun () -> f cell))
    | None -> failwith "Link: no receiver attached"
  end

let rec transmit t cell =
  (* serialization starts now: for the EOP cell this separates switch /
     queue wait from wire time in the span breakdown (marks replace, so
     the last link the cell crosses wins) *)
  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Link_tx;
  t.transmitting <- true;
  ignore
    (Sim.schedule t.sim ~delay:t.cell_time (fun () ->
         deliver t cell;
         match Queue.take_opt t.queue with
         | Some next -> transmit t next
         | None -> t.transmitting <- false))

let send t cell =
  if t.transmitting then
    if Queue.length t.queue >= t.queue_capacity then begin
      t.dropped <- t.dropped + 1;
      Metrics.Counter.inc t.m_dropped;
      if Trace.enabled () then
        Trace.instant Trace.Cell "link.queue_drop"
          ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
      false
    end
    else begin
      Queue.add cell t.queue;
      Metrics.Gauge.set_max t.m_queue_hw (float_of_int (Queue.length t.queue));
      true
    end
  else begin
    transmit t cell;
    true
  end
