open Engine

type t = {
  sim : Sim.t;
  cell_time : Sim.time;
  propagation : Sim.time;
  queue_capacity : int;
  queue : Cell.t Queue.t;
  mutable transmitting : bool;
  mutable receiver : (Cell.t -> unit) option;
  mutable loss : (Rng.t * float) option;
  mutable fault : Fault.t option;
  mutable sent : int;
  mutable dropped : int;
  mutable busy_ns : int; (* cumulative serialization time (utilization) *)
  m_sent : Metrics.Counter.t;
  m_dropped : Metrics.Counter.t;
  m_queue_hw : Metrics.Gauge.t;
}

let create sim ?(queue_capacity = max_int) ?(metrics_labels = []) ~bandwidth_mbps
    ~propagation () =
  if bandwidth_mbps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  let bits = float_of_int (Cell.on_wire_size * 8) in
  let cell_time = int_of_float (Float.round (bits /. bandwidth_mbps *. 1_000.)) in
  let t =
    {
      sim;
      cell_time;
      propagation;
      queue_capacity;
      queue = Queue.create ();
      transmitting = false;
      receiver = None;
      loss = None;
      fault = None;
      sent = 0;
      dropped = 0;
      busy_ns = 0;
      m_sent =
        Metrics.counter ~help:"cells delivered to the far end of a link"
          "atm_link_cells_sent_total" metrics_labels;
      m_dropped =
        Metrics.counter
          ~help:
            "cells lost on a link (transmit-queue overflow or injected loss)"
          "atm_link_cells_dropped_total" metrics_labels;
      m_queue_hw =
        Metrics.gauge ~help:"deepest a link transmit queue has ever been"
          "atm_link_queue_high_water" metrics_labels;
    }
  in
  Timeseries.register "atm_link_queue_depth" metrics_labels (fun () ->
      float_of_int (Queue.length t.queue));
  Timeseries.register ~kind:Timeseries.Utilization "atm_link_utilization"
    metrics_labels (fun () -> float_of_int t.busy_ns);
  t

let set_receiver t f = t.receiver <- Some f
let set_loss t rng ~p = t.loss <- Some (rng, p)
let set_fault t f = t.fault <- Some f
let cell_time t = t.cell_time
let cells_sent t = t.sent
let cells_dropped t = t.dropped
let cells_offered t = t.sent + t.dropped
let queue_length t = Queue.length t.queue
let busy t = t.transmitting

(* Fault-tagged cells land on a dedicated "fault" capture interface so a
   lossy run shows exactly which cells were killed or damaged in
   Wireshark, next to the clean injection-point capture. *)
let capture_fault cell =
  if Pcapng.enabled () then
    let ifc = Pcapng.iface ~name:"fault" ~linktype:Pcapng.linktype_sunatm in
    Pcapng.capture ~iface:ifc (Cell.sunatm_bytes cell)

let drop_cell t ~kind (cell : Cell.t) =
  t.dropped <- t.dropped + 1;
  Metrics.Counter.inc t.m_dropped;
  Span.mark cell.Cell.ctx Span.Dropped;
  capture_fault cell;
  if Trace.enabled () then
    Trace.instant Trace.Cell "link.loss"
      ~args:[ ("vci", Trace.Int cell.Cell.vci); ("kind", Trace.Str kind) ]

let forward t ?(extra_delay = 0) (cell : Cell.t) =
  t.sent <- t.sent + 1;
  Metrics.Counter.inc t.m_sent;
  if Trace.enabled () then
    Trace.instant Trace.Cell "link.tx" ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
  match t.receiver with
  | Some f ->
      ignore
        (Sim.schedule ~label:"link.deliver" t.sim
           ~delay:(t.propagation + extra_delay) (fun () ->
             f cell))
  | None -> failwith "Link: no receiver attached"

(* A snapshot of the cell with one payload byte flipped: the original
   payload is a view aliasing the CS-PDU store (and the sender's retained
   retransmission copy), so corruption must never write through it. The
   copy is uncounted, like a capture — injecting a fault is not a
   data-path copy. *)
let corrupted f (cell : Cell.t) =
  let b = Bytes.create (Buf.length cell.Cell.payload) in
  let pos = ref 0 in
  Buf.iter_spans cell.Cell.payload (fun src ~pos:sp ~len ->
      Bytes.blit src sp b !pos len;
      pos := !pos + len);
  Fault.corrupt_bytes f b;
  { cell with Cell.payload = Buf.of_bytes b }

let deliver t cell =
  let legacy_lost =
    match t.loss with Some (rng, p) -> Rng.bernoulli rng ~p | None -> false
  in
  if legacy_lost then drop_cell t ~kind:"loss" cell
  else
    match t.fault with
    | None -> forward t cell
    | Some f -> (
        match Fault.decide f with
        | Fault.Pass -> forward t cell
        | Fault.Drop -> drop_cell t ~kind:"drop" cell
        | Fault.Corrupt ->
            let cell = corrupted f cell in
            capture_fault cell;
            if Trace.enabled () then
              Trace.instant Trace.Cell "link.corrupt"
                ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
            forward t cell
        | Fault.Duplicate ->
            if Trace.enabled () then
              Trace.instant Trace.Cell "link.duplicate"
                ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
            forward t cell;
            (* the copy trails by one slot, as a stuttering repeater would *)
            forward t ~extra_delay:t.cell_time cell
        | Fault.Reorder slots ->
            if Trace.enabled () then
              Trace.instant Trace.Cell "link.reorder"
                ~args:
                  [
                    ("vci", Trace.Int cell.Cell.vci);
                    ("slots", Trace.Int slots);
                  ];
            (* held back while later cells overtake it *)
            forward t ~extra_delay:(slots * t.cell_time) cell)

let rec transmit t cell =
  (* serialization starts now: for the EOP cell this separates switch /
     queue wait from wire time in the span breakdown (marks replace, so
     the last link the cell crosses wins) *)
  if cell.Cell.eop then Span.mark cell.Cell.ctx Span.Link_tx;
  t.transmitting <- true;
  t.busy_ns <- t.busy_ns + t.cell_time;
  ignore
    (Sim.schedule ~label:"link.tx_cell" t.sim ~delay:t.cell_time (fun () ->
         deliver t cell;
         match Queue.take_opt t.queue with
         | Some next -> transmit t next
         | None -> t.transmitting <- false))

let send t cell =
  if t.transmitting then
    if Queue.length t.queue >= t.queue_capacity then begin
      t.dropped <- t.dropped + 1;
      Metrics.Counter.inc t.m_dropped;
      Span.mark cell.Cell.ctx Span.Dropped;
      if Trace.enabled () then
        Trace.instant Trace.Cell "link.queue_drop"
          ~args:[ ("vci", Trace.Int cell.Cell.vci) ];
      false
    end
    else begin
      Queue.add cell t.queue;
      Metrics.Gauge.set_max t.m_queue_hw (float_of_int (Queue.length t.queue));
      true
    end
  else begin
    transmit t cell;
    true
  end
