(** AAL5 segmentation and reassembly. A CS-PDU is the payload, zero padding,
    and an 8-byte trailer (UU, CPI, 16-bit length, 32-bit CRC) rounded up to
    a whole number of 48-byte cells; the last cell carries the PTI
    end-of-packet mark. *)

val trailer_size : int (* 8 *)

val max_payload : int
(** Largest payload an AAL5 PDU can carry (65535, the 16-bit length field). *)

val cells_for : int -> int
(** Number of cells needed to carry a payload of the given length
    (payload + trailer, rounded up to cells). *)

val pdu_wire_bytes : int -> int
(** Bytes on the wire (53 per cell) for a payload of the given length — the
    exact sawtooth of the paper's Figure 4 "AAL-5 limit" curve. *)

val segment : ?ctx:Engine.Span.ctx -> vci:int -> Engine.Buf.t -> Cell.t list
(** Split a payload into cells with padding, trailer and CRC. The CS-PDU is
    the payload view concatenated with a fresh pad+trailer store; every cell
    payload is a zero-copy view into it. Every cell inherits the CS-PDU's
    span context [ctx]. *)

type error =
  | Crc_mismatch
  | Length_mismatch
  | Too_long  (** reassembly exceeded [max_payload] + trailer *)

val pp_error : Format.formatter -> error -> unit

(** Per-VCI reassembler: feed cells in order; a completed PDU (or an error,
    e.g. after cell loss) is reported when the EOP cell arrives. *)
module Reassembler : sig
  type t

  val create : unit -> t

  val push : t -> Cell.t -> (Engine.Buf.t, error) result option
  (** [None] while mid-PDU; [Some (Ok payload)] on success; [Some (Error _)]
      when the completed PDU fails its checks (it is then discarded, exactly
      as cell loss discards a whole segment in the paper's §7.8). Per-VCI
      state is reset before the error is reported, so a corrupted PDU never
      poisons the next one; every discard increments
      [aal5_pdus_discarded_total{reason}] and marks the PDU's span
      [Dropped]. *)

  val in_progress : t -> bool
  val errors : t -> int
  (** Count of PDUs discarded due to errors so far. *)

  val last_ctx : t -> Engine.Span.ctx option
  (** Span context carried by the most recent EOP cell — the context of
      the PDU that [push] just completed (valid after [push] returned
      [Some _], until the next EOP). *)
end
