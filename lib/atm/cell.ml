type t = {
  vci : int;
  eop : bool;
  payload : Engine.Buf.t;
  ctx : Engine.Span.ctx option;
}

let header_size = 5
let payload_size = 48
let on_wire_size = header_size + payload_size

let make ?ctx ~vci ~eop payload =
  if Engine.Buf.length payload <> payload_size then
    invalid_arg
      (Printf.sprintf "Cell.make: payload must be %d bytes, got %d"
         payload_size
         (Engine.Buf.length payload));
  if vci < 0 then invalid_arg "Cell.make: negative VCI";
  { vci; eop; payload; ctx }

let with_vci t vci = { t with vci }

let pp fmt t =
  Format.fprintf fmt "cell(vci=%d%s)" t.vci (if t.eop then ", eop" else "")
