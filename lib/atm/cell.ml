type t = {
  vci : int;
  eop : bool;
  payload : Engine.Buf.t;
  ctx : Engine.Span.ctx option;
}

let header_size = 5
let payload_size = 48
let on_wire_size = header_size + payload_size

let make ?ctx ~vci ~eop payload =
  if Engine.Buf.length payload <> payload_size then
    invalid_arg
      (Printf.sprintf "Cell.make: payload must be %d bytes, got %d"
         payload_size
         (Engine.Buf.length payload));
  if vci < 0 then invalid_arg "Cell.make: negative VCI";
  { vci; eop; payload; ctx }

let with_vci t vci = { t with vci }

(* LINKTYPE_SUNATM record: 4-byte pseudo-header (flags, VPI, VCI
   big-endian) followed by the 48-byte payload. Bytes are materialized
   with the uncounted span iterator — captures must not perturb the data
   path's copy accounting. *)
let sunatm_bytes t =
  let b = Bytes.create (4 + Engine.Buf.length t.payload) in
  Bytes.set_uint8 b 0 0;
  (* flags *)
  Bytes.set_uint8 b 1 0;
  (* VPI *)
  Bytes.set_uint16_be b 2 (t.vci land 0xffff);
  let pos = ref 4 in
  Engine.Buf.iter_spans t.payload (fun src ~pos:sp ~len ->
      Bytes.blit src sp b !pos len;
      pos := !pos + len);
  Bytes.unsafe_to_string b

let pp fmt t =
  Format.fprintf fmt "cell(vci=%d%s)" t.vci (if t.eop then ", eop" else "")

module Train = struct
  (* The cells of one CS-PDU travelling as a unit on the train fast path
     (DESIGN.md §14). [live] is the prefix still riding analytically; a
     split truncates it and every hop that registered planned state for the
     train removes its now-invalid future entries via the listeners. *)
  type train = {
    cells : t array;
    vci : int;
    mutable live : int;
    mutable listeners : (keep:int -> now:Engine.Sim.time -> unit) list;
  }

  let of_cells cells =
    let n = Array.length cells in
    if n = 0 then invalid_arg "Cell.Train.of_cells: empty";
    { cells; vci = cells.(0).vci; live = n; listeners = [] }

  let length t = t.live
  let vci t = t.vci

  let cell t i =
    if i < 0 || i >= t.live then invalid_arg "Cell.Train.cell: out of range";
    t.cells.(i)

  let on_truncate t f = t.listeners <- f :: t.listeners

  let truncate t ~keep ~now =
    if keep < t.live then begin
      t.live <- keep;
      List.iter (fun f -> f ~keep ~now) t.listeners
    end
end

type train = Train.train
