(** Cluster fabric: workstations connected to ATM switches by full-duplex
    fiber pairs. The default shape mirrors the paper's 8-node ASX-200
    testbed — every host on one port of a single switch — but a
    declarative {!topology} spec also elaborates multi-stage fabrics
    (folded-Clos fat-trees, arbitrary trunk graphs) from the same switch
    and link elements, with per-hop VCI remapping through each stage's
    route table (DESIGN.md §16). Also plays the role of the
    network-specific signalling service: {!connect} performs route
    discovery and switch-path setup across all stages, returning the VCI
    pair each side must use (§3.2). *)

type config = {
  link_bandwidth_mbps : float;  (** 140 Mbit/s TAXI in the paper *)
  link_propagation : Engine.Sim.time;  (** per-fiber time of flight *)
  switch_transit : Engine.Sim.time;  (** fabric delay per cell *)
  switch_queue_capacity : int;  (** output-port queue, in cells *)
  host_tx_fifo : int;  (** NI output FIFO depth, in cells *)
}

val default_config : config
(** The paper's testbed: 140 Mbit/s links, 2 µs switch transit, shallow
    host FIFOs. *)

(** Dimensions of a two-level folded-Clos (fat-tree) fabric: [pods] leaf
    switches each attaching [hosts_per_pod] hosts, every leaf trunked to
    each of [spine] spine switches by one full-duplex fiber pair. Host [h]
    sits on port [h mod hosts_per_pod] of leaf [h / hosts_per_pod]. *)
type clos = { pods : int; spine : int; hosts_per_pod : int }

(** Declarative fabric shape, elaborated by {!create_topo} into switches,
    access links and trunks. *)
type topology =
  | Single of int
      (** [hosts] workstations on one switch — the paper's testbed and the
          historical constructor; behaviour, metric labels and event
          schedules are byte-identical to pre-topology versions. *)
  | Clos of clos
  | Custom of {
      switch_ports : int array;  (** port count per switch *)
      hosts : (int * int) array;  (** host [h] at [(switch, port)] *)
      trunks : (int * int * int * int) list;
          (** full-duplex [(sw_a, port_a, sw_b, port_b)] fiber pairs *)
    }

val topology_hosts : topology -> int
(** Number of host endpoints the topology attaches. *)

type t

val create : Engine.Sim.t -> hosts:int -> config -> t
(** [create_topo] with [Single hosts]. If a global fault spec is
    configured ({!Engine.Fault.configure}), its link and switch sites are
    applied to the new fabric automatically. *)

val create_topo : Engine.Sim.t -> topology:topology -> config -> t
(** Elaborate a topology: one {!Switch.t} per stage (labelled with its
    index when there is more than one), host access links, and a
    full-duplex pair of trunk links per fabric fiber. All links share
    [config]'s bandwidth and propagation; all switches its transit and
    queue capacity. Raises [Invalid_argument] for malformed specs
    (out-of-range indices, a port attached twice, non-positive
    dimensions). *)

val sim : t -> Engine.Sim.t
val host_count : t -> int

val topology : t -> topology
(** The spec this fabric was elaborated from. *)

val apply_fault : t -> Engine.Fault.spec -> unit
(** Instantiate the spec's link/switch sites on this fabric: one injector
    per uplink ([link.up.<host>]), downlink ([link.down.<host>]), and
    switch output port — [switch.port.<port>] on a single-switch fabric
    (the historical site labels, so seeded streams are unchanged),
    [switch.<stage>.port.<port>] per stage otherwise. Every output port of
    every stage gets a site, trunk ports included, so interior fabric
    faults need no separate site kind. NI sites are handled by the NI
    constructors. *)

val attach_rx : t -> host:int -> (Cell.t -> unit) -> unit
(** Install the host NI's cell-receive handler (downlink receiver). Cells
    reaching a downlink with no handler are counted in the per-host
    [atm_fabric_undeliverable_total] metric and their span marked
    [Dropped] rather than vanishing silently. *)

val send : t -> host:int -> Cell.t -> bool
(** Transmit a cell on the host's uplink. [false] if the NI output FIFO
    overflowed. *)

val in_flight : t -> host:int -> int
(** Cells sent per-cell from [host] still traversing its ingress stage
    (accepted on the uplink, not yet settled through the first switch).
    The train-commit gate refuses while this — or the same counter at any
    later stage of the route — is non-zero. *)

val path_clear : t -> host:int -> vci:int -> bool
(** The transient train-commit blockers for [host] sending on [vci] are
    gone: the in-flight count at every stage of the route is zero and no
    link along it has a real cell queued or transmitting. A sampling NI
    that just routed a PDU per-cell polls this before pumping its next
    descriptor so the very next PDU can commit a train instead of being
    squeezed per-cell behind the sampled one's backlog. Vacuously true
    for routes that can never train (no route, multi-source port, fault
    site). *)

val uplink : t -> host:int -> Link.t
val downlink : t -> host:int -> Link.t

val switch : t -> Switch.t
(** The first (on a [Single] fabric, only) switch; kept for single-switch
    callers. Multi-stage fabrics use {!switch_at}. *)

val switch_count : t -> int

val switch_at : t -> int -> Switch.t
(** Stage [i] of the fabric, in topology order (Clos: leaves then
    spines). *)

val host_switch : t -> host:int -> int
(** Index of the switch the host's access links attach to. *)

(** {2 Flow observability (DESIGN.md §17)} *)

val flowstat : t -> Flowstat.t option
(** This fabric's flow-accounting instance — present when
    {!Flowstat.configure} was active at creation. Routes installed by
    {!connect} register one flow per direction; per-cell forwarding and
    train commits count into it. When path records are additionally
    enabled ({!Engine.Pathrec.start}), every delivered PDU also leaves an
    INT-style per-hop record, identically whether it rode the per-cell
    path or a committed train. *)

val note_retx : t -> host:int -> vci:int -> unit
(** Attribute one PDU retransmission to the flow sending from [host] on
    uplink [vci] (called by the reliability layer). No-op when flow
    accounting is off or the flow is unknown. *)

val output_link : t -> sw:int -> port:int -> Link.t option
(** The link attached to switch [sw]'s output [port] — a host downlink or
    a directed trunk; [None] for unwired ports. For utilization readers
    (the congestion atlas). *)

val port_dest : t -> sw:int -> port:int -> [ `Host of int | `Switch of int ] option
(** Where that output port's link leads. *)

(** {2 Train fast path (DESIGN.md §14, multi-stage §16)} *)

val attach_rx_train :
  t ->
  host:int ->
  (Cell.train -> rx_vci:int -> deliveries:Engine.Sim.time array -> unit) ->
  unit
(** Install a train-aware receive handler: committed trains destined to
    [host] are handed over whole at the first cell's delivery instant,
    with [deliveries.(i)] the instant cell i would have arrived per-cell
    (cells still carry the sender-side VCI; [rx_vci] is the egress
    stage's relabel). Hosts without one get the default per-cell
    expansion into their {!attach_rx} handler. *)

val commit_train :
  t ->
  host:int ->
  train:Cell.train ->
  first_attempt:Engine.Sim.time ->
  gap:Engine.Sim.time ->
  on_interfere:(unit -> unit) ->
  Engine.Sim.time array option
(** Plan a whole train's journey — uplink chain (cell 0's attempt at
    [first_attempt], then [gap] after each acceptance, retrying refused
    attempts every cell slot), then per stage of the route a fabric
    transit and an arrival-fed plan on that stage's output link (trunk or
    downlink) — all-or-nothing across the full hop chain. [Some accepts]
    gives each cell's uplink acceptance instant, the schedule the sending
    NI's chain batch must reproduce; [None] means some element refused
    (legacy traffic in flight at any stage, a loss/fault site, a full
    queue, a same-instant tie) and the sender must use the per-cell path.
    [on_interfere] is installed as the uplink's interfere hook; the
    caller owns clearing it when its chain ends or splits. *)

val commit_train_feed :
  t ->
  host:int ->
  train:Cell.train ->
  arrivals:Engine.Sim.time array ->
  sched_lead:Engine.Sim.time ->
  on_interfere:(unit -> unit) ->
  Engine.Sim.time array option
(** Like {!commit_train} but for a fixed-pace uplink feed (the SBA-100's
    PIO loop): cell i's send happens unconditionally at [arrivals.(i)],
    from an event scheduled [sched_lead] earlier. *)

(** The transmit/receive VCI pair naming a one-way-per-direction duplex
    channel, as handed to an endpoint at channel registration. *)
type duplex = { tx_vci : int; rx_vci : int }

type conn = { host_a : int; host_b : int; side_a : duplex; side_b : duplex }
(** A full-duplex connection: [side_a.tx_vci] is the VCI host [a] transmits
    on; those cells arrive at host [b] relabelled as [side_b.rx_vci], and
    symmetrically. *)

val connect : t -> a:int -> b:int -> conn
(** Set up a full-duplex connection between hosts [a] and [b]: route
    discovery across the fabric (Clos routes pick the spine
    deterministically from the endpoint pair; Custom topologies
    breadth-first-search the trunk graph), per-hop VCI allocation — a
    fresh VCI on the sender's uplink, on each trunk of the route, and on
    the receiver's downlink — and route-table setup at every stage.
    VCIs are 16-bit as in the ATM cell header; allocation past 65535
    raises [Invalid_argument] instead of silently aliasing. *)

val disconnect : t -> conn -> unit
(** Tear down both routes of a connection, removing each stage's
    route-table entry. *)
