(** Cluster topology: [hosts] workstations, each connected to one port of a
    single switch by a full-duplex fiber pair, mirroring the paper's 8-node
    ASX-200 testbed. Also plays the role of the network-specific signalling
    service: {!connect} performs route discovery and switch-path setup,
    returning the VCI pair each side must use (§3.2). *)

type config = {
  link_bandwidth_mbps : float;  (** 140 Mbit/s TAXI in the paper *)
  link_propagation : Engine.Sim.time;  (** per-fiber time of flight *)
  switch_transit : Engine.Sim.time;  (** fabric delay per cell *)
  switch_queue_capacity : int;  (** output-port queue, in cells *)
  host_tx_fifo : int;  (** NI output FIFO depth, in cells *)
}

val default_config : config
(** The paper's testbed: 140 Mbit/s links, 2 µs switch transit, shallow
    host FIFOs. *)

type t

val create : Engine.Sim.t -> hosts:int -> config -> t
(** If a global fault spec is configured ({!Engine.Fault.configure}), its
    link and switch sites are applied to the new fabric automatically. *)

val sim : t -> Engine.Sim.t
val host_count : t -> int

val apply_fault : t -> Engine.Fault.spec -> unit
(** Instantiate the spec's link/switch sites on this fabric: one injector
    per uplink ([link.up.<host>]), downlink ([link.down.<host>]), and
    switch output port ([switch.port.<port>]), each with an independent
    seed-derived stream. NI sites are handled by the NI constructors. *)

val attach_rx : t -> host:int -> (Cell.t -> unit) -> unit
(** Install the host NI's cell-receive handler (downlink receiver). *)

val send : t -> host:int -> Cell.t -> bool
(** Transmit a cell on the host's uplink. [false] if the NI output FIFO
    overflowed. *)

val in_flight : t -> host:int -> int
(** Cells sent per-cell from [host] still traversing the fabric (accepted
    on the uplink, not yet settled through the switch). The train-commit
    gate refuses while this is non-zero. *)

val path_clear : t -> host:int -> vci:int -> bool
(** The transient train-commit blockers for [host] sending on [vci] are
    gone: {!in_flight} is zero and the destination downlink has no real
    cell queued or transmitting. A sampling NI that just routed a PDU
    per-cell polls this before pumping its next descriptor so the very
    next PDU can commit a train instead of being squeezed per-cell behind
    the sampled one's backlog. Vacuously true for routes that can never
    train (no route, multi-source port, fault site). *)

val uplink : t -> host:int -> Link.t
val downlink : t -> host:int -> Link.t
val switch : t -> Switch.t

(** {2 Train fast path (DESIGN.md §14)} *)

val attach_rx_train :
  t ->
  host:int ->
  (Cell.train -> rx_vci:int -> deliveries:Engine.Sim.time array -> unit) ->
  unit
(** Install a train-aware receive handler: committed trains destined to
    [host] are handed over whole at the first cell's delivery instant,
    with [deliveries.(i)] the instant cell i would have arrived per-cell
    (cells still carry the sender-side VCI; [rx_vci] is the switch
    relabel). Hosts without one get the default per-cell expansion into
    their {!attach_rx} handler. *)

val commit_train :
  t ->
  host:int ->
  train:Cell.train ->
  first_attempt:Engine.Sim.time ->
  gap:Engine.Sim.time ->
  on_interfere:(unit -> unit) ->
  Engine.Sim.time array option
(** Plan a whole train's journey — uplink chain (cell 0's attempt at
    [first_attempt], then [gap] after each acceptance, retrying refused
    attempts every cell slot), switch transit, downlink feed —
    all-or-nothing. [Some accepts] gives each cell's uplink acceptance
    instant, the schedule the sending NI's chain batch must reproduce;
    [None] means some element refused (legacy traffic in flight, a
    loss/fault site, a full queue, a same-instant tie) and the sender must
    use the per-cell path. [on_interfere] is installed as the uplink's
    interfere hook; the caller owns clearing it when its chain ends or
    splits. *)

val commit_train_feed :
  t ->
  host:int ->
  train:Cell.train ->
  arrivals:Engine.Sim.time array ->
  sched_lead:Engine.Sim.time ->
  on_interfere:(unit -> unit) ->
  Engine.Sim.time array option
(** Like {!commit_train} but for a fixed-pace uplink feed (the SBA-100's
    PIO loop): cell i's send happens unconditionally at [arrivals.(i)],
    from an event scheduled [sched_lead] earlier. *)

(** The transmit/receive VCI pair naming a one-way-per-direction duplex
    channel, as handed to an endpoint at channel registration. *)
type duplex = { tx_vci : int; rx_vci : int }

type conn = { host_a : int; host_b : int; side_a : duplex; side_b : duplex }
(** A full-duplex connection: [side_a.tx_vci] is the VCI host [a] transmits
    on; those cells arrive at host [b] relabelled as [side_b.rx_vci], and
    symmetrically. *)

val connect : t -> a:int -> b:int -> conn
(** Set up a full-duplex connection between hosts [a] and [b]: route
    discovery, switch-path setup, VCI allocation. *)

val disconnect : t -> conn -> unit
(** Tear down both routes of a connection. *)
