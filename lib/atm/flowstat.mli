(** Per-flow, per-hop fabric accounting (DESIGN.md §17).

    A flow is one direction of a connection: (source host, destination
    host, the VCI chain the route rides — uplink VCI, then the relabel on
    each trunk and the downlink). The fabric registers flows at route
    installation and counts every cell crossing every stage into them.

    Two regimes keep a 1024-endpoint incast from allocating a million
    counters: the first [exact_flows] registered flows get exact per-hop
    tables (cells/bytes/drops/retransmits per switch stage, exported as
    [atm_flow_*{flow,hop}] metrics); every flow, exact or not, also feeds
    a Space-Saving top-[k] heavy-hitter sketch of bytes offered at the
    ingress stage, whose estimates obey [est >= true >= est - err].

    Enabling is global ({!configure}), like fault injection and PDU
    sampling: each {!Network.create_topo} builds a per-fabric instance
    when active. Accounting is observational only — per-cell counting
    piggybacks existing switch events and train commits fold whole trains
    in O(stages) — so it never pins the train fast path. *)

(** {2 Space-Saving top-K} *)

module Topk : sig
  type 'a t

  val create : k:int -> 'a t

  val offer : 'a t -> 'a -> int -> unit
  (** Add [weight] to the key's estimate, evicting the minimum-estimate
      entry when a new key arrives at capacity (the classic Space-Saving
      step: the newcomer inherits the evictee's estimate as its error).
      Negative weights decrement a present key (train truncation undo)
      and are dropped on absent keys. *)

  val entries : 'a t -> ('a * int * int) list
  (** [(key, estimate, error)] sorted by estimate descending. For every
      key, [estimate >= true count]; if the key was never evicted,
      [estimate - error <= true count]. Any key with true count
      > total/k is guaranteed present. *)
end

(** {2 Global switch} *)

val configure : ?exact_flows:int -> ?k:int -> unit -> unit
(** Enable flow accounting for fabrics created afterwards: exact per-hop
    tables for the first [exact_flows] flows (default 1024), a top-[k]
    sketch over all of them (default 16). *)

val disable : unit -> unit

val active : unit -> bool

(** {2 Per-fabric instance (used by [Network])} *)

type t
type flow

val create : unit -> t
(** A fresh instance with the configured limits. *)

val register :
  t -> src:int -> dst:int -> vcis:int array -> flow
(** Called at route installation; [vcis.(0)] is the uplink VCI and the
    array length is the number of switch stages the route crosses. *)

val count : t -> flow -> hop:int -> cells:int -> unit
(** [cells] cells (48 payload bytes each) forwarded by stage [hop];
    negative to un-count a truncated train's cut suffix. *)

val drop : t -> flow -> hop:int -> unit
(** One cell lost entering stage [hop] (switch queue/fault drop, or the
    host FIFO refusing the cell bound for stage 0). *)

val note_retx : t -> src:int -> vci:int -> unit
(** One PDU retransmitted on the flow sending from [src] on uplink
    [vci]; attributed to hop 0. No-op for unregistered flows. *)

(** {2 Reading (atlas, experiments)} *)

val flow_label : flow -> string
(** ["src:dst:vci0,vci1,..."] — the flow's metric label value (colons
    and commas exercise the dump escapers on purpose). *)

val flow_src : flow -> int
val flow_dst : flow -> int
val flow_vcis : flow -> int array

val flow_hops : flow -> (int * int * int * int) array option
(** Per-stage (cells, bytes, drops, retx) — [None] for flows past the
    exact-table threshold. *)

val flows : t -> flow list
(** Registration order. *)

val exact_flows : t -> int
(** How many got exact tables. *)

val top : t -> (flow * int * int) list
(** Heavy hitters by ingress bytes: [(flow, estimated bytes, error)]
    sorted descending. *)

val find : t -> src:int -> vci:int -> flow option
