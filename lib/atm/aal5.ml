open Engine

let trailer_size = 8
let max_payload = 65535

let cells_for len =
  if len < 0 then invalid_arg "Aal5.cells_for: negative length";
  (len + trailer_size + Cell.payload_size - 1) / Cell.payload_size

let pdu_wire_bytes len = cells_for len * Cell.on_wire_size

(* Trailer layout (last 8 bytes of the CS-PDU):
   byte 0: CPCS-UU (we carry 0)
   byte 1: CPI (0)
   bytes 2-3: payload length, big-endian
   bytes 4-7: CRC-32 over the whole CS-PDU with the CRC field excluded.

   The CS-PDU is never materialized: it is the payload view followed by a
   fresh pad+trailer store, and every cell is a 48-byte view into that
   concatenation. *)
let segment ?ctx ~vci payload =
  let len = Buf.length payload in
  if len > max_payload then invalid_arg "Aal5.segment: payload too long";
  let ncells = cells_for len in
  let total = ncells * Cell.payload_size in
  let tail = Bytes.make (total - len) '\000' in
  let tail_len = Bytes.length tail in
  Bytes.set_uint16_be tail (tail_len - 6) len;
  let crc =
    Crc32.digest_buf
      (Buf.append payload (Buf.of_bytes_sub tail ~pos:0 ~len:(tail_len - 4)))
  in
  Bytes.set_int32_be tail (tail_len - 4) crc;
  let pdu = Buf.append payload (Buf.of_bytes tail) in
  List.init ncells (fun i ->
      Cell.make ?ctx ~vci ~eop:(i = ncells - 1)
        (Buf.sub pdu ~pos:(i * Cell.payload_size) ~len:Cell.payload_size))

type error = Crc_mismatch | Length_mismatch | Too_long

let pp_error fmt = function
  | Crc_mismatch -> Format.pp_print_string fmt "crc-mismatch"
  | Length_mismatch -> Format.pp_print_string fmt "length-mismatch"
  | Too_long -> Format.pp_print_string fmt "too-long"

let error_reason = function
  | Crc_mismatch -> "crc_mismatch"
  | Length_mismatch -> "length_mismatch"
  | Too_long -> "too_long"

(* One counter per discard reason, cached so the hot path is a hashtable
   hit rather than a registry walk. *)
let m_discarded =
  let tbl : (string, Metrics.Counter.t) Hashtbl.t = Hashtbl.create 4 in
  fun reason ->
    let c =
      match Hashtbl.find_opt tbl reason with
      | Some c -> c
      | None ->
          let c =
            Metrics.counter
              ~help:"AAL5 CS-PDUs discarded during reassembly"
              "aal5_pdus_discarded_total"
              [ ("reason", reason) ]
          in
          Hashtbl.add tbl reason c;
          c
    in
    Metrics.Counter.inc c

module Reassembler = struct
  type t = {
    mutable cells : Buf.t list;  (* received payload views, reversed *)
    mutable got : int;  (* bytes across [cells] *)
    mutable error_count : int;
    mutable last_ctx : Span.ctx option;  (* context of the last EOP cell *)
  }

  let create () = { cells = []; got = 0; error_count = 0; last_ctx = None }
  let in_progress t = t.got > 0
  let errors t = t.error_count
  let last_ctx t = t.last_ctx
  let max_pdu_bytes = cells_for max_payload * Cell.payload_size

  (* Every discard path funnels through here: the per-VCI state is already
     reset by the caller, so a bad PDU never poisons the next one; the loss
     is visible in the error count, a metric, and the message's span. *)
  let discard t err =
    t.error_count <- t.error_count + 1;
    m_discarded (error_reason err);
    Span.mark t.last_ctx Span.Dropped;
    Error err

  let finish t =
    let pdu = Buf.concat (List.rev t.cells) in
    t.cells <- [];
    t.got <- 0;
    let total = Buf.length pdu in
    (* total is a positive multiple of 48 by construction, so the trailer
       reads below stay in bounds even for a garbage PDU *)
    let stored_len = Buf.get_uint16_be pdu (total - 6) in
    let stored_crc = Buf.get_uint32_be pdu (total - 4) in
    let crc = Crc32.digest_buf (Buf.sub pdu ~pos:0 ~len:(total - 4)) in
    if crc <> stored_crc then discard t Crc_mismatch
    else if
      (* validate the stored length before trusting it as a [Buf.sub]
         bound: it must fit inside the PDU and agree with the cell count *)
      stored_len > total - trailer_size
      || cells_for stored_len * Cell.payload_size <> total
    then discard t Length_mismatch
    else Ok (Buf.sub pdu ~pos:0 ~len:stored_len)

  let push t (cell : Cell.t) =
    if t.got + Cell.payload_size > max_pdu_bytes then begin
      t.cells <- [];
      t.got <- 0;
      t.last_ctx <- cell.ctx;
      Some (discard t Too_long)
    end
    else begin
      t.cells <- cell.payload :: t.cells;
      t.got <- t.got + Cell.payload_size;
      if cell.eop then begin
        t.last_ctx <- cell.ctx;
        Some (finish t)
      end
      else None
    end
end
