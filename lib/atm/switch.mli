(** An output-buffered ATM switch in the style of the Fore ASX-200: cells
    entering a port are routed on (input port, VCI), optionally relabelled,
    delayed by the fabric transit time, and queued on the output port's link.
    Cells with no route, or arriving to a full output queue, are dropped and
    counted. *)

type t

val create :
  Engine.Sim.t ->
  ports:int ->
  transit:Engine.Sim.time ->
  ?output_queue_capacity:int ->
  unit ->
  t

val attach_output : t -> port:int -> Link.t -> unit
(** Connect the outgoing link of a port. *)

val set_fault : t -> port:int -> Engine.Fault.t -> unit
(** Attach a fault injector to an output port: cells routed to it are
    additionally dropped per {!Engine.Fault.drops}, sharing the
    queue-overflow drop path (same counters, trace event, and [Dropped]
    span mark). *)

val add_route :
  t -> in_port:int -> in_vci:int -> out_port:int -> out_vci:int -> unit
(** Raises if the (in_port, in_vci) pair is already routed. *)

val remove_route : t -> in_port:int -> in_vci:int -> unit

val input : t -> port:int -> Cell.t -> unit
(** Deliver a cell into the switch (wired as the receiver of the host-side
    uplink). *)

val cells_routed : t -> int
val cells_dropped : t -> int
val unroutable : t -> int
