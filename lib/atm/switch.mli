(** An output-buffered ATM switch in the style of the Fore ASX-200: cells
    entering a port are routed on (input port, VCI), optionally relabelled,
    delayed by the fabric transit time, and queued on the output port's link.
    Cells with no route, or arriving to a full output queue, are dropped and
    counted. *)

type t

val create :
  Engine.Sim.t ->
  ports:int ->
  transit:Engine.Sim.time ->
  ?output_queue_capacity:int ->
  ?id:int ->
  unit ->
  t
(** [id] names this switch as one stage of a multi-switch fabric: per-port
    metric labels gain a [("switch", id)] dimension and the
    flight-recorder snapshot becomes [atm.switch.<id>], so stages never
    alias. Omit it for a single-switch network — the historical label set
    and snapshot name are kept byte-identical. *)

val attach_output : t -> port:int -> Link.t -> unit
(** Connect the outgoing link of a port. *)

val set_fault : t -> port:int -> Engine.Fault.t -> unit
(** Attach a fault injector to an output port: cells routed to it are
    additionally dropped per {!Engine.Fault.drops}, sharing the
    queue-overflow drop path (same counters, trace event, and [Dropped]
    span mark). *)

val add_route :
  t -> in_port:int -> in_vci:int -> out_port:int -> out_vci:int -> unit
(** Raises if the (in_port, in_vci) pair is already routed. *)

val remove_route : t -> in_port:int -> in_vci:int -> unit

val input : t -> port:int -> Cell.t -> unit
(** Deliver a cell into the switch (wired as the receiver of the host-side
    uplink). *)

val set_on_settled : t -> (in_port:int -> unit) -> unit
(** Called each time a real cell that entered on [in_port] leaves the
    fabric — forwarded onto its output link, dropped at the output queue,
    or unroutable. Backs the network's in-flight gate (DESIGN.md §14): a
    train may only be planned once every earlier per-cell send has reached
    its destination link, so planned downstream entries can never be
    overtaken by a cell still crossing the fabric. *)

type observed = {
  ob_in_port : int;
  ob_in_vci : int;
  ob_out_port : int;
  ob_out_vci : int;
  ob_eop : bool;
  ob_ctx : Engine.Span.ctx option;
  ob_queue : int;  (** output-queue depth found at arrival *)
  ob_forwarded : bool;  (** false: dropped (full queue or port fault) *)
}
(** What {!set_observer} sees of one routed cell, at its forwarding
    instant (arrival + transit). Unroutable cells are not observed — they
    never resolved to a route. *)

val set_observer : t -> (observed -> unit) -> unit
(** Install the per-cell forwarding observer (flow accounting and path
    records, DESIGN.md §17). Only the per-cell path calls it; committed
    trains are accounted analytically at commit time by the network. *)

val cells_routed : t -> int
val cells_dropped : t -> int
val unroutable : t -> int

val port_drops : t -> port:int -> int
(** Cells dropped at output [port] (full queue or port fault). *)

val queue_peak : t -> port:int -> float
(** Deepest the output queue has been at a cell's arrival, dropped cells
    included — the [atm_switch_queue_peak] near-miss gauge: a queue
    pinned at capacity shows here even when [port_queue_high_water]
    stopped rising because every further arrival was dropped. *)

val transit : t -> Engine.Sim.time
val output_queue_capacity : t -> int

val ports : t -> int
(** Number of ports this switch was created with — the bound for per-port
    operations like fault attachment (ports need not equal the number of
    hosts once the switch is a fabric stage). *)

(** {2 Train fast path (DESIGN.md §14)} *)

type srecord
(** Planned forwarding of one committed train through an output port; the
    routed counter and port high-water fold lazily from it. *)

val plan_route :
  t -> in_port:int -> in_vci:int -> (int * int * Link.t) option
(** [(out_port, out_vci, link)] if a whole train may be planned through:
    route present, output link attached, no port fault, and no other input
    port routes to the output (single source keeps downstream FIFO order
    equal to arrival order). *)

val commit_plan :
  t -> out_port:int -> times:Engine.Sim.time array -> hw:float array -> srecord
(** Install a planned forwarding: cell i leaves at [times.(i)] with the
    output queue [hw.(i)] deep after the send. *)

val truncate_plan : t -> srecord -> keep:int -> unit
(** The owning train was cut to [keep] cells; the rest never arrive. *)
