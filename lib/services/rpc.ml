open Engine

let h_call = 230
let h_return = 231
let h_error = 232

type outcome = Value of bytes | Failed of string

type t = {
  am : Uam.t;
  procs : (int, src:int -> bytes -> bytes) Hashtbl.t;
  pending : (int, outcome option ref) Hashtbl.t; (* xid -> result slot *)
  mutable next_xid : int;
  mutable made : int;
  mutable served : int;
}

exception Timeout
exception Remote_error of string

let uam t = t.am
let calls_made t = t.made
let calls_served t = t.served

let register t ~proc f =
  if proc < 0 || proc > 255 then invalid_arg "Rpc.register: bad procedure id";
  if Hashtbl.mem t.procs proc then
    Fmt.invalid_arg "Rpc.register: procedure %d exists" proc;
  Hashtbl.replace t.procs proc f

let unregister t ~proc = Hashtbl.remove t.procs proc

let attach am =
  let t =
    {
      am;
      procs = Hashtbl.create 16;
      pending = Hashtbl.create 16;
      next_xid = 0;
      made = 0;
      served = 0;
    }
  in
  (* request: args = [xid; proc], payload = marshalled arguments *)
  Uam.register_handler am h_call (fun am ~src tk ~args ~payload ->
      let xid = args.(0) and proc = args.(1) in
      let tk = Option.get tk in
      match Hashtbl.find_opt t.procs proc with
      | None ->
          Uam.reply am tk ~handler:h_error ~args:[| xid |]
            ~payload:(Buf.of_string (Printf.sprintf "no such procedure %d" proc))
            ()
      | Some f -> (
          (* the copy out of the transport into the server's argument bytes *)
          match f ~src (Buf.to_bytes ~layer:"rpc" payload) with
          | result ->
              t.served <- t.served + 1;
              Uam.reply am tk ~handler:h_return ~args:[| xid |]
                ~payload:(Buf.of_bytes result) ()
          | exception e ->
              Uam.reply am tk ~handler:h_error ~args:[| xid |]
                ~payload:(Buf.of_string (Printexc.to_string e))
                ()));
  let complete outcome ~args ~payload =
    match Hashtbl.find_opt t.pending args.(0) with
    | Some slot -> slot := Some (outcome payload)
    | None -> () (* reply past its timeout: dropped *)
  in
  Uam.register_handler am h_return (fun _ ~src:_ _ ~args ~payload ->
      complete (fun p -> Value (Buf.to_bytes ~layer:"rpc" p)) ~args ~payload);
  Uam.register_handler am h_error (fun _ ~src:_ _ ~args ~payload ->
      complete
        (fun p -> Failed (Bytes.to_string (Buf.to_bytes ~layer:"rpc" p)))
        ~args ~payload);
  t

let call ?(timeout = Sim.sec 1) t ~dst ~proc arg =
  let sim = Unet.sim (Uam.unet t.am) in
  let xid = t.next_xid in
  t.next_xid <- (t.next_xid + 1) land 0xFFFFF;
  let slot = ref None in
  Hashtbl.replace t.pending xid slot;
  t.made <- t.made + 1;
  Uam.request t.am ~dst ~handler:h_call ~args:[| xid; proc |]
    ~payload:(Buf.of_bytes arg) ();
  let deadline = Sim.now sim + timeout in
  (* serve our own incoming traffic while waiting (a server can call out) *)
  Uam.poll_until t.am (fun () -> !slot <> None || Sim.now sim >= deadline);
  Hashtbl.remove t.pending xid;
  match !slot with
  | Some (Value v) -> v
  | Some (Failed msg) -> raise (Remote_error msg)
  | None -> raise Timeout

let serve_forever t = Uam.poll_until t.am (fun () -> false)
