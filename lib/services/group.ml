let h_submit = 225 (* member -> sequencer: payload to order *)
let h_ordered = 226 (* sequencer -> members: args=[seq; src], payload *)

type t = {
  am : Uam.t;
  deliver : seq:int -> src:int -> bytes -> unit;
  mutable next_deliver : int; (* next sequence number to deliver *)
  early : (int, int * Engine.Buf.t) Hashtbl.t; (* seq -> (src, payload) *)
  mutable n_delivered : int;
  (* sequencer state (node 0) *)
  mutable next_seq : int;
}

let delivered t = t.n_delivered
let sequenced t = t.next_seq

let rec deliver_ready t =
  match Hashtbl.find_opt t.early t.next_deliver with
  | None -> ()
  | Some (src, payload) ->
      Hashtbl.remove t.early t.next_deliver;
      let seq = t.next_deliver in
      t.next_deliver <- seq + 1;
      t.n_delivered <- t.n_delivered + 1;
      (* the copy out of the transport into the application's message *)
      t.deliver ~seq ~src (Engine.Buf.to_bytes ~layer:"group" payload);
      deliver_ready t

let accept t ~seq ~src payload =
  if seq >= t.next_deliver then begin
    Hashtbl.replace t.early seq (src, payload);
    deliver_ready t
  end

let create am ~deliver =
  let t =
    {
      am;
      deliver;
      next_deliver = 0;
      early = Hashtbl.create 16;
      n_delivered = 0;
      next_seq = 0;
    }
  in
  let rank = Uam.rank am and nodes = Uam.nodes am in
  if rank = 0 then
    (* the sequencer: order the message and fan it out (including to self) *)
    Uam.register_handler am h_submit (fun am ~src _tk ~args:_ ~payload ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        for dst = 1 to nodes - 1 do
          Uam.request am ~dst ~handler:h_ordered ~args:[| seq; src |] ~payload
            ()
        done;
        accept t ~seq ~src payload);
  Uam.register_handler am h_ordered (fun _ ~src:_ _tk ~args ~payload ->
      accept t ~seq:args.(0) ~src:args.(1) payload);
  t

let broadcast t payload =
  let payload = Engine.Buf.of_bytes payload in
  if Uam.rank t.am = 0 then begin
    (* local fast path through the sequencer *)
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    for dst = 1 to Uam.nodes t.am - 1 do
      Uam.request t.am ~dst ~handler:h_ordered ~args:[| seq; 0 |] ~payload ()
    done;
    accept t ~seq ~src:0 payload
  end
  else Uam.request t.am ~dst:0 ~handler:h_submit ~payload ()

let serve t ~until = Uam.poll_until t.am (fun () -> until ())
