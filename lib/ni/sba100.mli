(** The Fore SBA-100 (§4.1): a dumb interface with programmed-I/O cell
    FIFOs, no DMA, no AAL5 CRC hardware and no segmentation/reassembly. The
    host does everything at trap level, so U-Net on this board consists
    entirely of kernel-emulated endpoints; AAL5 SAR and the CRC run in
    software on the host CPU (CRC is 33% of the send and 40% of the receive
    AAL5 overhead). Calibrated to Table 1: 33 µs one-way for a single cell
    (66 µs RTT) and a 6.8 MB/s bandwidth ceiling at 1 KB packets. *)

type config = {
  name : string;
  trap_ns : int;  (** fast kernel trap (28/43-instruction paths) *)
  doorbell_ns : int;
  rx_poll_ns : int;
  tx_fixed_ns : int;  (** per message, in the sender's trap *)
  tx_per_cell_ns : int;  (** software SAR + CRC + PIO store, per cell *)
  rx_per_cell_ns : int;
  rx_fixed_ns : int;
  crc_tx_share : float;  (** fraction of AAL5 send overhead that is CRC *)
  crc_rx_share : float;
  max_seg_size : int;
}

val default_config : config

type t

val create : Atm.Network.t -> host:int -> cpu:Host.Cpu.t -> ?config:config -> unit -> t

val backend : t -> Unet.backend
(** All endpoints on this backend must be created with [~emulated:true]
    ([max_endpoints] is 0). *)

val set_fault : t -> Engine.Fault.t -> unit
(** Attach a fault injector: [dma_stall] charges the sending CPU extra
    per-PDU PIO time, [rx_overrun] drops reassembled PDUs before the mux.
    [create] already attaches one when a global spec names the [Ni] site. *)

val config : t -> config
val pdus_sent : t -> int
val pdus_received : t -> int
val reassembly_errors : t -> int
