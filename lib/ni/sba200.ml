(* Calibration anchors (see DESIGN.md §4):
   - single-cell one-way = doorbell + tx_single + wire(~9.1 µs through the
     switch) + rx_cell + rx_single + rx_poll ≈ 32.5 µs  → 65 µs RTT
   - 48-byte (2-cell) one-way ≈ 60 µs → 120 µs RTT, dominated by the
     buffer-path fixed costs on both sides
   - per-cell i960 costs below the 3.03 µs wire serialization, so extra
     cells add ~3 µs each one-way and the fiber saturates once the fixed
     costs amortize: tx_fixed ≤ n·(3.03 − tx_per_cell) at n ≈ 17 cells
     (800 bytes). *)
let default_config =
  {
    I960_nic.name = "SBA-200/U-Net";
    copy_layer = "sba200";
    doorbell_ns = 2_000;
    rx_poll_ns = 1_500;
    kernel_op_ns = 20_000; (* emulated endpoints pay a real system call *)
    tx_single_ns = 9_000;
    tx_fixed_ns = 20_000;
    tx_per_cell_ns = 1_800;
    rx_cell_ns = 1_800;
    rx_single_ns = 9_100;
    rx_multi_fixed_ns = 20_000;
    single_cell_optimization = true;
    max_endpoints = 16; (* bounded by the 256 KB i960 memory (§4.2.4) *)
    max_seg_size = 1024 * 1024;
  }

let create net ~host ?(config = default_config) () =
  I960_nic.create net ~host config
