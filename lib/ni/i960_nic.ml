open Engine

type config = {
  name : string;
  copy_layer : string;
  doorbell_ns : int;
  rx_poll_ns : int;
  kernel_op_ns : int;
  tx_single_ns : int;
  tx_fixed_ns : int;
  tx_per_cell_ns : int;
  rx_cell_ns : int;
  rx_single_ns : int;
  rx_multi_fixed_ns : int;
  single_cell_optimization : bool;
  max_endpoints : int;
  max_seg_size : int;
}

type t = {
  sim : Sim.t;
  net : Atm.Network.t;
  host : int;
  cfg : config;
  server : Sync.Server.t; (* the i960 *)
  kernel : Sync.Server.t; (* kernel path for emulated endpoints *)
  mux : Unet.Mux.t;
  txq : Unet.Endpoint.t Queue.t; (* one entry per posted descriptor *)
  mutable tx_active : bool;
  mutable fault : Fault.t option;
  reasm : (int, Atm.Aal5.Reassembler.t) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
  mutable errors : int;
  m_sent : Metrics.Counter.t;
  m_received : Metrics.Counter.t;
  m_errors : Metrics.Counter.t;
  m_demux : Metrics.Counter.t;
  m_dma_bytes : Metrics.Counter.t;
}

(* Direct-access framing: on direct-access endpoints every PDU carries a
   5-byte prefix [flag; offset_be32]; flag 1 means "deposit at offset". *)
let direct_prefix_size = 5

let add_direct_prefix dest_offset data =
  let prefix = Bytes.create direct_prefix_size in
  (match dest_offset with
  | Some off ->
      Bytes.set_uint8 prefix 0 1;
      Bytes.set_int32_be prefix 1 (Int32.of_int off)
  | None ->
      Bytes.set_uint8 prefix 0 0;
      Bytes.set_int32_be prefix 1 0l);
  Buf.append (Buf.of_bytes prefix) data

let parse_direct_prefix payload =
  if Buf.length payload < direct_prefix_size then (None, payload)
  else
    let flag = Buf.get_uint8 payload 0 in
    let off = Int32.to_int (Buf.get_uint32_be payload 1) in
    let data =
      Buf.sub payload ~pos:direct_prefix_size
        ~len:(Buf.length payload - direct_prefix_size)
    in
    ((if flag = 1 then Some off else None), data)

(* A descriptor's payload as a zero-copy view over the communication
   segment; the DMA happens in one burst in [process_desc]. *)
let gather (ep : Unet.Endpoint.t) (desc : Unet.Desc.tx) =
  let data =
    match desc.tx_payload with
    | Unet.Desc.Inline b -> b
    | Unet.Desc.Buffers ranges ->
        Buf.concat
          (List.map
             (fun (off, len) -> Unet.Segment.view ep.segment ~off ~len)
             ranges)
  in
  if ep.direct_access then add_direct_prefix desc.dest_offset data else data

(* i960 occupancy attributed under a per-NI subtree of the host's profile
   root (never nested under whatever application frame happens to be open:
   the device runs asynchronously to the host CPU). *)
let prof t stage cost =
  if Profile.enabled () then
    Profile.charge_root ~host:t.host
      ~frames:[ "ni"; t.cfg.name; stage ]
      cost

let rec pump_next t =
  match Queue.take_opt t.txq with
  | None -> t.tx_active <- false
  | Some ep -> (
      match Unet.Ring.pop ep.tx_ring with
      | None -> pump_next t
      | Some desc -> process_desc t ep desc)

and process_desc t (ep : Unet.Endpoint.t) (desc : Unet.Desc.tx) =
  match Unet.Endpoint.find_channel ep desc.chan with
  | None ->
      (* channel torn down after the descriptor was posted: discard *)
      pump_next t
  | Some chan -> (
      (* one DMA burst moves the whole PDU out of the segment into i960
         memory: a single counted copy however many cells follow, and the
         snapshot keeps in-flight cells valid after the sender reuses its
         buffers (desc.injected) *)
      Span.mark desc.ctx Span.Nic_tx;
      let data =
        Buf.copy ~layer:(t.cfg.copy_layer ^ "_tx_dma") (gather ep desc)
      in
      Metrics.Counter.add t.m_dma_bytes (Buf.length data);
      let cells =
        Atm.Aal5.segment ?ctx:desc.ctx ~vci:chan.Unet.Channel.tx_vci data
      in
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.tx" ~tid:t.host
          ~args:
            [
              ("len", Trace.Int (Buf.length data));
              ("cells", Trace.Int (List.length cells));
            ];
      (* a stalled DMA burst shows up as extra occupancy of the i960,
         delaying this descriptor and everything serialized behind it *)
      let stall =
        match t.fault with Some f -> Fault.dma_stall f | None -> 0
      in
      if stall > 0 && Trace.enabled () then
        Trace.instant Trace.Desc "ni.dma_stall" ~tid:t.host
          ~args:[ ("ns", Trace.Int stall) ];
      (* 1-in-N deep inspection: the index advances once per PDU, before
         the path choice, so the sampled set is identical across
         --per-cell; a hit vetoes the train and runs per-cell in full
         observer detail *)
      let deep = Sample.next_pdu () in
      match cells with
      | [ cell ] when t.cfg.single_cell_optimization ->
          prof t "tx_single" (t.cfg.tx_single_ns + stall);
          Sync.Server.submit t.server ~cost:(t.cfg.tx_single_ns + stall)
            (fun () -> inject ~deep t desc cell [])
      | _ ->
          if deep || not (try_train t desc cells) then begin
            prof t "tx_dma" (t.cfg.tx_fixed_ns + stall);
            Sync.Server.submit t.server ~cost:(t.cfg.tx_fixed_ns + stall)
              (fun () -> send_cells ~deep t desc cells)
          end)

(* Send a multi-cell PDU as one analytically planned train (DESIGN.md §14):
   the whole uplink / switch / downlink journey is computed up front and the
   i960 runs a chain batch standing in for the setup + per-cell unit jobs.
   Returns false — caller stays on the per-cell path — when any observer or
   site condition forbids it or any element refuses the plan. *)
and try_train t desc cells =
  if
    (not (Trainmode.active ()))
    || t.fault <> None
    || not (Sync.Server.idle t.server)
  then false
  else
    let arr = Array.of_list cells in
    if Array.length arr < 2 then false
    else
      let train = Atm.Cell.Train.of_cells arr in
      let now = Sim.now t.sim in
      let first_end = now + t.cfg.tx_fixed_ns in
      match
        Atm.Network.commit_train t.net ~host:t.host ~train
          ~first_attempt:(first_end + t.cfg.tx_per_cell_ns)
          ~gap:t.cfg.tx_per_cell_ns
          ~on_interfere:(fun () -> Sync.Server.interfere t.server)
      with
      | None -> false
      | Some accepts ->
          let n = Array.length accepts in
          (* instant the per-cell path creates the event that performs the
             final acceptance: the last unit job's completion event is made
             when the job starts (previous accept), unless the last accept
             needed link retries — then it is the retry one cell slot
             before *)
          let done_sched =
            if accepts.(n - 1) - accepts.(n - 2) = t.cfg.tx_per_cell_ns then
              accepts.(n - 2)
            else
              accepts.(n - 1)
              - Atm.Link.cell_time (Atm.Network.uplink t.net ~host:t.host)
          in
          Sync.Server.begin_chain t.server ~done_sched ~first_end
            ~unit_cost:t.cfg.tx_per_cell_ns ~accepts
            ~on_done:(fun () -> chain_done t desc)
            ~on_split:(fun ~accepted ~phase ->
              chain_split t desc arr ~train ~accepted ~phase)
            ();
          true

(* The chain's last cell was accepted: identical to the last per-cell
   inject's success continuation, with the interfere hook retired before
   the pump possibly commits the next train. *)
and chain_done t (desc : Unet.Desc.tx) =
  Atm.Link.clear_interfere (Atm.Network.uplink t.net ~host:t.host);
  desc.Unet.Desc.injected <- true;
  t.sent <- t.sent + 1;
  Metrics.Counter.inc t.m_sent;
  pump_next t

(* A plain job interfered with the chain: the train keeps its [accepted]
   prefix (planned state past now was just discarded by the truncation
   listeners) and the remaining cells re-enter the per-cell path from
   exactly where the batch stood. *)
and chain_split t desc arr ~train ~accepted ~phase =
  let uplink = Atm.Network.uplink t.net ~host:t.host in
  Atm.Link.clear_interfere uplink;
  Atm.Cell.Train.truncate train ~keep:accepted ~now:(Sim.now t.sim);
  let rest = ref [] in
  for i = Array.length arr - 1 downto accepted do
    rest := arr.(i) :: !rest
  done;
  let rest = !rest in
  match phase with
  | Sync.Server.Chain_first f_end ->
      (* the fixed-cost setup job is in flight; at its end the per-cell
         path starts submitting unit jobs *)
      Sync.Server.resume_inflight t.server ~until:f_end ~k:(fun () ->
          send_cells t desc rest)
  | Sync.Server.Chain_unit u_end ->
      (* the pending cell's unit job is in flight; its completion is the
         cell's first send attempt *)
      Sync.Server.resume_inflight t.server ~until:u_end ~k:(fun () ->
          inject t desc (List.hd rest) (List.tl rest))
  | Sync.Server.Chain_gap first_attempt ->
      (* between refused attempts: the per-cell path here is a bare retry
         event (the server sits idle), re-attempting every cell slot since
         [first_attempt]; re-arm the first attempt not in the past *)
      let ct = Atm.Link.cell_time uplink in
      let now = Sim.now t.sim in
      let at = ref first_attempt in
      while !at < now do
        at := !at + ct
      done;
      if !at = now then inject t desc (List.hd rest) (List.tl rest)
      else
        ignore
          (Sim.schedule ~label:"ni.retry" t.sim ~delay:(!at - now) (fun () ->
               inject t desc (List.hd rest) (List.tl rest)))

and send_cells ?(deep = false) t desc = function
  | [] -> ()
  | cell :: rest ->
      prof t "tx_cell" t.cfg.tx_per_cell_ns;
      Sync.Server.submit t.server ~cost:t.cfg.tx_per_cell_ns (fun () ->
          inject ~deep t desc cell rest)

and inject ?(deep = false) t desc cell rest =
  if Atm.Network.send t.net ~host:t.host cell then
    if rest = [] then pdu_injected ~deep ~vci:cell.Atm.Cell.vci t desc
    else send_cells ~deep t desc rest
  else
    (* NI output FIFO full: stall one cell time and retry (the i960 polls
       the FIFO level; cells are never dropped on the way out). *)
    let retry_delay =
      Atm.Link.cell_time (Atm.Network.uplink t.net ~host:t.host)
    in
    ignore
      (Sim.schedule ~label:"ni.retry" t.sim ~delay:retry_delay (fun () ->
           inject ~deep t desc cell rest))

and pdu_injected ~deep:_ ~vci t (desc : Unet.Desc.tx) =
  desc.Unet.Desc.injected <- true;
  t.sent <- t.sent + 1;
  Metrics.Counter.inc t.m_sent;
  if Sample.active () then
    (* Under sampling, a per-cell PDU (the sampled one, or a neighbour
       squeezed per-cell while sampled cells drain) must not de-train the
       rest of the run. Two things block the next PDU's train commit right
       here: this completion runs inside the last unit job's thunk with
       the server still marked busy (the train path's idle check), and the
       cells just injected are still in the fabric (the commit gate
       refuses until they settle and the destination downlink goes
       quiet). So leave the job context, then poll once per cell slot
       until the path is clear, and only then pump. Without sampling the
       pump stays in-thunk, byte-identical to the reference path. *)
    ignore
      (Sim.schedule ~label:"ni.pump" t.sim ~delay:0 (fun () ->
           drain_pump t ~vci))
  else pump_next t

and drain_pump t ~vci =
  if Atm.Network.path_clear t.net ~host:t.host ~vci then pump_next t
  else
    let ct = Atm.Link.cell_time (Atm.Network.uplink t.net ~host:t.host) in
    ignore
      (Sim.schedule ~label:"ni.pump" t.sim ~delay:ct (fun () ->
           drain_pump t ~vci))

let notify_tx t ep =
  Queue.add ep t.txq;
  if not t.tx_active then begin
    t.tx_active <- true;
    pump_next t
  end

let deliver_pdu t ?ctx vci payload =
  Metrics.Counter.inc t.m_demux;
  if Trace.enabled () then
    Trace.instant Trace.Desc "ni.rx_demux" ~tid:t.host
      ~args:
        [
          ("vci", Trace.Int vci); ("len", Trace.Int (Buf.length payload));
        ];
  match Unet.Mux.lookup t.mux ~rx_vci:vci with
  | None -> ignore (Unet.Mux.deliver t.mux ~rx_vci:vci ?ctx payload)
  | Some (ep, _) ->
      let dest_offset, data =
        if ep.Unet.Endpoint.direct_access then parse_direct_prefix payload
        else (None, payload)
      in
      (match Unet.Mux.deliver t.mux ~rx_vci:vci ?ctx ?dest_offset data with
      | Some _ ->
          t.received <- t.received + 1;
          Metrics.Counter.inc t.m_received
      | None -> ())

let deliver t ?ctx vci payload =
  match t.fault with
  | Some f when Fault.rx_overrun f ->
      (* the rx ring overran while the PDU sat in i960 memory: it never
         reaches the mux, and recovery is the sender's problem *)
      Unet.Mux.rx_dropped ?ctx "ni_overrun";
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.rx_overrun" ~tid:t.host
          ~args:[ ("vci", Trace.Int vci) ]
  | _ -> deliver_pdu t ?ctx vci payload

let fits_single_cell payload =
  Buf.length payload <= Atm.Cell.payload_size - Atm.Aal5.trailer_size

(* The body of a per-cell rx job: feed the reassembler and, at the EOP,
   hand the PDU to the delivery job. Shared verbatim by the per-cell path
   (inside an rx_cell job) and the train path (as a deferred paced
   action). *)
let rx_cell_body t (cell : Atm.Cell.t) =
  let r =
    match Hashtbl.find_opt t.reasm cell.vci with
    | Some r -> r
    | None ->
        let r = Atm.Aal5.Reassembler.create () in
        Hashtbl.add t.reasm cell.vci r;
        r
  in
  match Atm.Aal5.Reassembler.push r cell with
  | None -> ()
  | Some (Error _) ->
      t.errors <- t.errors + 1;
      Metrics.Counter.inc t.m_errors
  | Some (Ok payload) ->
      let ctx = Atm.Aal5.Reassembler.last_ctx r in
      let cost =
        if t.cfg.single_cell_optimization && fits_single_cell payload then
          t.cfg.rx_single_ns
        else t.cfg.rx_multi_fixed_ns
      in
      prof t "rx_deliver" cost;
      Sync.Server.submit t.server ~cost (fun () ->
          deliver t ?ctx cell.vci payload)

let on_cell t (cell : Atm.Cell.t) =
  if cell.eop then Span.mark cell.ctx Span.Rx_cell;
  prof t "rx_cell" t.cfg.rx_cell_ns;
  Sync.Server.submit t.server ~cost:t.cfg.rx_cell_ns (fun () ->
      rx_cell_body t cell)

(* Per-cell fallback for a received train: deliver cell i into the normal
   receive path at its per-cell arrival instant, re-checking the live
   length so an upstream truncation just stops the chain (the per-cell
   path re-delivers the cut cells for real). *)
let rec expand_rx_train t train ~rx_vci ~deliveries i =
  if i < Atm.Cell.Train.length train then begin
    on_cell t (Atm.Cell.with_vci (Atm.Cell.Train.cell train i) rx_vci);
    if i + 1 < Atm.Cell.Train.length train then
      Sim.schedule_drop ~label:"ni.rx_train" t.sim
        ~delay:(deliveries.(i + 1) - Sim.now t.sim)
        (fun () -> expand_rx_train t train ~rx_vci ~deliveries (i + 1))
  end

(* A whole train arriving at the NI: model the run of per-cell rx jobs as
   one paced batch — cell i's handling starts once it has arrived and the
   previous one is done — with the reassembly pushes deferred to the batch
   completion (nothing observes the reassembler in between). The EOP push
   submits the delivery job for real, exactly as the per-cell path. *)
let on_train t train ~rx_vci ~deliveries =
  let n = Atm.Cell.Train.length train in
  let paced =
    if Trainmode.active () && t.fault = None then
      let actions =
        Array.init n (fun i ->
            let cell =
              Atm.Cell.with_vci (Atm.Cell.Train.cell train i) rx_vci
            in
            fun () -> rx_cell_body t cell)
      in
      Sync.Server.submit_paced t.server ~cost:t.cfg.rx_cell_ns
        ~arrivals:(Array.sub deliveries 0 n)
        ~actions
    else None
  in
  match paced with
  | Some p ->
      Atm.Cell.Train.on_truncate train (fun ~keep ~now:_ ->
          Sync.Server.truncate_paced t.server p ~keep)
  | None -> expand_rx_train t train ~rx_vci ~deliveries 0

let create net ~host cfg =
  let sim = Atm.Network.sim net in
  let labels = [ ("host", string_of_int host); ("nic", cfg.name) ] in
  let t =
    {
      sim;
      net;
      host;
      cfg;
      server = Sync.Server.create sim;
      kernel = Sync.Server.create sim;
      mux = Unet.Mux.create ~host ~copy_layer:(cfg.copy_layer ^ "_rx") ();
      txq = Queue.create ();
      tx_active = false;
      fault =
        Fault.configured_at Fault.Ni ~site:(Printf.sprintf "ni.%d" host);
      reasm = Hashtbl.create 16;
      sent = 0;
      received = 0;
      errors = 0;
      m_sent =
        Metrics.counter ~help:"PDUs injected onto the wire by a NI"
          "ni_pdus_sent_total" labels;
      m_received =
        Metrics.counter ~help:"PDUs demultiplexed into an endpoint by a NI"
          "ni_pdus_received_total" labels;
      m_errors =
        Metrics.counter ~help:"AAL5 reassembly failures at a NI"
          "ni_reassembly_errors_total" labels;
      m_demux =
        Metrics.counter ~help:"reassembled PDUs presented to the mux by a NI"
          "ni_rx_demux_total" labels;
      m_dma_bytes =
        Metrics.counter ~help:"bytes the on-board processor DMAed out of segments"
          "ni_dma_bytes_total" labels;
    }
  in
  Atm.Network.attach_rx net ~host (fun cell -> on_cell t cell);
  Atm.Network.attach_rx_train net ~host (fun train ~rx_vci ~deliveries ->
      on_train t train ~rx_vci ~deliveries);
  Timeseries.register ~kind:Timeseries.Utilization "ni_i960_utilization"
    labels (fun () -> float_of_int (Sync.Server.busy_time t.server));
  Timeseries.register "ni_i960_queue_depth" labels (fun () ->
      float_of_int (Sync.Server.queue_length t.server));
  t

let backend t =
  {
    Unet.nic_name = t.cfg.name;
    notify_tx = (fun ep -> notify_tx t ep);
    mux = t.mux;
    max_endpoints = t.cfg.max_endpoints;
    max_seg_size = t.cfg.max_seg_size;
    doorbell_ns = t.cfg.doorbell_ns;
    rx_poll_ns = t.cfg.rx_poll_ns;
    kernel_op_ns = t.cfg.kernel_op_ns;
    kernel_path = Some t.kernel;
  }

let set_fault t f = t.fault <- Some f
let config t = t.cfg
let server t = t.server
let pdus_sent t = t.sent
let pdus_received t = t.received
let reassembly_errors t = t.errors
