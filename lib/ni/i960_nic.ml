open Engine

type config = {
  name : string;
  copy_layer : string;
  doorbell_ns : int;
  rx_poll_ns : int;
  kernel_op_ns : int;
  tx_single_ns : int;
  tx_fixed_ns : int;
  tx_per_cell_ns : int;
  rx_cell_ns : int;
  rx_single_ns : int;
  rx_multi_fixed_ns : int;
  single_cell_optimization : bool;
  max_endpoints : int;
  max_seg_size : int;
}

type t = {
  sim : Sim.t;
  net : Atm.Network.t;
  host : int;
  cfg : config;
  server : Sync.Server.t; (* the i960 *)
  kernel : Sync.Server.t; (* kernel path for emulated endpoints *)
  mux : Unet.Mux.t;
  txq : Unet.Endpoint.t Queue.t; (* one entry per posted descriptor *)
  mutable tx_active : bool;
  mutable fault : Fault.t option;
  reasm : (int, Atm.Aal5.Reassembler.t) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
  mutable errors : int;
  m_sent : Metrics.Counter.t;
  m_received : Metrics.Counter.t;
  m_errors : Metrics.Counter.t;
  m_demux : Metrics.Counter.t;
  m_dma_bytes : Metrics.Counter.t;
}

(* Direct-access framing: on direct-access endpoints every PDU carries a
   5-byte prefix [flag; offset_be32]; flag 1 means "deposit at offset". *)
let direct_prefix_size = 5

let add_direct_prefix dest_offset data =
  let prefix = Bytes.create direct_prefix_size in
  (match dest_offset with
  | Some off ->
      Bytes.set_uint8 prefix 0 1;
      Bytes.set_int32_be prefix 1 (Int32.of_int off)
  | None ->
      Bytes.set_uint8 prefix 0 0;
      Bytes.set_int32_be prefix 1 0l);
  Buf.append (Buf.of_bytes prefix) data

let parse_direct_prefix payload =
  if Buf.length payload < direct_prefix_size then (None, payload)
  else
    let flag = Buf.get_uint8 payload 0 in
    let off = Int32.to_int (Buf.get_uint32_be payload 1) in
    let data =
      Buf.sub payload ~pos:direct_prefix_size
        ~len:(Buf.length payload - direct_prefix_size)
    in
    ((if flag = 1 then Some off else None), data)

(* A descriptor's payload as a zero-copy view over the communication
   segment; the DMA happens in one burst in [process_desc]. *)
let gather (ep : Unet.Endpoint.t) (desc : Unet.Desc.tx) =
  let data =
    match desc.tx_payload with
    | Unet.Desc.Inline b -> b
    | Unet.Desc.Buffers ranges ->
        Buf.concat
          (List.map
             (fun (off, len) -> Unet.Segment.view ep.segment ~off ~len)
             ranges)
  in
  if ep.direct_access then add_direct_prefix desc.dest_offset data else data

(* i960 occupancy attributed under a per-NI subtree of the host's profile
   root (never nested under whatever application frame happens to be open:
   the device runs asynchronously to the host CPU). *)
let prof t stage cost =
  if Profile.enabled () then
    Profile.charge_root ~host:t.host
      ~frames:[ "ni"; t.cfg.name; stage ]
      cost

let rec pump_next t =
  match Queue.take_opt t.txq with
  | None -> t.tx_active <- false
  | Some ep -> (
      match Unet.Ring.pop ep.tx_ring with
      | None -> pump_next t
      | Some desc -> process_desc t ep desc)

and process_desc t (ep : Unet.Endpoint.t) (desc : Unet.Desc.tx) =
  match Unet.Endpoint.find_channel ep desc.chan with
  | None ->
      (* channel torn down after the descriptor was posted: discard *)
      pump_next t
  | Some chan -> (
      (* one DMA burst moves the whole PDU out of the segment into i960
         memory: a single counted copy however many cells follow, and the
         snapshot keeps in-flight cells valid after the sender reuses its
         buffers (desc.injected) *)
      Span.mark desc.ctx Span.Nic_tx;
      let data =
        Buf.copy ~layer:(t.cfg.copy_layer ^ "_tx_dma") (gather ep desc)
      in
      Metrics.Counter.add t.m_dma_bytes (Buf.length data);
      let cells =
        Atm.Aal5.segment ?ctx:desc.ctx ~vci:chan.Unet.Channel.tx_vci data
      in
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.tx" ~tid:t.host
          ~args:
            [
              ("len", Trace.Int (Buf.length data));
              ("cells", Trace.Int (List.length cells));
            ];
      (* a stalled DMA burst shows up as extra occupancy of the i960,
         delaying this descriptor and everything serialized behind it *)
      let stall =
        match t.fault with Some f -> Fault.dma_stall f | None -> 0
      in
      if stall > 0 && Trace.enabled () then
        Trace.instant Trace.Desc "ni.dma_stall" ~tid:t.host
          ~args:[ ("ns", Trace.Int stall) ];
      match cells with
      | [ cell ] when t.cfg.single_cell_optimization ->
          prof t "tx_single" (t.cfg.tx_single_ns + stall);
          Sync.Server.submit t.server ~cost:(t.cfg.tx_single_ns + stall)
            (fun () -> inject t desc cell [])
      | _ ->
          prof t "tx_dma" (t.cfg.tx_fixed_ns + stall);
          Sync.Server.submit t.server ~cost:(t.cfg.tx_fixed_ns + stall)
            (fun () -> send_cells t desc cells))

and send_cells t desc = function
  | [] ->
      desc.Unet.Desc.injected <- true;
      t.sent <- t.sent + 1;
      Metrics.Counter.inc t.m_sent;
      pump_next t
  | cell :: rest ->
      prof t "tx_cell" t.cfg.tx_per_cell_ns;
      Sync.Server.submit t.server ~cost:t.cfg.tx_per_cell_ns (fun () ->
          inject t desc cell rest)

and inject t desc cell rest =
  if Atm.Network.send t.net ~host:t.host cell then
    if rest = [] then begin
      desc.Unet.Desc.injected <- true;
      t.sent <- t.sent + 1;
      Metrics.Counter.inc t.m_sent;
      pump_next t
    end
    else send_cells t desc rest
  else
    (* NI output FIFO full: stall one cell time and retry (the i960 polls
       the FIFO level; cells are never dropped on the way out). *)
    let retry_delay = Atm.Link.cell_time (Atm.Network.uplink t.net ~host:t.host) in
    ignore
      (Sim.schedule ~label:"ni.retry" t.sim ~delay:retry_delay (fun () ->
           inject t desc cell rest))

let notify_tx t ep =
  Queue.add ep t.txq;
  if not t.tx_active then begin
    t.tx_active <- true;
    pump_next t
  end

let deliver_pdu t ?ctx vci payload =
  Metrics.Counter.inc t.m_demux;
  if Trace.enabled () then
    Trace.instant Trace.Desc "ni.rx_demux" ~tid:t.host
      ~args:
        [
          ("vci", Trace.Int vci); ("len", Trace.Int (Buf.length payload));
        ];
  match Unet.Mux.lookup t.mux ~rx_vci:vci with
  | None -> ignore (Unet.Mux.deliver t.mux ~rx_vci:vci ?ctx payload)
  | Some (ep, _) ->
      let dest_offset, data =
        if ep.Unet.Endpoint.direct_access then parse_direct_prefix payload
        else (None, payload)
      in
      (match Unet.Mux.deliver t.mux ~rx_vci:vci ?ctx ?dest_offset data with
      | Some _ ->
          t.received <- t.received + 1;
          Metrics.Counter.inc t.m_received
      | None -> ())

let deliver t ?ctx vci payload =
  match t.fault with
  | Some f when Fault.rx_overrun f ->
      (* the rx ring overran while the PDU sat in i960 memory: it never
         reaches the mux, and recovery is the sender's problem *)
      Unet.Mux.rx_dropped ?ctx "ni_overrun";
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.rx_overrun" ~tid:t.host
          ~args:[ ("vci", Trace.Int vci) ]
  | _ -> deliver_pdu t ?ctx vci payload

let fits_single_cell payload =
  Buf.length payload <= Atm.Cell.payload_size - Atm.Aal5.trailer_size

let on_cell t (cell : Atm.Cell.t) =
  if cell.eop then Span.mark cell.ctx Span.Rx_cell;
  prof t "rx_cell" t.cfg.rx_cell_ns;
  Sync.Server.submit t.server ~cost:t.cfg.rx_cell_ns (fun () ->
      let r =
        match Hashtbl.find_opt t.reasm cell.vci with
        | Some r -> r
        | None ->
            let r = Atm.Aal5.Reassembler.create () in
            Hashtbl.add t.reasm cell.vci r;
            r
      in
      match Atm.Aal5.Reassembler.push r cell with
      | None -> ()
      | Some (Error _) ->
          t.errors <- t.errors + 1;
          Metrics.Counter.inc t.m_errors
      | Some (Ok payload) ->
          let ctx = Atm.Aal5.Reassembler.last_ctx r in
          let cost =
            if t.cfg.single_cell_optimization && fits_single_cell payload then
              t.cfg.rx_single_ns
            else t.cfg.rx_multi_fixed_ns
          in
          prof t "rx_deliver" cost;
          Sync.Server.submit t.server ~cost (fun () ->
              deliver t ?ctx cell.vci payload))

let create net ~host cfg =
  let sim = Atm.Network.sim net in
  let labels = [ ("host", string_of_int host); ("nic", cfg.name) ] in
  let t =
    {
      sim;
      net;
      host;
      cfg;
      server = Sync.Server.create sim;
      kernel = Sync.Server.create sim;
      mux = Unet.Mux.create ~host ~copy_layer:(cfg.copy_layer ^ "_rx") ();
      txq = Queue.create ();
      tx_active = false;
      fault =
        Fault.configured_at Fault.Ni ~site:(Printf.sprintf "ni.%d" host);
      reasm = Hashtbl.create 16;
      sent = 0;
      received = 0;
      errors = 0;
      m_sent =
        Metrics.counter ~help:"PDUs injected onto the wire by a NI"
          "ni_pdus_sent_total" labels;
      m_received =
        Metrics.counter ~help:"PDUs demultiplexed into an endpoint by a NI"
          "ni_pdus_received_total" labels;
      m_errors =
        Metrics.counter ~help:"AAL5 reassembly failures at a NI"
          "ni_reassembly_errors_total" labels;
      m_demux =
        Metrics.counter ~help:"reassembled PDUs presented to the mux by a NI"
          "ni_rx_demux_total" labels;
      m_dma_bytes =
        Metrics.counter ~help:"bytes the on-board processor DMAed out of segments"
          "ni_dma_bytes_total" labels;
    }
  in
  Atm.Network.attach_rx net ~host (fun cell -> on_cell t cell);
  Timeseries.register ~kind:Timeseries.Utilization "ni_i960_utilization"
    labels (fun () -> float_of_int (Sync.Server.busy_time t.server));
  Timeseries.register "ni_i960_queue_depth" labels (fun () ->
      float_of_int (Sync.Server.queue_length t.server));
  t

let backend t =
  {
    Unet.nic_name = t.cfg.name;
    notify_tx = (fun ep -> notify_tx t ep);
    mux = t.mux;
    max_endpoints = t.cfg.max_endpoints;
    max_seg_size = t.cfg.max_seg_size;
    doorbell_ns = t.cfg.doorbell_ns;
    rx_poll_ns = t.cfg.rx_poll_ns;
    kernel_op_ns = t.cfg.kernel_op_ns;
    kernel_path = Some t.kernel;
  }

let set_fault t f = t.fault <- Some f
let config t = t.cfg
let server t = t.server
let pdus_sent t = t.sent
let pdus_received t = t.received
let reassembly_errors t = t.errors
