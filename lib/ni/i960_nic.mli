(** The shared engine for i960-style network interfaces: an on-board
    processor modelled as a serial FIFO server that alternates between
    draining endpoint send queues (segmenting PDUs into cells, pacing them
    into the output FIFO with flow control) and handling arriving cells
    (reassembly, demultiplexing, delivery into receive queues).

    The SBA-200 U-Net firmware ({!Sba200}) and Fore's original firmware
    ({!Fore_firmware}) are both instances with different cost parameters. *)

type config = {
  name : string;
  copy_layer : string;
      (** label prefix for this NI's counted copies in [buf_copies_total]
          (["<copy_layer>_tx_dma"] and ["<copy_layer>_rx"]) *)
  (* host-side costs (reference-machine ns) *)
  doorbell_ns : int;  (** compose + post a send descriptor *)
  rx_poll_ns : int;  (** check/pop the receive queue *)
  kernel_op_ns : int;  (** per-op surcharge for emulated endpoints *)
  (* i960-side costs (absolute ns: the i960 clock does not scale with the
     host CPU) *)
  tx_single_ns : int;  (** single-cell fast-path send, whole message *)
  tx_fixed_ns : int;  (** multi-cell send: per-message descriptor work *)
  tx_per_cell_ns : int;  (** multi-cell send: DMA + FIFO per cell *)
  rx_cell_ns : int;  (** per arriving cell *)
  rx_single_ns : int;  (** single-cell fast-path delivery *)
  rx_multi_fixed_ns : int;  (** multi-cell delivery: buffers + descriptor *)
  single_cell_optimization : bool;
      (** §4.2.2: single-cell messages bypass buffer allocation; off in
          Fore's firmware *)
  (* resource limits *)
  max_endpoints : int;
  max_seg_size : int;
}

type t

val create : Atm.Network.t -> host:int -> config -> t

val backend : t -> Unet.backend
(** The {!Unet.backend} this NI exposes; pass it to [Unet.create]. *)

val config : t -> config

val set_fault : t -> Engine.Fault.t -> unit
(** Attach a fault injector: [dma_stall] adds occupancy to the i960 for
    the stalled descriptor's DMA burst, [rx_overrun] drops reassembled
    PDUs before the mux. [create] already attaches one when a global
    spec names the [Ni] site. *)

(* Statistics *)

val server : t -> Engine.Sync.Server.t
(** The i960 itself, for utilization measurements. *)

val pdus_sent : t -> int
val pdus_received : t -> int
val reassembly_errors : t -> int
(** PDUs discarded for bad CRC / length — cell loss shows up here. *)
