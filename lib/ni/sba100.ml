open Engine

type config = {
  name : string;
  trap_ns : int;
  doorbell_ns : int;
  rx_poll_ns : int;
  tx_fixed_ns : int;
  tx_per_cell_ns : int;
  rx_per_cell_ns : int;
  rx_fixed_ns : int;
  crc_tx_share : float;
  crc_rx_share : float;
  max_seg_size : int;
}

(* Table 1: 21 µs trap-level send+receive across the switch (traps + wire),
   7 µs AAL5 send overhead, 5 µs AAL5 receive overhead, 33 µs one-way.
   Our wire (two links + switch) is ≈9.1 µs, leaving ≈12 µs of trap cost
   split across the two ends; the AAL5 per-cell costs sit on top. The 1 KB
   bandwidth bound comes from the sender's ≈7 µs/cell software path:
   48 B / 7.06 µs ≈ 6.8 MB/s. *)
let default_config =
  {
    name = "SBA-100";
    trap_ns = 2_500;
    doorbell_ns = 500;
    rx_poll_ns = 500;
    tx_fixed_ns = 1_500;
    tx_per_cell_ns = 7_060;
    rx_per_cell_ns = 5_000;
    rx_fixed_ns = 4_400;
    crc_tx_share = 0.33;
    crc_rx_share = 0.40;
    max_seg_size = 256 * 1024;
  }

type t = {
  sim : Sim.t;
  net : Atm.Network.t;
  host : int;
  cpu : Host.Cpu.t;
  cfg : config;
  kernel : Sync.Server.t;
  mux : Unet.Mux.t;
  reasm : (int, Atm.Aal5.Reassembler.t) Hashtbl.t;
  mutable fault : Fault.t option;
  mutable sent : int;
  mutable received : int;
  mutable errors : int;
  m_sent : Metrics.Counter.t;
  m_received : Metrics.Counter.t;
  m_errors : Metrics.Counter.t;
  m_demux : Metrics.Counter.t;
}

let deliver t ?ctx vci payload =
  match t.fault with
  | Some f when Fault.rx_overrun f ->
      (* the host fell behind the interface FIFO and the PDU was
         overwritten before it could be demultiplexed *)
      Unet.Mux.rx_dropped ?ctx "ni_overrun";
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.rx_overrun" ~tid:t.host
          ~args:[ ("vci", Trace.Int vci) ]
  | _ -> (
      Metrics.Counter.inc t.m_demux;
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.rx_demux" ~tid:t.host
          ~args:
            [
              ("vci", Trace.Int vci); ("len", Trace.Int (Buf.length payload));
            ];
      match Unet.Mux.deliver t.mux ~rx_vci:vci ?ctx payload with
      | Some _ ->
          t.received <- t.received + 1;
          Metrics.Counter.inc t.m_received
      | None -> ())

(* kernel-server occupancy attributed under the host root, not under
   whatever application frame happens to be open (the receive path runs
   asynchronously to the application) *)
let prof t stage cost =
  if Profile.enabled () then
    Profile.charge_root ~host:t.host
      ~frames:[ "ni"; t.cfg.name; stage ]
      cost

let on_cell t (cell : Atm.Cell.t) =
  if cell.Atm.Cell.eop then Span.mark cell.Atm.Cell.ctx Span.Rx_cell;
  (* The receive trap plus software AAL5/CRC processing, serialized through
     the kernel (which is also what emulated-endpoint operations queue
     behind). *)
  (* the host reads the cell out of the interface FIFO word by word: one
     counted PIO copy per cell on the receive side too *)
  let cell =
    { cell with Atm.Cell.payload = Buf.copy ~layer:"sba100_rx_pio" cell.payload }
  in
  prof t "rx_cell" t.cfg.rx_per_cell_ns;
  Sync.Server.submit t.kernel ~cost:t.cfg.rx_per_cell_ns (fun () ->
      let r =
        match Hashtbl.find_opt t.reasm cell.vci with
        | Some r -> r
        | None ->
            let r = Atm.Aal5.Reassembler.create () in
            Hashtbl.add t.reasm cell.vci r;
            r
      in
      match Atm.Aal5.Reassembler.push r cell with
      | None -> ()
      | Some (Error _) ->
          t.errors <- t.errors + 1;
          Metrics.Counter.inc t.m_errors
      | Some (Ok payload) ->
          let ctx = Atm.Aal5.Reassembler.last_ctx r in
          prof t "rx_deliver" t.cfg.rx_fixed_ns;
          Sync.Server.submit t.kernel ~cost:t.cfg.rx_fixed_ns (fun () ->
              deliver t ?ctx cell.vci payload))

(* Sending happens synchronously in the sender's fast trap: the process
   pays the whole software SAR + CRC + PIO cost itself. *)
let do_send t (ep : Unet.Endpoint.t) =
  match Unet.Ring.pop ep.tx_ring with
  | None -> ()
  | Some desc -> (
      match Unet.Endpoint.find_channel ep desc.chan with
      | None -> ()
      | Some chan ->
          let data =
            match desc.tx_payload with
            | Unet.Desc.Inline b -> b
            | Unet.Desc.Buffers ranges ->
                Buf.concat
                  (List.map
                     (fun (off, len) -> Unet.Segment.view ep.segment ~off ~len)
                     ranges)
          in
          Span.mark desc.ctx Span.Nic_tx;
          let cells =
            Atm.Aal5.segment ?ctx:desc.ctx ~vci:chan.Unet.Channel.tx_vci data
          in
          if Trace.enabled () then
            Trace.instant Trace.Desc "ni.tx" ~tid:t.host
              ~args:
                [
                  ("len", Trace.Int (Buf.length data));
                  ("cells", Trace.Int (List.length cells));
                ];
          Host.Cpu.charge ~layer:"ni_tx" t.cpu t.cfg.tx_fixed_ns;
          (* on the SBA-100 the "DMA" is the host's own PIO loop, so a
             stall charges the sending CPU directly *)
          (match t.fault with
          | Some f ->
              let stall = Fault.dma_stall f in
              if stall > 0 then Host.Cpu.charge ~layer:"ni_tx" t.cpu stall
          | None -> ());
          List.iter
            (fun (cell : Atm.Cell.t) ->
              Host.Cpu.charge ~layer:"ni_tx" t.cpu t.cfg.tx_per_cell_ns;
              (* the host stores the cell into the output FIFO word by
                 word: one counted PIO copy per cell, and the snapshot
                 keeps the in-flight cell valid once the sender's buffers
                 are reused *)
              let cell =
                {
                  cell with
                  Atm.Cell.payload =
                    Buf.copy ~layer:"sba100_tx_pio" cell.payload;
                }
              in
              (* PIO is slower than the wire, so the 36-cell output FIFO
                 never backs up; a failed push would mean a modelling bug. *)
              if not (Atm.Network.send t.net ~host:t.host cell) then
                failwith "Sba100: output FIFO overflow")
            cells;
          desc.injected <- true;
          t.sent <- t.sent + 1;
          Metrics.Counter.inc t.m_sent)

let create net ~host ~cpu ?(config = default_config) () =
  let sim = Atm.Network.sim net in
  let labels = [ ("host", string_of_int host); ("nic", config.name) ] in
  let t =
    {
      sim;
      net;
      host;
      cpu;
      cfg = config;
      kernel = Sync.Server.create sim;
      mux = Unet.Mux.create ~host ~copy_layer:"sba100_rx" ();
      reasm = Hashtbl.create 16;
      fault =
        Fault.configured_at Fault.Ni ~site:(Printf.sprintf "ni.%d" host);
      sent = 0;
      received = 0;
      errors = 0;
      m_sent =
        Metrics.counter ~help:"PDUs injected onto the wire by a NI"
          "ni_pdus_sent_total" labels;
      m_received =
        Metrics.counter ~help:"PDUs demultiplexed into an endpoint by a NI"
          "ni_pdus_received_total" labels;
      m_errors =
        Metrics.counter ~help:"AAL5 reassembly failures at a NI"
          "ni_reassembly_errors_total" labels;
      m_demux =
        Metrics.counter ~help:"reassembled PDUs presented to the mux by a NI"
          "ni_rx_demux_total" labels;
    }
  in
  Atm.Network.attach_rx net ~host (fun cell -> on_cell t cell);
  Timeseries.register ~kind:Timeseries.Utilization "ni_kernel_utilization"
    labels (fun () -> float_of_int (Sync.Server.busy_time t.kernel));
  Timeseries.register "ni_kernel_queue_depth" labels (fun () ->
      float_of_int (Sync.Server.queue_length t.kernel));
  t

let backend t =
  {
    Unet.nic_name = t.cfg.name;
    notify_tx = (fun ep -> do_send t ep);
    mux = t.mux;
    max_endpoints = 0; (* emulated endpoints only *)
    max_seg_size = t.cfg.max_seg_size;
    doorbell_ns = t.cfg.doorbell_ns;
    rx_poll_ns = t.cfg.rx_poll_ns;
    kernel_op_ns = t.cfg.trap_ns;
    kernel_path = Some t.kernel;
  }

let set_fault t f = t.fault <- Some f
let config t = t.cfg
let pdus_sent t = t.sent
let pdus_received t = t.received
let reassembly_errors t = t.errors
