open Engine

type config = {
  name : string;
  trap_ns : int;
  doorbell_ns : int;
  rx_poll_ns : int;
  tx_fixed_ns : int;
  tx_per_cell_ns : int;
  rx_per_cell_ns : int;
  rx_fixed_ns : int;
  crc_tx_share : float;
  crc_rx_share : float;
  max_seg_size : int;
}

(* Table 1: 21 µs trap-level send+receive across the switch (traps + wire),
   7 µs AAL5 send overhead, 5 µs AAL5 receive overhead, 33 µs one-way.
   Our wire (two links + switch) is ≈9.1 µs, leaving ≈12 µs of trap cost
   split across the two ends; the AAL5 per-cell costs sit on top. The 1 KB
   bandwidth bound comes from the sender's ≈7 µs/cell software path:
   48 B / 7.06 µs ≈ 6.8 MB/s. *)
let default_config =
  {
    name = "SBA-100";
    trap_ns = 2_500;
    doorbell_ns = 500;
    rx_poll_ns = 500;
    tx_fixed_ns = 1_500;
    tx_per_cell_ns = 7_060;
    rx_per_cell_ns = 5_000;
    rx_fixed_ns = 4_400;
    crc_tx_share = 0.33;
    crc_rx_share = 0.40;
    max_seg_size = 256 * 1024;
  }

(* A train still being fed onto the uplink by the host's PIO loop (train
   fast path, DESIGN.md §14). The sends are unconditional — the host
   process sleeps through the whole loop either way — so on interference
   the un-accepted cells are re-armed as real send events at their
   original instants rather than re-entered from the process. *)
type tx_train = {
  tt_train : Atm.Cell.train;
  tt_cells : Atm.Cell.t array; (* post-PIO-copy snapshots, ready to send *)
  tt_arrivals : Sim.time array; (* send instant of each cell *)
}

type t = {
  sim : Sim.t;
  net : Atm.Network.t;
  host : int;
  cpu : Host.Cpu.t;
  cfg : config;
  kernel : Sync.Server.t;
  mux : Unet.Mux.t;
  reasm : (int, Atm.Aal5.Reassembler.t) Hashtbl.t;
  mutable fault : Fault.t option;
  mutable tx_trains : tx_train list;
  mutable sent : int;
  mutable received : int;
  mutable errors : int;
  m_sent : Metrics.Counter.t;
  m_received : Metrics.Counter.t;
  m_errors : Metrics.Counter.t;
  m_demux : Metrics.Counter.t;
}

let deliver t ?ctx vci payload =
  match t.fault with
  | Some f when Fault.rx_overrun f ->
      (* the host fell behind the interface FIFO and the PDU was
         overwritten before it could be demultiplexed *)
      Unet.Mux.rx_dropped ?ctx "ni_overrun";
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.rx_overrun" ~tid:t.host
          ~args:[ ("vci", Trace.Int vci) ]
  | _ -> (
      Metrics.Counter.inc t.m_demux;
      if Trace.enabled () then
        Trace.instant Trace.Desc "ni.rx_demux" ~tid:t.host
          ~args:
            [
              ("vci", Trace.Int vci); ("len", Trace.Int (Buf.length payload));
            ];
      match Unet.Mux.deliver t.mux ~rx_vci:vci ?ctx payload with
      | Some _ ->
          t.received <- t.received + 1;
          Metrics.Counter.inc t.m_received
      | None -> ())

(* kernel-server occupancy attributed under the host root, not under
   whatever application frame happens to be open (the receive path runs
   asynchronously to the application) *)
let prof t stage cost =
  if Profile.enabled () then
    Profile.charge_root ~host:t.host
      ~frames:[ "ni"; t.cfg.name; stage ]
      cost

(* The software AAL5 work for one cell, run as (or inside) a kernel job;
   [cell] already holds the host's counted PIO copy of the payload. *)
let rx_cell_body t (cell : Atm.Cell.t) =
  let r =
    match Hashtbl.find_opt t.reasm cell.Atm.Cell.vci with
    | Some r -> r
    | None ->
        let r = Atm.Aal5.Reassembler.create () in
        Hashtbl.add t.reasm cell.Atm.Cell.vci r;
        r
  in
  match Atm.Aal5.Reassembler.push r cell with
  | None -> ()
  | Some (Error _) ->
      t.errors <- t.errors + 1;
      Metrics.Counter.inc t.m_errors
  | Some (Ok payload) ->
      let ctx = Atm.Aal5.Reassembler.last_ctx r in
      prof t "rx_deliver" t.cfg.rx_fixed_ns;
      Sync.Server.submit t.kernel ~cost:t.cfg.rx_fixed_ns (fun () ->
          deliver t ?ctx cell.Atm.Cell.vci payload)

let on_cell t (cell : Atm.Cell.t) =
  if cell.Atm.Cell.eop then Span.mark cell.Atm.Cell.ctx Span.Rx_cell;
  (* The receive trap plus software AAL5/CRC processing, serialized through
     the kernel (which is also what emulated-endpoint operations queue
     behind). *)
  (* the host reads the cell out of the interface FIFO word by word: one
     counted PIO copy per cell on the receive side too *)
  let cell =
    { cell with Atm.Cell.payload = Buf.copy ~layer:"sba100_rx_pio" cell.payload }
  in
  prof t "rx_cell" t.cfg.rx_per_cell_ns;
  Sync.Server.submit t.kernel ~cost:t.cfg.rx_per_cell_ns (fun () ->
      rx_cell_body t cell)

(* Per-cell fallback for a received train: chained events re-checking the
   live length, exactly like [Network]'s default expansion, but through
   this NI's own [on_cell]. *)
let rec expand_rx_train t train ~rx_vci ~deliveries i =
  if i < Atm.Cell.Train.length train then begin
    on_cell t (Atm.Cell.with_vci (Atm.Cell.Train.cell train i) rx_vci);
    if i + 1 < Atm.Cell.Train.length train then
      Sim.schedule_drop ~label:"ni.rx_train" t.sim
        ~delay:(deliveries.(i + 1) - Sim.now t.sim)
        (fun () -> expand_rx_train t train ~rx_vci ~deliveries (i + 1))
  end

let on_train t train ~rx_vci ~deliveries =
  let n = Atm.Cell.Train.length train in
  let paced =
    if Trainmode.active () && t.fault = None then
      (* The PIO copy happens inside each action — at the cell's
         consumption, only for cells actually consumed — so the copy
         counters match the per-cell path even when the batch splits and
         the cut cells are re-delivered (and re-copied) for real. *)
      let actions =
        Array.init n (fun i ->
            let cell = Atm.Cell.with_vci (Atm.Cell.Train.cell train i) rx_vci in
            fun () ->
              let cell =
                {
                  cell with
                  Atm.Cell.payload =
                    Buf.copy ~layer:"sba100_rx_pio" cell.Atm.Cell.payload;
                }
              in
              rx_cell_body t cell)
      in
      Sync.Server.submit_paced t.kernel ~cost:t.cfg.rx_per_cell_ns
        ~arrivals:(Array.sub deliveries 0 n) ~actions
    else None
  in
  match paced with
  | Some p ->
      Atm.Cell.Train.on_truncate train (fun ~keep ~now:_ ->
          Sync.Server.truncate_paced t.kernel p ~keep)
  | None -> expand_rx_train t train ~rx_vci ~deliveries 0

(* The uplink's interfere hook: an unplanned per-cell send is about to
   thread through planned state. The host's PIO loop cannot be interrupted
   — every remaining send still happens at its original instant — so each
   pending train is truncated to its already-accepted prefix and the rest
   re-armed as real per-cell send events, which queue in true FIFO order
   against the interferer. A send event landing exactly at [now] has
   already fired (it was scheduled before the interferer), so the [<=]
   boundary keeps it in the accepted prefix. *)
let split_trains t =
  let now = Sim.now t.sim in
  let trains = t.tx_trains in
  t.tx_trains <- [];
  List.iter
    (fun tt ->
      let n = Array.length tt.tt_arrivals in
      if tt.tt_arrivals.(n - 1) > now then begin
        let keep = ref 0 in
        while !keep < n && tt.tt_arrivals.(!keep) <= now do
          incr keep
        done;
        Atm.Cell.Train.truncate tt.tt_train ~keep:!keep ~now;
        for i = !keep to n - 1 do
          let cell = tt.tt_cells.(i) in
          Sim.schedule_drop ~label:"ni.pio_tx" t.sim
            ~delay:(tt.tt_arrivals.(i) - now)
            (fun () ->
              if not (Atm.Network.send t.net ~host:t.host cell) then
                failwith "Sba100: output FIFO overflow")
        done
      end)
    trains

(* Feed a multi-cell PDU as one analytically planned train (DESIGN.md §14):
   the host still pays the full per-cell software cost — one coalesced
   sleep standing in for the n per-cell ones — while the uplink, switch and
   downlink carry the cells as planned state. [cells] already hold their
   counted PIO copies (the fallback loop reuses them uncopied). *)
let train_send t (cells : Atm.Cell.t array) =
  let n = Array.length cells in
  if n < 2 || (not (Trainmode.active ())) || t.fault <> None then false
  else begin
    let s = Host.Machine.scale (Host.Cpu.machine t.cpu) t.cfg.tx_per_cell_ns in
    let now = Sim.now t.sim in
    (* cell i's charge precedes its send, so send i lands at now+(i+1)*s *)
    let arrivals = Array.init n (fun i -> now + ((i + 1) * s)) in
    let train = Atm.Cell.Train.of_cells cells in
    match
      Atm.Network.commit_train_feed t.net ~host:t.host ~train ~arrivals
        ~sched_lead:s
        ~on_interfere:(fun () -> split_trains t)
    with
    | None -> false
    | Some _ ->
        t.tx_trains <-
          t.tx_trains
          @ [ { tt_train = train; tt_cells = cells; tt_arrivals = arrivals } ];
        (* the coalesced per-cell cost: n pre-scaled sleeps in one charge
           (scaling does not distribute over addition, so scale once) *)
        Host.Cpu.charge_raw ~layer:"ni_tx" t.cpu (n * s);
        (* the loop is over; anything still in tx_trains past its last
           send can no longer be interfered with *)
        t.tx_trains <-
          List.filter
            (fun tt ->
              tt.tt_arrivals.(Array.length tt.tt_arrivals - 1) > Sim.now t.sim)
            t.tx_trains;
        true
  end

(* Sending happens synchronously in the sender's fast trap: the process
   pays the whole software SAR + CRC + PIO cost itself. *)
let do_send t (ep : Unet.Endpoint.t) =
  match Unet.Ring.pop ep.tx_ring with
  | None -> ()
  | Some desc -> (
      match Unet.Endpoint.find_channel ep desc.chan with
      | None -> ()
      | Some chan ->
          let data =
            match desc.tx_payload with
            | Unet.Desc.Inline b -> b
            | Unet.Desc.Buffers ranges ->
                Buf.concat
                  (List.map
                     (fun (off, len) -> Unet.Segment.view ep.segment ~off ~len)
                     ranges)
          in
          Span.mark desc.ctx Span.Nic_tx;
          let cells =
            Atm.Aal5.segment ?ctx:desc.ctx ~vci:chan.Unet.Channel.tx_vci data
          in
          if Trace.enabled () then
            Trace.instant Trace.Desc "ni.tx" ~tid:t.host
              ~args:
                [
                  ("len", Trace.Int (Buf.length data));
                  ("cells", Trace.Int (List.length cells));
                ];
          Host.Cpu.charge ~layer:"ni_tx" t.cpu t.cfg.tx_fixed_ns;
          (* on the SBA-100 the "DMA" is the host's own PIO loop, so a
             stall charges the sending CPU directly *)
          (match t.fault with
          | Some f ->
              let stall = Fault.dma_stall f in
              if stall > 0 then Host.Cpu.charge ~layer:"ni_tx" t.cpu stall
          | None -> ());
          (* the host stores each cell into the output FIFO word by word:
             one counted PIO copy per cell, and the snapshot keeps the
             in-flight cell valid once the sender's buffers are reused (the
             count is the same whether the copies happen here or spread
             through the loop below — the counters only dump aggregates) *)
          let copied =
            Array.of_list
              (List.map
                 (fun (cell : Atm.Cell.t) ->
                   {
                     cell with
                     Atm.Cell.payload =
                       Buf.copy ~layer:"sba100_tx_pio" cell.payload;
                   })
                 cells)
          in
          (* sampler index advances once per PDU, before the path choice
             (same site as the i960 model), so the sampled set matches
             across NI models' per-PDU sequence and across --per-cell *)
          let deep = Sample.next_pdu () in
          if deep || not (train_send t copied) then
            Array.iter
              (fun (cell : Atm.Cell.t) ->
                Host.Cpu.charge ~layer:"ni_tx" t.cpu t.cfg.tx_per_cell_ns;
                (* PIO is slower than the wire, so the 36-cell output FIFO
                   never backs up; a failed push would mean a modelling
                   bug. *)
                if not (Atm.Network.send t.net ~host:t.host cell) then
                  failwith "Sba100: output FIFO overflow")
              copied;
          desc.injected <- true;
          t.sent <- t.sent + 1;
          Metrics.Counter.inc t.m_sent)

let create net ~host ~cpu ?(config = default_config) () =
  let sim = Atm.Network.sim net in
  let labels = [ ("host", string_of_int host); ("nic", config.name) ] in
  let t =
    {
      sim;
      net;
      host;
      cpu;
      cfg = config;
      kernel = Sync.Server.create sim;
      mux = Unet.Mux.create ~host ~copy_layer:"sba100_rx" ();
      reasm = Hashtbl.create 16;
      fault =
        Fault.configured_at Fault.Ni ~site:(Printf.sprintf "ni.%d" host);
      tx_trains = [];
      sent = 0;
      received = 0;
      errors = 0;
      m_sent =
        Metrics.counter ~help:"PDUs injected onto the wire by a NI"
          "ni_pdus_sent_total" labels;
      m_received =
        Metrics.counter ~help:"PDUs demultiplexed into an endpoint by a NI"
          "ni_pdus_received_total" labels;
      m_errors =
        Metrics.counter ~help:"AAL5 reassembly failures at a NI"
          "ni_reassembly_errors_total" labels;
      m_demux =
        Metrics.counter ~help:"reassembled PDUs presented to the mux by a NI"
          "ni_rx_demux_total" labels;
    }
  in
  Atm.Network.attach_rx net ~host (fun cell -> on_cell t cell);
  Atm.Network.attach_rx_train net ~host (fun train ~rx_vci ~deliveries ->
      on_train t train ~rx_vci ~deliveries);
  Timeseries.register ~kind:Timeseries.Utilization "ni_kernel_utilization"
    labels (fun () -> float_of_int (Sync.Server.busy_time t.kernel));
  Timeseries.register "ni_kernel_queue_depth" labels (fun () ->
      float_of_int (Sync.Server.queue_length t.kernel));
  t

let backend t =
  {
    Unet.nic_name = t.cfg.name;
    notify_tx = (fun ep -> do_send t ep);
    mux = t.mux;
    max_endpoints = 0; (* emulated endpoints only *)
    max_seg_size = t.cfg.max_seg_size;
    doorbell_ns = t.cfg.doorbell_ns;
    rx_poll_ns = t.cfg.rx_poll_ns;
    kernel_op_ns = t.cfg.trap_ns;
    kernel_path = Some t.kernel;
  }

let set_fault t f = t.fault <- Some f
let config t = t.cfg
let pdus_sent t = t.sent
let pdus_received t = t.received
let reassembly_errors t = t.errors
