(* The fixed costs model the i960 traversing mbuf-style linked descriptors
   on the host via DMA (§4.2.1): ~41 µs per message on transmit, ~20 µs on
   receive, with no single-cell optimization. 4 KB packets: 86 cells →
   i960 tx time 41 + 86·3.2 ≈ 316 µs → ≈13 MB/s, wire-limited nowhere. *)
let default_config =
  {
    I960_nic.name = "SBA-200/Fore";
    copy_layer = "sba200_fore";
    doorbell_ns = 3_000; (* host composes a linked buffer-chain descriptor *)
    rx_poll_ns = 1_500;
    kernel_op_ns = 20_000;
    tx_single_ns = 44_200; (* = tx_fixed + per-cell; no fast path *)
    tx_fixed_ns = 41_000;
    tx_per_cell_ns = 3_200;
    rx_cell_ns = 2_500;
    rx_single_ns = 20_000;
    rx_multi_fixed_ns = 20_000;
    single_cell_optimization = false;
    max_endpoints = 16;
    max_seg_size = 1024 * 1024;
  }

let create net ~host ?(config = default_config) () =
  I960_nic.create net ~host config
