(** Measurement primitives shared by the table/figure reproductions: raw
    U-Net ping-pongs and streaming, UAM round trips and block transfers, and
    UDP/TCP latency/throughput over each of the three IP paths. Every
    function builds a fresh simulated cluster, so experiments are
    independent and deterministic. *)

(** {2 Raw base-level U-Net (§4.2.3)} *)

val payload_of_size : Unet.Segment.Allocator.t -> int -> Unet.Desc.payload
(** Inline for small sizes, a scatter-gather buffer list otherwise. *)

val return_buffers : Cluster.node -> Unet.Endpoint.t -> Unet.Desc.rx -> unit
(** Hand a received message's buffers back to the free queue. *)

val buffer_size : int
(** The 4160-byte buffer blocks the experiments use. *)


val raw_rtt :
  ?iters:int ->
  ?topology:Atm.Network.topology ->
  ?pair:int * int ->
  size:int ->
  unit ->
  float
(** Mean round-trip time in µs of a [size]-byte message over raw endpoints
    (single-cell fast path applies below 41 bytes). [topology] swaps the
    default 2-host single-switch cluster for a multi-stage fabric and
    [pair] picks the two endpoint hosts (default [(0, 1)]). *)

val raw_bandwidth :
  ?count:int ->
  ?topology:Atm.Network.topology ->
  ?pair:int * int ->
  size:int ->
  unit ->
  float
(** Streaming bandwidth in MB/s for back-to-back [size]-byte messages,
    with the same [topology]/[pair] knobs as {!raw_rtt}. *)

(** {2 U-Net Active Messages (§5.2)} *)

val uam_pair : unit -> Cluster.t * Uam.t * Uam.t
(** A connected two-node UAM cluster on SBA-200 U-Net NIs. *)

val uam_rtt : ?iters:int -> size:int -> unit -> float
(** Single-message request/reply round trip (µs); single-cell when
    [size] <= 34. *)

val uam_xfer_rtt : ?iters:int -> size:int -> unit -> float
(** Block-transfer round trip (µs): an N-byte transfer each way. *)

val uam_store_bandwidth : ?count:int -> size:int -> unit -> float
(** Block store streaming bandwidth (MB/s). *)

val uam_get_bandwidth : ?count:int -> size:int -> unit -> float

(** {2 IP paths (§7)} *)

type ip_path = Unet_path | Kernel_atm | Kernel_ethernet

val pp_ip_path : Format.formatter -> ip_path -> unit

val make_suites :
  ?tcp_window:int -> ip_path -> Engine.Sim.t * Ipstack.Suite.t * Ipstack.Suite.t
(** A fresh two-host testbed with the full UDP/TCP stacks of the given
    path. *)

val udp_rtt : ?iters:int -> path:ip_path -> size:int -> unit -> float
val tcp_rtt : ?iters:int -> path:ip_path -> size:int -> unit -> float

val udp_blast :
  ?count:int -> path:ip_path -> size:int -> unit -> float * float
(** Blast [count] datagrams: (sender-perceived MB/s, receiver MB/s). The
    kernel path loses packets to device-queue and socket-buffer overflow;
    U-Net applies back-pressure and loses none. *)

val tcp_stream :
  ?window:int ->
  ?total:int ->
  ?app_rate_mb:float ->
  path:ip_path ->
  unit ->
  float
(** Stream [total] bytes through one connection; the producer is limited to
    [app_rate_mb] (unlimited when omitted). Returns goodput in MB/s. *)

(** {2 Output helpers} *)

val print_series : Engine.Stats.Series.t list -> unit

val print_table :
  header:string list -> rows:string list list -> unit

val sweep : int list -> (int -> 'a) -> (float * 'a) list
(** Apply a measurement at each size, pairing with the size as float. *)
