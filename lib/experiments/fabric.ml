(* Scaling the fabric beyond the paper's single ASX-200 (DESIGN.md §16): a
   1024-endpoint two-level folded-Clos fat-tree exercised at the raw ATM
   layer, in the two shapes that stress a multi-stage fabric where a
   single switch has no story:

   - incast: one sender per pod converges on a single egress port, so the
     egress queue absorbs an entire wave while every uplink and trunk
     stays uncontended;
   - elephant/mice: a long cross-pod transfer saturates one leaf-to-spine
     trunk while short messages from the same pod share it, so the mice
     latency tail stretches as the trunk backlog grows.

   Everything is deterministic virtual time — fixed schedules, no RNG —
   so the snapshot members gate byte-for-byte under benchdiff, with
   direction-aware gates on the latency and throughput members. *)

open Engine

let pods = 32
let spine = 8
let hosts_per_pod = 32
let topo = Atm.Network.Clos { pods; spine; hosts_per_pod }

let zero_payload = Buf.alloc Atm.Cell.payload_size

type incast = {
  senders : int;
  waves : int;
  cells_per_msg : int;
  completed : int;  (** messages fully received at the egress host *)
  p50_us : float;
  p99_us : float;
  leaf_routed : int;
  spine_routed : int;
  egress_hw : float;  (** egress-port queue high water, in cells *)
  egress_capacity : int;
  switch_drops : int;
}

type mix = {
  elephant_cells : int;
  elephant_mb_s : float;
  mice : int;
  mice_msgs : int;  (** messages per mouse *)
  mice_completed : int;
  mice_p50_us : float;
  mice_p99_us : float;
  hh_recall : float;
      (** fraction of the true heaviest flows (the three elephants) the
          Space-Saving top-K recovered *)
  max_trunk_util : float;
      (** busiest trunk's utilization over the elephant's lifetime *)
  hop_p99_us : float array;
      (** per-stage p99 hop latency from the path records, one entry per
          hop position of the 3-stage cross-pod route *)
  path_records : int;  (** per-PDU path records settled during the mix *)
}

type t = {
  hosts : int;
  switches : int;
  incast : incast;
  mix : mix;
  sections : string list;  (** congestion-atlas HTML fragments *)
}

(* Send [cells] cells of one message on [vci], paced one cell slot apart
   starting at [t0] (the uplink is never the bottleneck, so pacing at line
   rate keeps the host FIFO shallow and pushes all queueing into the
   fabric, where the experiment wants it). *)
let send_message sim net ~host ~vci ~cells ~slot ~t0 =
  for j = 0 to cells - 1 do
    Sim.schedule_drop_at ~label:"fabric.tx" sim
      (t0 + (j * slot))
      (fun () ->
        ignore
          (Atm.Network.send net ~host
             (Atm.Cell.make ~vci ~eop:(j = cells - 1) zero_payload)
            : bool))
  done

(* Count cells per receive VCI at [host]; each time a flow completes a
   [cells]-cell message, hand (flow, message index, completion time) to
   [on_msg]. *)
let attach_counter net ~host ~cells ~flows_of_vci ~on_msg =
  let counts = Hashtbl.create 64 in
  Atm.Network.attach_rx net ~host (fun cell ->
      let vci = cell.Atm.Cell.vci in
      match Hashtbl.find_opt flows_of_vci vci with
      | None -> ()
      | Some flow ->
          let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts vci) in
          Hashtbl.replace counts vci c;
          if c mod cells = 0 then
            on_msg ~flow ~msg:((c / cells) - 1)
              ~at:(Sim.now (Atm.Network.sim net)))

let run_incast ~waves ~cells_per_msg =
  let sim = Sim.create () in
  let net = Atm.Network.create_topo sim ~topology:topo Atm.Network.default_config in
  let slot = Atm.Link.cell_time (Atm.Network.uplink net ~host:0) in
  (* one sender per pod, its in-pod port spread over 1..8 so the cross-pod
     flows cover all eight spines ((src + 0) mod spine); pod 0's sender
     stays intra-pod *)
  let sender p = (p * hosts_per_pod) + 1 + (p mod spine) in
  let flows_of_vci = Hashtbl.create 64 in
  let conns =
    Array.init pods (fun p ->
        let conn = Atm.Network.connect net ~a:(sender p) ~b:0 in
        Hashtbl.replace flows_of_vci conn.Atm.Network.side_b.rx_vci p;
        conn)
  in
  (* a wave must fully drain through the one egress port (pods *
     cells_per_msg slots) before the next begins *)
  let wave_period = pods * cells_per_msg * slot * 13 / 10 in
  let starts = Array.make_matrix pods waves 0 in
  (* senders join each wave staggered by half a message, so early flows
     drain through a shallow queue while late ones wait behind most of the
     wave — the incast latency skew the p50/p99 members capture *)
  let stagger = cells_per_msg * slot / 2 in
  Array.iteri
    (fun p conn ->
      for k = 0 to waves - 1 do
        let t0 = 1 + (k * wave_period) + (p * stagger) in
        starts.(p).(k) <- t0;
        send_message sim net ~host:(sender p)
          ~vci:conn.Atm.Network.side_a.tx_vci ~cells:cells_per_msg ~slot ~t0
      done)
    conns;
  let sketch = Metrics.Sketch.create () in
  let completed = ref 0 in
  attach_counter net ~host:0 ~cells:cells_per_msg ~flows_of_vci
    ~on_msg:(fun ~flow ~msg ~at ->
      incr completed;
      Metrics.Sketch.observe sketch
        (Sim.to_us (at - starts.(flow).(msg))));
  Sim.run ~until:(((waves + 1) * wave_period) + Sim.ms 10) sim;
  Metrics.flush ();
  let sum_routed lo hi =
    let n = ref 0 in
    for i = lo to hi - 1 do
      n := !n + Atm.Switch.cells_routed (Atm.Network.switch_at net i)
    done;
    !n
  in
  let drops =
    let n = ref 0 in
    for i = 0 to Atm.Network.switch_count net - 1 do
      n := !n + Atm.Switch.cells_dropped (Atm.Network.switch_at net i)
    done;
    !n
  in
  ( {
      senders = pods;
      waves;
      cells_per_msg;
      completed = !completed;
      p50_us = Metrics.Sketch.quantile sketch 0.5;
      p99_us = Metrics.Sketch.quantile sketch 0.99;
      leaf_routed = sum_routed 0 pods;
      spine_routed = sum_routed pods (pods + spine);
      egress_hw =
        Metrics.Gauge.value
          (Metrics.gauge "atm_switch_port_queue_high_water"
             [ ("switch", "0"); ("port", "0") ]);
      egress_capacity = Atm.Network.default_config.switch_queue_capacity;
      switch_drops = drops;
    },
    Atm.Atlas.section ~title:"Congestion atlas: incast" net )

let run_mix ~elephant_cells ~mice_msgs =
  let sim = Sim.create () in
  let net = Atm.Network.create_topo sim ~topology:topo Atm.Network.default_config in
  let slot = Atm.Link.cell_time (Atm.Network.uplink net ~host:0) in
  (* the elephant crosses pod 2 -> pod 4 over spine (69 + 137) mod 8 = 6;
     each mouse pairs a pod-2 source with the pod-4 destination that lands
     on the same spine, so every mouse shares both of the elephant's
     trunks *)
  let e_src = (2 * hosts_per_pod) + 5 and e_dst = (4 * hosts_per_pod) + 9 in
  let e_spine = (e_src + e_dst) mod spine in
  (* Two more planted elephants on resource-disjoint pods (6 -> 8 and
     10 -> 12, hosts chosen off every incast sender): they share no leaf,
     trunk or access link with the elephant/mice contention above, so the
     historical latency/throughput members are unchanged — they exist as
     exact ground truth for the heavy-hitter recall member (three flows
     far above every mouse). *)
  let e2_src = (6 * hosts_per_pod) + 5 and e2_dst = (8 * hosts_per_pod) + 9 in
  let e3_src = (10 * hosts_per_pod) + 5 and e3_dst = (12 * hosts_per_pod) + 9 in
  let mice = 8 in
  (* pod-2 ports 9..16: distinct from the elephant's port 5, so no mouse
     shares its saturated uplink (whose FIFO would absorb one permanent
     cell per mouse cell and eventually overflow) *)
  let mouse_src j = (2 * hosts_per_pod) + 8 + j in
  let mouse_dst j =
    let d = ((e_spine - mouse_src j - (4 * hosts_per_pod)) mod spine + spine) mod spine in
    (4 * hosts_per_pod) + d
  in
  let e_conn = Atm.Network.connect net ~a:e_src ~b:e_dst in
  let e_done = ref 0 in
  let e_flows = Hashtbl.create 4 in
  Hashtbl.replace e_flows e_conn.Atm.Network.side_b.rx_vci 0;
  attach_counter net ~host:e_dst ~cells:elephant_cells ~flows_of_vci:e_flows
    ~on_msg:(fun ~flow:_ ~msg:_ ~at -> e_done := at);
  let e_t0 = 1 in
  send_message sim net ~host:e_src ~vci:e_conn.Atm.Network.side_a.tx_vci
    ~cells:elephant_cells ~slot ~t0:e_t0;
  let planted =
    List.map
      (fun (src, dst) ->
        let conn = Atm.Network.connect net ~a:src ~b:dst in
        Atm.Network.attach_rx net ~host:dst (fun _ -> ());
        send_message sim net ~host:src ~vci:conn.Atm.Network.side_a.tx_vci
          ~cells:elephant_cells ~slot ~t0:e_t0;
        (src, conn.Atm.Network.side_a.tx_vci))
      [ (e2_src, e2_dst); (e3_src, e3_dst) ]
  in
  let mouse_cells = 8 in
  let sketch = Metrics.Sketch.create () in
  let mice_completed = ref 0 in
  let starts = Array.make_matrix (mice + 1) mice_msgs 0 in
  (* messages spread across the elephant's lifetime, staggered per mouse *)
  let period = elephant_cells * slot / mice_msgs in
  for j = 1 to mice do
    let conn = Atm.Network.connect net ~a:(mouse_src j) ~b:(mouse_dst j) in
    let flows = Hashtbl.create 4 in
    Hashtbl.replace flows conn.Atm.Network.side_b.rx_vci j;
    attach_counter net ~host:(mouse_dst j) ~cells:mouse_cells
      ~flows_of_vci:flows ~on_msg:(fun ~flow ~msg ~at ->
        incr mice_completed;
        Metrics.Sketch.observe sketch (Sim.to_us (at - starts.(flow).(msg))));
    for m = 0 to mice_msgs - 1 do
      let t0 = 1 + (m * period) + (j * 13 * slot) in
      starts.(j).(m) <- t0;
      send_message sim net ~host:(mouse_src j)
        ~vci:conn.Atm.Network.side_a.tx_vci ~cells:mouse_cells ~slot ~t0
    done
  done;
  Sim.run ~until:(((elephant_cells + (mice * mice_msgs * mouse_cells)) * slot * 2) + Sim.ms 10) sim;
  Metrics.flush ();
  let secs = Sim.to_sec (!e_done - e_t0) in
  (* recall of the exact ground truth: the three elephants are the true
     heaviest flows by an order of magnitude (elephant_cells vs 64 cells
     per mouse), so a correct Space-Saving top-K must hold all three *)
  let truth = (e_src, e_conn.Atm.Network.side_a.tx_vci) :: planted in
  let hh_recall =
    match Atm.Network.flowstat net with
    | None -> nan
    | Some fs ->
        let top = Atm.Flowstat.top fs in
        let found (src, vci) =
          List.exists
            (fun (fl, _, _) ->
              Atm.Flowstat.flow_src fl = src
              && (Atm.Flowstat.flow_vcis fl).(0) = vci)
            top
        in
        float_of_int (List.length (List.filter found truth))
        /. float_of_int (List.length truth)
  in
  (* busiest trunk over the elephant's lifetime — the contended
     leaf-to-spine fiber runs essentially saturated *)
  let max_trunk_util =
    let horizon = !e_done - e_t0 in
    let u = ref 0. in
    if horizon > 0 then
      for sw = 0 to Atm.Network.switch_count net - 1 do
        let s = Atm.Network.switch_at net sw in
        for p = 0 to Atm.Switch.ports s - 1 do
          match Atm.Network.port_dest net ~sw ~port:p with
          | Some (`Switch _) -> (
              match Atm.Network.output_link net ~sw ~port:p with
              | Some link ->
                  u :=
                    Float.max !u
                      (float_of_int (Atm.Link.busy_ns_at link ~at:!e_done)
                      /. float_of_int horizon)
              | None -> ())
          | _ -> ()
        done
      done;
    !u
  in
  let hop_p99_us =
    Array.init 3 (fun hop ->
        match Pathrec.hop_quantile ~hop 0.99 with
        | Some q -> q /. 1000.
        | None -> nan)
  in
  ( {
      elephant_cells;
      elephant_mb_s =
        (if secs <= 0. then nan
         else
           float_of_int (elephant_cells * Atm.Cell.payload_size) /. 1e6 /. secs);
      mice;
      mice_msgs;
      mice_completed = !mice_completed;
      mice_p50_us = Metrics.Sketch.quantile sketch 0.5;
      mice_p99_us = Metrics.Sketch.quantile sketch 0.99;
      hh_recall;
      max_trunk_util;
      hop_p99_us;
      path_records = Pathrec.count ();
    },
    Atm.Atlas.section ~title:"Congestion atlas: elephant/mice mix" net )

let run ~quick =
  (* Flow observability (DESIGN.md §17) is on for the whole experiment:
     exact_flows below the incast's 64 registered flows so both exact and
     sketched regimes run, k above the three planted elephants but below
     the sending-flow count so the sketch must actually evict. Accounting
     is observational — the schedules, and with them every historical
     member value, are unchanged. *)
  let had_fs = Atm.Flowstat.active () in
  Atm.Flowstat.configure ~exact_flows:16 ~k:4 ();
  let had_pr = Pathrec.enabled () in
  let incast, incast_atlas =
    if quick then run_incast ~waves:2 ~cells_per_msg:96
    else run_incast ~waves:4 ~cells_per_msg:192
  in
  (* path records cover the mix only, so the per-stage latency members
     read the contended 3-hop route and nothing else *)
  Pathrec.start ();
  Pathrec.clear ();
  let mix, mix_atlas =
    if quick then run_mix ~elephant_cells:2_000 ~mice_msgs:4
    else run_mix ~elephant_cells:5_334 ~mice_msgs:8
  in
  if not had_pr then Pathrec.stop ();
  if not had_fs then Atm.Flowstat.disable ();
  {
    hosts = Atm.Network.topology_hosts topo;
    switches = pods + spine;
    incast;
    mix;
    sections = [ incast_atlas; mix_atlas ];
  }

let print t =
  Format.printf
    "Fat-tree fabric (DESIGN.md §16): %d endpoints, %d leaves x %d spines@.@."
    t.hosts pods spine;
  let i = t.incast in
  Common.print_table
    ~header:
      [ "incast"; "msgs"; "p50 (us)"; "p99 (us)"; "leaf cells"; "spine cells";
        "egress hw"; "drops" ]
    ~rows:
      [
        [
          Printf.sprintf "%d -> 1 x %d waves" i.senders i.waves;
          Printf.sprintf "%d/%d" i.completed (i.senders * i.waves);
          Printf.sprintf "%.1f" i.p50_us;
          Printf.sprintf "%.1f" i.p99_us;
          string_of_int i.leaf_routed;
          string_of_int i.spine_routed;
          Printf.sprintf "%.0f/%d" i.egress_hw i.egress_capacity;
          string_of_int i.switch_drops;
        ];
      ];
  Format.printf "@.";
  let m = t.mix in
  Common.print_table
    ~header:
      [ "elephant/mice"; "eleph MB/s"; "mice msgs"; "mice p50 (us)";
        "mice p99 (us)" ]
    ~rows:
      [
        [
          Printf.sprintf "%d cells + %d mice" m.elephant_cells m.mice;
          Printf.sprintf "%.2f" m.elephant_mb_s;
          Printf.sprintf "%d/%d" m.mice_completed (m.mice * m.mice_msgs);
          Printf.sprintf "%.1f" m.mice_p50_us;
          Printf.sprintf "%.1f" m.mice_p99_us;
        ];
      ];
  Format.printf "@.";
  Common.print_table
    ~header:
      [ "flow observability"; "hh recall"; "max trunk util";
        "hop p99 (us, by stage)"; "path records" ]
    ~rows:
      [
        [
          "mix (3 elephants + 8 mice)";
          Printf.sprintf "%.2f" m.hh_recall;
          Printf.sprintf "%.1f%%" (100. *. m.max_trunk_util);
          String.concat " / "
            (Array.to_list
               (Array.map (Printf.sprintf "%.1f") m.hop_p99_us));
          string_of_int m.path_records;
        ];
      ]

let checks t =
  let i = t.incast and m = t.mix in
  (* pod 0's sender is intra-pod (one leaf forwarding per cell); the other
     31 cross a leaf, a spine and a leaf *)
  let cells = i.waves * i.cells_per_msg in
  let expect_leaf = cells * (1 + (2 * (i.senders - 1))) in
  let expect_spine = cells * (i.senders - 1) in
  [
    ("incast: every message fully delivered", i.completed = i.senders * i.waves);
    ("incast: leaf forwarding conserved", i.leaf_routed = expect_leaf);
    ("incast: spine forwarding conserved", i.spine_routed = expect_spine);
    ( "incast: egress queue absorbed a real backlog, losslessly",
      i.egress_hw >= float_of_int i.cells_per_msg
      && i.egress_hw <= float_of_int i.egress_capacity
      && i.switch_drops = 0 );
    ( "incast: tail waits behind most of a wave (p99 >> p50)",
      i.p99_us >= 1.5 *. i.p50_us );
    ("mix: every mouse message delivered", m.mice_completed = m.mice * m.mice_msgs);
    ( "mix: elephant streams near payload line rate, minus the trunk
       share it cedes to the mice",
      m.elephant_mb_s >= 13.5 && m.elephant_mb_s <= 16. );
    ( "mix: the trunk backlog stretches the mice tail",
      m.mice_p99_us >= 1.5 *. m.mice_p50_us );
    ( "mix: the top-K sketch recovered every true heavy hitter",
      m.hh_recall = 1.0 );
    ( "mix: the elephant's trunk ran essentially saturated",
      m.max_trunk_util >= 0.9 && m.max_trunk_util <= 1.01 );
    ( "mix: every delivered PDU left a 3-hop path record",
      m.path_records = m.mice_completed + 3
      && Array.for_all (fun q -> Float.is_finite q && q > 0.) m.hop_p99_us );
  ]

let members t =
  let open Benchgate in
  let tight d = { g_tolerance = 0.01; g_direction = d } in
  let i = t.incast and m = t.mix in
  [
    ("fabric_incast_leaf_cells", (float_of_int i.leaf_routed, tight Both));
    ("fabric_incast_spine_cells", (float_of_int i.spine_routed, tight Both));
    ("fabric_incast_egress_queue_hw", (i.egress_hw, tight Both));
    ("fabric_incast_p50_us", (i.p50_us, tight Lower_is_better));
    ("fabric_incast_p99_us", (i.p99_us, tight Lower_is_better));
    ("fabric_mice_p50_us", (m.mice_p50_us, tight Lower_is_better));
    ("fabric_mice_p99_us", (m.mice_p99_us, tight Lower_is_better));
    ("fabric_elephant_mb_per_sec", (m.elephant_mb_s, tight Higher_is_better));
    ("fabric_hh_recall", (m.hh_recall, tight Higher_is_better));
    ("fabric_mix_max_trunk_utilization", (m.max_trunk_util, tight Both));
    ("fabric_mix_hop0_p99_us", (m.hop_p99_us.(0), tight Lower_is_better));
    ("fabric_mix_hop1_p99_us", (m.hop_p99_us.(1), tight Lower_is_better));
    ("fabric_mix_hop2_p99_us", (m.hop_p99_us.(2), tight Lower_is_better));
  ]
