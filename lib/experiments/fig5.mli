(** Figure 5 (§6): seven Split-C benchmarks on the CM-5, the U-Net ATM
    cluster and the Meiko CS-2, execution times normalized to the CM-5 with
    the computation/communication breakdown. Reduced problem sizes; the
    checks assert the paper's qualitative orderings. *)

type machine = Cm5 | Meiko | Unet_atm

val machine_name : machine -> string
val machines : machine list

type cell = { total_us : float; comm_us : float; ok : bool }

type t = {
  benchmarks : string list;
  results : (string * (machine * cell) list) list;
      (** per benchmark, per machine *)
}

val run : quick:bool -> t
val cell : t -> string -> machine -> cell
val print : t -> unit
val checks : t -> (string * bool) list
