open Engine

let buffer_size = 4_160

(* build a scatter-gather payload of [size] bytes from an allocator *)
let payload_of_size alloc size =
  if size <= Unet.Desc.inline_max then Unet.Desc.Inline (Buf.alloc size)
  else begin
    let rec take acc got =
      if got >= size then List.rev acc
      else
        match Unet.Segment.Allocator.alloc alloc with
        | Some (off, len) -> take ((off, min len (size - got)) :: acc) (got + len)
        | None -> failwith "payload_of_size: segment exhausted"
    in
    Unet.Desc.Buffers (take [] 0)
  end

let return_buffers node ep (d : Unet.Desc.rx) =
  match d.rx_payload with
  | Unet.Desc.Inline _ -> ()
  | Unet.Desc.Buffers bufs ->
      List.iter
        (fun (off, _) ->
          ignore
            (Unet.provide_free_buffer node.Cluster.unet ep ~off
               ~len:buffer_size))
        bufs

(* ------------------------------------------------------------------ *)

let raw_rtt ?(iters = 50) ?topology ?(pair = (0, 1)) ~size () =
  let c = Cluster.create ?topology () in
  let h0, h1 = pair in
  let n0 = Cluster.node c h0 and n1 = Cluster.node c h1 in
  let ep0, a0 = Cluster.simple_endpoint ~buffer_size n0 in
  let ep1, _ = Cluster.simple_endpoint ~buffer_size n1 in
  let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let payload = payload_of_size a0 size in
  ignore
    (Proc.spawn ~name:"echo" c.sim (fun () ->
         let rec loop () =
           let d = Unet.recv n1.unet ep1 in
           (match Unet.send n1.unet ep1 (Unet.Desc.tx ~chan:ch1 d.rx_payload) with
           | Ok () -> ()
           | Error e -> Fmt.failwith "echo: %a" Unet.pp_error e);
           return_buffers n1 ep1 d;
           loop ()
         in
         loop ()));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"client" c.sim (fun () ->
         for _ = 1 to iters do
           let t0 = Sim.now c.sim in
           (match Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload) with
           | Ok () -> ()
           | Error e -> Fmt.failwith "client: %a" Unet.pp_error e);
           let d = Unet.recv n0.unet ep0 in
           return_buffers n0 ep0 d;
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0);
           incr n
         done));
  Sim.run ~until:(Sim.sec 30) c.sim;
  if !n = 0 then nan else !sum /. float_of_int !n

let raw_bandwidth ?(count = 1500) ?topology ?(pair = (0, 1)) ~size () =
  let c = Cluster.create ?topology () in
  let h0, h1 = pair in
  let n0 = Cluster.node c h0 and n1 = Cluster.node c h1 in
  let ep0, a0 = Cluster.simple_endpoint ~free_buffers:4 ~buffer_size n0 in
  let ep1, _ =
    Cluster.simple_endpoint ~free_buffers:56 ~rx_slots:128 ~buffer_size n1
  in
  let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let payload = payload_of_size a0 size in
  let received = ref 0 and done_at = ref 0 in
  ignore
    (Proc.spawn ~name:"sink" c.sim (fun () ->
         while !received < count do
           let d = Unet.recv n1.unet ep1 in
           incr received;
           return_buffers n1 ep1 d
         done;
         done_at := Sim.now c.sim));
  ignore
    (Proc.spawn ~name:"source" c.sim (fun () ->
         let sent = ref 0 in
         while !sent < count do
           match Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload) with
           | Ok () -> incr sent
           | Error Unet.Queue_full -> Proc.sleep c.sim ~time:(Sim.us 5)
           | Error e -> Fmt.failwith "source: %a" Unet.pp_error e
         done));
  Sim.run ~until:(Sim.sec 120) c.sim;
  let secs = Sim.to_sec !done_at in
  if secs <= 0. then nan else float_of_int (size * !received) /. 1e6 /. secs

(* ------------------------------------------------------------------ *)

let uam_pair () =
  let c = Cluster.create () in
  let a0 = Uam.create (Cluster.node c 0).unet ~rank:0 ~nodes:2 in
  let a1 = Uam.create (Cluster.node c 1).unet ~rank:1 ~nodes:2 in
  Uam.connect a0 a1;
  (c, a0, a1)

let h_echo = 1
let h_echo_reply = 2

let uam_rtt ?(iters = 50) ~size () =
  let c, a0, a1 = uam_pair () in
  let payload = Buf.alloc size in
  Uam.register_handler a1 h_echo (fun am ~src:_ tk ~args:_ ~payload ->
      match tk with
      | Some tk -> Uam.reply am tk ~handler:h_echo_reply ~payload ()
      | None -> assert false);
  let got = ref 0 in
  Uam.register_handler a0 h_echo_reply (fun _ ~src:_ _ ~args:_ ~payload:_ ->
      incr got);
  ignore
    (Proc.spawn ~name:"server" c.sim (fun () ->
         Uam.poll_until a1 (fun () -> false)));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"client" c.sim (fun () ->
         for i = 1 to iters do
           let t0 = Sim.now c.sim in
           Uam.request a0 ~dst:1 ~handler:h_echo ~payload ();
           Uam.poll_until a0 (fun () -> !got >= i);
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0);
           incr n
         done));
  Sim.run ~until:(Sim.sec 30) c.sim;
  if !n = 0 then nan else !sum /. float_of_int !n

(* Block transfer round trip: store N bytes there; the last chunk's handler
   triggers an N-byte store back. Approximates the paper's UAM xfer
   ping-pong. *)
let uam_xfer_rtt ?(iters = 20) ~size () =
  let c, a0, a1 = uam_pair () in
  let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
  let region = 1 in
  Uam.Xfer.register_region x0 ~id:region (Bytes.make (max 1 size) '\000');
  Uam.Xfer.register_region x1 ~id:region (Bytes.make (max 1 size) '\000');
  let block = Bytes.make size '\000' in
  (* server echoes: poll for "ping" notifications *)
  let h_ping = 3 and h_pong = 4 in
  let pongs = ref 0 in
  Uam.register_handler a1 h_ping (fun _ ~src:_ _ ~args:_ ~payload:_ ->
      Uam.Xfer.store x1 ~dst:0 ~region ~offset:0 block;
      Uam.request a1 ~dst:0 ~handler:h_pong ());
  Uam.register_handler a0 h_pong (fun _ ~src:_ _ ~args:_ ~payload:_ ->
      incr pongs);
  ignore
    (Proc.spawn ~name:"server" c.sim (fun () ->
         Uam.poll_until a1 (fun () -> false)));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"client" c.sim (fun () ->
         for i = 1 to iters do
           let t0 = Sim.now c.sim in
           Uam.Xfer.store x0 ~dst:1 ~region ~offset:0 block;
           Uam.request a0 ~dst:1 ~handler:h_ping ();
           Uam.poll_until a0 (fun () -> !pongs >= i);
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0);
           incr n
         done));
  Sim.run ~until:(Sim.sec 30) c.sim;
  if !n = 0 then nan else !sum /. float_of_int !n

let uam_store_bandwidth ?(count = 400) ~size () =
  let c, a0, a1 = uam_pair () in
  let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
  Uam.Xfer.register_region x1 ~id:1 (Bytes.make (max size 8192) '\000');
  let block = Bytes.make size '\000' in
  let t_done = ref 0 in
  ignore
    (Proc.spawn ~name:"server" c.sim (fun () ->
         Uam.poll_until a1 (fun () -> false)));
  ignore
    (Proc.spawn ~name:"client" c.sim (fun () ->
         for _ = 1 to count do
           Uam.Xfer.store x0 ~dst:1 ~region:1 ~offset:0 block
         done;
         Uam.Xfer.quiet x0;
         t_done := Sim.now c.sim));
  Sim.run ~until:(Sim.sec 120) c.sim;
  let secs = Sim.to_sec !t_done in
  if secs <= 0. then nan else float_of_int (size * count) /. 1e6 /. secs

let uam_get_bandwidth ?(count = 400) ~size () =
  let c, a0, a1 = uam_pair () in
  let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
  ignore x0;
  Uam.Xfer.register_region x1 ~id:1 (Bytes.make (max size 8192) '\000');
  let t_done = ref 0 in
  ignore
    (Proc.spawn ~name:"server" c.sim (fun () ->
         Uam.poll_until a1 (fun () -> false)));
  ignore
    (Proc.spawn ~name:"client" c.sim (fun () ->
         (* the paper's block-get test keeps a series of requests
            outstanding; a depth of 4 is enough to cover the round trip *)
         let depth = 4 in
         let q = Queue.create () in
         for _ = 1 to count do
           Queue.add (Uam.Xfer.get_async x0 ~dst:1 ~region:1 ~offset:0 ~len:size) q;
           if Queue.length q >= depth then
             ignore (Uam.Xfer.await x0 (Queue.pop q))
         done;
         Queue.iter (fun h -> ignore (Uam.Xfer.await x0 h)) q;
         t_done := Sim.now c.sim));
  Sim.run ~until:(Sim.sec 120) c.sim;
  let secs = Sim.to_sec !t_done in
  if secs <= 0. then nan else float_of_int (size * count) /. 1e6 /. secs

(* ------------------------------------------------------------------ *)

type ip_path = Unet_path | Kernel_atm | Kernel_ethernet

let pp_ip_path fmt = function
  | Unet_path -> Format.pp_print_string fmt "U-Net"
  | Kernel_atm -> Format.pp_print_string fmt "kernel/ATM"
  | Kernel_ethernet -> Format.pp_print_string fmt "kernel/Ethernet"

let make_suites ?tcp_window path =
  match path with
  | Unet_path ->
      let c = Cluster.create () in
      let a, b =
        Ipstack.Suite.unet_pair ?tcp_window (Cluster.node c 0).unet
          (Cluster.node c 1).unet
      in
      (c.sim, a, b)
  | Kernel_atm ->
      let c = Cluster.create ~nic:Cluster.Sba200_fore () in
      let a, b =
        Ipstack.Suite.kernel_atm_pair ?tcp_window (Cluster.node c 0).unet
          (Cluster.node c 1).unet
      in
      (c.sim, a, b)
  | Kernel_ethernet ->
      let sim = Sim.create () in
      let cpu_a = Host.Cpu.create ~host:0 sim Host.Machine.ss20 in
      let cpu_b = Host.Cpu.create ~host:1 sim Host.Machine.ss20 in
      let a, b =
        Ipstack.Suite.kernel_ethernet_pair ?tcp_window ~sim ~cpu_a ~cpu_b
          ~addr_a:0 ~addr_b:1 ()
      in
      (sim, a, b)

let udp_rtt ?(iters = 30) ~path ~size () =
  let open Ipstack in
  let sim, sa, sb = make_suites path in
  let sock_a = Udp.socket sa.Suite.udp ~port:1000 in
  let sock_b = Udp.socket sb.Suite.udp ~port:2000 in
  ignore
    (Proc.spawn ~name:"udp-echo" sim (fun () ->
         let rec loop () =
           let src, sport, data = Udp.recvfrom sock_b in
           Udp.sendto sock_b ~dst:src ~dst_port:sport data;
           loop ()
         in
         loop ()));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"udp-client" sim (fun () ->
         let payload = Bytes.make size '\000' in
         for _ = 1 to iters do
           let t0 = Sim.now sim in
           Udp.sendto sock_a ~dst:1 ~dst_port:2000 payload;
           match Udp.recvfrom_timeout sock_a ~timeout:(Sim.sec 2) with
           | Some _ ->
               sum := !sum +. Sim.to_us (Sim.now sim - t0);
               incr n
           | None -> ()
         done));
  Sim.run ~until:(Sim.sec 120) sim;
  if !n = 0 then nan else !sum /. float_of_int !n

let tcp_rtt ?(iters = 30) ~path ~size () =
  let open Ipstack in
  let sim, sa, sb = make_suites path in
  let listener = Tcp.listen sb.Suite.tcp ~port:80 in
  ignore
    (Proc.spawn ~name:"tcp-echo" sim (fun () ->
         let conn = Tcp.accept listener in
         try
           let rec loop () =
             let data = Tcp.recv_exact conn ~len:size in
             Tcp.send conn data;
             loop ()
           in
           loop ()
         with End_of_file -> ()));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"tcp-client" sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         let payload = Bytes.make size '\000' in
         for _ = 1 to iters do
           let t0 = Sim.now sim in
           Tcp.send conn payload;
           ignore (Tcp.recv_exact conn ~len:size);
           sum := !sum +. Sim.to_us (Sim.now sim - t0);
           incr n
         done;
         Tcp.close conn));
  Sim.run ~until:(Sim.sec 120) sim;
  if !n = 0 then nan else !sum /. float_of_int !n

let udp_blast ?(count = 400) ~path ~size () =
  let open Ipstack in
  let sim, sa, sb = make_suites path in
  let sock_a = Udp.socket sa.Suite.udp ~port:1000 in
  let sock_b = Udp.socket sb.Suite.udp ~port:2000 in
  let send_done = ref 0 in
  let received = ref 0 in
  let last_rx = ref 0 in
  ignore
    (Proc.spawn ~name:"udp-sink" sim (fun () ->
         let rec loop () =
           let _ = Udp.recvfrom sock_b in
           incr received;
           last_rx := Sim.now sim;
           loop ()
         in
         loop ()));
  ignore
    (Proc.spawn ~name:"udp-blaster" sim (fun () ->
         let payload = Bytes.make size '\000' in
         for _ = 1 to count do
           Udp.sendto sock_a ~dst:1 ~dst_port:2000 payload
         done;
         send_done := Sim.now sim));
  Sim.run ~until:(Sim.sec 120) sim;
  let send_secs = Sim.to_sec !send_done in
  let recv_secs = Sim.to_sec !last_rx in
  let sent_mb =
    if send_secs <= 0. then nan
    else float_of_int (size * count) /. 1e6 /. send_secs
  in
  let recv_mb =
    if recv_secs <= 0. then 0.
    else float_of_int (size * !received) /. 1e6 /. recv_secs
  in
  (sent_mb, recv_mb)

let tcp_stream ?window ?(total = 4 * 1024 * 1024) ?app_rate_mb ~path () =
  let open Ipstack in
  let sim, sa, sb = make_suites ?tcp_window:window path in
  let listener = Tcp.listen sb.Suite.tcp ~port:80 in
  let received = ref 0 and t_done = ref 0 in
  ignore
    (Proc.spawn ~name:"tcp-sink" sim (fun () ->
         let conn = Tcp.accept listener in
         let rec loop () =
           let chunk = Tcp.recv conn ~max:65536 in
           if Bytes.length chunk > 0 then begin
             received := !received + Bytes.length chunk;
             loop ()
           end
         in
         loop ();
         t_done := Sim.now sim));
  ignore
    (Proc.spawn ~name:"tcp-source" sim (fun () ->
         let conn = Tcp.connect sa.Suite.tcp ~dst:1 ~dst_port:80 () in
         let chunk_size = 8192 in
         let chunk = Bytes.make chunk_size '\000' in
         let interval =
           match app_rate_mb with
           | None -> 0
           | Some mb ->
               int_of_float
                 (Float.round (float_of_int chunk_size *. 1_000. /. mb))
         in
         let sent = ref 0 in
         let next = ref (Sim.now sim) in
         while !sent < total do
           if interval > 0 then begin
             let now = Sim.now sim in
             if now < !next then Proc.sleep sim ~time:(!next - now);
             next := !next + interval
           end;
           Tcp.send conn chunk;
           sent := !sent + chunk_size
         done;
         Tcp.close conn));
  Sim.run ~until:(Sim.sec 300) sim;
  let secs = Sim.to_sec !t_done in
  if secs <= 0. then nan else float_of_int !received /. 1e6 /. secs

(* ------------------------------------------------------------------ *)

let print_series series =
  List.iter (fun s -> Format.printf "%a@." Stats.Series.pp s) series

let print_table ~header ~rows =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w cell -> Format.printf "%-*s  " w cell) widths row;
    Format.printf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let sweep sizes f = List.map (fun s -> (float_of_int s, f s)) sizes
