(* The §2.1 file-server observation: "A week-long trace of all NFS traffic
   to the departmental CS fileserver at UC Berkeley has shown that the vast
   majority of the messages is under 200 bytes in size and that these
   messages account for roughly half the bits sent."

   No 1995 trace survives to replay, so this experiment synthesizes one
   with exactly the cited shape — most messages under 200 bytes, yet the
   few large read/write transfers carrying the other half of the bits —
   and runs it as a UDP request/response server over the user-level path
   and over the kernel path. The figure of merit is the one the paper
   cares about: mean request latency at the small-message-dominated
   mixture, where per-message overhead (not peak bandwidth) decides. *)

open Engine

type profile = {
  small_fraction : float; (* of messages *)
  small_max : int;
  large_size : int;
}

(* ~98% of calls are lookups/getattrs under 200 B; the sparse 8 KB read
   replies carry the other half of the bytes — matching both cited facts *)
let berkeley = { small_fraction = 0.98; small_max = 200; large_size = 8_000 }

type result = {
  path : Common.ip_path;
  requests : int;
  small_share_of_messages : float;
  small_share_of_bits : float;
  mean_latency_us : float;
  p95_latency_us : float;
  throughput_req_s : float;
}

let synthesize rng profile n =
  List.init n (fun _ ->
      if Rng.bernoulli rng ~p:profile.small_fraction then
        (* request and response both small *)
        (20 + Rng.int rng 60, 40 + Rng.int rng (profile.small_max - 40))
      else (* a read: small request, bulk response *)
        (20 + Rng.int rng 60, profile.large_size))

let run_path ~path ~requests =
  let open Ipstack in
  let sim, sa, sb = Common.make_suites path in
  let client = Udp.socket sa.Suite.udp ~port:1000 in
  let server = Udp.socket sb.Suite.udp ~port:2049 in
  let rng = Rng.create 1995 in
  let trace = synthesize rng berkeley requests in
  (* the NFS server: echo a response of the trace-determined size *)
  ignore
    (Proc.spawn ~name:"nfsd" sim (fun () ->
         let rec loop () =
           let src, sport, req = Udp.recvfrom server in
           (* response size rides in the first 4 bytes of the request *)
           let rsize = Int32.to_int (Bytes.get_int32_be req 0) in
           Udp.sendto server ~dst:src ~dst_port:sport (Bytes.make rsize '\000');
           loop ()
         in
         loop ()));
  let lat = Stats.Summary.create () in
  let t_done = ref 0 in
  ignore
    (Proc.spawn ~name:"client" sim (fun () ->
         List.iter
           (fun (req_size, resp_size) ->
             let req = Bytes.make (max 4 req_size) '\000' in
             Bytes.set_int32_be req 0 (Int32.of_int resp_size);
             let t0 = Sim.now sim in
             Udp.sendto client ~dst:1 ~dst_port:2049 req;
             match Udp.recvfrom_timeout client ~timeout:(Sim.sec 2) with
             | Some _ -> Stats.Summary.add lat (Sim.to_us (Sim.now sim - t0))
             | None -> ())
           trace;
         t_done := Sim.now sim));
  Sim.run ~until:(Sim.sec 300) sim;
  let small_msgs =
    List.fold_left
      (fun acc (_, r) -> if r <= berkeley.small_max then acc + 2 else acc + 1)
      0 trace
  in
  let total_msgs = 2 * List.length trace in
  let small_bits, total_bits =
    List.fold_left
      (fun (s, t) (rq, rs) ->
        let s = s + rq + if rs <= berkeley.small_max then rs else 0 in
        (s, t + rq + rs))
      (0, 0) trace
  in
  {
    path;
    requests = Stats.Summary.count lat;
    small_share_of_messages = float_of_int small_msgs /. float_of_int total_msgs;
    small_share_of_bits = float_of_int small_bits /. float_of_int total_bits;
    mean_latency_us = Stats.Summary.mean lat;
    p95_latency_us = Stats.Summary.percentile lat 0.95;
    throughput_req_s = float_of_int (Stats.Summary.count lat) /. Sim.to_sec !t_done;
  }

type t = { unet : result; kernel : result }

let run ~quick =
  let requests = if quick then 150 else 600 in
  {
    unet = run_path ~path:Common.Unet_path ~requests;
    kernel = run_path ~path:Common.Kernel_atm ~requests;
  }

let print t =
  Format.printf
    "NFS-shaped RPC workload (§2.1): most messages < 200 B, large replies \
     carry ~half the bits@.@.";
  Format.printf
    "trace shape: %.0f%% of messages small, carrying %.0f%% of the bits@.@."
    (t.unet.small_share_of_messages *. 100.)
    (t.unet.small_share_of_bits *. 100.);
  Common.print_table
    ~header:[ "path"; "requests"; "mean lat (us)"; "p95 (us)"; "req/s" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Format.asprintf "%a" Common.pp_ip_path r.path;
             string_of_int r.requests;
             Printf.sprintf "%.0f" r.mean_latency_us;
             Printf.sprintf "%.0f" r.p95_latency_us;
             Printf.sprintf "%.0f" r.throughput_req_s;
           ])
         [ t.unet; t.kernel ])

let checks t =
  [
    ( "the synthesized trace matches the cited shape (>=85% small messages)",
      t.unet.small_share_of_messages >= 0.85 );
    ( "small messages carry roughly half the bits (30-70%)",
      t.unet.small_share_of_bits >= 0.3 && t.unet.small_share_of_bits <= 0.7 );
    ( "U-Net cuts mean request latency at least 4x vs the kernel path",
      t.kernel.mean_latency_us >= 4. *. t.unet.mean_latency_us );
    ( "U-Net sustains at least 4x the request throughput",
      t.unet.throughput_req_s >= 4. *. t.kernel.throughput_req_s );
    ("no requests lost on either path", t.unet.requests = t.kernel.requests);
  ]
