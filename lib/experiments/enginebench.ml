(* Engine-throughput harness: how fast does the simulator itself run?

   Three workload families, chosen to bracket the hot path:

   - fig4-max: figure 4's bandwidth measurement at the sweep's maximum
     message size (5056 B ≈ 107 cells/message), once over raw U-Net and
     once over UAM store — the PDU-heavy shape where per-cell link and
     switch events dominate;

   - cell-storm: back-to-back 64-byte raw messages, one cell each — the
     event-rate-heavy shape where scheduler overhead (schedule/pop per
     event) dominates and per-byte work is negligible;

   - clos2-raw: fig4-max again but across a 2x2x2 Clos fabric, so every
     PDU's train is planned over three switch stages — the gate that
     multi-hop planning (DESIGN.md §16) costs no extra events.

   Each workload runs once as warm-up and once measured, flags-off, so
   numbers reflect the hot path users pay for. Measured quantities per
   workload: fired-event count (deterministic — tight symmetric gate),
   the workload's own virtual-time bandwidth (deterministic), wall
   events/sec, wall µs/event, and GC words allocated per event
   (allocation is deterministic for a fixed code path — tight
   regression-only gate). Wall metrics get generous regression-only
   gates: CI machines differ, and an improvement must never flake. *)

open Engine

type sample = {
  s_workload : string;
  s_events : int; (* fired during the measured pass *)
  s_pdus : int; (* messages the workload pushed through *)
  s_wall_ns : int;
  s_alloc_words : float; (* minor + major - promoted *)
  s_virt_mb_s : float; (* the workload's own bandwidth figure *)
  (* message-latency quantiles (virtual ns) from the always-on
     [message_latency_ns] sketch, cleared per measured pass *)
  s_lat_p50 : float;
  s_lat_p99 : float;
  s_lat_p999 : float;
}

let workloads ~quick =
  let raw_count = if quick then 150 else 800 in
  let store_count = if quick then 75 else 400 in
  let storm_count = if quick then 800 else 4000 in
  let clos_count = if quick then 150 else 800 in
  (* a 2x2x2 Clos: the smallest fabric where every cross-pod PDU crosses
     three switch stages, so multi-hop train planning (DESIGN.md §16) is
     on the measured path *)
  let clos2 = Atm.Network.Clos { pods = 2; spine = 2; hosts_per_pod = 2 } in
  [
    ( "fig4max_raw",
      raw_count,
      fun () -> Common.raw_bandwidth ~count:raw_count ~size:5056 () );
    ( "fig4max_store",
      store_count,
      fun () -> Common.uam_store_bandwidth ~count:store_count ~size:5056 () );
    ( "cellstorm",
      storm_count,
      fun () -> Common.raw_bandwidth ~count:storm_count ~size:64 () );
    ( "clos2_raw",
      clos_count,
      fun () ->
        Common.raw_bandwidth ~count:clos_count ~size:5056 ~topology:clos2
          ~pair:(0, 3) () );
  ]

let alloc_words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

let measure_one name pdus f =
  ignore (f () : float);
  (* warm-up: heap growth, code paths, branch state *)
  let sketch = Span.latency () in
  Metrics.Sketch.clear sketch;
  (* the measured pass alone feeds the latency sketch *)
  let fired0 = Sim.events_fired () in
  let alloc0 = alloc_words () in
  let t0 = Selfprof.now_ns () in
  let mb = f () in
  let wall = Selfprof.now_ns () - t0 in
  let alloc = alloc_words () -. alloc0 in
  let events = Sim.events_fired () - fired0 in
  let q p =
    if Metrics.Sketch.count sketch = 0 then 0.
    else Metrics.Sketch.quantile sketch p
  in
  {
    s_workload = name;
    s_events = events;
    s_pdus = pdus;
    s_wall_ns = wall;
    s_alloc_words = alloc;
    s_virt_mb_s = mb;
    s_lat_p50 = q 0.5;
    s_lat_p99 = q 0.99;
    s_lat_p999 = q 0.999;
  }

let measure ~quick =
  List.map (fun (name, pdus, f) -> measure_one name pdus f) (workloads ~quick)

let events_per_sec s =
  if s.s_wall_ns = 0 then 0.
  else float_of_int s.s_events /. (float_of_int s.s_wall_ns /. 1e9)

let us_per_event s =
  if s.s_events = 0 then 0.
  else float_of_int s.s_wall_ns /. 1e3 /. float_of_int s.s_events

let alloc_per_event s =
  if s.s_events = 0 then 0.
  else s.s_alloc_words /. float_of_int s.s_events

let events_per_pdu s =
  if s.s_pdus = 0 then 0. else float_of_int s.s_events /. float_of_int s.s_pdus

(* Gates: deterministic members tight and symmetric; wall members loose
   and regression-only, so a fast machine or a genuine speedup always
   passes. The baseline snapshot carries these, and benchdiff obeys the
   baseline's copy. *)
let gates samples =
  let open Benchgate in
  List.concat_map
    (fun s ->
      [
        ( s.s_workload ^ "_events_fired",
          { g_tolerance = 0.01; g_direction = Both } );
        (* deterministic ratchet on the train fast path: any change that
           re-inflates the per-PDU event count fails; deflating it passes
           and the next baseline capture locks the gain in *)
        ( s.s_workload ^ "_events_per_pdu",
          { g_tolerance = 0.01; g_direction = Lower_is_better } );
        ( s.s_workload ^ "_mb_per_sec",
          { g_tolerance = 0.05; g_direction = Both } );
        (* virtual-time latencies are deterministic; the sketch buckets
           are multiplicative (~2% wide), so any distribution shift moves
           a quantile by at least a bucket and trips the gate *)
        ( s.s_workload ^ "_latency_p50_ns",
          { g_tolerance = 0.01; g_direction = Both } );
        ( s.s_workload ^ "_latency_p99_ns",
          { g_tolerance = 0.01; g_direction = Both } );
        ( s.s_workload ^ "_latency_p999_ns",
          { g_tolerance = 0.01; g_direction = Both } );
        ( s.s_workload ^ "_alloc_words_per_event",
          { g_tolerance = 0.25; g_direction = Lower_is_better } );
        ( s.s_workload ^ "_events_per_sec_wall",
          { g_tolerance = 0.8; g_direction = Higher_is_better } );
        ( s.s_workload ^ "_us_per_event",
          { g_tolerance = 4.0; g_direction = Lower_is_better } );
      ])
    samples

let snapshot_json ~quick samples =
  let open Json in
  let numerics =
    List.concat_map
      (fun s ->
        [
          (s.s_workload ^ "_events_fired", Num (float_of_int s.s_events));
          (s.s_workload ^ "_events_per_pdu", Num (events_per_pdu s));
          (s.s_workload ^ "_mb_per_sec", Num s.s_virt_mb_s);
          (s.s_workload ^ "_latency_p50_ns", Num s.s_lat_p50);
          (s.s_workload ^ "_latency_p99_ns", Num s.s_lat_p99);
          (s.s_workload ^ "_latency_p999_ns", Num s.s_lat_p999);
          (s.s_workload ^ "_events_per_sec_wall", Num (events_per_sec s));
          (s.s_workload ^ "_us_per_event", Num (us_per_event s));
          (s.s_workload ^ "_alloc_words_per_event", Num (alloc_per_event s));
        ])
      samples
  in
  Obj
    ([ ("name", Str "engine-throughput"); ("quick", Bool quick) ]
    @ numerics
    @ [ ("gates", Benchgate.gates_json (gates samples)) ])

let print samples =
  Format.printf "  %-16s %12s %11s %14s %12s %14s %12s %10s %10s@." "workload"
    "events" "events/pdu" "events/s wall" "us/event" "words/event" "virt MB/s"
    "lat p50" "lat p99.9";
  List.iter
    (fun s ->
      Format.printf
        "  %-16s %12d %11.1f %14.0f %12.3f %14.1f %12.2f %8.1fus %8.1fus@."
        s.s_workload s.s_events (events_per_pdu s) (events_per_sec s)
        (us_per_event s) (alloc_per_event s) s.s_virt_mb_s
        (s.s_lat_p50 /. 1e3) (s.s_lat_p999 /. 1e3))
    samples
