(* Latency attribution for the UAM single-cell round trip: reconstruct
   (request, reply) pairs from the span store and decompose the measured
   RTT into the phase taxonomy. The decomposition telescopes exactly —
   request phases up to the descriptor pop, the server turnaround (pop to
   reply mint), then the reply phases — so the table's sum is the span
   round trip by construction and must match the wall measurement within
   the client's polling slack. *)

open Engine

type pair = { preq : Span.span; prep : Span.span }

(* request roots paired with the reply span of the same trace; both sides
   must have completed (the request popped, the reply marked) *)
let find_pairs () =
  let spans = Span.spans () in
  let reps = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.span) ->
      if s.name = "uam_rep" then Hashtbl.replace reps s.trace_id s)
    spans;
  List.filter_map
    (fun (s : Span.span) ->
      if s.name = "uam_req" && s.parent = None then
        match Hashtbl.find_opt reps s.trace_id with
        | Some rep
          when Span.journey rep <> None
               && Span.mark_time s Span.Popped <> None ->
            Some { preq = s; prep = rep }
        | _ -> None
      else None)
    spans

(* the table's row labels, in timeline order *)
let slots =
  List.map (fun p -> "req " ^ p)
    (List.filter (fun p -> p <> "dispatch") Span.phase_names)
  @ [ "server turnaround" ]
  @ List.map (fun p -> "rep " ^ p) Span.phase_names

let pair_rows { preq; prep } =
  let req_pop = Option.get (Span.mark_time preq Span.Popped) in
  let req =
    List.filter (fun (p, _) -> p <> "dispatch") (Span.phases preq)
    |> List.map (fun (p, d) -> ("req " ^ p, d))
  in
  let rep =
    List.map (fun (p, d) -> ("rep " ^ p, d)) (Span.phases prep)
  in
  req @ [ ("server turnaround", prep.minted - req_pop) ] @ rep

let pair_total { preq; prep } =
  match Span.journey prep with
  | Some j -> prep.minted + j - preq.minted
  | None -> 0

type t = {
  rtt_us : float;  (** measured mean round trip from the workload *)
  n_pairs : int;
  rows : (string * float) list;  (** mean virtual us per slot *)
  sum_us : float;  (** mean of the per-pair phase sums *)
  send_overhead_us : float;  (** request mint -> doorbell (send CPU) *)
  recv_overhead_us : float;  (** reply demux -> handler return *)
}

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let slot_value rows slot =
  float_of_int (Option.value ~default:0 (List.assoc_opt slot rows))

(* decompose whatever request/reply pairs the live span store holds *)
let analyze ~rtt_us () =
  let pairs = find_pairs () in
  let per_pair = List.map pair_rows pairs in
  let rows =
    List.map
      (fun slot -> (slot, mean (List.map (fun r -> slot_value r slot) per_pair) /. 1e3))
      slots
  in
  let sum_us =
    mean (List.map (fun p -> float_of_int (pair_total p)) pairs) /. 1e3
  in
  let send_overhead_us =
    mean (List.map (fun r -> slot_value r "req send_cpu") per_pair) /. 1e3
  in
  let recv_overhead_us =
    mean
      (List.map
         (fun r -> slot_value r "rep ring_wait" +. slot_value r "rep dispatch")
         per_pair)
    /. 1e3
  in
  {
    rtt_us;
    n_pairs = List.length pairs;
    rows;
    sum_us;
    send_overhead_us;
    recv_overhead_us;
  }

let run ~quick =
  let iters = if quick then 8 else 32 in
  (* reuse the live store when the CLI already enabled spans; otherwise
     collect privately and switch back off afterwards *)
  let was_on = Span.enabled () in
  if not was_on then Span.start ();
  let rtt_us = Common.uam_rtt ~iters ~size:0 () in
  let t = analyze ~rtt_us () in
  if not was_on then Span.stop ();
  t

let print t =
  Format.printf
    "Latency attribution: UAM single-cell round trip decomposed over %d \
     request/reply span pairs@.@."
    t.n_pairs;
  Format.printf "%-22s %10s@." "phase" "mean_us";
  List.iter
    (fun (slot, us) -> Format.printf "%-22s %10.2f@." slot us)
    t.rows;
  Format.printf "%-22s %10.2f@." "sum of phases" t.sum_us;
  Format.printf "%-22s %10.2f@.@." "measured RTT" t.rtt_us;
  Format.printf
    "send overhead (mint->doorbell) %.1f us, receive overhead \
     (ring+dispatch) %.1f us; Table 2 overhead row: 6 us@."
    t.send_overhead_us t.recv_overhead_us

let checks t =
  let slot_sum = List.fold_left (fun a (_, us) -> a +. us) 0. t.rows in
  [
    ("request/reply span pairs reconstructed", t.n_pairs > 0);
    ( "phase rows telescope to the span round trip (0.1 us)",
      Float.abs (slot_sum -. t.sum_us) <= 0.1 );
    ( "phases sum to the measured RTT within 10%",
      Float.abs (t.sum_us -. t.rtt_us) <= 0.1 *. t.rtt_us );
    ( "send+receive overhead in the Table 2 band (6 us, 2..12)",
      let o = t.send_overhead_us +. t.recv_overhead_us in
      o >= 2. && o <= 12. );
  ]

(* printed by the CLI's [--breakdown] after any experiment run *)
let print_report () =
  Format.printf "@.Per-phase latency attribution (all spans):@.@.";
  Format.printf "%a" Span.pp_attribution ();
  let pairs = find_pairs () in
  if pairs <> [] then begin
    let t = analyze ~rtt_us:nan () in
    Format.printf
      "@.UAM round-trip decomposition (%d request/reply pairs):@.@."
      t.n_pairs;
    List.iter
      (fun (slot, us) -> Format.printf "%-22s %10.2f@." slot us)
      t.rows;
    Format.printf "%-22s %10.2f@." "sum (span RTT)" t.sum_us
  end
