(** Loss sweep (extension): seeded Bernoulli cell loss at the host uplinks,
    swept over loss rates, measuring goodput, latency and retransmission
    cost of the two reliable layers (UAM go-back-N, TCP over U-Net) and
    checking payload integrity plus the analytic fault-count expectation. *)

type leg = {
  goodput_mb : float;
  retransmits : int;
  completed : bool;
  intact : bool;
  delivered : int;
  injected : int;
}

type point = { rate : float; uam : leg; tcp : leg; rtt_us : float }
type t = { points : point list }

val run : quick:bool -> t
val series : t -> (string * (float * float) list) list
val print : t -> unit
val checks : t -> (string * bool) list
