(* §7.8's warning, after Romanow & Floyd: "TCP can perform poorly over ATM
   if the segment size is large, due to the fact that the underlying cell
   reassembly mechanism causes the entire segment to be discarded if a
   single ATM cell is dropped."

   Two senders converge on one receiver through a switch whose output port
   has only a small cell buffer, so cells genuinely drop under the overload.
   The same contest is run with 2048-byte segments (the paper's standard
   U-Net TCP configuration) and with 9148-byte segments: the large segments
   lose a whole 191-cell PDU per dropped cell and goodput collapses, while
   the small segments degrade gracefully. Fairness between the two
   competing flows is checked as well. *)

open Engine

type flow = {
  goodput_mb : float;
  retransmits : int;
  timeouts : int;
  finished_at : Engine.Sim.time;
}

type contest = {
  mss : int;
  flows : flow list;
  makespan_aggregate_mb : float;
      (* total bytes of both flows over the time until the *last* finishes:
         the honest aggregate when one flow captures the link *)
  cells_dropped : int;
  reassembly_errors : int;
}

type t = { small_seg : contest; large_seg : contest }

let run_contest ~mss ~total ~switch_cells =
  let net_config =
    { Atm.Network.default_config with switch_queue_capacity = switch_cells }
  in
  let c = Cluster.create ~hosts:3 ~net_config () in
  let open Ipstack in
  (* senders 0 and 1 both stream to receiver 2 *)
  let mk_pair a b =
    let ifa, ifb =
      Iface.unet_pair ~mtu:9_188 (Cluster.node c a).Cluster.unet
        (Cluster.node c b).Cluster.unet
    in
    let cfg = { (Tcp.unet_config ~window:(32 * 1024) ()) with mss } in
    let sa = Tcp.attach (Ipv4.attach ifa ~addr:a) cfg in
    let sb = Tcp.attach (Ipv4.attach ifb ~addr:b) cfg in
    (sa, sb)
  in
  let s0, r0 = mk_pair 0 2 in
  let s1, r1 = mk_pair 1 2 in
  let flows = ref [] in
  let run_flow sender receiver port =
    let l = Tcp.listen receiver ~port in
    let received = ref 0 and t_done = ref 0 in
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Tcp.accept l in
           let rec loop () =
             let chunk = Tcp.recv conn ~max:65536 in
             if Bytes.length chunk > 0 then begin
               received := !received + Bytes.length chunk;
               loop ()
             end
           in
           loop ();
           t_done := Sim.now c.sim));
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Tcp.connect sender ~dst:2 ~dst_port:port () in
           let chunk = Bytes.make 8192 '\000' in
           let sent = ref 0 in
           while !sent < total do
             Tcp.send conn chunk;
             sent := !sent + 8192
           done;
           Tcp.close conn;
           flows :=
             (fun () ->
               {
                 goodput_mb =
                   float_of_int !received /. 1e6 /. Sim.to_sec !t_done;
                 retransmits = Tcp.retransmits conn;
                 timeouts = Tcp.timeouts conn;
                 finished_at = !t_done;
               })
             :: !flows))
  in
  run_flow s0 r0 80;
  run_flow s1 r1 81;
  Sim.run ~until:(Sim.sec 300) c.sim;
  let nic2 = Option.get (Cluster.node c 2).Cluster.i960 in
  let flows = List.map (fun f -> f ()) !flows in
  let makespan =
    List.fold_left (fun a f -> max a f.finished_at) 1 flows
  in
  {
    mss;
    flows;
    makespan_aggregate_mb =
      float_of_int (2 * total) /. 1e6 /. Sim.to_sec makespan;
    cells_dropped = Atm.Switch.cells_dropped (Atm.Network.switch c.net);
    reassembly_errors = Ni.I960_nic.reassembly_errors nic2;
  }

let run ~quick =
  let total = (if quick then 1 else 3) * 1024 * 1024 in
  (* a shallow 128-cell output buffer: two saturating senders overflow it *)
  let switch_cells = 128 in
  {
    small_seg = run_contest ~mss:2_048 ~total ~switch_cells;
    large_seg = run_contest ~mss:9_148 ~total ~switch_cells;
  }

let aggregate ct = List.fold_left (fun a f -> a +. f.goodput_mb) 0. ct.flows

let print t =
  Format.printf
    "Congestion over ATM (§7.8, after Romanow & Floyd): two TCP flows \
     converge on one port with a 128-cell output buffer@.@.";
  let row ct =
    [
      string_of_int ct.mss;
      Printf.sprintf "%.2f" ct.makespan_aggregate_mb;
      String.concat " / "
        (List.map (fun f -> Printf.sprintf "%.2f" f.goodput_mb) ct.flows);
      string_of_int
        (List.fold_left (fun a f -> a + f.retransmits) 0 ct.flows);
      string_of_int ct.cells_dropped;
      string_of_int ct.reassembly_errors;
    ]
  in
  Common.print_table
    ~header:
      [ "MSS"; "aggregate (MB/s)"; "per-flow (MB/s)"; "retransmits";
        "cells dropped"; "PDUs killed" ]
    ~rows:[ row t.small_seg; row t.large_seg ]

let checks t =
  ignore aggregate;
  let min_flow ct =
    List.fold_left (fun a f -> Float.min a f.goodput_mb) infinity ct.flows
  in
  let max_flow ct =
    List.fold_left (fun a f -> Float.max a f.goodput_mb) 0. ct.flows
  in
  [
    ( "congestion actually happened (cells dropped in both contests)",
      t.small_seg.cells_dropped > 0 && t.large_seg.cells_dropped > 0 );
    ( "dropped cells killed whole PDUs (reassembly errors)",
      t.large_seg.reassembly_errors > 0 );
    ( "small segments sustain decent aggregate goodput under congestion",
      t.small_seg.makespan_aggregate_mb >= 8. );
    ( "large segments finish the contest substantially slower (loss\n\
       \       amplification: one dropped cell discards a 191-cell segment)",
      t.large_seg.makespan_aggregate_mb
      <= 0.8 *. t.small_seg.makespan_aggregate_mb );
    ( "the contested flows share within 4x of each other (2048 B MSS)",
      max_flow t.small_seg <= 4. *. Float.max 0.01 (min_flow t.small_seg) );
    ( "large segments show the capture effect (per-flow rates >4x apart)",
      max_flow t.large_seg > 4. *. Float.max 0.01 (min_flow t.large_seg) );
  ]
