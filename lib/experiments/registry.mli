(** The experiment registry: every table and figure of the paper's
    evaluation, runnable by name from the CLI, the bench harness and the
    test suite. *)

(** Everything one execution of an experiment yields. [run] executes the
    experiment exactly once; printing, check evaluation and curve extraction
    all read the same result, so the CLI can print a table, verify the
    paper's claims and snapshot the curves without re-running the
    simulation (which would also re-run its side effects on the span,
    trace and pcap stores). *)
type outcome = {
  o_print : unit -> unit;  (** print the table/series to stdout *)
  o_checks : (string * bool) list;
      (** the paper's qualitative claims, evaluated *)
  o_series : (string * (float * float) list) list;
      (** the figure's curves as (label, points) — empty for tables *)
  o_members : (string * (float * Engine.Benchgate.gate)) list;
      (** extra top-level snapshot members with direction-aware benchdiff
          gates (the mechanism BENCH_engine-throughput.json uses); empty
          for experiments whose snapshot is fully covered by the global
          tolerance *)
  o_sections : string list;
      (** experiment-specific HTML report fragments (e.g. the fabric's
          congestion atlas), appended after the checks and curves *)
}

type experiment = {
  name : string;
  description : string;
  run : quick:bool -> outcome;
}

val all : experiment list
val find : string -> experiment option
val names : string list

val report_sections : experiment -> outcome -> string list
(** HTML fragments (via [Engine.Report]) describing one execution:
    description, checks table, and the figure's curves when present. *)
