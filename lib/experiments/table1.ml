(* Table 1: cost breakup for a single-cell round trip on the SBA-100 (§4.1).
   The configured budget is printed next to the simulated measurement, plus
   the 1 KB-packet bandwidth bound the paper quotes (6.8 MB/s). *)

open Engine

type t = {
  cfg_trap_level_us : float; (* send + receive across the switch, trap level *)
  cfg_aal5_send_us : float;
  cfg_aal5_recv_us : float;
  cfg_one_way_us : float;
  measured_one_way_us : float;
  measured_rtt_us : float;
  measured_bw_1k_mb : float;
}

let wire_one_way_us net_cfg =
  (* serialization on both fibers + propagation + switch transit *)
  let cell_us = 53. *. 8. /. net_cfg.Atm.Network.link_bandwidth_mbps in
  (2. *. cell_us)
  +. (2. *. Sim.to_us net_cfg.Atm.Network.link_propagation)
  +. Sim.to_us net_cfg.Atm.Network.switch_transit

let sba100_rtt ~size ~iters =
  let c = Cluster.create ~nic:Cluster.Sba100 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, _ = Cluster.simple_endpoint ~emulated:true n0 in
  let ep1, _ = Cluster.simple_endpoint ~emulated:true n1 in
  let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let payload = Unet.Desc.Inline (Buf.alloc size) in
  ignore
    (Proc.spawn ~name:"echo" c.sim (fun () ->
         let rec loop () =
           let d = Unet.recv n1.unet ep1 in
           ignore (Unet.send n1.unet ep1 (Unet.Desc.tx ~chan:ch1 d.rx_payload));
           loop ()
         in
         loop ()));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"client" c.sim (fun () ->
         for _ = 1 to iters do
           let t0 = Sim.now c.sim in
           ignore (Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload));
           ignore (Unet.recv n0.unet ep0);
           sum := !sum +. Sim.to_us (Sim.now c.sim - t0);
           incr n
         done));
  Sim.run ~until:(Sim.sec 10) c.sim;
  !sum /. float_of_int (max 1 !n)

let sba100_bandwidth ~size ~count =
  let c = Cluster.create ~nic:Cluster.Sba100 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let ep0, a0 =
    Cluster.simple_endpoint ~emulated:true ~free_buffers:4 n0
  in
  let ep1, _ =
    Cluster.simple_endpoint ~emulated:true ~free_buffers:56 ~rx_slots:128 n1
  in
  let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let payload =
    let rec take acc got =
      if got >= size then List.rev acc
      else
        match Unet.Segment.Allocator.alloc a0 with
        | Some (off, len) -> take ((off, min len (size - got)) :: acc) (got + len)
        | None -> failwith "table1: segment exhausted"
    in
    Unet.Desc.Buffers (take [] 0)
  in
  let received = ref 0 and done_at = ref 0 in
  ignore
    (Proc.spawn ~name:"sink" c.sim (fun () ->
         while !received < count do
           let d = Unet.recv n1.unet ep1 in
           incr received;
           match d.rx_payload with
           | Unet.Desc.Buffers bufs ->
               List.iter
                 (fun (off, _) ->
                   ignore
                     (Unet.provide_free_buffer n1.unet ep1 ~off ~len:4160))
                 bufs
           | Unet.Desc.Inline _ -> ()
         done;
         done_at := Sim.now c.sim));
  ignore
    (Proc.spawn ~name:"source" c.sim (fun () ->
         let sent = ref 0 in
         while !sent < count do
           match Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload) with
           | Ok () -> incr sent
           | Error Unet.Queue_full -> Proc.sleep c.sim ~time:(Sim.us 20)
           | Error e -> Fmt.failwith "table1: %a" Unet.pp_error e
         done));
  Sim.run ~until:(Sim.sec 60) c.sim;
  let secs = Sim.to_sec !done_at in
  float_of_int (size * !received) /. 1e6 /. secs

let run ~quick =
  let iters = if quick then 20 else 100 in
  let cfg = Ni.Sba100.default_config in
  let wire = wire_one_way_us Atm.Network.default_config in
  (* trap-level send-and-receive = traps + per-cell software minus the AAL5
     shares, plus the wire *)
  let tx_total = Sim.to_us (cfg.tx_fixed_ns + cfg.tx_per_cell_ns) in
  let rx_total = Sim.to_us (cfg.rx_fixed_ns + cfg.rx_per_cell_ns) in
  let aal5_send = tx_total *. 0.8 in
  let aal5_recv = rx_total *. 0.8 in
  let trap_level =
    wire
    +. Sim.to_us (2 * cfg.trap_ns)
    +. Sim.to_us (cfg.doorbell_ns + cfg.rx_poll_ns)
    +. (tx_total -. aal5_send) +. (rx_total -. aal5_recv)
  in
  let rtt = sba100_rtt ~size:32 ~iters in
  {
    cfg_trap_level_us = trap_level;
    cfg_aal5_send_us = aal5_send;
    cfg_aal5_recv_us = aal5_recv;
    cfg_one_way_us = trap_level +. aal5_send +. aal5_recv;
    measured_one_way_us = rtt /. 2.;
    measured_rtt_us = rtt;
    measured_bw_1k_mb = sba100_bandwidth ~size:1024 ~count:(if quick then 200 else 1000);
  }

let print t =
  Format.printf "Table 1: single-cell round-trip cost breakup (SBA-100)@.@.";
  Common.print_table
    ~header:[ "Operation"; "Paper (us)"; "Model (us)" ]
    ~rows:
      [
        [
          "1-way send and rcv across switch (trap level)";
          "21";
          Printf.sprintf "%.1f" t.cfg_trap_level_us;
        ];
        [ "Send overhead (AAL5)"; "7"; Printf.sprintf "%.1f" t.cfg_aal5_send_us ];
        [ "Receive overhead (AAL5)"; "5"; Printf.sprintf "%.1f" t.cfg_aal5_recv_us ];
        [ "Total (one-way)"; "33"; Printf.sprintf "%.1f" t.cfg_one_way_us ];
        [
          "Measured one-way (simulated)";
          "33";
          Printf.sprintf "%.1f" t.measured_one_way_us;
        ];
        [
          "Measured round trip (paper: 66)";
          "66";
          Printf.sprintf "%.1f" t.measured_rtt_us;
        ];
        [
          "Bandwidth @ 1KB packets (MB/s, paper: 6.8)";
          "6.8";
          Printf.sprintf "%.2f" t.measured_bw_1k_mb;
        ];
      ]

let within pct target v = Float.abs (v -. target) <= target *. pct

let checks t =
  [
    ("one-way latency within 15% of 33 us", within 0.15 33. t.measured_one_way_us);
    ("round trip within 15% of 66 us", within 0.15 66. t.measured_rtt_us);
    ("1KB bandwidth within 20% of 6.8 MB/s", within 0.2 6.8 t.measured_bw_1k_mb);
  ]
