(** The measured counterpart of Table 2's latency decomposition: run the
    UAM single-cell round trip with spans on, reconstruct (request, reply)
    span pairs, and attribute the RTT to data-path phases. The phase rows
    telescope exactly to the span round trip, which must match the
    measured RTT within the client's polling slack. *)

type t = {
  rtt_us : float;
  n_pairs : int;
  rows : (string * float) list;
  sum_us : float;
  send_overhead_us : float;
  recv_overhead_us : float;
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list

val print_report : unit -> unit
(** Print {!Engine.Span.pp_attribution} for the live span store, plus the
    round-trip decomposition when request/reply pairs are present. Used by
    the CLI's [--breakdown] flag after any experiment run. *)
