type outcome = {
  o_print : unit -> unit;
  o_checks : (string * bool) list;
  o_series : (string * (float * float) list) list;
  o_members : (string * (float * Engine.Benchgate.gate)) list;
  o_sections : string list;
}

type experiment = {
  name : string;
  description : string;
  run : quick:bool -> outcome;
}

(* Adapter from the per-figure module shape (run/print/checks over a result
   record) to the single-run outcome: the experiment executes once and the
   outcome carries everything derived from that one execution. *)
let exp ?series ?members ?sections name description run print checks =
  {
    name;
    description;
    run =
      (fun ~quick ->
        let t = run ~quick in
        {
          o_print = (fun () -> print t);
          o_checks = checks t;
          o_series = (match series with None -> [] | Some f -> f t);
          o_members = (match members with None -> [] | Some f -> f t);
          o_sections = (match sections with None -> [] | Some f -> f t);
        });
  }

let curves (l : Engine.Stats.Series.t list) =
  List.map
    (fun (s : Engine.Stats.Series.t) -> (s.Engine.Stats.Series.label, s.points))
    l

let all =
  [
    exp "table1"
      "SBA-100 single-cell round-trip cost breakup (66 us RTT, 6.8 MB/s @ 1KB)"
      Table1.run Table1.print Table1.checks;
    exp "table2"
      "machine characteristics: CM-5, Meiko CS-2, U-Net ATM cluster"
      Table2.run Table2.print Table2.checks;
    exp "table3" "U-Net latency and bandwidth summary (65..157 us, ~120 Mb/s)"
      Table3.run Table3.print Table3.checks;
    exp "fig3" "round-trip times vs message size (raw U-Net, UAM, UAM xfer)"
      Fig3.run Fig3.print Fig3.checks
      ~series:(fun (t : Fig3.t) -> curves [ t.raw; t.uam_single; t.uam_xfer ]);
    exp "fig4" "bandwidth vs message size (AAL5 limit, raw U-Net, UAM store/get)"
      Fig4.run Fig4.print Fig4.checks
      ~series:(fun (t : Fig4.t) ->
        curves [ t.aal5_limit; t.raw; t.store; t.get ]);
    exp "fig5" "seven Split-C benchmarks on CM-5 / U-Net ATM / Meiko CS-2"
      Fig5.run Fig5.print Fig5.checks;
    exp "fig6" "kernel UDP/TCP round-trip latency: ATM vs Ethernet"
      Fig6.run Fig6.print Fig6.checks
      ~series:(fun (t : Fig6.t) ->
        curves [ t.udp_atm; t.udp_eth; t.tcp_atm; t.tcp_eth ]);
    exp "fig7" "UDP bandwidth vs size: kernel sawtooth and losses vs U-Net"
      Fig7.run Fig7.print Fig7.checks
      ~series:(fun (t : Fig7.t) ->
        curves [ t.kernel_sent; t.kernel_received; t.unet_received ]);
    exp "fig8" "TCP bandwidth vs application data generation rate"
      Fig8.run Fig8.print Fig8.checks
      ~series:(fun (t : Fig8.t) ->
        curves [ t.unet_8k; t.kernel_64k; t.kernel_8k ]);
    exp "fig9" "U-Net UDP and TCP round-trip latency vs message size"
      Fig9.run Fig9.print Fig9.checks
      ~series:(fun (t : Fig9.t) -> curves [ t.raw; t.udp; t.tcp ]);
    exp "breakdown"
      "measured Table 2: per-phase span attribution of the UAM round trip"
      Breakdown.run Breakdown.print Breakdown.checks;
    exp "resources" "what bounds the number of network-active processes (§4.2.4)"
      Resources.run Resources.print Resources.checks;
    exp "scaling" "cluster-size sweep: bulk sort + all-to-all (extension)"
      Scaling.run Scaling.print Scaling.checks;
    exp "nfs-workload" "the Berkeley NFS trace shape of §2.1, U-Net vs kernel"
      Workload_nfs.run Workload_nfs.print Workload_nfs.checks;
    exp "congestion" "TCP segment size under ATM cell loss (§7.8)"
      Congestion.run Congestion.print Congestion.checks;
    (* ablations of the design decisions (DESIGN.md §5) *)
    exp "ablation-inline" "single-cell fast path on/off"
      Ablations.Inline.run Ablations.Inline.print Ablations.Inline.checks;
    exp "ablation-firmware" "custom U-Net firmware vs Fore's original"
      Ablations.Firmware.run Ablations.Firmware.print Ablations.Firmware.checks;
    exp "ablation-window" "UAM flow-control window sweep"
      Ablations.Window.run Ablations.Window.print Ablations.Window.checks;
    exp "ablation-tcp" "TCP segment size sweep and delayed acks"
      Ablations.Tcp_tuning.run Ablations.Tcp_tuning.print
      Ablations.Tcp_tuning.checks;
    exp "ablation-upcall" "polling vs signal-driven reception"
      Ablations.Upcall.run Ablations.Upcall.print Ablations.Upcall.checks;
    (* fault injection (extension): runs last so the cumulative copy
       counters in the earlier experiments' snapshots keep their values *)
    exp "loss-sweep"
      "UAM and TCP recovery under seeded cell loss (fault injection)"
      Loss_sweep.run Loss_sweep.print Loss_sweep.checks
      ~series:Loss_sweep.series;
    (* multi-stage fabric (extension, DESIGN.md §16): appended after
       loss-sweep so the earlier experiments' cumulative-counter snapshots
       keep their historical values *)
    exp "fabric"
      "1024-endpoint fat-tree: incast into one egress port, elephant/mice mix"
      Fabric.run Fabric.print Fabric.checks ~members:Fabric.members
      ~sections:(fun (t : Fabric.t) -> t.sections);
  ]

let find name = List.find_opt (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all

(* The experiment-specific part of an HTML run report: description, the
   paper's claims as a PASS/FAIL table, and the figure's curves. The
   registry-wide telemetry sections (breakdown, timeseries, flamegraph,
   metrics) are appended by the CLI since they span all experiments run. *)
let report_sections (e : experiment) (o : outcome) =
  let open Engine in
  let body =
    Printf.sprintf "<p>%s</p>\n%s"
      (Report.escape e.description)
      (Report.checks_table o.o_checks)
  in
  (Report.section ~title:("Experiment: " ^ e.name) body
  ::
  (match o.o_series with
  | [] -> []
  | curves ->
      [
        Report.section ~title:(e.name ^ " curves") (Report.curves_html curves);
      ]))
  @ o.o_sections
