(** Engine-throughput measurement: wall events/sec, µs/event and
    allocated words/event of the simulator's hot path, over fig4 at its
    maximum message size (PDU-heavy) and a one-cell-per-message
    cell-storm (event-rate-heavy). Run flags-off by [bin/enginebench];
    the snapshot embeds direction-aware {!Engine.Benchgate} gates so CI
    fails only on regressions, never on improvements or fast machines. *)

type sample = {
  s_workload : string;
  s_events : int;  (** events fired during the measured pass *)
  s_pdus : int;  (** messages the workload pushed through *)
  s_wall_ns : int;
  s_alloc_words : float;  (** GC words: minor + major - promoted *)
  s_virt_mb_s : float;  (** the workload's own virtual-time bandwidth *)
  s_lat_p50 : float;
      (** message-latency quantiles in virtual ns, from the
          [message_latency_ns] sketch over the measured pass alone *)
  s_lat_p99 : float;
  s_lat_p999 : float;
}

val workloads : quick:bool -> (string * int * (unit -> float)) list
(** Named thunks with their message count, each returning its
    virtual-time MB/s. *)

val measure : quick:bool -> sample list
(** Warm-up pass then measured pass per workload. *)

val events_per_sec : sample -> float
val us_per_event : sample -> float
val alloc_per_event : sample -> float

val events_per_pdu : sample -> float
(** Fired events per message — the quantity the cell-train fast path
    (DESIGN.md §14) exists to shrink; gated as a deterministic ratchet. *)

val gates : sample list -> (string * Engine.Benchgate.gate) list
(** Tight symmetric gates on deterministic members, generous
    regression-only gates on wall members. *)

val snapshot_json : quick:bool -> sample list -> Engine.Json.t
(** The BENCH_engine-throughput.json document (metrics + gates). *)

val print : sample list -> unit
