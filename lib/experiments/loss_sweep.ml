(* Loss sweep (extension): drive the deterministic fault injector at the
   host uplinks and sweep the Bernoulli cell-loss rate, measuring how the
   two reliable layers recover — UAM's go-back-N window and TCP over the
   U-Net IP path. At every rate both transfers must complete with
   byte-identical payloads; the cost of recovery shows up as lost goodput,
   inflated round-trip latency, and retransmission counts. The number of
   injected faults is also checked against the analytic expectation
   (rate x cells consulted at the faulted links), which validates that the
   injector draws are honest Bernoulli trials. *)

open Engine

type leg = {
  goodput_mb : float;
  retransmits : int;
  completed : bool;
  intact : bool;  (** received bytes identical to what was sent *)
  delivered : int;  (** cells the faulted uplinks actually forwarded *)
  injected : int;  (** fault decisions drawn while this leg ran *)
}

type point = {
  rate : float;
  uam : leg;
  tcp : leg;
  rtt_us : float;  (** mean UAM request/reply RTT, recovery included *)
}

type t = { points : point list }

let seed = 42

let fault_spec rate =
  { Fault.none with Fault.seed; sites = [ Fault.Link_up ]; loss = rate }

(* Run [f] with the spec installed as the process-global fault
   configuration, so the clusters [f] builds pick it up at construction
   exactly as a [--fault] CLI run would. Zero rate runs with no spec at
   all: the lossless control must not even construct injectors. *)
let with_fault rate f =
  if rate <= 0. then f ()
  else begin
    Fault.configure (Some (fault_spec rate));
    Fun.protect ~finally:(fun () -> Fault.configure None) f
  end

(* Cells the injector was consulted for are the ones the link actually
   forwarded plus the ones the injector itself dropped; transmit-FIFO
   overflows (the i960 retries those) never reach the injector, so
   [cells_offered] would overcount the Bernoulli trials. *)
let delivered_uplinks (c : Cluster.t) =
  let acc = ref 0 in
  Array.iteri
    (fun host _ ->
      acc := !acc + Atm.Link.cells_sent (Atm.Network.uplink c.Cluster.net ~host))
    c.Cluster.nodes;
  !acc

(* a byte pattern that makes truncation, reordering and zero-fill visible *)
let pattern k total = Bytes.init total (fun i -> Char.chr ((i * k + 7) land 0xff))

let run_uam ~rate ~total =
  with_fault rate (fun () ->
      let c = Cluster.create () in
      (* the aggressive timeouts of the loss tests: base 2 ms, backoff
         capped at 16 ms so deep loss runs still converge quickly *)
      let config =
        { Uam.default_config with rto = Sim.ms 2; rto_max = Sim.ms 16 }
      in
      let a0 = Uam.create ~config (Cluster.node c 0).Cluster.unet ~rank:0 ~nodes:2 in
      let a1 = Uam.create ~config (Cluster.node c 1).Cluster.unet ~rank:1 ~nodes:2 in
      Uam.connect a0 a1;
      let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
      let region = Bytes.make total '\000' in
      Uam.Xfer.register_region x1 ~id:1 region;
      let data = pattern 131 total in
      let before = Fault.injected_total () in
      ignore
        (Proc.spawn ~name:"server" c.Cluster.sim (fun () ->
             Uam.poll_until a1 (fun () -> false)));
      let t_done = ref 0 and completed = ref false in
      ignore
        (Proc.spawn ~name:"client" c.Cluster.sim (fun () ->
             Uam.Xfer.store_sync x0 ~dst:1 ~region:1 ~offset:0 data;
             t_done := Sim.now c.Cluster.sim;
             completed := true));
      Sim.run ~until:(Sim.sec 60) c.Cluster.sim;
      let secs = Sim.to_sec !t_done in
      {
        goodput_mb =
          (if secs <= 0. then 0. else float_of_int total /. 1e6 /. secs);
        retransmits = Uam.retransmissions a0;
        completed = !completed;
        intact = !completed && Bytes.equal region data;
        delivered = delivered_uplinks c;
        injected = Fault.injected_total () - before;
      })

let run_tcp ~rate ~total =
  with_fault rate (fun () ->
      let c = Cluster.create () in
      let open Ipstack in
      let ifa, ifb =
        Iface.unet_pair ~mtu:9_188 (Cluster.node c 0).Cluster.unet
          (Cluster.node c 1).Cluster.unet
      in
      (* the paper's standard U-Net TCP configuration: 2048-byte segments
         keep the loss-amplification of big AAL5 PDUs bounded (§7.8) *)
      let cfg = { (Tcp.unet_config ~window:(32 * 1024) ()) with mss = 2_048 } in
      let sa = Tcp.attach (Ipv4.attach ifa ~addr:0) cfg in
      let sb = Tcp.attach (Ipv4.attach ifb ~addr:1) cfg in
      let data = pattern 197 total in
      let rx = Buffer.create total in
      let before = Fault.injected_total () in
      let listener = Tcp.listen sb ~port:80 in
      let t_done = ref 0 in
      ignore
        (Proc.spawn ~name:"sink" c.Cluster.sim (fun () ->
             let conn = Tcp.accept listener in
             let rec loop () =
               let chunk = Tcp.recv conn ~max:65536 in
               if Bytes.length chunk > 0 then begin
                 Buffer.add_bytes rx chunk;
                 loop ()
               end
             in
             loop ();
             t_done := Sim.now c.Cluster.sim));
      let retx = ref 0 in
      ignore
        (Proc.spawn ~name:"source" c.Cluster.sim (fun () ->
             let conn = Tcp.connect sa ~dst:1 ~dst_port:80 () in
             let step = 8_192 in
             let off = ref 0 in
             while !off < total do
               let len = min step (total - !off) in
               Tcp.send conn (Bytes.sub data !off len);
               off := !off + len
             done;
             Tcp.close conn;
             retx := Tcp.retransmits conn));
      Sim.run ~until:(Sim.sec 120) c.Cluster.sim;
      let completed = Buffer.length rx = total in
      let secs = Sim.to_sec !t_done in
      {
        goodput_mb =
          (if secs <= 0. then 0.
           else float_of_int (Buffer.length rx) /. 1e6 /. secs);
        retransmits = !retx;
        completed;
        intact = completed && String.equal (Buffer.contents rx) (Bytes.to_string data);
        delivered = delivered_uplinks c;
        injected = Fault.injected_total () - before;
      })

let run_rtt ~rate ~iters =
  with_fault rate (fun () -> Common.uam_rtt ~iters ~size:256 ())

let rates ~quick = if quick then [ 0.; 0.01 ] else [ 0.; 0.001; 0.005; 0.01 ]

let run ~quick =
  let total_uam = (if quick then 128 else 512) * 1024 in
  let total_tcp = (if quick then 256 else 1024) * 1024 in
  let iters = if quick then 30 else 100 in
  {
    points =
      List.map
        (fun rate ->
          {
            rate;
            uam = run_uam ~rate ~total:total_uam;
            tcp = run_tcp ~rate ~total:total_tcp;
            rtt_us = run_rtt ~rate ~iters;
          })
        (rates ~quick);
  }

let series t =
  [
    ( "uam-store-goodput-MB/s",
      List.map (fun p -> (p.rate, p.uam.goodput_mb)) t.points );
    ("tcp-goodput-MB/s", List.map (fun p -> (p.rate, p.tcp.goodput_mb)) t.points);
    ("uam-rtt-us", List.map (fun p -> (p.rate, p.rtt_us)) t.points);
  ]

let print t =
  Format.printf
    "Loss sweep: seeded Bernoulli cell loss at the host uplinks (seed %d); \
     go-back-N and TCP must deliver byte-identical payloads@.@."
    seed;
  let row p =
    [
      Printf.sprintf "%.3f%%" (p.rate *. 100.);
      Printf.sprintf "%.2f" p.uam.goodput_mb;
      string_of_int p.uam.retransmits;
      Printf.sprintf "%.1f" p.rtt_us;
      Printf.sprintf "%.2f" p.tcp.goodput_mb;
      string_of_int p.tcp.retransmits;
      string_of_int (p.uam.injected + p.tcp.injected);
      Printf.sprintf "%.0f"
        (p.rate
        *. float_of_int
             (p.uam.delivered + p.uam.injected + p.tcp.delivered
            + p.tcp.injected));
      (if p.uam.intact && p.tcp.intact then "yes" else "NO");
    ]
  in
  Common.print_table
    ~header:
      [ "loss"; "UAM store (MB/s)"; "UAM retx"; "UAM RTT (us)";
        "TCP (MB/s)"; "TCP retx"; "injected"; "expected"; "intact" ]
    ~rows:(List.map row t.points)

let checks t =
  let zero = List.hd t.points in
  let lossy = List.filter (fun p -> p.rate > 0.) t.points in
  let worst = List.nth t.points (List.length t.points - 1) in
  let analytic_ok p =
    let leg_ok (leg : leg) =
      (* trials = cells consulted = forwarded + dropped by the injector *)
      let e = p.rate *. float_of_int (leg.delivered + leg.injected) in
      let sd = sqrt (e *. (1. -. p.rate)) in
      Float.abs (float_of_int leg.injected -. e) <= (4. *. sd) +. 10.
    in
    leg_ok p.uam && leg_ok p.tcp
  in
  [
    ( "the lossless control injects nothing and never retransmits",
      zero.rate = 0. && zero.uam.injected = 0 && zero.tcp.injected = 0
      && zero.uam.retransmits = 0 );
    ( "every transfer completes at every loss rate",
      List.for_all (fun p -> p.uam.completed && p.tcp.completed) t.points );
    ( "payloads are byte-identical after recovery at every loss rate",
      List.for_all (fun p -> p.uam.intact && p.tcp.intact) t.points );
    ( "1% loss forces recovery at both layers (retransmissions observed)",
      worst.uam.retransmits > 0 && worst.tcp.retransmits > 0 );
    ( "injected fault counts track the analytic expectation",
      List.for_all analytic_ok lossy );
    ( "goodput degrades under 1% loss at both layers",
      worst.uam.goodput_mb < zero.uam.goodput_mb
      && worst.tcp.goodput_mb < zero.tcp.goodput_mb );
    ( "loss inflates the mean UAM round trip (timeout recovery in the tail)",
      worst.rtt_us > zero.rtt_us );
  ]
