(** Multi-stage fabric workloads (extension, DESIGN.md §16): a
    1024-endpoint folded-Clos fat-tree at the raw ATM layer — a one-sender-
    per-pod incast into a single egress port, and an elephant transfer
    sharing its leaf-to-spine trunk with a population of short mice
    messages. All virtual-time deterministic; the snapshot members carry
    direction-aware benchdiff gates. *)

type incast = {
  senders : int;
  waves : int;
  cells_per_msg : int;
  completed : int;
  p50_us : float;
  p99_us : float;
  leaf_routed : int;
  spine_routed : int;
  egress_hw : float;
  egress_capacity : int;
  switch_drops : int;
}

type mix = {
  elephant_cells : int;
  elephant_mb_s : float;
  mice : int;
  mice_msgs : int;
  mice_completed : int;
  mice_p50_us : float;
  mice_p99_us : float;
  hh_recall : float;
      (** fraction of the true heavy-hitter flows (the three planted
          elephants plus the shared-trunk elephant) recovered by the
          Space-Saving top-K sketch; 1.0 by the sketch's guarantee *)
  max_trunk_util : float;  (** busiest trunk over the elephant's lifetime *)
  hop_p99_us : float array;
      (** per-stage p99 hop latency from the path records, one entry per
          fabric stage *)
  path_records : int;  (** delivered-PDU path records captured *)
}

type t = {
  hosts : int;
  switches : int;
  incast : incast;
  mix : mix;
  sections : string list;
      (** congestion-atlas HTML fragments, one per workload *)
}

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list

val members : t -> (string * (float * Engine.Benchgate.gate)) list
(** The gated top-level members of [BENCH_fabric.json]: per-stage cell
    counts and egress high water (symmetric, the run is deterministic),
    latency quantiles (lower is better), elephant throughput (higher is
    better). *)
