(** Multi-stage fabric workloads (extension, DESIGN.md §16): a
    1024-endpoint folded-Clos fat-tree at the raw ATM layer — a one-sender-
    per-pod incast into a single egress port, and an elephant transfer
    sharing its leaf-to-spine trunk with a population of short mice
    messages. All virtual-time deterministic; the snapshot members carry
    direction-aware benchdiff gates. *)

type incast = {
  senders : int;
  waves : int;
  cells_per_msg : int;
  completed : int;
  p50_us : float;
  p99_us : float;
  leaf_routed : int;
  spine_routed : int;
  egress_hw : float;
  egress_capacity : int;
  switch_drops : int;
}

type mix = {
  elephant_cells : int;
  elephant_mb_s : float;
  mice : int;
  mice_msgs : int;
  mice_completed : int;
  mice_p50_us : float;
  mice_p99_us : float;
}

type t = { hosts : int; switches : int; incast : incast; mix : mix }

val run : quick:bool -> t
val print : t -> unit
val checks : t -> (string * bool) list

val members : t -> (string * (float * Engine.Benchgate.gate)) list
(** The gated top-level members of [BENCH_fabric.json]: per-stage cell
    counts and egress high water (symmetric, the run is deterministic),
    latency quantiles (lower is better), elephant throughput (higher is
    better). *)
