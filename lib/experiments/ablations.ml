(* Ablations of the design decisions DESIGN.md §5 calls out. Each isolates
   one mechanism the paper credits for its performance and measures the
   system with it turned off (or swept):

   - inline   : the single-cell fast path of §3.4/§4.2.2
   - firmware : the custom U-Net firmware vs Fore's original (§4.2.1)
   - window   : the UAM flow-control window w (§5.1.1)
   - tcp      : segment size and delayed acks (§7.8)
   - upcall   : polling vs signal-driven reception (+~30 µs/end, §4.2.3) *)

open Engine

(* shared raw ping-pong over an arbitrary cluster *)
let rtt_on cluster ~size ~iters ~recv_extra_ns =
  let n0 = Cluster.node cluster 0 and n1 = Cluster.node cluster 1 in
  let ep0, a0 = Cluster.simple_endpoint n0 in
  let ep1, _ = Cluster.simple_endpoint n1 in
  let ch0, ch1 = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
  let payload = Common.payload_of_size a0 size in
  ignore
    (Proc.spawn ~name:"echo" cluster.sim (fun () ->
         let rec loop () =
           let d = Unet.recv n1.unet ep1 in
           if recv_extra_ns > 0 then Host.Cpu.charge n1.cpu recv_extra_ns;
           ignore (Unet.send n1.unet ep1 (Unet.Desc.tx ~chan:ch1 d.rx_payload));
           Common.return_buffers n1 ep1 d;
           loop ()
         in
         loop ()));
  let sum = ref 0. and n = ref 0 in
  ignore
    (Proc.spawn ~name:"client" cluster.sim (fun () ->
         for _ = 1 to iters do
           let t0 = Sim.now cluster.sim in
           ignore (Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload));
           let d = Unet.recv n0.unet ep0 in
           if recv_extra_ns > 0 then Host.Cpu.charge n0.cpu recv_extra_ns;
           Common.return_buffers n0 ep0 d;
           sum := !sum +. Sim.to_us (Sim.now cluster.sim - t0);
           incr n
         done));
  Sim.run ~until:(Sim.sec 30) cluster.sim;
  !sum /. float_of_int (max 1 !n)

(* ------------------------------------------------------------------ *)
(* inline: single-cell optimization on/off                              *)

module Inline = struct
  type t = { with_opt : float; without_opt : float }

  let run ~quick =
    let iters = if quick then 15 else 50 in
    let base = Ni.Sba200.default_config in
    let no_opt =
      {
        base with
        Ni.I960_nic.single_cell_optimization = false;
        name = "SBA-200/U-Net/no-fast-path";
      }
    in
    {
      with_opt = rtt_on (Cluster.create ()) ~size:16 ~iters ~recv_extra_ns:0;
      without_opt =
        rtt_on (Cluster.create ~nic_config:no_opt ()) ~size:16 ~iters
          ~recv_extra_ns:0;
    }

  let print t =
    Format.printf
      "Ablation: single-cell fast path (inline descriptors, no buffer pop)@.@.";
    Common.print_table
      ~header:[ "configuration"; "16 B RTT (us)" ]
      ~rows:
        [
          [ "fast path on (the paper's firmware)"; Printf.sprintf "%.1f" t.with_opt ];
          [ "fast path off"; Printf.sprintf "%.1f" t.without_opt ];
        ]

  let checks t =
    [
      ( "the single-cell optimization buys roughly the 120-65 us gap",
        t.without_opt -. t.with_opt >= 35. && t.without_opt -. t.with_opt <= 75. );
    ]
end

(* ------------------------------------------------------------------ *)
(* firmware: U-Net firmware vs Fore's original                          *)

module Firmware = struct
  type t = { unet_rtt : float; fore_rtt : float; unet_bw : float; fore_bw : float }

  let bw_on nic ~size ~count =
    let c = Cluster.create ~nic () in
    let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
    let ep0, a0 = Cluster.simple_endpoint ~free_buffers:4 n0 in
    let ep1, _ = Cluster.simple_endpoint ~free_buffers:56 ~rx_slots:128 n1 in
    let ch0, _ = Unet.connect_pair (n0.unet, ep0) (n1.unet, ep1) in
    let payload = Common.payload_of_size a0 size in
    let received = ref 0 and done_at = ref 0 in
    ignore
      (Proc.spawn c.sim (fun () ->
           while !received < count do
             let d = Unet.recv n1.unet ep1 in
             incr received;
             Common.return_buffers n1 ep1 d
           done;
           done_at := Sim.now c.sim));
    ignore
      (Proc.spawn c.sim (fun () ->
           let sent = ref 0 in
           while !sent < count do
             match Unet.send n0.unet ep0 (Unet.Desc.tx ~chan:ch0 payload) with
             | Ok () -> incr sent
             | Error Unet.Queue_full -> Proc.sleep c.sim ~time:(Sim.us 10)
             | Error e -> Fmt.failwith "%a" Unet.pp_error e
           done));
    Sim.run ~until:(Sim.sec 60) c.sim;
    float_of_int (size * !received) /. 1e6 /. Sim.to_sec !done_at

  let run ~quick =
    let iters = if quick then 15 else 50 in
    let count = if quick then 150 else 500 in
    {
      unet_rtt =
        rtt_on (Cluster.create ()) ~size:16 ~iters ~recv_extra_ns:0;
      fore_rtt =
        rtt_on (Cluster.create ~nic:Cluster.Sba200_fore ()) ~size:16 ~iters
          ~recv_extra_ns:0;
      unet_bw = bw_on Cluster.Sba200_unet ~size:4096 ~count;
      fore_bw = bw_on Cluster.Sba200_fore ~size:4096 ~count;
    }

  let print t =
    Format.printf
      "Ablation: custom U-Net firmware vs Fore's original firmware \
       (§4.2.1: 160 us RTT, 13 MB/s @4KB)@.@.";
    Common.print_table
      ~header:[ "firmware"; "16 B RTT (us)"; "4 KB bandwidth (MB/s)" ]
      ~rows:
        [
          [ "U-Net (redesigned)"; Printf.sprintf "%.1f" t.unet_rtt;
            Printf.sprintf "%.1f" t.unet_bw ];
          [ "Fore original"; Printf.sprintf "%.1f" t.fore_rtt;
            Printf.sprintf "%.1f" t.fore_bw ];
        ]

  let checks t =
    [
      ( "Fore firmware RTT ~160 us (2.5x the U-Net firmware's 65)",
        t.fore_rtt > 2.2 *. t.unet_rtt && t.fore_rtt < 3. *. t.unet_rtt );
      ("Fore firmware bandwidth ~13 MB/s", t.fore_bw >= 11.5 && t.fore_bw <= 14.5);
      ("U-Net firmware saturates the fiber", t.unet_bw >= 15.);
    ]
end

(* ------------------------------------------------------------------ *)
(* window: the UAM flow-control window                                  *)

module Window = struct
  type t = { points : (int * float) list (* w, 4 KB store bandwidth *) }

  let store_bw ~window ~count ~size =
    let config = { Uam.default_config with window } in
    let c = Cluster.create () in
    let a0 = Uam.create ~config (Cluster.node c 0).unet ~rank:0 ~nodes:2 in
    let a1 = Uam.create ~config (Cluster.node c 1).unet ~rank:1 ~nodes:2 in
    Uam.connect a0 a1;
    let x0 = Uam.Xfer.attach a0 and x1 = Uam.Xfer.attach a1 in
    Uam.Xfer.register_region x1 ~id:1 (Bytes.make (max size 8192) '\000');
    let block = Bytes.make size '\000' in
    let t_done = ref 0 in
    ignore
      (Proc.spawn c.sim (fun () -> Uam.poll_until a1 (fun () -> false)));
    ignore
      (Proc.spawn c.sim (fun () ->
           for _ = 1 to count do
             Uam.Xfer.store x0 ~dst:1 ~region:1 ~offset:0 block
           done;
           Uam.Xfer.quiet x0;
           t_done := Sim.now c.sim));
    Sim.run ~until:(Sim.sec 120) c.sim;
    float_of_int (size * count) /. 1e6 /. Sim.to_sec !t_done

  let run ~quick =
    let count = if quick then 100 else 300 in
    {
      points =
        List.map
          (fun w -> (w, store_bw ~window:w ~count ~size:4096))
          [ 1; 2; 4; 8; 16 ];
    }

  let print t =
    Format.printf
      "Ablation: UAM flow-control window w (§5.1.1) — 4 KB store bandwidth@.@.";
    Common.print_table
      ~header:[ "w"; "bandwidth (MB/s)" ]
      ~rows:
        (List.map
           (fun (w, bw) -> [ string_of_int w; Printf.sprintf "%.2f" bw ])
           t.points)

  let checks t =
    let bw w = List.assoc w t.points in
    [
      ("w=1 is latency-bound (well below the fiber)", bw 1 < 11.);
      ("w=2 already covers the bandwidth-delay product", bw 2 >= 13.);
      ("beyond w=2 the window is not the bottleneck", bw 16 -. bw 2 < 2.);
    ]
end

(* ------------------------------------------------------------------ *)
(* tcp: segment size sweep and delayed acks                             *)

module Tcp_tuning = struct
  type t = {
    mss_points : (int * float) list; (* mss, stream MB/s *)
    no_delack_rtt : float;
    delack_rtt : float;
    no_delack_ack_us : float;
    delack_ack_us : float;
  }

  let stream ~cfg ~total =
    let c = Cluster.create () in
    let mk u = Ipstack.Ipv4.attach (fst (Ipstack.Iface.unet_pair u u)) in
    ignore mk;
    (* build the two stacks by hand so the TCP config is fully ours *)
    let ifa, ifb =
      Ipstack.Iface.unet_pair (Cluster.node c 0).unet (Cluster.node c 1).unet
    in
    let ipa = Ipstack.Ipv4.attach ifa ~addr:0 in
    let ipb = Ipstack.Ipv4.attach ifb ~addr:1 in
    let sa = Ipstack.Tcp.attach ipa cfg in
    let sb = Ipstack.Tcp.attach ipb cfg in
    let l = Ipstack.Tcp.listen sb ~port:80 in
    let received = ref 0 and t_done = ref 0 in
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Ipstack.Tcp.accept l in
           let rec loop () =
             let chunk = Ipstack.Tcp.recv conn ~max:65536 in
             if Bytes.length chunk > 0 then begin
               received := !received + Bytes.length chunk;
               loop ()
             end
           in
           loop ();
           t_done := Sim.now c.sim));
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Ipstack.Tcp.connect sa ~dst:1 ~dst_port:80 () in
           let chunk = Bytes.make 8192 '\000' in
           let sent = ref 0 in
           while !sent < total do
             Ipstack.Tcp.send conn chunk;
             sent := !sent + 8192
           done;
           Ipstack.Tcp.close conn));
    Sim.run ~until:(Sim.sec 120) c.sim;
    float_of_int !received /. 1e6 /. Sim.to_sec !t_done

  (* the §7.8 pathology: an isolated segment's ack waits for the 200 ms
     delayed-ack timer when no reverse traffic piggybacks it *)
  let isolated_ack_us ~cfg =
    let c = Cluster.create () in
    let ifa, ifb =
      Ipstack.Iface.unet_pair (Cluster.node c 0).unet (Cluster.node c 1).unet
    in
    let sa = Ipstack.Tcp.attach (Ipstack.Ipv4.attach ifa ~addr:0) cfg in
    let sb = Ipstack.Tcp.attach (Ipstack.Ipv4.attach ifb ~addr:1) cfg in
    let l = Ipstack.Tcp.listen sb ~port:80 in
    ignore (Proc.spawn c.sim (fun () -> ignore (Ipstack.Tcp.accept l)));
    let result = ref nan in
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Ipstack.Tcp.connect sa ~dst:1 ~dst_port:80 () in
           Proc.sleep c.sim ~time:(Sim.ms 2);
           let t0 = Sim.now c.sim in
           Ipstack.Tcp.send conn (Bytes.make 64 '\000');
           while Ipstack.Tcp.unacked conn > 0 do
             Proc.sleep c.sim ~time:(Sim.us 50)
           done;
           result := Sim.to_us (Sim.now c.sim - t0)));
    Sim.run ~until:(Sim.sec 10) c.sim;
    !result

  let echo_rtt ~cfg ~iters =
    let c = Cluster.create () in
    let ifa, ifb =
      Ipstack.Iface.unet_pair (Cluster.node c 0).unet (Cluster.node c 1).unet
    in
    let sa = Ipstack.Tcp.attach (Ipstack.Ipv4.attach ifa ~addr:0) cfg in
    let sb = Ipstack.Tcp.attach (Ipstack.Ipv4.attach ifb ~addr:1) cfg in
    let l = Ipstack.Tcp.listen sb ~port:80 in
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Ipstack.Tcp.accept l in
           try
             let rec loop () =
               Ipstack.Tcp.send conn (Ipstack.Tcp.recv_exact conn ~len:64);
               loop ()
             in
             loop ()
           with End_of_file -> ()));
    let sum = ref 0. and n = ref 0 in
    ignore
      (Proc.spawn c.sim (fun () ->
           let conn = Ipstack.Tcp.connect sa ~dst:1 ~dst_port:80 () in
           for _ = 1 to iters do
             let t0 = Sim.now c.sim in
             Ipstack.Tcp.send conn (Bytes.make 64 '\000');
             ignore (Ipstack.Tcp.recv_exact conn ~len:64);
             sum := !sum +. Sim.to_us (Sim.now c.sim - t0);
             incr n
           done;
           Ipstack.Tcp.close conn));
    Sim.run ~until:(Sim.sec 60) c.sim;
    !sum /. float_of_int (max 1 !n)

  let run ~quick =
    let total = (if quick then 1 else 3) * 1024 * 1024 in
    let iters = if quick then 10 else 30 in
    let base = Ipstack.Tcp.unet_config () in
    {
      mss_points =
        List.map
          (fun mss -> (mss, stream ~cfg:{ base with mss } ~total))
          [ 512; 1024; 2048; 4096 ];
      no_delack_rtt = echo_rtt ~cfg:base ~iters;
      delack_rtt = echo_rtt ~cfg:{ base with delayed_ack = true } ~iters;
      no_delack_ack_us = isolated_ack_us ~cfg:base;
      delack_ack_us = isolated_ack_us ~cfg:{ base with delayed_ack = true };
    }

  let print t =
    Format.printf
      "Ablation: U-Net TCP tuning (§7.8) — segment size and delayed acks@.@.";
    Common.print_table
      ~header:[ "MSS (bytes)"; "stream bandwidth (MB/s)" ]
      ~rows:
        (List.map
           (fun (m, bw) -> [ string_of_int m; Printf.sprintf "%.2f" bw ])
           t.mss_points);
    Format.printf "@.";
    Common.print_table
      ~header:[ "acks"; "64 B echo RTT (us)"; "isolated-segment ack (us)" ]
      ~rows:
        [
          [ "immediate (the paper's choice)";
            Printf.sprintf "%.0f" t.no_delack_rtt;
            Printf.sprintf "%.0f" t.no_delack_ack_us ];
          [ "delayed (BSD 200 ms policy)";
            Printf.sprintf "%.0f" t.delack_rtt;
            Printf.sprintf "%.0f" t.delack_ack_us ];
        ]

  let checks t =
    let bw m = List.assoc m t.mss_points in
    [
      ("2048-byte segments suffice for full bandwidth (§7.8)", bw 2048 >= 14.);
      ("512-byte segments lose bandwidth to per-segment costs", bw 512 < bw 2048);
      ( "the paper's standard segment choice is within 5% of the best sweep point",
        let best = List.fold_left (fun a (_, b) -> Float.max a b) 0. t.mss_points in
        bw 2048 >= 0.95 *. best );
      ( "echo traffic piggybacks acks either way (RTTs within 20 us)",
        Float.abs (t.no_delack_rtt -. t.delack_rtt) <= 20. );
      ( "delayed acks multiply isolated-segment ack latency >= 10x (the ack\n\
         \       waits for the 200 ms timer until the sender's own fine-grained\n\
         \       retransmit timer fires a spurious retransmission)",
        t.delack_ack_us >= 10. *. t.no_delack_ack_us
        && t.no_delack_ack_us < 1_000. );
    ]
end

(* ------------------------------------------------------------------ *)
(* upcall: polling vs signal reception                                  *)

module Upcall = struct
  type t = { polling : float; signal : float }

  let signal_ns = 30_000 (* §4.2.3: a UNIX signal adds ~30 us on each end *)

  let run ~quick =
    let iters = if quick then 15 else 50 in
    {
      polling = rtt_on (Cluster.create ()) ~size:16 ~iters ~recv_extra_ns:0;
      signal =
        rtt_on (Cluster.create ()) ~size:16 ~iters ~recv_extra_ns:signal_ns;
    }

  let print t =
    Format.printf
      "Ablation: polling vs signal-driven reception (§4.2.3: a UNIX signal \
       adds ~30 us on each end)@.@.";
    Common.print_table
      ~header:[ "reception"; "16 B RTT (us)" ]
      ~rows:
        [
          [ "polling"; Printf.sprintf "%.1f" t.polling ];
          [ "signal per message"; Printf.sprintf "%.1f" t.signal ];
        ]

  let checks t =
    [
      ( "signals add ~30 us per end (55..65 us per round trip)",
        t.signal -. t.polling >= 55. && t.signal -. t.polling <= 65. );
    ]
end
