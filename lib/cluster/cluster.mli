(** Convenience constructors for the paper's testbed: [n] workstations with
    a chosen NI model around one ATM switch, each with a U-Net instance. *)

type nic_kind =
  | Sba200_unet  (** custom U-Net firmware (§4.2.2) — the system under test *)
  | Sba200_fore  (** Fore's original firmware (§4.2.1) — baseline *)
  | Sba100  (** PIO interface, kernel-emulated endpoints (§4.1) *)

type node = {
  host : int;
  cpu : Host.Cpu.t;
  unet : Unet.t;
  i960 : Ni.I960_nic.t option;  (** present for SBA-200 variants *)
  sba100 : Ni.Sba100.t option;
}

type t = {
  sim : Engine.Sim.t;
  net : Atm.Network.t;
  nodes : node array;
}

val set_default_topology : Atm.Network.topology option -> unit
(** Override the shape {!create} builds when the caller passes no explicit
    [?topology] — the hook behind [unetsim --topology], so fabric runs
    don't require the experiments harness. Callers that do pass
    [?topology] are unaffected. *)

val create :
  ?hosts:int ->
  ?topology:Atm.Network.topology ->
  ?net_config:Atm.Network.config ->
  ?machine:Host.Machine.t ->
  ?nic:nic_kind ->
  ?nic_config:Ni.I960_nic.config ->
  unit ->
  t
(** Defaults: 2 hosts, the paper's network parameters, SS-20s, U-Net
    firmware. The paper's full cluster is [~hosts:8]. [topology] builds a
    multi-stage fabric instead (DESIGN.md §16) and wins over [hosts] —
    the node count becomes {!Atm.Network.topology_hosts}. [nic_config]
    overrides the i960 firmware parameters (for ablations); it applies to
    the SBA-200 variants only. *)

val node : t -> int -> node

val simple_endpoint :
  ?emulated:bool ->
  ?direct_access:bool ->
  ?seg_size:int ->
  ?rx_slots:int ->
  ?free_buffers:int ->
  ?buffer_size:int ->
  node ->
  Unet.Endpoint.t * Unet.Segment.Allocator.t
(** An endpoint with a block allocator over its segment and [free_buffers]
    receive buffers already posted to the free queue. The remaining blocks
    are for the application's send buffers. *)
