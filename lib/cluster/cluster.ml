type nic_kind = Sba200_unet | Sba200_fore | Sba100

type node = {
  host : int;
  cpu : Host.Cpu.t;
  unet : Unet.t;
  i960 : Ni.I960_nic.t option;
  sba100 : Ni.Sba100.t option;
}

type t = { sim : Engine.Sim.t; net : Atm.Network.t; nodes : node array }

(* CLI hook (unetsim --topology): the fabric shape used when a caller
   passes no explicit [?topology]. *)
let default_topology : Atm.Network.topology option ref = ref None
let set_default_topology topo = default_topology := topo

let create ?(hosts = 2) ?topology ?(net_config = Atm.Network.default_config)
    ?(machine = Host.Machine.ss20) ?(nic = Sba200_unet) ?nic_config () =
  let topology =
    match topology with
    | Some topo -> topo
    | None -> (
        match !default_topology with
        | Some topo -> topo
        | None -> Atm.Network.Single hosts)
  in
  let hosts = Atm.Network.topology_hosts topology in
  let sim = Engine.Sim.create () in
  let net = Atm.Network.create_topo sim ~topology net_config in
  let nodes =
    Array.init hosts (fun host ->
        let cpu = Host.Cpu.create ~host sim machine in
        match nic with
        | Sba200_unet ->
            let i960 = Ni.Sba200.create net ~host ?config:nic_config () in
            let unet =
              Unet.create ~cpu ~net ~host (Ni.I960_nic.backend i960)
            in
            { host; cpu; unet; i960 = Some i960; sba100 = None }
        | Sba200_fore ->
            let i960 = Ni.Fore_firmware.create net ~host ?config:nic_config () in
            let unet =
              Unet.create ~cpu ~net ~host (Ni.I960_nic.backend i960)
            in
            { host; cpu; unet; i960 = Some i960; sba100 = None }
        | Sba100 ->
            let nic = Ni.Sba100.create net ~host ~cpu () in
            let unet = Unet.create ~cpu ~net ~host (Ni.Sba100.backend nic) in
            { host; cpu; unet; i960 = None; sba100 = Some nic })
  in
  { sim; net; nodes }

let node t i = t.nodes.(i)

let simple_endpoint ?(emulated = false) ?(direct_access = false)
    ?(seg_size = 256 * 1024) ?(rx_slots = 64) ?(free_buffers = 32)
    ?(buffer_size = 4160) node =
  let ep =
    match
      Unet.create_endpoint node.unet ~emulated ~direct_access ~rx_slots
        ~free_slots:(max 1 free_buffers) ~seg_size ()
    with
    | Ok ep -> ep
    | Error e -> Fmt.invalid_arg "simple_endpoint: %a" Unet.pp_error e
  in
  let alloc = Unet.Segment.Allocator.create ep.segment ~block:buffer_size in
  for _ = 1 to free_buffers do
    match Unet.Segment.Allocator.alloc alloc with
    | Some (off, len) -> (
        match Unet.provide_free_buffer node.unet ep ~off ~len with
        | Ok () -> ()
        | Error e -> Fmt.invalid_arg "simple_endpoint: %a" Unet.pp_error e)
    | None -> invalid_arg "simple_endpoint: segment too small for free buffers"
  done;
  (ep, alloc)
