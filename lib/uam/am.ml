open Engine

let log_src = Logs.Src.create "uam" ~doc:"U-Net Active Messages"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Module-level so the uam_* families exist in every dump; per-instance
   counts remain available through the accessors below. *)
let m_reqs =
  Metrics.counter ~help:"Active Message requests sent" "uam_requests_total" []

let m_reps =
  Metrics.counter ~help:"Active Message replies sent" "uam_replies_total" []

let m_retx =
  Metrics.counter ~help:"go-back-N retransmissions of unacked messages"
    "uam_retransmissions_total" []

let m_dups =
  Metrics.counter
    ~help:"duplicate or out-of-order sequenced messages discarded"
    "uam_duplicates_total" []

let max_args = 4
(* handler indices 240+ are reserved for Xfer *)

(* Wire format of a UAM message (carried as one U-Net message):
   byte 0: low 2 bits message type (0 REQ / 1 REP / 2 ACK), next 3 bits nargs
   byte 1: handler index
   bytes 2-3: sequence number (u16 LE; ACKs carry 0)
   bytes 4-5: cumulative acknowledgment = next sequence expected (u16 LE)
   then nargs * 4 bytes of arguments, then the payload.
   A 4-arg-free request with up to 34 bytes of payload fits a single cell,
   which is what makes the paper's 71 µs single-cell UAM round trip. *)
let header_size = 6

type msg_type = Req | Rep | Ack

let type_code = function Req -> 0 | Rep -> 1 | Ack -> 2

let code_type = function
  | 0 -> Req
  | 1 -> Rep
  | 2 -> Ack
  | n -> Fmt.failwith "Uam: bad message type %d" n

(* 16-bit serial arithmetic; windows are tiny compared to the 32k horizon. *)
let seq_lt a b = (b - a) land 0xffff <> 0 && (b - a) land 0xffff < 0x8000

type config = {
  window : int;
  rto : Sim.time;
  rto_max : Sim.time;
  op_ns : int;
  chunk_data : int;
}

let default_config =
  {
    window = 8;
    rto = Sim.ms 20;
    rto_max = Sim.ms 320;
    op_ns = 800;
    chunk_data = 4_160;
  }

type unacked = {
  u_seq : int;
  u_type : msg_type;
  u_resend : Unet.Desc.payload;
      (* what retransmission re-sends: an owned inline snapshot, or the
         ranges of the transmit buffer the message was staged into (held
         until acknowledged, so it doubles as the retransmission copy) *)
  u_buffer : (int * int) option; (* tx buffer held until acknowledged *)
  u_ctx : Span.ctx option; (* original span: retries become its children *)
}

type peer = {
  p_rank : int;
  p_chan : Unet.Channel.id;
  mutable p_next_seq : int;
  p_unacked : unacked Queue.t;
  mutable p_unacked_reqs : int;
  mutable p_expected : int; (* next seq expected from this peer *)
  mutable p_last_progress : Sim.time; (* for the retransmission timer *)
  mutable p_backoff : int; (* consecutive timeouts without progress *)
  mutable p_rto_timer : Sim.handle option; (* armed while unacked exist *)
  mutable p_need_ack : bool; (* owe the peer an explicit ACK *)
}

type t = {
  cfg : config;
  u : Unet.t;
  ep : Unet.Endpoint.t;
  alloc : Unet.Segment.Allocator.t;
  rank : int;
  nodes : int;
  peers : peer option array;
  handlers : handler option array;
  mutable reqs_sent : int;
  mutable reps_sent : int;
  mutable retx : int;
  mutable dups : int;
}

and token = {
  tk_uam : t;
  tk_src : int;
  mutable tk_replied : bool;
  tk_ctx : Span.ctx option; (* request's span: the reply joins its trace *)
}

and handler =
  t -> src:int -> token option -> args:int array -> payload:Buf.t -> unit

let buffer_block cfg = cfg.chunk_data + header_size + (max_args * 4) + 16

let create ?(config = default_config) u ~rank ~nodes =
  if rank < 0 || rank >= nodes then invalid_arg "Uam.create: bad rank";
  let npeers = max 1 (nodes - 1) in
  let block = buffer_block config in
  (* 4w buffers per peer (§5.1.1): w request-tx + w reply-tx + 2w receive *)
  let nbuffers = 4 * config.window * npeers in
  let seg_size = (nbuffers + 2) * block in
  let slots = max 64 (4 * config.window * npeers) in
  let ep =
    match
      Unet.create_endpoint u ~tx_slots:slots ~rx_slots:slots ~free_slots:slots
        ~seg_size ()
    with
    | Ok ep -> ep
    | Error e -> Fmt.invalid_arg "Uam.create: %a" Unet.pp_error e
  in
  let alloc = Unet.Segment.Allocator.create ep.segment ~block in
  (* post the receive half of the buffers to the free queue *)
  for _ = 1 to 2 * config.window * npeers do
    match Unet.Segment.Allocator.alloc alloc with
    | Some (off, len) -> (
        match Unet.provide_free_buffer u ep ~off ~len with
        | Ok () -> ()
        | Error e -> Fmt.invalid_arg "Uam.create: %a" Unet.pp_error e)
    | None -> assert false
  done;
  {
    cfg = config;
    u;
    ep;
    alloc;
    rank;
    nodes;
    peers = Array.make nodes None;
    handlers = Array.make 256 None;
    reqs_sent = 0;
    reps_sent = 0;
    retx = 0;
    dups = 0;
  }

let rank t = t.rank
let nodes t = t.nodes
let config t = t.cfg
let unet t = t.u
let endpoint t = t.ep
let max_payload t = t.cfg.chunk_data
let requests_sent t = t.reqs_sent
let replies_sent t = t.reps_sent
let retransmissions t = t.retx
let duplicates_dropped t = t.dups

(* Profile frames must live on the same host key the CPU charges use. *)
let phost t = Host.Cpu.host (Unet.cpu t.u)

(* Directed flow key for the flight recorder; both ends build the same
   string for a given direction. *)
let flow_key ~src ~dst = Printf.sprintf "uam.%d->%d" src dst

let watch_peer t (p : peer) =
  Timeseries.register "uam_unacked"
    [ ("rank", string_of_int t.rank); ("peer", string_of_int p.p_rank) ]
    (fun () -> float_of_int (Queue.length p.p_unacked))

let report_pending t (p : peer) =
  if Recorder.armed () then
    Recorder.sender_pending
      ~key:(flow_key ~src:t.rank ~dst:p.p_rank)
      (Queue.length p.p_unacked)

let mk_peer rank chan now =
  {
    p_rank = rank;
    p_chan = chan;
    p_next_seq = 0;
    p_unacked = Queue.create ();
    p_unacked_reqs = 0;
    p_expected = 0;
    p_last_progress = now;
    p_backoff = 0;
    p_rto_timer = None;
    p_need_ack = false;
  }

let connect a b =
  if not (a.nodes = b.nodes) then invalid_arg "Uam.connect: cluster size mismatch";
  if a.rank = b.rank then invalid_arg "Uam.connect: same rank";
  if a.peers.(b.rank) <> None then invalid_arg "Uam.connect: already connected";
  let ch_a, ch_b = Unet.connect_pair (a.u, a.ep) (b.u, b.ep) in
  let pa = mk_peer b.rank ch_a (Sim.now (Unet.sim a.u)) in
  let pb = mk_peer a.rank ch_b (Sim.now (Unet.sim b.u)) in
  a.peers.(b.rank) <- Some pa;
  b.peers.(a.rank) <- Some pb;
  watch_peer a pa;
  watch_peer b pb

let connect_all arr =
  Array.iteri
    (fun i a -> Array.iteri (fun j b -> if i < j then connect a b) arr)
    arr

let register_handler t idx h =
  if idx < 0 || idx > 255 then invalid_arg "Uam.register_handler: bad index";
  t.handlers.(idx) <- Some h

let peer t dst =
  match t.peers.(dst) with
  | Some p -> p
  | None -> Fmt.invalid_arg "Uam: no channel to node %d" dst

(* The wire message is a slice: a fresh header store concatenated with a
   zero-copy view of the caller's payload. It is only materialized where it
   is staged for transmission. *)
let encode ~ty ~handler ~seq ~ack ~args ~payload =
  let nargs = Array.length args in
  if nargs > max_args then invalid_arg "Uam: too many arguments";
  let hdr = Bytes.create (header_size + (4 * nargs)) in
  Bytes.set_uint8 hdr 0 (type_code ty lor (nargs lsl 2));
  Bytes.set_uint8 hdr 1 handler;
  Bytes.set_uint16_le hdr 2 seq;
  Bytes.set_uint16_le hdr 4 ack;
  Array.iteri
    (fun i a -> Bytes.set_int32_le hdr (header_size + (4 * i)) (Int32.of_int a))
    args;
  Buf.append (Buf.of_bytes hdr) payload

type decoded = {
  d_type : msg_type;
  d_handler : int;
  d_seq : int;
  d_ack : int;
  d_args : int array;
  d_payload : Buf.t;
}

let decode b =
  let b0 = Buf.get_uint8 b 0 in
  let ty = code_type (b0 land 3) in
  let nargs = (b0 lsr 2) land 7 in
  let args =
    Array.init nargs (fun i ->
        Int32.to_int (Buf.get_uint32_le b (header_size + (4 * i))))
  in
  let poff = header_size + (4 * nargs) in
  {
    d_type = ty;
    d_handler = Buf.get_uint8 b 1;
    d_seq = Buf.get_uint16_le b 2;
    d_ack = Buf.get_uint16_le b 4;
    d_args = args;
    d_payload = Buf.sub b ~pos:poff ~len:(Buf.length b - poff);
  }

(* Push a serialized message out through U-Net: small messages ride inline
   in the descriptor; larger ones are staged in a transmit buffer which is
   held until acknowledgment (it doubles as the retransmission copy).
   Returns what a retransmission should re-send plus the buffer to release
   on acknowledgment. *)
let unet_transmit ?ctx t (p : peer) (b : Buf.t) =
  if Buf.length b <= Unet.Desc.inline_max then begin
    (* snapshot: the descriptor (and the go-back-N window) must own the
       bytes once the caller's payload buffer is reused *)
    let b = Buf.copy ~layer:"uam_tx" b in
    (match
       Unet.send t.u t.ep
         (Unet.Desc.tx ?ctx ~chan:p.p_chan (Unet.Desc.Inline b))
     with
    | Ok () -> ()
    | Error e -> Fmt.failwith "Uam: send failed: %a" Unet.pp_error e);
    (Unet.Desc.Inline b, None)
  end
  else begin
    match Unet.Segment.Allocator.alloc t.alloc with
    | None -> Fmt.failwith "Uam: transmit buffer pool exhausted"
    | Some (off, blen) ->
        assert (Buf.length b <= blen);
        Unet.Segment.write_buf ~layer:"uam_tx" t.ep.segment ~off b;
        let ranges = Unet.Desc.Buffers [ (off, Buf.length b) ] in
        (match Unet.send t.u t.ep (Unet.Desc.tx ?ctx ~chan:p.p_chan ranges) with
        | Ok () -> ()
        | Error e -> Fmt.failwith "Uam: send failed: %a" Unet.pp_error e);
        (ranges, Some (off, blen))
end

let retransmit_unacked t (p : peer) =
  if not (Queue.is_empty p.p_unacked) then begin
    Log.debug (fun m ->
        m "node %d: retransmitting %d unacked messages to node %d" t.rank
          (Queue.length p.p_unacked) p.p_rank);
    if Trace.enabled () then
      Trace.instant Trace.Am "am.retx" ~tid:t.rank
        ~args:
          [
            ("peer", Trace.Int p.p_rank);
            ("unacked", Trace.Int (Queue.length p.p_unacked));
          ];
    Profile.push ~host:(phost t) "uam.retransmit";
    (* flow accounting (DESIGN.md §17): retransmits are charged to the
       channel's transmit VCI, i.e. the flow the duplicates ride on *)
    let retx_vci =
      match Unet.Endpoint.find_channel t.ep p.p_chan with
      | Some ch -> Some ch.Unet.Channel.tx_vci
      | None -> None
    in
    Queue.iter
      (fun u ->
        t.retx <- t.retx + 1;
        Metrics.Counter.inc m_retx;
        (match retx_vci with
        | Some vci -> Atm.Network.note_retx (Unet.net t.u) ~host:(phost t) ~vci
        | None -> ());
        Host.Cpu.charge ~layer:"uam" (Unet.cpu t.u) t.cfg.op_ns;
        (* each retry is a child span of the original message, so a
           retransmitted message stays one connected trace *)
        let ctx =
          match u.u_ctx with
          | Some orig -> Some (Span.child ~host:t.rank "uam_retx" orig)
          | None -> None
        in
        (* re-send the retained message: the inline snapshot, or the still-
           held transmit buffer — no fresh copy either way *)
        ignore
          (Unet.send t.u t.ep (Unet.Desc.tx ?ctx ~chan:p.p_chan u.u_resend)))
      p.p_unacked;
    Profile.pop ~host:(phost t) ();
    p.p_last_progress <- Sim.now (Unet.sim t.u)
  end

(* Retransmission timeout with exponential backoff, capped at rto_max. *)
let cur_rto t (p : peer) =
  min (t.cfg.rto lsl min p.p_backoff 20) t.cfg.rto_max

(* The self-driving timer stops re-arming after this many consecutive
   unanswered timeouts: a peer that stopped participating (a finished
   program, not a lossy link) would otherwise keep the event queue
   non-empty forever and unbounded [Sim.run]s would never return. A
   later send or poll re-arms it. *)
let max_timeouts = 6

(* The timeout is driven by a scheduled Sim event, so a sender that
   queues messages and then stops polling still retransmits (the timer
   used to run only inside the recv polling loops, and a stalled sender
   never recovered). The timer fires as a bare Sim event, so the actual
   retransmission — which charges send-side CPU — runs in a freshly
   spawned process. *)
let rec arm_rto t (p : peer) =
  cancel_rto p;
  let sim = Unet.sim t.u in
  let at = max (p.p_last_progress + cur_rto t p) (Sim.now sim) in
  p.p_rto_timer <-
    Some (Sim.schedule_at ~label:"uam.rto" sim at (fun () -> on_rto t p))

and cancel_rto (p : peer) =
  match p.p_rto_timer with
  | Some h ->
      Sim.cancel h;
      p.p_rto_timer <- None
  | None -> ()

and on_rto t (p : peer) =
  p.p_rto_timer <- None;
  if not (Queue.is_empty p.p_unacked) then
    if Sim.now (Unet.sim t.u) - p.p_last_progress >= cur_rto t p then
      if p.p_backoff >= max_timeouts then begin
        if Recorder.armed () then
          Recorder.gave_up ~key:(flow_key ~src:t.rank ~dst:p.p_rank);
        Log.debug (fun m ->
            m "node %d: giving up timer-driven retransmission to node %d \
               after %d timeouts"
              t.rank p.p_rank p.p_backoff)
      end
      else begin
        p.p_backoff <- p.p_backoff + 1;
        ignore
          (Proc.spawn ~name:"uam_rto" (Unet.sim t.u) (fun () ->
               retransmit_unacked t p;
               arm_rto t p))
      end
    else
      (* a poller retransmitted or acks progressed since arming: wait out
         the remainder of the (possibly backed-off) timeout *)
      arm_rto t p

let apply_ack t (p : peer) ack =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt p.p_unacked with
    | Some u when seq_lt u.u_seq ack ->
        ignore (Queue.pop p.p_unacked);
        (match u.u_buffer with
        | Some buf -> Unet.Segment.Allocator.free t.alloc buf
        | None -> ());
        if u.u_type = Req then p.p_unacked_reqs <- p.p_unacked_reqs - 1;
        progressed := true
    | _ -> continue := false
  done;
  if !progressed then begin
    report_pending t p;
    p.p_last_progress <- Sim.now (Unet.sim t.u);
    p.p_backoff <- 0;
    (* keep the timer in step with the window: gone when empty, pushed
       out past the fresh progress otherwise *)
    if Queue.is_empty p.p_unacked then cancel_rto p else arm_rto t p
  end

let send_explicit_ack t (p : peer) =
  Host.Cpu.charge ~layer:"uam" (Unet.cpu t.u) t.cfg.op_ns;
  let b =
    encode ~ty:Ack ~handler:0 ~seq:0 ~ack:p.p_expected ~args:[||]
      ~payload:Buf.empty
  in
  let ctx = Some (Span.root ~host:t.rank "uam_ack") in
  ignore (unet_transmit ?ctx t p b);
  p.p_need_ack <- false

let send_seq ?parent t (p : peer) ~ty ~handler ~args ~payload =
  (* the span starts at the API call: everything up to the doorbell is
     the send-side CPU phase *)
  let ctx =
    let name =
      match ty with Req -> "uam_req" | Rep -> "uam_rep" | Ack -> "uam_ack"
    in
    Some
      (match parent with
      | Some pctx -> Span.child ~host:t.rank name pctx
      | None -> Span.root ~host:t.rank name)
  in
  Profile.push ~host:(phost t) "uam.send";
  Host.Cpu.charge ~layer:"uam" (Unet.cpu t.u) t.cfg.op_ns;
  if Buf.length payload > 0 then
    (* the copy from the source data structure into the transmit buffer *)
    Host.Cpu.charge_copy (Unet.cpu t.u) ~bytes:(Buf.length payload);
  let seq = p.p_next_seq in
  p.p_next_seq <- (p.p_next_seq + 1) land 0xffff;
  let b = encode ~ty ~handler ~seq ~ack:p.p_expected ~args ~payload in
  (* sending also acknowledges everything received so far *)
  p.p_need_ack <- false;
  if Queue.is_empty p.p_unacked then
    p.p_last_progress <- Sim.now (Unet.sim t.u);
  let resend, buffer = unet_transmit ?ctx t p b in
  Profile.pop ~host:(phost t) ();
  Queue.add
    { u_seq = seq; u_type = ty; u_resend = resend; u_buffer = buffer; u_ctx = ctx }
    p.p_unacked;
  report_pending t p;
  if p.p_rto_timer = None then arm_rto t p;
  if ty = Req then begin
    p.p_unacked_reqs <- p.p_unacked_reqs + 1;
    t.reqs_sent <- t.reqs_sent + 1;
    Metrics.Counter.inc m_reqs
  end
  else begin
    t.reps_sent <- t.reps_sent + 1;
    Metrics.Counter.inc m_reps
  end

let dispatch t ~src ?ctx d =
  Profile.push ~host:(phost t) "uam.dispatch";
  (* pop via protect: a raising handler must not leave the frame open *)
  Fun.protect
    ~finally:(fun () -> Profile.pop ~host:(phost t) ())
    (fun () ->
      Host.Cpu.charge ~layer:"uam" (Unet.cpu t.u) t.cfg.op_ns;
      if Buf.length d.d_payload > 0 then
        (* the copy from the receive buffer into the destination structure *)
        Host.Cpu.charge_copy (Unet.cpu t.u) ~bytes:(Buf.length d.d_payload);
      match t.handlers.(d.d_handler) with
      | None -> Fmt.failwith "Uam: no handler %d registered" d.d_handler
      | Some h ->
          (match d.d_type with
          | Req ->
              let tk =
                { tk_uam = t; tk_src = src; tk_replied = false; tk_ctx = ctx }
              in
              h t ~src (Some tk) ~args:d.d_args ~payload:d.d_payload
          | Rep -> h t ~src None ~args:d.d_args ~payload:d.d_payload
          | Ack -> ());
          (* the handler has returned: the message's journey ends here *)
          Span.mark ctx Span.Dispatched)

(* Identify the peer a received U-Net message came from via its channel. *)
let peer_of_chan t chan =
  let found = ref None in
  Array.iter
    (function
      | Some p when p.p_chan = chan -> found := Some p
      | _ -> ())
    t.peers;
  match !found with
  | Some p -> p
  | None -> Fmt.failwith "Uam: message on unknown channel %d" chan

let read_message t (d : Unet.Desc.rx) =
  match d.rx_payload with
  | Unet.Desc.Inline b -> b (* snapshot owned by the descriptor *)
  | Unet.Desc.Buffers bufs ->
      (* materialize before the buffers go back on the free queue — the
         handler (and anything it retains) must not see them refilled *)
      let out =
        Buf.copy ~layer:"uam_rx"
          (Buf.concat
             (List.map
                (fun (off, len) -> Unet.Segment.view t.ep.segment ~off ~len)
                bufs))
      in
      List.iter
        (fun (off, _len) ->
          match
            Unet.provide_free_buffer t.u t.ep ~off
              ~len:(Unet.Segment.Allocator.block_size t.alloc)
          with
          | Ok () -> ()
          | Error e -> Fmt.failwith "Uam: free-buffer return: %a" Unet.pp_error e)
        bufs;
      out

let process_one t (rx : Unet.Desc.rx) =
  let p = peer_of_chan t rx.src_chan in
  let d = decode (read_message t rx) in
  (* any arrival — data, duplicate, or bare ACK — proves the peer->us
     direction alive, which is what exonerates it from the stall watchdog *)
  if Recorder.armed () then
    Recorder.flow_delivered ~key:(flow_key ~src:p.p_rank ~dst:t.rank);
  apply_ack t p d.d_ack;
  match d.d_type with
  | Ack -> ()
  | Req | Rep ->
      if d.d_seq = p.p_expected then begin
        p.p_expected <- (p.p_expected + 1) land 0xffff;
        (* every sequenced message needs acknowledging: flag before the
           dispatch so anything the handler sends back to this peer (e.g.
           the reply) clears the flag by carrying the ack, and only
           otherwise does the trailing explicit ACK go out *)
        p.p_need_ack <- true;
        dispatch t ~src:p.p_rank ?ctx:rx.ctx d
      end
      else if seq_lt d.d_seq p.p_expected then begin
        (* duplicate after a retransmission: drop but re-acknowledge *)
        t.dups <- t.dups + 1;
        Metrics.Counter.inc m_dups;
        if Trace.enabled () then
          Trace.instant Trace.Am "am.dup" ~tid:t.rank
            ~args:[ ("peer", Trace.Int p.p_rank); ("seq", Trace.Int d.d_seq) ];
        p.p_need_ack <- true
      end
      else begin
        (* gap: go-back-N discards out-of-order arrivals; the sender's
           timeout recovers *)
        t.dups <- t.dups + 1;
        Metrics.Counter.inc m_dups;
        if Trace.enabled () then
          Trace.instant Trace.Am "am.gap" ~tid:t.rank
            ~args:[ ("peer", Trace.Int p.p_rank); ("seq", Trace.Int d.d_seq) ]
      end

let check_timers t =
  let now = Sim.now (Unet.sim t.u) in
  Array.iter
    (function
      | Some p
        when (not (Queue.is_empty p.p_unacked))
             && now - p.p_last_progress >= cur_rto t p ->
          p.p_backoff <- p.p_backoff + 1;
          retransmit_unacked t p;
          arm_rto t p
      | _ -> ())
    t.peers

let flush_acks t =
  Array.iter
    (function Some p when p.p_need_ack -> send_explicit_ack t p | _ -> ())
    t.peers

let drain t =
  let rec loop () =
    match Unet.poll t.u t.ep with
    | Some rx ->
        process_one t rx;
        loop ()
    | None -> ()
  in
  loop ()

let poll t =
  drain t;
  check_timers t;
  flush_acks t

(* One blocking progress step: wait for an arrival (or half an RTO, so the
   retransmission timer keeps running), then poll. *)
let poll_blocking_step t =
  match Unet.recv_timeout t.u t.ep ~timeout:(max 1 (t.cfg.rto / 2)) with
  | Some rx ->
      process_one t rx;
      drain t
  | None -> poll t

(* Pending explicit acks are flushed when we are about to *wait*, not on the
   fast path out of a satisfied poll: an ack owed after a reply usually
   piggybacks on the caller's next request instead. *)
let poll_until t pred =
  drain t;
  while not (pred ()) do
    check_timers t;
    flush_acks t;
    poll_blocking_step t
  done

let request t ~dst ~handler ?(args = [||]) ?(payload = Buf.empty) () =
  if handler < 0 || handler > 255 then invalid_arg "Uam.request: bad handler";
  if Buf.length payload > t.cfg.chunk_data then
    invalid_arg "Uam.request: payload exceeds the transfer-buffer size";
  let p = peer t dst in
  (* window check: poll for acknowledgments while w requests are in flight *)
  poll_until t (fun () -> p.p_unacked_reqs < t.cfg.window);
  send_seq t p ~ty:Req ~handler ~args ~payload

let reply t tk ~handler ?(args = [||]) ?(payload = Buf.empty) () =
  if tk.tk_replied then invalid_arg "Uam.reply: token already replied";
  if not (tk.tk_uam == t) then invalid_arg "Uam.reply: token from another instance";
  if Buf.length payload > t.cfg.chunk_data then
    invalid_arg "Uam.reply: payload exceeds the transfer-buffer size";
  tk.tk_replied <- true;
  let p = peer t tk.tk_src in
  send_seq ?parent:tk.tk_ctx t p ~ty:Rep ~handler ~args ~payload

let barrier_ready t ~dst =
  let p = peer t dst in
  Queue.is_empty p.p_unacked

let flush t =
  poll_until t (fun () ->
      Array.for_all
        (function Some p -> Queue.is_empty p.p_unacked | None -> true)
        t.peers)
