(** U-Net Active Messages (§5): a user-level library over raw U-Net that
    implements the Generic Active Messages 1.1 interface — request/reply
    messages carrying a handler index, up to four words of arguments and an
    optional payload — with reliable delivery built from a fixed-size
    sliding window and go-back-N retransmission (§5.1.1).

    Requests and matching replies: a request handler may send one reply; a
    reply handler must not reply (live-lock prevention). Reception is by
    explicit polling (§5.1.2); all blocking operations poll internally. *)

type t

type token
(** Identifies a received request so the handler can reply to it. *)

type handler =
  t -> src:int -> token option -> args:int array -> payload:Engine.Buf.t -> unit
(** [token] is [Some] when dispatching a request, [None] for a reply. The
    payload slice owns its storage (an inline snapshot or a materialized
    multi-cell message), so handlers may retain it; copying it into its
    destination is a counted [Engine.Buf.copy_into]. *)

type config = {
  window : int;  (** w: max outstanding unacknowledged requests per peer *)
  rto : Engine.Sim.time;
      (** base retransmission timeout; doubles on each consecutive
          timeout without progress (timer-driven, so retransmission does
          not depend on the sender polling) *)
  rto_max : Engine.Sim.time;  (** exponential-backoff cap *)
  op_ns : int;  (** UAM library cost per send / per dispatch (≈1.5 µs) *)
  chunk_data : int;  (** transfer-buffer data size: 4160 bytes (§5.2) *)
}

val default_config : config

val max_args : int (* 4 *)

val max_payload : t -> int
(** Largest payload of a single request/reply = [chunk_data]. *)

val create :
  ?config:config -> Unet.t -> rank:int -> nodes:int -> t
(** Build a UAM instance on this host's U-Net, as cluster node [rank] of
    [nodes]. Allocates one endpoint sized for 4w buffers per peer. *)

val rank : t -> int
val nodes : t -> int
val config : t -> config
val unet : t -> Unet.t
val endpoint : t -> Unet.Endpoint.t

val connect : t -> t -> unit
(** Register the communication channel between two instances (both sides).
    Must be called once per pair before traffic. *)

val connect_all : t array -> unit
(** Fully connect a cluster. *)

val register_handler : t -> int -> handler -> unit
(** Handler indices 0-239 are for applications; 240+ are reserved for the
    bulk-transfer layer. *)

val request :
  t ->
  dst:int ->
  handler:int ->
  ?args:int array ->
  ?payload:Engine.Buf.t ->
  unit ->
  unit
(** Send a request. Blocks (polling, with retransmission on timeout) while
    the window to [dst] is full. The payload may be a zero-copy view of
    caller memory: it is staged (inline snapshot or transmit-buffer write,
    both counted) before the call returns, so the caller may reuse its
    buffer afterwards. *)

val reply :
  t ->
  token ->
  handler:int ->
  ?args:int array ->
  ?payload:Engine.Buf.t ->
  unit ->
  unit
(** Reply to a request. No window check (§5.1.2); at most one reply per
    token. Raises [Invalid_argument] on a second reply. Payload staging as
    in {!request}. *)

val poll : t -> unit
(** Drain the receive queue, dispatching handlers for every pending message,
    sending explicit acknowledgments where needed, and retransmitting
    timed-out messages. *)

val poll_until : t -> (unit -> bool) -> unit
(** Poll (blocking between arrivals) until the predicate holds. *)

val barrier_ready : t -> dst:int -> bool
(** True when no messages to [dst] are awaiting acknowledgment. *)

val flush : t -> unit
(** Poll until every message to every peer has been acknowledged. *)

(* statistics *)
val requests_sent : t -> int
val replies_sent : t -> int
val retransmissions : t -> int
val duplicates_dropped : t -> int
