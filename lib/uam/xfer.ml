let h_store = 240
let h_get_req = 241
let h_get_rep = 242

type pending_get = { g_dest : bytes; mutable g_remaining : int }

type t = {
  am : Am.t;
  regions : (int, bytes) Hashtbl.t;
  gets : (int, pending_get) Hashtbl.t;
  mutable next_get_id : int;
}

let uam t = t.am

let region t ~id =
  match Hashtbl.find_opt t.regions id with
  | Some r -> r
  | None -> Fmt.invalid_arg "Xfer: unknown region %d" id

let register_region t ~id data =
  if Hashtbl.mem t.regions id then
    Fmt.invalid_arg "Xfer.register_region: region %d exists" id;
  Hashtbl.add t.regions id data

(* arg packing: region and chunk length share a word (region < 64k,
   len <= chunk_data < 64k). *)
let pack_region_len ~region ~len = (region lsl 16) lor len
let unpack_region_len v = (v lsr 16, v land 0xffff)

let region_exn t id =
  match Hashtbl.find_opt t.regions id with
  | Some r -> r
  | None -> Fmt.failwith "Xfer: unknown region %d" id

let attach am =
  let t = { am; regions = Hashtbl.create 8; gets = Hashtbl.create 8; next_get_id = 0 } in
  Am.register_handler am h_store
    (fun _am ~src:_ _tk ~args ~payload ->
      let region, _len = unpack_region_len args.(0) in
      let offset = args.(1) in
      let r = region_exn t region in
      if offset < 0 || offset + Engine.Buf.length payload > Bytes.length r then
        Fmt.failwith "Xfer: store outside region %d" region
      else
        (* the one receive-side copy: message into the target region *)
        Engine.Buf.copy_into ~layer:"xfer" payload ~dst:r ~dst_pos:offset);
  Am.register_handler am h_get_req
    (fun am ~src:_ tk ~args ~payload:_ ->
      let region, len = unpack_region_len args.(0) in
      let offset = args.(1) in
      let get_id = args.(2) in
      let dest_pos = args.(3) in
      let r = region_exn t region in
      if offset < 0 || offset + len > Bytes.length r then
        Fmt.failwith "Xfer: get outside region %d" region;
      (* serve the get straight out of the region: a zero-copy view, staged
         once by the Am transport *)
      let data = Engine.Buf.of_bytes_sub r ~pos:offset ~len in
      match tk with
      | Some tk ->
          Am.reply am tk ~handler:h_get_rep
            ~args:[| get_id; dest_pos |] ~payload:data ()
      | None -> Fmt.failwith "Xfer: get request dispatched as reply")
  ;
  Am.register_handler am h_get_rep
    (fun _am ~src:_ _tk ~args ~payload ->
      let get_id = args.(0) in
      let dest_pos = args.(1) in
      match Hashtbl.find_opt t.gets get_id with
      | None -> Fmt.failwith "Xfer: reply for unknown get %d" get_id
      | Some g ->
          Engine.Buf.copy_into ~layer:"xfer" payload ~dst:g.g_dest
            ~dst_pos:dest_pos;
          g.g_remaining <- g.g_remaining - 1);
  t

let chunks t len =
  let chunk = Am.config t.am in
  let c = chunk.Am.chunk_data in
  let n = (len + c - 1) / c in
  List.init n (fun i -> (i * c, min c (len - (i * c))))

let store t ~dst ~region ~offset data =
  if region land 0xffff0000 <> 0 then invalid_arg "Xfer.store: region id too large";
  List.iter
    (fun (pos, len) ->
      (* each chunk is a zero-copy view of the source; Am stages it before
         the request returns *)
      Am.request t.am ~dst ~handler:h_store
        ~args:[| pack_region_len ~region ~len; offset + pos |]
        ~payload:(Engine.Buf.of_bytes_sub data ~pos ~len) ())
    (chunks t (Bytes.length data))

let quiet t = Am.flush t.am

let store_sync t ~dst ~region ~offset data =
  store t ~dst ~region ~offset data;
  quiet t

type handle = { h_id : int; h_get : pending_get }

let get_async t ~dst ~region ~offset ~len =
  let dest = Bytes.create len in
  let id = t.next_get_id in
  t.next_get_id <- t.next_get_id + 1;
  let parts = chunks t len in
  let g = { g_dest = dest; g_remaining = List.length parts } in
  Hashtbl.add t.gets id g;
  List.iter
    (fun (pos, clen) ->
      Am.request t.am ~dst ~handler:h_get_req
        ~args:[| pack_region_len ~region ~len:clen; offset + pos; id; pos |]
        ())
    parts;
  { h_id = id; h_get = g }

let await t h =
  Am.poll_until t.am (fun () -> h.h_get.g_remaining = 0);
  Hashtbl.remove t.gets h.h_id;
  h.h_get.g_dest

let get t ~dst ~region ~offset ~len =
  await t (get_async t ~dst ~region ~offset ~len)
