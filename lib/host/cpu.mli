(** Host processor time accounting. Processing overhead — the paper's central
    quantity — is modelled by blocking the calling process for the cost of
    the operation, scaled to this machine's clock. *)

type t

val create : ?host:int -> Engine.Sim.t -> Machine.t -> t
(** [host] identifies the simulated host this CPU belongs to (default 0);
    it keys the per-host stacks of [Engine.Profile]. *)

val machine : t -> Machine.t
val sim : t -> Engine.Sim.t
val host : t -> int

val charge : ?layer:string -> t -> Engine.Sim.time -> unit
(** Block the calling process for a reference-machine cost scaled to this
    CPU's clock, and account it as busy time. [layer] attributes the cost
    in the [host_cpu_busy_ns_total] registry family and names the [Cpu]
    trace span (default ["other"]). *)

val charge_raw : ?layer:string -> t -> Engine.Sim.time -> unit
(** {!charge} without the machine scaling: the cost is already in this
    machine's nanoseconds. Lets a caller coalesce [n] equal pre-scaled
    charges into one (scaling does not distribute over addition). *)

val charge_us : ?layer:string -> t -> float -> unit

val charge_cycles : ?layer:string -> t -> int -> unit
(** Cost expressed in this machine's own cycles (for real computation, e.g.
    a sort's local phase). *)

val copy_cost : t -> bytes:int -> Engine.Sim.time
(** Cost of a memory copy of [bytes] on this machine, without charging it. *)

val charge_copy : ?layer:string -> t -> bytes:int -> unit
(** Defaults to layer ["copy"]. *)

val busy_time : t -> Engine.Sim.time
(** Total time this CPU has spent in charged work. *)

val reset_busy : t -> unit
