open Engine

type t = {
  sim : Sim.t;
  machine : Machine.t;
  host : int;
  mutable busy : Sim.time;
}

let create ?(host = 0) sim machine = { sim; machine; host; busy = 0 }
let machine t = t.machine
let sim t = t.sim
let host t = t.host
let busy_time t = t.busy
let reset_busy t = t.busy <- 0

(* Per-layer busy-time accounting: the machine-readable version of the
   paper's Table 1 cost breakdown. Counters are cached per layer label. *)
let layer_counters : (string, Metrics.Counter.t) Hashtbl.t = Hashtbl.create 16

let layer_counter layer =
  match Hashtbl.find_opt layer_counters layer with
  | Some c -> c
  | None ->
      let c =
        Metrics.counter ~help:"virtual ns of CPU time charged, by layer"
          "host_cpu_busy_ns_total"
          [ ("layer", layer) ]
      in
      Hashtbl.add layer_counters layer c;
      c

let charge_raw ?(layer = "other") t ns =
  if ns < 0 then invalid_arg "Cpu.charge: negative cost";
  t.busy <- t.busy + ns;
  if ns > 0 then begin
    Metrics.Counter.add (layer_counter layer) ns;
    if Trace.enabled () then Trace.complete Trace.Cpu layer ~dur:ns;
    (* attribute at the charge site, before the sleep, so time spent by
       other processes while this one sleeps stays out of this frame *)
    if Profile.enabled () then
      Profile.charge ~host:t.host ~frames:[ layer ] ns
  end;
  Proc.sleep t.sim ~time:ns

let charge ?layer t ns = charge_raw ?layer t (Machine.scale t.machine ns)
let charge_us ?layer t us = charge ?layer t (Sim.of_us_f us)

let charge_cycles ?layer t cycles =
  charge_raw ?layer t
    (int_of_float (Float.round (float_of_int cycles *. 1_000. /. t.machine.Machine.cpu_mhz)))

let copy_cost t ~bytes =
  int_of_float
    (Float.round (float_of_int bytes *. t.machine.Machine.memcpy_ns_per_byte))

let charge_copy ?(layer = "copy") t ~bytes = charge_raw ~layer t (copy_cost t ~bytes)
