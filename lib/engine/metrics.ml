(* A process-global registry of labelled counters, gauges and virtual-time
   histograms.

   Instruments are deduplicated by (family name, label set): registering the
   same pair twice returns the same instrument, so components re-created
   across sweep points keep accumulating into one sample. [reset] zeroes
   every value but keeps the registrations alive — handles held by
   long-lived modules stay valid, and declared families keep appearing in
   dumps even at zero. Both properties are what makes the dumps
   deterministic for a fixed seed: the set of families is fixed by what the
   run touched, and the values by the simulation itself. *)

type labels = (string * string) list

let canon (labels : labels) =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

type kind = Counter_k | Gauge_k | Histogram_k | Sketch_k

let kind_name = function
  | Counter_k -> "counter"
  | Gauge_k -> "gauge"
  | Histogram_k -> "summary"
  | Sketch_k -> "summary"

module Counter = struct
  type t = { mutable v : int }

  let inc t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let value t = t.v
end

module Gauge = struct
  type t = { mutable g : float; mutable fn : (unit -> float) option }

  let set t v = t.g <- v
  let add t v = t.g <- t.g +. v
  let set_max t v = if v > t.g then t.g <- v
  let value t = match t.fn with Some f -> f () | None -> t.g
end

module Histogram = struct
  type t = { mutable s : Stats.Summary.t }

  let observe t v = Stats.Summary.add t.s v
  let summary t = t.s
  let count t = Stats.Summary.count t.s
end

(* A DDSketch-style log-bucketed quantile sketch: bucket i holds values in
   (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), so any
   reported quantile is within relative error [alpha] of the sample at
   that rank while memory stays O(occupied buckets) however many values
   are observed — unlike [Histogram], which retains every sample. *)
module Sketch = struct
  type t = {
    alpha : float;
    gamma : float;
    log_gamma : float;
    buckets : (int, int ref) Hashtbl.t;
    mutable zero : int; (* values <= 0 collapse into one bucket *)
    mutable n : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create ?(alpha = 0.01) () =
    if alpha <= 0. || alpha >= 1. then invalid_arg "Sketch.create: alpha";
    let gamma = (1. +. alpha) /. (1. -. alpha) in
    {
      alpha;
      gamma;
      log_gamma = Float.log gamma;
      buckets = Hashtbl.create 64;
      zero = 0;
      n = 0;
      sum = 0.;
      mn = infinity;
      mx = neg_infinity;
    }

  let clear t =
    Hashtbl.reset t.buckets;
    t.zero <- 0;
    t.n <- 0;
    t.sum <- 0.;
    t.mn <- infinity;
    t.mx <- neg_infinity

  let bucket_index t v = int_of_float (Float.ceil (Float.log v /. t.log_gamma))

  let observe t v =
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v;
    if v <= 0. then t.zero <- t.zero + 1
    else
      let i = bucket_index t v in
      match Hashtbl.find_opt t.buckets i with
      | Some r -> incr r
      | None -> Hashtbl.add t.buckets i (ref 1)

  let count t = t.n
  let total t = t.sum
  let max t = t.mx
  let alpha t = t.alpha

  (* Nearest-rank quantile over the buckets in index order; the value
     reported for bucket i is the bucket midpoint 2*gamma^i/(gamma+1),
     within [alpha] of every value the bucket holds. *)
  let quantile t q =
    if t.n = 0 then invalid_arg "Sketch.quantile: empty";
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (q *. float_of_int (t.n - 1)) in
    if rank < t.zero then 0.
    else begin
      let ids =
        List.sort compare
          (Hashtbl.fold (fun i _ acc -> i :: acc) t.buckets [])
      in
      let acc = ref t.zero and out = ref t.mx in
      (try
         List.iter
           (fun i ->
             acc := !acc + !(Hashtbl.find t.buckets i);
             if !acc > rank then begin
               out := 2. *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.);
               raise Exit
             end)
           ids
       with Exit -> ());
      !out
    end
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_hist of Histogram.t
  | I_sketch of Sketch.t

type family = {
  f_name : string;
  f_kind : kind;
  f_help : string;
  mutable f_samples : (labels * instrument) list; (* insertion order *)
}

let registry : (string, family) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref [] (* registration order, for stable dumps *)

let family ~kind ~help name =
  match Hashtbl.find_opt registry name with
  | Some f ->
      if f.f_kind <> kind then
        Fmt.invalid_arg "Metrics: %s already registered as a %s" name
          (kind_name f.f_kind);
      f
  | None ->
      let f = { f_name = name; f_kind = kind; f_help = help; f_samples = [] } in
      Hashtbl.replace registry name f;
      order := name :: !order;
      f

let sample f labels mk =
  let labels = canon labels in
  match List.assoc_opt labels f.f_samples with
  | Some i -> i
  | None ->
      let i = mk () in
      f.f_samples <- f.f_samples @ [ (labels, i) ];
      i

let counter ?(help = "") name labels =
  let f = family ~kind:Counter_k ~help name in
  match sample f labels (fun () -> I_counter { Counter.v = 0 }) with
  | I_counter c -> c
  | _ -> assert false

let gauge ?(help = "") name labels =
  let f = family ~kind:Gauge_k ~help name in
  match sample f labels (fun () -> I_gauge { Gauge.g = 0.; fn = None }) with
  | I_gauge g -> g
  | _ -> assert false

(* Callback gauges are read at dump time; re-registration replaces the
   callback so a fresh component instance (same identity, new run) wins.
   Observers (the Timeseries bridge) see every registration too, so one
   gauge_fn call feeds both the dump-time gauge and the sampler. *)
let gauge_fn_observers :
    (string -> labels -> (unit -> float) -> unit) list ref =
  ref []

let on_gauge_fn obs =
  gauge_fn_observers := obs :: !gauge_fn_observers;
  (* replay registrations made before the observer arrived *)
  List.iter
    (fun f ->
      if f.f_kind = Gauge_k then
        List.iter
          (fun (labels, i) ->
            match i with
            | I_gauge { Gauge.fn = Some fn; _ } -> obs f.f_name labels fn
            | _ -> ())
          f.f_samples)
    (List.rev_map (Hashtbl.find registry) !order)

let gauge_fn ?help name labels f =
  let g = gauge ?help name labels in
  g.Gauge.fn <- Some f;
  List.iter (fun obs -> obs name (canon labels) f) !gauge_fn_observers

let histogram ?(help = "") name labels =
  let f = family ~kind:Histogram_k ~help name in
  match
    sample f labels (fun () -> I_hist { Histogram.s = Stats.Summary.create () })
  with
  | I_hist h -> h
  | _ -> assert false

let sketch ?(help = "") ?alpha name labels =
  let f = family ~kind:Sketch_k ~help name in
  match sample f labels (fun () -> I_sketch (Sketch.create ?alpha ())) with
  | I_sketch s -> s
  | _ -> assert false

(* Deferred-accounting flushes: layers that fold state into metrics lazily
   (e.g. a link folding an analytic cell-train schedule into its high-water
   gauge) register a flush so every read of the registry sees up-to-date
   values. Registrations are per-experiment: [reset] clears them along with
   the sample values, and the next experiment's components re-register. *)
let flushers : (unit -> unit) list ref = ref []
let register_flush f = flushers := f :: !flushers
let flush () = List.iter (fun f -> f ()) !flushers

let reset () =
  flushers := [];
  Hashtbl.iter
    (fun _ f ->
      List.iter
        (fun (_, i) ->
          match i with
          | I_counter c -> c.Counter.v <- 0
          | I_gauge g -> g.Gauge.g <- 0.
          | I_hist h -> h.Histogram.s <- Stats.Summary.create ()
          | I_sketch s -> Sketch.clear s)
        f.f_samples)
    registry

let counter_value name labels =
  flush ();
  match Hashtbl.find_opt registry name with
  | None -> None
  | Some f -> (
      match List.assoc_opt (canon labels) f.f_samples with
      | Some (I_counter c) -> Some (Counter.value c)
      | _ -> None)

let families_sorted () =
  List.sort
    (fun a b -> String.compare a.f_name b.f_name)
    (List.rev_map (Hashtbl.find registry) !order)

(* --- Prometheus text exposition ------------------------------------- *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let pp_labelset fmt = function
  | [] -> ()
  | labels ->
      Format.fprintf fmt "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
              labels))

let pp_float fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf fmt "%.0f" v
  else Format.fprintf fmt "%.6g" v

let quantiles = [ 0.5; 0.9; 0.99 ]
let sketch_quantiles = [ 0.5; 0.99; 0.999 ]

let pp_prometheus fmt () =
  flush ();
  List.iter
    (fun f ->
      if f.f_help <> "" then
        Format.fprintf fmt "# HELP %s %s@\n" f.f_name f.f_help;
      Format.fprintf fmt "# TYPE %s %s@\n" f.f_name (kind_name f.f_kind);
      List.iter
        (fun (labels, i) ->
          match i with
          | I_counter c ->
              Format.fprintf fmt "%s%a %d@\n" f.f_name pp_labelset labels
                (Counter.value c)
          | I_gauge g ->
              Format.fprintf fmt "%s%a %a@\n" f.f_name pp_labelset labels
                pp_float (Gauge.value g)
          | I_hist h ->
              let s = Histogram.summary h in
              let n = Stats.Summary.count s in
              if n > 0 then
                List.iter
                  (fun q ->
                    Format.fprintf fmt "%s%a %a@\n" f.f_name pp_labelset
                      (canon
                         (("quantile", Printf.sprintf "%g" q) :: labels))
                      pp_float
                      (Stats.Summary.percentile s q))
                  quantiles;
              Format.fprintf fmt "%s_sum%a %a@\n" f.f_name pp_labelset labels
                pp_float
                (if n = 0 then 0. else Stats.Summary.total s);
              Format.fprintf fmt "%s_count%a %d@\n" f.f_name pp_labelset
                labels n
          | I_sketch s ->
              let n = Sketch.count s in
              if n > 0 then
                List.iter
                  (fun q ->
                    Format.fprintf fmt "%s%a %a@\n" f.f_name pp_labelset
                      (canon
                         (("quantile", Printf.sprintf "%g" q) :: labels))
                      pp_float (Sketch.quantile s q))
                  sketch_quantiles;
              Format.fprintf fmt "%s_sum%a %a@\n" f.f_name pp_labelset labels
                pp_float
                (if n = 0 then 0. else Sketch.total s);
              Format.fprintf fmt "%s_count%a %d@\n" f.f_name pp_labelset
                labels n)
        f.f_samples)
    (families_sorted ())

(* --- JSON dump ------------------------------------------------------- *)

(* JSON escaping is stricter than the Prometheus label rules: every
   control character must be encoded, not just newline. Label values now
   carry flow identities ("src:dst:vci,vci,...") and other free-form
   strings, so the dump must stay parseable whatever bytes they hold. *)
let json_string v =
  let b = Buffer.create (String.length v + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    v;
  Buffer.add_char b '"';
  Buffer.contents b

let pp_json fmt () =
  flush ();
  Format.fprintf fmt "{@\n  \"families\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf fmt ",";
      Format.fprintf fmt "@\n    {\"name\": %s, \"kind\": %s, \"help\": %s, \"samples\": ["
        (json_string f.f_name)
        (json_string (kind_name f.f_kind))
        (json_string f.f_help);
      List.iteri
        (fun j (labels, inst) ->
          if j > 0 then Format.fprintf fmt ",";
          Format.fprintf fmt "@\n      {\"labels\": {%s}, "
            (String.concat ", "
               (List.map
                  (fun (k, v) -> json_string k ^ ": " ^ json_string v)
                  labels));
          (match inst with
          | I_counter c -> Format.fprintf fmt "\"value\": %d}" (Counter.value c)
          | I_gauge g ->
              Format.fprintf fmt "\"value\": %a}" pp_float (Gauge.value g)
          | I_hist h ->
              let s = Histogram.summary h in
              let n = Stats.Summary.count s in
              if n = 0 then Format.fprintf fmt "\"count\": 0, \"sum\": 0}"
              else
                Format.fprintf fmt
                  "\"count\": %d, \"sum\": %a, \"mean\": %a, \"p50\": %a, \
                   \"p90\": %a, \"p99\": %a, \"max\": %a}"
                  n pp_float (Stats.Summary.total s) pp_float
                  (Stats.Summary.mean s) pp_float
                  (Stats.Summary.percentile s 0.5)
                  pp_float
                  (Stats.Summary.percentile s 0.9)
                  pp_float
                  (Stats.Summary.percentile s 0.99)
                  pp_float (Stats.Summary.max s)
          | I_sketch s ->
              let n = Sketch.count s in
              if n = 0 then Format.fprintf fmt "\"count\": 0, \"sum\": 0}"
              else
                Format.fprintf fmt
                  "\"count\": %d, \"sum\": %a, \"p50\": %a, \"p99\": %a, \
                   \"p999\": %a, \"max\": %a}"
                  n pp_float (Sketch.total s) pp_float
                  (Sketch.quantile s 0.5) pp_float (Sketch.quantile s 0.99)
                  pp_float
                  (Sketch.quantile s 0.999)
                  pp_float (Sketch.max s)))
        f.f_samples;
      Format.fprintf fmt "@\n    ]}")
    (families_sorted ());
  Format.fprintf fmt "@\n  ]@\n}@\n"

let to_prometheus_string () = Format.asprintf "%a" pp_prometheus ()
let to_json_string () = Format.asprintf "%a" pp_json ()

(* [write_file] picks the format from the extension: [.json] gets the JSON
   dump, anything else the Prometheus text exposition. *)
let write_file path =
  let oc = open_out path in
  output_string oc
    (if Filename.check_suffix path ".json" then to_json_string ()
     else to_prometheus_string ());
  close_out oc
