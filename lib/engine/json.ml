(* A minimal JSON reader/writer.

   The repository deliberately has no JSON dependency; this covers the
   subset our own tools emit (bench snapshots, metric dumps): objects,
   arrays, strings with the common escapes, numbers, booleans, null.
   Numbers are held as floats — snapshot values are measurements, not
   identifiers, so 53-bit precision is ample. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing -------------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let num_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (num_repr f)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* --- parsing --------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let lit st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
            if st.pos + 4 >= String.length st.src then
              fail st "truncated \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* good enough for our own output: BMP only, UTF-8 encode *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            st.pos <- st.pos + 4
        | _ -> fail st "bad escape");
        st.pos <- st.pos + 1;
        go ()
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc

(* --- accessors ------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function Str s -> Some s | _ -> None
