(* A periodic virtual-time sampler over registered probes.

   Components register probes (a name, labels, and a read callback) at
   construction time, exactly like metrics; sampling is driven by the
   simulator's event loop. [Sim.step] calls [sample] at most once per
   fired event, and only once the clock has passed the next sample point,
   so the cadence is [interval] during active phases and degrades to
   one-sample-per-event when events are sparser than the interval (a
   quiescent simulation produces no new information anyway, and catching
   up across a long idle gap would cost time proportional to the gap).

   Probes are generation-scoped: [attach_clock] — called by every
   [Sim.create] — bumps a generation counter, and only probes (re-)
   registered under the current generation are sampled. Components
   re-created for each sweep point re-register (registration replaces the
   callback, keeping one series per identity, mirroring the metrics
   registry), while probes left over from a previous simulator instance
   stop being read rather than reporting stale state.

   Each series is a bounded ring (oldest points dropped, drops counted);
   each sample also folds into a [<name>_hw] metrics gauge via set_max, so
   high-water marks survive into the ordinary metrics dump. *)

type labels = (string * string) list

let canon (labels : labels) =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

type kind = Gauge | Rate | Utilization

let kind_name = function
  | Gauge -> "gauge"
  | Rate -> "rate"
  | Utilization -> "utilization"

type probe = {
  p_name : string;
  p_labels : labels;
  p_kind : kind;
  (* the callback receives the sample's cumulative virtual time: probes
     over analytic train-path state (committed plan records describe the
     future) evaluate *at* that instant; plain probes ignore it *)
  mutable p_fn : int -> float;
  mutable p_gen : int;
  (* previous (time, raw value) for Rate/Utilization differencing *)
  mutable p_prev : (int * float) option;
  mutable p_hw : Metrics.Gauge.t option;
  mutable p_drop_ctr : Metrics.Counter.t option;
  p_points : (int * float) array; (* ring *)
  mutable p_len : int;
  mutable p_head : int; (* next write position *)
  mutable p_dropped : int;
}

let capacity = 8192
let probes : (string * labels, probe) Hashtbl.t = Hashtbl.create 32
let order : (string * labels) list ref = ref [] (* reversed *)
let enabled_flag = ref false
let generation = ref 0
let interval_ns = ref 10_000 (* 10 µs of simulated time *)
let next_sample = ref 0
let granularity_ref = ref Granularity.Per_train

let enabled () = !enabled_flag
let interval () = !interval_ns
let granularity () = !granularity_ref
let set_granularity g = granularity_ref := g

let set_interval ns =
  if ns <= 0 then invalid_arg "Timeseries.set_interval";
  interval_ns := ns

let attach_clock _f =
  (* a new simulator instance: scope out probes owned by the previous one *)
  incr generation

let register_at ?(kind = Gauge) name labels fn =
  let labels = canon labels in
  let key = (name, labels) in
  match Hashtbl.find_opt probes key with
  | Some p ->
      p.p_fn <- fn;
      p.p_gen <- !generation;
      p.p_prev <- None
  | None ->
      let p =
        {
          p_name = name;
          p_labels = labels;
          p_kind = kind;
          p_fn = fn;
          p_gen = !generation;
          p_prev = None;
          p_hw = None;
          p_drop_ctr = None;
          p_points = Array.make capacity (0, 0.);
          p_len = 0;
          p_head = 0;
          p_dropped = 0;
        }
      in
      Hashtbl.replace probes key p;
      order := key :: !order

let register ?kind name labels fn =
  register_at ?kind name labels (fun _ -> fn ())

(* Ring overwrites are silent data loss (mirrors Trace.note_drop);
   registered lazily so runs that never overflow keep dumps unchanged. *)
let note_point_drop p =
  let c =
    match p.p_drop_ctr with
    | Some c -> c
    | None ->
        let c =
          Metrics.counter
            ~help:"Timeseries points lost to ring-buffer overwrite"
            "timeseries_points_dropped_total"
            (("series", p.p_name) :: p.p_labels)
        in
        p.p_drop_ctr <- Some c;
        c
  in
  Metrics.Counter.inc c

let record p now v =
  p.p_points.(p.p_head) <- (now, v);
  p.p_head <- (p.p_head + 1) mod capacity;
  if p.p_len < capacity then p.p_len <- p.p_len + 1
  else begin
    p.p_dropped <- p.p_dropped + 1;
    note_point_drop p
  end;
  let hw =
    match p.p_hw with
    | Some g -> g
    | None ->
        let g =
          Metrics.gauge
            ~help:"high-water mark folded back from a timeseries probe"
            (p.p_name ^ "_hw") p.p_labels
        in
        p.p_hw <- Some g;
        g
  in
  Metrics.Gauge.set_max hw v

let sample_probe now p =
  let raw = p.p_fn now in
  match p.p_kind with
  | Gauge -> record p now raw
  | Rate | Utilization -> (
      match p.p_prev with
      | None -> p.p_prev <- Some (now, raw)
      | Some (t0, v0) ->
          if now > t0 then begin
            let dv = raw -. v0 and dt = float_of_int (now - t0) in
            let v =
              match p.p_kind with
              | Rate -> dv /. dt *. 1e9 (* per simulated second *)
              | Utilization -> Float.min 1. (Float.max 0. (dv /. dt))
              | Gauge -> assert false
            in
            p.p_prev <- Some (now, raw);
            record p now v
          end)

(* Called from Sim.step with the cumulative virtual time of the event
   about to fire — before the event's own state mutations, so present
   state is exact at the most recent interval boundary. Each sample
   lands on that boundary's timestamp (a multiple of [interval]) with
   [p_fn] evaluated *at* the boundary, so analytic train-path probes
   report the planned state at that instant rather than at the event
   that happened to trigger the sample. At most one boundary is sampled
   per event: intermediate boundaries inside a long gap are skipped —
   for plain probes they carry no information (state only mutates at
   events), and walking them would cost time proportional to idle
   virtual time (timer tails span tens of virtual seconds). The cadence
   is therefore [interval] while events are denser than the interval and
   degrades to per-event when they are sparser. *)
let on_event now =
  if now >= !next_sample then begin
    let interval = !interval_ns in
    let b = now - (now mod interval) in
    List.iter
      (fun key ->
        let p = Hashtbl.find probes key in
        if p.p_gen = !generation then sample_probe b p)
      (List.rev !order);
    next_sample := b + interval
  end

(* gauge_fn bridge: every Metrics.gauge_fn registration also becomes a
   Gauge probe, so one registration feeds both the dump-time gauge and
   the sampler. Installed once, on first start. *)
let bridged = ref false

let clear () =
  Hashtbl.reset probes;
  order := [];
  next_sample := 0

let start () =
  if not !bridged then begin
    bridged := true;
    Metrics.on_gauge_fn (fun name labels fn -> register name labels fn)
  end;
  enabled_flag := true

let stop () = enabled_flag := false

(* --- accessors and dumps --------------------------------------------- *)

type series = {
  s_name : string;
  s_labels : labels;
  s_kind : kind;
  s_dropped : int;
  s_points : (int * float) list; (* oldest first *)
}

let points p =
  let out = ref [] in
  for i = p.p_len - 1 downto 0 do
    let idx = (p.p_head - 1 - i + (2 * capacity)) mod capacity in
    out := p.p_points.(idx) :: !out
  done;
  List.rev !out

let series () =
  List.rev_map
    (fun key ->
      let p = Hashtbl.find probes key in
      {
        s_name = p.p_name;
        s_labels = p.p_labels;
        s_kind = p.p_kind;
        s_dropped = p.p_dropped;
        s_points = points p;
      })
    !order

let to_json () =
  let series_json s =
    Json.Obj
      [
        ("name", Json.Str s.s_name);
        ( "labels",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.s_labels) );
        ("kind", Json.Str (kind_name s.s_kind));
        ("dropped", Json.Num (float_of_int s.s_dropped));
        ( "points",
          Json.List
            (List.map
               (fun (t, v) ->
                 Json.List [ Json.Num (float_of_int t); Json.Num v ])
               s.s_points) );
      ]
  in
  Json.Obj
    [
      ("interval_ns", Json.Num (float_of_int !interval_ns));
      ("series", Json.List (List.map series_json (series ())));
    ]

let write_json path = Json.write_file path (to_json ())

(* RFC 4180 quoting: a field holding a comma, quote, or newline is wrapped
   in quotes with inner quotes doubled. Label values need this — flow
   labels are "src:dst:vci,vci,..." and would otherwise shift every column
   after them. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_csv path =
  let oc = open_out path in
  output_string oc "series,labels,t_ns,value\n";
  List.iter
    (fun s ->
      let labels =
        String.concat ";"
          (List.map (fun (k, v) -> k ^ "=" ^ v) s.s_labels)
      in
      List.iter
        (fun (t, v) ->
          Printf.fprintf oc "%s,%s,%d,%g\n" (csv_field s.s_name)
            (csv_field labels) t v)
        s.s_points)
    (series ());
  close_out oc
