(** Immutable-by-default slice/iovec views over byte stores.

    A [Buf.t] is an ordered list of spans, each a view [(store, off, len)]
    into a backing [bytes]. {!sub}, {!concat} and {!iter_spans} never copy:
    they only rearrange views. The only way data moves is through the
    explicit {!copy_into} / {!to_bytes} / {!copy} operations, each of which
    is counted in {!Metrics} under the caller-supplied [layer] label
    ([buf_copies_total{layer}] and [buf_copy_bytes_total{layer}]), so every
    data-path copy in the simulator is visible in the metrics dump.

    Counting is deliberately separate from virtual-time cost: the calibrated
    per-cell and per-operation costs of the NI models already include the
    time the real hardware spends moving bytes (see DESIGN.md, "Buffer
    ownership and copy accounting"). Layers that charge copy time explicitly
    keep doing so via [Host.Cpu.charge_copy] next to the counted copy.

    Views alias their backing store: a writer mutating the store is visible
    through every view. Ownership rules — who may retain a view and when a
    snapshot ({!copy}) is mandatory — are documented in DESIGN.md. *)

type t

val empty : t

val of_bytes : bytes -> t
(** View over the whole of [b]; no copy. The caller must not mutate [b]
    while the view is live unless it owns every view. *)

val of_bytes_sub : bytes -> pos:int -> len:int -> t
(** View over [b.[pos .. pos+len-1]]; no copy. *)

val of_string : string -> t
(** Copies the (immutable) string once into a fresh store; uncounted, as
    strings cannot be aliased mutably. Intended for test fixtures. *)

val alloc : int -> t
(** A fresh zero-filled store of the given length, viewed whole. *)

val length : t -> int
val is_empty : t -> bool

val sub : t -> pos:int -> len:int -> t
(** Zero-copy sub-view. Raises [Invalid_argument] when out of range. *)

val concat : t list -> t
(** Zero-copy concatenation (adjacent views over the same store fuse). *)

val append : t -> t -> t

val spans : t -> (bytes * int * int) list
(** The underlying spans, in order; no copy. *)

val iter_spans : t -> (bytes -> pos:int -> len:int -> unit) -> unit
val fold_spans : t -> init:'a -> f:('a -> bytes -> pos:int -> len:int -> 'a) -> 'a

val get_uint8 : t -> int -> int
val get_uint16_be : t -> int -> int
val get_uint16_le : t -> int -> int
val get_uint32_be : t -> int -> int32
val get_uint32_le : t -> int -> int32

val equal : t -> t -> bool
(** Content equality, span-shape independent. *)

val equal_bytes : t -> bytes -> bool

val pp : Format.formatter -> t -> unit
(** Shape summary (length and span count), not contents. *)

(** {1 Counted copies}

    Each call below counts one copy of [length t] bytes against
    [buf_copies_total{layer}] / [buf_copy_bytes_total{layer}]. *)

val copy_into : layer:string -> t -> dst:bytes -> dst_pos:int -> unit
(** Materialize the view into [dst] starting at [dst_pos]. *)

val to_bytes : layer:string -> t -> bytes
(** Materialize into a fresh contiguous [bytes]. *)

val copy : layer:string -> t -> t
(** Snapshot: a fresh contiguous store holding the current contents. The
    result no longer aliases the source stores. *)

val blit_bytes :
  layer:string -> src:bytes -> src_pos:int -> dst:bytes -> dst_pos:int ->
  len:int -> unit
(** Counted [Bytes.blit] for the few places that copy between raw stores
    (e.g. staging into a communication segment). *)

val copies_total : unit -> int
(** Sum of [buf_copies_total] across all layers (for tests and checks). *)

val copy_bytes_total : unit -> int
(** Sum of [buf_copy_bytes_total] across all layers. *)
