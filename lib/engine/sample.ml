(* Deterministic 1-in-N PDU sampling for deep inspection on the fast path.

   The NI models consult [next_pdu] once per transmit descriptor, at the
   same site in both the train and per-cell code paths and *before*
   deciding which path the PDU takes — so the PDU index sequence, and
   therefore the sampled set, is identical across [--per-cell] and
   across repeated runs with the same seed. A sampled PDU is routed
   through the per-cell path, where every observer (span marks, trace
   events, pcap capture) sees it in full detail; unsampled PDUs ride the
   cell train.

   The membership test is a pure hash of (seed, index) — splitmix64's
   finalizer — rather than a stateful PRNG, so tests can re-derive the
   set without replaying the run. *)

let n_ref = ref 0 (* 0 = sampling off *)
let seed_ref = ref 0x5eed
let counter = ref 0 (* index of the next PDU to be offered *)
let offered_count = ref 0
let sampled_count = ref 0

let active () = !n_ref > 0
let n () = !n_ref
let seed () = !seed_ref
let offered () = !offered_count
let sampled () = !sampled_count

let reset () =
  counter := 0;
  offered_count := 0;
  sampled_count := 0

let configure ~n ~seed =
  if n < 0 then invalid_arg "Sample.configure: n must be >= 0";
  n_ref := n;
  seed_ref := seed;
  reset ()

(* splitmix64 finalizer over seed*phi + index: every bit of the input
   avalanches, so residues mod n are uniform enough for 1-in-N picks. *)
let decide ~seed ~n index =
  if n <= 0 then false
  else if n = 1 then true
  else begin
    let open Int64 in
    let z =
      add (of_int index) (mul (of_int seed) 0x9E3779B97F4A7C15L)
    in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    rem (logand z max_int) (of_int n) = 0L
  end

(* Lazy counters: a run that never samples keeps its dumps unchanged. *)
let ctrs = ref None

let note hit =
  let offered_c, sampled_c =
    match !ctrs with
    | Some pair -> pair
    | None ->
        let pair =
          ( Metrics.counter ~help:"PDUs offered to the 1-in-N sampler"
              "sample_pdus_offered_total" [],
            Metrics.counter ~help:"PDUs selected for per-cell deep inspection"
              "sample_pdus_selected_total" [] )
        in
        ctrs := Some pair;
        pair
  in
  Metrics.Counter.inc offered_c;
  if hit then Metrics.Counter.inc sampled_c

let next_pdu () =
  if !n_ref = 0 then false
  else begin
    let i = !counter in
    incr counter;
    incr offered_count;
    let hit = decide ~seed:!seed_ref ~n:!n_ref i in
    if hit then incr sampled_count;
    note hit;
    hit
  end
