(** Synchronization primitives for simulated processes, plus an event-driven
    FIFO server used to model serially-shared hardware (an i960 NI processor,
    a DMA engine, a CPU). *)

(** Unbounded FIFO mailbox. [recv] blocks the calling process until a value
    is available. *)
module Mailbox : sig
  type 'a t

  val create : Sim.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  val try_recv : 'a t -> 'a option
  val length : 'a t -> int

  val recv_timeout : 'a t -> timeout:Sim.time -> 'a option
  (** Like {!recv} but gives up after [timeout] ns, returning [None]. *)
end

(** Counting semaphore. *)
module Semaphore : sig
  type t

  val create : Sim.t -> int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val available : t -> int
end

(** Broadcast condition: processes wait; a broadcast wakes all current
    waiters. Waiters must re-check their predicate in a loop. *)
module Condition : sig
  type t

  val create : Sim.t -> t
  val wait : t -> unit
  val broadcast : t -> unit

  val wait_for : t -> (unit -> bool) -> unit
  (** [wait_for c pred] returns immediately if [pred ()]; otherwise blocks on
      [c], re-checking [pred] after each broadcast. *)

  val waiters : t -> int
end

(** An event-driven serial server: jobs are executed one at a time in FIFO
    order, each occupying the server for its service cost, then invoking its
    completion callback. This models hardware that processes one unit of work
    at a time without needing a coroutine. *)
module Server : sig
  type t

  val create : Sim.t -> t

  val submit : t -> cost:Sim.time -> (unit -> unit) -> unit
  (** Enqueue a job taking [cost] ns of server time; [k] runs at completion.
      If a batch (below) is active it is dissolved first, so plain jobs
      always observe and produce exactly the per-cell schedule. *)

  val busy : t -> bool
  val queue_length : t -> int

  val busy_time : t -> Sim.time
  (** Total time the server has spent serving jobs (utilization numerator). *)

  (** {2 Train batches (DESIGN.md §14)}

      A batch replaces a run of per-cell jobs with one precomputed schedule
      and a single completion event. Batches exist only while nothing else
      touches the server: any plain {!submit} splits the batch back into
      real jobs, events and exact cost accounting at the interference
      instant, so observable state is byte-identical with the per-cell
      path. *)

  val idle : t -> bool
  (** No job running, empty queue, no batch — the precondition for starting
      a tx chain. *)

  (** Where a split tx chain was interrupted; the payload is the absolute
      instant the NI's re-entry continuation anchors to. *)
  type chain_phase =
    | Chain_first of Sim.time
        (** fixed-cost setup job in flight, completes at the payload *)
    | Chain_unit of Sim.time
        (** per-cell unit job in flight, completes at the payload *)
    | Chain_gap of Sim.time
        (** between refused link attempts; the pending cell's first attempt
            was at the payload, retries every caller-known step *)

  val begin_chain :
    t ->
    ?done_sched:Sim.time ->
    first_end:Sim.time ->
    unit_cost:Sim.time ->
    accepts:Sim.time array ->
    on_done:(unit -> unit) ->
    on_split:(accepted:int -> phase:chain_phase -> unit) ->
    unit ->
    unit
  (** Start a tx chain on an {!idle} server: a setup job ending at
      [first_end], then one [unit_cost] job per cell whose link acceptance
      lands at [accepts.(i)]. [on_done] fires at [accepts.(n-1)] with the
      server released; [on_split] re-enters the per-cell path — it must
      truncate the train to [accepted] cells and resume from [phase],
      calling {!resume_inflight} for the in-flight phases. Costs are
      charged eagerly and refunded on split for exactly the units the
      per-cell path will re-charge. [done_sched] is the instant the
      per-cell path would have created the event performing the final
      acceptance; the completion is trampolined through an event created
      there so same-instant ties against it resolve as on the per-cell
      path. *)

  type paced

  val submit_paced :
    t ->
    cost:Sim.time ->
    arrivals:Sim.time array ->
    actions:(unit -> unit) array ->
    paced option
  (** Model one [cost] job per cell, the i-th arriving at [arrivals.(i)]
      (nondecreasing, first >= now) and starting when both arrived and the
      previous unit is done; all [actions] run in order at the last unit's
      completion with the server held busy. Only the final action may
      submit further work. Returns [None] (caller falls back to per-cell)
      unless the queue is empty and no batch is active; the server may
      still be finishing one plain job, which the schedule chains off. *)

  val truncate_paced : t -> paced -> keep:int -> unit
  (** The modeled train was truncated upstream: keep only the first [keep]
      units (all strictly future) and re-arm completion. No-op if the batch
      already dissolved. *)

  val resume_inflight : t -> until:Sim.time -> k:(unit -> unit) -> unit
  (** Re-arm a real in-flight job completing at [until] whose cost a split
      batch already charged; [k] runs at completion, then the queue drains
      normally. *)

  val interfere : t -> unit
  (** Dissolve any active batch back into the per-cell path right now,
      without submitting anything. Links run this before threading a plain
      cell through planned state (the owner registered it via
      {!Atm.Link.set_interfere}). No-op when no batch is active. *)
end
