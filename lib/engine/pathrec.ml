(* Per-PDU path records (DESIGN.md §17).

   The store is two pools: [pending] holds provisional records ordered by
   settle instant (train synthesis runs at commit time, before the cells
   exist on the wire), [settled] is a bounded ring of irrevocable ones.
   Settling is what feeds the per-hop-position latency sketches, so a
   truncated train's discarded records never leave a trace — the same
   lazy-fold discipline the link and switch counters use. *)

type hop = {
  h_stage : int;
  h_in_port : int;
  h_out_port : int;
  h_queue : int;
  h_latency_ns : int;
}

type record = {
  r_src : int;
  r_dst : int;
  r_vci : int;
  r_seq : int;
  r_injected : Sim.time;
  r_delivered : Sim.time;
  r_hops : hop array;
}

let enabled_flag = ref false
let capacity = 65_536

(* provisional, most-recent-first; commit order is already settle order
   per flow, and [fold] filters by instant, so no sort is needed *)
let pending : (Sim.time * record) list ref = ref []
let settled : record list ref = ref [] (* most-recent-first *)
let n_settled = ref 0
let n_dropped = ref 0

(* per-hop-position latency sketches, registered on first use so runs
   without path records keep their metric dumps unchanged *)
let hop_sketches : (int, Metrics.Sketch.t) Hashtbl.t = Hashtbl.create 8

let hop_sketch pos =
  match Hashtbl.find_opt hop_sketches pos with
  | Some s -> s
  | None ->
      let s =
        Metrics.sketch
          ~help:"per-PDU latency across one switch stage, by hop position"
          "atm_path_hop_latency_ns"
          [ ("hop", string_of_int pos) ]
      in
      Hashtbl.add hop_sketches pos s;
      s

let start () = enabled_flag := true
let stop () = enabled_flag := false
let enabled () = !enabled_flag

let clear () =
  pending := [];
  settled := [];
  n_settled := 0;
  n_dropped := 0;
  Hashtbl.iter (fun _ s -> Metrics.Sketch.clear s) hop_sketches

let add ~settle r =
  pending := (settle, r) :: !pending;
  r

let discard r = pending := List.filter (fun (_, r') -> r' != r) !pending

let settle_one r =
  Array.iteri
    (fun pos h ->
      Metrics.Sketch.observe (hop_sketch pos) (float_of_int h.h_latency_ns))
    r.r_hops;
  settled := r :: !settled;
  incr n_settled;
  if !n_settled - !n_dropped > capacity then begin
    (* drop the oldest settled record; the ring keeps the recent past *)
    (match List.rev !settled with
    | _ :: rest -> settled := List.rev rest
    | [] -> ());
    incr n_dropped
  end

let fold ~now =
  if !pending <> [] then begin
    let ready, rest = List.partition (fun (s, _) -> s <= now) !pending in
    pending := rest;
    (* settle in commit order (ready is most-recent-first) *)
    List.iter (fun (_, r) -> settle_one r) (List.rev ready)
  end

let count () = !n_settled
let dropped () = !n_dropped

let records () =
  List.sort
    (fun a b ->
      match compare a.r_delivered b.r_delivered with
      | 0 -> (
          match compare a.r_src b.r_src with
          | 0 -> (
              match compare a.r_vci b.r_vci with
              | 0 -> compare a.r_seq b.r_seq
              | c -> c)
          | c -> c)
      | c -> c)
    (List.rev !settled)

let hop_quantile ~hop q =
  match Hashtbl.find_opt hop_sketches hop with
  | Some s when Metrics.Sketch.count s > 0 -> Some (Metrics.Sketch.quantile s q)
  | _ -> None

let json_of_record r =
  let open Json in
  Obj
    [
      ("src", Num (float_of_int r.r_src));
      ("dst", Num (float_of_int r.r_dst));
      ("vci", Num (float_of_int r.r_vci));
      ("seq", Num (float_of_int r.r_seq));
      ("injected_ns", Num (float_of_int r.r_injected));
      ("delivered_ns", Num (float_of_int r.r_delivered));
      ( "hops",
        List
          (Array.to_list
             (Array.map
                (fun h ->
                  Obj
                    [
                      ("stage", Num (float_of_int h.h_stage));
                      ("in_port", Num (float_of_int h.h_in_port));
                      ("out_port", Num (float_of_int h.h_out_port));
                      ("queue", Num (float_of_int h.h_queue));
                      ("latency_ns", Num (float_of_int h.h_latency_ns));
                    ])
                r.r_hops)) );
    ]

let write_json path =
  Json.write_file path
    (Json.Obj
       [
         ("records", Json.List (List.map json_of_record (records ())));
         ("dropped", Json.Num (float_of_int !n_dropped));
       ])
