(** Periodic virtual-time sampling of registered probes into bounded
    ring-buffer series, dumped as JSON/CSV next to the metrics dump.

    Components register probes at construction time, like metrics; the
    simulator drives sampling from its event loop ({!on_event}), taking a
    sample whenever the clock crosses the next multiple of {!interval} —
    at most one per fired event, so a long idle gap yields one sample
    rather than thousands of identical ones.

    Probes are generation-scoped: each [Sim.create] bumps a generation
    (via {!attach_clock}) and only probes registered — or re-registered,
    which replaces the callback like the metrics registry does — under
    the current generation are read, so callbacks never report state from
    a dead simulator instance.

    Every recorded value also folds into a [<name>_hw] metrics gauge via
    set_max, so high-water marks appear in ordinary metrics dumps.
    Process-global, off by default, one boolean test per event when off. *)

type labels = (string * string) list

type kind =
  | Gauge  (** record the callback's value *)
  | Rate  (** record the delta per simulated second between samples *)
  | Utilization
      (** callback returns cumulative busy-ns; record Δbusy/Δt in [0,1] *)

val register : ?kind:kind -> string -> labels -> (unit -> float) -> unit
(** Register (or re-register, replacing the callback) a probe. Cheap when
    sampling is disabled; safe to call from component constructors. *)

val register_at : ?kind:kind -> string -> labels -> (int -> float) -> unit
(** Like {!register}, but the callback receives the sample's cumulative
    virtual time. Required for probes over analytic train-path state:
    committed plan records describe future cell departures, so the probe
    must evaluate queue depth / busy time *at* the sample boundary rather
    than read a counter mutated cell by cell. *)

val granularity : unit -> Granularity.t
val set_granularity : Granularity.t -> unit
(** [Per_train] (the default) keeps the cell-train fast path engaged:
    at-aware probes evaluate planned analytic state at the sample
    boundary, so the series stay meaningful with cell events elided —
    at train-event (plan commit / delivery) cadence rather than per-cell
    cadence. [Per_cell] pins the slow path so every cell event is a
    sampling opportunity. *)

val start : unit -> unit
(** Enable sampling. Also installs (once) the [Metrics.gauge_fn] bridge:
    every callback gauge registration doubles as a [Gauge] probe. *)

val stop : unit -> unit
val clear : unit -> unit
(** Drop all probes and series (for tests). *)

val enabled : unit -> bool

val set_interval : int -> unit
(** Sampling interval in simulated ns (default 10 µs). *)

val interval : unit -> int

val attach_clock : (unit -> int) -> unit
(** Called by [Sim.create]; bumps the probe generation. *)

val on_event : int -> unit
(** Called by [Sim.step] with the cumulative virtual time of the event
    about to fire; once the clock passes the next {!interval} multiple,
    samples all current-generation probes at the most recent boundary
    (at most one boundary per event — idle gaps are skipped, not walked).
    Points carry boundary timestamps and probes evaluate at the
    boundary, not at the triggering event's time. *)

type series = {
  s_name : string;
  s_labels : labels;
  s_kind : kind;
  s_dropped : int;  (** points lost to the ring bound *)
  s_points : (int * float) list;  (** (cumulative virtual ns, value) *)
}

val series : unit -> series list
val to_json : unit -> Json.t
val write_json : string -> unit
val write_csv : string -> unit
