(* A single-file HTML report for a run.

   Everything is generated server-side into one file: inline CSS, inline
   SVG sparklines, and a flamegraph rendered as absolutely-positioned
   <div>s — no scripts, no fonts, no fetches, so the file opens identically
   from disk, an artifact store, or an air-gapped machine. Section builders
   pull from the telemetry registries (Span attribution, Timeseries
   series, Profile stacks, the Metrics registry) and return HTML
   fragments; [page] wraps an ordered list of fragments into the document. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let style =
  {css|
body { font: 14px/1.5 system-ui, sans-serif; color: #1a1a2e; margin: 2em auto; max-width: 72em; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1a1a2e; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: .5em 0; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: left; }
th { background: #f0f0f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.pass { color: #0a7a2f; font-weight: 600; }
.fail { color: #b00020; font-weight: 600; }
.spark { vertical-align: middle; }
.spark polyline { fill: none; stroke: #2456a4; stroke-width: 1.5; }
.fg { position: relative; background: #fafafa; border: 1px solid #ddd; margin: .5em 0 1.5em 0; }
.fg div { position: absolute; height: 17px; overflow: hidden; white-space: nowrap; font-size: 11px; line-height: 17px; padding-left: 3px; box-sizing: border-box; border: 1px solid rgba(255,255,255,.7); }
.muted { color: #666; font-size: .85em; }
|css}

let section ~title body =
  Printf.sprintf "<h2>%s</h2>\n%s" (escape title) body

let page ~title sections =
  Printf.sprintf
    "<!DOCTYPE html>\n\
     <html lang=\"en\"><head><meta charset=\"utf-8\">\n\
     <title>%s</title>\n\
     <style>%s</style>\n\
     </head><body>\n\
     <h1>%s</h1>\n\
     %s\n\
     </body></html>\n"
    (escape title) style (escape title)
    (String.concat "\n" sections)

let write ~path ~title sections =
  let oc = open_out path in
  output_string oc (page ~title sections);
  close_out oc

(* --- small pieces ----------------------------------------------------- *)

let fmt_ns ns =
  if ns >= 1_000_000_000 then Printf.sprintf "%.3f s" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Printf.sprintf "%.3f ms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.2f &micro;s" (float_of_int ns /. 1e3)
  else Printf.sprintf "%d ns" ns

let fmt_g v = Printf.sprintf "%.6g" v

let sparkline ?(w = 220) ?(h = 36) pts =
  match pts with
  | [] | [ _ ] -> "<span class=\"muted\">(no points)</span>"
  | pts ->
      let xs = List.map fst pts and ys = List.map snd pts in
      let xmin = List.fold_left min (List.hd xs) xs
      and xmax = List.fold_left max (List.hd xs) xs
      and ymin = List.fold_left min (List.hd ys) ys
      and ymax = List.fold_left max (List.hd ys) ys in
      let xr = if xmax > xmin then xmax -. xmin else 1.
      and yr = if ymax > ymin then ymax -. ymin else 1. in
      let fw = float_of_int (w - 2) and fh = float_of_int (h - 2) in
      let coord (x, y) =
        Printf.sprintf "%.1f,%.1f"
          (1. +. ((x -. xmin) /. xr *. fw))
          (1. +. fh
          -. ((y -. ymin) /. yr *. fh))
      in
      Printf.sprintf
        "<svg class=\"spark\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d \
         %d\"><polyline points=\"%s\"/></svg>"
        w h w h
        (String.concat " " (List.map coord pts))

(* keep sparklines light: at most [target] points, evenly strided *)
let downsample target pts =
  let n = List.length pts in
  if n <= target then pts
  else
    let stride = (n + target - 1) / target in
    List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) pts

let checks_table checks =
  if checks = [] then "<p class=\"muted\">no checks declared</p>"
  else
    Printf.sprintf "<table><tr><th>check</th><th>result</th></tr>%s</table>"
      (String.concat ""
         (List.map
            (fun (what, ok) ->
              Printf.sprintf
                "<tr><td>%s</td><td class=\"%s\">%s</td></tr>" (escape what)
                (if ok then "pass" else "fail")
                (if ok then "PASS" else "FAIL"))
            checks))

let curves_html curves =
  String.concat ""
    (List.map
       (fun (label, pts) ->
         let ys = List.map snd pts in
         let stats =
           match ys with
           | [] -> ""
           | y0 :: _ ->
               let lo = List.fold_left min y0 ys
               and hi = List.fold_left max y0 ys in
               Printf.sprintf
                 "<span class=\"muted\">%d pts, min %s, max %s</span>"
                 (List.length pts) (fmt_g lo) (fmt_g hi)
         in
         Printf.sprintf "<p><b>%s</b><br>%s %s</p>" (escape label)
           (sparkline (downsample 240 pts))
           stats)
       curves)

(* --- sections from the telemetry registries --------------------------- *)

let breakdown_section () =
  match Span.attribution () with
  | [] ->
      section ~title:"Latency breakdown"
        "<p class=\"muted\">no spans collected</p>"
  | aggs ->
      let total =
        List.fold_left (fun acc (a : Span.agg) -> acc + a.total_ns) 0 aggs
      in
      let rows =
        List.map
          (fun (a : Span.agg) ->
            Printf.sprintf
              "<tr><td>%s</td><td class=\"num\">%d</td><td \
               class=\"num\">%s</td><td class=\"num\">%s</td><td \
               class=\"num\">%.1f%%</td></tr>"
              (escape a.phase) a.p_count (fmt_ns a.total_ns)
              (fmt_ns
                 (if a.p_count = 0 then 0 else a.total_ns / a.p_count))
              (if total = 0 then 0.
               else 100. *. float_of_int a.total_ns /. float_of_int total))
          aggs
      in
      section ~title:"Latency breakdown (measured Table 2)"
        (Printf.sprintf
           "<table><tr><th>phase</th><th>count</th><th>total</th><th>mean</th><th>share</th></tr>%s</table>"
           (String.concat "" rows))

let labels_str labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let timeseries_section () =
  let all = Timeseries.series () in
  let shown = List.filteri (fun i _ -> i < 120) all in
  let body =
    if all = [] then "<p class=\"muted\">no probes sampled</p>"
    else
      String.concat ""
        (List.map
           (fun (s : Timeseries.series) ->
             let pts =
               List.map
                 (fun (t, v) -> (float_of_int t /. 1e6, v))
                 s.s_points
             in
             let last =
               match List.rev s.s_points with
               | (_, v) :: _ -> fmt_g v
               | [] -> "-"
             in
             Printf.sprintf
               "<p><b>%s</b> <span class=\"muted\">%s · %d samples · last \
                %s</span><br>%s</p>"
               (escape (s.s_name ^ labels_str s.s_labels))
               (match s.s_kind with
               | Timeseries.Gauge -> "gauge"
               | Timeseries.Rate -> "rate/s"
               | Timeseries.Utilization -> "utilization")
               (List.length s.s_points)
               last
               (sparkline (downsample 240 pts)))
           shown)
  in
  let note =
    if List.length all > 120 then
      Printf.sprintf "<p class=\"muted\">showing 120 of %d series</p>"
        (List.length all)
    else ""
  in
  section ~title:"Timeseries" (body ^ note)

(* flamegraph as nested positioned divs (an "icicle": root on top) *)
type fnode = {
  f_name : string;
  mutable f_self : int;
  mutable f_children : (string * fnode) list; (* reversed insertion order *)
}

(* shared by the virtual-time (Profile) and wall-time (Selfprof)
   flamegraphs: rebuild the tree from folded stacks and emit the divs;
   [fmt] renders a value for the hover title *)
let flamegraph_html ~fmt stacks =
  let roots : (string * fnode) list ref = ref [] in
  let node lst name =
    match List.assoc_opt name !lst with
    | Some n -> n
    | None ->
        let n = { f_name = name; f_self = 0; f_children = [] } in
        lst := (name, n) :: !lst;
        n
  in
  List.iter
    (fun (path, self) ->
      match path with
      | [] -> ()
      | root :: rest ->
          let r = node roots root in
          let n =
            List.fold_left
              (fun parent name ->
                let holder = ref parent.f_children in
                let c = node holder name in
                parent.f_children <- !holder;
                c)
              r rest
          in
          n.f_self <- n.f_self + self)
    stacks;
  let rec inclusive n =
    List.fold_left
      (fun acc (_, c) -> acc + inclusive c)
      n.f_self n.f_children
  in
  let color name =
    let h = Hashtbl.hash name mod 360 in
    Printf.sprintf "hsl(%d,65%%,72%%)" h
  in
  let buf = Buffer.create 4096 in
  let rec depth_of n =
    List.fold_left (fun acc (_, c) -> max acc (1 + depth_of c)) 1 n.f_children
  in
  List.iter
    (fun (_, root) ->
      let total = inclusive root in
      if total > 0 then begin
        let rows = depth_of root in
        Buffer.add_string buf
          (Printf.sprintf "<div class=\"fg\" style=\"height:%dpx\">"
             ((rows * 18) + 2));
        let rec emit n left depth =
          let incl = inclusive n in
          let width = 100. *. float_of_int incl /. float_of_int total in
          if width >= 0.05 then begin
            Buffer.add_string buf
              (Printf.sprintf
                 "<div style=\"left:%.3f%%;top:%dpx;width:%.3f%%;background:%s\" \
                  title=\"%s: %s (%.2f%%)\">%s</div>"
                 left (depth * 18) width (color n.f_name)
                 (escape n.f_name) (fmt incl)
                 (100. *. float_of_int incl /. float_of_int total)
                 (if width > 4. then escape n.f_name else ""));
            let off = ref left in
            List.iter
              (fun (_, c) ->
                emit c !off (depth + 1);
                off :=
                  !off
                  +. 100.
                     *. float_of_int (inclusive c)
                     /. float_of_int total)
              (List.rev n.f_children)
          end
        in
        emit root 0. 0;
        Buffer.add_string buf "</div>"
      end)
    (List.rev !roots);
  Buffer.contents buf

let profile_section () =
  let stacks = Profile.stacks () in
  if stacks = [] then
    section ~title:"Profile" "<p class=\"muted\">profiler not enabled</p>"
  else
    section ~title:"Profile (virtual-time flamegraph)"
      (flamegraph_html ~fmt:fmt_ns stacks
      ^ Printf.sprintf
          "<p class=\"muted\">elapsed virtual time %s; root-exclusive time \
           is idle/unattributed. Wider is longer; hover for exact \
           times.</p>"
          (fmt_ns (Profile.elapsed ())))

(* wall-clock self-observability: the wall-time twin of the virtual
   flamegraph, the event-queue depth over time, and the queue's
   lifecycle/pop-cost story *)
let engine_section () =
  if Selfprof.elapsed_wall_ns () = 0 then
    section ~title:"Engine"
      "<p class=\"muted\">self-profiler not enabled (run with \
       --selfprof)</p>"
  else begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (flamegraph_html ~fmt:fmt_ns (Selfprof.stacks ()));
    Buffer.add_string buf
      (Printf.sprintf
         "<p class=\"muted\">elapsed wall time %s; depth-1 frames are \
          event kinds (schedule-site labels), root-exclusive time is \
          event-loop overhead.</p>"
         (fmt_ns (Selfprof.elapsed_wall_ns ())));
    (* queue depth sparkline from the introspection probes *)
    List.iter
      (fun (s : Timeseries.series) ->
        if s.s_name = "sim_queue_depth" && s.s_points <> [] then begin
          let pts =
            List.map
              (fun (t, v) -> (float_of_int t, v))
              (downsample 240 s.s_points)
          in
          Buffer.add_string buf
            (Printf.sprintf "<p><b>event-queue depth</b><br>%s</p>"
               (sparkline pts))
        end)
      (Timeseries.series ());
    let fired = Sim.events_fired () and cancelled = Sim.events_cancelled () in
    Buffer.add_string buf
      (Printf.sprintf
         "<table><tr><th>events fired</th><th>events \
          cancelled</th><th>tombstone ratio</th><th>mean pop cost (heap \
          ops)</th><th>mean same-timestamp batch</th></tr>\
          <tr><td class=\"num\">%d</td><td class=\"num\">%d</td>\
          <td class=\"num\">%.1f%%</td><td class=\"num\">%.2f</td>\
          <td class=\"num\">%.2f</td></tr></table>"
         fired cancelled
         (Sim.tombstone_ratio () *. 100.)
         (Selfprof.pop_cost_mean ())
         (Selfprof.batch_size_mean ()));
    section ~title:"Engine (wall-clock self-profile)" (Buffer.contents buf)
  end

let sampling_section () =
  if not (Sample.active ()) then
    section ~title:"Sampled deep inspection"
      "<p class=\"muted\">PDU sampling not enabled (run with \
       --sample-pdus)</p>"
  else begin
    let offered = Sample.offered () and sampled = Sample.sampled () in
    section ~title:"Sampled deep inspection"
      (Printf.sprintf
         "<table><tr><th>PDUs offered</th><th>sampled</th><th>coverage</th>\
          <th>rate</th><th>seed</th></tr>\
          <tr><td class=\"num\">%d</td><td class=\"num\">%d</td>\
          <td class=\"num\">%.2f%%</td><td>1 in %d</td><td>0x%x</td></tr>\
          </table>\
          <p class=\"muted\">sampled PDUs ride the per-cell path in full \
          span/trace/pcap detail; the rest ride the cell train. Same seed \
          &rarr; same sampled set, including under --per-cell.</p>"
         offered sampled
         (if offered = 0 then 0.
          else 100. *. float_of_int sampled /. float_of_int offered)
         (Sample.n ()) (Sample.seed ()))
  end

let sketch_section () =
  let s = Span.latency () in
  let n = Metrics.Sketch.count s in
  if n = 0 then
    section ~title:"Message latency"
      "<p class=\"muted\">no message deliveries observed</p>"
  else
    let q p = fmt_ns (int_of_float (Metrics.Sketch.quantile s p)) in
    section ~title:"Message latency (mint to rx ring)"
      (Printf.sprintf
         "<table><tr><th>deliveries</th><th>p50</th><th>p99</th>\
          <th>p99.9</th><th>max</th><th>mean</th></tr>\
          <tr><td class=\"num\">%d</td><td class=\"num\">%s</td>\
          <td class=\"num\">%s</td><td class=\"num\">%s</td>\
          <td class=\"num\">%s</td><td class=\"num\">%s</td></tr></table>\
          <p class=\"muted\">log-bucketed quantile sketch, every quantile \
          within %.0f%% relative error at O(buckets) memory.</p>"
         n (q 0.5) (q 0.99) (q 0.999)
         (fmt_ns (int_of_float (Metrics.Sketch.max s)))
         (fmt_ns (int_of_float (Metrics.Sketch.total s /. float_of_int n)))
         (Metrics.Sketch.alpha s *. 100.))

let metrics_section () =
  let json = Json.of_string (Metrics.to_json_string ()) in
  let fams =
    match Json.member "families" json with
    | Some (Json.List l) -> l
    | _ -> []
  in
  let rows = Buffer.create 4096 in
  List.iter
    (fun fam ->
      let name =
        match Json.member "name" fam with Some (Json.Str s) -> s | _ -> "?"
      in
      let kind =
        match Json.member "kind" fam with Some (Json.Str s) -> s | _ -> ""
      in
      let samples =
        match Json.member "samples" fam with
        | Some (Json.List l) -> l
        | _ -> []
      in
      List.iter
        (fun s ->
          let labels =
            match Json.member "labels" s with
            | Some (Json.Obj kv) ->
                labels_str
                  (List.map
                     (fun (k, v) ->
                       (k, match v with Json.Str s -> s | _ -> ""))
                     kv)
            | _ -> ""
          in
          let value =
            match Json.member "value" s with
            | Some (Json.Num v) -> fmt_g v
            | _ -> (
                match
                  (Json.member "count" s, Json.member "mean" s)
                with
                | Some (Json.Num n), Some (Json.Num m) ->
                    Printf.sprintf "n=%.0f mean=%s" n (fmt_g m)
                | Some (Json.Num n), None -> Printf.sprintf "n=%.0f" n
                | _ -> "-")
          in
          Buffer.add_string rows
            (Printf.sprintf
               "<tr><td>%s%s</td><td>%s</td><td class=\"num\">%s</td></tr>"
               (escape name) (escape labels) (escape kind) value))
        samples)
    fams;
  section ~title:"Metrics"
    (Printf.sprintf
       "<table><tr><th>metric</th><th>kind</th><th>value</th></tr>%s</table>"
       (Buffer.contents rows))
