(** Deterministic, seeded fault injection at module boundaries.

    A {!spec} describes a fault process — Bernoulli cell loss, byte
    corruption, bounded reordering, duplication, Gilbert–Elliott burst
    loss, DMA stalls and receive-ring overruns — and an {!t} is that
    process instantiated at one injection site (one link direction, one
    switch output port, one NI). Every random decision is drawn from a
    {!Rng} stream derived from [spec.seed] and the site name, never from
    wall-clock randomness, so a faulty run replays exactly from its seed
    and two sites with the same spec still see independent streams.

    Sites consult the injector per unit of work ({!decide} per cell,
    {!dma_stall} per descriptor DMA, {!rx_overrun} per delivered PDU) and
    apply the returned decision themselves; the injector counts every
    non-pass decision in [fault_injected_total{kind,site}]. A spec whose
    probabilities are all zero never draws and never perturbs the run,
    which is what keeps zero-fault baselines byte-identical. *)

type site = Link_up | Link_down | Switch | Ni
(** Where a parsed [--fault] spec attaches. [Link_up]/[Link_down] are the
    host uplink / downlink fibers, [Switch] the switch output ports, [Ni]
    the network-interface models (DMA stall, rx-ring overrun). *)

type burst = {
  p_enter : float;  (** per-cell probability good -> bad *)
  p_exit : float;  (** per-cell probability bad -> good *)
  burst_loss : float;  (** loss probability while in the bad state *)
}
(** Gilbert–Elliott two-state loss modulation: in the good state the base
    [loss] applies; in the bad state [burst_loss] applies. *)

type spec = {
  seed : int;
  sites : site list;  (** where the CLI/experiment attaches this spec *)
  loss : float;  (** Bernoulli per-cell loss probability *)
  corrupt : float;  (** per-cell byte-corruption probability *)
  duplicate : float;  (** per-cell duplication probability *)
  reorder : float;  (** probability a cell is held back (reordered) *)
  reorder_span : int;  (** max cell-slots a reordered cell is held *)
  burst : burst option;
  dma_stall : float;  (** NI: probability a descriptor DMA stalls *)
  dma_stall_ns : int;  (** NI: stall duration *)
  rx_overrun : float;  (** NI: probability a received PDU is dropped *)
}

val none : spec
(** All probabilities zero, seed 42, sites [[Link_up; Link_down]]: a
    pass-through spec. *)

val parse : string -> (spec, string) result
(** Parse a comma-separated [key=value] spec, e.g.
    ["loss=0.01,seed=42,at=link"]. Keys: [seed], [loss] (alias [p]),
    [corrupt], [dup], [reorder], [reorder_span], [burst_enter],
    [burst_exit], [burst_loss] (any of the three enables the
    Gilbert–Elliott model), [dma_stall], [dma_stall_ns], [rx_overrun],
    and [at] — a [+]-separated subset of [up], [down], [switch], [ni],
    or the shorthands [link] (up+down) and [all]. *)

val pp_spec : Format.formatter -> spec -> unit

(** {2 Injectors} *)

type t

type decision =
  | Pass
  | Drop
  | Corrupt
  | Duplicate
  | Reorder of int  (** deliver late by this many cell-slots *)

val create : site:string -> spec -> t
(** Instantiate the spec at a named site. The site name labels the
    [fault_injected_total] metric and perturbs the seed, so distinct
    sites draw independent streams. *)

val spec : t -> spec

val decide : t -> decision
(** One per-cell decision. Draws only for the probabilities that are
    non-zero, in a fixed order (burst transition, loss, corrupt,
    duplicate, reorder), so a loss-only spec consumes exactly one draw
    per cell. Counts every non-[Pass] decision. *)

val drops : t -> bool
(** Loss-only per-cell decision (burst transition + loss draw, nothing
    else) for sites where only dropping is meaningful, e.g. a switch
    output port. Counts a ["drop"] when [true]. *)

val dma_stall : t -> int
(** Per-DMA stall in ns: [dma_stall_ns] with probability [dma_stall],
    else [0] (no draw when the probability is zero). *)

val rx_overrun : t -> bool
(** Per-PDU receive-ring overrun decision. *)

val corrupt_bytes : t -> bytes -> unit
(** Flip one byte of [b] in place at a random position to a guaranteed
    different value (used to apply a [Corrupt] decision to a snapshot of
    the cell payload). *)

val injected : t -> int
(** Non-pass decisions this injector has made. *)

val injected_total : unit -> int
(** Non-pass decisions across every injector since program start
    (process-global, like the metrics registry; {!Metrics.reset} does not
    clear it — compare deltas). *)

(** {2 Global configuration ([--fault] threading)}

    The CLI parses one spec and configures it here; [Atm.Network.create]
    and the NI models consult it at construction time so every experiment
    run picks the faults up without changing the registry's run
    signature. *)

val configure : spec option -> unit
val configured : unit -> spec option

val configured_at : site -> site:string -> t option
(** An injector for the named site if a global spec is configured and
    lists the given site kind; [None] otherwise. *)
