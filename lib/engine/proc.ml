let log_src = Logs.Src.create "engine.proc" ~doc:"simulated processes"

module Log = (val Logs.src_log log_src : Logs.LOG)

type state = Running | Done | Failed of exn

type t = {
  pname : string;
  mutable pstate : state;
  mutable waiters : (unit -> unit) list;
}

exception Not_in_process

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let state p = p.pstate
let name p = p.pname

let finish p st =
  (match st with
  | Failed e when p.waiters = [] ->
      (* nobody is joining this process: make the failure visible *)
      Log.warn (fun m ->
          m "process %S died unobserved: %s" p.pname (Printexc.to_string e))
  | _ -> ());
  p.pstate <- st;
  let ws = List.rev p.waiters in
  p.waiters <- [];
  List.iter (fun resume -> resume ()) ws

let spawn ?(name = "proc") sim body =
  let p = { pname = name; pstate = Running; waiters = [] } in
  let handler =
    {
      Effect.Deep.retc = (fun () -> finish p Done);
      exnc = (fun e -> finish p (Failed e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        failwith "Proc: resume thunk called twice";
                      resumed := true;
                      Effect.Deep.continue k ()))
          | _ -> None);
    }
  in
  ignore
    (Sim.schedule ~label:"proc.spawn" sim ~delay:0 (fun () ->
         Effect.Deep.match_with body () handler));
  p

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> raise Not_in_process

let sleep sim ~time =
  suspend (fun resume ->
      ignore (Sim.schedule ~label:"proc.sleep" sim ~delay:time resume))

let yield sim = sleep sim ~time:0

let join p =
  (match p.pstate with
  | Running -> suspend (fun resume -> p.waiters <- resume :: p.waiters)
  | Done | Failed _ -> ());
  match p.pstate with
  | Done -> ()
  | Failed e -> raise e
  | Running -> assert false

let join_all ps = List.iter join ps

let run_to_completion sim main =
  let result = ref None in
  let p = spawn ~name:"main" sim (fun () -> result := Some (main ())) in
  Sim.run sim;
  match (p.pstate, !result) with
  | Done, Some v -> v
  | Done, None -> assert false
  | Failed e, _ -> raise e
  | Running, _ ->
      failwith "Proc.run_to_completion: deadlock (simulation idle, process blocked)"
