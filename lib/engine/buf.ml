(* Slice/iovec views. See buf.mli for the ownership and counting story. *)

type span = { base : bytes; off : int; len : int }
type t = { spans : span list; len : int }

let empty = { spans = []; len = 0 }

let of_bytes b =
  let len = Bytes.length b in
  if len = 0 then empty else { spans = [ { base = b; off = 0; len } ]; len }

let of_bytes_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Buf.of_bytes_sub";
  if len = 0 then empty else { spans = [ { base = b; off = pos; len } ]; len }

let of_string s = of_bytes (Bytes.of_string s)
let alloc n = of_bytes (Bytes.make n '\000')
let length t = t.len
let is_empty t = t.len = 0

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Buf.sub";
  if len = 0 then empty
  else begin
    let acc = ref [] and skip = ref pos and want = ref len in
    List.iter
      (fun (s : span) ->
        if !want > 0 then
          if !skip >= s.len then skip := !skip - s.len
          else begin
            let take = min (s.len - !skip) !want in
            acc := { base = s.base; off = s.off + !skip; len = take } :: !acc;
            skip := 0;
            want := !want - take
          end)
      t.spans;
    { spans = List.rev !acc; len }
  end

(* fuse adjacent views over the same store so span lists stay short even
   after reassembling many cells cut from one PDU *)
let fuse spans =
  let rec go = function
    | a :: b :: rest when a.base == b.base && a.off + a.len = b.off ->
        go ({ a with len = a.len + b.len } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go spans

let concat ts =
  let spans =
    fuse (List.concat_map (fun t -> t.spans) ts)
  in
  { spans; len = List.fold_left (fun n (s : span) -> n + s.len) 0 spans }

let append a b = concat [ a; b ]
let spans t = List.map (fun s -> (s.base, s.off, s.len)) t.spans
let iter_spans t f = List.iter (fun s -> f s.base ~pos:s.off ~len:s.len) t.spans

let fold_spans t ~init ~f =
  List.fold_left (fun acc s -> f acc s.base ~pos:s.off ~len:s.len) init t.spans

let get_uint8 t i =
  if i < 0 || i >= t.len then invalid_arg "Buf.get_uint8";
  let rec go i = function
    | (s : span) :: rest ->
        if i < s.len then Char.code (Bytes.get s.base (s.off + i))
        else go (i - s.len) rest
    | [] -> assert false
  in
  go i t.spans

let get_uint16_be t i = (get_uint8 t i lsl 8) lor get_uint8 t (i + 1)
let get_uint16_le t i = get_uint8 t i lor (get_uint8 t (i + 1) lsl 8)

let get_uint32_be t i =
  Int32.logor
    (Int32.shift_left (Int32.of_int (get_uint16_be t i)) 16)
    (Int32.of_int (get_uint16_be t (i + 2)))

let get_uint32_le t i =
  Int32.logor
    (Int32.of_int (get_uint16_le t i))
    (Int32.shift_left (Int32.of_int (get_uint16_le t (i + 2))) 16)

let equal a b =
  a.len = b.len
  &&
  (* walk both span lists in lockstep *)
  let rec go sa sb =
    match (sa, sb) with
    | [], [] -> true
    | [], _ | _, [] -> false
    | (a : span) :: ra, (b : span) :: rb ->
        let n = min a.len b.len in
        let rec cmp i =
          i >= n
          || Bytes.get a.base (a.off + i) = Bytes.get b.base (b.off + i)
             && cmp (i + 1)
        in
        cmp 0
        &&
        let rest (x : span) n =
          if x.len = n then []
          else [ { x with off = x.off + n; len = x.len - n } ]
        in
        go (rest a n @ ra) (rest b n @ rb)
  in
  go a.spans b.spans

let equal_bytes t b = equal t (of_bytes b)
let pp fmt t = Format.fprintf fmt "<buf %dB/%d spans>" t.len (List.length t.spans)

(* --- counted copies ------------------------------------------------- *)

let layer_counters : (string, Metrics.Counter.t * Metrics.Counter.t) Hashtbl.t =
  Hashtbl.create 16

let counters layer =
  match Hashtbl.find_opt layer_counters layer with
  | Some c -> c
  | None ->
      let c =
        ( Metrics.counter ~help:"Data-path copies performed, by layer"
            "buf_copies_total"
            [ ("layer", layer) ],
          Metrics.counter ~help:"Bytes moved by data-path copies, by layer"
            "buf_copy_bytes_total"
            [ ("layer", layer) ] )
      in
      Hashtbl.replace layer_counters layer c;
      c

let count ~layer bytes =
  let copies, moved = counters layer in
  Metrics.Counter.inc copies;
  Metrics.Counter.add moved bytes

let copy_into ~layer t ~dst ~dst_pos =
  if dst_pos < 0 || dst_pos + t.len > Bytes.length dst then
    invalid_arg "Buf.copy_into";
  count ~layer t.len;
  let pos = ref dst_pos in
  List.iter
    (fun s ->
      Bytes.blit s.base s.off dst !pos s.len;
      pos := !pos + s.len)
    t.spans

let to_bytes ~layer t =
  let b = Bytes.create t.len in
  copy_into ~layer t ~dst:b ~dst_pos:0;
  b

let copy ~layer t = of_bytes (to_bytes ~layer t)

let blit_bytes ~layer ~src ~src_pos ~dst ~dst_pos ~len =
  count ~layer len;
  Bytes.blit src src_pos dst dst_pos len

let copies_total () =
  Hashtbl.fold
    (fun _ (c, _) acc -> acc + Metrics.Counter.value c)
    layer_counters 0

let copy_bytes_total () =
  Hashtbl.fold
    (fun _ (_, m) acc -> acc + Metrics.Counter.value m)
    layer_counters 0
